//===- examples/sassdis.cpp - a disassembler/analyzer command-line tool ---===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// A small binary-module workflow tool, in the spirit of the paper's
// reverse-engineering setup: generate an SGEMM kernel, serialize it to a
// module file (the cubin-like "GPUB" format, with Kepler control words
// interleaved), load it back, disassemble it and run the Figure 8
// analyses on it.
//
// Usage: sassdis [GTX580|GTX680] [NN|NT|TN|TT] [out.gpub]
//
//===----------------------------------------------------------------------===//

#include "analysis/BinaryAnalysis.h"
#include "asmtool/Disassembler.h"
#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace gpuperf;

int main(int Argc, char **Argv) {
  const MachineDesc *M = &gtx680();
  GemmVariant Variant = GemmVariant::NN;
  const char *Path = "sgemm.gpub";
  if (Argc > 1 && findMachine(Argv[1]))
    M = findMachine(Argv[1]);
  if (Argc > 2) {
    for (GemmVariant V : {GemmVariant::NN, GemmVariant::NT,
                          GemmVariant::TN, GemmVariant::TT})
      if (std::strcmp(Argv[2], gemmVariantName(V)) == 0)
        Variant = V;
  }
  if (Argc > 3)
    Path = Argv[3];

  // Generate and serialize.
  auto Cfg = baselineConfig(SgemmImpl::AsmTuned, *M, Variant, 960, 960,
                            960);
  auto K = generateSgemmKernel(*M, Cfg);
  if (!K) {
    std::fprintf(stderr, "generation failed: %s\n", K.message().c_str());
    return 1;
  }
  Module Mod;
  Mod.Arch = M->Generation;
  Mod.Kernels.push_back(*K);
  std::vector<uint8_t> Bytes = Mod.serialize();
  {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
  }
  std::printf("wrote %zu-byte module to %s (%s)\n", Bytes.size(), Path,
              M->Generation == GpuGeneration::Kepler
                  ? "with interleaved control-notation words"
                  : "no control words on Fermi");

  // Load it back and analyze, as one would a foreign binary.
  std::vector<uint8_t> Loaded;
  {
    std::ifstream In(Path, std::ios::binary);
    Loaded.assign(std::istreambuf_iterator<char>(In),
                  std::istreambuf_iterator<char>());
  }
  auto Back = Module::deserialize(Loaded);
  if (!Back) {
    std::fprintf(stderr, "load failed: %s\n", Back.message().c_str());
    return 1;
  }
  const Kernel &BK = Back->Kernels[0];
  std::printf("\n%s\n", renderKernelReport(BK).c_str());

  std::string Text = disassembleKernel(BK);
  std::printf("first 24 lines of disassembly:\n");
  size_t Pos = 0;
  for (int Line = 0; Line < 24 && Pos != std::string::npos; ++Line) {
    size_t End = Text.find('\n', Pos);
    std::printf("  %s\n", Text.substr(Pos, End - Pos).c_str());
    Pos = End == std::string::npos ? End : End + 1;
  }
  std::printf("  ... (%zu instructions total)\n", BK.Code.size());
  return 0;
}
