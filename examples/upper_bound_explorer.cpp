//===- examples/upper_bound_explorer.cpp - bound a custom kernel ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Section 5.5 argues the methodology generalizes to "many applications
// with few major instruction types": measure the machine's throughput for
// the application's instruction mix, multiply by the useful-instruction
// fraction, and you have an upper bound no implementation can beat.
//
// This example bounds a hypothetical 3D stencil kernel whose inner loop
// executes 4 FFMA per LDS.64 (a 4:1 mix), on both GPUs, and contrasts it
// with SGEMM's 6:1 mix.
//
//===----------------------------------------------------------------------===//

#include "ubench/PerfDatabase.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace gpuperf;

namespace {

void boundMix(const MachineDesc &M, const char *Name, int Ratio,
              MemWidth W, int ActiveThreads) {
  PerfDatabase DB(M);
  double Mixed = DB.mixThroughput(Ratio, W, /*Dependent=*/true,
                                  ActiveThreads);
  double FfmaFraction = static_cast<double>(Ratio) / (Ratio + 1);
  double Bound = FfmaFraction * Mixed / M.spProcessingThroughput() *
                 M.theoreticalPeakGflops();
  std::printf("  %-28s mix %2d:1 %-7s -> measured %6.1f insts/cycle, "
              "bound %5.0f GFLOPS (%4.1f%% of peak)\n",
              Name, Ratio,
              W == MemWidth::B64 ? "LDS.64" : "LDS", Mixed, Bound,
              100 * Bound / M.theoreticalPeakGflops());
}

} // namespace

int main() {
  std::printf("Upper bounds for custom instruction mixes "
              "(Section 5.5 methodology)\n\n");
  for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
    int Threads = std::min(M->MaxThreadsPerSM, M->RegistersPerSM / 32);
    std::printf("%s (peak %.0f GFLOPS, %d active threads):\n",
                M->Name.c_str(), M->theoreticalPeakGflops(), Threads);
    boundMix(*M, "stencil-like kernel", 4, MemWidth::B64, Threads);
    boundMix(*M, "SGEMM main loop", 6, MemWidth::B64, Threads);
    boundMix(*M, "reduction-heavy kernel", 2, MemWidth::B64, Threads);
    boundMix(*M, "compute-dense kernel", 12, MemWidth::B64, Threads);
    std::printf("\n");
  }
  std::printf("Reading: the lower the FFMA share of the mix, the further "
              "the bound falls below the marketing peak -- and on Kepler "
              "everything is additionally capped by the ~132/cycle issue "
              "ceiling (Section 3.3).\n");
  return 0;
}
