//===- examples/sgemm_tuning.cpp - explore the SGEMM parameter space ------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Uses the public kernel-generator and model APIs the way the paper's
// Section 5.5 envisions an auto-tuner would: enumerate candidate
// configurations, let the analytical model prune, then measure the
// survivors on the simulator and compare against the model's prediction.
//
//===----------------------------------------------------------------------===//

#include "model/UpperBound.h"
#include "sgemm/SgemmRunner.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace gpuperf;

int main(int Argc, char **Argv) {
  const MachineDesc *M = &gtx580();
  if (Argc > 1 && findMachine(Argv[1]))
    M = findMachine(Argv[1]);
  std::printf("SGEMM configuration exploration on %s (NN, 960^3)\n\n",
              M->Name.c_str());

  PerfDatabase DB(*M);
  UpperBoundModel Model(DB);

  Table T;
  T.setHeader({"BR", "LDS width", "regs", "model bound", "measured",
               "% of bound"});
  for (int BR : {2, 4, 6}) {
    for (MemWidth W : {MemWidth::B32, MemWidth::B64}) {
      SgemmModelParams MP;
      MP.BR = BR;
      MP.LdsWidth = W;
      UpperBoundReport Bound = Model.analyze(MP);
      if (!Bound.Feasible) {
        T.addRow({formatString("%d", BR), memWidthSuffix(W),
                  formatString("%d", Bound.Budget.total()), "infeasible",
                  "-", "-"});
        continue;
      }
      SgemmKernelConfig Cfg;
      Cfg.BR = BR;
      Cfg.LdsWidth = W;
      SgemmProblem P;
      P.M = P.N = P.K = 960;
      SgemmRunOptions O;
      O.Mode = SimMode::ProjectOneWave;
      auto R = runSgemmConfig(*M, Cfg, P, O);
      if (!R) {
        std::fprintf(stderr, "run failed: %s\n", R.message().c_str());
        return 1;
      }
      T.addRow({formatString("%d", BR),
                W == MemWidth::B64 ? "LDS.64" : "LDS",
                formatString("%d", R->RegsPerThread),
                formatDouble(Bound.PotentialGflops, 0),
                formatDouble(R->Gflops, 0),
                formatDouble(100 * R->Gflops / Bound.PotentialGflops, 1) +
                    "%"});
    }
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nThe paper's configuration (BR=6, LDS.64) should win, "
              "and no measurement may exceed its model bound.\n");
  return 0;
}
