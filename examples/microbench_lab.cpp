//===- examples/microbench_lab.cpp - roll your own microbenchmarks --------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Demonstrates the microbenchmark APIs the paper's analysis is built on:
// operand-pattern benchmarks (Table 2 style) and instruction-mix
// benchmarks (Figure 2/4 style), including how register bank choices
// change Kepler throughput.
//
//===----------------------------------------------------------------------===//

#include "arch/RegisterBank.h"
#include "ubench/MixBench.h"
#include "ubench/OpPattern.h"

#include <cstdio>

using namespace gpuperf;

int main() {
  const MachineDesc &M = gtx680();
  std::printf("Microbenchmark lab on %s\n\n", M.Name.c_str());

  // 1. Your own Table 2 row: how fast is FFMA R20, R1, R2, R20?
  //    (R1 odd0, R2 even0, R20 even1 -- conflict-free accumulation.)
  {
    Instruction Pattern = makeFFMA(20, 1, 2, 20);
    Kernel K = generateOpPatternBench(M, Pattern);
    MeasureConfig Cfg;
    Cfg.ThreadsPerBlock = 1024;
    Cfg.BlocksPerSM = 1;
    std::printf("custom pattern  %-24s banks(%s,%s,%s): %.1f "
                "insts/cycle\n",
                Pattern.toString().c_str(),
                registerBankName(registerBank(1)),
                registerBankName(registerBank(2)),
                registerBankName(registerBank(20)),
                measureThroughput(M, K, Cfg));
  }
  // 2. The same pattern with a 2-way bank conflict (R1 and R3 share
  //    odd0).
  {
    Instruction Pattern = makeFFMA(20, 1, 3, 20);
    Kernel K = generateOpPatternBench(M, Pattern);
    MeasureConfig Cfg;
    Cfg.ThreadsPerBlock = 1024;
    Cfg.BlocksPerSM = 1;
    std::printf("conflicted      %-24s banks(%s,%s,%s): %.1f "
                "insts/cycle\n\n",
                Pattern.toString().c_str(),
                registerBankName(registerBank(1)),
                registerBankName(registerBank(3)),
                registerBankName(registerBank(20)),
                measureThroughput(M, K, Cfg));
  }

  // 3. A mix sweep at a ratio the paper does not plot: 5 FFMA per LDS.
  std::printf("5:1 FFMA/LDS.64 mix vs occupancy (dependent):\n");
  for (int Threads : {128, 256, 512, 1024, 2048}) {
    MixBenchParams P;
    P.FfmaPerLds = 5;
    P.Dependent = true;
    Kernel K = generateMixBench(M, P);
    MeasureConfig Cfg;
    if (Threads <= 1024) {
      Cfg.ThreadsPerBlock = Threads;
      Cfg.BlocksPerSM = 1;
    } else {
      Cfg.ThreadsPerBlock = Threads / 2;
      Cfg.BlocksPerSM = 2;
    }
    std::printf("  %4d threads: %6.1f insts/cycle\n", Threads,
                measureThroughput(M, K, Cfg));
  }
  std::printf("\nEverything above runs through the same assembler/"
              "simulator pipeline as the paper experiments; swap "
              "gtx680() for gtx580() to compare architectures.\n");
  return 0;
}
