//===- examples/quickstart.cpp - assemble and run a first kernel ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Quickstart: write a SAXPY kernel in the native assembly language,
// assemble it, run it on the simulated GTX580, and inspect results and
// performance counters.
//
//===----------------------------------------------------------------------===//

#include "asmtool/Assembler.h"
#include "asmtool/Disassembler.h"
#include "sim/Launcher.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>

using namespace gpuperf;

int main() {
  // y[i] = a * x[i] + y[i] for 4096 elements, 256 threads per block.
  // Parameters (constant bank): c[0x0] = x, c[0x4] = y, c[0x8] = a.
  const char *Source = R"asm(
.arch GTX580
.kernel saxpy
  S2R R0, SR_TID.X
  S2R R1, SR_CTAID.X
  S2R R2, SR_NTID.X
  IMAD R0, R1, R2, R0     // global thread id
  SHL R0, R0, 2           // byte offset
  LDC R2, c[0x0]          // x base
  LDC R3, c[0x4]          // y base
  LDC R4, c[0x8]          // a
  IADD R2, R2, R0
  IADD R3, R3, R0
  LD R5, [R2]
  LD R6, [R3]
  FFMA R6, R4, R5, R6
  ST [R3], R6
  EXIT
.end
)asm";

  auto ModuleOrErr = assembleText(Source);
  if (!ModuleOrErr) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 ModuleOrErr.message().c_str());
    return 1;
  }
  Module M = ModuleOrErr.take();
  const Kernel *K = M.findKernel("saxpy");
  std::printf("assembled kernel '%s': %zu instructions, %d registers\n\n",
              K->Name.c_str(), K->Code.size(), K->RegsPerThread);
  std::printf("%s\n", disassembleKernel(*K).c_str());

  // Set up device memory.
  constexpr int N = 4096;
  const float A = 2.5f;
  GlobalMemory GM;
  uint32_t X = GM.allocate(N * 4);
  uint32_t Y = GM.allocate(N * 4);
  for (int I = 0; I < N; ++I) {
    GM.storeFloat(X + 4 * I, static_cast<float>(I));
    GM.storeFloat(Y + 4 * I, 1.0f);
  }

  LaunchConfig Config;
  Config.Dims.BlockX = 256;
  Config.Dims.GridX = N / 256;
  uint32_t ABits;
  std::memcpy(&ABits, &A, 4);
  Config.Params = {X, Y, ABits};

  auto Result = launchKernel(gtx580(), *K, Config, GM);
  if (!Result) {
    std::fprintf(stderr, "launch failed: %s\n", Result.message().c_str());
    return 1;
  }

  // Check a few results.
  bool Ok = true;
  for (int I = 0; I < N; I += 1111)
    Ok &= GM.loadFloat(Y + 4 * I) == A * I + 1.0f;
  std::printf("results %s\n", Ok ? "correct" : "WRONG");
  std::printf("cycles: %llu  thread instructions: %llu  "
              "global bytes: %llu\n",
              static_cast<unsigned long long>(Result->Stats.Cycles),
              static_cast<unsigned long long>(
                  Result->Stats.ThreadInstsIssued),
              static_cast<unsigned long long>(Result->Stats.GlobalBytes));
  std::printf("wall-clock on a real GTX580: %.2f microseconds\n",
              Result->seconds(gtx580()) * 1e6);
  return Ok ? 0 : 1;
}
