//===- kernelgen/RegAllocator.h - SGEMM register allocation ----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation for the generated SGEMM kernels.
///
/// The bank-aware allocator implements Section 5.4 / Figure 9: the A
/// column lives on banks even0/odd0, the B row on even1/odd1, and the
/// BR x BR accumulator tile is placed so that every FFMA's three sources
/// sit on three different banks -- removing the 2-way/3-way conflicts
/// that cost MAGMA ~30% of its FFMAs on Kepler (Figure 8).
///
/// The naive allocator assigns registers in simple ascending program
/// order, reproducing compiler-style allocation and its conflicts.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_KERNELGEN_REGALLOCATOR_H
#define GPUPERF_KERNELGEN_REGALLOCATOR_H

#include "kernelgen/SgemmConfig.h"
#include "support/Error.h"

#include <vector>

namespace gpuperf {

/// The complete register map of a generated SGEMM kernel.
struct SgemmRegMap {
  std::vector<uint8_t> Acc; ///< BR*BR accumulators; index i*BR + j.
  std::vector<uint8_t> A;   ///< BR registers for the A column.
  uint8_t B[2] = {0, 0};    ///< Aligned pair for the B row (LDS.64).
  std::vector<uint8_t> Prefetch; ///< Global-prefetch registers.

  // Addressing registers (Section 5.2 items 4-7).
  uint8_t RLoop = 0; ///< Loop bound / counter.
  uint8_t RGA = 0;   ///< A panel pointer in global memory.
  uint8_t RGB = 0;   ///< B panel pointer in global memory.
  uint8_t RSA = 0;   ///< A store pointer in shared memory.
  uint8_t RSB = 0;   ///< B store pointer in shared memory.
  uint8_t RRA = 0;   ///< A read base in shared memory.
  uint8_t RRB = 0;   ///< B read base in shared memory.

  uint8_t acc(int I, int J) const {
    return Acc[static_cast<size_t>(I) * A.size() + J];
  }

  /// 1 + highest register index used.
  int regsUsed() const;
};

/// Builds the register map. Fails when the configuration cannot fit the
/// 63-register limit (a real error for oversized blocking factors).
Expected<SgemmRegMap> allocateSgemmRegisters(const SgemmKernelConfig &Cfg);

/// Counts how many of the BR*BR FFMA operand triples (A[i], B[j%2],
/// Acc[i][j]) have a register bank conflict of at least \p Degree.
/// Used by tests and by the Figure 8 analysis.
int countTileConflicts(const SgemmRegMap &Map, int Degree);

} // namespace gpuperf

#endif // GPUPERF_KERNELGEN_REGALLOCATOR_H
