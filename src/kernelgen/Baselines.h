//===- kernelgen/Baselines.h - named SGEMM implementations ------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SGEMM implementations the paper compares (Figures 5-8):
///
///  * AsmTuned  -- the paper's hand-written assembly: bank-aware register
///    allocation, LDS.64, instruction reordering; on Kepler only the
///    partially-decrypted (heuristic) control notations are available.
///  * AsmNaive  -- the paper's *first* Kepler version (Section 5.4,
///    ~1100 GFLOPS): same code shape, naive register allocation, hence
///    68.8% 2-way and 10.6% 3-way FFMA bank conflicts.
///  * CublasLike -- stands in for CUBLAS 4.1/4.2: compiler-generated code
///    with nvcc-quality (tuned) scheduling information but compiler
///    register allocation and 32-bit shared-memory loads.
///  * MagmaLike -- stands in for the MAGMA library kernels: like
///    CublasLike, and on Kepler additionally spills registers
///    (Section 5.5: "the four SGEMM variations of MAGMA ... spill at
///    least 10 registers").
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_KERNELGEN_BASELINES_H
#define GPUPERF_KERNELGEN_BASELINES_H

#include "kernelgen/SgemmConfig.h"

#include "arch/MachineDesc.h"

namespace gpuperf {

/// The compared SGEMM implementations.
enum class SgemmImpl { AsmTuned, AsmNaive, CublasLike, MagmaLike };

const char *sgemmImplName(SgemmImpl Impl);

/// Builds the kernel configuration of \p Impl for one problem.
SgemmKernelConfig baselineConfig(SgemmImpl Impl, const MachineDesc &M,
                                 GemmVariant Variant, int MSize, int NSize,
                                 int KSize);

} // namespace gpuperf

#endif // GPUPERF_KERNELGEN_BASELINES_H
