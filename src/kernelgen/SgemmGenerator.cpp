//===- kernelgen/SgemmGenerator.cpp - SGEMM assembly generation -----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "kernelgen/SgemmGenerator.h"

#include "isa/Encoding.h"
#include "kernelgen/Scheduler.h"
#include "support/Format.h"

#include <cassert>

using namespace gpuperf;

const char *gpuperf::gemmVariantName(GemmVariant V) {
  switch (V) {
  case GemmVariant::NN:
    return "NN";
  case GemmVariant::NT:
    return "NT";
  case GemmVariant::TN:
    return "TN";
  case GemmVariant::TT:
    return "TT";
  }
  return "??";
}

std::string SgemmKernelConfig::kernelName() const {
  std::string Suffix;
  if (EmulateSpills)
    Suffix += "_spill";
  if (Schedule == SgemmSchedule::List)
    Suffix += "_sched";
  return formatString(
      "sgemm_%s_br%d_%s_%s%s", gemmVariantName(Variant), BR,
      LdsWidth == MemWidth::B64 ? "lds64" : "lds32",
      RegAlloc == RegAllocKind::BankAware  ? "bankaware"
      : RegAlloc == RegAllocKind::Compiler ? "compiler"
                                           : "naive",
      Suffix.c_str());
}

SgemmLaunchShape gpuperf::sgemmLaunchShape(const SgemmKernelConfig &Cfg) {
  SgemmLaunchShape S;
  S.GridX = Cfg.M / Cfg.blockTile();
  S.GridY = Cfg.N / Cfg.blockTile();
  S.BlockX = Cfg.TB;
  return S;
}

namespace {

/// Code emission context for one kernel.
class SgemmEmitter {
public:
  SgemmEmitter(const MachineDesc &M, const SgemmKernelConfig &Cfg,
               const SgemmRegMap &Map)
      : M(M), Cfg(Cfg), Map(Map) {}

  Expected<Kernel> run() {
    emitPrologue();
    emitFirstPanel();
    const int NIter = Cfg.K / Cfg.L;
    if (NIter > 1) {
      emitLoopSetup(NIter - 1);
      int LoopHead = static_cast<int>(Code.size());
      emitMainIteration(/*Prefetch=*/true);
      emitLoopBack(LoopHead);
    }
    emitMainIteration(/*Prefetch=*/false);
    emitEpilogue();
    Code.push_back(makeEXIT());

    Kernel K;
    K.Name = Cfg.kernelName();
    K.SharedBytes = Cfg.sharedBytes();
    K.Code = std::move(Code);
    K.recomputeRegUsage();
    tuneNotations(M, K, Cfg.Notation);
    if (Cfg.Schedule == SgemmSchedule::List) {
      // The list pipeline: bank-rotate operands first (it changes which
      // pairings conflict, not the DAG), then schedule; on Kepler the
      // scheduler re-tunes the notations to match its final order.
      rotateRegisterBanks(M, K);
      scheduleKernel(M, K);
    }
    return K;
  }

private:
  // --- Baked constants ------------------------------------------------------
  int lda4() const { return Cfg.Lda * 4; }
  int ldb4() const { return Cfg.Ldb * 4; }
  int ldc4() const { return Cfg.Ldc * 4; }
  int strideB() const { return Cfg.sharedStrideBytes(); }
  int bOff() const { return Cfg.sharedBOffset(); }
  /// Rows of the A panel covered per q-group step (BSh / 32).
  int rGroups() const { return Cfg.blockTile() / 32; }

  // Each panel uses the thread->element mapping that makes its global
  // loads coalesced (Section 5.1): when the matrix dimension contiguous
  // in memory is the tile dimension, lanes sweep it 32-wide ("row-fast");
  // when the k dimension is contiguous, lanes sweep columns 16-wide
  // ("column-fast"). The shared-memory layout As[c][r] / Bs[k][j] is the
  // same either way, so the main loop is identical for all variants.

  /// Global byte offset of the thread's q-th A-panel element relative to
  /// its base pointer.
  int aElemOffset(int Q) const {
    if (transA(Cfg.Variant)) // Column-fast: r = t/16 + 16q, c = t%16.
      return 16 * Q * lda4();
    // Row-fast: r = t%32 + 32*(q%RG), c = t/32 + 8*(q/RG).
    return (Q / rGroups()) * 8 * lda4() + (Q % rGroups()) * 32 * 4;
  }
  /// Shared-store byte offset of the q-th A-panel element (As[c][r]).
  int aStoreOffset(int Q) const {
    if (transA(Cfg.Variant))
      return 16 * Q * 4;
    return (Q / rGroups()) * 8 * strideB() + (Q % rGroups()) * 32 * 4;
  }
  /// Global byte offset of the q-th B-panel element.
  int bElemOffset(int Q) const {
    if (transB(Cfg.Variant)) // Row-fast: j = t%32 + 32*(q%RG).
      return (Q / rGroups()) * 8 * ldb4() + (Q % rGroups()) * 32 * 4;
    // Column-fast: kr = t%16, jc = t/16 + 16q.
    return 16 * Q * ldb4();
  }
  /// Shared-store byte offset of the q-th B-panel element (Bs[k][j]).
  int bStoreOffset(int Q) const {
    if (transB(Cfg.Variant))
      return (Q / rGroups()) * 8 * strideB() + (Q % rGroups()) * 32 * 4;
    return 16 * Q * 4;
  }
  /// Pointer advance per k-panel.
  int aStep() const {
    return transA(Cfg.Variant) ? Cfg.L * 4 : Cfg.L * lda4();
  }
  int bStep() const {
    return transB(Cfg.Variant) ? Cfg.L * ldb4() : Cfg.L * 4;
  }

  /// Scratch register for prologue address math: accumulators (dead
  /// until zeroed) extended by prefetch registers for small tiles.
  uint8_t scratch(int Idx) const {
    if (Idx < static_cast<int>(Map.Acc.size()))
      return Map.Acc[Idx];
    return Map.Prefetch[Idx - Map.Acc.size()];
  }

  // --- Prologue ---------------------------------------------------------------
  void emitPrologue() {
    uint8_t T = scratch(0);     // linear thread id
    uint8_t Bx = scratch(1);    // ctaid.x
    uint8_t By = scratch(2);    // ctaid.y
    uint8_t TLow = scratch(3);  // t % 32
    uint8_t THigh = scratch(4); // t / 32
    uint8_t Tx = scratch(5);    // t % 16
    uint8_t Ty = scratch(6);    // t / 16
    uint8_t Tmp = scratch(7);

    Code.push_back(makeS2R(T, SpecialReg::TID_X));
    Code.push_back(makeS2R(Bx, SpecialReg::CTAID_X));
    Code.push_back(makeS2R(By, SpecialReg::CTAID_Y));
    emitAndImm(TLow, T, 31);
    emitShrImm(THigh, T, 5);
    emitAndImm(Tx, T, 15);
    emitShrImm(Ty, T, 4);

    const int BSh = Cfg.blockTile();
    // A panel pointer.
    Code.push_back(makeLDC(Map.RGA, SgemmKernelConfig::ParamA));
    if (transA(Cfg.Variant)) {
      // Column-fast: RGA += (BSh*bx + t/16)*lda4 + (t%16)*4.
      Code.push_back(makeIMADImm(Tmp, Bx, BSh, Ty));
      Code.push_back(makeIMADImm(Map.RGA, Tmp, lda4(), Map.RGA));
      Code.push_back(makeISCADD(Map.RGA, Tx, Map.RGA, 2));
    } else {
      // Row-fast: RGA += (t/32)*lda4 + (BSh*bx + t%32)*4.
      Code.push_back(makeIMADImm(Map.RGA, THigh, lda4(), Map.RGA));
      Code.push_back(makeIMADImm(Tmp, Bx, BSh, TLow));
      Code.push_back(makeISCADD(Map.RGA, Tmp, Map.RGA, 2));
    }
    // B panel pointer.
    Code.push_back(makeLDC(Map.RGB, SgemmKernelConfig::ParamB));
    if (transB(Cfg.Variant)) {
      // Row-fast: RGB += (t/32)*ldb4 + (BSh*by + t%32)*4.
      Code.push_back(makeIMADImm(Map.RGB, THigh, ldb4(), Map.RGB));
      Code.push_back(makeIMADImm(Tmp, By, BSh, TLow));
      Code.push_back(makeISCADD(Map.RGB, Tmp, Map.RGB, 2));
    } else {
      // Column-fast: RGB += (BSh*by + t/16)*ldb4 + (t%16)*4.
      Code.push_back(makeIMADImm(Tmp, By, BSh, Ty));
      Code.push_back(makeIMADImm(Map.RGB, Tmp, ldb4(), Map.RGB));
      Code.push_back(makeISCADD(Map.RGB, Tx, Map.RGB, 2));
    }
    // Shared-store pointers match the chosen mappings: As[c][r] and
    // Bs[k][j] with the padded slice stride.
    if (transA(Cfg.Variant)) {
      Code.push_back(makeIMADImm(Map.RSA, Tx, strideB(), RegRZ));
      Code.push_back(makeISCADD(Map.RSA, Ty, Map.RSA, 2));
    } else {
      Code.push_back(makeIMADImm(Map.RSA, THigh, strideB(), RegRZ));
      Code.push_back(makeISCADD(Map.RSA, TLow, Map.RSA, 2));
    }
    if (transB(Cfg.Variant)) {
      Code.push_back(makeIMADImm(Map.RSB, THigh, strideB(), RegRZ));
      Code.push_back(makeISCADD(Map.RSB, TLow, Map.RSB, 2));
    } else {
      Code.push_back(makeIMADImm(Map.RSB, Tx, strideB(), RegRZ));
      Code.push_back(makeISCADD(Map.RSB, Ty, Map.RSB, 2));
    }
    Code.push_back(makeIADDImm(Map.RSB, Map.RSB, bOff()));
    // Shared-read bases: RRA = tx*BR*4, RRB = bOff + ty*BR*4.
    Code.push_back(makeIMADImm(Map.RRA, Tx, Cfg.BR * 4, RegRZ));
    Code.push_back(makeIMADImm(Map.RRB, Ty, Cfg.BR * 4, RegRZ));
    Code.push_back(makeIADDImm(Map.RRB, Map.RRB, bOff()));
    // Zero the accumulators (ends the scratch lifetime).
    for (uint8_t Acc : Map.Acc)
      Code.push_back(makeMOV32I(Acc, 0));
  }

  // --- Panel movement ----------------------------------------------------------
  int prefetchedA() const {
    return Cfg.EmulateSpills ? Cfg.BR - 1 : Cfg.BR;
  }
  int prefetchedB() const {
    return Cfg.EmulateSpills ? Cfg.BR - 1 : Cfg.BR;
  }
  uint8_t pfA(int Q) const { return Map.Prefetch[Q]; }
  uint8_t pfB(int Q) const { return Map.Prefetch[prefetchedA() + Q]; }

  /// Emits the global loads of the next panel into the prefetch
  /// registers; returns the instructions rather than appending when
  /// \p Out is non-null (for interleaving).
  void emitPrefetchLoads(std::vector<Instruction> *Out) {
    auto Sink = [&](Instruction I) {
      if (Out)
        Out->push_back(I);
      else
        Code.push_back(I);
    };
    for (int Q = 0; Q < prefetchedA(); ++Q)
      Sink(makeLD(MemWidth::B32, pfA(Q), Map.RGA, aElemOffset(Q)));
    for (int Q = 0; Q < prefetchedB(); ++Q)
      Sink(makeLD(MemWidth::B32, pfB(Q), Map.RGB, bElemOffset(Q)));
  }

  /// Emits the shared stores of the prefetched panel, plus the "spilled"
  /// (non-prefetched) elements loaded directly from global memory here --
  /// the register-shortage effect of Section 5.5's spilled baselines.
  void emitPanelStores(bool PointersAdvanced) {
    // Spill-emulation late loads read the *current* panel; compensate
    // when the panel pointers were already stepped to the next one.
    int AdjA = PointersAdvanced ? -aStep() : 0;
    int AdjB = PointersAdvanced ? -bStep() : 0;
    for (int Q = 0; Q < prefetchedA(); ++Q)
      Code.push_back(
          makeSTS(MemWidth::B32, Map.RSA, aStoreOffset(Q), pfA(Q)));
    for (int Q = 0; Q < prefetchedB(); ++Q)
      Code.push_back(
          makeSTS(MemWidth::B32, Map.RSB, bStoreOffset(Q), pfB(Q)));
    if (Cfg.EmulateSpills) {
      int QA = Cfg.BR - 1, QB = Cfg.BR - 1;
      // Late loads expose the full global latency between the barriers.
      Code.push_back(
          makeLD(MemWidth::B32, pfA(0), Map.RGA, aElemOffset(QA) + AdjA));
      Code.push_back(
          makeLD(MemWidth::B32, pfB(0), Map.RGB, bElemOffset(QB) + AdjB));
      Code.push_back(
          makeSTS(MemWidth::B32, Map.RSA, aStoreOffset(QA), pfA(0)));
      Code.push_back(
          makeSTS(MemWidth::B32, Map.RSB, bStoreOffset(QB), pfB(0)));
    }
  }

  void emitPointerAdvance() {
    Code.push_back(makeIADDImm(Map.RGA, Map.RGA, aStep()));
    Code.push_back(makeIADDImm(Map.RGB, Map.RGB, bStep()));
  }

  void emitFirstPanel() {
    emitPrefetchLoads(nullptr);
    emitPanelStores(/*PointersAdvanced=*/false);
    emitPointerAdvance();
    Code.push_back(makeBAR());
  }

  void emitLoopSetup(int Iterations) {
    Code.push_back(makeMOV32I(Map.RLoop, static_cast<uint32_t>(Iterations)));
  }

  // --- Main loop -----------------------------------------------------------------
  /// One k-step: A column loads, then per column-pair B loads + FFMAs.
  void emitKStep(int K, std::vector<Instruction> *Interleave,
                 size_t &InterleavePos) {
    const int Base = K * strideB();
    auto Drip = [&]() {
      // Reorder=true drips one interleaved instruction (global prefetch
      // load) into the stream after each shared load (Section 5.3).
      if (Interleave && InterleavePos < Interleave->size())
        Code.push_back((*Interleave)[InterleavePos++]);
    };
    // A column.
    if (Cfg.LdsWidth == MemWidth::B64) {
      for (int P = 0; P < Cfg.BR / 2; ++P) {
        Code.push_back(
            makeLDS(MemWidth::B64, Map.A[2 * P], Map.RRA, Base + 8 * P));
        Drip();
      }
    } else {
      for (int I = 0; I < Cfg.BR; ++I) {
        Code.push_back(
            makeLDS(MemWidth::B32, Map.A[I], Map.RRA, Base + 4 * I));
        if (I % 2 == 0)
          Drip();
      }
    }
    // Column pairs.
    for (int JP = 0; JP < Cfg.BR / 2; ++JP) {
      if (Cfg.LdsWidth == MemWidth::B64) {
        Code.push_back(
            makeLDS(MemWidth::B64, Map.B[0], Map.RRB, Base + 8 * JP));
      } else {
        Code.push_back(
            makeLDS(MemWidth::B32, Map.B[0], Map.RRB, Base + 8 * JP));
        Code.push_back(
            makeLDS(MemWidth::B32, Map.B[1], Map.RRB, Base + 8 * JP + 4));
      }
      Drip();
      for (int J = 2 * JP; J < 2 * JP + 2; ++J)
        for (int I = 0; I < Cfg.BR; ++I)
          Code.push_back(
              makeFFMA(Map.acc(I, J), Map.A[I], Map.B[J % 2],
                       Map.acc(I, J)));
    }
  }

  /// Whether the fixed drip interleave shapes the emission. The list
  /// scheduler wants the plain everything-up-front layout instead: it
  /// finds the stall slots from the dependence DAG itself.
  bool dripReorder() const {
    return Cfg.Reorder && Cfg.Schedule == SgemmSchedule::Drip;
  }

  void emitMainIteration(bool Prefetch) {
    std::vector<Instruction> Interleaved;
    size_t InterleavePos = 0;
    if (Prefetch) {
      if (dripReorder()) {
        emitPrefetchLoads(&Interleaved);
      } else {
        // Unoptimized schedule: everything up front (Section 5.3 is the
        // contrast experiment).
        emitPrefetchLoads(nullptr);
        emitPointerAdvance();
        Code.push_back(makeIADDImm(Map.RLoop, Map.RLoop, -1));
      }
    }
    for (int K = 0; K < Cfg.L; ++K)
      emitKStep(K, dripReorder() && Prefetch ? &Interleaved : nullptr,
                InterleavePos);
    // Any prefetch loads that did not fit the drip slots.
    for (; InterleavePos < Interleaved.size(); ++InterleavePos)
      Code.push_back(Interleaved[InterleavePos]);
    if (Prefetch) {
      Code.push_back(makeBAR());
      emitPanelStores(/*PointersAdvanced=*/!dripReorder());
      if (dripReorder()) {
        // Section 5.3: mix address bookkeeping into the store section.
        emitPointerAdvance();
        Code.push_back(makeIADDImm(Map.RLoop, Map.RLoop, -1));
      }
      Code.push_back(makeBAR());
    }
  }

  void emitLoopBack(int LoopHead) {
    Code.push_back(makeISETP(CmpOp::NE, 0, Map.RLoop, RegRZ));
    int Offset = LoopHead - (static_cast<int>(Code.size()) + 1);
    Code.push_back(makeBRA(Offset, 0, /*Neg=*/false));
  }

  // --- Epilogue ---------------------------------------------------------------
  void emitEpilogue() {
    // Scratch from the prefetch pool (dead after the last panel).
    uint8_t T = Map.Prefetch[0];
    // C pointer lives in RGA (panels are done with it).
    uint8_t RC = Map.RGA;
    uint8_t Tx = Map.RGB; // Also dead now.
    uint8_t Ty = Map.RSA;
    uint8_t Bx = Map.RSB;
    uint8_t By = Map.RRA;
    uint8_t Tmp = Map.RRB;
    const int BSh = Cfg.blockTile();

    Code.push_back(makeS2R(T, SpecialReg::TID_X));
    Code.push_back(makeS2R(Bx, SpecialReg::CTAID_X));
    Code.push_back(makeS2R(By, SpecialReg::CTAID_Y));
    emitAndImm(Tx, T, 15);
    emitShrImm(Ty, T, 4);
    Code.push_back(makeLDC(RC, SgemmKernelConfig::ParamC));
    // Row index: BSh*bx + BR*tx (bytes: <<2).
    Code.push_back(makeIMADImm(Tmp, Bx, BSh, RegRZ));
    Code.push_back(makeIMADImm(Tmp, Tx, Cfg.BR, Tmp));
    Code.push_back(makeISCADD(RC, Tmp, RC, 2));
    // Column index: (BSh*by + BR*ty) * ldc4.
    Code.push_back(makeIMADImm(Tmp, By, BSh, RegRZ));
    Code.push_back(makeIMADImm(Tmp, Ty, Cfg.BR, Tmp));
    Code.push_back(makeIMADImm(RC, Tmp, ldc4(), RC));

    uint8_t Alpha = Map.Prefetch[Cfg.BR];
    uint8_t Beta = Map.Prefetch[Cfg.BR + 1];
    Code.push_back(makeLDC(Alpha, SgemmKernelConfig::ParamAlpha));
    Code.push_back(makeLDC(Beta, SgemmKernelConfig::ParamBeta));

    for (int J = 0; J < Cfg.BR; ++J) {
      int ColOff = J * ldc4();
      for (int I = 0; I < Cfg.BR; ++I)
        Code.push_back(
            makeLD(MemWidth::B32, Map.Prefetch[I], RC, ColOff + 4 * I));
      for (int I = 0; I < Cfg.BR; ++I) {
        Code.push_back(makeFMUL(Map.Prefetch[I], Map.Prefetch[I], Beta));
        Code.push_back(makeFFMA(Map.Prefetch[I], Map.acc(I, J), Alpha,
                                Map.Prefetch[I]));
      }
      for (int I = 0; I < Cfg.BR; ++I)
        Code.push_back(
            makeST(MemWidth::B32, RC, ColOff + 4 * I, Map.Prefetch[I]));
    }
  }

  // --- Small helpers --------------------------------------------------------------
  void emitAndImm(uint8_t Dst, uint8_t Src, int32_t Imm) {
    Instruction I;
    I.Op = Opcode::LOP_AND;
    I.Dst = Dst;
    I.Src[0] = Src;
    I.HasImm = true;
    I.Imm = Imm;
    Code.push_back(I);
  }
  void emitShrImm(uint8_t Dst, uint8_t Src, int32_t Imm) {
    Instruction I;
    I.Op = Opcode::SHR;
    I.Dst = Dst;
    I.Src[0] = Src;
    I.HasImm = true;
    I.Imm = Imm;
    Code.push_back(I);
  }

  const MachineDesc &M;
  const SgemmKernelConfig &Cfg;
  const SgemmRegMap &Map;
  std::vector<Instruction> Code;
};

} // namespace

Expected<Kernel>
gpuperf::generateSgemmKernel(const MachineDesc &M,
                             const SgemmKernelConfig &Cfg) {
  using EK = Expected<Kernel>;
  if (Cfg.BR != 2 && Cfg.BR != 4 && Cfg.BR != 6)
    return EK::error(
        formatString("unsupported blocking factor %d (use 2, 4 or 6)",
                     Cfg.BR));
  if (Cfg.TB != 256 || Cfg.L != 16)
    return EK::error("the generator is specialized for TB=256, L=16");
  if (Cfg.M <= 0 || Cfg.N <= 0 || Cfg.K <= 0)
    return EK::error("matrix sizes must be positive");
  if (Cfg.M % Cfg.blockTile() != 0 || Cfg.N % Cfg.blockTile() != 0)
    return EK::error(formatString(
        "M and N must be multiples of the %d-wide block tile "
        "(pad the matrices; see SgemmRunner)",
        Cfg.blockTile()));
  if (Cfg.K % Cfg.L != 0)
    return EK::error(
        formatString("K must be a multiple of the panel depth %d", Cfg.L));
  if (Cfg.Lda < (transA(Cfg.Variant) ? Cfg.K : Cfg.M) ||
      Cfg.Ldb < (transB(Cfg.Variant) ? Cfg.N : Cfg.K) ||
      Cfg.Ldc < Cfg.M)
    return EK::error("leading dimension smaller than the matrix");
  if (Cfg.EmulateSpills && Cfg.BR < 4)
    return EK::error("spill emulation requires a blocking factor >= 4");
  if (Cfg.LdsWidth == MemWidth::B128)
    return EK::error(
        "LDS.128 SGEMM code generation is not supported (BR=6 tiles are "
        "not quad-aligned); the analytical model covers this width");
  // Offsets must fit the signed 24-bit immediate field.
  int64_t MaxOff = static_cast<int64_t>(Cfg.L) *
                   std::max(Cfg.Lda, std::max(Cfg.Ldb, Cfg.Ldc)) * 4;
  if (MaxOff > Imm24Max)
    return EK::error("leading dimensions too large for 24-bit offsets");

  auto Map = allocateSgemmRegisters(Cfg);
  if (!Map)
    return EK::error(Map.message());
  if (Map->regsUsed() > M.MaxRegsPerThread)
    return EK::error(formatString(
        "register map needs %d registers, machine allows %d",
        Map->regsUsed(), M.MaxRegsPerThread));

  SgemmEmitter Emitter(M, Cfg, *Map);
  return Emitter.run();
}
