//===- kernelgen/Baselines.cpp - named SGEMM implementations --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "kernelgen/Baselines.h"

using namespace gpuperf;

const char *gpuperf::sgemmImplName(SgemmImpl Impl) {
  switch (Impl) {
  case SgemmImpl::AsmTuned:
    return "assembly";
  case SgemmImpl::AsmNaive:
    return "assembly-naive-regalloc";
  case SgemmImpl::CublasLike:
    return "cublas-like";
  case SgemmImpl::MagmaLike:
    return "magma-like";
  }
  return "?";
}

SgemmKernelConfig gpuperf::baselineConfig(SgemmImpl Impl,
                                          const MachineDesc &M,
                                          GemmVariant Variant, int MSize,
                                          int NSize, int KSize) {
  SgemmKernelConfig Cfg;
  Cfg.Variant = Variant;
  Cfg.M = MSize;
  Cfg.N = NSize;
  Cfg.K = KSize;
  Cfg.Lda = transA(Variant) ? KSize : MSize;
  Cfg.Ldb = transB(Variant) ? NSize : KSize;
  Cfg.Ldc = MSize;
  Cfg.BR = 6;

  switch (Impl) {
  case SgemmImpl::AsmTuned:
    Cfg.LdsWidth = MemWidth::B64;
    Cfg.RegAlloc = RegAllocKind::BankAware;
    Cfg.Reorder = true;
    // Section 3.2: the notation encoding is only partially decrypted, so
    // the hand-written kernels carry per-opcode compromise notations.
    Cfg.Notation = NotationQuality::Heuristic;
    break;
  case SgemmImpl::AsmNaive:
    Cfg.LdsWidth = MemWidth::B64;
    Cfg.RegAlloc = RegAllocKind::Naive;
    Cfg.Reorder = true;
    Cfg.Notation = NotationQuality::Heuristic;
    break;
  case SgemmImpl::CublasLike:
    Cfg.LdsWidth = MemWidth::B64;
    Cfg.RegAlloc = RegAllocKind::Compiler;
    Cfg.Reorder = false;
    Cfg.Notation = NotationQuality::Tuned; // nvcc knows the encoding.
    break;
  case SgemmImpl::MagmaLike:
    Cfg.LdsWidth = MemWidth::B32;
    Cfg.RegAlloc = RegAllocKind::Compiler;
    Cfg.Reorder = false;
    Cfg.Notation = NotationQuality::Tuned;
    // Section 5.5: the MAGMA kernels spill on Kepler.
    Cfg.EmulateSpills = M.Generation == GpuGeneration::Kepler;
    break;
  }
  return Cfg;
}
