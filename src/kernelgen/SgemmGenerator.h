//===- kernelgen/SgemmGenerator.h - SGEMM assembly generation --*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates complete SGEMM kernels in the native instruction set,
/// implementing the paper's Section 5 design: fully-unrolled 16-deep
/// k-panels with register prefetching of the next panels, LDS.64 shared
/// memory reads with padding, bank-aware (or deliberately naive) register
/// allocation, optional instruction reordering, and Kepler control
/// notations.
///
/// The kernel computes the BLAS operation
///   C := alpha * op(A) * op(B) + beta * C
/// on column-major matrices whose sizes are baked into the code (leading
/// dimensions become immediate offsets, which is what keeps the register
/// budget at exactly 63, Section 5.2); base addresses and alpha/beta are
/// runtime kernel parameters.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_KERNELGEN_SGEMMGENERATOR_H
#define GPUPERF_KERNELGEN_SGEMMGENERATOR_H

#include "arch/MachineDesc.h"
#include "kernelgen/RegAllocator.h"
#include "kernelgen/SgemmConfig.h"

namespace gpuperf {

/// Generates the kernel for \p Cfg on machine \p M. Fails on invalid
/// shapes (M/N not multiples of the block tile, K not a multiple of L)
/// or infeasible register allocations.
Expected<Kernel> generateSgemmKernel(const MachineDesc &M,
                                     const SgemmKernelConfig &Cfg);

/// Grid/block dimensions for \p Cfg: one block per BSh x BSh tile of C
/// (GridX covers M, GridY covers N).
struct SgemmLaunchShape {
  int GridX = 0;
  int GridY = 0;
  int BlockX = 256;
};
SgemmLaunchShape sgemmLaunchShape(const SgemmKernelConfig &Cfg);

} // namespace gpuperf

#endif // GPUPERF_KERNELGEN_SGEMMGENERATOR_H
