//===- kernelgen/SgemmConfig.h - SGEMM kernel configuration ----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the generated SGEMM kernels. The generator implements
/// the paper's blocked algorithm (Figure 1): a TB = 256-thread block
/// computes a BSh x BSh tile of C (BSh = 16*BR), staging L = 16-deep
/// panels of A and B through shared memory, with per-thread BR x BR
/// register blocking and register prefetching of the next panels.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_KERNELGEN_SGEMMCONFIG_H
#define GPUPERF_KERNELGEN_SGEMMCONFIG_H

#include "asmtool/NotationTuner.h"
#include "isa/Instruction.h"
#include "kernelgen/Scheduler.h"

#include <string>

namespace gpuperf {

/// The four GEMM transpose variants (Section 5's NN/NT/TN/TT).
enum class GemmVariant { NN, NT, TN, TT };

const char *gemmVariantName(GemmVariant V);

/// True when op(A) = A^T (the first letter is T).
inline bool transA(GemmVariant V) {
  return V == GemmVariant::TN || V == GemmVariant::TT;
}
/// True when op(B) = B^T (the second letter is T).
inline bool transB(GemmVariant V) {
  return V == GemmVariant::NT || V == GemmVariant::TT;
}

/// Register-allocation strategy for the main-loop operands.
enum class RegAllocKind {
  BankAware, ///< The paper's Figure 9 conflict-free mapping.
  Compiler,  ///< nvcc-style: clean operand pairs, sequential C tile
             ///< (moderate conflict rate, like Figure 8's MAGMA bars).
  Naive,     ///< Fully sequential allocation (the paper's "first
             ///< version", heavy conflicts).
};

/// Full configuration of one generated kernel.
struct SgemmKernelConfig {
  GemmVariant Variant = GemmVariant::NN;
  /// Problem shape; M and N must be multiples of 16*BR, K of L.
  int M = 0, N = 0, K = 0;
  /// Leading dimensions in elements (column-major).
  int Lda = 0, Ldb = 0, Ldc = 0;

  int BR = 6;  ///< Register blocking factor (2, 4 or 6).
  int TB = 256;
  int L = 16;

  MemWidth LdsWidth = MemWidth::B64; ///< B32 or B64 (Section 4.1 choice).
  RegAllocKind RegAlloc = RegAllocKind::BankAware;
  bool Reorder = true; ///< Section 5.3 instruction interleaving.
  /// How the main-loop body is ordered: the fixed drip interleave (which
  /// honours Reorder) or the dependence-DAG list scheduler, which emits
  /// the plain layout and lets the scheduler place prefetches into real
  /// stall slots (plus bank rotation and a schedule-matched notation
  /// re-tune on Kepler).
  SgemmSchedule Schedule = SgemmSchedule::Drip;
  NotationQuality Notation = NotationQuality::Heuristic;
  /// Emulate compiler register spills (Section 5.5's MAGMA-on-Kepler
  /// behaviour): most prefetch registers live in local memory.
  bool EmulateSpills = false;

  /// Shared blocking factor BSh = sqrt(TB) * BR.
  int blockTile() const { return 16 * BR; }
  /// Padded shared k-slice stride in bytes (+2 words of padding keeps
  /// LDS.64 alignment and removes store bank conflicts, Section 5.1).
  int sharedStrideBytes() const { return (blockTile() + 2) * 4; }
  /// Static shared memory: two panels (A and B) of L padded slices.
  int sharedBytes() const { return 2 * L * sharedStrideBytes(); }
  /// Byte offset of the B panel within shared memory.
  int sharedBOffset() const { return L * sharedStrideBytes(); }

  /// Kernel-parameter constant-bank layout (LDC offsets).
  enum ParamOffset {
    ParamA = 0x0,
    ParamB = 0x4,
    ParamC = 0x8,
    ParamAlpha = 0xc,
    ParamBeta = 0x10,
    ParamLocal = 0x14, ///< Spill backing store (EmulateSpills only).
  };

  /// Canonical kernel name, e.g. "sgemm_nn_br6_lds64_bankaware".
  std::string kernelName() const;
};

} // namespace gpuperf

#endif // GPUPERF_KERNELGEN_SGEMMCONFIG_H
