//===- kernelgen/Scheduler.cpp - latency/port-aware list scheduler --------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "kernelgen/Scheduler.h"

#include "arch/RegisterBank.h"
#include "asmtool/NotationTuner.h"
#include "sim/Timing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

using namespace gpuperf;

const char *gpuperf::sgemmScheduleName(SgemmSchedule S) {
  switch (S) {
  case SgemmSchedule::Drip:
    return "drip";
  case SgemmSchedule::List:
    return "list";
  }
  return "?";
}

namespace {

bool isControl(const Instruction &I) {
  return opcodeInfo(I.Op).Class == OpClass::Control;
}

bool isMemOp(const Instruction &I) {
  OpClass Class = opcodeInfo(I.Op).Class;
  return Class == OpClass::SharedMem || Class == OpClass::GlobalMem;
}

/// A dependence edge: the successor may start Latency cycles after the
/// predecessor issues (0 for pure ordering constraints).
struct DepEdge {
  int To;
  int Latency;
};

/// Dependence DAG over one straight-line region plus the list-scheduling
/// state. Nodes are indexed by position within the region; all edges go
/// forward in program order, so a reverse sweep computes heights and any
/// topological emission preserves the original semantics (the simulator
/// executes functionally at issue, in program order).
class RegionScheduler {
public:
  RegionScheduler(const MachineDesc &M, std::vector<Instruction> &Code,
                  size_t Begin, size_t End)
      : M(M), Code(Code), Begin(Begin), N(End - Begin) {}

  /// Returns the number of instructions whose position changed.
  int run();

private:
  void buildDag();
  void computeHeights();
  std::vector<int> listSchedule() const;

  void addEdge(int From, int To, int Latency) {
    if (From == To)
      return;
    Succs[From].push_back({To, Latency});
    ++InDeg[To];
  }

  const Instruction &inst(int Node) const { return Code[Begin + Node]; }

  const MachineDesc &M;
  std::vector<Instruction> &Code;
  size_t Begin;
  size_t N;

  std::vector<std::vector<DepEdge>> Succs;
  std::vector<int> InDeg;
  std::vector<long> Height;
};

void RegionScheduler::buildDag() {
  Succs.assign(N, {});
  InDeg.assign(N, 0);

  // Hazard-tracking state, all indexed by architectural resource.
  constexpr int NumRegs = 64;
  std::vector<int> LastRegWrite(NumRegs, -1);
  std::vector<std::vector<int>> RegReaders(NumRegs);
  std::vector<int> LastPredWrite(NumPredRegs, -1);
  std::vector<std::vector<int>> PredReaders(NumPredRegs);
  // Memory ordering per address space: loads commute with loads, stores
  // order against everything. Base+offset disambiguation is deliberately
  // not attempted -- regions are short and the generator's shared-memory
  // accesses genuinely alias across k-steps.
  enum { SpaceShared = 0, SpaceGlobal = 1, NumSpaces = 2 };
  int LastStore[NumSpaces] = {-1, -1};
  std::vector<int> LoadsSinceStore[NumSpaces];

  for (int Node = 0; Node < static_cast<int>(N); ++Node) {
    const Instruction &I = inst(Node);

    // Register reads: RAW from the last writer, and note the read so a
    // later writer gets a WAR ordering edge.
    for (uint8_t Reg : I.sourceRegs()) {
      if (LastRegWrite[Reg] >= 0)
        addEdge(LastRegWrite[Reg], Node, resultLatency(M, inst(LastRegWrite[Reg])));
      RegReaders[Reg].push_back(Node);
    }
    // Predicate guard read.
    if (I.GuardPred != PredPT) {
      if (LastPredWrite[I.GuardPred] >= 0)
        addEdge(LastPredWrite[I.GuardPred], Node, M.MathLatency);
      PredReaders[I.GuardPred].push_back(Node);
    }

    // Register writes: WAW with the previous writer, WAR with readers
    // since then (order-only edges), then become the new writer.
    for (uint8_t Reg : I.destRegs()) {
      if (LastRegWrite[Reg] >= 0)
        addEdge(LastRegWrite[Reg], Node, 0);
      for (int Reader : RegReaders[Reg])
        addEdge(Reader, Node, 0);
      RegReaders[Reg].clear();
      LastRegWrite[Reg] = Node;
    }
    if (I.writesPredicate()) {
      uint8_t Pred = I.Dst;
      if (Pred < NumPredRegs) {
        if (LastPredWrite[Pred] >= 0)
          addEdge(LastPredWrite[Pred], Node, 0);
        for (int Reader : PredReaders[Pred])
          addEdge(Reader, Node, 0);
        PredReaders[Pred].clear();
        LastPredWrite[Pred] = Node;
      }
    }

    // Memory ordering.
    if (isMemOp(I)) {
      int Space = opcodeInfo(I.Op).Class == OpClass::SharedMem ? SpaceShared
                                                               : SpaceGlobal;
      bool IsStore = !opcodeInfo(I.Op).HasDstReg;
      if (IsStore) {
        if (LastStore[Space] >= 0)
          addEdge(LastStore[Space], Node, 0);
        for (int Load : LoadsSinceStore[Space])
          addEdge(Load, Node, 0);
        LoadsSinceStore[Space].clear();
        LastStore[Space] = Node;
      } else {
        if (LastStore[Space] >= 0)
          addEdge(LastStore[Space], Node, 0);
        LoadsSinceStore[Space].push_back(Node);
      }
    }
  }
}

void RegionScheduler::computeHeights() {
  Height.assign(N, 0);
  for (int Node = static_cast<int>(N) - 1; Node >= 0; --Node) {
    const Instruction &I = inst(Node);
    // A value that leaves the region (a prefetch load feeding the store
    // section after the barrier, a loop counter feeding the back-branch
    // compare) still has its full result latency to hide: treat region
    // exit as a consumer. This is what hoists global prefetches instead
    // of sinking them -- their in-region height would otherwise be 0.
    long H = 0;
    if (I.destRegs().Count > 0 || I.writesPredicate())
      H = resultLatency(M, I);
    for (const DepEdge &E : Succs[Node])
      H = std::max(H, E.Latency + Height[E.To]);
    Height[Node] = H;
  }
}

std::vector<int> RegionScheduler::listSchedule() const {
  // Virtual issue model: Kepler schedulers pick up to two independent
  // instructions per warp per cycle (dual issue) but only one of them may
  // go to the LD/ST port; pre-Kepler parts hold the dispatch port two
  // cycles per warp instruction, so consecutive instructions of one warp
  // issue every other cycle.
  const bool Kepler = M.Generation == GpuGeneration::Kepler;
  const int Width = Kepler ? 2 : 1;
  const long Step = Kepler ? 1 : 2;

  std::vector<long> EarliestStart(N, 0);
  std::vector<int> Pending = InDeg;
  std::vector<int> Avail;
  for (int Node = 0; Node < static_cast<int>(N); ++Node)
    if (Pending[Node] == 0)
      Avail.push_back(Node);

  std::vector<int> Order;
  Order.reserve(N);
  long Cycle = 0;
  int SlotsLeft = Width;
  bool CycleHasMem = false;
  double LdstBusyUntil = 0.0;

  auto effectiveReady = [&](int Node) {
    long Ready = EarliestStart[Node];
    if (isMemOp(inst(Node)))
      Ready = std::max(Ready, static_cast<long>(std::ceil(LdstBusyUntil)));
    return Ready;
  };

  while (Order.size() < N) {
    // Best ready candidate: highest critical-path height, then original
    // program order (the deterministic tie-break).
    int Best = -1;
    for (int Node : Avail) {
      if (effectiveReady(Node) > Cycle)
        continue;
      if (CycleHasMem && isMemOp(inst(Node)))
        continue;
      if (Best < 0 || Height[Node] > Height[Best] ||
          (Height[Node] == Height[Best] && Node < Best))
        Best = Node;
    }

    if (Best < 0) {
      // Nothing issues this cycle: advance to the next time anything can.
      long Next = std::numeric_limits<long>::max();
      for (int Node : Avail)
        Next = std::min(Next, effectiveReady(Node));
      Cycle = std::max(Cycle + Step,
                       Next == std::numeric_limits<long>::max() ? 0 : Next);
      SlotsLeft = Width;
      CycleHasMem = false;
      continue;
    }

    Order.push_back(Best);
    Avail.erase(std::find(Avail.begin(), Avail.end(), Best));
    const Instruction &I = inst(Best);
    if (isMemOp(I)) {
      CycleHasMem = true;
      LdstBusyUntil =
          std::max(LdstBusyUntil, static_cast<double>(Cycle)) +
          ldstPipeCycles(M, I);
    }
    for (const DepEdge &E : Succs[Best]) {
      EarliestStart[E.To] =
          std::max(EarliestStart[E.To], Cycle + E.Latency);
      if (--Pending[E.To] == 0)
        Avail.push_back(E.To);
    }
    if (--SlotsLeft == 0) {
      Cycle += Step;
      SlotsLeft = Width;
      CycleHasMem = false;
    }
  }
  return Order;
}

int RegionScheduler::run() {
  if (N < 2)
    return 0;
  buildDag();
  computeHeights();
  std::vector<int> Order = listSchedule();

  int Moved = 0;
  std::vector<Instruction> Original(Code.begin() + Begin,
                                    Code.begin() + Begin + N);
  for (size_t Slot = 0; Slot < N; ++Slot) {
    if (Order[Slot] != static_cast<int>(Slot))
      ++Moved;
    Code[Begin + Slot] = Original[Order[Slot]];
  }
  return Moved;
}

} // namespace

SchedulerStats gpuperf::scheduleKernel(const MachineDesc &M, Kernel &K) {
  SchedulerStats Stats;
  size_t N = K.Code.size();

  // Branch targets start new regions: reordering across them would change
  // what a taken branch lands on.
  std::vector<char> IsLeader(N, 0);
  for (size_t PC = 0; PC < N; ++PC) {
    const Instruction &I = K.Code[PC];
    if (I.Op != Opcode::BRA)
      continue;
    long Target = static_cast<long>(PC) + 1 + I.Imm;
    if (Target >= 0 && Target < static_cast<long>(N))
      IsLeader[Target] = 1;
  }

  // Straight-line regions: maximal runs free of control instructions and
  // branch targets. Control instructions stay exactly where they are, so
  // every relative branch offset remains valid.
  size_t Start = 0;
  for (size_t PC = 0; PC <= N; ++PC) {
    bool AtEnd = PC == N;
    bool Control = !AtEnd && isControl(K.Code[PC]);
    bool Leader = !AtEnd && IsLeader[PC];
    if (!AtEnd && !Control && !Leader)
      continue;
    if (PC > Start) {
      ++Stats.Regions;
      RegionScheduler RS(M, K.Code, Start, PC);
      Stats.Moved += RS.run();
    }
    Start = Control ? PC + 1 : PC;
  }

  // Notation handoff: the control words must describe the order we just
  // built, not the one the generator emitted. Only kernels that already
  // carry notations are re-tuned -- a deliberately notation-free kernel
  // (NotationQuality::None) stays that way.
  if (M.Generation == GpuGeneration::Kepler && K.hasNotations())
    tuneNotations(M, K, NotationQuality::Tuned);

  return Stats;
}

int gpuperf::rotateRegisterBanks(const MachineDesc &M, Kernel &K) {
  if (M.RegisterFileBanks <= 0)
    return 0;

  // Registers whose index must not change: anything touched by a wide
  // (64/128-bit) memory access, where the ISA implies consecutive and
  // aligned register pairs/quads; and anything at or above the kernel's
  // register count, so regsUsed() -- and with it occupancy -- cannot grow.
  std::vector<char> Pinned(64, 0);
  Pinned[RegRZ] = 1;
  for (const Instruction &I : K.Code) {
    if (!isMemOp(I) || I.Width == MemWidth::B32)
      continue;
    for (uint8_t Reg : I.sourceRegs())
      Pinned[Reg] = 1;
    for (uint8_t Reg : I.destRegs())
      Pinned[Reg] = 1;
  }

  // The objective: total issue-slot surcharge of math source-operand bank
  // conflicts (the ExtraSlots term of bankConflictExtraCycles), evaluated
  // on the distinct-source tuples under a candidate renaming.
  struct Tuple {
    RegList Regs;
    bool QuarterRate;
  };
  std::vector<Tuple> Tuples;
  for (const Instruction &I : K.Code) {
    OpClass Class = opcodeInfo(I.Op).Class;
    if (Class != OpClass::FloatMath && Class != OpClass::IntMath &&
        Class != OpClass::IntMulMath && Class != OpClass::Move)
      continue;
    Tuple T;
    T.QuarterRate = Class == OpClass::IntMulMath;
    bool ImmSlot1 = I.immReplacesSrc1();
    for (int Slot = 0; Slot < opcodeInfo(I.Op).NumSrcRegs; ++Slot) {
      if (ImmSlot1 && Slot == 1)
        continue;
      uint8_t Reg = I.Src[Slot];
      if (Reg == RegRZ || T.Regs.contains(Reg))
        continue;
      T.Regs.push(Reg);
    }
    if (T.Regs.Count >= 2)
      Tuples.push_back(T);
  }
  if (Tuples.empty())
    return 0;

  std::vector<uint8_t> Perm(64);
  for (int Reg = 0; Reg < 64; ++Reg)
    Perm[Reg] = static_cast<uint8_t>(Reg);

  auto tupleCost = [&](const Tuple &T) {
    int Load[NumRegBanks] = {0, 0, 0, 0};
    int Degree = 1;
    for (uint8_t Reg : T.Regs) {
      int Bank = registerBankIndex(Perm[Reg]);
      Degree = std::max(Degree, ++Load[Bank]);
    }
    return T.QuarterRate ? std::max(0, Degree - 2) : Degree - 1;
  };
  auto totalCost = [&]() {
    long Cost = 0;
    for (const Tuple &T : Tuples)
      Cost += tupleCost(T);
    return Cost;
  };

  // Deterministic greedy hill climb over register transpositions: try
  // every unpinned cross-bank pair, keep a swap when it strictly lowers
  // the surcharge, repeat to a fixpoint (bounded for safety).
  int UpperBound = std::min<int>(K.RegsPerThread, MaxGPRIndex + 1);
  long Cost = totalCost();
  int Swaps = 0;
  for (int Pass = 0; Pass < 8 && Cost > 0; ++Pass) {
    bool Improved = false;
    for (int A = 0; A < UpperBound; ++A) {
      if (Pinned[A])
        continue;
      for (int B = A + 1; B < UpperBound; ++B) {
        if (Pinned[B])
          continue;
        if (registerBank(Perm[A]) == registerBank(Perm[B]))
          continue;
        std::swap(Perm[A], Perm[B]);
        long Candidate = totalCost();
        if (Candidate < Cost) {
          Cost = Candidate;
          ++Swaps;
          Improved = true;
        } else {
          std::swap(Perm[A], Perm[B]);
        }
      }
    }
    if (!Improved)
      break;
  }
  if (Swaps == 0)
    return 0;

  // Apply the renaming uniformly: every read and write of register R
  // becomes Perm[R], so the execution is isomorphic. ISETP's Dst is a
  // predicate index and stays untouched; wide-access registers are pinned
  // above, so Perm is the identity on them.
  for (Instruction &I : K.Code) {
    for (uint8_t &Src : I.Src)
      Src = Perm[Src];
    if (opcodeInfo(I.Op).HasDstReg)
      I.Dst = Perm[I.Dst];
  }
  K.recomputeRegUsage();
  return Swaps;
}
