//===- kernelgen/Scheduler.h - latency/port-aware list scheduler -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A latency- and port-aware list scheduler for generated kernels, the
/// Section 5.3 optimization done properly: instead of the fixed "drip"
/// interleave (one prefetch load after each shared load), build the
/// dependence DAG of every straight-line region, model the machine's
/// issue width, dual-issue pairing and LD/ST throughput, and re-emit each
/// region with long-latency prefetch instructions placed into the cycles
/// the critical path genuinely leaves idle.
///
/// The pass never moves control instructions and never reorders across a
/// branch target, so every BRA offset stays valid; instruction counts are
/// preserved exactly. On Kepler the pass hands the final order back to
/// the NotationTuner so the control words describe the schedule that was
/// actually built rather than being retrofitted per opcode.
///
/// rotateRegisterBanks is the companion operand-mapping pass (Table 2 /
/// Figure 9): a bijective renaming of the architectural registers that
/// hill-climbs the FFMA source-operand bank conflicts down, leaving
/// registers that participate in wide (64/128-bit) accesses pinned so
/// pair alignment survives.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_KERNELGEN_SCHEDULER_H
#define GPUPERF_KERNELGEN_SCHEDULER_H

#include "arch/MachineDesc.h"
#include "isa/Module.h"

namespace gpuperf {

/// How the generator orders the main-loop body.
enum class SgemmSchedule {
  Drip, ///< Section 5.3 fixed interleave (one prefetch per shared load).
  List, ///< Dependence-DAG list scheduling (this pass).
};

const char *sgemmScheduleName(SgemmSchedule S);

/// Outcome summary of a scheduling pass (for reports and tests).
struct SchedulerStats {
  int Regions = 0;   ///< Straight-line regions considered.
  int Moved = 0;     ///< Instructions whose position changed.
  int BankSwaps = 0; ///< Register transpositions applied by rotation.
};

/// List-schedules every straight-line region of \p K for machine \p M.
/// Instruction counts and control-instruction positions are preserved
/// (branch offsets stay valid); only data instructions move, and only
/// within their region. On Kepler kernels that carry control notations,
/// the notations are regenerated dependence-aware so they match the new
/// order.
SchedulerStats scheduleKernel(const MachineDesc &M, Kernel &K);

/// Applies a bijective register renaming to \p K that reduces the total
/// register-bank-conflict surcharge of its math instructions (Section
/// 3.3 / Table 2). Registers touched by wide memory accesses are pinned,
/// as is every index >= K.RegsPerThread (so occupancy cannot regress).
/// Returns the number of transpositions applied; 0 on machines without a
/// banked register file.
int rotateRegisterBanks(const MachineDesc &M, Kernel &K);

} // namespace gpuperf

#endif // GPUPERF_KERNELGEN_SCHEDULER_H
