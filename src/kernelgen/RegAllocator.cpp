//===- kernelgen/RegAllocator.cpp - SGEMM register allocation -------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "kernelgen/RegAllocator.h"

#include "arch/RegisterBank.h"
#include "support/Format.h"

#include <algorithm>
#include <array>

using namespace gpuperf;

int SgemmRegMap::regsUsed() const {
  int Max = -1;
  auto Consider = [&Max](uint8_t Reg) {
    Max = std::max(Max, static_cast<int>(Reg));
  };
  for (uint8_t Reg : Acc)
    Consider(Reg);
  for (uint8_t Reg : A)
    Consider(Reg);
  Consider(B[0]);
  Consider(B[1]);
  for (uint8_t Reg : Prefetch)
    Consider(Reg);
  for (uint8_t Reg : {RLoop, RGA, RGB, RSA, RSB, RRA, RRB})
    Consider(Reg);
  return Max + 1;
}

int gpuperf::countTileConflicts(const SgemmRegMap &Map, int Degree) {
  int BR = static_cast<int>(Map.A.size());
  int Count = 0;
  for (int I = 0; I < BR; ++I)
    for (int J = 0; J < BR; ++J) {
      uint8_t Regs[3] = {Map.A[I], Map.B[J % 2], Map.acc(I, J)};
      // Distinct registers only (repeated registers share a read port).
      RegList Distinct;
      for (uint8_t Reg : Regs)
        if (!Distinct.contains(Reg))
          Distinct.push(Reg);
      if (bankConflictDegree(Distinct) >= Degree)
        ++Count;
    }
  return Count;
}

namespace {

/// Tracks which architectural registers remain unassigned.
class RegPool {
public:
  RegPool() { Free.fill(true); }

  bool take(uint8_t Reg) {
    if (Reg > MaxGPRIndex || !Free[Reg])
      return false;
    Free[Reg] = false;
    return true;
  }

  /// Lowest free register, or -1.
  int lowest() const {
    for (int Reg = 0; Reg <= MaxGPRIndex; ++Reg)
      if (Free[Reg])
        return Reg;
    return -1;
  }

  /// Lowest free register on \p Bank, or -1.
  int lowestOnBank(RegBank Bank) const {
    for (int Reg = 0; Reg <= MaxGPRIndex; ++Reg)
      if (Free[Reg] && registerBank(static_cast<unsigned>(Reg)) == Bank)
        return Reg;
    return -1;
  }

  int freeOnBank(RegBank Bank) const {
    int N = 0;
    for (int Reg = 0; Reg <= MaxGPRIndex; ++Reg)
      if (Free[Reg] && registerBank(static_cast<unsigned>(Reg)) == Bank)
        ++N;
    return N;
  }

  /// Lowest even register with Reg and Reg+1 free whose low index is on
  /// bank \p Lo (pairs span (Lo, Lo+odd) banks).
  int lowestAlignedPair(std::initializer_list<int> StartMod8) const {
    for (int Reg = 0; Reg + 1 <= MaxGPRIndex; Reg += 2) {
      if (!Free[Reg] || !Free[Reg + 1])
        continue;
      for (int Mod : StartMod8)
        if (Reg % 8 == Mod)
          return Reg;
    }
    return -1;
  }

private:
  std::array<bool, 64> Free;
};

Expected<SgemmRegMap> allocateBankAware(const SgemmKernelConfig &Cfg) {
  using EM = Expected<SgemmRegMap>;
  SgemmRegMap Map;
  RegPool Pool;
  Pool.take(RegRZ); // Not allocatable.
  const int BR = Cfg.BR;

  // A column: aligned pairs whose banks are {even0, odd0}.
  for (int P = 0; P < BR / 2; ++P) {
    int Pair = Pool.lowestAlignedPair({0, 2});
    if (Pair < 0)
      return EM::error("no even0/odd0 pair left for the A column");
    Pool.take(static_cast<uint8_t>(Pair));
    Pool.take(static_cast<uint8_t>(Pair + 1));
    Map.A.push_back(static_cast<uint8_t>(Pair));
    Map.A.push_back(static_cast<uint8_t>(Pair + 1));
  }
  // B row: one aligned pair on {even1, odd1}.
  int BPair = Pool.lowestAlignedPair({4, 6});
  if (BPair < 0)
    return EM::error("no even1/odd1 pair left for the B row");
  Pool.take(static_cast<uint8_t>(BPair));
  Pool.take(static_cast<uint8_t>(BPair + 1));
  Map.B[0] = static_cast<uint8_t>(BPair);
  Map.B[1] = static_cast<uint8_t>(BPair + 1);

  // Accumulator tile: each cell (i, j) must avoid bank(A[i]) and
  // bank(B[j%2]); two banks remain legal per cell. Greedily prefer the
  // legal bank with more free registers so the per-bank supply holds out
  // (the Figure 9 "9 registers on each bank" balance emerges).
  // Each cell belongs to one of four (i parity, j parity) classes with
  // two legal banks each. Splitting every class's quota between its two
  // banks with the exact counts below yields BR*BR/4 accumulators per
  // bank -- Figure 9's "9 registers on each bank" for BR = 6.
  Map.Acc.assign(static_cast<size_t>(BR) * BR, 0);
  const int CellsPerClass = BR * BR / 4;
  const int T = CellsPerClass / 2;
  // Quota of the *lower-numbered* legal bank per class (solved so each
  // bank receives exactly CellsPerClass registers in total).
  const int FirstQuota[4] = {T, T, CellsPerClass - T, T};
  int FirstUsed[4] = {0, 0, 0, 0};
  for (int I = 0; I < BR; ++I)
    for (int J = 0; J < BR; ++J) {
      RegBank Avoid1 = registerBank(Map.A[I]);
      RegBank Avoid2 = registerBank(Map.B[J % 2]);
      RegBank Options[2];
      int NumOptions = 0;
      for (int BankIdx = 0; BankIdx < NumRegBanks; ++BankIdx) {
        RegBank Bank = static_cast<RegBank>(BankIdx);
        if (Bank != Avoid1 && Bank != Avoid2)
          Options[NumOptions++] = Bank;
      }
      assert(NumOptions == 2 && "A and B banks must differ");
      int Class = (I % 2) * 2 + (J % 2);
      RegBank Chosen = FirstUsed[Class] < FirstQuota[Class]
                           ? Options[0]
                           : Options[1];
      if (Chosen == Options[0])
        ++FirstUsed[Class];
      int Reg = Pool.lowestOnBank(Chosen);
      if (Reg < 0)
        return EM::error(formatString(
            "accumulator bank %s exhausted at cell (%d, %d)",
            registerBankName(Chosen), I, J));
      Pool.take(static_cast<uint8_t>(Reg));
      Map.Acc[static_cast<size_t>(I) * BR + J] =
          static_cast<uint8_t>(Reg);
    }

  // Prefetch and addressing registers have no bank constraints. Spilled
  // configurations hold two fewer panel elements in registers.
  int PrefetchCount = Cfg.EmulateSpills ? 2 * BR - 2 : 2 * BR;
  for (int P = 0; P < PrefetchCount; ++P) {
    int Reg = Pool.lowest();
    if (Reg < 0)
      return EM::error("register file exhausted allocating prefetch");
    Pool.take(static_cast<uint8_t>(Reg));
    Map.Prefetch.push_back(static_cast<uint8_t>(Reg));
  }
  auto TakeLowest = [&Pool](uint8_t &Out) {
    int Reg = Pool.lowest();
    if (Reg < 0)
      return false;
    Pool.take(static_cast<uint8_t>(Reg));
    Out = static_cast<uint8_t>(Reg);
    return true;
  };
  for (uint8_t *Reg : {&Map.RLoop, &Map.RGA, &Map.RGB, &Map.RSA, &Map.RSB,
                       &Map.RRA, &Map.RRB})
    if (!TakeLowest(*Reg))
      return EM::error("register file exhausted allocating addressing");
  return Map;
}

/// nvcc-style: the LDS.64 pair alignment gives A and B clean bank pairs,
/// but the accumulator tile is laid out sequentially, so roughly half the
/// FFMAs collide with one of their operands (2-way only -- A and B never
/// share a bank). This matches the Figure 8 census of the MAGMA binaries.
Expected<SgemmRegMap> allocateCompiler(const SgemmKernelConfig &Cfg) {
  using EM = Expected<SgemmRegMap>;
  SgemmRegMap Map;
  RegPool Pool;
  Pool.take(RegRZ);
  const int BR = Cfg.BR;
  for (int P = 0; P < BR / 2; ++P) {
    int Pair = Pool.lowestAlignedPair({0, 2});
    if (Pair < 0)
      return EM::error("no aligned pair left for the A column");
    Pool.take(static_cast<uint8_t>(Pair));
    Pool.take(static_cast<uint8_t>(Pair + 1));
    Map.A.push_back(static_cast<uint8_t>(Pair));
    Map.A.push_back(static_cast<uint8_t>(Pair + 1));
  }
  int BPair = Pool.lowestAlignedPair({4, 6});
  if (BPair < 0)
    return EM::error("no aligned pair left for the B row");
  Pool.take(static_cast<uint8_t>(BPair));
  Pool.take(static_cast<uint8_t>(BPair + 1));
  Map.B[0] = static_cast<uint8_t>(BPair);
  Map.B[1] = static_cast<uint8_t>(BPair + 1);

  auto TakeLowest = [&Pool](uint8_t &Out) {
    int Reg = Pool.lowest();
    if (Reg < 0)
      return false;
    Pool.take(static_cast<uint8_t>(Reg));
    Out = static_cast<uint8_t>(Reg);
    return true;
  };
  // Accumulators: the compiler's local heuristic avoids the bank of the
  // cell's A operand, and (when the surrounding schedule makes the
  // conflict visible to it -- modeled as every other column) also the B
  // operand's bank. The remaining collisions give the ~30% 2-way rate of
  // Figure 8's MAGMA bars; 3-way conflicts cannot occur because A and B
  // pairs never share a bank.
  for (int C = 0; C < BR * BR; ++C) {
    int I = C / BR, J = C % BR;
    RegBank AvoidA = registerBank(Map.A[I]);
    RegBank AvoidB = registerBank(Map.B[J % 2]);
    bool AlsoAvoidB = I % 2 == 0;
    int Reg = -1;
    for (int Candidate = 0; Candidate <= MaxGPRIndex; ++Candidate) {
      RegBank Bank = registerBank(static_cast<unsigned>(Candidate));
      if (Bank == AvoidA || (AlsoAvoidB && Bank == AvoidB))
        continue;
      if (Pool.take(static_cast<uint8_t>(Candidate))) {
        Reg = Candidate;
        break;
      }
    }
    if (Reg < 0)
      return EM::error("register file exhausted allocating accumulators");
    Map.Acc.push_back(static_cast<uint8_t>(Reg));
  }
  int PrefetchCount = Cfg.EmulateSpills ? 2 * BR - 2 : 2 * BR;
  for (int P = 0; P < PrefetchCount; ++P) {
    uint8_t Reg = 0;
    if (!TakeLowest(Reg))
      return EM::error("register file exhausted allocating prefetch");
    Map.Prefetch.push_back(Reg);
  }
  for (uint8_t *Reg : {&Map.RLoop, &Map.RGA, &Map.RGB, &Map.RSA, &Map.RSB,
                       &Map.RRA, &Map.RRB})
    if (!TakeLowest(*Reg))
      return EM::error("register file exhausted allocating addressing");
  return Map;
}

Expected<SgemmRegMap> allocateNaive(const SgemmKernelConfig &Cfg) {
  using EM = Expected<SgemmRegMap>;
  SgemmRegMap Map;
  const int BR = Cfg.BR;
  int Next = 0;
  auto Take = [&Next]() { return static_cast<uint8_t>(Next++); };

  // Compiler-style: values in declaration order with no bank awareness,
  // only the alignment the ISA forces (even pairs for LDS.64 targets).
  // Tile operands first (they are declared first in source order), then
  // the prefetch buffers and addressing temporaries.
  for (int I = 0; I < BR; ++I)
    Map.A.push_back(Take());
  Map.B[0] = Take();
  Map.B[1] = Take();
  for (int C = 0; C < BR * BR; ++C)
    Map.Acc.push_back(Take());
  int PrefetchCount = Cfg.EmulateSpills ? 2 * BR - 2 : 2 * BR;
  for (int P = 0; P < PrefetchCount; ++P)
    Map.Prefetch.push_back(Take());
  for (uint8_t *Reg : {&Map.RLoop, &Map.RGA, &Map.RGB, &Map.RSA, &Map.RSB,
                       &Map.RRA, &Map.RRB})
    *Reg = Take();
  if (Next - 1 > MaxGPRIndex)
    return EM::error(formatString(
        "naive allocation needs %d registers (limit 63)", Next));
  return Map;
}

} // namespace

Expected<SgemmRegMap>
gpuperf::allocateSgemmRegisters(const SgemmKernelConfig &Cfg) {
  assert(Cfg.BR >= 2 && Cfg.BR <= 6 && Cfg.BR % 2 == 0 &&
         "supported blocking factors are 2, 4, 6");
  switch (Cfg.RegAlloc) {
  case RegAllocKind::BankAware:
    return allocateBankAware(Cfg);
  case RegAllocKind::Compiler:
    return allocateCompiler(Cfg);
  case RegAllocKind::Naive:
    return allocateNaive(Cfg);
  }
  return allocateNaive(Cfg);
}
