//===- sim/Memory.h - simulated global and shared memories ------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-addressable simulated memories. Global memory uses 32-bit byte
/// addresses (the paper's kernels deliberately use 32-bit addressing to
/// save address registers, Section 5.2); shared memory is one allocation
/// per resident block.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_MEMORY_H
#define GPUPERF_SIM_MEMORY_H

#include "support/Error.h"

#include <array>
#include <bitset>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

namespace gpuperf {

/// The device's global memory plus a trivial bump allocator. The backing
/// store grows on allocate(), so small experiments stay cheap while
/// 4800x4800 SGEMM (276 MB of matrices) still fits the 32-bit space.
class GlobalMemory {
public:
  explicit GlobalMemory(size_t Bytes = 1ull << 20) : Data(Bytes, 0) {}

  /// Allocates \p Bytes aligned to 256 (like cudaMalloc); returns the byte
  /// address, or a recoverable error on 32-bit address-space exhaustion.
  Expected<uint32_t> tryAllocate(size_t Bytes) {
    size_t Aligned = (Next + 255) & ~size_t(255);
    if (Aligned + Bytes > (1ull << 32))
      return Expected<uint32_t>::error(
          "global address space exhausted (32-bit device addressing)");
    Next = Aligned + Bytes;
    if (Next > Data.size())
      Data.resize(Next, 0);
    return static_cast<uint32_t>(Aligned);
  }

  /// Allocation for callers whose sizes are known small; asserts (and, in
  /// release builds, clamps to the end of the address space) on
  /// exhaustion. Prefer tryAllocate for anything driven by user input.
  uint32_t allocate(size_t Bytes) {
    auto Addr = tryAllocate(Bytes);
    assert(Addr.hasValue() && "global address space exhausted");
    if (!Addr.hasValue())
      return 0xffffff00u; // Past every allocation: accesses trap as OOB.
    return *Addr;
  }

  /// Resets the allocator (contents preserved).
  void resetAllocator() { Next = 256; }

  bool inBounds(uint64_t Addr, int Bytes) const {
    return Addr + Bytes <= Data.size();
  }

  /// Accesses are total functions: the executor raises a trap *before*
  /// touching memory, and these guards make a missed check in some future
  /// caller read zero / drop the store instead of corrupting the host
  /// heap -- in release builds too (asserts compile out under NDEBUG).
  uint32_t load32(uint32_t Addr) const {
    assert(inBounds(Addr, 4) && "global load out of bounds");
    if (!inBounds(Addr, 4))
      return 0;
    uint32_t V;
    std::memcpy(&V, Data.data() + Addr, 4);
    return V;
  }
  void store32(uint32_t Addr, uint32_t Value) {
    assert(inBounds(Addr, 4) && "global store out of bounds");
    if (!inBounds(Addr, 4))
      return;
    std::memcpy(Data.data() + Addr, &Value, 4);
  }

  /// Typed host-side access for filling/checking matrices.
  float loadFloat(uint32_t Addr) const {
    uint32_t V = load32(Addr);
    float F;
    std::memcpy(&F, &V, 4);
    return F;
  }
  void storeFloat(uint32_t Addr, float F) {
    uint32_t V;
    std::memcpy(&V, &F, 4);
    store32(Addr, V);
  }

  size_t size() const { return Data.size(); }

private:
  std::vector<uint8_t> Data;
  size_t Next = 256; // Keep address 0 invalid-ish.
};

/// A word-granular write overlay over a GlobalMemory, the mechanism that
/// lets independent SMs of one launch simulate concurrently: every SM
/// executes against a private overlay (reads fall through to the shared
/// base image, writes land in the overlay), and after all SMs finish the
/// overlays are applied to the base *in SM index order* -- the exact
/// order the serial path wrote in. For kernels whose blocks are
/// independent (no inter-block communication through global memory
/// within a launch -- the CUDA execution-model contract every kernel in
/// this repo satisfies), the merged image and every per-SM simulation
/// are bit-identical to the serial path.
///
/// Tracking is per 32-bit word because the ISA's global accesses are
/// word-multiples and word-aligned (the executor traps misalignment
/// before memory is touched), so two SMs writing different words of the
/// same 4 KB page -- adjacent SGEMM C tiles do this constantly -- merge
/// exactly.
class GlobalWriteOverlay {
public:
  /// Overlay value if this overlay wrote \p Addr, else the base value.
  uint32_t load32(const GlobalMemory &Base, uint32_t Addr) const {
    assert(Addr % 4 == 0 && "global word access must be 4-byte aligned");
    auto It = Pages.find(Addr / PageBytes);
    if (It != Pages.end()) {
      uint32_t Word = (Addr % PageBytes) / 4;
      if (It->second.Dirty[Word])
        return It->second.Words[Word];
    }
    return Base.load32(Addr);
  }

  /// Records a write. Mirrors GlobalMemory::store32's total-function
  /// guard: out-of-bounds stores are dropped here too, so overlaid and
  /// direct execution stay indistinguishable even for a hypothetical
  /// missed bounds check upstream.
  void store32(const GlobalMemory &Base, uint32_t Addr, uint32_t Value) {
    assert(Addr % 4 == 0 && "global word access must be 4-byte aligned");
    if (!Base.inBounds(Addr, 4))
      return;
    Page &P = Pages[Addr / PageBytes];
    uint32_t Word = (Addr % PageBytes) / 4;
    P.Words[Word] = Value;
    P.Dirty[Word] = true;
  }

  /// Applies every recorded write to \p Base in ascending address order
  /// (the map is ordered, so this is deterministic).
  void applyTo(GlobalMemory &Base) const {
    for (const auto &[PageIdx, P] : Pages) {
      for (uint32_t Word = 0; Word < PageWords; ++Word)
        if (P.Dirty[Word])
          Base.store32(PageIdx * PageBytes + 4 * Word, P.Words[Word]);
    }
  }

  bool empty() const { return Pages.empty(); }

private:
  static constexpr uint32_t PageWords = 1024; ///< 4 KB pages.
  static constexpr uint32_t PageBytes = PageWords * 4;

  struct Page {
    std::array<uint32_t, PageWords> Words{};
    std::bitset<PageWords> Dirty;
  };

  std::map<uint32_t, Page> Pages;
};

/// What the executor reads and writes global memory through: either the
/// GlobalMemory directly (serial simulation -- zero behaviour change) or
/// base-plus-overlay (one overlay per concurrently-simulated SM).
class GlobalMemoryView {
public:
  /*implicit*/ GlobalMemoryView(GlobalMemory &Base) : Base(&Base) {}
  GlobalMemoryView(GlobalMemory &Base, GlobalWriteOverlay &Overlay)
      : Base(&Base), Overlay(&Overlay) {}

  /// Bounds always come from the base image: an overlay never extends
  /// the address space.
  bool inBounds(uint64_t Addr, int Bytes) const {
    return Base->inBounds(Addr, Bytes);
  }
  size_t size() const { return Base->size(); }

  uint32_t load32(uint32_t Addr) const {
    return Overlay ? Overlay->load32(*Base, Addr) : Base->load32(Addr);
  }
  /// const like the executor's execute(): the view is a handle; stores
  /// mutate the referenced memory (or overlay), not the view itself.
  void store32(uint32_t Addr, uint32_t Value) const {
    if (Overlay)
      Overlay->store32(*Base, Addr, Value);
    else
      Base->store32(Addr, Value);
  }

private:
  GlobalMemory *Base;
  GlobalWriteOverlay *Overlay = nullptr;
};

/// One block's shared memory.
class SharedMemory {
public:
  explicit SharedMemory(int Bytes)
      : Data(static_cast<size_t>(Bytes < 0 ? 0 : Bytes), 0) {}

  bool inBounds(int64_t Addr, int Bytes) const {
    return Addr >= 0 &&
           static_cast<size_t>(Addr + Bytes) <= Data.size();
  }
  /// Total functions for the same reason as GlobalMemory: the executor
  /// traps before calling these, and the guards keep NDEBUG builds safe.
  uint32_t load32(int64_t Addr) const {
    assert(inBounds(Addr, 4) && "shared load out of bounds");
    if (!inBounds(Addr, 4))
      return 0;
    uint32_t V;
    std::memcpy(&V, Data.data() + Addr, 4);
    return V;
  }
  void store32(int64_t Addr, uint32_t Value) {
    assert(inBounds(Addr, 4) && "shared store out of bounds");
    if (!inBounds(Addr, 4))
      return;
    std::memcpy(Data.data() + Addr, &Value, 4);
  }
  int size() const { return static_cast<int>(Data.size()); }

private:
  std::vector<uint8_t> Data;
};

} // namespace gpuperf

#endif // GPUPERF_SIM_MEMORY_H
