//===- sim/Memory.h - simulated global and shared memories ------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-addressable simulated memories. Global memory uses 32-bit byte
/// addresses (the paper's kernels deliberately use 32-bit addressing to
/// save address registers, Section 5.2); shared memory is one allocation
/// per resident block.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_MEMORY_H
#define GPUPERF_SIM_MEMORY_H

#include "support/Error.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace gpuperf {

/// The device's global memory plus a trivial bump allocator. The backing
/// store grows on allocate(), so small experiments stay cheap while
/// 4800x4800 SGEMM (276 MB of matrices) still fits the 32-bit space.
class GlobalMemory {
public:
  explicit GlobalMemory(size_t Bytes = 1ull << 20) : Data(Bytes, 0) {}

  /// Allocates \p Bytes aligned to 256 (like cudaMalloc); returns the byte
  /// address, or a recoverable error on 32-bit address-space exhaustion.
  Expected<uint32_t> tryAllocate(size_t Bytes) {
    size_t Aligned = (Next + 255) & ~size_t(255);
    if (Aligned + Bytes > (1ull << 32))
      return Expected<uint32_t>::error(
          "global address space exhausted (32-bit device addressing)");
    Next = Aligned + Bytes;
    if (Next > Data.size())
      Data.resize(Next, 0);
    return static_cast<uint32_t>(Aligned);
  }

  /// Allocation for callers whose sizes are known small; asserts (and, in
  /// release builds, clamps to the end of the address space) on
  /// exhaustion. Prefer tryAllocate for anything driven by user input.
  uint32_t allocate(size_t Bytes) {
    auto Addr = tryAllocate(Bytes);
    assert(Addr.hasValue() && "global address space exhausted");
    if (!Addr.hasValue())
      return 0xffffff00u; // Past every allocation: accesses trap as OOB.
    return *Addr;
  }

  /// Resets the allocator (contents preserved).
  void resetAllocator() { Next = 256; }

  bool inBounds(uint64_t Addr, int Bytes) const {
    return Addr + Bytes <= Data.size();
  }

  /// Accesses are total functions: the executor raises a trap *before*
  /// touching memory, and these guards make a missed check in some future
  /// caller read zero / drop the store instead of corrupting the host
  /// heap -- in release builds too (asserts compile out under NDEBUG).
  uint32_t load32(uint32_t Addr) const {
    assert(inBounds(Addr, 4) && "global load out of bounds");
    if (!inBounds(Addr, 4))
      return 0;
    uint32_t V;
    std::memcpy(&V, Data.data() + Addr, 4);
    return V;
  }
  void store32(uint32_t Addr, uint32_t Value) {
    assert(inBounds(Addr, 4) && "global store out of bounds");
    if (!inBounds(Addr, 4))
      return;
    std::memcpy(Data.data() + Addr, &Value, 4);
  }

  /// Typed host-side access for filling/checking matrices.
  float loadFloat(uint32_t Addr) const {
    uint32_t V = load32(Addr);
    float F;
    std::memcpy(&F, &V, 4);
    return F;
  }
  void storeFloat(uint32_t Addr, float F) {
    uint32_t V;
    std::memcpy(&V, &F, 4);
    store32(Addr, V);
  }

  size_t size() const { return Data.size(); }

private:
  std::vector<uint8_t> Data;
  size_t Next = 256; // Keep address 0 invalid-ish.
};

/// One block's shared memory.
class SharedMemory {
public:
  explicit SharedMemory(int Bytes)
      : Data(static_cast<size_t>(Bytes < 0 ? 0 : Bytes), 0) {}

  bool inBounds(int64_t Addr, int Bytes) const {
    return Addr >= 0 &&
           static_cast<size_t>(Addr + Bytes) <= Data.size();
  }
  /// Total functions for the same reason as GlobalMemory: the executor
  /// traps before calling these, and the guards keep NDEBUG builds safe.
  uint32_t load32(int64_t Addr) const {
    assert(inBounds(Addr, 4) && "shared load out of bounds");
    if (!inBounds(Addr, 4))
      return 0;
    uint32_t V;
    std::memcpy(&V, Data.data() + Addr, 4);
    return V;
  }
  void store32(int64_t Addr, uint32_t Value) {
    assert(inBounds(Addr, 4) && "shared store out of bounds");
    if (!inBounds(Addr, 4))
      return;
    std::memcpy(Data.data() + Addr, &Value, 4);
  }
  int size() const { return static_cast<int>(Data.size()); }

private:
  std::vector<uint8_t> Data;
};

} // namespace gpuperf

#endif // GPUPERF_SIM_MEMORY_H
