//===- sim/SMSimulator.h - cycle-level single-SM simulator ------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates one SM executing one wave of resident blocks, cycle by cycle:
/// warp schedulers with round-robin selection, dispatch-port and issue-pipe
/// occupancy, a scoreboard with per-class latencies, shared-memory bank
/// serialization, a bandwidth/latency global-memory model, barriers, and
/// the Kepler control-notation semantics (stall/yield/dual-issue hints with
/// replay penalties for mis-hinted dependences, and a slow conservative
/// fallback for binaries without notations -- Section 3.2's "the
/// performance is very poor").
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_SMSIMULATOR_H
#define GPUPERF_SIM_SMSIMULATOR_H

#include "arch/MachineDesc.h"
#include "isa/Module.h"
#include "sim/Executor.h"
#include "sim/Stats.h"
#include "support/Error.h"

#include <vector>

namespace gpuperf {

/// Simulates one wave: the blocks in \p BlockIds resident together on one
/// SM from cycle 0 until all exit. Functional effects land in the
/// executor's global memory. Returns per-wave statistics or a fault
/// (runtime error in the kernel, deadlock, cycle-limit overflow).
Expected<SimStats> simulateWave(const MachineDesc &M, const Kernel &K,
                                Executor &Exec, const LaunchDims &Dims,
                                const std::vector<int> &BlockIds);

} // namespace gpuperf

#endif // GPUPERF_SIM_SMSIMULATOR_H
