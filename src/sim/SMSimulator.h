//===- sim/SMSimulator.h - cycle-level single-SM simulator ------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates one SM executing one wave of resident blocks, cycle by cycle:
/// warp schedulers with round-robin selection, dispatch-port and issue-pipe
/// occupancy, a scoreboard with per-class latencies, shared-memory bank
/// serialization, a bandwidth/latency global-memory model, barriers, and
/// the Kepler control-notation semantics (stall/yield/dual-issue hints with
/// replay penalties for mis-hinted dependences, and a slow conservative
/// fallback for binaries without notations -- Section 3.2's "the
/// performance is very poor").
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_SMSIMULATOR_H
#define GPUPERF_SIM_SMSIMULATOR_H

#include "arch/MachineDesc.h"
#include "isa/Module.h"
#include "probe/ProbeEngine.h"
#include "sim/Executor.h"
#include "sim/Profile.h"
#include "sim/Stats.h"
#include "sim/Trace.h"
#include "sim/Trap.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace gpuperf {

/// Absolute backstop on simulated cycles per wave: even with no (or an
/// absurd) watchdog budget configured, a broken kernel cannot hang the
/// host process.
inline constexpr uint64_t MaxWaveCycles = 1ull << 33;

/// Simulates one wave: the blocks in \p BlockIds resident together on one
/// SM from cycle 0 until all exit. Functional effects land in the
/// executor's global memory. Returns per-wave statistics, or fails with a
/// structured trap (runtime fault in the kernel, watchdog expiry,
/// deadlock): the failure message is TrapInfo::toString() and, when
/// \p TrapOut is non-null, *TrapOut receives the full structured record.
/// \p WatchdogCycles bounds the wave's simulated cycles (0 applies only
/// the MaxWaveCycles backstop). When \p Trace is non-null the wave's
/// per-warp issue and per-scheduler stall events are recorded into it
/// (the caller brackets the wave with beginWave/endWave).
///
/// The returned stats satisfy the issue-slot invariant: every cycle each
/// of the machine's warp schedulers owns one issue slot, accounted to
/// exactly one SlotUse cause, so
///   Stats.Breakdown.total() == Stats.Cycles * max(1, WarpSchedulersPerSM)
///
/// When \p Profile is non-null the same events are additionally
/// attributed to static instructions (accumulating across waves: the
/// profile is reset only if its shape does not match \p K), preserving
/// the per-cause identity Profile->breakdown() == Stats.Breakdown for
/// successful waves -- see sim/Profile.h for the attribution rules.
///
/// When \p Probes is non-null (and enabled) the wave additionally fires
/// probe events into it at the same observation points -- the caller
/// brackets waves with ProbeEngine::beginWave so watchpoint cycles read
/// on the SM launch timeline, mirroring the TraceRecorder protocol.
Expected<SimStats> simulateWave(const MachineDesc &M, const Kernel &K,
                                Executor &Exec, const LaunchDims &Dims,
                                const std::vector<int> &BlockIds,
                                uint64_t WatchdogCycles = 0,
                                TrapInfo *TrapOut = nullptr,
                                TraceRecorder *Trace = nullptr,
                                KernelProfile *Profile = nullptr,
                                ProbeEngine *Probes = nullptr);

/// Process-wide count of SM cycles simulated by successful waves since
/// process start (atomic; waves may run concurrently). The bench
/// harness samples it to report simulated-cycles-per-wall-second, the
/// simulator's own throughput metric.
uint64_t totalSimulatedCycles();

/// Process-wide per-cause issue-slot tally over the same successful
/// waves (atomic). BenchRun samples it around a bench run to embed a
/// stall breakdown in every metrics record; together with
/// totalSimulatedCycles it satisfies the same invariant as per-wave
/// stats: total() == totalSimulatedCycles() * schedulers (for a process
/// that simulates a single machine model).
StallBreakdown totalIssueSlotBreakdown();

/// Sorted, deduplicated names of every machine model successfully
/// simulated since process start (mutex-guarded registry, sampled the
/// same way as the tallies above). Metrics records embed it so perfdiff
/// can refuse comparisons across different simulated machines -- a
/// GTX580 suite and a GTX680 suite measure different things even when
/// the bench names match.
std::vector<std::string> simulatedMachineNames();

} // namespace gpuperf

#endif // GPUPERF_SIM_SMSIMULATOR_H
