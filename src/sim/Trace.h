//===- sim/Trace.h - per-warp issue/stall event timeline --------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer: when a launch opts in
/// (LaunchConfig::Trace), the SM simulator records one event per issued
/// warp instruction and one event per contiguous lost-issue-slot span per
/// scheduler, into fixed-capacity per-track ring buffers (old events are
/// evicted, never reallocated mid-simulation). The launcher stitches the
/// per-SM, per-wave buffers into one chip timeline -- in SM index order,
/// so the trace is bit-identical for every LaunchConfig::Jobs value --
/// and writeChromeTrace() renders it as Chrome trace_event JSON loadable
/// in chrome://tracing or Perfetto.
///
/// When no trace is requested the simulator's only cost is one untaken
/// null-pointer test per issue, so tracing is zero-overhead when off.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_TRACE_H
#define GPUPERF_SIM_TRACE_H

#include "isa/Opcode.h"
#include "sim/Stats.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace gpuperf {

struct MachineDesc;

/// One timeline event. Issue events live on a per-warp track; stall
/// events (a span of lost issue slots with their attributed cause) live
/// on a per-scheduler track.
struct TraceEvent {
  uint64_t Cycle = 0; ///< Start cycle (launch timeline, wave-offset).
  uint64_t Dur = 1;   ///< Cycles covered (1 for issues).
  int32_t PC = -1;    ///< Static instruction index (issues only).
  int32_t BlockId = -1; ///< Linear block id (issues only).
  int16_t SM = 0;       ///< Filled by the launcher at merge time.
  uint16_t Track = 0;   ///< Warp slot, or SchedTrackBase + scheduler.
  uint8_t IsStall = 0;  ///< 0 = issue, 1 = lost-slot span.
  uint8_t Code = 0;     ///< Opcode (issues) or SlotUse (stalls).
  uint8_t WarpInBlock = 0;

  bool operator==(const TraceEvent &O) const {
    return Cycle == O.Cycle && Dur == O.Dur && PC == O.PC &&
           BlockId == O.BlockId && SM == O.SM && Track == O.Track &&
           IsStall == O.IsStall && Code == O.Code &&
           WarpInBlock == O.WarpInBlock;
  }
};

/// Scheduler tracks are numbered from here so they sort after any
/// realistic warp-slot track id in trace viewers.
inline constexpr uint16_t SchedTrackBase = 1000;

/// Collects the events of one SM across its waves. The simulator pushes
/// raw events; the recorder owns the ring-buffer eviction policy and the
/// coalescing of adjacent same-cause stall spans.
class TraceRecorder {
public:
  /// \p RingCapacity caps the retained events per track (warp or
  /// scheduler); the newest events win.
  explicit TraceRecorder(size_t RingCapacity);

  /// Starts a wave whose local cycle 0 is \p CycleOffset on the SM's
  /// launch timeline, with \p NumWarps warp tracks and \p NumSchedulers
  /// scheduler tracks.
  void beginWave(size_t NumWarps, int NumSchedulers,
                 uint64_t CycleOffset);

  /// Records one issued instruction on warp track \p WarpSlot.
  void issue(int WarpSlot, int BlockId, int WarpInBlock, uint64_t Cycle,
             int PC, Opcode Op);

  /// Records \p Cycles lost issue slots on scheduler \p Sched starting at
  /// \p Cycle, attributed to \p Use. Adjacent same-cause spans coalesce.
  void stall(int Sched, uint64_t Cycle, uint64_t Cycles, SlotUse Use);

  /// Flushes open stall spans; must be called after each wave completes
  /// (or traps -- a partial wave's events are still valid history).
  void endWave();

  /// All retained events in deterministic order (track-major, oldest
  /// first). Leaves the recorder empty.
  std::vector<TraceEvent> take();

  /// Events evicted by ring-buffer capacity since construction.
  uint64_t dropped() const { return Dropped; }

private:
  struct Ring {
    std::vector<TraceEvent> Buf;
    size_t Next = 0;
    bool Wrapped = false;
  };
  struct OpenStall {
    uint64_t Start = 0;
    uint64_t Dur = 0;
    SlotUse Use = SlotUse::Issued;
    bool Valid = false;
  };

  void push(Ring &R, const TraceEvent &E);
  void flushStall(int Sched);

  size_t RingCapacity;
  uint64_t CycleOffset = 0;
  std::vector<Ring> WarpRings;
  std::vector<Ring> SchedRings;
  std::vector<OpenStall> Open;
  std::vector<TraceEvent> Finished; ///< Earlier waves' events.
  uint64_t Dropped = 0;
};

/// A chip-level trace requested via LaunchConfig::Trace: configuration in,
/// merged events out.
struct SimTrace {
  /// Per-track ring capacity handed to each SM's recorder.
  size_t RingCapacity = 4096;
  /// Merged chip timeline (SM index order), filled by launchKernel.
  std::vector<TraceEvent> Events;
  /// Total events evicted by ring capacity across all SMs.
  uint64_t DroppedEvents = 0;
};

/// Writes \p Trace as Chrome trace_event JSON ("ts" in simulated cycles;
/// pid = SM, tid = warp slot or scheduler track) to \p Path. The file
/// parses with jsonValidate and loads in chrome://tracing / Perfetto.
Status writeChromeTrace(const SimTrace &Trace, const MachineDesc &M,
                        const std::string &Path);

/// Renders \p Trace to the JSON string written by writeChromeTrace.
std::string chromeTraceJson(const SimTrace &Trace, const MachineDesc &M);

} // namespace gpuperf

#endif // GPUPERF_SIM_TRACE_H
