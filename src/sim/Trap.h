//===- sim/Trap.h - structured runtime fault reporting ----------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's trap model. Any hostile condition inside a running
/// kernel -- out-of-bounds memory accesses, invalid branch targets,
/// register indices past the allocated file, watchdog expiry, barrier
/// deadlock -- halts the offending warp and fails the launch with a
/// structured TrapInfo instead of crashing the host process. This is the
/// analogue of the fault/launch-error reporting real GPUs provide, and it
/// is what lets the fault-injection harness drive the simulator with
/// arbitrarily mutated binaries.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_TRAP_H
#define GPUPERF_SIM_TRAP_H

#include <cstdint>
#include <string>

namespace gpuperf {

/// What went wrong. One kind per architectural failure mode so harnesses
/// can assert on the exact trap class.
enum class TrapKind {
  None = 0,            ///< No trap (sentinel).
  GlobalLoadOOB,       ///< LD from outside the global allocation.
  GlobalStoreOOB,      ///< ST to outside the global allocation.
  SharedLoadOOB,       ///< LDS from outside the block's shared memory.
  SharedStoreOOB,      ///< STS to outside the block's shared memory.
  MisalignedAccess,    ///< Address not a multiple of the access width.
  InvalidPC,           ///< PC outside the code (bad branch/missing EXIT).
  RegisterIndexOOB,    ///< Register or predicate index past the file.
  InvalidConstOffset,  ///< LDC beyond the parameter words.
  DivergentBranch,     ///< Non-uniform BRA (unsupported by design).
  UnimplementedOpcode, ///< Decoded but not executable.
  WatchdogTimeout,     ///< Per-launch cycle budget exhausted.
  Deadlock,            ///< No warp eligible and none in flight.
};

/// Printable upper-case name, e.g. "WATCHDOG_TIMEOUT".
const char *trapKindName(TrapKind K);

/// True for kinds raised while executing one particular instruction (as
/// opposed to launch-scoped conditions like watchdog expiry).
bool trapIsInstructionScoped(TrapKind K);

/// Everything known about one trap. Produced by the SM simulator, carried
/// to the launcher and the tools; toString() is the canonical diagnostic.
struct TrapInfo {
  TrapKind Kind = TrapKind::None;
  std::string KernelName;
  int BlockId = -1;      ///< Linearized ctaid of the trapping warp.
  int WarpId = -1;       ///< Warp index within its block.
  uint32_t LaneMask = 0; ///< Active lanes when the trap was raised.
  int Lane = -1;         ///< First faulting lane (memory traps); -1 else.
  int PC = -1;           ///< Instruction index; -1 for launch-scoped traps.
  std::string InstText;  ///< Disassembly of the trapping instruction.
  uint64_t Cycle = 0;    ///< Simulation cycle at which the trap fired.
  uint64_t Address = 0;  ///< Faulting address (memory traps only).
  std::string Detail;    ///< Free-form context (per-warp progress, ...).

  bool valid() const { return Kind != TrapKind::None; }

  /// One-line (plus optional detail lines) human-readable report.
  std::string toString() const;
};

} // namespace gpuperf

#endif // GPUPERF_SIM_TRAP_H
