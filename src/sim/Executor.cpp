//===- sim/Executor.cpp - functional execution of warp instructions -------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sim/Executor.h"

#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace gpuperf;

namespace {

float asFloat(uint32_t Bits) {
  float F;
  std::memcpy(&F, &Bits, 4);
  return F;
}

uint32_t asBits(float F) {
  uint32_t Bits;
  std::memcpy(&Bits, &F, 4);
  return Bits;
}

/// Single-precision results are canonicalized as on real GPUs: SASS
/// float ops return one canonical quiet NaN rather than propagating
/// input payloads. Host compilers leave NaN payload selection to the
/// CPU's (operand-order-dependent) rules, so canonicalizing is also
/// what keeps simulation results bit-reproducible across builds.
uint32_t floatResultBits(float F) {
  return std::isnan(F) ? 0x7fffffffu : asBits(F);
}

/// Computes the shared-memory serialization multiplier for a warp access.
///
/// Banks are NumBanks words of BankBytes; lanes touching distinct words in
/// the same bank serialize, while lanes reading the same word broadcast.
/// The multiplier is normalized by the *inherent* degree of a perfectly
/// sequential access of this width (e.g. LDS.64 on Fermi inherently takes
/// two passes, which the base pipe cost already covers).
double sharedSerialization(const std::vector<int64_t> &Addrs, int Width,
                           int NumBanks, int BankBytes) {
  if (Addrs.empty())
    return 1.0;
  // Collect distinct words per bank.
  std::vector<std::vector<int64_t>> Words(NumBanks);
  for (int64_t Addr : Addrs) {
    for (int Offset = 0; Offset < Width; Offset += BankBytes) {
      int64_t Word = (Addr + Offset) / BankBytes;
      int Bank = static_cast<int>(Word % NumBanks);
      auto &List = Words[Bank];
      if (std::find(List.begin(), List.end(), Word) == List.end())
        List.push_back(Word);
    }
  }
  size_t Degree = 0;
  for (const auto &List : Words)
    Degree = std::max(Degree, List.size());
  int Ideal = std::max(
      1, static_cast<int>(Addrs.size()) * Width / BankBytes / NumBanks);
  return std::max(1.0, static_cast<double>(Degree) / Ideal);
}

} // namespace

ExecEffects Executor::execute(const Instruction &I, WarpContext &W,
                              int BlockIdxLinear,
                              SharedMemory &Shared) const {
  ExecEffects Fx;
  const int Threads = Dims.threadsPerBlock();
  const int CtaX = BlockIdxLinear % Dims.GridX;
  const int CtaY = BlockIdxLinear / Dims.GridX;

  auto LaneActive = [&](int Lane) {
    return ((W.ActiveMask >> Lane) & 1) && W.guardTrue(I, Lane);
  };
  auto LinearTid = [&](int Lane) { return W.WarpInBlock * WarpSize + Lane; };

  switch (I.Op) {
  case Opcode::NOP:
    return Fx;
  case Opcode::EXIT:
    Fx.IsExit = true;
    return Fx;
  case Opcode::BAR:
    Fx.IsBarrier = true;
    return Fx;
  case Opcode::BRA: {
    // Require warp-uniform branching (the paper's kernels are uniform;
    // per-lane work is predicated instead).
    int Taken = -1;
    for (int Lane = 0; Lane < WarpSize; ++Lane) {
      if (!((W.ActiveMask >> Lane) & 1))
        continue;
      int LaneTaken = W.guardTrue(I, Lane) ? 1 : 0;
      if (Taken < 0)
        Taken = LaneTaken;
      else if (Taken != LaneTaken) {
        Fx.Trap = TrapKind::DivergentBranch;
        Fx.TrapLane = Lane;
        Fx.TrapDetail = "divergent branch is not supported by the simulator";
        return Fx;
      }
    }
    Fx.BranchTaken = Taken == 1;
    return Fx;
  }
  default:
    break;
  }

  // Per-lane execution for everything else.
  const OpClass Class = opcodeInfo(I.Op).Class;
  if (Class == OpClass::SharedMem || Class == OpClass::GlobalMem) {
    std::vector<int64_t> Addrs;
    Addrs.reserve(WarpSize);
    const int Width = memWidthBytes(I.Width);
    const int Words = memWidthRegs(I.Width);
    const bool IsLoad = I.Op == Opcode::LDS || I.Op == Opcode::LD;
    const bool IsShared = Class == OpClass::SharedMem;
    for (int Lane = 0; Lane < WarpSize; ++Lane) {
      if (!LaneActive(Lane))
        continue;
      int64_t Addr =
          static_cast<int64_t>(W.readReg(I.Src[0], Lane)) + I.Imm;
      if (Addr % Width != 0) {
        Fx.Trap = TrapKind::MisalignedAccess;
        Fx.TrapAddress = static_cast<uint64_t>(Addr);
        Fx.TrapLane = Lane;
        Fx.TrapDetail = formatString("%d-byte access", Width);
        return Fx;
      }
      bool Ok = IsShared ? Shared.inBounds(Addr, Width)
                         : Addr >= 0 && Global.inBounds(
                                            static_cast<uint64_t>(Addr),
                                            Width);
      if (!Ok) {
        Fx.Trap = IsShared ? (IsLoad ? TrapKind::SharedLoadOOB
                                     : TrapKind::SharedStoreOOB)
                           : (IsLoad ? TrapKind::GlobalLoadOOB
                                     : TrapKind::GlobalStoreOOB);
        Fx.TrapAddress = static_cast<uint64_t>(Addr);
        Fx.TrapLane = Lane;
        Fx.TrapDetail = formatString(
            "%s of %d bytes against a %lld-byte %s allocation",
            IsLoad ? "load" : "store", Width,
            IsShared ? static_cast<long long>(Shared.size())
                     : static_cast<long long>(Global.size()),
            IsShared ? "shared" : "global");
        return Fx;
      }
      Addrs.push_back(Addr);
      for (int Word = 0; Word < Words; ++Word) {
        int64_t A = Addr + 4 * Word;
        if (IsLoad) {
          uint32_t V = IsShared ? Shared.load32(A)
                                : Global.load32(static_cast<uint32_t>(A));
          W.writeReg(static_cast<uint8_t>(I.Dst + Word), Lane, V);
        } else {
          uint32_t V =
              W.readReg(static_cast<uint8_t>(I.Src[1] + Word), Lane);
          if (IsShared)
            Shared.store32(A, V);
          else
            Global.store32(static_cast<uint32_t>(A), V);
        }
      }
    }
    if (IsShared) {
      Fx.SharedSerialization = sharedSerialization(
          Addrs, Width, M.SharedMemBanks, M.SharedMemBankBytes);
    } else {
      // Coalescing: distinct 128-byte segments touched by the warp.
      std::vector<int64_t> Segments;
      for (int64_t Addr : Addrs) {
        int64_t First = Addr / 128;
        int64_t Last = (Addr + Width - 1) / 128;
        for (int64_t S = First; S <= Last; ++S)
          if (std::find(Segments.begin(), Segments.end(), S) ==
              Segments.end())
            Segments.push_back(S);
      }
      Fx.GlobalTransactions = static_cast<int>(Segments.size());
      Fx.GlobalBytes = static_cast<int>(Segments.size()) * 128;
    }
    return Fx;
  }

  for (int Lane = 0; Lane < WarpSize; ++Lane) {
    if (!LaneActive(Lane))
      continue;
    uint32_t A = W.readReg(I.Src[0], Lane);
    uint32_t B = I.immReplacesSrc1() ? static_cast<uint32_t>(I.Imm)
                                     : W.readReg(I.Src[1], Lane);
    uint32_t C = W.readReg(I.Src[2], Lane);
    uint32_t Result = 0;
    switch (I.Op) {
    case Opcode::FFMA:
      Result = floatResultBits(std::fma(asFloat(A), asFloat(B), asFloat(C)));
      break;
    case Opcode::FADD:
      Result = floatResultBits(asFloat(A) + asFloat(B));
      break;
    case Opcode::FMUL:
      Result = floatResultBits(asFloat(A) * asFloat(B));
      break;
    case Opcode::IADD:
      Result = A + B;
      break;
    case Opcode::IMUL:
      Result = A * B;
      break;
    case Opcode::IMAD:
      Result = A * B + C;
      break;
    case Opcode::ISCADD:
      Result = (A << I.iscaddShift()) + B;
      break;
    case Opcode::SHL:
      Result = A << (B & 31);
      break;
    case Opcode::SHR:
      Result = A >> (B & 31);
      break;
    case Opcode::LOP_AND:
      Result = A & B;
      break;
    case Opcode::LOP_OR:
      Result = A | B;
      break;
    case Opcode::LOP_XOR:
      Result = A ^ B;
      break;
    case Opcode::MOV:
      Result = A;
      break;
    case Opcode::MOV32I:
      Result = static_cast<uint32_t>(I.Imm);
      break;
    case Opcode::S2R: {
      int Tid = LinearTid(Lane);
      switch (I.specialReg()) {
      case SpecialReg::TID_X:
        Result = static_cast<uint32_t>(Tid % Dims.BlockX);
        break;
      case SpecialReg::TID_Y:
        Result = static_cast<uint32_t>(Tid / Dims.BlockX);
        break;
      case SpecialReg::CTAID_X:
        Result = static_cast<uint32_t>(CtaX);
        break;
      case SpecialReg::CTAID_Y:
        Result = static_cast<uint32_t>(CtaY);
        break;
      case SpecialReg::NTID_X:
        Result = static_cast<uint32_t>(Dims.BlockX);
        break;
      case SpecialReg::NTID_Y:
        Result = static_cast<uint32_t>(Dims.BlockY);
        break;
      case SpecialReg::NCTAID_X:
        Result = static_cast<uint32_t>(Dims.GridX);
        break;
      case SpecialReg::NCTAID_Y:
        Result = static_cast<uint32_t>(Dims.GridY);
        break;
      }
      break;
    }
    case Opcode::LDC: {
      size_t Index = static_cast<uint32_t>(I.Imm) / 4;
      if (Index >= Params.size()) {
        Fx.Trap = TrapKind::InvalidConstOffset;
        Fx.TrapAddress = static_cast<uint32_t>(I.Imm);
        Fx.TrapLane = Lane;
        Fx.TrapDetail = formatString(
            "LDC offset 0x%x beyond the %zu parameter words",
            static_cast<uint32_t>(I.Imm), Params.size());
        return Fx;
      }
      Result = Params[Index];
      break;
    }
    case Opcode::ISETP: {
      int32_t SA = static_cast<int32_t>(A);
      int32_t SB = static_cast<int32_t>(B);
      bool P = false;
      switch (I.cmpOp()) {
      case CmpOp::LT:
        P = SA < SB;
        break;
      case CmpOp::LE:
        P = SA <= SB;
        break;
      case CmpOp::GT:
        P = SA > SB;
        break;
      case CmpOp::GE:
        P = SA >= SB;
        break;
      case CmpOp::EQ:
        P = SA == SB;
        break;
      case CmpOp::NE:
        P = SA != SB;
        break;
      }
      W.writePred(I.Dst, Lane, P);
      continue;
    }
    default:
      Fx.Trap = TrapKind::UnimplementedOpcode;
      Fx.TrapLane = Lane;
      Fx.TrapDetail = formatString(
          "opcode %s decodes but has no executable semantics",
          std::string(opcodeMnemonic(I.Op)).c_str());
      return Fx;
    }
    W.writeReg(I.Dst, Lane, Result);
    (void)Threads;
  }
  return Fx;
}
