//===- sim/SMSimulator.cpp - cycle-level single-SM simulator --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sim/SMSimulator.h"

#include "probe/ProbeEngine.h"
#include "sim/Timing.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <set>

using namespace gpuperf;

namespace {

/// Replay cost when a warp is selected but its operands are not ready and
/// the control notation did not cover the wait (Kepler only).
constexpr int ReplayPenaltyCycles = 4;
/// Issue-cost multiplier for Kepler binaries without control notations:
/// the scheduler falls back to a conservative decode path.
constexpr double NoNotationIssueFactor = 4.0;

struct BlockState {
  int BlockIdLinear = 0;
  std::unique_ptr<SharedMemory> Shared;
  int LiveWarps = 0;
  int ArrivedAtBarrier = 0;
};

/// Why one warp could not issue this cycle, ordered by attribution
/// priority (higher wins when a scheduler's warps are blocked for
/// different reasons): a warp blocked only by a busy structural pipe was
/// otherwise ready, so the slot was genuinely lost to that structural
/// limit -- the paper's bound story; operand waits come next; a barrier
/// is only reported when nothing better describes the cycle.
enum class WarpBlock : uint8_t {
  None = 0,      ///< Not a candidate (done / no warp assigned).
  Barrier,       ///< Waiting at BAR.SYNC.
  NotationStall, ///< Control-notation stall count / replay stall.
  Scoreboard,    ///< Operands not ready (RAW / load latency).
  Port,          ///< Per-scheduler dispatch port busy.
  MathPipe,      ///< SM-wide SP pipeline busy (pre-Kepler).
  LdstPipe,      ///< LD/ST pipe busy (shared-memory throughput).
  IssuePipe,     ///< Kepler SM-wide issue pipe busy.
};

class SMSim {
public:
  SMSim(const MachineDesc &M, const Kernel &K, Executor &Exec,
        const LaunchDims &Dims, const std::vector<int> &BlockIds,
        uint64_t WatchdogCycles, TraceRecorder *Trace,
        KernelProfile *Profile, ProbeEngine *Probes)
      : M(M), K(K), Exec(Exec), Dims(Dims), Trace(Trace), Profile(Profile),
        Probes(Probes && Probes->enabled() ? Probes : nullptr),
        Budget(WatchdogCycles == 0
                   ? MaxWaveCycles
                   : std::min(WatchdogCycles, MaxWaveCycles)) {
    HasNotations =
        M.Generation != GpuGeneration::Kepler || K.hasNotations();
    buildInstValidity();
    int WarpsPerBlock = Dims.warpsPerBlock();
    Blocks.reserve(BlockIds.size());
    for (int BlockId : BlockIds) {
      BlockState B;
      B.BlockIdLinear = BlockId;
      B.Shared = std::make_unique<SharedMemory>(K.SharedBytes);
      B.LiveWarps = WarpsPerBlock;
      Blocks.push_back(std::move(B));
    }
    int NumRegs = std::max(K.RegsPerThread, 1);
    for (size_t Slot = 0; Slot < Blocks.size(); ++Slot) {
      for (int WarpIdx = 0; WarpIdx < WarpsPerBlock; ++WarpIdx) {
        WarpContext W;
        W.reset(NumRegs);
        W.BlockSlot = static_cast<int>(Slot);
        W.WarpInBlock = WarpIdx;
        int FirstThread = WarpIdx * WarpSize;
        int LastThread =
            std::min(FirstThread + WarpSize, Dims.threadsPerBlock());
        int Lanes = LastThread - FirstThread;
        W.ActiveMask =
            Lanes == WarpSize ? 0xffffffffu : ((1u << Lanes) - 1);
        Warps.push_back(std::move(W));
      }
    }
    LiveWarps = static_cast<int>(Warps.size());
    NumSchedulers = std::max(1, M.WarpSchedulersPerSM);
    PortFree.assign(NumSchedulers, 0.0);
    RRNext.assign(NumSchedulers, 0);
    SchedBlocked.assign(NumSchedulers, WarpBlock::None);
    SchedBlockedPC.assign(NumSchedulers, -1);
  }

  Expected<SimStats> run(TrapInfo *TrapOut) {
    Expected<SimStats> Result = runLoop();
    if (!Result.hasValue() && TrapOut && Trap)
      *TrapOut = *Trap;
    return Result;
  }

private:
  Expected<SimStats> runLoop() {
    // Every block of the wave becomes resident at the wave's cycle 0.
    if (Probes && Probes->wants(ProbeEvent::BlockScheduled))
      for (const BlockState &B : Blocks) {
        ProbeEventRecord R;
        R.Block = B.BlockIdLinear;
        R.Cycle = 0;
        Probes->fire(ProbeEvent::BlockScheduled, R);
      }
    while (LiveWarps > 0) {
      if (Now >= Budget) {
        raiseWatchdogTrap();
        return Expected<SimStats>::error(Trap->toString());
      }
      bool IssuedAny = false;
      // Rotate the scheduler service order each cycle: the SM-wide issue
      // pipe is a shared resource, and a fixed order would systematically
      // starve the last scheduler's warps.
      for (int Step = 0; Step < NumSchedulers; ++Step) {
        int Sched = static_cast<int>(
            (Step + Now) % static_cast<uint64_t>(NumSchedulers));
        if (Status S = runScheduler(Sched, IssuedAny); S.failed())
          return Expected<SimStats>(S);
      }
      if (Trap)
        return Expected<SimStats>::error(Trap->toString());
      if (IssuedAny) {
        ++Now;
        continue;
      }
      uint64_t Next = nextWakeCycle();
      if (Next == UINT64_MAX) {
        raiseDeadlockTrap();
        return Expected<SimStats>::error(Trap->toString());
      }
      uint64_t NewNow = std::max(Now + 1, Next);
      // Nothing can issue before NewNow; the whole span is idle. Cycle
      // `Now` itself was already attributed slot-by-slot inside
      // runScheduler; the fast-forwarded cycles inherit each scheduler's
      // reason (and attributed PC) from the cycle that proved no
      // progress was possible.
      Stats.IdleCycles += NewNow - Now;
      if (uint64_t Skipped = NewNow - Now - 1)
        for (int S = 0; S < NumSchedulers; ++S)
          accountStall(S, SchedBlocked[S], SchedBlockedPC[S], Now + 1,
                       Skipped);
      Now = NewNow;
    }
    Stats.Cycles = Now;
    Stats.AggregateCycles = Now;
    return Stats;
  }

  /// Charges \p N lost issue slots of scheduler \p Sched, starting at
  /// cycle \p Start, to the SlotUse cause implied by \p B, attributed to
  /// static instruction \p PC (-1 = no attributable instruction; the
  /// profile's NoPC bucket). Issue-pipe losses are split: the
  /// bank-conflict debt accumulated by previously issued math
  /// instructions is paid out first (RegBankConflict), the remainder is
  /// raw issue width (DispatchLimit); both halves belong to the same
  /// blocked PC.
  void accountStall(int Sched, WarpBlock B, int PC, uint64_t Start,
                    uint64_t N) {
    auto fireSlotLost = [&](SlotUse Cause, uint64_t Cycle,
                            uint64_t Slots) {
      if (!Probes || !Probes->wants(ProbeEvent::SlotLost))
        return;
      ProbeEventRecord R;
      R.Cause = static_cast<int64_t>(Cause);
      R.PC = PC;
      R.Slots = static_cast<int64_t>(Slots);
      R.Cycle = static_cast<int64_t>(Cycle);
      Probes->fire(ProbeEvent::SlotLost, R);
    };
    SlotUse Use = SlotUse::NoEligibleWarp;
    switch (B) {
    case WarpBlock::IssuePipe: {
      uint64_t FromConflict =
          std::min(N, static_cast<uint64_t>(ConflictDebt));
      if (FromConflict > 0) {
        ConflictDebt -= static_cast<double>(FromConflict);
        Stats.Breakdown[SlotUse::RegBankConflict] += FromConflict;
        if (Trace)
          Trace->stall(Sched, Start, FromConflict,
                       SlotUse::RegBankConflict);
        if (Profile)
          Profile->countStall(PC, SlotUse::RegBankConflict, FromConflict);
        fireSlotLost(SlotUse::RegBankConflict, Start, FromConflict);
      }
      if (N > FromConflict) {
        Stats.Breakdown[SlotUse::DispatchLimit] += N - FromConflict;
        if (Trace)
          Trace->stall(Sched, Start + FromConflict, N - FromConflict,
                       SlotUse::DispatchLimit);
        if (Profile)
          Profile->countStall(PC, SlotUse::DispatchLimit,
                              N - FromConflict);
        fireSlotLost(SlotUse::DispatchLimit, Start + FromConflict,
                     N - FromConflict);
      }
      return;
    }
    case WarpBlock::Port:
    case WarpBlock::MathPipe:
      Use = SlotUse::DispatchLimit;
      break;
    case WarpBlock::LdstPipe:
      Use = SlotUse::LdsThroughput;
      break;
    case WarpBlock::Scoreboard:
    case WarpBlock::NotationStall:
      Use = SlotUse::Scoreboard;
      break;
    case WarpBlock::Barrier:
      Use = SlotUse::Barrier;
      break;
    case WarpBlock::None:
      Use = SlotUse::NoEligibleWarp;
      break;
    }
    Stats.Breakdown[Use] += N;
    if (Trace)
      Trace->stall(Sched, Start, N, Use);
    if (Profile)
      Profile->countStall(PC, Use, N);
    fireSlotLost(Use, Start, N);
  }

  /// Precomputes, per static instruction, whether every register and
  /// predicate index it touches fits the allocated files. The 6-bit
  /// encoding admits indices past the kernel's declared register count
  /// (and wide accesses widen past R63; 3-bit guard fields reach the
  /// non-architectural P4..P6), so mutated or hand-corrupted binaries can
  /// reference state that does not exist -- those instructions trap at
  /// issue instead of corrupting simulator memory.
  void buildInstValidity() {
    int NumRegs = std::max(K.RegsPerThread, 1);
    InstRegsOk.resize(K.Code.size());
    for (size_t PC = 0; PC < K.Code.size(); ++PC) {
      const Instruction &I = K.Code[PC];
      bool Ok = true;
      for (uint8_t Reg : I.sourceRegs())
        if (Reg != RegRZ && Reg >= NumRegs)
          Ok = false;
      for (uint8_t Reg : I.destRegs())
        if (Reg != RegRZ && Reg >= NumRegs)
          Ok = false;
      if (I.GuardPred != PredPT && I.GuardPred >= NumPredRegs)
        Ok = false;
      if (I.writesPredicate() && I.Dst >= NumPredRegs)
        Ok = false;
      InstRegsOk[PC] = Ok;
    }
  }

  /// Fills the identity fields of a trap raised by warp \p WarpIdx.
  TrapInfo makeTrap(TrapKind Kind, int WarpIdx,
                    const Instruction *I) const {
    TrapInfo T;
    T.Kind = Kind;
    T.KernelName = K.Name;
    T.Cycle = Now;
    if (WarpIdx >= 0) {
      const WarpContext &W = Warps[WarpIdx];
      T.BlockId = Blocks[W.BlockSlot].BlockIdLinear;
      T.WarpId = W.WarpInBlock;
      T.LaneMask = W.ActiveMask;
      T.PC = W.PC;
      if (I)
        T.InstText = I->toString();
    }
    return T;
  }

  /// Per-warp progress summary for launch-scoped traps (watchdog,
  /// deadlock): which warps are stuck, where, and how much they ran.
  std::string progressReport() const {
    std::string S;
    constexpr size_t MaxLines = 16;
    for (size_t Idx = 0; Idx < Warps.size(); ++Idx) {
      if (Idx == MaxLines) {
        S += formatString("  ... %zu more warps\n", Warps.size() - Idx);
        break;
      }
      const WarpContext &W = Warps[Idx];
      const char *State = W.Done        ? "done"
                          : W.AtBarrier ? "at barrier"
                          : W.StallUntil > Now
                              ? "stalled"
                              : "eligible";
      S += formatString(
          "  block %d warp %d: %s, PC %d, %llu insts issued\n",
          Blocks[W.BlockSlot].BlockIdLinear, W.WarpInBlock, State, W.PC,
          static_cast<unsigned long long>(W.InstsIssued));
    }
    if (!S.empty())
      S.pop_back(); // Trailing newline.
    return S;
  }

  /// Identifies the least-progressed live warp (the likely culprit) so
  /// launch-scoped traps still carry a concrete warp and PC.
  int leastProgressedLiveWarp() const {
    int Best = -1;
    for (size_t Idx = 0; Idx < Warps.size(); ++Idx) {
      if (Warps[Idx].Done)
        continue;
      if (Best < 0 || Warps[Idx].InstsIssued < Warps[Best].InstsIssued)
        Best = static_cast<int>(Idx);
    }
    return Best;
  }

  void raiseWatchdogTrap() {
    TrapInfo T = makeTrap(TrapKind::WatchdogTimeout,
                          leastProgressedLiveWarp(), nullptr);
    T.Detail = formatString(
        "watchdog budget of %llu cycles exhausted with %d live warps:\n",
        static_cast<unsigned long long>(Budget), LiveWarps);
    T.Detail += progressReport();
    Trap = std::move(T);
  }

  void raiseDeadlockTrap() {
    TrapInfo T = makeTrap(TrapKind::Deadlock, leastProgressedLiveWarp(),
                          nullptr);
    T.Detail = formatString(
        "no warp can make progress and none is in flight "
        "(barrier mismatch?); %d live warps:\n",
        LiveWarps);
    T.Detail += progressReport();
    Trap = std::move(T);
  }
  /// The control field for the instruction at \p PC (zeros when the
  /// kernel carries no notations).
  ControlField fieldAt(int PC) const {
    if (M.Generation != GpuGeneration::Kepler || !K.hasNotations())
      return ControlField();
    return K.Notations[PC / NotationGroupSize]
        .Fields[PC % NotationGroupSize];
  }

  bool regsReady(const WarpContext &W, const Instruction &I) const {
    for (uint8_t Reg : I.sourceRegs())
      if (W.RegReady[Reg] > Now)
        return false;
    for (uint8_t Reg : I.destRegs())
      if (W.RegReady[Reg] > Now)
        return false;
    if (I.GuardPred != PredPT && W.PredReady[I.GuardPred] > Now)
      return false;
    if (I.writesPredicate() && W.PredReady[I.Dst] > Now)
      return false;
    return true;
  }

  /// Earliest cycle at which the operands of \p I can be ready.
  uint64_t regsReadyCycle(const WarpContext &W,
                          const Instruction &I) const {
    uint64_t T = 0;
    for (uint8_t Reg : I.sourceRegs())
      T = std::max(T, W.RegReady[Reg]);
    for (uint8_t Reg : I.destRegs())
      T = std::max(T, W.RegReady[Reg]);
    if (I.GuardPred != PredPT)
      T = std::max(T, W.PredReady[I.GuardPred]);
    if (I.writesPredicate())
      T = std::max(T, W.PredReady[I.Dst]);
    return T;
  }

  /// First structural resource blocking \p I this cycle (checked in
  /// dispatch-port, issue-pipe, math-pipe, LD/ST-pipe order), or None.
  WarpBlock blockedPipe(const Instruction &I, int Sched) const {
    double Limit = static_cast<double>(Now) + 1.0;
    if (dispatchPortCycles(M, I) > 0 && PortFree[Sched] >= Limit)
      return WarpBlock::Port;
    if (issuePipeCycles(M, I) > 0 && IssuePipeFree >= Limit)
      return WarpBlock::IssuePipe;
    if (mathPipeCycles(M, I) > 0 && MathPipeFree >= Limit)
      return WarpBlock::MathPipe;
    if (ldstPipeCycles(M, I) > 0 && LdstPipeFree >= Limit)
      return WarpBlock::LdstPipe;
    return WarpBlock::None;
  }

  /// Attempts to issue the next instruction of warp \p WarpIdx; true on
  /// success. \p AllowReplayPenalty charges the warp when its operands
  /// are not ready despite the notation saying they should be. On
  /// failure, \p Why (when non-null) receives why this warp could not
  /// use the slot.
  bool tryIssue(int WarpIdx, int Sched, bool AllowReplayPenalty,
                WarpBlock *Why = nullptr) {
    WarpContext &W = Warps[WarpIdx];
    if (W.Done || W.AtBarrier || W.StallUntil > Now) {
      if (Why && !W.Done)
        *Why = W.AtBarrier ? WarpBlock::Barrier : WarpBlock::NotationStall;
      return false;
    }
    if (W.PC < 0 || static_cast<size_t>(W.PC) >= K.Code.size()) {
      // The warp ran off the code (bad branch target or missing EXIT).
      TrapInfo T = makeTrap(TrapKind::InvalidPC, WarpIdx, nullptr);
      T.Detail = formatString(
          "PC %d outside the kernel's %zu instructions "
          "(bad branch target or missing EXIT)",
          W.PC, K.Code.size());
      Trap = std::move(T);
      return true; // Consumed the slot; the run loop stops on Trap.
    }
    const Instruction &I = K.Code[W.PC];
    if (!InstRegsOk[W.PC]) {
      TrapInfo T = makeTrap(TrapKind::RegisterIndexOOB, WarpIdx, &I);
      T.Detail = formatString(
          "instruction references registers outside the %d allocated "
          "(or a non-architectural predicate)",
          std::max(K.RegsPerThread, 1));
      Trap = std::move(T);
      return true;
    }
    if (WarpBlock Pipe = blockedPipe(I, Sched); Pipe != WarpBlock::None) {
      if (Why)
        *Why = Pipe;
      return false;
    }
    if (!regsReady(W, I)) {
      if (Why)
        *Why = WarpBlock::Scoreboard;
      if (AllowReplayPenalty && M.Generation == GpuGeneration::Kepler &&
          HasNotations && !W.NoPenaltyWait) {
        // A mis-hinted instruction is dispatched and replayed: the warp
        // loses cycles AND the issue pipe burns half a slot on the
        // cancelled dispatch.
        W.StallUntil = Now + ReplayPenaltyCycles;
        IssuePipeFree = std::max(IssuePipeFree, static_cast<double>(Now)) +
                        0.5 * WarpSize / M.MathIssueSlotsPerCycle;
        ++Stats.ReplayPenalties;
        if (Profile)
          Profile->countReplay(W.PC);
        if (Probes && Probes->wants(ProbeEvent::Replay)) {
          ProbeEventRecord R;
          R.PC = W.PC;
          R.Block = Blocks[W.BlockSlot].BlockIdLinear;
          R.Warp = W.WarpInBlock;
          R.Cycle = static_cast<int64_t>(Now);
          Probes->fire(ProbeEvent::Replay, R);
        }
      }
      return false;
    }
    issue(WarpIdx, Sched, I);
    return true;
  }

  void issue(int WarpIdx, int Sched, const Instruction &I) {
    WarpContext &W = Warps[WarpIdx];
    BlockState &B = Blocks[W.BlockSlot];
    const int PCAtIssue = W.PC;

    // --- Occupy pipes ------------------------------------------------------
    double NowD = static_cast<double>(Now);
    if (double Port = dispatchPortCycles(M, I); Port > 0)
      PortFree[Sched] = std::max(PortFree[Sched], NowD) + Port;
    if (double Pipe = issuePipeCycles(M, I); Pipe > 0) {
      if (!HasNotations)
        Pipe *= NoNotationIssueFactor;
      IssuePipeFree = std::max(IssuePipeFree, NowD) + Pipe;
      // Bank the register-bank-conflict surcharge; lost issue-pipe slots
      // pay it out as SlotUse::RegBankConflict (see accountStall).
      ConflictDebt += bankConflictExtraCycles(M, I);
    }
    if (double Pipe = mathPipeCycles(M, I); Pipe > 0)
      MathPipeFree = std::max(MathPipeFree, NowD) + Pipe;

    // --- Execute functionally ------------------------------------------------
    ExecEffects Fx = Exec.execute(I, W, B.BlockIdLinear, *B.Shared);
    if (Fx.faulted()) {
      TrapInfo T = makeTrap(Fx.Trap, WarpIdx, &I);
      T.Address = Fx.TrapAddress;
      T.Lane = Fx.TrapLane;
      T.Detail = Fx.TrapDetail;
      Trap = std::move(T);
      return;
    }

    if (double Ldst = ldstPipeCycles(M, I); Ldst > 0) {
      double Serial =
          std::max(1.0, Fx.SharedSerialization /
                            implicitConflictAllowance(M, I));
      if (Fx.SharedSerialization > implicitConflictAllowance(M, I)) {
        ++Stats.SharedConflictEvents;
        if (Probes && Probes->wants(ProbeEvent::BankConflict)) {
          ProbeEventRecord R;
          R.PC = PCAtIssue;
          R.Block = B.BlockIdLinear;
          R.Warp = W.WarpInBlock;
          R.Cycle = static_cast<int64_t>(Now);
          R.Serialization =
              static_cast<int64_t>(Fx.SharedSerialization);
          Probes->fire(ProbeEvent::BankConflict, R);
        }
      }
      LdstPipeFree = std::max(LdstPipeFree, NowD) + Ldst * Serial;
    }

    // --- Scoreboard updates ---------------------------------------------------
    uint64_t Ready;
    if (opcodeInfo(I.Op).Class == OpClass::GlobalMem &&
        Fx.GlobalTransactions > 0) {
      double BwCycles = Fx.GlobalBytes / memBytesPerCyclePerSM(M);
      MemBWFree = std::max(MemBWFree, NowD) + BwCycles;
      Ready = static_cast<uint64_t>(MemBWFree) + M.GlobalMemLatency;
      Stats.GlobalBytes += static_cast<uint64_t>(Fx.GlobalBytes);
      Stats.GlobalTransactions +=
          static_cast<uint64_t>(Fx.GlobalTransactions);
    } else {
      Ready = Now + static_cast<uint64_t>(resultLatency(M, I));
    }
    for (uint8_t Reg : I.destRegs())
      W.RegReady[Reg] = Ready;
    if (I.writesPredicate())
      W.PredReady[I.Dst] = Now + static_cast<uint64_t>(M.MathLatency);

    // --- Control effects --------------------------------------------------------
    ControlField F = fieldAt(W.PC);
    bool WarpExited = false, BlockDrained = false;
    if (Fx.IsExit) {
      W.Done = true;
      --LiveWarps;
      --B.LiveWarps;
      WarpExited = true;
      BlockDrained = B.LiveWarps == 0;
      releaseBarrierIfComplete(B);
    } else if (Fx.IsBarrier) {
      W.AtBarrier = true;
      ++B.ArrivedAtBarrier;
      ++Stats.BarrierWaits;
      W.PC += 1;
      releaseBarrierIfComplete(B);
    } else if (I.Op == Opcode::BRA && Fx.BranchTaken) {
      W.PC += 1 + I.Imm;
    } else {
      W.PC += 1;
    }

    // --- Notation-driven stalls -----------------------------------------------
    if (M.Generation == GpuGeneration::Kepler) {
      if (HasNotations) {
        W.StallUntil = Now + 1 + F.StallCycles;
        W.NoPenaltyWait = F.Yield;
      } else {
        // Conservative fallback: wait out the full result latency.
        W.StallUntil = Now + 1 + static_cast<uint64_t>(resultLatency(M, I));
        W.NoPenaltyWait = true;
      }
    } else {
      W.StallUntil = Now + 1;
      W.NoPenaltyWait = true; // Fermi has a full scoreboard.
    }
    W.LastIssue = Now;

    // --- Statistics ----------------------------------------------------------
    ++Stats.WarpInstsIssued;
    ++W.InstsIssued;
    uint64_t Lanes = std::popcount(W.ActiveMask);
    Stats.ThreadInstsIssued += Lanes;
    Stats.ThreadInstsByOpcode[static_cast<size_t>(I.Op)] += Lanes;
    if (Trace)
      Trace->issue(WarpIdx, B.BlockIdLinear, W.WarpInBlock, Now,
                   PCAtIssue, I.Op);
    if (Profile)
      Profile->countIssue(PCAtIssue);

    // --- Probe events --------------------------------------------------------
    // Fired after the statistics updates so lifetime fields (Insts)
    // include this instruction; every count here shadows one of the
    // aggregates above, which the probe self-check tests pin exactly.
    if (Probes) {
      const OpClass Class = opcodeInfo(I.Op).Class;
      if (Probes->wants(ProbeEvent::InstIssued) ||
          Probes->wants(ProbeEvent::MemAccess)) {
        ProbeEventRecord R;
        R.PC = PCAtIssue;
        R.Op = static_cast<int64_t>(I.Op);
        R.Class = static_cast<int64_t>(Class);
        R.Lanes = static_cast<int64_t>(Lanes);
        R.Block = B.BlockIdLinear;
        R.Warp = W.WarpInBlock;
        R.Cycle = static_cast<int64_t>(Now);
        R.Dual = IssuingDualSecond ? 1 : 0;
        if (Probes->wants(ProbeEvent::InstIssued))
          Probes->fire(ProbeEvent::InstIssued, R);
        bool IsShared = Class == OpClass::SharedMem;
        bool IsGlobal = Class == OpClass::GlobalMem;
        if ((IsShared || IsGlobal) &&
            Probes->wants(ProbeEvent::MemAccess)) {
          R.Space = IsGlobal ? 1 : 0;
          R.Width = 8 * memWidthBytes(I.Width);
          if (IsGlobal) {
            R.Bytes = Fx.GlobalTransactions > 0 ? Fx.GlobalBytes : 0;
            R.Transactions = Fx.GlobalTransactions;
          } else {
            R.Bytes = static_cast<int64_t>(Lanes) *
                      memWidthBytes(I.Width);
          }
          Probes->fire(ProbeEvent::MemAccess, R);
        }
      }
      if (WarpExited && Probes->wants(ProbeEvent::WarpExit)) {
        ProbeEventRecord R;
        R.Block = B.BlockIdLinear;
        R.Warp = W.WarpInBlock;
        R.Insts = static_cast<int64_t>(W.InstsIssued);
        R.Cycle = static_cast<int64_t>(Now);
        Probes->fire(ProbeEvent::WarpExit, R);
      }
      if (BlockDrained && Probes->wants(ProbeEvent::BlockDrained)) {
        ProbeEventRecord R;
        R.Block = B.BlockIdLinear;
        R.Cycle = static_cast<int64_t>(Now);
        Probes->fire(ProbeEvent::BlockDrained, R);
      }
    }
  }

  void releaseBarrierIfComplete(BlockState &B) {
    if (B.LiveWarps == 0 || B.ArrivedAtBarrier < B.LiveWarps)
      return;
    B.ArrivedAtBarrier = 0;
    for (WarpContext &W : Warps)
      if (W.BlockSlot == &B - Blocks.data() && W.AtBarrier)
        W.AtBarrier = false;
  }

  Status runScheduler(int Sched, bool &IssuedAny) {
    int NumWarps = static_cast<int>(Warps.size());
    // Warps are distributed to schedulers by index.
    std::vector<int> Mine;
    Mine.reserve((NumWarps + NumSchedulers - 1) / NumSchedulers);
    for (int W = Sched; W < NumWarps; W += NumSchedulers)
      Mine.push_back(W);
    if (Mine.empty()) {
      SchedBlocked[Sched] = WarpBlock::None;
      SchedBlockedPC[Sched] = -1;
      accountStall(Sched, WarpBlock::None, -1, Now, 1);
      return Status::success();
    }

    // The scheduler's one issue slot this cycle: either some warp issues,
    // or the slot is attributed to the highest-priority reason any of its
    // warps could not (see WarpBlock's ordering). For the profile the
    // slot is charged to a PC too: among the warps blocked for the
    // winning reason, the one that has waited longest since its last
    // issue (the likely head of the dependence chain) names the
    // instruction.
    WarpBlock Best = WarpBlock::None;
    int BestPC = -1;
    uint64_t BestWait = 0;
    int Start = RRNext[Sched] % static_cast<int>(Mine.size());
    for (int Offset = 0; Offset < static_cast<int>(Mine.size());
         ++Offset) {
      int Idx = (Start + Offset) % static_cast<int>(Mine.size());
      int WarpIdx = Mine[Idx];
      int PCBefore = Warps[WarpIdx].PC;
      WarpBlock Why = WarpBlock::None;
      if (!tryIssue(WarpIdx, Sched, /*AllowReplayPenalty=*/true, &Why)) {
        const WarpContext &W = Warps[WarpIdx];
        if (Why > Best || (Why == Best && Why != WarpBlock::None &&
                           W.LastIssue < BestWait)) {
          Best = Why;
          BestWait = W.LastIssue;
          BestPC = W.PC >= 0 && static_cast<size_t>(W.PC) < K.Code.size()
                       ? W.PC
                       : -1;
        }
        continue;
      }
      if (Trap)
        return Status::success();
      IssuedAny = true;
      ++Stats.Breakdown[SlotUse::Issued];
      RRNext[Sched] = Idx + 1;
      // Kepler dual issue: a second, independent instruction from the
      // same warp when the notation permits it. The pair shares the
      // slot already counted as Issued.
      if (M.Generation == GpuGeneration::Kepler && HasNotations) {
        ControlField F = fieldAt(PCBefore);
        WarpContext &W = Warps[WarpIdx];
        if (F.DualIssue && F.StallCycles == 0 && !W.Done &&
            !W.AtBarrier) {
          W.StallUntil = Now; // The pair issues in the same cycle.
          int PCSecond = W.PC;
          IssuingDualSecond = true;
          bool Issued =
              tryIssue(WarpIdx, Sched, /*AllowReplayPenalty=*/false);
          IssuingDualSecond = false;
          if (Issued) {
            ++Stats.DualIssues;
            // tryIssue returns true without reaching issue() only when
            // it trapped; on a clean true, PCSecond is the instruction
            // that just issued as the pair's second half.
            if (Profile && !Trap)
              Profile->countDualIssue(PCSecond);
          }
          if (W.StallUntil <= Now)
            W.StallUntil = Now + 1;
        }
      }
      return Status::success();
    }
    SchedBlocked[Sched] = Best;
    SchedBlockedPC[Sched] = BestPC;
    accountStall(Sched, Best, BestPC, Now, 1);
    return Status::success();
  }

  /// Earliest cycle at which some warp might issue (UINT64_MAX if none).
  uint64_t nextWakeCycle() const {
    uint64_t Min = UINT64_MAX;
    for (const WarpContext &W : Warps) {
      if (W.Done || W.AtBarrier)
        continue;
      uint64_t T = W.StallUntil;
      // Warps sitting on an invalid PC or an invalid-register
      // instruction are immediately eligible: they trap at issue.
      bool PCValid =
          W.PC >= 0 && static_cast<size_t>(W.PC) < K.Code.size();
      if (PCValid && InstRegsOk[W.PC])
        T = std::max(T, regsReadyCycle(W, K.Code[W.PC]));
      // Pipes may also be the blocker.
      double PipeFloor = std::min(
          {IssuePipeFree, MathPipeFree, LdstPipeFree,
           *std::min_element(PortFree.begin(), PortFree.end())});
      T = std::max(T, static_cast<uint64_t>(PipeFloor));
      Min = std::min(Min, T);
    }
    return Min;
  }

  const MachineDesc &M;
  const Kernel &K;
  Executor &Exec;
  const LaunchDims &Dims;
  TraceRecorder *Trace;
  KernelProfile *Profile;
  ProbeEngine *Probes;
  const uint64_t Budget;
  /// True while the dual-issue second half is in tryIssue/issue, so the
  /// fired InstIssued event can carry Dual=1.
  bool IssuingDualSecond = false;

  std::vector<BlockState> Blocks;
  std::vector<WarpContext> Warps;
  int LiveWarps = 0;
  int NumSchedulers = 1;
  bool HasNotations = true;

  uint64_t Now = 0;
  double IssuePipeFree = 0.0;
  double MathPipeFree = 0.0;
  double LdstPipeFree = 0.0;
  double MemBWFree = 0.0;
  std::vector<double> PortFree;
  std::vector<int> RRNext;
  /// Each scheduler's block reason in the most recent no-issue cycle
  /// (reused to attribute fast-forwarded idle spans).
  std::vector<WarpBlock> SchedBlocked;
  /// The attributed PC paired with SchedBlocked (-1 = none), so
  /// fast-forwarded spans land on the same instruction as the cycle
  /// that proved no progress was possible.
  std::vector<int> SchedBlockedPC;
  /// Outstanding bank-conflict surcharge cycles not yet paid out as lost
  /// slots (see accountStall).
  double ConflictDebt = 0.0;

  SimStats Stats;
  std::optional<TrapInfo> Trap;
  /// Per-instruction precomputed register/predicate validity.
  std::vector<uint8_t> InstRegsOk;
};

} // namespace

namespace {
std::atomic<uint64_t> SimulatedCycleTally{0};
std::array<std::atomic<uint64_t>, NumSlotUses> SlotUseTally{};
std::mutex MachineNamesMutex;
std::set<std::string> MachineNames;
} // namespace

Expected<SimStats> gpuperf::simulateWave(
    const MachineDesc &M, const Kernel &K, Executor &Exec,
    const LaunchDims &Dims, const std::vector<int> &BlockIds,
    uint64_t WatchdogCycles, TrapInfo *TrapOut, TraceRecorder *Trace,
    KernelProfile *Profile, ProbeEngine *Probes) {
  if (Profile && Profile->codeSize() != K.Code.size())
    Profile->reset(K.Code.size());
  SMSim Sim(M, K, Exec, Dims, BlockIds, WatchdogCycles, Trace, Profile,
            Probes);
  Expected<SimStats> Result = Sim.run(TrapOut);
  if (Result.hasValue()) {
    SimulatedCycleTally.fetch_add(Result->Cycles,
                                  std::memory_order_relaxed);
    for (size_t U = 0; U < NumSlotUses; ++U)
      SlotUseTally[U].fetch_add(Result->Breakdown.Slots[U],
                                std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(MachineNamesMutex);
      MachineNames.insert(M.Name);
    }
  }
  return Result;
}

std::vector<std::string> gpuperf::simulatedMachineNames() {
  std::lock_guard<std::mutex> Lock(MachineNamesMutex);
  return std::vector<std::string>(MachineNames.begin(),
                                  MachineNames.end());
}

uint64_t gpuperf::totalSimulatedCycles() {
  return SimulatedCycleTally.load(std::memory_order_relaxed);
}

StallBreakdown gpuperf::totalIssueSlotBreakdown() {
  StallBreakdown B;
  for (size_t U = 0; U < NumSlotUses; ++U)
    B.Slots[U] = SlotUseTally[U].load(std::memory_order_relaxed);
  return B;
}
