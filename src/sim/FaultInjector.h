//===- sim/FaultInjector.h - systematic kernel mutation harness -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fault-injection harness for the whole sim stack. Starting from a
/// valid module, it applies seeded mutations -- instruction-word bit
/// flips, branch-target rewrites, shared-size shrinking, address-register
/// scrambling -- then pushes each mutant through the real pipeline
/// (serialize, deserialize, launch on the full timing simulator) and
/// reports a structured outcome. The harness exists to enforce the
/// simulator's contract: *any* input either runs to completion, is
/// rejected by the loader, or traps with a TrapInfo -- it never crashes
/// the process and it is bit-and-cycle deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_FAULTINJECTOR_H
#define GPUPERF_SIM_FAULTINJECTOR_H

#include "sim/Launcher.h"

#include <map>
#include <optional>

namespace gpuperf {

/// The mutation families the harness knows how to apply.
enum class FaultKind {
  CodeBitFlip,     ///< Flip random bits in the serialized code stream.
  HeaderBitFlip,   ///< Flip random bits in the module/kernel headers.
  BranchRetarget,  ///< Rewrite a BRA offset (possibly out of the code).
  SharedShrink,    ///< Shrink the declared shared-memory allocation.
  AddressScramble, ///< Replace an address register or offset of a
                   ///< memory instruction with hostile values.
};

const char *faultKindName(FaultKind K);

/// One mutation request: deterministic given (Kind, Seed, NumMutations).
struct FaultPlan {
  FaultKind Kind = FaultKind::CodeBitFlip;
  uint64_t Seed = 0;
  int NumMutations = 1;
};

/// What happened to one mutant.
struct InjectionRun {
  enum class Outcome {
    Rejected,  ///< Loader/launcher refused the module (no simulation).
    Completed, ///< Ran to completion under the timing simulator.
    Trapped,   ///< Raised a structured runtime trap.
  };

  Outcome Result = Outcome::Rejected;
  std::string RejectReason;      ///< Outcome::Rejected only.
  std::optional<TrapInfo> Trap;  ///< Outcome::Trapped only.
  uint64_t Cycles = 0;           ///< Outcome::Completed only.
  uint64_t ResultHash = 0;       ///< FNV-1a of global memory after a
                                 ///< completed run (determinism checks).

  /// Canonical signature of the run: equal signatures mean the mutant
  /// behaved identically (same outcome, same trap at the same PC and
  /// cycle, or same cycles and memory image).
  std::string signature() const;
};

/// Structured roll-up of a mutant batch: per-outcome counts, per-trap
/// -kind counts, and the first non-completed run -- so callers (tests,
/// sweep reports, future atlas health checks) consume one summary
/// instead of each re-deriving the tallies from the run vector.
struct BatchSummary {
  size_t Total = 0;
  size_t Completed = 0;
  size_t Rejected = 0;
  size_t Trapped = 0;
  /// Trap occurrences per kind; keys only for kinds that occurred, so
  /// the values always sum to Trapped.
  std::map<TrapKind, size_t> TrapCounts;
  /// First run (plan order) that did not complete: index and full
  /// signature. -1 when every run completed.
  int FirstFailureIndex = -1;
  std::string FirstFailureSignature;

  /// One-line human rendering, e.g.
  /// "550 runs: 312 completed, 121 rejected, 117 trapped
  ///  (SHARED_LOAD_OOB x48, ...); first failure #3: trapped: ...".
  std::string toString() const;
};

/// Tallies \p Runs (in plan order) into a BatchSummary.
BatchSummary summarizeBatch(const std::vector<InjectionRun> &Runs);

/// Drives mutants of one base module through the full simulator.
///
/// The base launch configuration (grid, params, watchdog) and the global
/// memory image are rebuilt identically for every run, so runs are
/// independent and reproducible. If the plan's watchdog is 0, a small
/// budget is derived so looping mutants trap quickly.
class FaultInjector {
public:
  /// \p Base must contain at least one kernel; the first one is run.
  /// \p MemBytes global memory is allocated and zero-filled per run, and
  /// \p Launch.Params should reference addresses obtained from the same
  /// bump-allocation order (base address 256, 256-byte alignment).
  FaultInjector(const MachineDesc &M, Module Base, LaunchConfig Launch,
                size_t MemBytes);

  /// Runs the unmutated base module (sanity baseline).
  InjectionRun runBaseline() const;

  /// Applies \p Plan to a fresh copy of the base module and runs it.
  InjectionRun runOne(const FaultPlan &Plan) const;

  /// Runs every plan in \p Plans, fanning the mutants across up to
  /// \p Jobs threads (<= 0 = hardware concurrency). Mutant runs are
  /// fully independent -- each gets its own module copy and fresh global
  /// memory -- and results land in plan order, so the returned vector is
  /// identical for every Jobs value: runBatch(P, 8) == runBatch(P, 1)
  /// == {runOne(P[0]), runOne(P[1]), ...}. When \p Summary is non-null
  /// it receives summarizeBatch() of the returned runs (same counts for
  /// every Jobs value).
  std::vector<InjectionRun> runBatch(const std::vector<FaultPlan> &Plans,
                                     int Jobs = 1,
                                     BatchSummary *Summary = nullptr) const;

private:
  InjectionRun runModuleBytes(const std::vector<uint8_t> &Bytes) const;
  InjectionRun runModule(const Module &Mod) const;

  const MachineDesc &M;
  Module Base;
  std::vector<uint8_t> BaseBytes; ///< Serialized once in the ctor.
  LaunchConfig Launch;
  size_t MemBytes;
};

} // namespace gpuperf

#endif // GPUPERF_SIM_FAULTINJECTOR_H
