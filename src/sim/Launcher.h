//===- sim/Launcher.h - grid launch and performance projection --*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-side launch API: distributes blocks across SMs in waves sized
/// by the occupancy calculator and runs the cycle-level SM simulator.
///
/// Two modes:
///  * Full: every block is simulated (functional results are complete);
///    total time is the slowest SM's sequence of waves.
///  * ProjectOneWave: only the first wave on one SM is simulated and the
///    total cycle count is extrapolated over all waves. Because the
///    paper's kernels have data-independent control flow, wave timing is
///    periodic and the extrapolation is validated against full simulation
///    in the test suite. This is what makes 4800x4800 SGEMM sweeps
///    tractable on a laptop-scale reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_LAUNCHER_H
#define GPUPERF_SIM_LAUNCHER_H

#include "arch/Occupancy.h"
#include "sim/Executor.h"
#include "sim/SMSimulator.h"

namespace gpuperf {

/// How much of the grid to simulate.
enum class SimMode {
  Full,           ///< All blocks on all SMs.
  ProjectOneWave, ///< First wave on one SM; extrapolate cycles.
};

/// A kernel launch request.
struct LaunchConfig {
  LaunchDims Dims;
  std::vector<uint32_t> Params; ///< Constant-bank words (LDC reads these).
  SimMode Mode = SimMode::Full;
  /// When > 0, caps resident blocks per SM below what the occupancy
  /// calculator allows (used by the active-thread sweeps of Figure 4).
  int MaxResidentBlocksOverride = 0;
  /// Per-wave watchdog cycle budget. 0 derives a generous default from
  /// the kernel's code size and the wave's warp count (see
  /// deriveWatchdogBudget); a kernel that loops forever fails with a
  /// WatchdogTimeout trap instead of hanging or silently breaking.
  uint64_t WatchdogCycles = 0;
  /// Host threads used to simulate independent SMs concurrently in
  /// SimMode::Full. 1 (the default) takes the serial path; <= 0 means
  /// one per hardware thread; > 1 simulates each SM against a private
  /// copy-on-write overlay of global memory, merged in SM index order
  /// afterwards -- results, statistics, cycles and traps are
  /// bit-identical to the serial path (enforced by parallel_sim_test).
  /// Like the rest of the launch API this assumes the CUDA contract that
  /// blocks of one launch do not communicate through global memory.
  int Jobs = 1;
  /// When non-null, the launch records a per-warp issue / per-scheduler
  /// stall timeline into *Trace (ring-buffered per track, capacity
  /// Trace->RingCapacity; see sim/Trace.h). Events are merged in SM
  /// index order, so the trace -- like everything else -- is
  /// bit-identical for every Jobs value. Null (the default) costs one
  /// untaken branch per issue: tracing is zero-overhead when off.
  SimTrace *Trace = nullptr;
  /// When non-null, the launch accumulates per-static-instruction
  /// counters into *Profile (issues, dual-issue pairs, replays, lost
  /// slots by cause; see sim/Profile.h). Collected per SM and merged in
  /// SM index order, so the profile is bit-identical for every Jobs
  /// value, and satisfies Profile->breakdown() == Result.Stats.Breakdown
  /// on success. Null (the default) is zero-overhead, like Trace.
  KernelProfile *Profile = nullptr;
  /// When non-null, the launch evaluates *Probes' specs over its
  /// simulation events (see probe/ProbeEngine.h). Each SM fires into a
  /// private clone, merged in SM index order under mergeTrace's failure
  /// rule, so probe results are bit-identical for every Jobs value. When
  /// null, a process-wide engine installed via setProcessProbeEngine
  /// (BenchRun --probe) is used instead -- partials merge into it when
  /// the launch returns, on every path including traps.
  ProbeEngine *Probes = nullptr;
};

/// Result of a (possibly projected) launch.
struct LaunchResult {
  SimStats Stats;          ///< Counters for the simulated portion.
  double TotalCycles = 0;  ///< Whole-grid cycles (projected in wave mode).
  Occupancy Occ;           ///< Residency used during simulation.
  int WavesSimulated = 0;
  int WavesTotal = 0;

  /// Wall-clock seconds of the whole grid on machine \p M.
  double seconds(const MachineDesc &M) const {
    return TotalCycles / (M.ShaderClockMHz * 1e6);
  }
  /// GFLOPS given the launch's useful flop count.
  double gflops(const MachineDesc &M, double Flops) const {
    double S = seconds(M);
    return S > 0 ? Flops / S / 1e9 : 0.0;
  }
};

/// Default per-wave watchdog budget for a kernel of \p CodeSize static
/// instructions running \p WaveWarps warps: generous enough that every
/// legitimate workload (deep K-loops, dependence-stalled microbenchmark
/// chains, memory-latency-bound copies) finishes far below it, yet small
/// enough that a runaway kernel traps promptly relative to MaxWaveCycles.
uint64_t deriveWatchdogBudget(size_t CodeSize, int WaveWarps);

/// Launches \p K on \p M. Fails on unlaunchable configurations (occupancy
/// zero, bad parameters) or runtime faults inside the kernel. Runtime
/// faults produce a structured trap: the error message is the trap's
/// toString() and, when \p TrapOut is non-null, *TrapOut receives the
/// full TrapInfo (kind, warp, PC, cycle, detail).
Expected<LaunchResult> launchKernel(const MachineDesc &M, const Kernel &K,
                                    const LaunchConfig &Config,
                                    GlobalMemory &Global,
                                    TrapInfo *TrapOut = nullptr);

} // namespace gpuperf

#endif // GPUPERF_SIM_LAUNCHER_H
