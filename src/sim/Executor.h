//===- sim/Executor.h - functional execution of warp instructions -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes one instruction functionally for all 32 lanes of a warp, and
/// reports the side information the timing model needs: shared-memory bank
/// serialization, global-memory transaction counts, and control effects.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_EXECUTOR_H
#define GPUPERF_SIM_EXECUTOR_H

#include "arch/MachineDesc.h"
#include "isa/Module.h"
#include "sim/Memory.h"
#include "sim/Trap.h"
#include "sim/Warp.h"
#include "support/Error.h"

#include <vector>

namespace gpuperf {

/// Grid/block geometry of a launch (2D is all the paper's kernels need).
struct LaunchDims {
  int GridX = 1, GridY = 1;
  int BlockX = 1, BlockY = 1;

  int threadsPerBlock() const { return BlockX * BlockY; }
  int numBlocks() const { return GridX * GridY; }
  int warpsPerBlock() const {
    return (threadsPerBlock() + WarpSize - 1) / WarpSize;
  }
};

/// Timing-relevant side effects of executing one warp instruction.
struct ExecEffects {
  bool BranchTaken = false;
  bool IsBarrier = false;
  bool IsExit = false;
  /// Shared access serialization multiplier (>= 1); 1 for non-shared ops.
  double SharedSerialization = 1.0;
  /// Number of 128-byte global transactions generated (0 for non-global).
  int GlobalTransactions = 0;
  /// Total bytes moved to/from global memory.
  int GlobalBytes = 0;
  /// Runtime trap raised by this instruction (TrapKind::None when OK):
  /// out-of-bounds or misaligned accesses, divergent branches, invalid
  /// register indices, unimplemented opcodes.
  TrapKind Trap = TrapKind::None;
  /// Faulting address (memory traps) and first faulting lane.
  uint64_t TrapAddress = 0;
  int TrapLane = -1;
  /// Extra context for the diagnostic (e.g. the offending offset).
  std::string TrapDetail;

  bool faulted() const { return Trap != TrapKind::None; }
};

/// Functional executor bound to one launch's memories and geometry.
///
/// Global memory is accessed through a GlobalMemoryView, so the same
/// executor code serves both the serial path (direct view) and the
/// parallel per-SM path (view over a private write overlay).
class Executor {
public:
  Executor(const MachineDesc &M, GlobalMemoryView Global,
           const std::vector<uint32_t> &Params, const LaunchDims &Dims)
      : M(M), Global(Global), Params(Params), Dims(Dims) {}

  /// Executes \p I for warp \p W whose block is \p BlockIdxLinear
  /// (linearized ctaid) with shared memory \p Shared. Advances nothing;
  /// the caller owns the PC.
  ExecEffects execute(const Instruction &I, WarpContext &W,
                      int BlockIdxLinear, SharedMemory &Shared) const;

private:
  const MachineDesc &M;
  GlobalMemoryView Global;
  const std::vector<uint32_t> &Params;
  const LaunchDims &Dims;
};

} // namespace gpuperf

#endif // GPUPERF_SIM_EXECUTOR_H
