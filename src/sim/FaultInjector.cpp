//===- sim/FaultInjector.cpp - systematic kernel mutation harness ---------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sim/FaultInjector.h"

#include "support/Format.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace gpuperf;

namespace {

/// Small watchdog default for mutants: a corrupted kernel that loops
/// forever should trap in milliseconds of host time, not minutes.
constexpr uint64_t MutantWatchdogCycles = 1ull << 18;

/// First byte eligible for *code* bit flips: past the module
/// magic/version/arch/kernel-count header, so code flips exercise the
/// kernel-header and instruction decoders rather than the magic check.
constexpr size_t ModuleHeaderBytes = 16;

uint64_t fnv1aWord(uint64_t Hash, uint32_t Word) {
  for (int I = 0; I < 4; ++I) {
    Hash ^= (Word >> (8 * I)) & 0xff;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

bool isMemoryOp(const Instruction &I) {
  OpClass C = opcodeInfo(I.Op).Class;
  return C == OpClass::SharedMem || C == OpClass::GlobalMem;
}

void flipRandomBits(std::vector<uint8_t> &Bytes, size_t First, size_t Last,
                    int Count, Rng &R) {
  if (First >= Last)
    return;
  for (int I = 0; I < Count; ++I) {
    size_t Byte = First + R.nextBelow(Last - First);
    Bytes[Byte] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
  }
}

} // namespace

const char *gpuperf::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::CodeBitFlip:
    return "code-bit-flip";
  case FaultKind::HeaderBitFlip:
    return "header-bit-flip";
  case FaultKind::BranchRetarget:
    return "branch-retarget";
  case FaultKind::SharedShrink:
    return "shared-shrink";
  case FaultKind::AddressScramble:
    return "address-scramble";
  }
  return "unknown";
}

std::string InjectionRun::signature() const {
  switch (Result) {
  case Outcome::Rejected:
    return "rejected: " + RejectReason;
  case Outcome::Completed:
    return formatString("completed: cycles %llu hash %016llx",
                        static_cast<unsigned long long>(Cycles),
                        static_cast<unsigned long long>(ResultHash));
  case Outcome::Trapped:
    return "trapped: " + (Trap ? Trap->toString() : std::string("?"));
  }
  return "?";
}

std::string BatchSummary::toString() const {
  std::string S = formatString(
      "%zu runs: %zu completed, %zu rejected, %zu trapped", Total, Completed,
      Rejected, Trapped);
  if (!TrapCounts.empty()) {
    S += " (";
    bool First = true;
    for (const auto &[Kind, Count] : TrapCounts) {
      if (!First)
        S += ", ";
      First = false;
      S += formatString("%s x%zu", trapKindName(Kind), Count);
    }
    S += ")";
  }
  if (FirstFailureIndex >= 0)
    S += formatString("; first failure #%d: %s", FirstFailureIndex,
                      FirstFailureSignature.c_str());
  return S;
}

BatchSummary gpuperf::summarizeBatch(const std::vector<InjectionRun> &Runs) {
  BatchSummary Sum;
  Sum.Total = Runs.size();
  for (size_t I = 0; I < Runs.size(); ++I) {
    const InjectionRun &R = Runs[I];
    switch (R.Result) {
    case InjectionRun::Outcome::Completed:
      ++Sum.Completed;
      continue;
    case InjectionRun::Outcome::Rejected:
      ++Sum.Rejected;
      break;
    case InjectionRun::Outcome::Trapped:
      ++Sum.Trapped;
      if (R.Trap)
        ++Sum.TrapCounts[R.Trap->Kind];
      break;
    }
    if (Sum.FirstFailureIndex < 0) {
      Sum.FirstFailureIndex = static_cast<int>(I);
      Sum.FirstFailureSignature = R.signature();
    }
  }
  return Sum;
}

FaultInjector::FaultInjector(const MachineDesc &M, Module Base,
                             LaunchConfig Launch, size_t MemBytes)
    : M(M), Base(std::move(Base)), Launch(std::move(Launch)),
      MemBytes(MemBytes) {
  BaseBytes = this->Base.serialize();
}

InjectionRun FaultInjector::runBaseline() const {
  return runModuleBytes(BaseBytes);
}

InjectionRun FaultInjector::runOne(const FaultPlan &Plan) const {
  // Decorrelate (Kind, Seed) pairs so plans with equal seeds but
  // different kinds do not mutate "the same" random positions.
  Rng R(Plan.Seed * 0x9e3779b97f4a7c15ull +
        static_cast<uint64_t>(Plan.Kind) + 1);
  const int Count = std::max(1, Plan.NumMutations);

  switch (Plan.Kind) {
  case FaultKind::CodeBitFlip: {
    std::vector<uint8_t> Bytes = BaseBytes;
    flipRandomBits(Bytes, std::min(ModuleHeaderBytes, Bytes.size()),
                   Bytes.size(), Count, R);
    return runModuleBytes(Bytes);
  }
  case FaultKind::HeaderBitFlip: {
    std::vector<uint8_t> Bytes = BaseBytes;
    flipRandomBits(Bytes, 0, std::min<size_t>(32, Bytes.size()), Count, R);
    return runModuleBytes(Bytes);
  }
  case FaultKind::BranchRetarget:
  case FaultKind::SharedShrink:
  case FaultKind::AddressScramble:
    break;
  }

  // The remaining kinds are semantic mutations: edit a decoded copy,
  // then round-trip through serialize/deserialize so the mutant reaches
  // the simulator exactly the way a corrupted file would.
  Module Mod = Base;
  if (Mod.Kernels.empty()) {
    InjectionRun Run;
    Run.Result = InjectionRun::Outcome::Rejected;
    Run.RejectReason = "base module has no kernels";
    return Run;
  }
  Kernel &K = Mod.Kernels[0];

  if (Plan.Kind == FaultKind::SharedShrink) {
    K.SharedBytes =
        K.SharedBytes > 0
            ? static_cast<int>(
                  R.nextBelow(static_cast<uint64_t>(K.SharedBytes)))
            : 0;
    return runModuleBytes(Mod.serialize());
  }

  // Collect candidate instructions for the targeted mutations; fall back
  // to code bit flips when the kernel has no such instruction so every
  // plan still produces a mutant run.
  std::vector<size_t> Candidates;
  for (size_t I = 0; I < K.Code.size(); ++I) {
    bool Wanted = Plan.Kind == FaultKind::BranchRetarget
                      ? K.Code[I].Op == Opcode::BRA
                      : isMemoryOp(K.Code[I]);
    if (Wanted)
      Candidates.push_back(I);
  }
  if (Candidates.empty()) {
    std::vector<uint8_t> Bytes = BaseBytes;
    flipRandomBits(Bytes, std::min(ModuleHeaderBytes, Bytes.size()),
                   Bytes.size(), Count, R);
    return runModuleBytes(Bytes);
  }

  for (int Edit = 0; Edit < Count; ++Edit) {
    Instruction &I = K.Code[Candidates[R.nextBelow(Candidates.size())]];
    if (Plan.Kind == FaultKind::BranchRetarget) {
      // Anywhere from "far before the code" to "far past the end".
      int Range = static_cast<int>(K.Code.size()) + 16;
      I.Imm = static_cast<int32_t>(R.nextInRange(-Range, Range));
    } else if (R.nextBelow(2) == 0) {
      // AddressScramble: replace the base address register...
      I.Src[0] = static_cast<uint8_t>(R.nextBelow(64));
    } else {
      // ...or the byte offset (kept within the encodable 24-bit range).
      I.Imm =
          static_cast<int32_t>(R.nextInRange(-(1 << 22), (1 << 22) - 1));
    }
  }
  return runModuleBytes(Mod.serialize());
}

std::vector<InjectionRun>
FaultInjector::runBatch(const std::vector<FaultPlan> &Plans, int Jobs,
                        BatchSummary *Summary) const {
  std::vector<InjectionRun> Runs(Plans.size());
  parallelFor(Jobs, Plans.size(),
              [&](size_t I) { Runs[I] = runOne(Plans[I]); });
  if (Summary)
    *Summary = summarizeBatch(Runs);
  return Runs;
}

InjectionRun
FaultInjector::runModuleBytes(const std::vector<uint8_t> &Bytes) const {
  auto Mod = Module::deserialize(Bytes);
  if (!Mod) {
    InjectionRun Run;
    Run.Result = InjectionRun::Outcome::Rejected;
    Run.RejectReason = Mod.message();
    return Run;
  }
  return runModule(*Mod);
}

InjectionRun FaultInjector::runModule(const Module &Mod) const {
  InjectionRun Run;
  if (Mod.Kernels.empty()) {
    Run.Result = InjectionRun::Outcome::Rejected;
    Run.RejectReason = "module has no kernels";
    return Run;
  }
  const Kernel &K = Mod.Kernels[0];

  LaunchConfig LC = Launch;
  if (LC.WatchdogCycles == 0)
    LC.WatchdogCycles = MutantWatchdogCycles;

  // A fresh zero-filled memory per run keeps runs independent, so the
  // same mutant always sees the same initial state.
  GlobalMemory GM(MemBytes);

  TrapInfo Trap;
  auto LR = launchKernel(M, K, LC, GM, &Trap);
  if (!LR) {
    if (Trap.valid()) {
      Run.Result = InjectionRun::Outcome::Trapped;
      Run.Trap = Trap;
    } else {
      Run.Result = InjectionRun::Outcome::Rejected;
      Run.RejectReason = LR.message();
    }
    return Run;
  }

  Run.Result = InjectionRun::Outcome::Completed;
  Run.Cycles = static_cast<uint64_t>(LR->TotalCycles);
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (size_t Addr = 0; Addr + 4 <= GM.size(); Addr += 4)
    Hash = fnv1aWord(Hash, GM.load32(static_cast<uint32_t>(Addr)));
  Run.ResultHash = Hash;
  return Run;
}
