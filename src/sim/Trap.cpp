//===- sim/Trap.cpp - structured runtime fault reporting ------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sim/Trap.h"

#include "support/Format.h"

using namespace gpuperf;

const char *gpuperf::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "NONE";
  case TrapKind::GlobalLoadOOB:
    return "GLOBAL_LOAD_OOB";
  case TrapKind::GlobalStoreOOB:
    return "GLOBAL_STORE_OOB";
  case TrapKind::SharedLoadOOB:
    return "SHARED_LOAD_OOB";
  case TrapKind::SharedStoreOOB:
    return "SHARED_STORE_OOB";
  case TrapKind::MisalignedAccess:
    return "MISALIGNED_ACCESS";
  case TrapKind::InvalidPC:
    return "INVALID_PC";
  case TrapKind::RegisterIndexOOB:
    return "REGISTER_INDEX_OOB";
  case TrapKind::InvalidConstOffset:
    return "INVALID_CONST_OFFSET";
  case TrapKind::DivergentBranch:
    return "DIVERGENT_BRANCH";
  case TrapKind::UnimplementedOpcode:
    return "UNIMPLEMENTED_OPCODE";
  case TrapKind::WatchdogTimeout:
    return "WATCHDOG_TIMEOUT";
  case TrapKind::Deadlock:
    return "DEADLOCK";
  }
  return "UNKNOWN";
}

bool gpuperf::trapIsInstructionScoped(TrapKind K) {
  switch (K) {
  case TrapKind::None:
  case TrapKind::WatchdogTimeout:
  case TrapKind::Deadlock:
  // The PC of an InvalidPC trap is the out-of-range target itself; no
  // instruction exists there to report.
  case TrapKind::InvalidPC:
    return false;
  default:
    return true;
  }
}

std::string TrapInfo::toString() const {
  if (!valid())
    return "no trap";
  std::string S = formatString("trap %s in kernel '%s'", trapKindName(Kind),
                               KernelName.c_str());
  if (BlockId >= 0)
    S += formatString(", block %d", BlockId);
  if (WarpId >= 0)
    S += formatString(", warp %d", WarpId);
  if (PC >= 0 || Kind == TrapKind::InvalidPC)
    S += formatString(", PC %d", PC);
  if (!InstText.empty())
    S += formatString(": %s", InstText.c_str());
  S += formatString(" (cycle %llu", static_cast<unsigned long long>(Cycle));
  if (LaneMask != 0)
    S += formatString(", lanes 0x%08x", LaneMask);
  if (Lane >= 0)
    S += formatString(", lane %d", Lane);
  if (trapIsInstructionScoped(Kind) && Kind != TrapKind::DivergentBranch &&
      Kind != TrapKind::UnimplementedOpcode &&
      Kind != TrapKind::RegisterIndexOOB)
    S += formatString(", address 0x%llx",
                      static_cast<unsigned long long>(Address));
  S += ")";
  if (!Detail.empty())
    S += "\n" + Detail;
  return S;
}
