//===- sim/Trace.cpp - per-warp issue/stall event timeline ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sim/Trace.h"

#include "arch/MachineDesc.h"
#include "support/Format.h"
#include "support/Json.h"

#include <cstdio>

using namespace gpuperf;

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

TraceRecorder::TraceRecorder(size_t RingCapacity)
    : RingCapacity(RingCapacity < 1 ? 1 : RingCapacity) {}

void TraceRecorder::beginWave(size_t NumWarps, int NumSchedulers,
                              uint64_t Offset) {
  CycleOffset = Offset;
  WarpRings.assign(NumWarps, Ring());
  SchedRings.assign(static_cast<size_t>(NumSchedulers), Ring());
  Open.assign(static_cast<size_t>(NumSchedulers), OpenStall());
}

void TraceRecorder::push(Ring &R, const TraceEvent &E) {
  if (R.Buf.size() < RingCapacity) {
    R.Buf.push_back(E);
    return;
  }
  R.Buf[R.Next] = E;
  R.Next = (R.Next + 1) % RingCapacity;
  R.Wrapped = true;
  ++Dropped;
}

void TraceRecorder::issue(int WarpSlot, int BlockId, int WarpInBlock,
                          uint64_t Cycle, int PC, Opcode Op) {
  TraceEvent E;
  E.Cycle = CycleOffset + Cycle;
  E.Dur = 1;
  E.PC = PC;
  E.BlockId = BlockId;
  E.Track = static_cast<uint16_t>(WarpSlot);
  E.IsStall = 0;
  E.Code = static_cast<uint8_t>(Op);
  E.WarpInBlock = static_cast<uint8_t>(WarpInBlock);
  push(WarpRings[static_cast<size_t>(WarpSlot)], E);
}

void TraceRecorder::stall(int Sched, uint64_t Cycle, uint64_t Cycles,
                          SlotUse Use) {
  OpenStall &S = Open[static_cast<size_t>(Sched)];
  uint64_t Start = CycleOffset + Cycle;
  if (S.Valid && S.Use == Use && S.Start + S.Dur == Start) {
    S.Dur += Cycles;
    return;
  }
  if (S.Valid)
    flushStall(Sched);
  S.Start = Start;
  S.Dur = Cycles;
  S.Use = Use;
  S.Valid = true;
}

void TraceRecorder::flushStall(int Sched) {
  OpenStall &S = Open[static_cast<size_t>(Sched)];
  if (!S.Valid)
    return;
  TraceEvent E;
  E.Cycle = S.Start;
  E.Dur = S.Dur;
  E.Track = static_cast<uint16_t>(SchedTrackBase + Sched);
  E.IsStall = 1;
  E.Code = static_cast<uint8_t>(S.Use);
  push(SchedRings[static_cast<size_t>(Sched)], E);
  S.Valid = false;
}

void TraceRecorder::endWave() {
  for (size_t S = 0; S < Open.size(); ++S)
    flushStall(static_cast<int>(S));
  // Unroll each ring oldest-first onto the finished list so waves stay in
  // chronological, track-major order.
  auto Drain = [&](Ring &R) {
    if (R.Wrapped)
      Finished.insert(Finished.end(), R.Buf.begin() + R.Next,
                      R.Buf.end());
    Finished.insert(Finished.end(), R.Buf.begin(),
                    R.Buf.begin() + (R.Wrapped ? R.Next : R.Buf.size()));
    R = Ring();
  };
  for (Ring &R : WarpRings)
    Drain(R);
  for (Ring &R : SchedRings)
    Drain(R);
}

std::vector<TraceEvent> TraceRecorder::take() {
  endWave();
  std::vector<TraceEvent> Out = std::move(Finished);
  Finished.clear();
  return Out;
}

//===----------------------------------------------------------------------===//
// Chrome trace_event JSON
//===----------------------------------------------------------------------===//

std::string gpuperf::chromeTraceJson(const SimTrace &Trace,
                                     const MachineDesc &M) {
  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();

  // Metadata: name the processes (SMs) and scheduler tracks.
  int MaxSM = -1;
  for (const TraceEvent &E : Trace.Events)
    MaxSM = E.SM > MaxSM ? E.SM : MaxSM;
  for (int SM = 0; SM <= MaxSM; ++SM) {
    W.beginObject();
    W.kv("name", "process_name");
    W.kv("ph", "M");
    W.kv("pid", SM);
    W.key("args");
    W.beginObject();
    W.kv("name", formatString("%s SM %d", M.Name.c_str(), SM));
    W.endObject();
    W.endObject();
  }

  // Surface ring evictions inside the timeline itself (in addition to
  // the top-level key below): viewers and scripts that read only
  // traceEvents still learn the timeline is truncated.
  W.beginObject();
  W.kv("name", "dropped_events");
  W.kv("ph", "M");
  W.kv("pid", 0);
  W.key("args");
  W.beginObject();
  W.kv("dropped_events", Trace.DroppedEvents);
  W.endObject();
  W.endObject();

  for (const TraceEvent &E : Trace.Events) {
    W.beginObject();
    if (E.IsStall) {
      W.kv("name", slotUseName(static_cast<SlotUse>(E.Code)));
      W.kv("cat", "stall");
    } else {
      W.kv("name", opcodeMnemonic(static_cast<Opcode>(E.Code)));
      W.kv("cat", "issue");
    }
    W.kv("ph", "X");
    W.kv("ts", E.Cycle);
    W.kv("dur", E.Dur);
    W.kv("pid", static_cast<int>(E.SM));
    W.kv("tid", static_cast<unsigned>(E.Track));
    if (!E.IsStall) {
      W.key("args");
      W.beginObject();
      W.kv("pc", E.PC);
      W.kv("block", E.BlockId);
      W.kv("warp", static_cast<int>(E.WarpInBlock));
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.kv("displayTimeUnit", "ns");
  W.kv("machine", M.Name);
  W.kv("dropped_events", Trace.DroppedEvents);
  W.endObject();
  return W.take();
}

Status gpuperf::writeChromeTrace(const SimTrace &Trace,
                                 const MachineDesc &M,
                                 const std::string &Path) {
  std::string Json = chromeTraceJson(Trace, M);
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return Status::error("cannot write trace file '" + Path + "'");
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool CloseOk = std::fclose(F) == 0;
  if (Written != Json.size() || !CloseOk)
    return Status::error("short write to trace file '" + Path + "'");
  return Status::success();
}
