//===- sim/Profile.cpp - per-static-instruction counters ------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sim/Profile.h"

#include <cassert>

namespace gpuperf {

void KernelProfile::add(const KernelProfile &O) {
  if (PCs.empty())
    PCs.resize(O.PCs.size());
  assert(PCs.size() == O.PCs.size() &&
         "merging profiles of different kernels");
  for (size_t I = 0; I < PCs.size(); ++I)
    PCs[I].add(O.PCs[I]);
  NoPC.add(O.NoPC);
}

uint64_t KernelProfile::totalIssues() const {
  uint64_t T = NoPC.Issues;
  for (const PCCounters &C : PCs)
    T += C.Issues;
  return T;
}

uint64_t KernelProfile::totalDualIssues() const {
  uint64_t T = NoPC.DualIssues;
  for (const PCCounters &C : PCs)
    T += C.DualIssues;
  return T;
}

uint64_t KernelProfile::totalReplays() const {
  uint64_t T = NoPC.Replays;
  for (const PCCounters &C : PCs)
    T += C.Replays;
  return T;
}

StallBreakdown KernelProfile::breakdown() const {
  StallBreakdown B;
  auto Fold = [&B](const PCCounters &C) {
    B.Slots[static_cast<size_t>(SlotUse::Issued)] += C.issuedSlots();
    for (size_t U = 0; U < NumSlotUses; ++U)
      if (U != static_cast<size_t>(SlotUse::Issued))
        B.Slots[U] += C.StallSlots[U];
  };
  for (const PCCounters &C : PCs)
    Fold(C);
  Fold(NoPC);
  return B;
}

} // namespace gpuperf
