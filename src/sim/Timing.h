//===- sim/Timing.h - per-instruction issue cost model ----------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Issue-cost and latency rules. The SM simulator models four structural
/// resources:
///
///  * per-scheduler dispatch ports: on Fermi each warp instruction holds
///    its port for 2 cycles (16-wide units, 32-thread warps), which is
///    exactly the "32 thread instructions per shader cycle per SM" issue
///    ceiling of Table 1;
///  * the Kepler SM-wide issue pipe with a sustained capacity of ~132
///    useful thread instructions per cycle (Section 3.3), whose per-
///    instruction cost grows with register bank conflicts and shrinks on
///    the repeated-source fast path -- this reproduces Table 2;
///  * the LD/ST pipe with width-dependent shared-memory costs
///    (Section 4.1) scaled by the measured bank-conflict serialization;
///  * a global-memory bandwidth pipe plus fixed latency.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_TIMING_H
#define GPUPERF_SIM_TIMING_H

#include "arch/MachineDesc.h"
#include "arch/RegisterBank.h"
#include "isa/Instruction.h"
#include "sim/Warp.h"

namespace gpuperf {

/// Issue-slot cost of one math/move warp instruction in units where the
/// SM's math path sustains MathIssueSlotsPerCycle thread instructions per
/// cycle at cost 1. Encodes the Kepler register-bank rules (Section 3.3):
/// 2-way / 3-way source conflicts add slots, accumulator write-back adds a
/// small turnaround, and repeated sources ride the ~178-peak fast path.
/// Worst per-bank load of \p I's distinct source registers (1 = conflict
/// free); 1 on machines without a banked register file.
inline int mathSourceConflictDegree(const MachineDesc &M,
                                    const Instruction &I) {
  if (M.RegisterFileBanks <= 0)
    return 1;
  // Distinct source registers and their worst per-bank load.
  RegList Distinct;
  bool ImmSlot1 = I.immReplacesSrc1();
  for (int Slot = 0; Slot < opcodeInfo(I.Op).NumSrcRegs; ++Slot) {
    if (ImmSlot1 && Slot == 1)
      continue;
    uint8_t Reg = I.Src[Slot];
    if (Reg == RegRZ || Distinct.contains(Reg))
      continue;
    Distinct.push(Reg);
  }
  return bankConflictDegree(Distinct);
}

inline double mathSlotCost(const MachineDesc &M, const Instruction &I) {
  bool QuarterRate = opcodeInfo(I.Op).Class == OpClass::IntMulMath;
  double Cost = QuarterRate ? M.QuarterRateSlots : 1.0;
  if (M.RegisterFileBanks <= 0)
    return Cost;
  int Conflict = mathSourceConflictDegree(M, I);

  if (QuarterRate)
    return Cost + std::max(0, Conflict - 2);

  Cost += Conflict - 1;
  if (I.dstIsAlsoSource())
    Cost += M.AccumTurnaroundSlots;
  // Repeated-source fast path: a shared read port frees issue bandwidth.
  if (Conflict == 1 && I.numSourceSlots() > I.numDistinctSourceRegs() &&
      M.RepeatedOperandPeak > M.MathIssueSlotsPerCycle)
    Cost = M.MathIssueSlotsPerCycle / M.RepeatedOperandPeak;
  return Cost;
}

/// Issue-pipe cycles \p I occupies *beyond* its conflict-free cost: the
/// register-bank-conflict surcharge of Section 3.3 / Table 2. The stall
/// attributor banks this debt at issue time and pays it out when later
/// slots are lost to a busy issue pipe, splitting "issue pipe saturated"
/// into its bank-conflict and raw-issue-width components.
inline double bankConflictExtraCycles(const MachineDesc &M,
                                      const Instruction &I) {
  if (M.Generation != GpuGeneration::Kepler)
    return 0.0;
  switch (opcodeInfo(I.Op).Class) {
  case OpClass::FloatMath:
  case OpClass::IntMath:
  case OpClass::IntMulMath:
  case OpClass::Move:
    break;
  default:
    return 0.0;
  }
  int Conflict = mathSourceConflictDegree(M, I);
  bool QuarterRate = opcodeInfo(I.Op).Class == OpClass::IntMulMath;
  int ExtraSlots =
      QuarterRate ? std::max(0, Conflict - 2) : std::max(0, Conflict - 1);
  return ExtraSlots * WarpSize / M.MathIssueSlotsPerCycle;
}

/// Cycles the Kepler SM-wide issue pipe is occupied by \p I; 0 on
/// architectures where the dispatch ports are the binding issue resource.
inline double issuePipeCycles(const MachineDesc &M, const Instruction &I) {
  if (M.Generation != GpuGeneration::Kepler)
    return 0.0;
  if (opcodeInfo(I.Op).Class == OpClass::Control)
    return 0.0;
  double Slots = 1.0;
  switch (opcodeInfo(I.Op).Class) {
  case OpClass::FloatMath:
  case OpClass::IntMath:
  case OpClass::IntMulMath:
  case OpClass::Move:
    Slots = mathSlotCost(M, I);
    break;
  default:
    break;
  }
  return Slots * WarpSize / M.MathIssueSlotsPerCycle;
}

/// Issue-pipe cycles \p I would occupy if its sources were spread
/// conflict-free across the register banks: the cost the list
/// scheduler's bank rotation aims for, and the per-instruction basis of
/// the region-level issue bound (model/UpperBound's regionIssueBound).
inline double issuePipeCyclesConflictFree(const MachineDesc &M,
                                          const Instruction &I) {
  return issuePipeCycles(M, I) - bankConflictExtraCycles(M, I);
}

/// Dispatch-port occupancy in cycles (per scheduler). Fermi's 16-wide
/// execution units hold the port 2 cycles per warp instruction; GT200's
/// single scheduler issues one warp instruction every other shader cycle
/// (one per core cycle).
inline double dispatchPortCycles(const MachineDesc &M,
                                 const Instruction &I) {
  if (M.Generation == GpuGeneration::Kepler)
    return 0.0; // Modeled by the per-cycle dispatch count + issue pipe.
  return opcodeInfo(I.Op).Class == OpClass::Control ? 1.0 : 2.0;
}

/// SM-wide SP-pipeline occupancy in cycles for math instructions on
/// pre-Kepler parts. On Fermi 32 SPs retire a warp instruction per cycle,
/// which coincides with the dispatch-port limit; on GT200 only 8 SPs
/// exist, so a math warp instruction holds the pipe 4 cycles while the
/// scheduler has "free cycles to issue instructions to other functional
/// units" (Section 4.2).
inline double mathPipeCycles(const MachineDesc &M, const Instruction &I) {
  if (M.Generation == GpuGeneration::Kepler)
    return 0.0; // The issue pipe covers the math path.
  switch (opcodeInfo(I.Op).Class) {
  case OpClass::FloatMath:
  case OpClass::IntMath:
  case OpClass::IntMulMath:
  case OpClass::Move: {
    double Slots = opcodeInfo(I.Op).Class == OpClass::IntMulMath
                       ? M.QuarterRateSlots
                       : 1.0;
    return Slots * WarpSize / M.SPsPerSM;
  }
  default:
    return 0.0;
  }
}

/// LD/ST pipe occupancy in cycles, before bank-conflict serialization.
inline double ldstPipeCycles(const MachineDesc &M, const Instruction &I) {
  OpClass Class = opcodeInfo(I.Op).Class;
  if (Class == OpClass::GlobalMem)
    return WarpSize / M.LdsThroughput32; // Address/coalescing phase.
  if (Class != OpClass::SharedMem)
    return 0.0;
  switch (I.Width) {
  case MemWidth::B32:
    return WarpSize / M.LdsThroughput32;
  case MemWidth::B64:
    return WarpSize / M.LdsThroughput64;
  case MemWidth::B128:
    return WarpSize / M.LdsThroughput128;
  }
  return 0.0;
}

/// Cycles until the destination registers of \p I become readable, for
/// non-global instructions (global loads complete via the memory pipe).
inline int resultLatency(const MachineDesc &M, const Instruction &I) {
  switch (opcodeInfo(I.Op).Class) {
  case OpClass::SharedMem:
    return M.SharedMemLatency;
  case OpClass::GlobalMem:
    return M.GlobalMemLatency;
  default:
    return M.MathLatency;
  }
}

/// Global-memory bytes per shader cycle available to ONE SM (the chip
/// bandwidth is shared evenly across SMs).
inline double memBytesPerCyclePerSM(const MachineDesc &M) {
  double BytesPerSecond = M.GlobalMemBandwidthGBs * 1e9;
  double CyclesPerSecond = M.ShaderClockMHz * 1e6;
  return BytesPerSecond / CyclesPerSecond / M.NumSMs;
}

/// Extra multiplier applied to shared-access serialization on widths whose
/// base cost already includes an implicit conflict (Fermi LDS.128,
/// Section 4.1: "normally leads to 2-way shared memory bank conflict").
inline double implicitConflictAllowance(const MachineDesc &M,
                                        const Instruction &I) {
  if (M.Lds128Penalized && I.Width == MemWidth::B128)
    return 2.0;
  return 1.0;
}

} // namespace gpuperf

#endif // GPUPERF_SIM_TIMING_H
