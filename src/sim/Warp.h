//===- sim/Warp.h - per-warp architectural and timing state -----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_WARP_H
#define GPUPERF_SIM_WARP_H

#include "isa/Instruction.h"

#include <array>
#include <cstdint>
#include <vector>

namespace gpuperf {

/// Number of threads per warp (fixed across all three generations).
inline constexpr int WarpSize = 32;

/// Architectural plus timing state of one resident warp.
struct WarpContext {
  // --- Identity -----------------------------------------------------------
  int BlockSlot = 0;   ///< Index into the SM's resident-block array.
  int WarpInBlock = 0; ///< Warp index within its block.
  uint32_t ActiveMask = 0xffffffffu; ///< Lanes holding real threads.

  // --- Architectural state --------------------------------------------------
  int PC = 0;
  bool Done = false;
  bool AtBarrier = false;
  /// 63 GPRs x 32 lanes; index Reg * WarpSize + Lane. RZ is not stored.
  std::vector<uint32_t> Regs;
  /// Per-lane predicate bits, one 32-bit mask per predicate register.
  std::array<uint32_t, NumPredRegs> Preds = {};

  // --- Timing state ---------------------------------------------------------
  /// Cycle at which each register's pending write completes.
  std::array<uint64_t, 64> RegReady = {};
  std::array<uint64_t, NumPredRegs> PredReady = {};
  /// Warp may not issue before this cycle (control-notation stalls,
  /// replay penalties).
  uint64_t StallUntil = 0;
  /// True when the previous instruction's notation set the yield flag:
  /// scoreboard waits are free (no replay penalty) for the next issue.
  bool NoPenaltyWait = false;
  /// Round-robin ranking aid: cycle of last issue.
  uint64_t LastIssue = 0;
  /// Instructions issued by this warp (watchdog progress reporting).
  uint64_t InstsIssued = 0;

  void reset(int NumRegs) {
    PC = 0;
    Done = false;
    AtBarrier = false;
    Regs.assign(static_cast<size_t>(NumRegs) * WarpSize, 0);
    Preds = {};
    RegReady = {};
    PredReady = {};
    StallUntil = 0;
    NoPenaltyWait = false;
    LastIssue = 0;
    InstsIssued = 0;
  }

  /// Number of allocated architectural registers for this warp.
  int numRegs() const { return static_cast<int>(Regs.size() / WarpSize); }

  /// Register accessors are total: indices past the allocated file (the
  /// scheduler traps those instructions before they execute) read zero
  /// and drop writes instead of running off the vector in NDEBUG builds.
  uint32_t readReg(uint8_t Reg, int Lane) const {
    if (Reg == RegRZ)
      return 0;
    size_t Idx = static_cast<size_t>(Reg) * WarpSize + Lane;
    if (Idx >= Regs.size())
      return 0;
    return Regs[Idx];
  }
  void writeReg(uint8_t Reg, int Lane, uint32_t Value) {
    if (Reg == RegRZ)
      return;
    size_t Idx = static_cast<size_t>(Reg) * WarpSize + Lane;
    if (Idx >= Regs.size())
      return;
    Regs[Idx] = Value;
  }
  /// Predicate accessors are total: the encoding has 3-bit guard fields,
  /// so P4..P6 are representable but not architectural. The simulator
  /// traps such instructions before execution; these guards keep even a
  /// missed path safe in NDEBUG builds (reads false, writes dropped).
  bool readPred(uint8_t Pred, int Lane) const {
    if (Pred == PredPT)
      return true;
    if (Pred >= NumPredRegs)
      return false;
    return (Preds[Pred] >> Lane) & 1;
  }
  void writePred(uint8_t Pred, int Lane, bool Value) {
    assert(Pred < NumPredRegs && "write to invalid predicate");
    if (Pred >= NumPredRegs)
      return;
    if (Value)
      Preds[Pred] |= 1u << Lane;
    else
      Preds[Pred] &= ~(1u << Lane);
  }
  /// Guard evaluation for one lane.
  bool guardTrue(const Instruction &I, int Lane) const {
    bool P = readPred(I.GuardPred, Lane);
    return I.GuardNeg ? !P : P;
  }
};

} // namespace gpuperf

#endif // GPUPERF_SIM_WARP_H
