//===- sim/Launcher.cpp - grid launch and performance projection ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sim/Launcher.h"

#include "support/Format.h"
#include "support/MathUtils.h"
#include "support/ThreadPool.h"

using namespace gpuperf;

namespace {

/// Everything one concurrently-simulated SM produces: its private write
/// overlay, its accumulated statistics, and -- when a wave failed -- the
/// error exactly as the serial path would have reported it.
struct SMOutcome {
  SimStats Stats;
  GlobalWriteOverlay Overlay;
  std::vector<TraceEvent> TraceEvents;
  uint64_t TraceDropped = 0;
  KernelProfile Profile;
  ProbeEngine Probes;
  int Waves = 0;
  bool Failed = false;
  std::string Error;
  TrapInfo Trap;
};

/// Runs all waves of one SM's block list. Used by both the serial and
/// the parallel path so per-SM behaviour is the same code by
/// construction; only where the writes land differs (direct vs overlay).
/// \p TraceRing enables event recording when non-zero (ring capacity per
/// track); the events land in Out.TraceEvents with SM still unset -- the
/// caller stamps the SM index when merging, so the parallel path cannot
/// depend on which worker simulated which SM.
void runSMWaves(const MachineDesc &M, const Kernel &K, Executor &Exec,
                const LaunchDims &Dims, const std::vector<int> &Mine,
                int ActiveBlocks, uint64_t Watchdog, size_t TraceRing,
                bool ProfileOn, const ProbeEngine *ProbeProto,
                SMOutcome &Out) {
  TraceRecorder Rec(TraceRing ? TraceRing : 1);
  if (ProbeProto)
    Out.Probes = ProbeProto->emptyClone();
  for (size_t First = 0; First < Mine.size();
       First += static_cast<size_t>(ActiveBlocks)) {
    size_t Last =
        std::min(Mine.size(), First + static_cast<size_t>(ActiveBlocks));
    std::vector<int> WaveBlocks(Mine.begin() + First, Mine.begin() + Last);
    if (TraceRing)
      Rec.beginWave(WaveBlocks.size() *
                        static_cast<size_t>(Dims.warpsPerBlock()),
                    std::max(1, M.WarpSchedulersPerSM), Out.Stats.Cycles);
    if (ProbeProto)
      Out.Probes.beginWave(Out.Stats.Cycles);
    auto Wave = simulateWave(M, K, Exec, Dims, WaveBlocks, Watchdog,
                             &Out.Trap, TraceRing ? &Rec : nullptr,
                             ProfileOn ? &Out.Profile : nullptr,
                             ProbeProto ? &Out.Probes : nullptr);
    if (TraceRing)
      Rec.endWave();
    if (!Wave) {
      Out.Failed = true;
      Out.Error = Wave.takeError();
      break;
    }
    Out.Stats.addSequential(*Wave);
    ++Out.Waves;
  }
  if (TraceRing) {
    Out.TraceEvents = Rec.take();
    Out.TraceDropped = Rec.dropped();
  }
}

/// Appends one SM's trace events to the launch-wide trace, stamping the
/// SM index. Called in SM index order on both the serial and the
/// parallel path so the trace is Jobs-invariant.
void mergeTrace(SimTrace *Trace, int SMIndex, SMOutcome &Out) {
  if (!Trace)
    return;
  for (TraceEvent &E : Out.TraceEvents) {
    E.SM = static_cast<int16_t>(SMIndex);
    Trace->Events.push_back(E);
  }
  Trace->DroppedEvents += Out.TraceDropped;
  Out.TraceEvents.clear();
}

/// Accumulates one SM's per-PC profile into the launch-wide profile.
/// Called in SM index order on both the serial and the parallel path --
/// the profile, like the trace and the memory image, is Jobs-invariant.
/// Follows mergeTrace's failure rule: a trapping SM's partial profile is
/// merged before the launch reports the trap.
void mergeProfile(KernelProfile *Profile, SMOutcome &Out) {
  if (!Profile || Out.Profile.empty())
    return;
  Profile->add(Out.Profile);
}

/// Folds one SM's probe partial into the launch sink. Called in SM index
/// order under mergeTrace's failure rule; because every probe
/// aggregation is commutative and associative, the result is the same
/// for any merge order -- the order is kept anyway so probes follow the
/// same determinism discipline as the trace and profile.
void mergeProbes(ProbeEngine *Sink, SMOutcome &Out) {
  if (!Sink || !Out.Probes.enabled())
    return;
  Sink->merge(Out.Probes);
}

} // namespace

uint64_t gpuperf::deriveWatchdogBudget(size_t CodeSize, int WaveWarps) {
  // Rationale: a warp's dynamic instruction count is bounded by code size
  // times loop trips; 8192 cycles of headroom per static instruction per
  // warp covers every calibrated workload (SGEMM's ~600-trip K loops,
  // 8192-instruction dependent microbenchmark chains at 18-26 cycle
  // latency, 300-400 cycle global-memory stalls) by more than an order of
  // magnitude, while a tiny runaway loop traps within ~100K cycles.
  uint64_t Warps = static_cast<uint64_t>(WaveWarps < 1 ? 1 : WaveWarps);
  uint64_t Insts = static_cast<uint64_t>(CodeSize < 1 ? 1 : CodeSize);
  uint64_t Budget = 65536 + 8192 * Insts * Warps;
  return Budget < MaxWaveCycles ? Budget : MaxWaveCycles;
}

Expected<LaunchResult> gpuperf::launchKernel(const MachineDesc &M,
                                             const Kernel &K,
                                             const LaunchConfig &Config,
                                             GlobalMemory &Global,
                                             TrapInfo *TrapOut) {
  using ER = Expected<LaunchResult>;
  const LaunchDims &Dims = Config.Dims;
  if (Dims.numBlocks() <= 0 || Dims.threadsPerBlock() <= 0)
    return ER::error("empty launch configuration");
  if (K.Code.empty())
    return ER::error(formatString("kernel '%s' has no code",
                                  K.Name.c_str()));
  if (M.Generation == GpuGeneration::Kepler && K.hasNotations() &&
      K.Notations.size() != K.requiredNotationCount())
    return ER::error("control notations do not cover the kernel code");

  KernelResources Res;
  Res.RegsPerThread = K.RegsPerThread;
  Res.SharedBytesPerBlock = K.SharedBytes;
  Res.ThreadsPerBlock = Dims.threadsPerBlock();
  Occupancy Occ = computeOccupancy(M, Res);
  if (Config.MaxResidentBlocksOverride > 0 && Occ.launchable() &&
      Occ.ActiveBlocks > Config.MaxResidentBlocksOverride) {
    Occ.ActiveBlocks = Config.MaxResidentBlocksOverride;
    Occ.ActiveThreads = Occ.ActiveBlocks * Res.ThreadsPerBlock;
    Occ.ActiveWarps = Occ.ActiveThreads / M.WarpSize;
  }
  if (!Occ.launchable())
    return ER::error(formatString(
        "kernel '%s' is not launchable: %s (regs=%d shared=%d threads=%d)",
        K.Name.c_str(), occupancyLimitName(Occ.Limit), Res.RegsPerThread,
        Res.SharedBytesPerBlock, Res.ThreadsPerBlock));

  Executor Exec(M, Global, Config.Params, Dims);

  const int WaveWarps = Occ.ActiveBlocks * Dims.warpsPerBlock();
  const uint64_t Watchdog =
      Config.WatchdogCycles > 0
          ? Config.WatchdogCycles
          : deriveWatchdogBudget(K.Code.size(), WaveWarps);

  LaunchResult Result;
  Result.Occ = Occ;

  const int NumBlocks = Dims.numBlocks();
  const int BlocksPerWaveChip = Occ.ActiveBlocks * M.NumSMs;
  Result.WavesTotal = static_cast<int>(
      divideCeil(static_cast<uint64_t>(NumBlocks),
                 static_cast<uint64_t>(BlocksPerWaveChip)));

  const size_t TraceRing =
      Config.Trace ? std::max<size_t>(1, Config.Trace->RingCapacity) : 0;
  const bool ProfileOn = Config.Profile != nullptr;
  // A profile carried over from a different kernel cannot accumulate
  // meaningfully; align its shape up front (same-kernel profiles keep
  // accumulating across launches, mirroring simulateWave's contract).
  if (ProfileOn && Config.Profile->codeSize() != K.Code.size())
    Config.Profile->reset(K.Code.size());

  // Resolve the probe sink: an explicit LaunchConfig sink wins; otherwise
  // a process-installed engine (BenchRun --probe) is served through a
  // launch-local clone flushed back on every return path -- traps and
  // early errors included -- so the process totals never miss a partial.
  ProbeEngine LaunchLocalProbes;
  struct ProbeFlusher {
    ProbeEngine *Partial = nullptr;
    ~ProbeFlusher() {
      if (Partial)
        mergeIntoProcessProbeEngine(*Partial);
    }
  } Flusher;
  ProbeEngine *ProbeSink = Config.Probes;
  if (!ProbeSink) {
    if (ProbeEngine *Proc = processProbeEngine()) {
      LaunchLocalProbes = Proc->emptyClone();
      ProbeSink = &LaunchLocalProbes;
      Flusher.Partial = &LaunchLocalProbes;
    }
  }
  const ProbeEngine *ProbeProto =
      ProbeSink && ProbeSink->enabled() ? ProbeSink : nullptr;

  if (Config.Mode == SimMode::ProjectOneWave) {
    // Simulate the first wave of SM 0 and extrapolate. SM 0 gets blocks
    // 0..N-1 of the wave; for SGEMM-style kernels with data-independent
    // control flow, the choice of blocks is timing-equivalent.
    std::vector<int> BlockIds;
    for (int B = 0; B < std::min(Occ.ActiveBlocks, NumBlocks); ++B)
      BlockIds.push_back(B);
    SMOutcome Out;
    runSMWaves(M, K, Exec, Dims, BlockIds, Occ.ActiveBlocks, Watchdog,
               TraceRing, ProfileOn, ProbeProto, Out);
    mergeTrace(Config.Trace, 0, Out);
    mergeProfile(Config.Profile, Out);
    mergeProbes(ProbeSink, Out);
    if (Out.Failed) {
      if (TrapOut && Out.Trap.valid())
        *TrapOut = Out.Trap;
      return ER::error(Out.Error);
    }
    Result.Stats = Out.Stats;
    Result.WavesSimulated = 1;
    // The last wave may be partial; count it proportionally.
    double FullWaves =
        static_cast<double>(NumBlocks) / BlocksPerWaveChip;
    Result.TotalCycles =
        static_cast<double>(Out.Stats.Cycles) * std::max(1.0, FullWaves);
    return Result;
  }

  // Full simulation: blocks are distributed round-robin over SMs; each SM
  // runs its share in waves of Occ.ActiveBlocks. Chip time is the slowest
  // SM.
  std::vector<std::vector<int>> PerSMBlocks;
  for (int SM = 0; SM < M.NumSMs; ++SM) {
    std::vector<int> Mine;
    for (int B = SM; B < NumBlocks; B += M.NumSMs)
      Mine.push_back(B);
    if (!Mine.empty())
      PerSMBlocks.push_back(std::move(Mine));
  }

  const int Jobs = resolveJobs(Config.Jobs);
  SimStats Chip;
  uint64_t SlowestSM = 0;

  if (Jobs <= 1 || PerSMBlocks.size() <= 1) {
    // Serial path: SMs share the executor and write global memory
    // directly, one SM after the other.
    for (size_t Idx = 0; Idx < PerSMBlocks.size(); ++Idx) {
      SMOutcome Out;
      runSMWaves(M, K, Exec, Dims, PerSMBlocks[Idx], Occ.ActiveBlocks,
                 Watchdog, TraceRing, ProfileOn, ProbeProto, Out);
      // Merge the trace (and profile, and probes) before checking for
      // failure: the serial path keeps whatever the trapping SM recorded
      // up to the fault.
      mergeTrace(Config.Trace, static_cast<int>(Idx), Out);
      mergeProfile(Config.Profile, Out);
      mergeProbes(ProbeSink, Out);
      if (Out.Failed) {
        if (TrapOut && Out.Trap.valid())
          *TrapOut = Out.Trap;
        return ER::error(Out.Error);
      }
      Result.WavesSimulated += Out.Waves;
      SlowestSM = std::max(SlowestSM, Out.Stats.Cycles);
      Chip.addConcurrent(Out.Stats);
    }
  } else {
    // Parallel path: each SM simulates against a private write overlay,
    // then the outcomes are merged in SM index order -- the order the
    // serial loop would have produced its side effects in, so the merged
    // memory image, statistics and any reported trap are bit-identical.
    std::vector<SMOutcome> Outcomes(PerSMBlocks.size());
    parallelFor(Jobs, PerSMBlocks.size(), [&](size_t Idx) {
      SMOutcome &Out = Outcomes[Idx];
      Executor SMExec(M, GlobalMemoryView(Global, Out.Overlay),
                      Config.Params, Dims);
      runSMWaves(M, K, SMExec, Dims, PerSMBlocks[Idx], Occ.ActiveBlocks,
                 Watchdog, TraceRing, ProfileOn, ProbeProto, Out);
    });
    for (size_t Idx = 0; Idx < Outcomes.size(); ++Idx) {
      SMOutcome &Out = Outcomes[Idx];
      // Apply before checking for failure: when the serial path stops at
      // SM k's trap, the writes of SMs 0..k-1 and SM k's partial wave
      // are already in global memory; later SMs never ran, so their
      // overlays are discarded by returning here. The trace and profile
      // follow the same rule, so they too are bit-identical to the
      // serial path.
      Out.Overlay.applyTo(Global);
      mergeTrace(Config.Trace, static_cast<int>(Idx), Out);
      mergeProfile(Config.Profile, Out);
      mergeProbes(ProbeSink, Out);
      if (Out.Failed) {
        if (TrapOut && Out.Trap.valid())
          *TrapOut = Out.Trap;
        return ER::error(Out.Error);
      }
      Result.WavesSimulated += Out.Waves;
      SlowestSM = std::max(SlowestSM, Out.Stats.Cycles);
      Chip.addConcurrent(Out.Stats);
    }
  }

  Chip.Cycles = SlowestSM;
  Result.Stats = Chip;
  Result.TotalCycles = static_cast<double>(SlowestSM);
  return Result;
}
