//===- sim/Stats.h - simulation statistics ----------------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_STATS_H
#define GPUPERF_SIM_STATS_H

#include "isa/Opcode.h"

#include <array>
#include <cstdint>

namespace gpuperf {

/// Where one scheduler issue slot went. Every simulated cycle each warp
/// scheduler owns exactly one slot: it either issues a warp instruction
/// (Issued; a Kepler dual-issue pair still consumes one slot) or the slot
/// is lost to exactly one cause. The taxonomy follows the paper's
/// issue-slot arguments: the SM bound is an issue-bandwidth claim, so
/// showing *where the slots went* is what turns the bound into an
/// explanation.
enum class SlotUse : uint8_t {
  Issued = 0,      ///< A warp instruction (or dual-issue pair) issued.
  Scoreboard,      ///< RAW/latency wait (scoreboard, notation stalls,
                   ///< replay-penalty stalls, global-load waits).
  RegBankConflict, ///< Issue pipe busy, attributable to register-bank
                   ///< conflict surcharge of previously-issued math ops.
  DispatchLimit,   ///< Dispatch port / raw issue-width / math pipe busy.
  LdsThroughput,   ///< LD/ST pipe busy (shared-memory throughput limit).
  Barrier,         ///< Every live candidate warp was waiting at BAR.SYNC.
  NoEligibleWarp,  ///< No live warp assigned to this scheduler.
};
inline constexpr size_t NumSlotUses = 7;

/// Short stable name used in tables, JSON records and trace events.
inline const char *slotUseName(SlotUse U) {
  switch (U) {
  case SlotUse::Issued:
    return "issued";
  case SlotUse::Scoreboard:
    return "scoreboard";
  case SlotUse::RegBankConflict:
    return "bank_conflict";
  case SlotUse::DispatchLimit:
    return "dispatch_limit";
  case SlotUse::LdsThroughput:
    return "lds_throughput";
  case SlotUse::Barrier:
    return "barrier";
  case SlotUse::NoEligibleWarp:
    return "no_eligible_warp";
  }
  return "?";
}

/// Per-cause issue-slot accounting. The invariant (pinned by tests):
///   total() == AggregateCycles * WarpSchedulersPerSM
/// for every wave, and -- because both merge modes sum the breakdown and
/// AggregateCycles -- for every merged SimStats as well.
struct StallBreakdown {
  std::array<uint64_t, NumSlotUses> Slots = {};

  uint64_t &operator[](SlotUse U) {
    return Slots[static_cast<size_t>(U)];
  }
  uint64_t slots(SlotUse U) const {
    return Slots[static_cast<size_t>(U)];
  }
  uint64_t total() const {
    uint64_t T = 0;
    for (uint64_t S : Slots)
      T += S;
    return T;
  }
  /// Slots lost to any cause (total minus Issued).
  uint64_t lost() const { return total() - slots(SlotUse::Issued); }

  void add(const StallBreakdown &O) {
    for (size_t I = 0; I < Slots.size(); ++I)
      Slots[I] += O.Slots[I];
  }

  bool operator==(const StallBreakdown &O) const {
    return Slots == O.Slots;
  }
};

/// Counters accumulated while simulating one SM (or merged across SMs).
struct SimStats {
  uint64_t Cycles = 0;
  /// Sum of per-SM-wave cycle counts. For a single wave this equals
  /// Cycles; after merging it is the total simulated SM-cycles, whatever
  /// the merge mode -- addConcurrent max-merges Cycles (chip makespan)
  /// but sums AggregateCycles, so per-SM-cycle rates (threadInstsPerCycle,
  /// idleFraction, the issue-slot invariant) stay well-defined.
  uint64_t AggregateCycles = 0;
  uint64_t WarpInstsIssued = 0;
  uint64_t ThreadInstsIssued = 0;
  std::array<uint64_t, static_cast<size_t>(Opcode::NumOpcodes)>
      ThreadInstsByOpcode = {};
  uint64_t GlobalBytes = 0;
  uint64_t GlobalTransactions = 0;
  uint64_t ReplayPenalties = 0;
  uint64_t SharedConflictEvents = 0; ///< Shared accesses serialized > 1x.
  uint64_t BarrierWaits = 0;
  uint64_t IdleCycles = 0;   ///< Cycles in which no scheduler issued.
  uint64_t DualIssues = 0;   ///< Second-slot issues (Kepler pairs).
  /// Per-cause issue-slot accounting (see SlotUse).
  StallBreakdown Breakdown;

  uint64_t threadInsts(Opcode Op) const {
    return ThreadInstsByOpcode[static_cast<size_t>(Op)];
  }

  /// FFMA thread instructions (the "useful work" metric of the paper).
  uint64_t ffmaThreadInsts() const { return threadInsts(Opcode::FFMA); }

  /// Denominator for per-SM-cycle rates: the aggregate when present
  /// (always, for simulator-produced stats), else Cycles so hand-built
  /// single-wave stats keep working.
  uint64_t perSMCycles() const {
    return AggregateCycles ? AggregateCycles : Cycles;
  }

  /// Thread instructions per SM-cycle (the y-axis of Figures 2 and 4).
  /// Uses AggregateCycles so the rate is the average per-SM IPC under
  /// both merge modes; identical to the per-wave value for one wave.
  double threadInstsPerCycle() const {
    uint64_t C = perSMCycles();
    return C ? static_cast<double>(ThreadInstsIssued) / C : 0.0;
  }

  /// Fraction of simulated SM-cycles in which no scheduler issued.
  double idleFraction() const {
    uint64_t C = perSMCycles();
    return C ? static_cast<double>(IdleCycles) / C : 0.0;
  }

  /// Accumulates counters from a sequentially-simulated wave: cycles add.
  void addSequential(const SimStats &O) {
    Cycles += O.Cycles;
    mergeCounters(O);
  }

  /// Accumulates counters from a concurrently-running SM: cycles max
  /// (makespan); everything else, including AggregateCycles, sums.
  void addConcurrent(const SimStats &O) {
    Cycles = Cycles > O.Cycles ? Cycles : O.Cycles;
    mergeCounters(O);
  }

private:
  void mergeCounters(const SimStats &O) {
    AggregateCycles += O.perSMCycles();
    WarpInstsIssued += O.WarpInstsIssued;
    ThreadInstsIssued += O.ThreadInstsIssued;
    for (size_t I = 0; I < ThreadInstsByOpcode.size(); ++I)
      ThreadInstsByOpcode[I] += O.ThreadInstsByOpcode[I];
    GlobalBytes += O.GlobalBytes;
    GlobalTransactions += O.GlobalTransactions;
    ReplayPenalties += O.ReplayPenalties;
    SharedConflictEvents += O.SharedConflictEvents;
    BarrierWaits += O.BarrierWaits;
    IdleCycles += O.IdleCycles;
    DualIssues += O.DualIssues;
    Breakdown.add(O.Breakdown);
  }
};

} // namespace gpuperf

#endif // GPUPERF_SIM_STATS_H
