//===- sim/Stats.h - simulation statistics ----------------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_STATS_H
#define GPUPERF_SIM_STATS_H

#include "isa/Opcode.h"

#include <array>
#include <cstdint>

namespace gpuperf {

/// Counters accumulated while simulating one SM (or merged across SMs).
struct SimStats {
  uint64_t Cycles = 0;
  uint64_t WarpInstsIssued = 0;
  uint64_t ThreadInstsIssued = 0;
  std::array<uint64_t, static_cast<size_t>(Opcode::NumOpcodes)>
      ThreadInstsByOpcode = {};
  uint64_t GlobalBytes = 0;
  uint64_t GlobalTransactions = 0;
  uint64_t ReplayPenalties = 0;
  uint64_t SharedConflictEvents = 0; ///< Shared accesses serialized > 1x.
  uint64_t BarrierWaits = 0;
  uint64_t IdleCycles = 0;   ///< Cycles in which no scheduler issued.
  uint64_t DualIssues = 0;   ///< Second-slot issues (Kepler pairs).

  uint64_t threadInsts(Opcode Op) const {
    return ThreadInstsByOpcode[static_cast<size_t>(Op)];
  }

  /// FFMA thread instructions (the "useful work" metric of the paper).
  uint64_t ffmaThreadInsts() const { return threadInsts(Opcode::FFMA); }

  /// Thread instructions per cycle (the y-axis of Figures 2 and 4).
  double threadInstsPerCycle() const {
    return Cycles ? static_cast<double>(ThreadInstsIssued) / Cycles : 0.0;
  }

  /// Accumulates counters from a sequentially-simulated wave: cycles add.
  void addSequential(const SimStats &O) {
    Cycles += O.Cycles;
    mergeCounters(O);
  }

  /// Accumulates counters from a concurrently-running SM: cycles max.
  void addConcurrent(const SimStats &O) {
    Cycles = Cycles > O.Cycles ? Cycles : O.Cycles;
    mergeCounters(O);
  }

private:
  void mergeCounters(const SimStats &O) {
    WarpInstsIssued += O.WarpInstsIssued;
    ThreadInstsIssued += O.ThreadInstsIssued;
    for (size_t I = 0; I < ThreadInstsByOpcode.size(); ++I)
      ThreadInstsByOpcode[I] += O.ThreadInstsByOpcode[I];
    GlobalBytes += O.GlobalBytes;
    GlobalTransactions += O.GlobalTransactions;
    ReplayPenalties += O.ReplayPenalties;
    SharedConflictEvents += O.SharedConflictEvents;
    BarrierWaits += O.BarrierWaits;
    IdleCycles += O.IdleCycles;
    DualIssues += O.DualIssues;
  }
};

} // namespace gpuperf

#endif // GPUPERF_SIM_STATS_H
