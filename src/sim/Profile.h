//===- sim/Profile.h - per-static-instruction counters ----------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-PC half of the observability layer. Where sim/Stats.h answers
/// "how many issue slots went to each cause", a KernelProfile answers
/// "at which static instruction" -- the source-counter view that perf
/// annotate gives on CPUs, and that the paper's whole argument is phrased
/// in (the FFMA/LDS.X mix, bank-conflict surcharges, and dual-issue
/// pairing are all properties of individual instructions).
///
/// Attribution rules (mirroring the SlotUse taxonomy of PR 3):
///  * an issued warp instruction counts one Issue at its PC (a dual-issue
///    second counts an Issue *and* a DualIssue; the pair still consumed
///    one scheduler slot, owned by the first instruction);
///  * a lost scheduler slot is charged to the PC of the *oldest*
///    non-eligible instruction among the scheduler's warps with the
///    winning (highest-priority) block reason -- the warp waiting longest
///    since its last issue, the likely head of the dependence chain;
///  * fast-forwarded idle spans reuse each scheduler's remembered reason
///    *and* PC from the cycle that proved no progress was possible;
///  * slots with no attributable PC (scheduler owns no live warp) land in
///    the NoPC bucket so the accounting identity stays exact:
///      profile.breakdown() == SimStats.Breakdown,  cause by cause.
///
/// Profiles are collected per SM and merged in SM index order, so -- like
/// the stats, traces and memory image -- the result is bit-identical for
/// every LaunchConfig::Jobs value. When no profile is requested the
/// simulator's only cost is an untaken null-pointer branch per event.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SIM_PROFILE_H
#define GPUPERF_SIM_PROFILE_H

#include "sim/Stats.h"

#include <array>
#include <cstdint>
#include <vector>

namespace gpuperf {

/// Counters of one static instruction (or of the NoPC bucket).
struct PCCounters {
  /// Warp instructions issued at this PC, dual-issue seconds included.
  uint64_t Issues = 0;
  /// Of Issues, how many rode the second slot of a Kepler pair.
  uint64_t DualIssues = 0;
  /// Replay penalties charged while this PC's operands were mis-hinted.
  uint64_t Replays = 0;
  /// Lost scheduler slots attributed to this PC, by cause. The Issued
  /// entry is unused (issued slots are counted by Issues/DualIssues).
  std::array<uint64_t, NumSlotUses> StallSlots = {};

  /// Scheduler slots this PC consumed by issuing (pairs share one slot).
  uint64_t issuedSlots() const { return Issues - DualIssues; }

  /// Lost slots attributed here, summed over causes.
  uint64_t lostSlots() const {
    uint64_t T = 0;
    for (uint64_t S : StallSlots)
      T += S;
    return T;
  }

  void add(const PCCounters &O) {
    Issues += O.Issues;
    DualIssues += O.DualIssues;
    Replays += O.Replays;
    for (size_t I = 0; I < StallSlots.size(); ++I)
      StallSlots[I] += O.StallSlots[I];
  }

  bool operator==(const PCCounters &O) const {
    return Issues == O.Issues && DualIssues == O.DualIssues &&
           Replays == O.Replays && StallSlots == O.StallSlots;
  }
};

/// Per-static-instruction profile of one kernel, one SM, or a whole
/// launch (the distinction is only what has been merged in).
class KernelProfile {
public:
  KernelProfile() = default;
  explicit KernelProfile(size_t CodeSize) : PCs(CodeSize) {}

  size_t codeSize() const { return PCs.size(); }
  bool empty() const { return PCs.empty(); }

  /// Drops all counters and resizes to \p CodeSize instructions.
  void reset(size_t CodeSize) {
    PCs.assign(CodeSize, PCCounters());
    NoPC = PCCounters();
  }

  PCCounters &at(size_t PC) { return PCs[PC]; }
  const PCCounters &at(size_t PC) const { return PCs[PC]; }

  /// Slots (and replays) with no attributable static instruction.
  PCCounters &noPC() { return NoPC; }
  const PCCounters &noPC() const { return NoPC; }

  //===--------------------------------------------------------------------===//
  // Simulator-side accounting hooks
  //===--------------------------------------------------------------------===//

  /// One warp instruction issued at \p PC.
  void countIssue(int PC) { PCs[static_cast<size_t>(PC)].Issues += 1; }

  /// The instruction at \p PC issued as the second of a dual-issue pair
  /// (call *in addition to* countIssue).
  void countDualIssue(int PC) {
    PCs[static_cast<size_t>(PC)].DualIssues += 1;
  }

  /// One replay penalty charged while the warp sat at \p PC.
  void countReplay(int PC) { PCs[static_cast<size_t>(PC)].Replays += 1; }

  /// \p N scheduler slots lost to \p Use, attributed to \p PC (or to the
  /// NoPC bucket when \p PC is negative).
  void countStall(int PC, SlotUse Use, uint64_t N) {
    PCCounters &C = PC >= 0 ? PCs[static_cast<size_t>(PC)] : NoPC;
    C.StallSlots[static_cast<size_t>(Use)] += N;
  }

  //===--------------------------------------------------------------------===//
  // Aggregation and identities
  //===--------------------------------------------------------------------===//

  /// Element-wise accumulation (SM merge / wave merge). An empty profile
  /// adopts \p O's shape; otherwise the code sizes must match.
  void add(const KernelProfile &O);

  /// Total warp instructions issued (== SimStats::WarpInstsIssued).
  uint64_t totalIssues() const;
  /// Total dual-issue seconds (== SimStats::DualIssues).
  uint64_t totalDualIssues() const;
  /// Total replay penalties (== SimStats::ReplayPenalties).
  uint64_t totalReplays() const;

  /// Reconstructs the per-cause issue-slot breakdown from the per-PC
  /// counters: Issued slots are issuedSlots() summed over PCs, every
  /// other cause is StallSlots summed over PCs plus the NoPC bucket.
  /// For a successful launch this equals SimStats::Breakdown exactly
  /// (the identity profile_test pins).
  StallBreakdown breakdown() const;

  bool operator==(const KernelProfile &O) const {
    return PCs == O.PCs && NoPC == O.NoPC;
  }

private:
  std::vector<PCCounters> PCs;
  PCCounters NoPC;
};

} // namespace gpuperf

#endif // GPUPERF_SIM_PROFILE_H
