//===- model/UpperBound.cpp - SGEMM performance upper-bound model ---------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "model/UpperBound.h"

#include "sim/Timing.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace gpuperf;

double UpperBoundModel::instructionFactor(MemWidth W) {
  // LDS.X instructions per k-step are 2*BR*FI: a 32-bit LDS moves one
  // element, so FI is the reciprocal of elements per instruction.
  switch (W) {
  case MemWidth::B32:
    return 1.0;
  case MemWidth::B64:
    return 0.5;
  case MemWidth::B128:
    return 0.25;
  }
  return 1.0;
}

double UpperBoundModel::ffmaFraction(int BR, MemWidth W) {
  assert(BR >= 1 && "blocking factor must be positive");
  double FI = instructionFactor(W);
  return BR * BR / (BR * BR + 2.0 * BR * FI);
}

int UpperBoundModel::maxBlockingFactorLoose(int MaxRegsPerThread) {
  int BR = 1;
  while ((BR + 1) * (BR + 1) + (BR + 1) + 1 < MaxRegsPerThread)
    ++BR;
  return BR;
}

bool UpperBoundModel::strideValid(int TB, int BR, int L) {
  // Equation (3): (sqrt(TB) * BR * L) % TB == 0.
  uint64_t RootTB = intSqrt(static_cast<uint64_t>(TB));
  if (RootTB * RootTB != static_cast<uint64_t>(TB))
    return false;
  return (RootTB * BR * L) % TB == 0;
}

RegisterBudget UpperBoundModel::registerBudget(const SgemmModelParams &P) {
  RegisterBudget B;
  B.CTile = P.BR * P.BR;
  uint64_t RootTB = intSqrt(static_cast<uint64_t>(P.TB));
  // 2 * sqrt(TB) * BR * L / TB (Equation 4's prefetch term).
  B.Prefetch = static_cast<int>(2 * RootTB * P.BR * P.L /
                                static_cast<uint64_t>(P.TB));
  B.ALoad = P.BR;
  B.BLoad = memWidthRegs(P.LdsWidth);
  // Section 5.2 items 4-7: A/B global pointers (2), loop bound (1),
  // A/B shared store pointers (2), A/B shared read pointers (2).
  B.Addressing = 7;
  return B;
}

int UpperBoundModel::maxBlockingFactorStrict(
    const SgemmModelParams &Base) const {
  int Best = 0;
  for (int BR = 1; BR <= 14; ++BR) {
    SgemmModelParams P = Base;
    P.BR = BR;
    if (registerBudget(P).total() <= DB.machine().MaxRegsPerThread)
      Best = BR;
  }
  return Best;
}

UpperBoundReport UpperBoundModel::analyze(const SgemmModelParams &P) {
  const MachineDesc &M = DB.machine();
  UpperBoundReport R;
  R.Params = P;
  R.Budget = registerBudget(P);
  R.Feasible = R.Budget.total() <= M.MaxRegsPerThread &&
               strideValid(P.TB, P.BR, P.L);
  R.BSh = static_cast<int>(intSqrt(static_cast<uint64_t>(P.TB))) * P.BR;
  // Equation (5): both panels (A and B) of one k-slice, 4 bytes/element.
  R.SharedBytesPerBlock = 2 * R.BSh * P.L * 4;

  KernelResources Res;
  Res.RegsPerThread = std::min(R.Budget.total(), M.MaxRegsPerThread);
  Res.SharedBytesPerBlock = R.SharedBytesPerBlock;
  Res.ThreadsPerBlock = P.TB;
  R.Occ = computeOccupancy(M, Res);
  if (!R.Occ.launchable()) {
    R.Feasible = false;
    return R;
  }

  R.FI = instructionFactor(P.LdsWidth);
  R.FfmaFraction = ffmaFraction(P.BR, P.LdsWidth);

  // FT: measured mixed throughput (Figures 2/4) at the occupancy the
  // kernel actually reaches, in the SGEMM-like dependent pattern.
  int Ratio = static_cast<int>(P.BR / (2 * R.FI) + 0.5);
  // A BR-blocked main loop exposes BR^2 independent accumulators, so its
  // dependence chains are at least that far apart; the chain count
  // controls how much occupancy the latency hiding needs (Section 4.3).
  // An upper bound must not underestimate the kernel's ILP -- the
  // model-validation bench checks that no implementation exceeds it.
  int Chains = std::clamp(P.BR * P.BR, 2, 14);
  R.MixedThroughput =
      DB.mixThroughput(Ratio, P.LdsWidth, /*Dependent=*/true,
                       R.Occ.ActiveThreads, Chains, /*Pipelined=*/true);
  R.FT = R.MixedThroughput / M.spProcessingThroughput();

  double Peak = M.theoreticalPeakGflops();
  R.PSMBoundGflops = R.FfmaFraction * R.FT * Peak;
  // Equation (6): flops per global byte = 2*BSh^2 / (2*BSh*4) = BSh/4.
  R.PMemBoundGflops = M.GlobalMemBandwidthGBs * R.BSh / 4.0;
  R.PotentialGflops = std::min(R.PSMBoundGflops, R.PMemBoundGflops);
  R.FractionOfPeak = R.PotentialGflops / Peak;
  return R;
}

UpperBoundReport UpperBoundModel::bestForWidth(MemWidth W) {
  SgemmModelParams Base;
  Base.LdsWidth = W;
  UpperBoundReport Best;
  Best.Feasible = false;
  for (int BR = 1; BR <= 14; ++BR) {
    SgemmModelParams P = Base;
    P.BR = BR;
    // Choose a valid stride (Equation 3); L in {8, 16, 24, 32}.
    bool FoundL = false;
    for (int L : {16, 8, 24, 32}) {
      P.L = L;
      if (strideValid(P.TB, P.BR, P.L)) {
        FoundL = true;
        break;
      }
    }
    if (!FoundL)
      continue;
    UpperBoundReport R = analyze(P);
    if (!R.Feasible)
      continue;
    if (!Best.Feasible || R.PotentialGflops > Best.PotentialGflops)
      Best = R;
  }
  return Best;
}

RegionIssueBound gpuperf::regionIssueBound(const MachineDesc &M,
                                           const Kernel &K, int Begin,
                                           int End) {
  RegionIssueBound B;
  Begin = std::max(Begin, 0);
  End = std::min(End, static_cast<int>(K.Code.size()) - 1);
  if (Begin > End || K.Code.empty())
    return B;

  // Per-iteration structural costs of the region's instructions, per warp,
  // at conflict-free register banking (the best any reordering of exactly
  // these instructions can do).
  double N = static_cast<double>(End - Begin + 1);
  double IssuePipe = 0, MathPipe = 0, Port = 0, Ldst = 0;
  int Ffmas = 0;
  for (int PC = Begin; PC <= End; ++PC) {
    const Instruction &I = K.Code[PC];
    IssuePipe += issuePipeCyclesConflictFree(M, I);
    MathPipe += mathPipeCycles(M, I);
    Port += dispatchPortCycles(M, I);
    Ldst += ldstPipeCycles(M, I);
    if (I.Op == Opcode::FFMA)
      ++Ffmas;
  }

  // Scheduler slots: S slots per cycle, each carrying up to PairRate
  // instructions (Kepler dual issue; 1 elsewhere).
  double S = std::max(1, M.WarpSchedulersPerSM);
  double PairRate =
      M.WarpSchedulersPerSM > 0
          ? std::max(1.0, static_cast<double>(M.DispatchUnitsPerSM) /
                              M.WarpSchedulersPerSM)
          : 1.0;
  double SlotLimit = S * PairRate;

  B.WarpInstsPerCycle = SlotLimit;
  B.BindingResource = "dispatch_limit";
  // Each candidate expresses "warp instructions per cycle, SM-wide"; the
  // minimum binds. Dispatch ports are per scheduler, so their aggregate
  // capacity is S ports-cycles per cycle.
  struct Candidate {
    double Rate;
    const char *Name;
  } Cands[] = {
      {IssuePipe > 0 ? N / IssuePipe : SlotLimit, "issue_pipe"},
      {MathPipe > 0 ? N / MathPipe : SlotLimit, "math_pipe"},
      {Port > 0 ? S * N / Port : SlotLimit, "dispatch_limit"},
      {Ldst > 0 ? N / Ldst : SlotLimit, "lds_throughput"},
  };
  for (const Candidate &C : Cands)
    if (C.Rate < B.WarpInstsPerCycle) {
      B.WarpInstsPerCycle = C.Rate;
      B.BindingResource = C.Name;
    }

  B.FfmaFraction = Ffmas / N;
  B.FfmaThreadInstsPerCycle = B.WarpInstsPerCycle * B.FfmaFraction * WarpSize;
  B.IssueSlotFraction = B.WarpInstsPerCycle / SlotLimit;
  return B;
}
