//===- model/UpperBound.h - SGEMM performance upper-bound model -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analytical performance-upper-bound model (Section 4):
/// starting from the architecture constraints (register file, 63-register
/// encoding limit, shared memory) and *measured* instruction throughputs
/// (the ubench PerfDatabase), it derives the highest SGEMM performance any
/// implementation can reach on the machine -- Equations (1) through (9).
///
/// Key quantities:
///  * FI, the instruction factor: LDS.X instructions per FFMA pair, set by
///    the LDS width (1 for LDS, 0.5 for LDS.64, 0.25 for LDS.128).
///  * FFMA fraction of the main loop, BR^2 / (BR^2 + 2*BR*FI) (Figure 3).
///  * FT, the throughput factor: measured mixed FFMA/LDS.X throughput at
///    the achievable occupancy over the SP processing throughput.
///  * PSMBound = ffmaFraction * FT * Ptheoretical      (Equation 8)
///  * PMemBound = bandwidth * BSh / 4                  (Equation 6)
///  * Ppotential = min(PSMBound, PMemBound)            (Equation 9)
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_MODEL_UPPERBOUND_H
#define GPUPERF_MODEL_UPPERBOUND_H

#include "arch/Occupancy.h"
#include "isa/Module.h"
#include "ubench/PerfDatabase.h"

namespace gpuperf {

/// Algorithm parameters of a blocked SGEMM implementation.
struct SgemmModelParams {
  int BR = 6;                       ///< Register blocking factor.
  int TB = 256;                     ///< Threads per block.
  int L = 16;                       ///< k-panel depth (the stride).
  MemWidth LdsWidth = MemWidth::B64;
};

/// The Section 5.2 register-budget breakdown (Equation 4's left side).
struct RegisterBudget {
  int CTile = 0;       ///< BR^2 accumulators.
  int Prefetch = 0;    ///< 2*sqrt(TB)*BR*L / TB global-prefetch registers.
  int ALoad = 0;       ///< BR registers for the A column.
  int BLoad = 0;       ///< Width-dependent registers for the B row.
  int Addressing = 0;  ///< Global/shared pointers + loop bound.
  int total() const { return CTile + Prefetch + ALoad + BLoad + Addressing; }
};

/// Everything the analysis produces for one parameter point.
struct UpperBoundReport {
  SgemmModelParams Params;
  bool Feasible = true;       ///< Register budget within the ISA limit.
  RegisterBudget Budget;
  int BSh = 0;                ///< Shared blocking factor sqrt(TB)*BR.
  int SharedBytesPerBlock = 0;
  Occupancy Occ;              ///< Equation (1)/(5) residency.
  double FI = 0;
  double FfmaFraction = 0;
  double MixedThroughput = 0; ///< Measured thread insts/cycle (FT source).
  double FT = 0;
  double PSMBoundGflops = 0;
  double PMemBoundGflops = 0;
  double PotentialGflops = 0; ///< Equation (9).
  double FractionOfPeak = 0;  ///< Potential / theoretical peak.
};

/// Issue bound of one static code region (typically a profiler-detected
/// loop body): the best sustained rate any schedule of exactly these
/// instructions can reach on \p M, from the machine's structural issue
/// resources alone -- scheduler slots (with Kepler dual-issue pairing),
/// the SM-wide issue pipe at conflict-free register banking, the
/// pre-Kepler math pipe and dispatch ports, and the LD/ST pipe. The
/// per-region analogue of Equation 8's whole-kernel story: the achieved
/// profile is compared against this to say how much of a loop's gap is
/// schedule/conflict inefficiency rather than missing issue bandwidth.
struct RegionIssueBound {
  /// Warp instructions per cycle the SM can sustain over the region.
  double WarpInstsPerCycle = 0;
  /// Which structural resource binds (a SlotUse-style name for reports:
  /// "dispatch_limit", "issue_pipe", "math_pipe", "lds_throughput").
  const char *BindingResource = "dispatch_limit";
  /// Static FFMA share of the region's instructions.
  double FfmaFraction = 0;
  /// FFMA thread instructions per cycle at the bound (the paper's
  /// Figure-2 y-axis, per SM).
  double FfmaThreadInstsPerCycle = 0;
  /// Fraction of the SM's scheduler issue slots the bound consumes
  /// (1.0 = every slot busy issuing; < 1 means even a perfect schedule
  /// leaves slots idle because another pipe saturates first).
  double IssueSlotFraction = 0;
};

/// Computes the issue bound of \p K's instructions in [Begin, End]
/// (inclusive PCs, clamped to the code). Pure arithmetic over the
/// sim/Timing.h cost model; no simulation or PerfDatabase involved.
RegionIssueBound regionIssueBound(const MachineDesc &M, const Kernel &K,
                                  int Begin, int End);

/// The analysis engine for one machine; throughputs come from a
/// (lazily-measured) PerfDatabase.
class UpperBoundModel {
public:
  explicit UpperBoundModel(PerfDatabase &DB) : DB(DB) {}

  /// Instruction factor FI for an LDS width (Section 4.5).
  static double instructionFactor(MemWidth W);

  /// FFMA fraction of the main loop for a blocking factor (Figure 3).
  static double ffmaFraction(int BR, MemWidth W);

  /// Loose maximum blocking factor from Equation (2):
  /// BR^2 + BR + 1 < RT <= RMax.
  static int maxBlockingFactorLoose(int MaxRegsPerThread);

  /// Equation (3): the stride L must let every thread load the same
  /// amount of panel data.
  static bool strideValid(int TB, int BR, int L);

  /// Section 5.2 register budget (the strict Equation 4).
  static RegisterBudget registerBudget(const SgemmModelParams &P);

  /// Largest BR whose strict budget fits the machine's register limit.
  int maxBlockingFactorStrict(const SgemmModelParams &Base) const;

  /// Runs the full analysis at one parameter point.
  UpperBoundReport analyze(const SgemmModelParams &P);

  /// Convenience: the best report over feasible BR values for a width.
  UpperBoundReport bestForWidth(MemWidth W);

  const MachineDesc &machine() const { return DB.machine(); }

private:
  PerfDatabase &DB;
};

} // namespace gpuperf

#endif // GPUPERF_MODEL_UPPERBOUND_H
