//===- sgemm/Reference.cpp - host reference SGEMM --------------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sgemm/Reference.h"

#include <cmath>

using namespace gpuperf;

void gpuperf::referenceSgemm(GemmVariant Variant, int M, int N, int K,
                             float Alpha, const float *A, int Lda,
                             const float *B, int Ldb, float Beta, float *C,
                             int Ldc) {
  const bool TA = transA(Variant);
  const bool TB = transB(Variant);
  auto OpA = [&](int I, int KIdx) {
    return TA ? A[static_cast<size_t>(I) * Lda + KIdx]
              : A[static_cast<size_t>(KIdx) * Lda + I];
  };
  auto OpB = [&](int KIdx, int J) {
    return TB ? B[static_cast<size_t>(KIdx) * Ldb + J]
              : B[static_cast<size_t>(J) * Ldb + KIdx];
  };
  for (int J = 0; J < N; ++J)
    for (int I = 0; I < M; ++I) {
      float Acc = 0.0f;
      for (int KIdx = 0; KIdx < K; ++KIdx)
        Acc = std::fma(OpA(I, KIdx), OpB(KIdx, J), Acc);
      float &Out = C[static_cast<size_t>(J) * Ldc + I];
      Out = std::fma(Acc, Alpha, Beta * Out);
    }
}
