//===- sgemm/SgemmRunner.cpp - end-to-end SGEMM on the simulator ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "sgemm/SgemmRunner.h"

#include "sgemm/Reference.h"
#include "support/Format.h"
#include "support/MathUtils.h"
#include "support/Rng.h"

#include <cmath>
#include <cstring>
#include <vector>

using namespace gpuperf;

namespace {

/// Column-major host matrix with zero-initialized padding.
struct HostMatrix {
  int Rows = 0, Cols = 0; ///< Padded dimensions; Ld == Rows.
  std::vector<float> Data;

  HostMatrix(int Rows, int Cols)
      : Rows(Rows), Cols(Cols),
        Data(static_cast<size_t>(Rows) * Cols, 0.0f) {}

  float &at(int R, int C) {
    return Data[static_cast<size_t>(C) * Rows + R];
  }

  void fillRandom(int TrueRows, int TrueCols, Rng &R) {
    for (int C = 0; C < TrueCols; ++C)
      for (int Row = 0; Row < TrueRows; ++Row)
        at(Row, C) = R.nextUnitFloat();
  }
};

uint32_t floatBits(float F) {
  uint32_t U;
  std::memcpy(&U, &F, 4);
  return U;
}

Expected<uint32_t> uploadMatrix(GlobalMemory &GM, const HostMatrix &M) {
  auto Addr = GM.tryAllocate(M.Data.size() * 4);
  if (!Addr)
    return Addr;
  for (size_t I = 0; I < M.Data.size(); ++I)
    GM.storeFloat(static_cast<uint32_t>(*Addr + 4 * I), M.Data[I]);
  return Addr;
}

} // namespace

Expected<SgemmRunResult>
gpuperf::runSgemmConfig(const MachineDesc &M, SgemmKernelConfig Cfg,
                        const SgemmProblem &Problem,
                        const SgemmRunOptions &Options) {
  using ER = Expected<SgemmRunResult>;
  if (Problem.M <= 0 || Problem.N <= 0 || Problem.K <= 0)
    return ER::error("matrix sizes must be positive");
  if (Options.Verify && Options.Mode != SimMode::Full)
    return ER::error("verification requires full simulation");

  // Pad to tile-aligned shapes.
  const int BSh = Cfg.blockTile();
  const int MP = static_cast<int>(alignTo(Problem.M, BSh));
  const int NP = static_cast<int>(alignTo(Problem.N, BSh));
  const int KP = static_cast<int>(alignTo(Problem.K, Cfg.L));
  Cfg.Variant = Problem.Variant;
  Cfg.M = MP;
  Cfg.N = NP;
  Cfg.K = KP;
  Cfg.Lda = transA(Cfg.Variant) ? KP : MP;
  Cfg.Ldb = transB(Cfg.Variant) ? NP : KP;
  Cfg.Ldc = MP;

  auto KernelOrErr = generateSgemmKernel(M, Cfg);
  if (!KernelOrErr)
    return ER::error(KernelOrErr.message());
  Kernel K = KernelOrErr.take();

  // Host matrices (padded, zero-filled outside the true region).
  Rng R(Options.Seed);
  int ARows = Cfg.Lda, ACols = transA(Cfg.Variant) ? MP : KP;
  int BRows = Cfg.Ldb, BCols = transB(Cfg.Variant) ? KP : NP;
  HostMatrix A(ARows, ACols), B(BRows, BCols), C(MP, NP);
  A.fillRandom(transA(Cfg.Variant) ? Problem.K : Problem.M,
               transA(Cfg.Variant) ? Problem.M : Problem.K, R);
  B.fillRandom(transB(Cfg.Variant) ? Problem.N : Problem.K,
               transB(Cfg.Variant) ? Problem.K : Problem.N, R);
  if (Problem.Beta != 0.0f)
    C.fillRandom(Problem.M, Problem.N, R);
  HostMatrix CInitial = C;

  size_t Bytes =
      (A.Data.size() + B.Data.size() + C.Data.size()) * 4 + (1 << 16);
  GlobalMemory GM(Bytes);
  auto AAddr = uploadMatrix(GM, A);
  auto BAddr = uploadMatrix(GM, B);
  auto CAddr = uploadMatrix(GM, C);
  if (!AAddr || !BAddr || !CAddr)
    return ER::error(formatString(
        "matrices do not fit the simulated device: %s",
        (!AAddr ? AAddr : !BAddr ? BAddr : CAddr).message().c_str()));

  SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
  LaunchConfig Launch;
  Launch.Dims.GridX = Shape.GridX;
  Launch.Dims.GridY = Shape.GridY;
  Launch.Dims.BlockX = Shape.BlockX;
  Launch.Params = {*AAddr, *BAddr, *CAddr, floatBits(Problem.Alpha),
                   floatBits(Problem.Beta)};
  Launch.Mode = Options.Mode;
  Launch.WatchdogCycles = Options.WatchdogCycles;
  Launch.Jobs = Options.Jobs;
  Launch.Probes = Options.Probes;

  auto LR = launchKernel(M, K, Launch, GM);
  if (!LR)
    return ER::error(LR.message());

  SgemmRunResult Result;
  Result.Launch = LR.take();
  Result.Seconds = Result.Launch.seconds(M);
  double Flops = 2.0 * MP * NP * KP;
  Result.Gflops = Result.Launch.gflops(M, Flops);
  Result.FractionOfPeak = Result.Gflops / M.theoreticalPeakGflops();
  Result.RegsPerThread = K.RegsPerThread;
  Result.CodeSize = static_cast<int>(K.Code.size());
  uint64_t Total = Result.Launch.Stats.ThreadInstsIssued;
  Result.FfmaPercent =
      Total ? 100.0 * Result.Launch.Stats.ffmaThreadInsts() / Total : 0;

  if (Options.Verify) {
    referenceSgemm(Cfg.Variant, MP, NP, KP, Problem.Alpha, A.Data.data(),
                   Cfg.Lda, B.Data.data(), Cfg.Ldb, Problem.Beta,
                   CInitial.Data.data(), MP);
    double MaxErr = 0;
    for (size_t I = 0; I < C.Data.size(); ++I) {
      float Got = GM.loadFloat(static_cast<uint32_t>(*CAddr + 4 * I));
      MaxErr = std::max(
          MaxErr, static_cast<double>(std::fabs(Got - CInitial.Data[I])));
    }
    Result.MaxAbsError = MaxErr;
    Result.Verified = MaxErr == 0.0;
    if (!Result.Verified)
      return ER::error(formatString(
          "SGEMM verification failed: max abs error %g", MaxErr));
  }
  return Result;
}

Expected<SgemmRunResult> gpuperf::runSgemm(const MachineDesc &M,
                                           SgemmImpl Impl,
                                           const SgemmProblem &Problem,
                                           const SgemmRunOptions &Options) {
  SgemmKernelConfig Cfg = baselineConfig(Impl, M, Problem.Variant,
                                         Problem.M, Problem.N, Problem.K);
  return runSgemmConfig(M, Cfg, Problem, Options);
}
