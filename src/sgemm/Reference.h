//===- sgemm/Reference.h - host reference SGEMM -----------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A host-side reference implementation of the BLAS operation
/// C := alpha * op(A) * op(B) + beta * C (column-major), used to verify
/// the simulated kernels. Accumulation uses fused multiply-adds in
/// ascending-k order, matching the generated kernels' FFMA order so that
/// results agree bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SGEMM_REFERENCE_H
#define GPUPERF_SGEMM_REFERENCE_H

#include "kernelgen/SgemmConfig.h"

namespace gpuperf {

/// Reference SGEMM on column-major host arrays.
void referenceSgemm(GemmVariant Variant, int M, int N, int K, float Alpha,
                    const float *A, int Lda, const float *B, int Ldb,
                    float Beta, float *C, int Ldc);

} // namespace gpuperf

#endif // GPUPERF_SGEMM_REFERENCE_H
