//===- sgemm/SgemmRunner.h - end-to-end SGEMM on the simulator --*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The highest-level public API: run one SGEMM problem with a chosen
/// implementation on a simulated GPU, optionally verify the numerical
/// result against the host reference, and report performance.
///
/// Sizes need not be multiples of the kernel's block tile: matrices are
/// zero-padded into tile-aligned device buffers (the paper's kernels
/// handle edges with predication; padding exercises the same code paths
/// at equivalent cost).
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SGEMM_SGEMMRUNNER_H
#define GPUPERF_SGEMM_SGEMMRUNNER_H

#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"
#include "sim/Launcher.h"

namespace gpuperf {

/// One SGEMM problem instance.
struct SgemmProblem {
  GemmVariant Variant = GemmVariant::NN;
  int M = 0, N = 0, K = 0;
  float Alpha = 1.0f;
  float Beta = 0.0f;
};

/// Result of a run.
struct SgemmRunResult {
  double Gflops = 0;        ///< Using 2*M*N*K flops of the padded problem.
  double Seconds = 0;
  double FractionOfPeak = 0;
  LaunchResult Launch;      ///< Simulator statistics.
  int RegsPerThread = 0;
  int CodeSize = 0;         ///< Static instructions in the kernel.
  double FfmaPercent = 0;   ///< Of executed thread instructions.
  bool Verified = false;    ///< True when verification ran and passed.
  double MaxAbsError = 0;
};

/// How to execute the run.
struct SgemmRunOptions {
  SimMode Mode = SimMode::ProjectOneWave;
  bool Verify = false; ///< Requires Mode == Full.
  uint64_t Seed = 1;   ///< Matrix-content RNG seed.
  /// Per-wave watchdog cycle budget (0 = derived default); runtime traps
  /// fail the run with the trap diagnostic in the Expected message.
  uint64_t WatchdogCycles = 0;
  /// Threads simulating SMs concurrently in Full mode (see
  /// LaunchConfig::Jobs); results are bit-identical for every value.
  int Jobs = 1;
  /// Optional probe sink forwarded to LaunchConfig::Probes: fired
  /// events from the run are aggregated into this engine (per-SM state
  /// merged in SM index order, so results are Jobs-invariant).
  ProbeEngine *Probes = nullptr;
};

/// Runs \p Problem with implementation \p Impl on machine \p M.
Expected<SgemmRunResult> runSgemm(const MachineDesc &M, SgemmImpl Impl,
                                  const SgemmProblem &Problem,
                                  const SgemmRunOptions &Options = {});

/// Runs a fully-custom kernel configuration (ablations); sizes in
/// \p Problem override the shape fields of \p Cfg.
Expected<SgemmRunResult> runSgemmConfig(const MachineDesc &M,
                                        SgemmKernelConfig Cfg,
                                        const SgemmProblem &Problem,
                                        const SgemmRunOptions &Options = {});

} // namespace gpuperf

#endif // GPUPERF_SGEMM_SGEMMRUNNER_H
