//===- support/Supervisor.h - per-task retry/deadline supervision -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Supervised execution of one unit of work (a sweep point, a cache
/// write, a mutant run): bounded retries with exponential backoff for
/// transient failures, deadline escalation for timeouts (the sweep-level
/// analog of the per-launch watchdog -- every retry of a timed-out task
/// gets a doubled cycle budget), and immediate quarantine for failures
/// the task itself declares deterministic (the simulator is
/// bit-reproducible, so a trap will trap identically on every retry and
/// retrying it only burns time).
///
/// The task reports each attempt's result as an AttemptResult; the
/// supervisor owns the retry loop and classifies the final outcome.
/// Used by the checkpointed sweep engine (ubench/SweepRunner) so a
/// single hostile point degrades a sweep to "complete minus an explicit
/// incomplete list" instead of aborting it.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_SUPERVISOR_H
#define GPUPERF_SUPPORT_SUPERVISOR_H

#include <cstdint>
#include <functional>
#include <string>

namespace gpuperf {

/// Retry/deadline policy for one supervised task.
struct SupervisorPolicy {
  /// Total attempts (>= 1). 1 means "no retries".
  int MaxAttempts = 1;
  /// Backoff before retry K (1-based) is BackoffBaseMs << (K-1),
  /// capped at BackoffCapMs. 0 disables sleeping entirely.
  int BackoffBaseMs = 1;
  int BackoffCapMs = 1000;
  /// Cycle budget offered to the first attempt (0 = unlimited). Each
  /// retry after a timeout doubles it, mirroring how a human would
  /// escalate a watchdog that fired on a legitimately slow point.
  uint64_t DeadlineCycles = 0;
};

/// What one attempt of a supervised task reports back.
struct AttemptResult {
  enum class Kind {
    Ok,        ///< Attempt succeeded.
    Transient, ///< Environmental failure (contention, EINTR): retry
               ///< after backoff, same deadline.
    Timeout,   ///< Deadline exhausted: retry with a doubled deadline.
    Fatal,     ///< Deterministic failure (trap, rejection): retrying
               ///< cannot change the outcome -- quarantine immediately.
  };

  Kind K = Kind::Ok;
  std::string Error; ///< Empty for Ok.

  static AttemptResult ok() { return {}; }
  static AttemptResult transient(std::string Why) {
    return {Kind::Transient, std::move(Why)};
  }
  static AttemptResult timeout(std::string Why) {
    return {Kind::Timeout, std::move(Why)};
  }
  static AttemptResult fatal(std::string Why) {
    return {Kind::Fatal, std::move(Why)};
  }
};

/// Final classification of a supervised task.
struct TaskOutcome {
  enum class State {
    Ok,          ///< Some attempt succeeded.
    TimedOut,    ///< Every attempt exhausted its (escalated) deadline.
    Quarantined, ///< The task declared a deterministic failure.
    Failed,      ///< Transient failures persisted through every attempt.
  };

  State Result = State::Ok;
  int Attempts = 0;     ///< Attempts actually made.
  std::string Error;    ///< Last failure message (empty for Ok).

  bool ok() const { return Result == State::Ok; }
};

const char *taskOutcomeName(TaskOutcome::State S);

/// Runs tasks under a SupervisorPolicy. Stateless between run() calls
/// and safe to share across threads.
class Supervisor {
public:
  /// Per-attempt context handed to the task.
  struct Attempt {
    int Index = 0;              ///< 0-based attempt number.
    uint64_t DeadlineCycles = 0; ///< Escalated budget (0 = unlimited).
  };

  explicit Supervisor(SupervisorPolicy P) : Policy(P) {}

  /// Runs \p Task up to MaxAttempts times and classifies the outcome.
  TaskOutcome
  run(const std::function<AttemptResult(const Attempt &)> &Task) const;

  const SupervisorPolicy &policy() const { return Policy; }

  /// Backoff sleep delay (ms) before 1-based retry \p Retry under \p P.
  static int backoffMs(const SupervisorPolicy &P, int Retry);

  /// Replaces the backoff sleep (nullptr restores the real sleep). The
  /// tests use this to pin the backoff schedule without waiting it out.
  /// Not thread-safe; set only from single-threaded test code.
  static void setSleepFnForTesting(std::function<void(int)> Fn);

private:
  SupervisorPolicy Policy;
};

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_SUPERVISOR_H
