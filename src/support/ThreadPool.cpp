//===- support/ThreadPool.cpp - worker pool and parallel loops ------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <memory>

using namespace gpuperf;

ThreadPool::ThreadPool(int Threads) {
  ensureWorkers(Threads <= 0 ? hardwareJobs() : Threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::post(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WakeWorkers.notify_one();
}

void ThreadPool::ensureWorkers(int Threads) {
  std::lock_guard<std::mutex> Lock(Mutex);
  while (static_cast<int>(Workers.size()) < Threads)
    Workers.emplace_back([this] { workerLoop(); });
}

int ThreadPool::workerCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return static_cast<int>(Workers.size());
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Stopping && Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

ThreadPool &ThreadPool::system() {
  static ThreadPool Pool(hardwareJobs());
  return Pool;
}

int ThreadPool::hardwareJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<int>(N);
}

int gpuperf::resolveJobs(int Jobs) {
  return Jobs <= 0 ? ThreadPool::hardwareJobs() : Jobs;
}

namespace {

/// Shared state of one parallelFor call. Heap-allocated and shared with
/// every helper task, because helpers posted to the pool may only get a
/// worker after the loop's caller has already claimed the last iteration
/// and returned.
struct ForLoopState {
  ForLoopState(size_t N, const std::function<void(size_t)> &Fn)
      : N(N), Fn(Fn) {}

  /// Claims iterations until none remain. Safe to call from any number of
  /// threads; each index is executed exactly once.
  void work() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        break;
      Fn(I);
      if (Done.fetch_add(1, std::memory_order_acq_rel) + 1 == N) {
        std::lock_guard<std::mutex> Lock(Mutex);
        AllDone.notify_all();
      }
    }
  }

  void waitAllDone() {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] {
      return Done.load(std::memory_order_acquire) == N;
    });
  }

  const size_t N;
  std::function<void(size_t)> Fn;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};
  std::mutex Mutex;
  std::condition_variable AllDone;
};

} // namespace

void gpuperf::parallelFor(int Jobs, size_t N,
                          const std::function<void(size_t)> &Fn) {
  Jobs = resolveJobs(Jobs);
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  auto State = std::make_shared<ForLoopState>(N, Fn);
  size_t Helpers = std::min<size_t>(static_cast<size_t>(Jobs) - 1, N - 1);
  ThreadPool &Pool = ThreadPool::system();
  Pool.ensureWorkers(static_cast<int>(Helpers));
  for (size_t H = 0; H < Helpers; ++H)
    Pool.post([State] { State->work(); });
  State->work();
  State->waitAllDone();
}
