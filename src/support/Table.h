//===- support/Table.h - column-aligned text tables ------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple column-aligned table printer used by the bench binaries to
/// regenerate the paper's tables and figure series as text rows.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_TABLE_H
#define GPUPERF_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace gpuperf {

/// Accumulates rows of cells and renders them with aligned columns.
class Table {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table; numeric-looking cells are right-aligned.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_TABLE_H
