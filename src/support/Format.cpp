//===- support/Format.cpp - printf-style string formatting ---------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cassert>
#include <cstdio>
#include <vector>

using namespace gpuperf;

std::string gpuperf::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  assert(Needed >= 0 && "invalid format string");
  std::string Result(static_cast<size_t>(Needed), '\0');
  // +1 for the terminating NUL vsnprintf always writes.
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string gpuperf::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatStringV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string gpuperf::formatDouble(double Value, int Decimals) {
  return formatString("%.*f", Decimals, Value);
}
