//===- support/Json.cpp - minimal JSON emission and validation ------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Format.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace gpuperf;

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::separate() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (NeedComma)
    Out += ',';
  NeedComma = true;
}

void JsonWriter::openContainer(char C) {
  separate();
  Out += C;
  NeedComma = false;
}

void JsonWriter::closeContainer(char C) {
  assert(!Out.empty() && "closing a container that was never opened");
  Out += C;
  NeedComma = true;
}

void JsonWriter::appendEscaped(std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

void JsonWriter::key(std::string_view Name) {
  separate();
  appendEscaped(Name);
  Out += ':';
  AfterKey = true;
}

void JsonWriter::value(std::string_view S) {
  separate();
  appendEscaped(S);
}

void JsonWriter::value(uint64_t V) {
  separate();
  Out += formatString("%llu", static_cast<unsigned long long>(V));
}

void JsonWriter::value(int64_t V) {
  separate();
  Out += formatString("%lld", static_cast<long long>(V));
}

void JsonWriter::value(double V, int Decimals) {
  separate();
  // JSON has no NaN/Inf; emit null, the conventional substitute.
  if (!std::isfinite(V)) {
    Out += "null";
    return;
  }
  Out += formatString("%.*f", Decimals, V);
}

void JsonWriter::value(bool B) {
  separate();
  Out += B ? "true" : "false";
}

//===----------------------------------------------------------------------===//
// jsonValidate: strict recursive-descent checker
//===----------------------------------------------------------------------===//

namespace {

class Validator {
public:
  explicit Validator(std::string_view Text) : Text(Text) {}

  bool run(std::string *ErrorOut) {
    bool Ok = skipWs() && parseValue() && atEndAfterWs();
    if (!Ok && ErrorOut)
      *ErrorOut = formatString("invalid JSON at byte %zu: %s", Pos,
                               Error.empty() ? "malformed value"
                                             : Error.c_str());
    return Ok;
  }

private:
  bool fail(const char *What) {
    if (Error.empty())
      Error = What;
    return false;
  }

  bool skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
    return true;
  }

  bool atEndAfterWs() {
    skipWs();
    return Pos == Text.size() || fail("trailing bytes after value");
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue() {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    bool Ok;
    switch (Text[Pos]) {
    case '{':
      Ok = parseObject();
      break;
    case '[':
      Ok = parseArray();
      break;
    case '"':
      Ok = parseString();
      break;
    case 't':
      Ok = parseLiteral("true");
      break;
    case 'f':
      Ok = parseLiteral("false");
      break;
    case 'n':
      Ok = parseLiteral("null");
      break;
    default:
      Ok = parseNumber();
    }
    --Depth;
    return Ok;
  }

  bool parseLiteral(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return fail("bad literal");
    Pos += Lit.size();
    return true;
  }

  bool parseObject() {
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("object key must be a string");
      if (!parseString())
        return false;
      skipWs();
      if (!consume(':'))
        return fail("missing ':' after object key");
      if (!parseValue())
        return false;
      skipWs();
      if (consume('}'))
        return true;
      if (!consume(','))
        return fail("missing ',' or '}' in object");
    }
  }

  bool parseArray() {
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      if (!parseValue())
        return false;
      skipWs();
      if (consume(']'))
        return true;
      if (!consume(','))
        return fail("missing ',' or ']' in array");
    }
  }

  bool parseString() {
    ++Pos; // '"'
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("truncated escape");
        char E = Text[Pos];
        if (E == 'u') {
          for (int I = 1; I <= 4; ++I)
            if (Pos + I >= Text.size() || !std::isxdigit(static_cast<
                    unsigned char>(Text[Pos + I])))
              return fail("bad \\u escape");
          Pos += 4;
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return fail("bad escape character");
        }
      }
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber() {
    size_t Start = Pos;
    consume('-');
    if (consume('0')) {
      // No leading zeros.
    } else {
      if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(
                                    Text[Pos])))
        return fail("malformed number");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (consume('.')) {
      if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(
                                    Text[Pos])))
        return fail("digits required after decimal point");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(
                                    Text[Pos])))
        return fail("digits required in exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    return Pos > Start + (Text[Start] == '-' ? 1u : 0u) ||
           fail("malformed number");
  }

  static constexpr int MaxDepth = 256;
  std::string_view Text;
  size_t Pos = 0;
  int Depth = 0;
  std::string Error;
};

} // namespace

bool gpuperf::jsonValidate(std::string_view Text, std::string *ErrorOut) {
  return Validator(Text).run(ErrorOut);
}

//===----------------------------------------------------------------------===//
// jsonParse: strict recursive-descent tree parser
//===----------------------------------------------------------------------===//

namespace {

/// Shares the Validator's grammar but builds a JsonValue tree and decodes
/// string escapes. Kept separate so jsonValidate stays allocation-free.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<JsonValue> run() {
    JsonValue V;
    skipWs();
    if (!parseValue(V) || !atEndAfterWs())
      return Expected<JsonValue>::error(formatString(
          "invalid JSON at byte %zu: %s", Pos,
          Error.empty() ? "malformed value" : Error.c_str()));
    return V;
  }

private:
  bool fail(const char *What) {
    if (Error.empty())
      Error = What;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool atEndAfterWs() {
    skipWs();
    return Pos == Text.size() || fail("trailing bytes after value");
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue &V) {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    bool Ok;
    switch (Text[Pos]) {
    case '{':
      Ok = parseObject(V);
      break;
    case '[':
      Ok = parseArray(V);
      break;
    case '"':
      V.K = JsonValue::Kind::String;
      Ok = parseString(V.Str);
      break;
    case 't':
      V.K = JsonValue::Kind::Bool;
      V.Bool = true;
      Ok = parseLiteral("true");
      break;
    case 'f':
      V.K = JsonValue::Kind::Bool;
      V.Bool = false;
      Ok = parseLiteral("false");
      break;
    case 'n':
      V.K = JsonValue::Kind::Null;
      Ok = parseLiteral("null");
      break;
    default:
      V.K = JsonValue::Kind::Number;
      Ok = parseNumber(V.Number);
    }
    --Depth;
    return Ok;
  }

  bool parseLiteral(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return fail("bad literal");
    Pos += Lit.size();
    return true;
  }

  bool parseObject(JsonValue &V) {
    V.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("object key must be a string");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("missing ':' after object key");
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      V.Members.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (consume('}'))
        return true;
      if (!consume(','))
        return fail("missing ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &V) {
    V.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      JsonValue Item;
      if (!parseValue(Item))
        return false;
      V.Items.push_back(std::move(Item));
      skipWs();
      if (consume(']'))
        return true;
      if (!consume(','))
        return fail("missing ',' or ']' in array");
    }
  }

  /// Appends \p Code as UTF-8.
  static void appendUtf8(std::string &S, uint32_t Code) {
    if (Code < 0x80) {
      S += static_cast<char>(Code);
    } else if (Code < 0x800) {
      S += static_cast<char>(0xc0 | (Code >> 6));
      S += static_cast<char>(0x80 | (Code & 0x3f));
    } else if (Code < 0x10000) {
      S += static_cast<char>(0xe0 | (Code >> 12));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      S += static_cast<char>(0x80 | (Code & 0x3f));
    } else {
      S += static_cast<char>(0xf0 | (Code >> 18));
      S += static_cast<char>(0x80 | ((Code >> 12) & 0x3f));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      S += static_cast<char>(0x80 | (Code & 0x3f));
    }
  }

  /// Reads the 4 hex digits of a \u escape (Pos at the first digit).
  bool readHex4(uint32_t &Code) {
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      if (Pos >= Text.size() ||
          !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("bad \\u escape");
      char C = Text[Pos++];
      uint32_t Digit = C <= '9'   ? static_cast<uint32_t>(C - '0')
                       : C <= 'F' ? static_cast<uint32_t>(C - 'A' + 10)
                                  : static_cast<uint32_t>(C - 'a' + 10);
      Code = Code * 16 + Digit;
    }
    return true;
  }

  bool parseString(std::string &S) {
    ++Pos; // '"'
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        S += C;
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        S += E;
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'n':
        S += '\n';
        break;
      case 'r':
        S += '\r';
        break;
      case 't':
        S += '\t';
        break;
      case 'u': {
        uint32_t Code;
        if (!readHex4(Code))
          return false;
        if (Code >= 0xd800 && Code <= 0xdbff) {
          // High surrogate: must pair with \uDC00..\uDFFF.
          if (!(consume('\\') && consume('u')))
            return fail("lone high surrogate");
          uint32_t Low;
          if (!readHex4(Low))
            return false;
          if (Low < 0xdc00 || Low > 0xdfff)
            return fail("bad low surrogate");
          Code = 0x10000 + ((Code - 0xd800) << 10) + (Low - 0xdc00);
        } else if (Code >= 0xdc00 && Code <= 0xdfff) {
          return fail("lone low surrogate");
        }
        appendUtf8(S, Code);
        break;
      }
      default:
        return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(double &Number) {
    size_t Start = Pos;
    consume('-');
    if (consume('0')) {
      // No leading zeros.
    } else {
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("malformed number");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (consume('.')) {
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("digits required after decimal point");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("digits required in exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos == Start + (Text[Start] == '-' ? 1u : 0u))
      return fail("malformed number");
    Number = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                         nullptr);
    return true;
  }

  static constexpr int MaxDepth = 256;
  std::string_view Text;
  size_t Pos = 0;
  int Depth = 0;
  std::string Error;
};

} // namespace

Expected<JsonValue> gpuperf::jsonParse(std::string_view Text) {
  return Parser(Text).run();
}
