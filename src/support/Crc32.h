//===- support/Crc32.h - CRC-32 framing checksum ----------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to frame
/// records in the append-only durability journals (PerfDatabase journal,
/// sweep checkpoints). A CRC over each record's payload lets recovery
/// distinguish "file ends in a torn write" from "file ends cleanly" and
/// truncate at the first corrupt frame instead of rejecting everything.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_CRC32_H
#define GPUPERF_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>

namespace gpuperf {

/// CRC-32 of \p Size bytes at \p Data. Pass a previous result as \p Seed
/// to checksum discontiguous buffers as one stream.
inline uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t Crc = ~Seed;
  for (size_t I = 0; I < Size; ++I) {
    Crc ^= P[I];
    for (int B = 0; B < 8; ++B)
      Crc = (Crc >> 1) ^ (0xEDB88320u & (0u - (Crc & 1u)));
  }
  return ~Crc;
}

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_CRC32_H
