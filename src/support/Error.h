//===- support/Error.h - recoverable-error utilities -----------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal Expected<T>/Status pair for recoverable errors (malformed
/// assembly, invalid kernel parameters). Library code does not use
/// exceptions; programmatic errors are asserts.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_ERROR_H
#define GPUPERF_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gpuperf {

/// Success-or-message result for operations with no payload.
class Status {
public:
  /// Creates a success status.
  static Status success() { return Status(); }

  /// Creates a failure status carrying \p Message.
  static Status error(std::string Message) {
    Status S;
    S.Message = std::move(Message);
    return S;
  }

  /// True when the status represents a failure.
  bool failed() const { return Message.has_value(); }
  explicit operator bool() const { return !failed(); }

  /// Failure message; only valid when failed().
  const std::string &message() const {
    assert(failed() && "no message on success status");
    return *Message;
  }

private:
  std::optional<std::string> Message;
};

/// Value-or-message result. Holds either a T or an error string.
template <typename T> class Expected {
public:
  Expected(T V) : Value(std::move(V)) {}
  Expected(Status S) {
    assert(S.failed() && "Expected constructed from success status");
    Message = S.message();
  }

  /// Creates a failure result carrying \p Msg.
  static Expected<T> error(std::string Msg) {
    Expected<T> E;
    E.Message = std::move(Msg);
    return E;
  }

  /// True on success.
  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  /// Access to the contained value; only valid on success.
  T &operator*() {
    assert(Value && "dereferencing failed Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing failed Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing failed Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing failed Expected");
    return &*Value;
  }

  /// Moves the contained value out; only valid on success.
  T take() {
    assert(Value && "taking from failed Expected");
    return std::move(*Value);
  }

  /// Failure message; only valid on failure.
  const std::string &message() const {
    assert(!Value && "no message on success");
    return Message;
  }

  /// Converts the failure into a Status (must be a failure).
  Status takeStatus() const {
    assert(!Value && "takeStatus on success");
    return Status::error(Message);
  }

  /// Moves the failure message out; only valid on failure. Useful when
  /// re-wrapping an error into an Expected of a different type without
  /// copying the string.
  std::string takeError() {
    assert(!Value && "takeError on success");
    return std::move(Message);
  }

  /// Applies \p F to the contained value, yielding Expected<U> where U
  /// is F's result type; failures pass through unchanged. Rvalue-only:
  /// the value (or message) is moved into the result, so this works for
  /// move-only payloads, e.g.
  ///   auto N = parse(Text).map([](Module M) { return M.Kernels.size(); });
  template <typename Fn> auto map(Fn &&F) && {
    using U = decltype(F(std::move(*Value)));
    if (!Value)
      return Expected<U>::error(std::move(Message));
    return Expected<U>(F(std::move(*Value)));
  }

private:
  Expected() = default;
  std::optional<T> Value;
  std::string Message;
};

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_ERROR_H
