//===- support/Format.h - printf-style string formatting -------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small printf-style formatting helpers returning std::string, used by the
/// assembler diagnostics, the disassembler, and the bench table printers.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_FORMAT_H
#define GPUPERF_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace gpuperf {

/// Formats \p Fmt with printf semantics into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

/// Renders \p Value with \p Decimals fraction digits (fixed notation).
std::string formatDouble(double Value, int Decimals);

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_FORMAT_H
