//===- support/Rng.h - deterministic random numbers ------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small xorshift-based RNG so tests and benches are reproducible across
/// platforms (std::mt19937 would also be deterministic, but distributions
/// are not portable).
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_RNG_H
#define GPUPERF_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace gpuperf {

/// xorshift128+ generator with portable helpers for floats and ranges.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding to avoid weak low-entropy states.
    auto Next = [&Seed]() {
      Seed += 0x9e3779b97f4a7c15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      return Z ^ (Z >> 31);
    };
    State0 = Next();
    State1 = Next();
    if (State0 == 0 && State1 == 0)
      State1 = 1;
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t S1 = State0;
    uint64_t S0 = State1;
    State0 = S0;
    S1 ^= S1 << 23;
    State1 = S1 ^ S0 ^ (S1 >> 18) ^ (S0 >> 5);
    return State1 + S0;
  }

  /// Uniform value in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform float in [-1, 1], exactly representable steps.
  float nextUnitFloat() {
    // 2^20 steps keeps products exactly accumulable in float for small K.
    return (static_cast<float>(nextBelow(1u << 21)) -
            static_cast<float>(1u << 20)) /
           static_cast<float>(1u << 20);
  }

private:
  uint64_t State0;
  uint64_t State1;
};

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_RNG_H
