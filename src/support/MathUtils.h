//===- support/MathUtils.h - small integer math helpers --------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_MATHUTILS_H
#define GPUPERF_SUPPORT_MATHUTILS_H

#include <cassert>
#include <cstdint>

namespace gpuperf {

/// Ceiling division for non-negative integers.
constexpr uint64_t divideCeil(uint64_t Numerator, uint64_t Denominator) {
  return (Numerator + Denominator - 1) / Denominator;
}

/// Rounds \p Value up to the next multiple of \p Align (Align > 0).
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return divideCeil(Value, Align) * Align;
}

/// True when \p Value is a power of two (0 is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Integer square root (largest R with R*R <= Value).
constexpr uint64_t intSqrt(uint64_t Value) {
  uint64_t R = 0;
  while ((R + 1) * (R + 1) <= Value)
    ++R;
  return R;
}

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_MATHUTILS_H
