//===- support/Args.h - validated command-line value parsing ----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict numeric parsing for CLI flags. std::atoi silently turns
/// "--jobs foo" into 0 and saturates on overflow without any signal; every
/// numeric flag in the tools and benches goes through parseInteger
/// instead: full-string consumption, explicit range check, and a failure
/// message naming the offending text.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_ARGS_H
#define GPUPERF_SUPPORT_ARGS_H

#include "support/Error.h"
#include "support/Format.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

namespace gpuperf {

/// Parses \p Text as an integer in [\p Min, \p Max]. Base-0 semantics
/// (decimal, 0x hex, 0 octal) so address-like flags keep accepting hex.
/// Fails -- instead of guessing -- on empty input, trailing garbage
/// ("12x"), values outside the range, and overflow.
inline Expected<long long> parseInteger(const char *Text, long long Min,
                                        long long Max) {
  using Result = Expected<long long>;
  if (!Text || !*Text)
    return Result::error("expected an integer, got an empty string");
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text, &End, 0);
  if (End == Text || *End != '\0')
    return Result::error(
        formatString("'%s' is not an integer", Text));
  if (errno == ERANGE || V < Min || V > Max)
    return Result::error(formatString(
        "'%s' is out of range [%lld, %lld]", Text, Min, Max));
  return V;
}

/// parseInteger for unsigned 64-bit ranges (watchdog budgets, byte
/// counts, parameter words) where Max may exceed LLONG_MAX.
inline Expected<unsigned long long>
parseUnsigned(const char *Text, unsigned long long Max) {
  using Result = Expected<unsigned long long>;
  if (!Text || !*Text)
    return Result::error("expected an integer, got an empty string");
  // Reject negative input explicitly: strtoull wraps "-1" to 2^64-1.
  for (const char *P = Text; *P; ++P)
    if (*P == '-')
      return Result::error(
          formatString("'%s' must be non-negative", Text));
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 0);
  if (End == Text || *End != '\0')
    return Result::error(
        formatString("'%s' is not an integer", Text));
  if (errno == ERANGE || V > Max)
    return Result::error(formatString(
        "'%s' is out of range [0, %llu]", Text, Max));
  return V;
}

/// Parses \p Text as a finite double in [\p Min, \p Max] with the same
/// strictness as parseInteger: full-string consumption and an explicit
/// range check (rejects nan/inf, which compare false against any
/// range). Tolerance fractions and similar CLI values go through this.
inline Expected<double> parseDouble(const char *Text, double Min,
                                    double Max) {
  using Result = Expected<double>;
  if (!Text || !*Text)
    return Result::error("expected a number, got an empty string");
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0')
    return Result::error(formatString("'%s' is not a number", Text));
  if (errno == ERANGE || !(V >= Min && V <= Max))
    return Result::error(formatString(
        "'%s' is out of range [%g, %g]", Text, Min, Max));
  return V;
}

/// Parses \p Text against a fixed set of spelled-out choices and returns
/// the index of the match within \p Choices. Enumerated flags
/// ("--notation tuned", "--schedule list") go through this instead of
/// ad-hoc strcmp chains that silently fall back on a default: a typo
/// fails with a message listing every valid spelling.
inline Expected<int>
parseChoice(const char *Text, std::initializer_list<const char *> Choices) {
  using Result = Expected<int>;
  if (!Text || !*Text)
    return Result::error("expected a value, got an empty string");
  std::string Valid;
  int Index = 0;
  for (const char *Choice : Choices) {
    if (std::strcmp(Text, Choice) == 0)
      return Index;
    if (!Valid.empty())
      Valid += "|";
    Valid += Choice;
    ++Index;
  }
  return Result::error(
      formatString("'%s' is not one of %s", Text, Valid.c_str()));
}

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_ARGS_H
