//===- support/FileIO.h - durable file primitives ---------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small set of file-system primitives the durability layer is built
/// on: whole-file reads, durable atomic replacement (temporary + fsync +
/// rename + directory fsync), and directory syncs after metadata
/// operations. Centralizing them here gives every caller the same crash
/// semantics and gives the test suite one place to inject torn writes
/// and crash points -- the I/O analog of sim/FaultInjector's "any input
/// either works or fails structurally, never silently corrupts" stance.
///
/// Crash model. writeFileDurable guarantees that after a power loss or
/// SIGKILL at *any* instruction, the target path holds either the
/// complete previous contents or the complete new contents:
///   1. bytes are written to a same-directory temporary,
///   2. the temporary is fsync'd (data reaches the disk before the
///      rename can be observed -- without this, a crash after the rename
///      could publish an empty or partial file),
///   3. rename(2) atomically replaces the target,
///   4. the containing directory is fsync'd (the rename itself is
///      durable).
///
//======---------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_FILEIO_H
#define GPUPERF_SUPPORT_FILEIO_H

#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace gpuperf {

/// Reads the entire file at \p Path. Fails if the file cannot be opened
/// or read; an empty file yields an empty vector.
Expected<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Durably and atomically replaces \p Path with \p Size bytes of
/// \p Data (see the crash model above). On failure the previous file is
/// untouched and the temporary is removed -- except under an injected
/// crash point, which leaves the file system exactly as a real crash at
/// that instruction would.
Status writeFileDurable(const std::string &Path, const uint8_t *Data,
                        size_t Size);

/// fsyncs the directory containing \p Path, making a previously
/// performed create/rename/unlink of that entry durable. Best-effort:
/// some file systems refuse directory fsync; errors are ignored.
void syncDirectoryOf(const std::string &Path);

//===----------------------------------------------------------------------===//
// Testing hooks (not thread-safe; set only from single-threaded tests)
//===----------------------------------------------------------------------===//

/// Caps the number of bytes any single writeFileDurable may write
/// (0 = unlimited). A capped write fails like a full disk: the
/// temporary is removed and the target left untouched.
void setDurableWriteByteLimitForTesting(size_t Limit);

/// Simulated kill points inside writeFileDurable (0 = off):
///   1 = after the temporary is written and fsync'd, before the rename
///       (target still old; orphan temporary remains on disk);
///   2 = after the rename, before the directory sync (target already
///       new; the caller sees a failure and must not run any
///       postcondition steps, exactly as if the process had died).
/// The injected "crash" returns a Status failure without cleanup.
void setDurableWriteCrashPointForTesting(int Point);

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_FILEIO_H
