//===- support/FileIO.cpp - durable file primitives -----------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"

#include "support/Format.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

using namespace gpuperf;

namespace {

size_t WriteByteLimit = 0;
int WriteCrashPoint = 0;

/// Directory part of \p Path ("." when there is no separator).
std::string directoryOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  return Slash == 0 ? "/" : Path.substr(0, Slash);
}

} // namespace

void gpuperf::setDurableWriteByteLimitForTesting(size_t Limit) {
  WriteByteLimit = Limit;
}

void gpuperf::setDurableWriteCrashPointForTesting(int Point) {
  WriteCrashPoint = Point;
}

Expected<std::vector<uint8_t>>
gpuperf::readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<std::vector<uint8_t>>::error("cannot open '" + Path +
                                                 "'");
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  return Bytes;
}

void gpuperf::syncDirectoryOf(const std::string &Path) {
  int Fd = ::open(directoryOf(Path).c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  (void)::fsync(Fd); // Best-effort: some file systems refuse this.
  ::close(Fd);
}

Status gpuperf::writeFileDurable(const std::string &Path,
                                 const uint8_t *Data, size_t Size) {
  // The pid suffix keeps concurrent writers from different processes
  // off each other's temporary.
  std::string Tmp =
      formatString("%s.tmp.%ld", Path.c_str(), static_cast<long>(getpid()));

  size_t WriteBytes = Size;
  if (WriteByteLimit && WriteByteLimit < WriteBytes)
    WriteBytes = WriteByteLimit; // Simulated disk-full for the tests.

  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return Status::error(formatString("cannot create '%s': %s",
                                      Tmp.c_str(), std::strerror(errno)));
  size_t Done = 0;
  while (Done < WriteBytes) {
    ssize_t N = ::write(Fd, Data + Done, WriteBytes - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Done += static_cast<size_t>(N);
  }
  // The temporary must reach the disk before the rename can publish it:
  // rename is a metadata operation and may be journaled ahead of the
  // data, so skipping this fsync can surface the new name with empty
  // contents after a power loss.
  bool Ok = Done == Size && ::fsync(Fd) == 0;
  ::close(Fd);
  if (!Ok) {
    std::remove(Tmp.c_str());
    return Status::error(formatString("short write to '%s'", Tmp.c_str()));
  }

  if (WriteCrashPoint == 1)
    return Status::error(formatString(
        "simulated crash before renaming '%s'", Tmp.c_str()));

  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Status::error(formatString("cannot rename '%s' over '%s': %s",
                                      Tmp.c_str(), Path.c_str(),
                                      std::strerror(errno)));
  }

  if (WriteCrashPoint == 2)
    return Status::error(formatString(
        "simulated crash after renaming over '%s'", Path.c_str()));

  syncDirectoryOf(Path);
  return Status::success();
}
