//===- support/Json.h - minimal JSON emission and validation ----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer (objects, arrays, scalars, correct
/// string escaping) and a strict validating parser. The writer backs the
/// Chrome trace_event emitter and the bench metrics records; the
/// validator backs the trace_smoke test and any consumer that wants to
/// assert a produced file is structurally sound without pulling in a
/// JSON library dependency.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_JSON_H
#define GPUPERF_SUPPORT_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpuperf {

/// Append-only JSON writer. Produces compact output; the caller opens and
/// closes containers explicitly and the writer inserts commas. Misuse
/// (closing more containers than were opened) is an assertion failure in
/// debug builds and produces invalid JSON in release builds -- callers are
/// expected to emit a fixed shape.
class JsonWriter {
public:
  void beginObject() { openContainer('{'); }
  void endObject() { closeContainer('}'); }
  void beginArray() { openContainer('['); }
  void endArray() { closeContainer(']'); }

  /// Emits a key inside an object; the next value call provides its value.
  void key(std::string_view Name);

  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(uint64_t V);
  void value(int64_t V);
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(unsigned V) { value(static_cast<uint64_t>(V)); }
  void value(double V, int Decimals = 6);
  void value(bool B);

  /// Convenience: key + value in one call.
  template <typename T> void kv(std::string_view Name, T V) {
    key(Name);
    value(V);
  }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void openContainer(char C);
  void closeContainer(char C);
  void separate();
  void appendEscaped(std::string_view S);

  std::string Out;
  /// True when the next emission at the current nesting level needs a
  /// preceding comma.
  bool NeedComma = false;
  /// True right after key(): suppresses the comma before the value.
  bool AfterKey = false;
};

/// Strictly validates that \p Text is one complete JSON value (RFC 8259
/// grammar: objects, arrays, strings with escapes, numbers, true/false/
/// null) with nothing but whitespace after it. On failure, *ErrorOut (when
/// non-null) receives a message naming the byte offset and the check that
/// fired.
bool jsonValidate(std::string_view Text, std::string *ErrorOut = nullptr);

/// A parsed JSON value (see jsonParse). Small tree representation:
/// object members keep source order (and may repeat keys; find returns
/// the first), numbers are doubles -- integers up to 2^53 round-trip
/// exactly, which covers every counter the metrics records emit.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool Bool = false;
  double Number = 0;
  std::string Str;
  std::vector<JsonValue> Items; ///< Array elements.
  std::vector<std::pair<std::string, JsonValue>> Members; ///< Object.

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// First member named \p Key (null when absent or not an object).
  const JsonValue *find(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, V] : Members)
      if (Name == Key)
        return &V;
    return nullptr;
  }
};

/// Parses one complete JSON value under the same strict grammar as
/// jsonValidate, decoding string escapes (\uXXXX including surrogate
/// pairs becomes UTF-8). Fails with a message naming the byte offset.
Expected<JsonValue> jsonParse(std::string_view Text);

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_JSON_H
