//===- support/Table.cpp - column-aligned text tables ---------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cctype>

using namespace gpuperf;

void Table::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

/// \returns true when \p Cell looks like a number (for right alignment).
static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.' &&
        C != '-' && C != '+' && C != '%' && C != 'e' && C != 'x')
      return false;
  return true;
}

std::string Table::render() const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Widths(NumCols, 0);
  auto Measure = [&Widths](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      const std::string &Cell = Row[I];
      size_t Pad = Widths[I] - Cell.size();
      if (looksNumeric(Cell))
        Out.append(Pad, ' ');
      Out += Cell;
      if (!looksNumeric(Cell))
        Out.append(Pad, ' ');
      if (I + 1 != Row.size())
        Out += "  ";
    }
    // Trim trailing spaces.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  if (!Header.empty()) {
    Emit(Header);
    size_t Total = 0;
    for (size_t I = 0; I < NumCols; ++I)
      Total += Widths[I] + (I + 1 != NumCols ? 2 : 0);
    Out.append(Total, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}
