//===- support/Supervisor.cpp - per-task retry/deadline supervision -------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "support/Supervisor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

using namespace gpuperf;

namespace {

std::function<void(int)> SleepFn; ///< Testing override (see header).

void backoffSleep(int Ms) {
  if (Ms <= 0)
    return;
  if (SleepFn) {
    SleepFn(Ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

} // namespace

const char *gpuperf::taskOutcomeName(TaskOutcome::State S) {
  switch (S) {
  case TaskOutcome::State::Ok:
    return "ok";
  case TaskOutcome::State::TimedOut:
    return "timed-out";
  case TaskOutcome::State::Quarantined:
    return "quarantined";
  case TaskOutcome::State::Failed:
    return "failed";
  }
  return "?";
}

void Supervisor::setSleepFnForTesting(std::function<void(int)> Fn) {
  SleepFn = std::move(Fn);
}

int Supervisor::backoffMs(const SupervisorPolicy &P, int Retry) {
  assert(Retry >= 1 && "backoff is only taken before a retry");
  if (P.BackoffBaseMs <= 0)
    return 0;
  // Saturate the shift rather than overflowing for absurd retry counts.
  int Shift = std::min(Retry - 1, 20);
  long Ms = static_cast<long>(P.BackoffBaseMs) << Shift;
  return static_cast<int>(
      std::min<long>(Ms, std::max(P.BackoffBaseMs, P.BackoffCapMs)));
}

TaskOutcome Supervisor::run(
    const std::function<AttemptResult(const Attempt &)> &Task) const {
  const int MaxAttempts = std::max(1, Policy.MaxAttempts);
  TaskOutcome Out;
  uint64_t Deadline = Policy.DeadlineCycles;

  for (int I = 0; I < MaxAttempts; ++I) {
    Attempt A;
    A.Index = I;
    A.DeadlineCycles = Deadline;
    AttemptResult R = Task(A);
    ++Out.Attempts;

    switch (R.K) {
    case AttemptResult::Kind::Ok:
      Out.Result = TaskOutcome::State::Ok;
      Out.Error.clear();
      return Out;
    case AttemptResult::Kind::Fatal:
      // Deterministic: every retry would fail identically, so the task
      // goes straight to the quarantine list.
      Out.Result = TaskOutcome::State::Quarantined;
      Out.Error = std::move(R.Error);
      return Out;
    case AttemptResult::Kind::Timeout:
      Out.Result = TaskOutcome::State::TimedOut;
      Out.Error = std::move(R.Error);
      // Escalate: the next attempt gets double the cycle budget (the
      // point may simply be slower than the configured deadline).
      if (Deadline && Deadline <= (uint64_t(1) << 62))
        Deadline *= 2;
      break;
    case AttemptResult::Kind::Transient:
      Out.Result = TaskOutcome::State::Failed;
      Out.Error = std::move(R.Error);
      break;
    }

    if (I + 1 < MaxAttempts)
      backoffSleep(backoffMs(Policy, I + 1));
  }
  return Out;
}
