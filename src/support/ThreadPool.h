//===- support/ThreadPool.h - worker pool and parallel loops ---*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent worker pool plus parallelFor, the execution engine
/// behind every parallel path in the repository: concurrent per-SM
/// simulation in launchKernel, fault-injection batches, and bench-point
/// sweeps. Iterations are distributed by an atomic claim counter, so idle
/// workers steal whatever iterations remain instead of being assigned
/// fixed chunks up front -- uneven per-iteration cost (mutants that trap
/// early next to mutants that run full waves) balances automatically.
///
/// Parallelism here never changes results: callers are required to hand
/// parallelFor independent iterations, and every caller in this repo
/// writes its result into a per-index slot and merges in index order
/// afterwards, keeping output bit-identical to the Jobs=1 serial loop.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_SUPPORT_THREADPOOL_H
#define GPUPERF_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpuperf {

/// A persistent pool of worker threads consuming a shared task queue.
///
/// The pool is a plain scheduling substrate: it guarantees every posted
/// task eventually runs, nothing about ordering. Waiting for completion
/// is the caller's business (parallelFor tracks its own iterations), so
/// nested parallel loops cannot deadlock -- a loop's caller thread always
/// participates in its own work and never blocks on queue capacity.
class ThreadPool {
public:
  /// Creates a pool with \p Threads workers (0 = hardwareJobs()).
  explicit ThreadPool(int Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void post(std::function<void()> Task);

  /// Grows the pool to at least \p Threads workers (never shrinks).
  void ensureWorkers(int Threads);

  int workerCount() const;

  /// The process-wide pool used by parallelFor. Created on first use with
  /// hardwareJobs() workers and grown on demand.
  static ThreadPool &system();

  /// std::thread::hardware_concurrency clamped to at least 1.
  static int hardwareJobs();

private:
  void workerLoop();

  mutable std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  bool Stopping = false;
};

/// Resolves a user-facing jobs knob: values <= 0 mean "one per hardware
/// thread", anything else is taken literally.
int resolveJobs(int Jobs);

/// Runs Fn(0) .. Fn(N-1), each exactly once, using up to \p Jobs threads
/// (the calling thread included). Jobs <= 1 degrades to a plain serial
/// loop with no pool involvement at all. Iterations must be independent:
/// they may run in any order and concurrently. Returns once every
/// iteration has finished.
void parallelFor(int Jobs, size_t N, const std::function<void(size_t)> &Fn);

} // namespace gpuperf

#endif // GPUPERF_SUPPORT_THREADPOOL_H
