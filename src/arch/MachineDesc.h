//===- arch/MachineDesc.h - GPU machine descriptions ------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural descriptions of the three GPU generations compared in the
/// paper's Table 1 (GT200/GTX280, Fermi GF110/GTX580, Kepler GK104/GTX680),
/// plus the timing parameters the simulator and the analytical model consume.
///
/// Every quantity that the paper measured on hardware (Section 3.3, 4.1) is a
/// named parameter here, so the calibration is explicit and auditable; the
/// benchmark curves (Figures 2 and 4, Table 2) are *emergent* from the
/// simulator mechanisms configured by these numbers.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ARCH_MACHINEDESC_H
#define GPUPERF_ARCH_MACHINEDESC_H

#include <string>

namespace gpuperf {

/// GPU generation, in chronological order.
enum class GpuGeneration { GT200, Fermi, Kepler };

/// Returns a human-readable generation name ("Fermi", ...).
const char *generationName(GpuGeneration Gen);

/// Full architecture description of one GPU.
///
/// The first block mirrors the paper's Table 1; the second block holds the
/// microarchitectural timing parameters (reverse-engineered by the paper via
/// assembly-level microbenchmarks) that drive the cycle-level simulator.
struct MachineDesc {
  std::string Name;         ///< Card name, e.g. "GTX580".
  std::string ChipName;     ///< Chip name, e.g. "GF110".
  GpuGeneration Generation = GpuGeneration::Fermi;

  // --- Table 1 quantities -------------------------------------------------
  double CoreClockMHz = 0;
  double ShaderClockMHz = 0;   ///< On Kepler equals the core clock.
  double GlobalMemBandwidthGBs = 0;
  int NumSMs = 0;
  int WarpSchedulersPerSM = 0;
  int DispatchUnitsPerSM = 0;
  int SPsPerSM = 0;
  int LdStUnitsPerSM = 0;      ///< 0 when undocumented (GT200).
  int SharedMemBytesPerSM = 0;
  int RegistersPerSM = 0;      ///< Number of 32-bit registers.
  int MaxRegsPerThread = 0;    ///< ISA encoding limit (63 on Fermi/GK104).
  /// Flops per SP per shader cycle counted by the marketing peak: 2 for
  /// FMA architectures, 3 on GT200 (MAD + MUL dual issue).
  int FlopsPerSPPerCycle = 2;

  // --- Execution-configuration limits --------------------------------------
  int WarpSize = 32;
  int MaxThreadsPerBlock = 1024;
  int MaxThreadsPerSM = 1536;
  int MaxBlocksPerSM = 8;

  // --- Shared memory ---------------------------------------------------
  int SharedMemBanks = 32;
  int SharedMemBankBytes = 4;  ///< Bank word size: 4 on Fermi, 8 on Kepler.

  // --- Register file banking (Section 3.3) ------------------------------
  /// Number of register banks visible to the operand collector; 0 disables
  /// bank-conflict modelling (pre-Kepler operand collectors hide it).
  int RegisterFileBanks = 0;

  // --- Issue/timing calibration (Sections 3.3, 4.1, 4.3) ----------------
  /// Sustained scheduler issue capacity for the math path, in thread
  /// instructions per shader cycle per SM. Fermi: 32 (2 schedulers fully
  /// feed 32 SPs). Kepler GK104: ~132, the paper's measured ceiling, well
  /// below the 192-SP processing throughput.
  double MathIssueSlotsPerCycle = 0;
  /// Peak thread-instruction throughput for the repeated-source-operand
  /// fast path ("FFMA RA,RB,RB,RA" structures); ~178 on Kepler.
  double RepeatedOperandPeak = 0;
  /// Issue-slot multiplier for quarter-rate integer ops (IMUL/IMAD).
  double QuarterRateSlots = 4.0;
  /// Extra issue slots when the destination register is also a source
  /// (accumulator write-back turnaround); reproduces 128.7 vs 132.0.
  double AccumTurnaroundSlots = 0.0;

  /// LDS.X issue throughput in thread instructions per shader cycle per SM
  /// (Section 4.1 measurements).
  double LdsThroughput32 = 0;
  double LdsThroughput64 = 0;
  double LdsThroughput128 = 0;
  /// True when LDS.128 suffers an implicit 2-way bank conflict (Fermi).
  bool Lds128Penalized = false;

  // --- Latencies in shader cycles ----------------------------------------
  int MathLatency = 18;
  int SharedMemLatency = 26;
  int GlobalMemLatency = 400;

  /// Maximum in-flight global memory transactions per SM (MSHR-like limit).
  int MaxGlobalInflightPerSM = 64;

  // --- Derived quantities -------------------------------------------------
  /// Theoretical single-precision peak: 2 flops (FFMA) per SP per shader
  /// cycle over the whole chip, in GFLOPS.
  double theoreticalPeakGflops() const;
  /// Peak thread-instruction processing throughput of the SPs per SM.
  double spProcessingThroughput() const { return SPsPerSM; }
  /// Total warp-instruction issue slots per cycle per SM (dispatch units).
  int warpIssuePerCycle() const { return DispatchUnitsPerSM; }
};

/// GTX280 (GT200). Only used for Table 1 and occupancy comparisons.
const MachineDesc &gt200();
/// GTX580 (Fermi GF110), the paper's primary target.
const MachineDesc &gtx580();
/// GTX680 (Kepler GK104), the paper's secondary target.
const MachineDesc &gtx680();
/// Tesla K20X (Kepler GK110): the paper's Section 1 extension target.
/// Its ISA allows 255 registers per thread and NVIDIA documents ~73%
/// SGEMM efficiency. The issue-path parameters here are a *projection*
/// (the paper did not have the card); they are chosen so the documented
/// efficiency is reachable, and everything downstream treats this machine
/// as an explicitly-labeled extrapolation.
const MachineDesc &teslaK20X();

/// Looks up a built-in machine by card name ("GTX280"/"GTX580"/"GTX680"),
/// case-insensitively; returns nullptr when unknown.
const MachineDesc *findMachine(const std::string &Name);

} // namespace gpuperf

#endif // GPUPERF_ARCH_MACHINEDESC_H
