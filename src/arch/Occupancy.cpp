//===- arch/Occupancy.cpp - active-thread/occupancy calculator ------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "arch/Occupancy.h"

#include <algorithm>
#include <cassert>
#include <climits>

using namespace gpuperf;

const char *gpuperf::occupancyLimitName(OccupancyLimit Limit) {
  switch (Limit) {
  case OccupancyLimit::Registers:
    return "registers";
  case OccupancyLimit::SharedMemory:
    return "shared memory";
  case OccupancyLimit::ThreadsPerSM:
    return "max threads per SM";
  case OccupancyLimit::BlocksPerSM:
    return "max blocks per SM";
  case OccupancyLimit::BlockTooLarge:
    return "block exceeds hardware limits";
  }
  return "unknown";
}

Occupancy gpuperf::computeOccupancy(const MachineDesc &M,
                                    const KernelResources &Res) {
  assert(Res.ThreadsPerBlock > 0 && "empty block");
  Occupancy O;

  if (Res.ThreadsPerBlock > M.MaxThreadsPerBlock ||
      Res.RegsPerThread > M.MaxRegsPerThread ||
      Res.SharedBytesPerBlock > M.SharedMemBytesPerSM) {
    O.Limit = OccupancyLimit::BlockTooLarge;
    return O;
  }

  // Equation (1): T_SM * R_T <= R_SM, applied at block granularity.
  // Unconstrained resources impose no block limit (INT_MAX sentinel).
  int RegsPerBlock = Res.RegsPerThread * Res.ThreadsPerBlock;
  int ByRegs =
      RegsPerBlock > 0 ? M.RegistersPerSM / RegsPerBlock : INT_MAX;
  // Equation (5): Blk * shared-per-block <= Sh_SM.
  int ByShared = Res.SharedBytesPerBlock > 0
                     ? M.SharedMemBytesPerSM / Res.SharedBytesPerBlock
                     : INT_MAX;
  int ByThreads = M.MaxThreadsPerSM / Res.ThreadsPerBlock;
  int ByBlocks = M.MaxBlocksPerSM;

  int Blocks = std::min(std::min(ByRegs, ByShared),
                        std::min(ByThreads, ByBlocks));
  if (Blocks <= 0) {
    O.Limit = OccupancyLimit::BlockTooLarge;
    return O;
  }

  O.ActiveBlocks = Blocks;
  O.ActiveThreads = Blocks * Res.ThreadsPerBlock;
  O.ActiveWarps = O.ActiveThreads / M.WarpSize;

  // Every resource that yields exactly the final block count binds; the
  // reported Limit is the highest-priority one (Registers > SharedMemory
  // > ThreadsPerSM > BlocksPerSM, documented on the enum), so ties are
  // attributed deterministically.
  if (Blocks == ByRegs)
    O.BindingLimits |= occupancyLimitBit(OccupancyLimit::Registers);
  if (Blocks == ByShared)
    O.BindingLimits |= occupancyLimitBit(OccupancyLimit::SharedMemory);
  if (Blocks == ByThreads)
    O.BindingLimits |= occupancyLimitBit(OccupancyLimit::ThreadsPerSM);
  if (Blocks == ByBlocks)
    O.BindingLimits |= occupancyLimitBit(OccupancyLimit::BlocksPerSM);
  for (OccupancyLimit L :
       {OccupancyLimit::Registers, OccupancyLimit::SharedMemory,
        OccupancyLimit::ThreadsPerSM, OccupancyLimit::BlocksPerSM}) {
    if (O.limitBinds(L)) {
      O.Limit = L;
      break;
    }
  }
  return O;
}

std::string gpuperf::occupancyBindingLimitNames(const Occupancy &O) {
  std::string Names;
  for (OccupancyLimit L :
       {OccupancyLimit::Registers, OccupancyLimit::SharedMemory,
        OccupancyLimit::ThreadsPerSM, OccupancyLimit::BlocksPerSM}) {
    if (!O.limitBinds(L))
      continue;
    if (!Names.empty())
      Names += " + ";
    Names += occupancyLimitName(L);
  }
  if (Names.empty())
    Names = occupancyLimitName(O.Limit);
  return Names;
}
