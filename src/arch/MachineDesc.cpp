//===- arch/MachineDesc.cpp - GPU machine descriptions --------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineDesc.h"

#include <algorithm>
#include <cctype>

using namespace gpuperf;

const char *gpuperf::generationName(GpuGeneration Gen) {
  switch (Gen) {
  case GpuGeneration::GT200:
    return "GT200";
  case GpuGeneration::Fermi:
    return "Fermi";
  case GpuGeneration::Kepler:
    return "Kepler";
  }
  return "unknown";
}

double MachineDesc::theoreticalPeakGflops() const {
  return FlopsPerSPPerCycle * SPsPerSM * NumSMs * ShaderClockMHz / 1000.0;
}

static MachineDesc makeGT200() {
  MachineDesc M;
  M.Name = "GTX280";
  M.ChipName = "GT200";
  M.Generation = GpuGeneration::GT200;
  M.CoreClockMHz = 602;
  M.ShaderClockMHz = 1296;
  M.GlobalMemBandwidthGBs = 141.7;
  M.NumSMs = 30;
  M.WarpSchedulersPerSM = 1;
  M.DispatchUnitsPerSM = 1;
  M.SPsPerSM = 8;
  M.LdStUnitsPerSM = 0; // Undocumented for GT200.
  M.SharedMemBytesPerSM = 16 * 1024;
  M.RegistersPerSM = 16 * 1024;
  M.MaxRegsPerThread = 127;
  M.FlopsPerSPPerCycle = 3; // MAD + MUL dual issue.
  M.MaxThreadsPerBlock = 512;
  M.MaxThreadsPerSM = 1024;
  M.MaxBlocksPerSM = 8;
  M.SharedMemBanks = 16;
  M.SharedMemBankBytes = 4;
  // The GT200 scheduler issues one warp instruction per core cycle = 16
  // thread instructions per shader cycle; SPs process 8 per shader cycle.
  M.MathIssueSlotsPerCycle = 16;
  M.RepeatedOperandPeak = 16;
  M.LdsThroughput32 = 8;
  M.LdsThroughput64 = 4;
  M.LdsThroughput128 = 2;
  M.MathLatency = 24;
  M.SharedMemLatency = 36;
  M.GlobalMemLatency = 550;
  return M;
}

static MachineDesc makeGTX580() {
  MachineDesc M;
  M.Name = "GTX580";
  M.ChipName = "GF110";
  M.Generation = GpuGeneration::Fermi;
  M.CoreClockMHz = 772;
  M.ShaderClockMHz = 1544;
  M.GlobalMemBandwidthGBs = 192.4;
  M.NumSMs = 16;
  M.WarpSchedulersPerSM = 2;
  M.DispatchUnitsPerSM = 2;
  M.SPsPerSM = 32;
  M.LdStUnitsPerSM = 16;
  M.SharedMemBytesPerSM = 48 * 1024;
  M.RegistersPerSM = 32 * 1024;
  M.MaxRegsPerThread = 63;
  M.MaxThreadsPerBlock = 1024;
  M.MaxThreadsPerSM = 1536;
  M.MaxBlocksPerSM = 8;
  M.SharedMemBanks = 32;
  M.SharedMemBankBytes = 4;
  M.RegisterFileBanks = 0; // Operand collector hides banking on Fermi.
  // 2 schedulers x 1 warp instruction per shader cycle = 64 issue slots,
  // but the SPs bound the *math* path at 32 thread insts/cycle; the issue
  // surplus is what lets LDS instructions ride along (Section 4.2).
  M.MathIssueSlotsPerCycle = 32;
  M.RepeatedOperandPeak = 32;
  M.AccumTurnaroundSlots = 0.0;
  // Section 4.1: LDS peaks at 16 32-bit ops/cycle/SM; LDS.64 does not
  // increase data throughput; LDS.128 implies a 2-way bank conflict and
  // only reaches 2 thread instructions per cycle.
  M.LdsThroughput32 = 16;
  M.LdsThroughput64 = 8;
  M.LdsThroughput128 = 2;
  M.Lds128Penalized = true;
  M.MathLatency = 18;
  M.SharedMemLatency = 26;
  M.GlobalMemLatency = 400;
  M.MaxGlobalInflightPerSM = 64;
  return M;
}

static MachineDesc makeGTX680() {
  MachineDesc M;
  M.Name = "GTX680";
  M.ChipName = "GK104";
  M.Generation = GpuGeneration::Kepler;
  M.CoreClockMHz = 1006;
  M.ShaderClockMHz = 1006; // Single clock domain on Kepler.
  M.GlobalMemBandwidthGBs = 192.26;
  M.NumSMs = 8;
  M.WarpSchedulersPerSM = 4;
  M.DispatchUnitsPerSM = 8;
  M.SPsPerSM = 192;
  M.LdStUnitsPerSM = 32;
  M.SharedMemBytesPerSM = 48 * 1024;
  M.RegistersPerSM = 64 * 1024;
  M.MaxRegsPerThread = 63;
  M.MaxThreadsPerBlock = 1024;
  M.MaxThreadsPerSM = 2048;
  M.MaxBlocksPerSM = 16;
  M.SharedMemBanks = 32;
  M.SharedMemBankBytes = 8;
  M.RegisterFileBanks = 4; // even0/even1/odd0/odd1 (Section 3.3).
  // Section 3.3: the schedulers sustain only ~132 useful math thread
  // instructions per cycle (vs 192 SPs); repeated-source structures can
  // approach 178.
  M.MathIssueSlotsPerCycle = 132;
  M.RepeatedOperandPeak = 178;
  M.QuarterRateSlots = 132.0 / 33.2;
  M.AccumTurnaroundSlots = 132.0 / 128.7 - 1.0; // ~= 0.0256
  // Section 4.1: 33.1 64-bit LDS operations per cycle; 32-bit LDS halves
  // the data throughput at the same instruction rate; aligned LDS.128 is
  // not penalized (half instruction rate, same data rate).
  M.LdsThroughput32 = 33.1;
  M.LdsThroughput64 = 33.1;
  M.LdsThroughput128 = 16.55;
  M.Lds128Penalized = false;
  M.MathLatency = 9;
  M.SharedMemLatency = 33;
  M.GlobalMemLatency = 300;
  M.MaxGlobalInflightPerSM = 128;
  return M;
}

const MachineDesc &gpuperf::gt200() {
  static const MachineDesc M = makeGT200();
  return M;
}

const MachineDesc &gpuperf::gtx580() {
  static const MachineDesc M = makeGTX580();
  return M;
}

static MachineDesc makeK20X() {
  MachineDesc M;
  M.Name = "K20X";
  M.ChipName = "GK110";
  M.Generation = GpuGeneration::Kepler;
  M.CoreClockMHz = 732;
  M.ShaderClockMHz = 732;
  M.GlobalMemBandwidthGBs = 249.6;
  M.NumSMs = 14;
  M.WarpSchedulersPerSM = 4;
  M.DispatchUnitsPerSM = 8;
  M.SPsPerSM = 192;
  M.LdStUnitsPerSM = 32;
  M.SharedMemBytesPerSM = 48 * 1024;
  M.RegistersPerSM = 64 * 1024;
  M.MaxRegsPerThread = 255; // The GK110 ISA's wider register fields.
  M.MaxThreadsPerBlock = 1024;
  M.MaxThreadsPerSM = 2048;
  M.MaxBlocksPerSM = 16;
  M.SharedMemBanks = 32;
  M.SharedMemBankBytes = 8;
  M.RegisterFileBanks = 4;
  // Projection: GK110's schedulers sustain a higher useful issue rate
  // than GK104's 132 (NVIDIA documents ~73% SGEMM efficiency, which
  // requires roughly 160 thread instructions per cycle at a ~92% FFMA
  // mix).
  M.MathIssueSlotsPerCycle = 160;
  M.RepeatedOperandPeak = 192;
  M.QuarterRateSlots = 160.0 / 40.0;
  M.AccumTurnaroundSlots = 0.02;
  M.LdsThroughput32 = 33.1;
  M.LdsThroughput64 = 33.1;
  M.LdsThroughput128 = 16.55;
  M.MathLatency = 9;
  M.SharedMemLatency = 33;
  M.GlobalMemLatency = 300;
  M.MaxGlobalInflightPerSM = 128;
  return M;
}

const MachineDesc &gpuperf::gtx680() {
  static const MachineDesc M = makeGTX680();
  return M;
}

const MachineDesc &gpuperf::teslaK20X() {
  static const MachineDesc M = makeK20X();
  return M;
}

const MachineDesc *gpuperf::findMachine(const std::string &Name) {
  std::string Upper = Name;
  std::transform(Upper.begin(), Upper.end(), Upper.begin(),
                 [](unsigned char C) { return std::toupper(C); });
  if (Upper == "GTX280" || Upper == "GT200")
    return &gt200();
  if (Upper == "GTX580" || Upper == "GF110" || Upper == "FERMI")
    return &gtx580();
  if (Upper == "GTX680" || Upper == "GK104" || Upper == "KEPLER")
    return &gtx680();
  if (Upper == "K20X" || Upper == "GK110")
    return &teslaK20X();
  return nullptr;
}
