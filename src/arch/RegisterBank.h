//===- arch/RegisterBank.h - Kepler register bank model ---------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 4-bank register file layout the paper reverse-engineered on Kepler
/// GK104 (Section 3.3): registers reside on banks
///   even0: idx%8 <  4 && idx%2 == 0      even1: idx%8 >= 4 && idx%2 == 0
///   odd0:  idx%8 <  4 && idx%2 == 1      odd1:  idx%8 >= 4 && idx%2 == 1
/// FFMA throughput halves when two distinct source registers share a bank
/// and drops to a third when all three sources share one.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ARCH_REGISTERBANK_H
#define GPUPERF_ARCH_REGISTERBANK_H

#include <array>
#include <cassert>
#include <cstdint>

namespace gpuperf {

/// The four operand-collector banks named as in the paper.
enum class RegBank : uint8_t { Even0 = 0, Even1 = 1, Odd0 = 2, Odd1 = 3 };

/// Number of register banks on Kepler GK104.
inline constexpr int NumRegBanks = 4;

/// Maps a register index to its bank (Section 3.3 formula).
inline RegBank registerBank(unsigned RegIndex) {
  bool Odd = (RegIndex % 2) != 0;
  bool High = (RegIndex % 8) >= 4;
  if (!Odd)
    return High ? RegBank::Even1 : RegBank::Even0;
  return High ? RegBank::Odd1 : RegBank::Odd0;
}

/// Bank as a 0..3 index (Even0, Even1, Odd0, Odd1).
inline int registerBankIndex(unsigned RegIndex) {
  return static_cast<int>(registerBank(RegIndex));
}

/// Short name for printing ("E0", "E1", "O0", "O1").
inline const char *registerBankName(RegBank Bank) {
  switch (Bank) {
  case RegBank::Even0:
    return "E0";
  case RegBank::Even1:
    return "E1";
  case RegBank::Odd0:
    return "O0";
  case RegBank::Odd1:
    return "O1";
  }
  return "??";
}

/// Computes the conflict degree of a set of *distinct* source register
/// indices: the maximum number of distinct registers mapped to one bank.
/// 1 means conflict-free; 2 is the paper's "2-way conflict"; etc.
template <typename Range> int bankConflictDegree(const Range &DistinctRegs) {
  std::array<int, NumRegBanks> Load = {0, 0, 0, 0};
  int Max = 0;
  for (unsigned Reg : DistinctRegs) {
    int Bank = registerBankIndex(Reg);
    ++Load[Bank];
    if (Load[Bank] > Max)
      Max = Load[Bank];
  }
  return Max == 0 ? 1 : Max;
}

} // namespace gpuperf

#endif // GPUPERF_ARCH_REGISTERBANK_H
