//===- arch/Occupancy.h - active-thread/occupancy calculator ----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes how many blocks/warps/threads of a kernel can be resident on one
/// SM, per the paper's Equation (1) (register budget), Equation (5) (shared
/// memory budget), and the hardware residency limits. Used both by the
/// launcher (to decide residency during simulation) and by the analytical
/// model (Section 4.3/4.4).
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ARCH_OCCUPANCY_H
#define GPUPERF_ARCH_OCCUPANCY_H

#include "arch/MachineDesc.h"

namespace gpuperf {

/// Per-kernel resource usage relevant to residency.
struct KernelResources {
  int RegsPerThread = 0;
  int SharedBytesPerBlock = 0;
  int ThreadsPerBlock = 0;
};

/// What capped the number of resident blocks.
enum class OccupancyLimit {
  Registers,
  SharedMemory,
  ThreadsPerSM,
  BlocksPerSM,
  BlockTooLarge, ///< Not launchable at all.
};

/// Residency result for one SM.
struct Occupancy {
  int ActiveBlocks = 0;
  int ActiveThreads = 0;
  int ActiveWarps = 0;
  OccupancyLimit Limit = OccupancyLimit::BlocksPerSM;

  bool launchable() const { return ActiveBlocks > 0; }
};

/// Computes SM residency of a kernel with resources \p Res on machine \p M.
Occupancy computeOccupancy(const MachineDesc &M, const KernelResources &Res);

/// Human-readable limit name for reports.
const char *occupancyLimitName(OccupancyLimit Limit);

} // namespace gpuperf

#endif // GPUPERF_ARCH_OCCUPANCY_H
