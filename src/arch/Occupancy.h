//===- arch/Occupancy.h - active-thread/occupancy calculator ----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes how many blocks/warps/threads of a kernel can be resident on one
/// SM, per the paper's Equation (1) (register budget), Equation (5) (shared
/// memory budget), and the hardware residency limits. Used both by the
/// launcher (to decide residency during simulation) and by the analytical
/// model (Section 4.3/4.4).
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ARCH_OCCUPANCY_H
#define GPUPERF_ARCH_OCCUPANCY_H

#include "arch/MachineDesc.h"

#include <string>

namespace gpuperf {

/// Per-kernel resource usage relevant to residency.
struct KernelResources {
  int RegsPerThread = 0;
  int SharedBytesPerBlock = 0;
  int ThreadsPerBlock = 0;
};

/// What capped the number of resident blocks. When several resources
/// yield the same block count, attribution is deterministic with the
/// priority Registers > SharedMemory > ThreadsPerSM > BlocksPerSM (the
/// order the paper discusses them in: Equation (1) first, Equation (5)
/// second, then the hardware residency caps); BindingLimits additionally
/// records every resource that binds.
enum class OccupancyLimit {
  Registers,
  SharedMemory,
  ThreadsPerSM,
  BlocksPerSM,
  BlockTooLarge, ///< Not launchable at all.
};

/// Bitmask positions for Occupancy::BindingLimits.
inline unsigned occupancyLimitBit(OccupancyLimit Limit) {
  return 1u << static_cast<unsigned>(Limit);
}

/// Residency result for one SM.
struct Occupancy {
  int ActiveBlocks = 0;
  int ActiveThreads = 0;
  int ActiveWarps = 0;
  /// The highest-priority binding limit (see OccupancyLimit).
  OccupancyLimit Limit = OccupancyLimit::BlocksPerSM;
  /// Every limit that binds (yields exactly ActiveBlocks), as a bitmask
  /// of occupancyLimitBit values. Ties are common -- e.g. a register
  /// budget that lands exactly on the thread cap -- and a tuner that
  /// only sees one of two binding resources will chase the wrong knob.
  unsigned BindingLimits = 0;

  bool launchable() const { return ActiveBlocks > 0; }
  /// True when \p L binds the block count.
  bool limitBinds(OccupancyLimit L) const {
    return (BindingLimits & occupancyLimitBit(L)) != 0;
  }
};

/// Computes SM residency of a kernel with resources \p Res on machine \p M.
Occupancy computeOccupancy(const MachineDesc &M, const KernelResources &Res);

/// Human-readable limit name for reports.
const char *occupancyLimitName(OccupancyLimit Limit);

/// Renders every binding limit, e.g. "registers + max threads per SM".
std::string occupancyBindingLimitNames(const Occupancy &O);

} // namespace gpuperf

#endif // GPUPERF_ARCH_OCCUPANCY_H
