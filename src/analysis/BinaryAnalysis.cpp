//===- analysis/BinaryAnalysis.cpp - static kernel analyses ---------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "analysis/BinaryAnalysis.h"

#include "arch/RegisterBank.h"
#include "support/Format.h"

using namespace gpuperf;

InstructionMix gpuperf::analyzeInstructionMix(const Kernel &K) {
  InstructionMix Mix;
  for (const Instruction &I : K.Code) {
    ++Mix.Total;
    ++Mix.ByOpcode[static_cast<size_t>(I.Op)];
    switch (opcodeInfo(I.Op).Class) {
    case OpClass::FloatMath:
      ++Mix.FloatMath;
      break;
    case OpClass::IntMath:
    case OpClass::IntMulMath:
      ++Mix.IntMath;
      break;
    case OpClass::SharedMem:
      ++Mix.SharedMem;
      break;
    case OpClass::GlobalMem:
      ++Mix.GlobalMem;
      break;
    case OpClass::Control:
      ++Mix.Control;
      break;
    case OpClass::Move:
      ++Mix.Move;
      break;
    }
  }
  return Mix;
}

FfmaConflictCensus gpuperf::analyzeFfmaConflicts(const Kernel &K) {
  FfmaConflictCensus Census;
  for (const Instruction &I : K.Code) {
    if (I.Op != Opcode::FFMA)
      continue;
    ++Census.Ffma;
    RegList Distinct;
    for (int Slot = 0; Slot < 3; ++Slot) {
      uint8_t Reg = I.Src[Slot];
      if (Reg != RegRZ && !Distinct.contains(Reg))
        Distinct.push(Reg);
    }
    switch (bankConflictDegree(Distinct)) {
    case 1:
      ++Census.NoConflict;
      break;
    case 2:
      ++Census.TwoWay;
      break;
    default:
      ++Census.ThreeWay;
      break;
    }
  }
  return Census;
}

std::string gpuperf::renderKernelReport(const Kernel &K) {
  InstructionMix Mix = analyzeInstructionMix(K);
  FfmaConflictCensus Census = analyzeFfmaConflicts(K);
  std::string Out;
  Out += formatString("kernel %s: %d instructions, %d registers/thread, "
                      "%d bytes shared\n",
                      K.Name.c_str(), Mix.Total, K.RegsPerThread,
                      K.SharedBytes);
  Out += formatString("  mix: %.1f%% FFMA, %d LDS.X, %d global, %d int, "
                      "%d move, %d control\n",
                      Mix.ffmaPercent(), Mix.SharedMem, Mix.GlobalMem,
                      Mix.IntMath, Mix.Move, Mix.Control);
  Out += formatString("  FFMA bank conflicts: %.1f%% none, %.1f%% 2-way, "
                      "%.1f%% 3-way\n",
                      Census.noConflictPercent(), Census.twoWayPercent(),
                      Census.threeWayPercent());
  return Out;
}
