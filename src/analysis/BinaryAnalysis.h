//===- analysis/BinaryAnalysis.h - static kernel analyses -------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analyses over kernel binaries, mirroring what the paper did to
/// the MAGMA/CUBLAS cubins with its disassembler: instruction-mix
/// statistics (Section 4's "80.5% of instructions executed are FFMA") and
/// the FFMA register-bank-conflict census of Figure 8.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ANALYSIS_BINARYANALYSIS_H
#define GPUPERF_ANALYSIS_BINARYANALYSIS_H

#include "isa/Module.h"

#include <array>

namespace gpuperf {

/// Static instruction mix of a kernel.
struct InstructionMix {
  int Total = 0;
  std::array<int, static_cast<size_t>(Opcode::NumOpcodes)> ByOpcode = {};
  int FloatMath = 0;
  int IntMath = 0; ///< Including quarter-rate multiplies.
  int SharedMem = 0;
  int GlobalMem = 0;
  int Control = 0;
  int Move = 0;

  int count(Opcode Op) const {
    return ByOpcode[static_cast<size_t>(Op)];
  }
  double percent(Opcode Op) const {
    return Total ? 100.0 * count(Op) / Total : 0.0;
  }
  double ffmaPercent() const { return percent(Opcode::FFMA); }
};

/// Computes the static mix of \p K.
InstructionMix analyzeInstructionMix(const Kernel &K);

/// The Figure 8 census: how many FFMA instructions have conflict-free,
/// 2-way-conflicted, or 3-way-conflicted source-register banks.
struct FfmaConflictCensus {
  int Ffma = 0;
  int NoConflict = 0;
  int TwoWay = 0;
  int ThreeWay = 0;

  double noConflictPercent() const {
    return Ffma ? 100.0 * NoConflict / Ffma : 0.0;
  }
  double twoWayPercent() const {
    return Ffma ? 100.0 * TwoWay / Ffma : 0.0;
  }
  double threeWayPercent() const {
    return Ffma ? 100.0 * ThreeWay / Ffma : 0.0;
  }
};

/// Runs the census over \p K's static code.
FfmaConflictCensus analyzeFfmaConflicts(const Kernel &K);

/// Renders a short human-readable report of both analyses.
std::string renderKernelReport(const Kernel &K);

} // namespace gpuperf

#endif // GPUPERF_ANALYSIS_BINARYANALYSIS_H
