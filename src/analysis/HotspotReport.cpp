//===- analysis/HotspotReport.cpp - annotated per-PC profiles -------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "analysis/HotspotReport.h"

#include "asmtool/Disassembler.h"
#include "model/UpperBound.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <set>

using namespace gpuperf;

std::vector<HotRegion> gpuperf::findHotRegions(const Kernel &K,
                                               const KernelProfile &P) {
  std::set<std::pair<int, int>> Spans;
  for (size_t Idx = 0; Idx < K.Code.size(); ++Idx) {
    const Instruction &I = K.Code[Idx];
    if (I.Op != Opcode::BRA)
      continue;
    int Target = static_cast<int>(Idx) + 1 + I.Imm;
    if (Target < 0 || Target > static_cast<int>(Idx))
      continue; // Forward branch (or out of range): not a loop.
    Spans.insert({Target, static_cast<int>(Idx)});
  }
  std::vector<HotRegion> Regions;
  for (auto [Begin, End] : Spans) {
    HotRegion R;
    R.Begin = Begin;
    R.End = End;
    if (!P.empty())
      for (int PC = Begin; PC <= End; ++PC)
        R.Totals.add(P.at(static_cast<size_t>(PC)));
    Regions.push_back(R);
  }
  return Regions;
}

namespace {

/// The cause losing the most slots at one PC ("-" when nothing lost).
const char *topLossName(const PCCounters &C) {
  size_t BestU = 0;
  uint64_t BestN = 0;
  for (size_t U = 0; U < NumSlotUses; ++U)
    if (U != static_cast<size_t>(SlotUse::Issued) &&
        C.StallSlots[U] > BestN) {
      BestN = C.StallSlots[U];
      BestU = U;
    }
  return BestN ? slotUseName(static_cast<SlotUse>(BestU)) : "-";
}

/// FFMA warp-instruction issues inside [Begin, End].
uint64_t regionFfmaIssues(const Kernel &K, const KernelProfile &P,
                          int Begin, int End) {
  uint64_t N = 0;
  for (int PC = Begin; PC <= End; ++PC)
    if (K.Code[PC].Op == Opcode::FFMA)
      N += P.at(static_cast<size_t>(PC)).Issues;
  return N;
}

} // namespace

std::string gpuperf::renderAnnotatedReport(const MachineDesc &M,
                                           const Kernel &K,
                                           const KernelProfile &P) {
  KernelListing Listing = listKernel(K);
  StallBreakdown B = P.breakdown();
  uint64_t TotalSlots = B.total();
  uint64_t LostSlots = B.lost();
  double S = std::max(1, M.WarpSchedulersPerSM);

  std::string Out;
  Out += formatString("profile: kernel '%s' on %s\n", K.Name.c_str(),
                      M.Name.c_str());
  Out += formatString(
      "  issue slots: %llu total, %llu issued (%.1f%%), %llu lost\n",
      static_cast<unsigned long long>(TotalSlots),
      static_cast<unsigned long long>(B[SlotUse::Issued]),
      TotalSlots ? 100.0 * B[SlotUse::Issued] / TotalSlots : 0.0,
      static_cast<unsigned long long>(LostSlots));
  Out += formatString(
      "  warp instructions: %llu (%llu as dual-issue pair seconds), "
      "replay penalties: %llu\n\n",
      static_cast<unsigned long long>(P.totalIssues()),
      static_cast<unsigned long long>(P.totalDualIssues()),
      static_cast<unsigned long long>(P.totalReplays()));

  Out += formatString("  %5s %10s %8s %8s %10s %6s  %-14s %s\n", "PC",
                      "issues", "dual", "replays", "lost", "lost%",
                      "top cause", "instruction");
  for (size_t PC = 0; PC < P.codeSize(); ++PC) {
    const PCCounters &C = P.at(PC);
    if (!Listing.Labels[PC].empty())
      Out += Listing.Labels[PC] + ":\n";
    uint64_t Lost = C.lostSlots();
    Out += formatString(
        "  %5zu %10llu %8llu %8llu %10llu %5.1f%%  %-14s %s\n", PC,
        static_cast<unsigned long long>(C.Issues),
        static_cast<unsigned long long>(C.DualIssues),
        static_cast<unsigned long long>(C.Replays),
        static_cast<unsigned long long>(Lost),
        LostSlots ? 100.0 * static_cast<double>(Lost) /
                        static_cast<double>(LostSlots)
                  : 0.0,
        topLossName(C), Listing.Lines[PC].c_str());
  }
  if (P.noPC().lostSlots() > 0)
    Out += formatString(
        "  %5s %10s %8s %8s %10llu %5.1f%%  %-14s %s\n", "-", "-", "-",
        "-", static_cast<unsigned long long>(P.noPC().lostSlots()),
        LostSlots ? 100.0 * static_cast<double>(P.noPC().lostSlots()) /
                        static_cast<double>(LostSlots)
                  : 0.0,
        topLossName(P.noPC()),
        "(no attributable instruction: drained schedulers)");

  // Loop regions: achieved vs the structural issue bound of exactly the
  // region's instructions.
  std::vector<HotRegion> Regions = findHotRegions(K, P);
  for (const HotRegion &R : Regions) {
    RegionIssueBound Bound = regionIssueBound(M, K, R.Begin, R.End);
    std::string Name = !Listing.Labels[R.Begin].empty()
                           ? Listing.Labels[R.Begin]
                           : formatString("PC%d", R.Begin);
    Out += formatString("\nloop %s [%d..%d], %d instructions:\n",
                        Name.c_str(), R.Begin, R.End, R.numInsts());
    uint64_t T = R.totalSlots();
    Out += formatString(
        "  slots: %llu (%.1f%% of launch); issued %.1f%%",
        static_cast<unsigned long long>(T),
        TotalSlots ? 100.0 * static_cast<double>(T) /
                         static_cast<double>(TotalSlots)
                   : 0.0,
        100.0 * R.issueEfficiency());
    for (size_t U = 0; U < NumSlotUses; ++U) {
      if (U == static_cast<size_t>(SlotUse::Issued))
        continue;
      double Share = R.slotShare(static_cast<SlotUse>(U));
      if (Share > 0)
        Out += formatString(", %s %.1f%%",
                            slotUseName(static_cast<SlotUse>(U)),
                            100.0 * Share);
    }
    Out += "\n";
    // Cycles attributed to the region: its slots divided by the slots
    // the SM's schedulers produce per cycle.
    double Cycles = static_cast<double>(T) / S;
    double AchievedWIPC =
        Cycles > 0 ? static_cast<double>(R.Totals.Issues) / Cycles : 0.0;
    uint64_t Ffma = regionFfmaIssues(K, P, R.Begin, R.End);
    double AchievedFfma =
        Cycles > 0 ? static_cast<double>(Ffma) * WarpSize / Cycles : 0.0;
    Out += formatString(
        "  achieved: %.2f warp insts/cycle, FFMA density %.1f thread "
        "insts/cycle, issue efficiency %.1f%%\n",
        AchievedWIPC, AchievedFfma, 100.0 * R.issueEfficiency());
    Out += formatString(
        "  bound (%s-bound): %.2f warp insts/cycle, FFMA density %.1f, "
        "issue-slot need %.1f%%\n",
        Bound.BindingResource, Bound.WarpInstsPerCycle,
        Bound.FfmaThreadInstsPerCycle, 100.0 * Bound.IssueSlotFraction);
    if (Bound.FfmaThreadInstsPerCycle > 0)
      Out += formatString(
          "  achieved/bound FFMA density: %.1f%%\n",
          100.0 * AchievedFfma / Bound.FfmaThreadInstsPerCycle);
  }
  return Out;
}

std::string gpuperf::profileRecordJson(const MachineDesc &M,
                                       const Kernel &K,
                                       const KernelProfile &P,
                                       const ProfileRecordInfo &Info) {
  KernelListing Listing = listKernel(K);
  StallBreakdown B = P.breakdown();
  JsonWriter W;
  W.beginObject();
  W.kv("schema_version", MetricsSchemaVersion);
  W.kv("record", "profile");
  W.kv("machine", M.Name);
  W.kv("kernel", K.Name);
  W.key("config");
  W.beginObject();
  W.kv("grid", formatString("%dx%d", Info.GridX, Info.GridY));
  W.kv("block", formatString("%dx%d", Info.BlockX, Info.BlockY));
  if (!Info.Schedule.empty())
    W.kv("schedule", Info.Schedule);
  W.kv("regs", K.RegsPerThread);
  W.kv("shared", K.SharedBytes);
  W.endObject();
  W.key("cycles");
  W.value(Info.TotalCycles, 1);
  W.key("totals");
  W.beginObject();
  W.kv("warp_insts", P.totalIssues());
  W.kv("dual_issues", P.totalDualIssues());
  W.kv("replays", P.totalReplays());
  W.key("issue_slots");
  W.beginObject();
  for (size_t U = 0; U < NumSlotUses; ++U)
    W.kv(slotUseName(static_cast<SlotUse>(U)), B.Slots[U]);
  W.endObject();
  W.endObject();
  W.key("pcs");
  W.beginArray();
  for (size_t PC = 0; PC < P.codeSize(); ++PC) {
    const PCCounters &C = P.at(PC);
    W.beginObject();
    W.kv("pc", static_cast<uint64_t>(PC));
    W.kv("text", Listing.Lines[PC]);
    W.kv("issues", C.Issues);
    W.kv("dual_issues", C.DualIssues);
    W.kv("replays", C.Replays);
    W.key("stalls");
    W.beginObject();
    for (size_t U = 0; U < NumSlotUses; ++U) {
      if (U == static_cast<size_t>(SlotUse::Issued))
        continue;
      if (C.StallSlots[U])
        W.kv(slotUseName(static_cast<SlotUse>(U)), C.StallSlots[U]);
    }
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.key("no_pc");
  W.beginObject();
  for (size_t U = 0; U < NumSlotUses; ++U) {
    if (U == static_cast<size_t>(SlotUse::Issued))
      continue;
    if (P.noPC().StallSlots[U])
      W.kv(slotUseName(static_cast<SlotUse>(U)),
           P.noPC().StallSlots[U]);
  }
  W.endObject();
  W.key("regions");
  W.beginArray();
  for (const HotRegion &R : findHotRegions(K, P)) {
    RegionIssueBound Bound = regionIssueBound(M, K, R.Begin, R.End);
    W.beginObject();
    W.kv("begin", R.Begin);
    W.kv("end", R.End);
    W.kv("issues", R.Totals.Issues);
    W.kv("dual_issues", R.Totals.DualIssues);
    W.kv("replays", R.Totals.Replays);
    W.kv("issued_slots", R.issuedSlots());
    W.kv("total_slots", R.totalSlots());
    W.key("stalls");
    W.beginObject();
    for (size_t U = 0; U < NumSlotUses; ++U) {
      if (U == static_cast<size_t>(SlotUse::Issued))
        continue;
      if (R.Totals.StallSlots[U])
        W.kv(slotUseName(static_cast<SlotUse>(U)),
             R.Totals.StallSlots[U]);
    }
    W.endObject();
    W.key("bound");
    W.beginObject();
    W.kv("binding", Bound.BindingResource);
    W.key("warp_insts_per_cycle");
    W.value(Bound.WarpInstsPerCycle, 3);
    W.key("ffma_fraction");
    W.value(Bound.FfmaFraction, 4);
    W.key("ffma_density");
    W.value(Bound.FfmaThreadInstsPerCycle, 2);
    W.key("issue_slot_fraction");
    W.value(Bound.IssueSlotFraction, 4);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}
