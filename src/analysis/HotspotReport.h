//===- analysis/HotspotReport.h - annotated per-PC profiles -----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a KernelProfile into something a human (or perfdiff) can act on:
/// a perf-annotate-style listing joining the per-PC counters with the
/// disassembly, loop (back-edge) region detection, per-region
/// achieved-vs-bound comparison against model/UpperBound's region issue
/// bound, and a versioned JSON record. This is the layer that converts
/// the paper's whole-kernel bound argument (Figure 2, Table 2) into
/// per-loop explanations: which instructions of the main loop lose the
/// slots the bound says are available, and to which cause.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ANALYSIS_HOTSPOTREPORT_H
#define GPUPERF_ANALYSIS_HOTSPOTREPORT_H

#include "arch/MachineDesc.h"
#include "isa/Module.h"
#include "sim/Profile.h"

#include <string>
#include <vector>

namespace gpuperf {

/// One static loop region: the body of a backward branch, [Begin, End]
/// inclusive, with the profile counters of its instructions summed.
struct HotRegion {
  int Begin = 0; ///< First PC of the region (the back edge's target).
  int End = 0;   ///< Last PC (the backward BRA itself).
  PCCounters Totals;

  int numInsts() const { return End - Begin + 1; }
  /// Scheduler slots spent issuing region instructions (dual-issue pairs
  /// share one slot).
  uint64_t issuedSlots() const { return Totals.issuedSlots(); }
  /// All slots attributed to the region: issued plus lost.
  uint64_t totalSlots() const {
    return Totals.issuedSlots() + Totals.lostSlots();
  }
  /// Fraction of the region's slots lost to \p Use.
  double slotShare(SlotUse Use) const {
    uint64_t T = totalSlots();
    return T ? static_cast<double>(
                   Totals.StallSlots[static_cast<size_t>(Use)]) /
                   static_cast<double>(T)
             : 0.0;
  }
  /// Fraction of the region's slots that issued instructions.
  double issueEfficiency() const {
    uint64_t T = totalSlots();
    return T ? static_cast<double>(issuedSlots()) / static_cast<double>(T)
             : 0.0;
  }
};

/// Detects loop regions: one per distinct backward branch in \p K
/// (target PC <= branch PC), sorted by Begin, counters aggregated from
/// \p P. Nested loops yield nested regions; each is reported
/// independently.
std::vector<HotRegion> findHotRegions(const Kernel &K,
                                      const KernelProfile &P);

/// Renders the perf-annotate-style report: a header with launch totals,
/// one row per static instruction (issues, dual issues, replays, lost
/// slots with their top cause, share of all lost slots) joined with the
/// disassembly listing, then one summary block per loop region with
/// per-cause shares and the achieved-vs-bound FFMA density and
/// issue-slot efficiency from model/UpperBound's regionIssueBound.
std::string renderAnnotatedReport(const MachineDesc &M, const Kernel &K,
                                  const KernelProfile &P);

/// Launch facts the JSON record carries beyond the profile itself.
struct ProfileRecordInfo {
  std::string Schedule; ///< "drip" / "list" / "" (not schedule-generated).
  int GridX = 1, GridY = 1;
  int BlockX = 1, BlockY = 1;
  double TotalCycles = 0; ///< LaunchResult::TotalCycles.
};

/// Emits the versioned machine-readable profile record (schema_version,
/// record type, machine and kernel identity, launch config, totals,
/// per-PC counters, loop regions with bounds). perfdiff compares two of
/// these; the schema_version and machine fields are what let it refuse
/// cross-schema or cross-machine comparisons.
std::string profileRecordJson(const MachineDesc &M, const Kernel &K,
                              const KernelProfile &P,
                              const ProfileRecordInfo &Info);

/// The profile record schema emitted by profileRecordJson (bumped on
/// incompatible shape changes; shared by the bench records of
/// bench/BenchUtil.h).
inline constexpr int MetricsSchemaVersion = 1;

} // namespace gpuperf

#endif // GPUPERF_ANALYSIS_HOTSPOTREPORT_H
