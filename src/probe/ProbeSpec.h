//===- probe/ProbeSpec.h - declarative probe definitions --------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative half of the probe engine: a small text format in which
/// users describe counters, per-key maps, and watchpoints over simulation
/// events, evaluated at runtime -- no recompile. PRs 3 and 5 each
/// hard-coded one observability question (stall attribution, per-PC
/// profiles) as bespoke C++; a probe spec asks a new one per run:
///
///   # bytes moved from global memory, split by access width
///   probe gmem_bytes {
///     event mem_access
///     aggregation sum
///     value bytes
///     key width
///     filter space == global
///   }
///
/// One `probe NAME { ... }` block per probe. Directives (separated by
/// newlines or `;`):
///   event EVENT          which simulation event feeds the probe (required)
///   aggregation AGG      count | sum | min | max | watch (required)
///   value FIELD          the aggregated field (required for sum/min/max,
///                        rejected for count/watch -- watch always
///                        aggregates the earliest matching cycle)
///   key FIELD            split the aggregate into a per-key map
///   filter FIELD OP VAL  only aggregate matching events (repeatable;
///                        OP is == != < <= > >=; VAL is an integer or a
///                        symbolic name resolved per field: opcode
///                        mnemonics, opcode class names, shared/global,
///                        SlotUse cause names, b32/b64/b128 widths)
///
/// `#` starts a comment. Parse and validation errors carry
/// file:line:column diagnostics; duplicate probe names and unknown
/// event/aggregation/field names are errors (the CLIs exit 2 on them).
///
/// Every aggregation is commutative and associative over integers, which
/// is what makes probe results merge-order independent -- the determinism
/// argument in DESIGN.md section 14.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_PROBE_PROBESPEC_H
#define GPUPERF_PROBE_PROBESPEC_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpuperf {

/// Simulation events a probe can attach to. Fired by the SM simulator at
/// the same points Stats/Profile/Trace already observe.
enum class ProbeEvent : uint8_t {
  InstIssued,     ///< A warp instruction issued (dual-issue seconds too).
  PCReached,      ///< Alias view of InstIssued for watchpoint phrasing:
                  ///< "when did PC 42 first execute".
  MemAccess,      ///< A shared or global memory instruction issued.
  Replay,         ///< A Kepler mis-hint replay penalty was charged.
  BankConflict,   ///< A shared access serialized beyond the allowance.
  SlotLost,       ///< A scheduler issue slot was lost to some cause.
  BlockScheduled, ///< A block became resident on an SM (wave start).
  BlockDrained,   ///< The last live warp of a block exited.
  WarpExit,       ///< A warp executed EXIT.
};
inline constexpr size_t NumProbeEvents = 9;

/// Integer-valued fields of a fired event. Which fields an event carries
/// is event-specific (probeEventFields); referencing a field the event
/// does not carry is a spec validation error.
enum class ProbeField : uint8_t {
  PC,            ///< Static instruction index.
  Op,            ///< Opcode (filter against mnemonics: FFMA, LDS, ...).
  Class,         ///< Opcode class (float_math, shared_mem, ...).
  Lanes,         ///< Active lanes of the issuing warp.
  Block,         ///< Linear block id.
  Warp,          ///< Warp index within its block.
  Cycle,         ///< SM-launch-timeline cycle (wave offset included).
  Dual,          ///< 1 when the instruction rode a dual-issue second slot.
  Space,         ///< Memory space: shared (0) or global (1).
  Width,         ///< Access width in bits: 32, 64, 128 (b32/b64/b128).
  Bytes,         ///< Bytes moved (global: 128B segments; shared: lanes x
                 ///< access width).
  Transactions,  ///< Coalesced 128-byte transactions (global only).
  Serialization, ///< Bank-serialization factor of the conflicting access.
  Cause,         ///< SlotUse cause name (scoreboard, barrier, ...).
  Slots,         ///< Issue slots lost in this event.
  Insts,         ///< Warp instructions issued over the warp's lifetime.
};
inline constexpr size_t NumProbeFields = 16;

/// How matching events are folded into the probe's accumulator. All five
/// are commutative + associative, so per-SM partial results merge to the
/// same value in any order (the --jobs determinism guarantee).
enum class ProbeAgg : uint8_t {
  Count, ///< Number of matching events.
  Sum,   ///< Sum of the value field.
  Min,   ///< Minimum of the value field.
  Max,   ///< Maximum of the value field.
  Watch, ///< Earliest cycle a matching event fired (a watchpoint).
};

/// Filter comparison operators.
enum class ProbeCmp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// One `filter FIELD OP VALUE` clause.
struct ProbeFilter {
  ProbeField Field = ProbeField::PC;
  ProbeCmp Cmp = ProbeCmp::Eq;
  int64_t Value = 0;
};

/// One parsed `probe NAME { ... }` block.
struct ProbeSpec {
  std::string Name;
  ProbeEvent Event = ProbeEvent::InstIssued;
  ProbeAgg Agg = ProbeAgg::Count;
  bool HasValue = false;
  ProbeField Value = ProbeField::PC; ///< Valid when HasValue.
  bool HasKey = false;
  ProbeField Key = ProbeField::PC; ///< Valid when HasKey.
  std::vector<ProbeFilter> Filters;
};

/// Stable names used in specs, reports and JSON records.
const char *probeEventName(ProbeEvent E);
const char *probeFieldName(ProbeField F);
const char *probeAggName(ProbeAgg A);

/// Bitmask (1 << field) of the fields \p E carries.
uint32_t probeEventFields(ProbeEvent E);

/// Renders a key value symbolically when the field has names (opcode
/// mnemonics, class/cause/space names, bNN widths), else in decimal.
std::string renderProbeKey(ProbeField F, int64_t V);

/// Parses \p Text as a probe spec file. \p FileName is used only in
/// diagnostics, which carry file:line:column positions. Fails on syntax
/// errors, unknown event/aggregation/field names, field-event
/// mismatches, missing/duplicate directives, and duplicate probe names.
Expected<std::vector<ProbeSpec>> parseProbeSpecs(std::string_view Text,
                                                 std::string_view FileName);

/// Reads and parses the spec file at \p Path (diagnostics name the
/// path). The single entry point behind every --probe flag.
Expected<std::vector<ProbeSpec>> loadProbeSpecFile(const std::string &Path);

} // namespace gpuperf

#endif // GPUPERF_PROBE_PROBESPEC_H
