//===- probe/ProbeEngine.cpp - runtime probe evaluation -------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "probe/ProbeEngine.h"

#include "support/Format.h"
#include "support/Json.h"

#include <atomic>
#include <cassert>
#include <mutex>

using namespace gpuperf;

int64_t ProbeEventRecord::get(ProbeField F) const {
  switch (F) {
  case ProbeField::PC:
    return PC;
  case ProbeField::Op:
    return Op;
  case ProbeField::Class:
    return Class;
  case ProbeField::Lanes:
    return Lanes;
  case ProbeField::Block:
    return Block;
  case ProbeField::Warp:
    return Warp;
  case ProbeField::Cycle:
    return Cycle;
  case ProbeField::Dual:
    return Dual;
  case ProbeField::Space:
    return Space;
  case ProbeField::Width:
    return Width;
  case ProbeField::Bytes:
    return Bytes;
  case ProbeField::Transactions:
    return Transactions;
  case ProbeField::Serialization:
    return Serialization;
  case ProbeField::Cause:
    return Cause;
  case ProbeField::Slots:
    return Slots;
  case ProbeField::Insts:
    return Insts;
  }
  return 0;
}

ProbeEngine::ProbeEngine(std::vector<ProbeSpec> S) : Specs(std::move(S)) {
  States.resize(Specs.size());
  for (const ProbeSpec &P : Specs) {
    Wanted[static_cast<size_t>(P.Event)] = true;
    // PCReached rides InstIssued records: firing sites only ever check
    // wants(InstIssued).
    if (P.Event == ProbeEvent::PCReached)
      Wanted[static_cast<size_t>(ProbeEvent::InstIssued)] = true;
  }
}

namespace {

bool matchCmp(ProbeCmp C, int64_t L, int64_t R) {
  switch (C) {
  case ProbeCmp::Eq:
    return L == R;
  case ProbeCmp::Ne:
    return L != R;
  case ProbeCmp::Lt:
    return L < R;
  case ProbeCmp::Le:
    return L <= R;
  case ProbeCmp::Gt:
    return L > R;
  case ProbeCmp::Ge:
    return L >= R;
  }
  return false;
}

void fold(ProbeAgg Agg, ProbeAccum &A, int64_t V) {
  ++A.Count;
  switch (Agg) {
  case ProbeAgg::Count:
    break;
  case ProbeAgg::Sum:
    A.Value += V;
    A.Seen = true;
    break;
  case ProbeAgg::Min:
  case ProbeAgg::Watch: // Watch is min over the event's cycle.
    if (!A.Seen || V < A.Value)
      A.Value = V;
    A.Seen = true;
    break;
  case ProbeAgg::Max:
    if (!A.Seen || V > A.Value)
      A.Value = V;
    A.Seen = true;
    break;
  }
}

void foldMerge(ProbeAgg Agg, ProbeAccum &A, const ProbeAccum &B) {
  A.Count += B.Count;
  if (!B.Seen)
    return;
  switch (Agg) {
  case ProbeAgg::Count:
    break;
  case ProbeAgg::Sum:
    A.Value += B.Value;
    break;
  case ProbeAgg::Min:
  case ProbeAgg::Watch:
    if (!A.Seen || B.Value < A.Value)
      A.Value = B.Value;
    break;
  case ProbeAgg::Max:
    if (!A.Seen || B.Value > A.Value)
      A.Value = B.Value;
    break;
  }
  A.Seen = true;
}

/// The aggregated payload: what count aggregates is the count itself.
int64_t foldInput(const ProbeSpec &S, const ProbeEventRecord &R) {
  switch (S.Agg) {
  case ProbeAgg::Count:
    return 0;
  case ProbeAgg::Watch:
    return R.Cycle;
  case ProbeAgg::Sum:
  case ProbeAgg::Min:
  case ProbeAgg::Max:
    return R.get(S.Value);
  }
  return 0;
}

} // namespace

void ProbeEngine::fire(ProbeEvent E, const ProbeEventRecord &Raw) {
  ProbeEventRecord R = Raw;
  R.Cycle += static_cast<int64_t>(WaveCycleOffset);
  for (size_t I = 0; I < Specs.size(); ++I) {
    const ProbeSpec &S = Specs[I];
    bool Listens = S.Event == E || (S.Event == ProbeEvent::PCReached &&
                                    E == ProbeEvent::InstIssued);
    if (!Listens)
      continue;
    bool Pass = true;
    for (const ProbeFilter &F : S.Filters)
      if (!matchCmp(F.Cmp, R.get(F.Field), F.Value)) {
        Pass = false;
        break;
      }
    if (!Pass)
      continue;
    int64_t V = foldInput(S, R);
    fold(S.Agg, States[I].Total, V);
    if (S.HasKey)
      fold(S.Agg, States[I].Keys[R.get(S.Key)], V);
  }
}

void ProbeEngine::merge(const ProbeEngine &Other) {
  assert(Specs.size() == Other.Specs.size() &&
         "merging probe engines with different specs");
  for (size_t I = 0; I < Specs.size(); ++I) {
    const ProbeAgg Agg = Specs[I].Agg;
    foldMerge(Agg, States[I].Total, Other.States[I].Total);
    for (const auto &[Key, Acc] : Other.States[I].Keys)
      foldMerge(Agg, States[I].Keys[Key], Acc);
  }
}

const ProbeState *ProbeEngine::stateByName(std::string_view Name) const {
  for (size_t I = 0; I < Specs.size(); ++I)
    if (Specs[I].Name == Name)
      return &States[I];
  return nullptr;
}

std::string ProbeEngine::report() const {
  std::string Out;
  for (size_t I = 0; I < Specs.size(); ++I) {
    const ProbeSpec &S = Specs[I];
    const ProbeState &St = States[I];
    Out += formatString("probe %s: event=%s aggregation=%s count=%llu",
                        S.Name.c_str(), probeEventName(S.Event),
                        probeAggName(S.Agg),
                        static_cast<unsigned long long>(St.Total.Count));
    if (S.Agg != ProbeAgg::Count) {
      if (St.Total.Seen)
        Out += formatString(" value=%lld",
                            static_cast<long long>(St.Total.Value));
      else
        Out += " value=-"; // min/max/watch with no matching event
    }
    Out += "\n";
    for (const auto &[Key, Acc] : St.Keys) {
      Out += formatString(
          "  key %s: count=%llu",
          renderProbeKey(S.HasKey ? S.Key : ProbeField::PC, Key).c_str(),
          static_cast<unsigned long long>(Acc.Count));
      if (S.Agg != ProbeAgg::Count)
        Out += formatString(" value=%lld",
                            static_cast<long long>(Acc.Value));
      Out += "\n";
    }
  }
  return Out;
}

void ProbeEngine::writeProbesValue(JsonWriter &W) const {
  W.beginObject();
  W.kv("version", ProbesObjectVersion);
  for (size_t I = 0; I < Specs.size(); ++I) {
    const ProbeSpec &S = Specs[I];
    const ProbeState &St = States[I];
    W.key(S.Name);
    W.beginObject();
    W.kv("event", probeEventName(S.Event));
    W.kv("aggregation", probeAggName(S.Agg));
    W.kv("count", St.Total.Count);
    // "value" is emitted whenever defined: always for count (the count
    // itself) and sum (empty sum is 0); for min/max/watch only once an
    // event matched -- so a probe that stops matching shows up as a
    // missing key in perfdiff, not a fake 0.
    if (S.Agg == ProbeAgg::Count)
      W.kv("value", St.Total.Count);
    else if (S.Agg == ProbeAgg::Sum || St.Total.Seen)
      W.kv("value", St.Total.Value);
    if (S.HasKey) {
      W.key("keys");
      W.beginObject();
      for (const auto &[Key, Acc] : St.Keys) {
        W.key(renderProbeKey(S.Key, Key));
        if (S.Agg == ProbeAgg::Count)
          W.value(Acc.Count);
        else
          W.value(Acc.Value);
      }
      W.endObject();
    }
    W.endObject();
  }
  W.endObject();
}

std::string gpuperf::probeRecordJson(const ProbeEngine &E, int SchemaVersion,
                                     const std::string &Machine,
                                     const std::string &Kernel) {
  JsonWriter W;
  W.beginObject();
  W.kv("schema_version", SchemaVersion);
  W.kv("record", "probes");
  W.kv("machine", Machine);
  W.kv("kernel", Kernel);
  W.key("probes");
  E.writeProbesValue(W);
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Process-wide sink (BenchRun --probe)
//===----------------------------------------------------------------------===//

namespace {
std::atomic<ProbeEngine *> ProcessEngine{nullptr};
std::mutex ProcessEngineMutex;
} // namespace

void gpuperf::setProcessProbeEngine(ProbeEngine *E) {
  std::lock_guard<std::mutex> Lock(ProcessEngineMutex);
  ProcessEngine.store(E, std::memory_order_release);
}

ProbeEngine *gpuperf::processProbeEngine() {
  return ProcessEngine.load(std::memory_order_acquire);
}

void gpuperf::mergeIntoProcessProbeEngine(const ProbeEngine &Partial) {
  std::lock_guard<std::mutex> Lock(ProcessEngineMutex);
  ProbeEngine *E = ProcessEngine.load(std::memory_order_relaxed);
  if (!E || E->specs().size() != Partial.specs().size())
    return;
  E->merge(Partial);
}
