//===- probe/ProbeSpec.cpp - declarative probe definitions ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "probe/ProbeSpec.h"

#include "isa/Opcode.h"
// Header-only: SlotUse lives with the stats it classifies; using its
// names here adds no link dependency (gpuperf_sim links gpuperf_probe,
// not the other way around).
#include "sim/Stats.h"
#include "support/Args.h"
#include "support/Format.h"

#include <fstream>
#include <sstream>

using namespace gpuperf;

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

const char *gpuperf::probeEventName(ProbeEvent E) {
  switch (E) {
  case ProbeEvent::InstIssued:
    return "inst_issued";
  case ProbeEvent::PCReached:
    return "pc_reached";
  case ProbeEvent::MemAccess:
    return "mem_access";
  case ProbeEvent::Replay:
    return "replay";
  case ProbeEvent::BankConflict:
    return "bank_conflict";
  case ProbeEvent::SlotLost:
    return "slot_lost";
  case ProbeEvent::BlockScheduled:
    return "block_scheduled";
  case ProbeEvent::BlockDrained:
    return "block_drained";
  case ProbeEvent::WarpExit:
    return "warp_exit";
  }
  return "?";
}

const char *gpuperf::probeFieldName(ProbeField F) {
  switch (F) {
  case ProbeField::PC:
    return "pc";
  case ProbeField::Op:
    return "opcode";
  case ProbeField::Class:
    return "class";
  case ProbeField::Lanes:
    return "lanes";
  case ProbeField::Block:
    return "block";
  case ProbeField::Warp:
    return "warp";
  case ProbeField::Cycle:
    return "cycle";
  case ProbeField::Dual:
    return "dual";
  case ProbeField::Space:
    return "space";
  case ProbeField::Width:
    return "width";
  case ProbeField::Bytes:
    return "bytes";
  case ProbeField::Transactions:
    return "transactions";
  case ProbeField::Serialization:
    return "serialization";
  case ProbeField::Cause:
    return "cause";
  case ProbeField::Slots:
    return "slots";
  case ProbeField::Insts:
    return "insts";
  }
  return "?";
}

const char *gpuperf::probeAggName(ProbeAgg A) {
  switch (A) {
  case ProbeAgg::Count:
    return "count";
  case ProbeAgg::Sum:
    return "sum";
  case ProbeAgg::Min:
    return "min";
  case ProbeAgg::Max:
    return "max";
  case ProbeAgg::Watch:
    return "watch";
  }
  return "?";
}

namespace {

constexpr uint32_t fieldBit(ProbeField F) {
  return 1u << static_cast<uint32_t>(F);
}

constexpr uint32_t IssueFields =
    fieldBit(ProbeField::PC) | fieldBit(ProbeField::Op) |
    fieldBit(ProbeField::Class) | fieldBit(ProbeField::Lanes) |
    fieldBit(ProbeField::Block) | fieldBit(ProbeField::Warp) |
    fieldBit(ProbeField::Cycle) | fieldBit(ProbeField::Dual);

/// Opcode class names, indexed by OpClass.
constexpr const char *OpClassNames[] = {
    "float_math", "int_math",   "int_mul_math", "move",
    "shared_mem", "global_mem", "control"};
constexpr size_t NumOpClassNames =
    sizeof(OpClassNames) / sizeof(OpClassNames[0]);

} // namespace

uint32_t gpuperf::probeEventFields(ProbeEvent E) {
  switch (E) {
  case ProbeEvent::InstIssued:
  case ProbeEvent::PCReached:
    return IssueFields;
  case ProbeEvent::MemAccess:
    return IssueFields | fieldBit(ProbeField::Space) |
           fieldBit(ProbeField::Width) | fieldBit(ProbeField::Bytes) |
           fieldBit(ProbeField::Transactions);
  case ProbeEvent::Replay:
    return fieldBit(ProbeField::PC) | fieldBit(ProbeField::Block) |
           fieldBit(ProbeField::Warp) | fieldBit(ProbeField::Cycle);
  case ProbeEvent::BankConflict:
    return fieldBit(ProbeField::PC) | fieldBit(ProbeField::Block) |
           fieldBit(ProbeField::Warp) | fieldBit(ProbeField::Cycle) |
           fieldBit(ProbeField::Serialization);
  case ProbeEvent::SlotLost:
    return fieldBit(ProbeField::PC) | fieldBit(ProbeField::Cause) |
           fieldBit(ProbeField::Slots) | fieldBit(ProbeField::Cycle);
  case ProbeEvent::BlockScheduled:
  case ProbeEvent::BlockDrained:
    return fieldBit(ProbeField::Block) | fieldBit(ProbeField::Cycle);
  case ProbeEvent::WarpExit:
    return fieldBit(ProbeField::Block) | fieldBit(ProbeField::Warp) |
           fieldBit(ProbeField::Insts) | fieldBit(ProbeField::Cycle);
  }
  return 0;
}

std::string gpuperf::renderProbeKey(ProbeField F, int64_t V) {
  switch (F) {
  case ProbeField::Op:
    if (V >= 0 && V < static_cast<int64_t>(Opcode::NumOpcodes))
      return std::string(opcodeMnemonic(static_cast<Opcode>(V)));
    break;
  case ProbeField::Class:
    if (V >= 0 && V < static_cast<int64_t>(NumOpClassNames))
      return OpClassNames[V];
    break;
  case ProbeField::Cause:
    if (V >= 0 && V < static_cast<int64_t>(NumSlotUses))
      return slotUseName(static_cast<SlotUse>(V));
    break;
  case ProbeField::Space:
    if (V == 0)
      return "shared";
    if (V == 1)
      return "global";
    break;
  case ProbeField::Width:
    return formatString("b%lld", static_cast<long long>(V));
  default:
    break;
  }
  return formatString("%lld", static_cast<long long>(V));
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

struct Token {
  enum Kind : uint8_t {
    Word,   ///< Identifier, number, mnemonic.
    LBrace, ///< {
    RBrace, ///< }
    Sep,    ///< Newline or ';' -- directive separator.
    Cmp,    ///< == != < <= > >=
    Assign, ///< A lone '=' (optional after directive keywords).
    End,    ///< End of input.
  };
  Kind K = End;
  std::string Text;
  int Line = 1;
  int Col = 1;
};

class Lexer {
public:
  Lexer(std::string_view Text, std::string_view File)
      : Text(Text), File(File) {}

  /// Tokenizes the whole input; fails with a positioned diagnostic on a
  /// stray character.
  Expected<std::vector<Token>> run() {
    std::vector<Token> Out;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == ' ' || C == '\t' || C == '\r') {
        advance();
        continue;
      }
      if (C == '#') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          advance();
        continue;
      }
      Token T;
      T.Line = Line;
      T.Col = Col;
      if (C == '\n' || C == ';') {
        T.K = Token::Sep;
        T.Text = C == '\n' ? "newline" : ";";
        advance();
      } else if (C == '{' || C == '}') {
        T.K = C == '{' ? Token::LBrace : Token::RBrace;
        T.Text = C;
        advance();
      } else if (C == '=' || C == '!' || C == '<' || C == '>') {
        advance();
        bool HasEq = Pos < Text.size() && Text[Pos] == '=';
        if (HasEq)
          advance();
        if (C == '!' && !HasEq)
          return fail(T.Line, T.Col, "expected '!=' after '!'");
        if (C == '=' && !HasEq) {
          T.K = Token::Assign;
          T.Text = "=";
        } else {
          T.K = Token::Cmp;
          T.Text = std::string(1, C) + (HasEq ? "=" : "");
        }
      } else if (isWordChar(C)) {
        T.K = Token::Word;
        while (Pos < Text.size() && isWordChar(Text[Pos])) {
          T.Text += Text[Pos];
          advance();
        }
      } else {
        return fail(Line, Col,
                    formatString("unexpected character '%c'", C));
      }
      Out.push_back(std::move(T));
    }
    Token E;
    E.K = Token::End;
    E.Line = Line;
    E.Col = Col;
    Out.push_back(E);
    return Out;
  }

  Expected<std::vector<Token>> fail(int L, int C,
                                    const std::string &Msg) const {
    return Expected<std::vector<Token>>::error(formatString(
        "%.*s:%d:%d: %s", static_cast<int>(File.size()), File.data(), L, C,
        Msg.c_str()));
  }

private:
  static bool isWordChar(char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
           (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '-' ||
           C == '+' || C == 'x' || C == 'X';
  }

  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  std::string_view Text;
  std::string_view File;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
};

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string_view File)
      : Tokens(std::move(Tokens)), File(File) {}

  Expected<std::vector<ProbeSpec>> run() {
    std::vector<ProbeSpec> Specs;
    skipSeps();
    while (peek().K != Token::End) {
      auto S = parseProbe();
      if (!S)
        return Expected<std::vector<ProbeSpec>>::error(S.message());
      for (const ProbeSpec &Prev : Specs)
        if (Prev.Name == S->Name)
          return failT<std::vector<ProbeSpec>>(
              NameTok, formatString("duplicate probe name '%s'",
                                    S->Name.c_str()));
      Specs.push_back(S.take());
      skipSeps();
    }
    if (Specs.empty())
      return failT<std::vector<ProbeSpec>>(peek(),
                                           "spec file defines no probes");
    return Specs;
  }

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &next() { return Tokens[Pos++]; }
  void skipSeps() {
    while (peek().K == Token::Sep)
      ++Pos;
  }

  template <typename T>
  Expected<T> failT(const Token &At, const std::string &Msg) const {
    return Expected<T>::error(formatString(
        "%.*s:%d:%d: %s", static_cast<int>(File.size()), File.data(),
        At.Line, At.Col, Msg.c_str()));
  }
  Expected<ProbeSpec> fail(const Token &At, const std::string &Msg) const {
    return failT<ProbeSpec>(At, Msg);
  }

  /// Expects a Word token; \p What names it in the diagnostic.
  Expected<Token> expectWord(const char *What) {
    const Token &T = peek();
    if (T.K != Token::Word)
      return failT<Token>(
          T, formatString("expected %s, got '%s'", What,
                          T.K == Token::End ? "end of file"
                                            : T.Text.c_str()));
    return next();
  }

  Expected<ProbeSpec> parseProbe() {
    auto Kw = expectWord("'probe'");
    if (!Kw)
      return Expected<ProbeSpec>::error(Kw.message());
    if (Kw->Text != "probe")
      return fail(*Kw, formatString("expected 'probe', got '%s'",
                                    Kw->Text.c_str()));
    auto Name = expectWord("a probe name");
    if (!Name)
      return Expected<ProbeSpec>::error(Name.message());
    NameTok = *Name;
    // The probes JSON object carries a "version" stamp next to the
    // per-probe entries; a probe by that name would collide with it.
    if (Name->Text == "version")
      return fail(NameTok, "'version' is a reserved probe name");
    skipSeps();
    if (peek().K != Token::LBrace)
      return fail(peek(), "expected '{' after the probe name");
    next();

    ProbeSpec S;
    S.Name = Name->Text;
    bool HaveEvent = false, HaveAgg = false;
    Token EventTok, AggTok, ValueTok, KeyTok;
    std::vector<Token> FilterToks;

    for (;;) {
      skipSeps();
      if (peek().K == Token::RBrace) {
        next();
        break;
      }
      auto Dir = expectWord("a directive or '}'");
      if (!Dir)
        return Expected<ProbeSpec>::error(Dir.message());
      // An optional '=' may follow the directive keyword.
      auto eatAssign = [&]() {
        if (peek().K == Token::Assign)
          next();
      };
      if (Dir->Text == "event") {
        if (HaveEvent)
          return fail(*Dir, "duplicate 'event' directive");
        eatAssign();
        auto V = expectWord("an event name");
        if (!V)
          return Expected<ProbeSpec>::error(V.message());
        bool Found = false;
        for (size_t E = 0; E < NumProbeEvents; ++E)
          if (V->Text == probeEventName(static_cast<ProbeEvent>(E))) {
            S.Event = static_cast<ProbeEvent>(E);
            Found = true;
          }
        if (!Found)
          return fail(*V, formatString("unknown event '%s'",
                                       V->Text.c_str()));
        HaveEvent = true;
        EventTok = *V;
      } else if (Dir->Text == "aggregation") {
        if (HaveAgg)
          return fail(*Dir, "duplicate 'aggregation' directive");
        eatAssign();
        auto V = expectWord("an aggregation name");
        if (!V)
          return Expected<ProbeSpec>::error(V.message());
        bool Found = false;
        for (ProbeAgg A : {ProbeAgg::Count, ProbeAgg::Sum, ProbeAgg::Min,
                           ProbeAgg::Max, ProbeAgg::Watch})
          if (V->Text == probeAggName(A)) {
            S.Agg = A;
            Found = true;
          }
        if (!Found)
          return fail(
              *V, formatString(
                      "unknown aggregation '%s' (count|sum|min|max|watch)",
                      V->Text.c_str()));
        HaveAgg = true;
        AggTok = *V;
      } else if (Dir->Text == "value" || Dir->Text == "key") {
        bool IsValue = Dir->Text == "value";
        if (IsValue ? S.HasValue : S.HasKey)
          return fail(*Dir, formatString("duplicate '%s' directive",
                                         Dir->Text.c_str()));
        eatAssign();
        auto V = expectWord("a field name");
        if (!V)
          return Expected<ProbeSpec>::error(V.message());
        auto F = parseField(*V);
        if (!F)
          return Expected<ProbeSpec>::error(F.message());
        if (IsValue) {
          S.HasValue = true;
          S.Value = *F;
          ValueTok = *V;
        } else {
          S.HasKey = true;
          S.Key = *F;
          KeyTok = *V;
        }
      } else if (Dir->Text == "filter") {
        auto FW = expectWord("a field name");
        if (!FW)
          return Expected<ProbeSpec>::error(FW.message());
        auto F = parseField(*FW);
        if (!F)
          return Expected<ProbeSpec>::error(F.message());
        const Token &OpT = peek();
        if (OpT.K != Token::Cmp)
          return fail(OpT, "expected a comparison (== != < <= > >=)");
        next();
        ProbeCmp Cmp = OpT.Text == "==" ? ProbeCmp::Eq
                       : OpT.Text == "!=" ? ProbeCmp::Ne
                       : OpT.Text == "<"  ? ProbeCmp::Lt
                       : OpT.Text == "<=" ? ProbeCmp::Le
                       : OpT.Text == ">"  ? ProbeCmp::Gt
                                          : ProbeCmp::Ge;
        auto VW = expectWord("a filter value");
        if (!VW)
          return Expected<ProbeSpec>::error(VW.message());
        auto Val = parseFieldValue(*F, *VW);
        if (!Val)
          return Expected<ProbeSpec>::error(Val.message());
        S.Filters.push_back(ProbeFilter{*F, Cmp, *Val});
        FilterToks.push_back(*FW);
      } else {
        return fail(*Dir,
                    formatString("unknown directive '%s' "
                                 "(event|aggregation|value|key|filter)",
                                 Dir->Text.c_str()));
      }
      // Directives are separated by newlines or ';'.
      if (peek().K != Token::Sep && peek().K != Token::RBrace)
        return fail(peek(),
                    formatString("expected ';', newline or '}' after the "
                                 "directive, got '%s'",
                                 peek().Text.c_str()));
    }

    // Block-level validation, pointing at the offending directive.
    if (!HaveEvent)
      return fail(NameTok, formatString("probe '%s' has no 'event' "
                                        "directive",
                                        S.Name.c_str()));
    if (!HaveAgg)
      return fail(NameTok, formatString("probe '%s' has no 'aggregation' "
                                        "directive",
                                        S.Name.c_str()));
    bool NeedsValue = S.Agg == ProbeAgg::Sum || S.Agg == ProbeAgg::Min ||
                      S.Agg == ProbeAgg::Max;
    if (NeedsValue && !S.HasValue)
      return fail(AggTok, formatString("aggregation '%s' requires a "
                                       "'value' directive",
                                       probeAggName(S.Agg)));
    if (!NeedsValue && S.HasValue)
      return fail(ValueTok,
                  formatString("aggregation '%s' does not take a value "
                               "(it aggregates %s)",
                               probeAggName(S.Agg),
                               S.Agg == ProbeAgg::Watch
                                   ? "the earliest matching cycle"
                                   : "event counts"));
    uint32_t Mask = probeEventFields(S.Event);
    auto checkField = [&](ProbeField F,
                          const Token &At) -> Expected<ProbeSpec> {
      if (!(Mask & fieldBit(F)))
        return fail(At, formatString("event '%s' has no field '%s'",
                                     probeEventName(S.Event),
                                     probeFieldName(F)));
      return S;
    };
    if (S.HasValue)
      if (auto C = checkField(S.Value, ValueTok); !C)
        return C;
    if (S.HasKey)
      if (auto C = checkField(S.Key, KeyTok); !C)
        return C;
    for (size_t I = 0; I < S.Filters.size(); ++I)
      if (auto C = checkField(S.Filters[I].Field, FilterToks[I]); !C)
        return C;
    return S;
  }

  Expected<ProbeField> parseField(const Token &T) {
    for (size_t F = 0; F < NumProbeFields; ++F)
      if (T.Text == probeFieldName(static_cast<ProbeField>(F)))
        return static_cast<ProbeField>(F);
    return failT<ProbeField>(
        T, formatString("unknown field '%s'", T.Text.c_str()));
  }

  /// Filter values: a plain integer, or a symbolic name resolved by the
  /// field it compares against.
  Expected<int64_t> parseFieldValue(ProbeField F, const Token &T) {
    switch (F) {
    case ProbeField::Op: {
      Opcode Op = parseOpcodeMnemonic(T.Text);
      if (Op != Opcode::NumOpcodes)
        return static_cast<int64_t>(Op);
      break;
    }
    case ProbeField::Class:
      for (size_t I = 0; I < NumOpClassNames; ++I)
        if (T.Text == OpClassNames[I])
          return static_cast<int64_t>(I);
      break;
    case ProbeField::Space:
      if (T.Text == "shared")
        return 0;
      if (T.Text == "global")
        return 1;
      break;
    case ProbeField::Cause:
      for (size_t I = 0; I < NumSlotUses; ++I)
        if (T.Text == slotUseName(static_cast<SlotUse>(I)))
          return static_cast<int64_t>(I);
      break;
    case ProbeField::Width:
      if (T.Text == "b32")
        return 32;
      if (T.Text == "b64")
        return 64;
      if (T.Text == "b128")
        return 128;
      break;
    default:
      break;
    }
    auto V = parseInteger(T.Text.c_str(), INT64_MIN, INT64_MAX);
    if (!V)
      return failT<int64_t>(
          T, formatString("'%s' is not an integer or a known %s name",
                          T.Text.c_str(), probeFieldName(F)));
    return static_cast<int64_t>(*V);
  }

  std::vector<Token> Tokens;
  std::string_view File;
  size_t Pos = 0;
  Token NameTok; ///< The current probe's name token, for diagnostics.
};

} // namespace

Expected<std::vector<ProbeSpec>>
gpuperf::parseProbeSpecs(std::string_view Text, std::string_view FileName) {
  Lexer L(Text, FileName);
  auto Tokens = L.run();
  if (!Tokens)
    return Expected<std::vector<ProbeSpec>>::error(Tokens.message());
  Parser P(Tokens.take(), FileName);
  return P.run();
}

Expected<std::vector<ProbeSpec>>
gpuperf::loadProbeSpecFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<std::vector<ProbeSpec>>::error(
        formatString("cannot read probe spec file '%s'", Path.c_str()));
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseProbeSpecs(SS.str(), Path);
}
