//===- probe/ProbeEngine.h - runtime probe evaluation -----------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates parsed probe specs against simulation events. The engine is
/// the imperative half of the probe layer: the SM simulator fires events
/// at the same points Stats/Profile/Trace already observe, the engine
/// applies each spec's filters and folds matching events into an
/// accumulator (optionally split by a key field).
///
/// Concurrency model, mirroring SimTrace/KernelProfile:
///   - each SM task fires into its own private clone (emptyClone), so the
///     hot path takes no locks;
///   - the launcher merges per-SM clones in SM index order, before any
///     failure check, on both the serial and parallel paths;
///   - every aggregation is commutative and associative over integers, so
///     the merged result is bit-identical for every --jobs value.
///
/// A process-wide engine can additionally be installed (BenchRun --probe):
/// launches without an explicit LaunchConfig::Probes sink fire into a
/// private clone that is merged into the process engine under a mutex when
/// the launch ends -- including trap and early-error returns.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_PROBE_PROBEENGINE_H
#define GPUPERF_PROBE_PROBEENGINE_H

#include "probe/ProbeSpec.h"

#include <map>
#include <string>
#include <vector>

namespace gpuperf {

class JsonWriter;

/// Version stamp of the "probes" JSON object embedded in bench records
/// and --probe-out files, bumped on any shape change so perfdiff's gate
/// fails loudly instead of comparing mismatched shapes. (Probe names may
/// not be "version"; the spec parser rejects that.)
inline constexpr int ProbesObjectVersion = 1;

/// One fired event: the firing site fills the fields its event carries
/// (probeEventFields) and leaves the rest at their defaults. Fields are
/// plain int64 so filters, keys, and values share one representation.
struct ProbeEventRecord {
  int64_t PC = -1;
  int64_t Op = -1;
  int64_t Class = -1;
  int64_t Lanes = 0;
  int64_t Block = -1;
  int64_t Warp = -1;
  int64_t Cycle = 0; ///< Wave-local; fire() adds the wave's cycle offset.
  int64_t Dual = 0;
  int64_t Space = -1;
  int64_t Width = 0;
  int64_t Bytes = 0;
  int64_t Transactions = 0;
  int64_t Serialization = 0;
  int64_t Cause = -1;
  int64_t Slots = 0;
  int64_t Insts = 0;

  int64_t get(ProbeField F) const;
};

/// Accumulator state: Count counts matching events for every aggregation;
/// Value holds the sum/min/max/watch payload once Seen.
struct ProbeAccum {
  uint64_t Count = 0;
  int64_t Value = 0;
  bool Seen = false;
};

/// Evaluated state of one probe. Keys exist only for matched key values
/// and iterate in key order (std::map), which keeps reports and JSON
/// deterministic without a sort pass.
struct ProbeState {
  ProbeAccum Total;
  std::map<int64_t, ProbeAccum> Keys;
};

class ProbeEngine {
public:
  ProbeEngine() = default;
  explicit ProbeEngine(std::vector<ProbeSpec> Specs);

  /// True when the engine has any probes; firing sites gate on
  /// `E && E->wants(event)` so a disabled engine costs one branch.
  bool enabled() const { return !Specs.empty(); }
  bool wants(ProbeEvent E) const {
    return Wanted[static_cast<size_t>(E)];
  }

  /// Sets the cycle offset added to every fired event's Cycle field, so
  /// watchpoints read on the SM launch timeline across waves -- the same
  /// bracketing TraceRecorder::beginWave uses.
  void beginWave(uint64_t CycleOffset) { WaveCycleOffset = CycleOffset; }

  /// Folds one event into every spec that listens to \p E and passes its
  /// filters. InstIssued events additionally feed PCReached specs (the
  /// alias exists purely for watchpoint-flavoured spec phrasing).
  void fire(ProbeEvent E, const ProbeEventRecord &R);

  /// A fresh engine with the same specs and zeroed state -- the per-SM
  /// private clone.
  ProbeEngine emptyClone() const { return ProbeEngine(Specs); }

  /// Folds \p Other's state into this engine. Engines must share specs
  /// (clone lineage); all five aggregations merge order-independently.
  void merge(const ProbeEngine &Other);

  const std::vector<ProbeSpec> &specs() const { return Specs; }
  const ProbeState &state(size_t I) const { return States[I]; }
  /// Null when no probe has that name.
  const ProbeState *stateByName(std::string_view Name) const;

  /// Human-readable results, one `probe NAME: ...` line per probe plus
  /// one indented line per key. Byte-stable across --jobs values; the
  /// jobs-invariance test and the CI probe-smoke diff pin this text.
  std::string report() const;

  /// Emits the versioned probes object ({"version":1,"NAME":{...},...})
  /// as the next JSON value on \p W. Embedded by bench records under a
  /// "probes" key and by probeRecordJson.
  void writeProbesValue(JsonWriter &W) const;

private:
  std::vector<ProbeSpec> Specs;
  std::vector<ProbeState> States; ///< Parallel to Specs.
  bool Wanted[NumProbeEvents] = {};
  uint64_t WaveCycleOffset = 0;
};

/// A standalone --probe-out record: schema_version, record:"probes",
/// machine, kernel, and the probes object. \p SchemaVersion is the
/// caller's MetricsSchemaVersion (kept a parameter so the probe library
/// stays below analysis/ in the layering).
std::string probeRecordJson(const ProbeEngine &E, int SchemaVersion,
                            const std::string &Machine,
                            const std::string &Kernel);

/// Installs \p E as the process-wide probe sink (null uninstalls).
/// Launches whose LaunchConfig has no explicit Probes sink clone it,
/// fire into the clone, and merge back on completion. The engine must
/// outlive every launch issued while it is installed; BenchRun owns this
/// lifecycle for --probe.
void setProcessProbeEngine(ProbeEngine *E);
ProbeEngine *processProbeEngine();

/// Mutex-guarded merge of a per-launch partial into the installed
/// process engine; no-op when none is installed (or \p Partial's specs
/// no longer match the installed engine's -- a racing uninstall).
void mergeIntoProcessProbeEngine(const ProbeEngine &Partial);

} // namespace gpuperf

#endif // GPUPERF_PROBE_PROBEENGINE_H
