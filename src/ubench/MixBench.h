//===- ubench/MixBench.h - FFMA/LDS.X instruction-mix benchmarks -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the paper's assembly-level microbenchmarks (Section 3.3 and
/// 4.1-4.3): straight-line kernels mixing FFMA with LDS/LDS.64/LDS.128 at a
/// chosen ratio, with either independent instructions or the SGEMM-like
/// pattern where the FFMAs depend on the preceding shared-memory load.
/// Register operands are chosen bank-conflict-free so the measurements
/// isolate the scheduler/pipe limits (Figure 2 and Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_UBENCH_MIXBENCH_H
#define GPUPERF_UBENCH_MIXBENCH_H

#include "arch/MachineDesc.h"
#include "asmtool/NotationTuner.h"
#include "isa/Module.h"
#include "sim/Launcher.h"

namespace gpuperf {

/// Parameters of one instruction-mix benchmark kernel.
struct MixBenchParams {
  /// FFMA instructions per LDS.X; -1 = pure FFMA, 0 = pure LDS.X.
  int FfmaPerLds = 6;
  MemWidth Width = MemWidth::B64;
  /// When true, the FFMAs consume the value loaded by the preceding
  /// LDS.X (the SGEMM main-loop pattern of Figure 4).
  bool Dependent = false;
  /// Dependent mode: when true the FFMAs consume the *previous* group's
  /// load (the software-pipelined structure of real kernels, used by the
  /// model's FT lookup); when false they consume the load just issued
  /// (the paper's Figure 4 benchmark structure).
  bool PipelinedConsume = false;
  /// Number of independent accumulator chains in dependent mode. The
  /// paper's Figure 4 benchmark is tightly chained (2); a register-blocked
  /// SGEMM loop with factor BR has ~BR independent accumulator chains per
  /// load, which the model uses when estimating FT for larger BR.
  int DepChains = 2;
  /// Approximate unrolled body length in instructions.
  int BodyInsts = 2048;
  /// Kepler scheduling-hint quality.
  NotationQuality Notation = NotationQuality::Tuned;
};

/// Generates the benchmark kernel for machine \p M.
Kernel generateMixBench(const MachineDesc &M, const MixBenchParams &P);

/// Execution-shape knobs for throughput measurements.
struct MeasureConfig {
  int ThreadsPerBlock = 1024;
  int BlocksPerSM = 2;
};

/// Runs \p K with saturating (or explicitly chosen) occupancy and returns
/// issued thread-instructions per cycle per SM (the y-axis of Figures 2
/// and 4). Aborts the process on launch errors (programmatic misuse).
/// When \p StatsOut is non-null it receives the full simulation counters
/// of the measured wave, including the per-cause issue-slot breakdown --
/// the benches use this for their issue_slot_report sections.
double measureThroughput(const MachineDesc &M, const Kernel &K,
                         const MeasureConfig &Cfg = MeasureConfig(),
                         SimStats *StatsOut = nullptr);

} // namespace gpuperf

#endif // GPUPERF_UBENCH_MIXBENCH_H
