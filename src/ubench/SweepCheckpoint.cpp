//===- ubench/SweepCheckpoint.cpp - completed-point journal ---------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "ubench/SweepCheckpoint.h"

#include "support/Crc32.h"
#include "support/FileIO.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace gpuperf;

namespace {

constexpr uint32_t CheckpointMagic = 0x4b435047; // "GPCK"
constexpr uint32_t CheckpointVersion = 1;
constexpr size_t HeaderBytes = 8;

/// Sanity caps: a frame violating them is corruption, not data.
constexpr uint32_t MaxNameBytes = 1u << 10;
constexpr uint32_t MaxRowBytes = 1u << 16;
constexpr uint32_t MaxRows = 1u << 12;
constexpr uint32_t MaxPayloadBytes = 1u << 24;

void appendU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Little-endian cursor; mirrors the PerfDatabase reader but local so
/// the two journals stay independently evolvable.
class Reader {
public:
  Reader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool readU32(uint32_t &V) {
    if (Pos + 4 > Size)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return true;
  }
  bool readBytes(std::string &S, uint32_t N) {
    if (Pos + N > Size)
      return false;
    S.assign(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return true;
  }
  bool atEnd() const { return Pos == Size; }
  size_t pos() const { return Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

bool decodePayload(const std::string &Payload, std::string &Sweep,
                   uint32_t &Point, std::vector<std::string> &Rows) {
  Reader R(reinterpret_cast<const uint8_t *>(Payload.data()),
           Payload.size());
  uint32_t NameLen = 0, RowCount = 0;
  if (!R.readU32(NameLen) || NameLen == 0 || NameLen > MaxNameBytes)
    return false;
  if (!R.readBytes(Sweep, NameLen))
    return false;
  if (!R.readU32(Point))
    return false;
  if (!R.readU32(RowCount) || RowCount > MaxRows)
    return false;
  Rows.clear();
  for (uint32_t I = 0; I < RowCount; ++I) {
    uint32_t Len = 0;
    std::string Row;
    if (!R.readU32(Len) || Len > MaxRowBytes || !R.readBytes(Row, Len))
      return false;
    Rows.push_back(std::move(Row));
  }
  return R.atEnd();
}

} // namespace

SweepCheckpoint::SweepCheckpoint(std::string P, bool Resume)
    : Path(std::move(P)) {
  if (Path.empty())
    return;

  size_t ValidBytes = 0;
  if (Resume) {
    if (auto File = readFileBytes(Path)) {
      const std::vector<uint8_t> &Bytes = *File;
      Reader R(Bytes.data(), Bytes.size());
      uint32_t Magic = 0, Version = 0;
      if (R.readU32(Magic) && Magic == CheckpointMagic &&
          R.readU32(Version) && Version == CheckpointVersion) {
        ValidBytes = HeaderBytes;
        for (;;) {
          uint32_t Len = 0, Crc = 0;
          std::string Payload;
          if (!R.readU32(Len) || Len == 0 || Len > MaxPayloadBytes ||
              !R.readU32(Crc) || !R.readBytes(Payload, Len) ||
              crc32(Payload.data(), Payload.size()) != Crc)
            break;
          std::string Sweep;
          uint32_t Point = 0;
          std::vector<std::string> Rows;
          if (!decodePayload(Payload, Sweep, Point, Rows))
            break;
          Done[{Sweep, Point}] = std::move(Rows);
          ValidBytes = R.pos();
        }
      }
      if (ValidBytes < Bytes.size())
        (void)::truncate(Path.c_str(), static_cast<off_t>(ValidBytes));
    }
  } else {
    // A fresh run owes the user a fresh sweep: drop stale completions
    // so every point is re-executed.
    (void)::truncate(Path.c_str(), 0);
  }
}

SweepCheckpoint::~SweepCheckpoint() {
  if (Fd >= 0)
    ::close(Fd);
}

const std::vector<std::string> *
SweepCheckpoint::lookup(const std::string &Sweep, size_t Point) const {
  if (Path.empty())
    return nullptr;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Done.find({Sweep, Point});
  return It == Done.end() ? nullptr : &It->second;
}

size_t SweepCheckpoint::recordCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Done.size();
}

Status SweepCheckpoint::markDone(const std::string &Sweep, size_t Point,
                                 const std::vector<std::string> &Rows) {
  if (Path.empty())
    return Status::success();

  std::vector<uint8_t> Payload;
  appendU32(Payload, static_cast<uint32_t>(Sweep.size()));
  Payload.insert(Payload.end(), Sweep.begin(), Sweep.end());
  appendU32(Payload, static_cast<uint32_t>(Point));
  appendU32(Payload, static_cast<uint32_t>(Rows.size()));
  for (const std::string &Row : Rows) {
    appendU32(Payload, static_cast<uint32_t>(Row.size()));
    Payload.insert(Payload.end(), Row.begin(), Row.end());
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0) {
    Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (Fd < 0)
      return Status::error("cannot open sweep checkpoint '" + Path + "'");
    syncDirectoryOf(Path);
  }

  // Re-check the size each append (the file may have been truncated by
  // recovery) and re-emit the header when writing from offset zero.
  struct stat St;
  size_t FileBytes = 0;
  if (::fstat(Fd, &St) == 0)
    FileBytes = static_cast<size_t>(St.st_size);

  std::vector<uint8_t> Frame;
  if (FileBytes == 0) {
    appendU32(Frame, CheckpointMagic);
    appendU32(Frame, CheckpointVersion);
  }
  appendU32(Frame, static_cast<uint32_t>(Payload.size()));
  appendU32(Frame, crc32(Payload.data(), Payload.size()));
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());

  size_t DoneBytes = 0;
  while (DoneBytes < Frame.size()) {
    ssize_t N =
        ::write(Fd, Frame.data() + DoneBytes, Frame.size() - DoneBytes);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    DoneBytes += static_cast<size_t>(N);
  }
  if (DoneBytes != Frame.size()) {
    (void)::ftruncate(Fd, static_cast<off_t>(FileBytes));
    return Status::error("short append to sweep checkpoint '" + Path +
                         "'");
  }
  // Acknowledgment barrier: only a record that reached the disk may
  // later justify skipping the point.
  if (::fsync(Fd) != 0)
    return Status::error("cannot fsync sweep checkpoint '" + Path + "'");
  Done[{Sweep, Point}] = Rows;
  return Status::success();
}
