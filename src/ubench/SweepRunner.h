//===- ubench/SweepRunner.h - supervised, resumable sweeps ------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safe sweep engine: evaluates N independent sweep points
/// across a thread pool with per-point supervision (bounded retries,
/// deadline escalation, quarantine -- support/Supervisor.h) and optional
/// checkpoint/resume (ubench/SweepCheckpoint.h). A sweep never aborts on
/// a hostile point: it completes with the failing points listed in an
/// explicit incomplete set, and every completed point's rows are
/// bit-identical to what an unsupervised runSweep would have produced
/// (pinned by sweep_supervisor_test). bench/BenchUtil.h wraps this for
/// the figure/table benches; the atlas service builds on it directly.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_UBENCH_SWEEPRUNNER_H
#define GPUPERF_UBENCH_SWEEPRUNNER_H

#include "support/Supervisor.h"
#include "ubench/SweepCheckpoint.h"

#include <functional>
#include <optional>

namespace gpuperf {

/// What one attempt at one sweep point reports: a result (the rendered
/// rows for that point) or a classified failure the supervisor reacts
/// to (see AttemptResult for the retry semantics of each kind).
struct SweepPointAttempt {
  AttemptResult Result;
  std::vector<std::string> Rows; ///< Valid when Result is Ok.

  static SweepPointAttempt ok(std::vector<std::string> Rows) {
    SweepPointAttempt A;
    A.Rows = std::move(Rows);
    return A;
  }
  static SweepPointAttempt transient(std::string Why) {
    return {AttemptResult::transient(std::move(Why)), {}};
  }
  static SweepPointAttempt timeout(std::string Why) {
    return {AttemptResult::timeout(std::move(Why)), {}};
  }
  static SweepPointAttempt fatal(std::string Why) {
    return {AttemptResult::fatal(std::move(Why)), {}};
  }
};

/// One point the sweep could not complete.
struct SweepPointFailure {
  size_t Point = 0;
  TaskOutcome::State Result = TaskOutcome::State::Failed;
  int Attempts = 0;
  std::string Reason;
};

/// Summary of one supervised sweep, emitted into bench --json records.
struct SweepReport {
  std::string Name;
  size_t Points = 0;
  size_t Completed = 0; ///< Points with rows (freshly run or resumed).
  size_t Resumed = 0;   ///< Served from the checkpoint, not re-run.
  std::vector<SweepPointFailure> Incomplete; ///< Index order.
  /// FNV-1a digest over (index, rows) of every completed point in index
  /// order -- run-order- and resume-independent, so an uninterrupted
  /// run and a kill+resume run of the same sweep digest identically.
  uint64_t RowsHash = 0;
  size_t CheckpointErrors = 0; ///< Failed markDone appends (non-fatal).
  std::string FirstCheckpointError;

  bool complete() const { return Incomplete.empty(); }
};

/// Execution knobs for one supervised sweep.
struct SweepOptions {
  int Jobs = 0;                          ///< As runSweep/parallelFor.
  SupervisorPolicy Policy;               ///< Retry/deadline policy.
  SweepCheckpoint *Checkpoint = nullptr; ///< Optional resume journal.
};

/// Everything a sweep produced: per-point rows (nullopt = incomplete)
/// plus the report.
struct SweepResult {
  std::vector<std::optional<std::vector<std::string>>> Rows;
  SweepReport Report;
};

/// Point evaluator: index + supervised attempt context (attempt number,
/// escalated deadline). Must be safe to call concurrently.
using SweepPointFn =
    std::function<SweepPointAttempt(size_t, const Supervisor::Attempt &)>;

/// Evaluates \p Point(0..N-1) under \p O. Completed points are recorded
/// in the checkpoint (when given) the moment they finish; checkpointed
/// points are served without re-running. Results are indexed by point
/// and identical for every Jobs value.
SweepResult runSupervisedSweep(const SweepOptions &O,
                               const std::string &Name, size_t N,
                               const SweepPointFn &Point);

} // namespace gpuperf

#endif // GPUPERF_UBENCH_SWEEPRUNNER_H
