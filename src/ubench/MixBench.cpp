//===- ubench/MixBench.cpp - FFMA/LDS.X instruction-mix benchmarks --------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "ubench/MixBench.h"

#include "support/Format.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace gpuperf;

namespace {

/// Shared-memory window each benchmark cycles through.
constexpr int SharedBytes = 4096;

/// All registers stay below R32 so that 32 registers/thread suffice and
/// the benchmark can reach full occupancy (2048 threads on Kepler needs
/// 64K/2048 = 32 registers; Section 4.3 is about exactly this pressure).
///
/// Independent-mode accumulators: banks E1/O1 only, so sources
/// {R2(E0), R3(O0), Acc} are always conflict-free.
constexpr uint8_t IndepAcc[8] = {12, 13, 14, 15, 20, 21, 22, 23};
constexpr int NumIndepAcc = 8;
/// Dependent-mode accumulators: banks O0/O1 only; the sources are then
/// {R2(E0), LoadReg(E1), Acc(O0/O1)} -- conflict-free. The first
/// DepChains of these rotate, forming that many serial dependence chains
/// per load; the Figure 4 benchmark uses 2, which is what makes it
/// latency-sensitive at low occupancy.
constexpr uint8_t DepAcc[14] = {9,  11, 17, 19, 25, 27, 5,
                                7,  13, 15, 21, 23, 29, 31};
constexpr int MaxDepAcc = 14;
/// Rotating destinations for loads whose results are consumed (both are
/// 4-register aligned so every width works; first words on bank E1).
constexpr uint8_t DepLoadReg[2] = {4, 28};
/// Rotating destinations for dead loads (independent mode).
constexpr uint8_t IndepLoadReg[4] = {8, 16, 24, 28};

} // namespace

Kernel gpuperf::generateMixBench(const MachineDesc &M,
                                 const MixBenchParams &P) {
  assert(P.FfmaPerLds >= -1 && "ratio must be -1 (pure FFMA) or >= 0");
  Kernel K;
  K.Name = formatString(
      "mix_%s_r%d_%s", P.Dependent ? "dep" : "indep", P.FfmaPerLds,
      P.Width == MemWidth::B32    ? "lds32"
      : P.Width == MemWidth::B64  ? "lds64"
                                  : "lds128");
  K.SharedBytes = SharedBytes;

  const int WidthBytes = memWidthBytes(P.Width);
  const int Slots = SharedBytes / WidthBytes;

  // Prologue: R1 = (tid % Slots) * WidthBytes as the shared address;
  // R2/R3 hold float multiplicands.
  K.Code.push_back(makeS2R(0, SpecialReg::TID_X));
  // R1 = (tid & (Slots-1)) << log2(WidthBytes).
  Instruction And;
  And.Op = Opcode::LOP_AND;
  And.Dst = 1;
  And.Src[0] = 0;
  And.HasImm = true;
  And.Imm = Slots - 1;
  K.Code.push_back(And);
  int Log2W = P.Width == MemWidth::B32 ? 2 : P.Width == MemWidth::B64 ? 3
                                                                      : 4;
  K.Code.push_back(makeSHLImm(1, 1, Log2W));
  K.Code.push_back(makeMOV32I(2, 0x3f800000u)); // 1.0f
  K.Code.push_back(makeMOV32I(3, 0x3f000000u)); // 0.5f

  assert(P.DepChains >= 1 && P.DepChains <= MaxDepAcc &&
         "dependent chain count out of range");
  const uint8_t *Acc = P.Dependent ? DepAcc : IndepAcc;
  const int NumAcc = P.Dependent ? P.DepChains : NumIndepAcc;
  int AccIdx = 0, LoadIdx = 0;

  auto EmitFFMA = [&](uint8_t OperandB) {
    uint8_t A = Acc[AccIdx];
    AccIdx = (AccIdx + 1) % NumAcc;
    K.Code.push_back(makeFFMA(A, 2, OperandB, A));
  };
  auto EmitLoad = [&]() -> uint8_t {
    uint8_t Dst;
    if (P.Dependent) {
      Dst = DepLoadReg[LoadIdx % 2];
    } else {
      Dst = IndepLoadReg[LoadIdx % 4];
    }
    ++LoadIdx;
    K.Code.push_back(makeLDS(P.Width, Dst, 1, 0));
    return Dst;
  };

  int Emitted = 0;
  // PipelinedConsume: use the previous group's load while the next one is
  // in flight (the structure of real software-pipelined kernels).
  uint8_t PrevLoaded = DepLoadReg[1];
  while (Emitted < P.BodyInsts) {
    if (P.FfmaPerLds < 0) {
      EmitFFMA(3);
      ++Emitted;
      continue;
    }
    if (P.FfmaPerLds == 0) {
      EmitLoad();
      ++Emitted;
      continue;
    }
    uint8_t Loaded = EmitLoad();
    ++Emitted;
    uint8_t Consumed = P.PipelinedConsume ? PrevLoaded : Loaded;
    for (int F = 0; F < P.FfmaPerLds && Emitted < P.BodyInsts;
         ++F, ++Emitted)
      EmitFFMA(P.Dependent ? Consumed : 3);
    PrevLoaded = Loaded;
  }
  K.Code.push_back(makeEXIT());
  K.recomputeRegUsage();
  tuneNotations(M, K, P.Notation);
  return K;
}

double gpuperf::measureThroughput(const MachineDesc &M, const Kernel &K,
                                  const MeasureConfig &Cfg,
                                  SimStats *StatsOut) {
  GlobalMemory GM(1 << 20);
  LaunchConfig Config;
  Config.Dims.BlockX = Cfg.ThreadsPerBlock;
  Config.Dims.GridX = Cfg.BlocksPerSM * M.NumSMs;
  Config.Mode = SimMode::ProjectOneWave;
  Config.MaxResidentBlocksOverride = Cfg.BlocksPerSM;
  auto R = launchKernel(M, K, Config, GM);
  if (!R.hasValue()) {
    std::fprintf(stderr, "microbenchmark launch failed: %s\n",
                 R.message().c_str());
    std::abort();
  }
  if (StatsOut)
    *StatsOut = R->Stats;
  return R->Stats.threadInstsPerCycle();
}
