//===- ubench/PerfDatabase.h - measured-throughput database -----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizing store of microbenchmark measurements. The paper's analytical
/// model does not hard-code throughputs: it consumes numbers *measured* by
/// assembly-level benchmarks on the target machine (Section 5.5 proposes
/// exactly such "a small database of performance references"). This class
/// is that database; the model library queries it and the benchmarks print
/// from it.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_UBENCH_PERFDATABASE_H
#define GPUPERF_UBENCH_PERFDATABASE_H

#include "ubench/MixBench.h"

#include <map>
#include <tuple>

namespace gpuperf {

/// Lazily-measured throughput database for one machine.
class PerfDatabase {
public:
  explicit PerfDatabase(const MachineDesc &M) : M(M) {}

  /// Thread-instruction throughput of the FFMA:LDS.X mix benchmark
  /// (Figures 2 and 4) at the given active-thread count per SM.
  /// \p DepChains is the accumulator-chain count of the dependent
  /// pattern (2 = the paper's Figure 4 structure). Memoized.
  /// \p Pipelined selects previous-load consumption (see MixBenchParams).
  double mixThroughput(int FfmaPerLds, MemWidth Width, bool Dependent,
                       int ActiveThreads, int DepChains = 2,
                       bool Pipelined = false);

  /// Saturated-occupancy mix throughput (2048 threads on Kepler, 1536 on
  /// Fermi -- clamped to what the benchmark kernel's registers allow).
  double mixThroughputSaturated(int FfmaPerLds, MemWidth Width,
                                bool Dependent);

  /// Pure-FFMA thread-instruction throughput (conflict-free operands).
  double ffmaPeak();

  /// The machine this database measures.
  const MachineDesc &machine() const { return M; }

private:
  const MachineDesc &M;
  std::map<std::tuple<int, int, bool, int, int, bool>, double> Cache;
};

} // namespace gpuperf

#endif // GPUPERF_UBENCH_PERFDATABASE_H
