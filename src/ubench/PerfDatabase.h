//===- ubench/PerfDatabase.h - measured-throughput database -----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizing store of microbenchmark measurements. The paper's analytical
/// model does not hard-code throughputs: it consumes numbers *measured* by
/// assembly-level benchmarks on the target machine (Section 5.5 proposes
/// exactly such "a small database of performance references"). This class
/// is that database; the model library queries it and the benchmarks print
/// from it.
///
/// Measurements can be *persistent*: constructed with a cache path, the
/// database loads previously-measured entries and makes every new one
/// durable the moment it is measured, so re-running a bench skips every
/// microbenchmark whose inputs are unchanged. Entries are keyed by
/// (machine name, kernel name, measurement shape, FNV-1a hash of the
/// generated binary), so any change to a generator, the ISA encoding, or
/// the notation tuner changes the hash and invalidates exactly the
/// affected entries.
///
/// Durability model (DESIGN.md section 13). The on-disk state is a
/// *snapshot* (the GPDB file, written atomically with temp + fsync +
/// rename + directory sync) plus an append-only *journal*
/// (<snapshot>.journal) of CRC32-framed records, each fsync'd before the
/// measurement is returned to the caller. Loading replays
/// snapshot-then-journal, truncating the journal at the first corrupt
/// frame instead of rejecting the whole cache; once the journal passes a
/// size threshold (or at destruction) it is compacted into a fresh
/// snapshot and emptied, snapshot-write-first so a crash at any point
/// loses no acknowledged record. Old caches are plain snapshots and load
/// unchanged.
///
/// All entry points are thread-safe, so parallel bench sweeps can share
/// one database; a key measured concurrently by two threads is measured
/// twice (the simulator is deterministic, so both arrive at the same
/// value) rather than serializing the sweep on a measurement lock.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_UBENCH_PERFDATABASE_H
#define GPUPERF_UBENCH_PERFDATABASE_H

#include "ubench/MixBench.h"

#include <map>
#include <mutex>

namespace gpuperf {

/// Lazily-measured throughput database for one machine.
class PerfDatabase {
public:
  /// In-memory only: entries live for the lifetime of the object.
  explicit PerfDatabase(const MachineDesc &M) : M(M) {}

  /// Persistent: loads \p CachePath if it exists (a corrupt or
  /// unreadable snapshot is ignored and will be overwritten; its journal
  /// is replayed up to the first corrupt frame), appends every new
  /// measurement to the fsync'd journal as it is made, and compacts
  /// journal into snapshot on destruction. An empty path means in-memory
  /// only, so callers can thread a --no-cache flag through as "".
  PerfDatabase(const MachineDesc &M, std::string CachePath);

  ~PerfDatabase();

  PerfDatabase(const PerfDatabase &) = delete;
  PerfDatabase &operator=(const PerfDatabase &) = delete;

  /// Thread-instruction throughput of the FFMA:LDS.X mix benchmark
  /// (Figures 2 and 4) at the given active-thread count per SM.
  /// \p DepChains is the accumulator-chain count of the dependent
  /// pattern (2 = the paper's Figure 4 structure). Memoized.
  /// \p Pipelined selects previous-load consumption (see MixBenchParams).
  double mixThroughput(int FfmaPerLds, MemWidth Width, bool Dependent,
                       int ActiveThreads, int DepChains = 2,
                       bool Pipelined = false);

  /// Saturated-occupancy mix throughput (2048 threads on Kepler, 1536 on
  /// Fermi -- clamped to what the benchmark kernel's registers allow).
  double mixThroughputSaturated(int FfmaPerLds, MemWidth Width,
                                bool Dependent);

  /// Pure-FFMA thread-instruction throughput (conflict-free operands).
  double ffmaPeak();

  /// Memoized (and, with a cache path, persistent) throughput of an
  /// arbitrary generated kernel under \p Cfg -- the general entry point
  /// the mix helpers above are built on, also used directly by benches
  /// that generate their own kernels (Figure 2, Table 2 styles).
  double measureKernel(const Kernel &K, const MeasureConfig &Cfg);

  /// Cache-effectiveness counters (lifetime of this object).
  size_t hits() const;
  size_t misses() const;
  /// Number of entries currently held (loaded + measured).
  size_t entryCount() const;

  /// Merges entries from \p Path (snapshot plus journal) into this
  /// database. The snapshot is strict -- bad magic/version or a
  /// structurally corrupt body fails, the same sanity-cap stance as
  /// Module::deserialize, and the returned Status reports it. The
  /// journal is lenient: replay stops at the first corrupt frame and
  /// truncates the file there, so a torn tail costs at most the one
  /// unacknowledged record (pinned frame-by-frame by perf_journal_test).
  Status load(const std::string &Path);

  /// Compacts all entries into the snapshot at \p Path, first merging
  /// entries already on disk there (concurrently-written entries from
  /// another process are kept, in its snapshot or its journal, unless
  /// this database re-measured the same key). The write is durable and
  /// atomic: bytes go to a same-directory temporary that is fsync'd,
  /// renamed over \p Path, and the directory is fsync'd -- a crash, full
  /// disk or short write mid-save leaves the previous cache file
  /// untouched (pinned by perf_cache_test). Only after the snapshot is
  /// durable is the journal emptied.
  Status save(const std::string &Path);

  /// The append-only journal sitting next to snapshot \p CachePath.
  static std::string journalPath(const std::string &CachePath) {
    return CachePath + ".journal";
  }

  /// FNV-1a hash of the kernel exactly as it would reach the simulator
  /// (serialized through the binary module format for \p Arch).
  static uint64_t kernelHash(const Kernel &K, GpuGeneration Arch);

  /// Cache file used when benches are not given an explicit path: the
  /// GPUPERF_PERF_CACHE environment variable, or
  /// "gpuperf_perf_cache.gpdb" in the working directory.
  static std::string defaultCachePath();

  /// The machine this database measures.
  const MachineDesc &machine() const { return M; }

private:
  std::string keyFor(const Kernel &K, const MeasureConfig &Cfg) const;

  /// Appends one CRC32-framed record and fsyncs it (the acknowledgment
  /// barrier), then compacts when the journal passed its size
  /// threshold. Caller holds Mutex.
  Status appendJournalLocked(const std::string &Key, double Value);

  /// Folds snapshot + journal + Store into a fresh durable snapshot,
  /// then empties the journal -- in that order, so a crash at any point
  /// leaves every record recoverable. Caller holds Mutex.
  void compactLocked();

  const MachineDesc &M;
  std::string CachePath;

  mutable std::mutex Mutex;
  std::map<std::string, double> Store; ///< Guarded by Mutex.
  size_t Hits = 0, Misses = 0;         ///< Guarded by Mutex.
  bool Dirty = false;                  ///< Guarded by Mutex.
  int JournalFd = -1;                  ///< Guarded by Mutex.
  size_t JournalBytes = 0;             ///< Guarded by Mutex.
};

/// Testing hook: caps the number of bytes PerfDatabase::save may write
/// to its temporary file (0 = unlimited, the default). A capped save
/// fails like a full disk would -- the test suite uses this to prove a
/// failed save cannot clobber the previous cache file. Not thread-safe;
/// set only from single-threaded test code. (Delegates to
/// setDurableWriteByteLimitForTesting in support/FileIO.h, so it also
/// caps compaction snapshot writes.)
void setPerfCacheSaveByteLimitForTesting(size_t Limit);

/// Testing hook: journal size (bytes) past which an append triggers
/// compaction (0 = the production default). Lowering it makes every
/// append compact, which is how the kill-during-compaction tests reach
/// the interesting crash windows cheaply.
void setPerfJournalCompactionThresholdForTesting(size_t Bytes);

} // namespace gpuperf

#endif // GPUPERF_UBENCH_PERFDATABASE_H
