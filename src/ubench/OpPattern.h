//===- ubench/OpPattern.h - Table 2 operand-pattern benchmarks ---*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the paper's Table 2 benchmarks: "each thread executes the same
/// 8192 math instructions", implemented (per the paper's footnote) as 4
/// register-renamed independent copies of the pattern unrolled. Renaming
/// adds multiples of 8 to every register index, which preserves the bank
/// mapping (bank layout has period 8), so a pattern's conflict behaviour is
/// exactly replicated across the copies.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_UBENCH_OPPATTERN_H
#define GPUPERF_UBENCH_OPPATTERN_H

#include "arch/MachineDesc.h"
#include "asmtool/NotationTuner.h"
#include "isa/Module.h"

#include <string>
#include <vector>

namespace gpuperf {

/// Builds the unrolled benchmark for one instruction pattern.
/// \p Pattern must only use registers < 8*Copies below the renaming cap.
Kernel generateOpPatternBench(const MachineDesc &M,
                              const Instruction &Pattern,
                              int BodyInsts = 2048, int Copies = 4,
                              NotationQuality Q = NotationQuality::Tuned);

/// A row of the paper's Table 2: a pattern and its measured throughput.
struct Table2Row {
  std::string Syntax;          ///< e.g. "FFMA R0, R1, R3, R9"
  double PaperThroughput = 0;  ///< Paper-reported ops/shader cycle.
  Instruction Pattern;
};

/// The 14 patterns of Table 2 with the paper's measured values.
std::vector<Table2Row> table2Patterns();

} // namespace gpuperf

#endif // GPUPERF_UBENCH_OPPATTERN_H
