//===- ubench/SweepCheckpoint.h - completed-point journal -------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sidecar journal that makes sweeps resumable: every completed
/// sweep point is recorded as one CRC32-framed, fsync'd append carrying
/// the sweep name, the point index, and the point's rendered result
/// rows. A killed sweep restarted with --resume replays the file
/// (truncating at the first torn frame, same recovery stance as the
/// PerfDatabase journal), serves the recorded rows for completed points
/// without re-running them, and re-runs only what is missing -- so a
/// resumed sweep's output is bit-identical to an uninterrupted one and
/// no completed point is ever executed twice.
///
/// File layout (all integers little-endian):
///   "GPCK" | u32 version
///   then per frame: u32 payload length | u32 crc32(payload) | payload
///   payload: u32 name length | name | u32 point index |
///            u32 row count | per row: u32 length | bytes
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_UBENCH_SWEEPCHECKPOINT_H
#define GPUPERF_UBENCH_SWEEPCHECKPOINT_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gpuperf {

/// Journal of completed sweep points, shared by every sweep in one
/// bench process (records are keyed by sweep name + point index).
/// markDone is thread-safe so sweep workers can checkpoint points as
/// they finish; lookups are expected before the sweep fans out.
class SweepCheckpoint {
public:
  /// Disabled checkpoint: lookups miss, markDone is a no-op.
  SweepCheckpoint() = default;

  /// Opens (creating if needed) the checkpoint at \p Path. With
  /// \p Resume, previously recorded points are loaded -- a torn or
  /// corrupt tail is truncated at the first bad frame, keeping every
  /// fully-acknowledged record. Without \p Resume the file is emptied:
  /// a fresh (non-resumed) run must re-run everything.
  SweepCheckpoint(std::string Path, bool Resume);

  ~SweepCheckpoint();

  SweepCheckpoint(const SweepCheckpoint &) = delete;
  SweepCheckpoint &operator=(const SweepCheckpoint &) = delete;

  /// True when constructed with a path.
  bool enabled() const { return !Path.empty(); }

  /// Rows recorded for (\p Sweep, \p Point), or null when the point has
  /// not been completed (or checkpointing is disabled).
  const std::vector<std::string> *lookup(const std::string &Sweep,
                                         size_t Point) const;

  /// Durably records that \p Point of \p Sweep completed with \p Rows:
  /// the frame is appended and fsync'd before returning, so a kill any
  /// time later cannot double-run the point. No-op when disabled.
  Status markDone(const std::string &Sweep, size_t Point,
                  const std::vector<std::string> &Rows);

  /// Number of completed-point records currently known.
  size_t recordCount() const;

private:
  std::string Path;
  mutable std::mutex Mutex;
  std::map<std::pair<std::string, size_t>, std::vector<std::string>>
      Done;        ///< Guarded by Mutex.
  int Fd = -1;     ///< Guarded by Mutex.
};

} // namespace gpuperf

#endif // GPUPERF_UBENCH_SWEEPCHECKPOINT_H
