//===- ubench/SweepRunner.cpp - supervised, resumable sweeps --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "ubench/SweepRunner.h"

#include "support/ThreadPool.h"

using namespace gpuperf;

namespace {

uint64_t fnv1a(uint64_t Hash, const void *Data, size_t Size) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= P[I];
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

uint64_t fnv1aU64(uint64_t Hash, uint64_t V) {
  uint8_t Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<uint8_t>(V >> (8 * I));
  return fnv1a(Hash, Bytes, 8);
}

} // namespace

SweepResult gpuperf::runSupervisedSweep(const SweepOptions &O,
                                        const std::string &Name, size_t N,
                                        const SweepPointFn &Point) {
  SweepResult Out;
  Out.Rows.resize(N);
  Out.Report.Name = Name;
  Out.Report.Points = N;

  // Per-index slots keep the parallel run deterministic: workers write
  // only their own point's state; everything order-sensitive (report
  // assembly, digest) happens on the calling thread afterwards.
  std::vector<std::optional<TaskOutcome>> Failures(N);
  std::vector<uint8_t> FromCheckpoint(N, 0);
  std::vector<std::string> CheckpointErrors(N);

  Supervisor Sup(O.Policy);
  parallelFor(O.Jobs, N, [&](size_t I) {
    if (O.Checkpoint) {
      if (const std::vector<std::string> *Rows =
              O.Checkpoint->lookup(Name, I)) {
        Out.Rows[I] = *Rows;
        FromCheckpoint[I] = 1;
        return; // Never double-run a completed point.
      }
    }

    std::vector<std::string> Rows;
    TaskOutcome Outcome = Sup.run([&](const Supervisor::Attempt &A) {
      SweepPointAttempt R = Point(I, A);
      if (R.Result.K == AttemptResult::Kind::Ok)
        Rows = std::move(R.Rows);
      return R.Result;
    });
    if (!Outcome.ok()) {
      Failures[I] = Outcome;
      return;
    }
    if (O.Checkpoint) {
      // Record completion durably before exposing the result: once the
      // sweep moves on, a kill must not cause a double run.
      if (Status S = O.Checkpoint->markDone(Name, I, Rows); S.failed())
        CheckpointErrors[I] = S.message();
    }
    Out.Rows[I] = std::move(Rows);
  });

  uint64_t Hash = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < N; ++I) {
    if (Out.Rows[I]) {
      ++Out.Report.Completed;
      if (FromCheckpoint[I])
        ++Out.Report.Resumed;
      Hash = fnv1aU64(Hash, I);
      for (const std::string &Row : *Out.Rows[I]) {
        Hash = fnv1a(Hash, Row.data(), Row.size());
        Hash = fnv1aU64(Hash, Row.size());
      }
    } else if (Failures[I]) {
      SweepPointFailure F;
      F.Point = I;
      F.Result = Failures[I]->Result;
      F.Attempts = Failures[I]->Attempts;
      F.Reason = Failures[I]->Error;
      Out.Report.Incomplete.push_back(std::move(F));
    }
    if (!CheckpointErrors[I].empty()) {
      if (Out.Report.CheckpointErrors == 0)
        Out.Report.FirstCheckpointError = CheckpointErrors[I];
      ++Out.Report.CheckpointErrors;
    }
  }
  Out.Report.RowsHash = Hash;
  return Out;
}
