//===- ubench/PerfDatabase.cpp - measured-throughput database -------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "ubench/PerfDatabase.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <unistd.h>

using namespace gpuperf;

namespace {

/// Cache-file layout (all integers little-endian):
///   "GPDB" | u32 version | u32 entry count
///   then per entry: u32 key length | key bytes | u64 value bits (double)
constexpr uint32_t CacheMagic = 0x42445047; // "GPDB"
constexpr uint32_t CacheVersion = 1;

/// Sanity caps, same stance as Module::deserialize: any structurally
/// impossible size means corruption, and we reject before allocating.
constexpr uint32_t MaxCacheEntries = 1u << 20;
constexpr uint32_t MaxKeyBytes = 1u << 12;

void appendU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void appendU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Bounds-checked little-endian cursor over the raw file bytes.
class CacheReader {
public:
  explicit CacheReader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool readU32(uint32_t &V) {
    if (Pos + 4 > Bytes.size())
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Bytes[Pos++]) << (8 * I);
    return true;
  }
  bool readU64(uint64_t &V) {
    if (Pos + 8 > Bytes.size())
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Bytes[Pos++]) << (8 * I);
    return true;
  }
  bool readBytes(std::string &S, uint32_t N) {
    if (Pos + N > Bytes.size())
      return false;
    S.assign(reinterpret_cast<const char *>(Bytes.data() + Pos), N);
    Pos += N;
    return true;
  }
  bool atEnd() const { return Pos == Bytes.size(); }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
};

/// Parses a cache file into a key->value map. Every failure names the
/// structural check that fired so a truncated or bit-flipped file is
/// diagnosable rather than silently half-loaded.
Expected<std::map<std::string, double>>
parseCacheFile(const std::string &Path) {
  using Result = Expected<std::map<std::string, double>>;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Result::error("cannot open perf cache '" + Path + "'");
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());

  CacheReader R(Bytes);
  uint32_t Magic = 0, Version = 0, Count = 0;
  if (!R.readU32(Magic) || Magic != CacheMagic)
    return Result::error("perf cache: bad magic (not a GPDB file)");
  if (!R.readU32(Version) || Version != CacheVersion)
    return Result::error(
        formatString("perf cache: unsupported version %u", Version));
  if (!R.readU32(Count))
    return Result::error("perf cache: truncated header");
  if (Count > MaxCacheEntries)
    return Result::error(
        formatString("perf cache: entry count %u exceeds cap", Count));

  std::map<std::string, double> Entries;
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t KeyLen = 0;
    std::string Key;
    uint64_t Bits = 0;
    if (!R.readU32(KeyLen))
      return Result::error("perf cache: truncated entry header");
    if (KeyLen == 0 || KeyLen > MaxKeyBytes)
      return Result::error(
          formatString("perf cache: key length %u exceeds cap", KeyLen));
    if (!R.readBytes(Key, KeyLen) || !R.readU64(Bits))
      return Result::error("perf cache: truncated entry");
    double Value;
    std::memcpy(&Value, &Bits, 8);
    Entries[Key] = Value;
  }
  if (!R.atEnd())
    return Result::error("perf cache: trailing bytes after last entry");
  return Entries;
}

/// Testing hook state; see setPerfCacheSaveByteLimitForTesting.
size_t SaveByteLimit = 0;

Status writeCacheFile(const std::string &Path,
                      const std::map<std::string, double> &Entries) {
  assert(Entries.size() <= MaxCacheEntries && "cache grew past its cap");
  std::vector<uint8_t> Out;
  appendU32(Out, CacheMagic);
  appendU32(Out, CacheVersion);
  appendU32(Out, static_cast<uint32_t>(Entries.size()));
  for (const auto &[Key, Value] : Entries) {
    appendU32(Out, static_cast<uint32_t>(Key.size()));
    Out.insert(Out.end(), Key.begin(), Key.end());
    uint64_t Bits;
    std::memcpy(&Bits, &Value, 8);
    appendU64(Out, Bits);
  }

  // Write to a same-directory temporary and rename into place: rename(2)
  // is atomic within a filesystem, so a crash, full disk or short write
  // mid-save leaves the previous cache file untouched instead of
  // replacing it with a truncated one the next load would reject. The
  // pid suffix keeps concurrent saves from different processes off each
  // other's temporary.
  std::string Tmp =
      formatString("%s.tmp.%ld", Path.c_str(), static_cast<long>(getpid()));
  size_t WriteBytes = Out.size();
  if (SaveByteLimit && SaveByteLimit < WriteBytes)
    WriteBytes = SaveByteLimit; // Simulated disk-full for the tests.
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return Status::error("cannot write perf cache '" + Tmp + "'");
    OS.write(reinterpret_cast<const char *>(Out.data()),
             static_cast<std::streamsize>(WriteBytes));
    OS.flush();
    if (!OS || WriteBytes != Out.size()) {
      OS.close();
      std::remove(Tmp.c_str());
      return Status::error("short write to perf cache '" + Path +
                           "' (previous cache left intact)");
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Status::error("cannot rename perf cache temporary over '" +
                         Path + "'");
  }
  return Status::success();
}

} // namespace

void gpuperf::setPerfCacheSaveByteLimitForTesting(size_t Limit) {
  SaveByteLimit = Limit;
}

PerfDatabase::PerfDatabase(const MachineDesc &M, std::string CachePath)
    : M(M), CachePath(std::move(CachePath)) {
  // A missing file is the normal cold-cache case; a corrupt one is
  // treated the same (it will be rewritten wholesale on save). Callers
  // that need to distinguish use load() directly.
  if (!this->CachePath.empty())
    (void)load(this->CachePath);
}

PerfDatabase::~PerfDatabase() {
  bool NeedSave;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    NeedSave = Dirty && !CachePath.empty();
  }
  if (!NeedSave)
    return;
  if (Status S = save(CachePath); S.failed())
    std::fprintf(stderr, "warning: %s\n", S.message().c_str());
}

uint64_t PerfDatabase::kernelHash(const Kernel &K, GpuGeneration Arch) {
  Module Mod;
  Mod.Arch = Arch;
  Mod.Kernels.push_back(K);
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (uint8_t B : Mod.serialize()) {
    Hash ^= B;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

std::string PerfDatabase::defaultCachePath() {
  if (const char *Env = std::getenv("GPUPERF_PERF_CACHE"))
    return Env;
  return "gpuperf_perf_cache.gpdb";
}

std::string PerfDatabase::keyFor(const Kernel &K,
                                 const MeasureConfig &Cfg) const {
  // The code hash covers the instruction stream, register count, and
  // shared size, so generator or encoder changes invalidate exactly the
  // entries they affect; the name keeps keys human-readable in dumps.
  return formatString("%s|%s|tb%d|bpsm%d|%016llx", M.Name.c_str(),
                      K.Name.c_str(), Cfg.ThreadsPerBlock, Cfg.BlocksPerSM,
                      static_cast<unsigned long long>(
                          kernelHash(K, M.Generation)));
}

double PerfDatabase::measureKernel(const Kernel &K,
                                   const MeasureConfig &Cfg) {
  std::string Key = keyFor(K, Cfg);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (auto It = Store.find(Key); It != Store.end()) {
      ++Hits;
      return It->second;
    }
    ++Misses;
  }
  // Measure outside the lock so concurrent sweep threads overlap their
  // simulations. Two threads racing on one key both measure it; the
  // simulator is deterministic, so the duplicated work is harmless.
  double T = measureThroughput(M, K, Cfg);
  std::lock_guard<std::mutex> Lock(Mutex);
  Store[Key] = T;
  Dirty = true;
  return T;
}

double PerfDatabase::mixThroughput(int FfmaPerLds, MemWidth Width,
                                   bool Dependent, int ActiveThreads,
                                   int DepChains, bool Pipelined) {
  assert(ActiveThreads >= WarpSize && "need at least one warp");

  MixBenchParams P;
  P.FfmaPerLds = FfmaPerLds;
  P.Width = Width;
  P.Dependent = Dependent;
  P.DepChains = DepChains;
  P.PipelinedConsume = Pipelined;
  Kernel K = generateMixBench(M, P);

  MeasureConfig Cfg;
  if (ActiveThreads <= M.MaxThreadsPerBlock) {
    Cfg.ThreadsPerBlock = ActiveThreads;
    Cfg.BlocksPerSM = 1;
  } else {
    Cfg.BlocksPerSM =
        (ActiveThreads + M.MaxThreadsPerBlock - 1) / M.MaxThreadsPerBlock;
    Cfg.ThreadsPerBlock = ActiveThreads / Cfg.BlocksPerSM;
  }
  return measureKernel(K, Cfg);
}

double PerfDatabase::mixThroughputSaturated(int FfmaPerLds, MemWidth Width,
                                            bool Dependent) {
  // The benchmark kernels use 32 registers/thread, so the register file
  // bounds the reachable occupancy: 1024 threads on Fermi (32K regs),
  // 2048 on Kepler (64K regs).
  int Threads = std::min(M.MaxThreadsPerSM, M.RegistersPerSM / 32);
  return mixThroughput(FfmaPerLds, Width, Dependent, Threads);
}

double PerfDatabase::ffmaPeak() {
  return mixThroughputSaturated(-1, MemWidth::B64, false);
}

size_t PerfDatabase::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

size_t PerfDatabase::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

size_t PerfDatabase::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Store.size();
}

Status PerfDatabase::load(const std::string &Path) {
  auto Entries = parseCacheFile(Path);
  if (!Entries)
    return Entries.takeStatus();
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Key, Value] : *Entries)
    Store.insert({Key, Value}); // Freshly-measured values win.
  return Status::success();
}

Status PerfDatabase::save(const std::string &Path) const {
  std::map<std::string, double> Merged;
  // Keep entries another process appended since our load -- unless we
  // re-measured the same key, in which case ours is at least as fresh.
  if (auto OnDisk = parseCacheFile(Path))
    Merged = std::move(*OnDisk);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Key, Value] : Store)
      Merged[Key] = Value;
  }
  return writeCacheFile(Path, Merged);
}
