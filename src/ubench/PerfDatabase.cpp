//===- ubench/PerfDatabase.cpp - measured-throughput database -------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "ubench/PerfDatabase.h"

#include <algorithm>
#include <cassert>

using namespace gpuperf;

double PerfDatabase::mixThroughput(int FfmaPerLds, MemWidth Width,
                                   bool Dependent, int ActiveThreads,
                                   int DepChains, bool Pipelined) {
  assert(ActiveThreads >= WarpSize && "need at least one warp");
  auto Key = std::make_tuple(FfmaPerLds, static_cast<int>(Width),
                             Dependent, ActiveThreads, DepChains,
                             Pipelined);
  if (auto It = Cache.find(Key); It != Cache.end())
    return It->second;

  MixBenchParams P;
  P.FfmaPerLds = FfmaPerLds;
  P.Width = Width;
  P.Dependent = Dependent;
  P.DepChains = DepChains;
  P.PipelinedConsume = Pipelined;
  Kernel K = generateMixBench(M, P);

  MeasureConfig Cfg;
  if (ActiveThreads <= M.MaxThreadsPerBlock) {
    Cfg.ThreadsPerBlock = ActiveThreads;
    Cfg.BlocksPerSM = 1;
  } else {
    Cfg.BlocksPerSM =
        (ActiveThreads + M.MaxThreadsPerBlock - 1) / M.MaxThreadsPerBlock;
    Cfg.ThreadsPerBlock = ActiveThreads / Cfg.BlocksPerSM;
  }
  double T = measureThroughput(M, K, Cfg);
  Cache[Key] = T;
  return T;
}

double PerfDatabase::mixThroughputSaturated(int FfmaPerLds, MemWidth Width,
                                            bool Dependent) {
  // The benchmark kernels use 32 registers/thread, so the register file
  // bounds the reachable occupancy: 1024 threads on Fermi (32K regs),
  // 2048 on Kepler (64K regs).
  int Threads = std::min(M.MaxThreadsPerSM, M.RegistersPerSM / 32);
  return mixThroughput(FfmaPerLds, Width, Dependent, Threads);
}

double PerfDatabase::ffmaPeak() {
  return mixThroughputSaturated(-1, MemWidth::B64, false);
}
