//===- ubench/PerfDatabase.cpp - measured-throughput database -------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "ubench/PerfDatabase.h"

#include "support/Crc32.h"
#include "support/FileIO.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace gpuperf;

namespace {

/// Snapshot-file layout (all integers little-endian):
///   "GPDB" | u32 version | u32 entry count
///   then per entry: u32 key length | key bytes | u64 value bits (double)
/// This is the compaction output format; it predates the journal, so
/// old caches load unchanged.
constexpr uint32_t CacheMagic = 0x42445047; // "GPDB"
constexpr uint32_t CacheVersion = 1;

/// Journal-file layout (the append-only write-ahead log that sits next
/// to the snapshot as <snapshot>.journal):
///   "GPDJ" | u32 version
///   then per frame: u32 payload length | u32 crc32(payload) | payload
///   payload: u32 key length | key bytes | u64 value bits (double)
/// Every acknowledged measurement is one fsync'd frame. Recovery scans
/// frames until the first structural or CRC failure and truncates the
/// file there: a torn tail costs at most the unacknowledged frame,
/// never the records before it.
constexpr uint32_t JournalMagic = 0x4a445047; // "GPDJ"
constexpr uint32_t JournalVersion = 1;
constexpr size_t JournalHeaderBytes = 8;

/// Sanity caps, same stance as Module::deserialize: any structurally
/// impossible size means corruption, and we reject before allocating.
constexpr uint32_t MaxCacheEntries = 1u << 20;
constexpr uint32_t MaxKeyBytes = 1u << 12;
constexpr uint32_t MaxJournalPayload = 4 + MaxKeyBytes + 8;

/// Journal size at which an append triggers compaction into the
/// snapshot (test hook below can lower it).
constexpr size_t DefaultCompactionThreshold = 256u << 10;
size_t CompactionThresholdOverride = 0;

size_t compactionThreshold() {
  return CompactionThresholdOverride ? CompactionThresholdOverride
                                     : DefaultCompactionThreshold;
}

void appendU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void appendU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Bounds-checked little-endian cursor over the raw file bytes.
class CacheReader {
public:
  explicit CacheReader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool readU32(uint32_t &V) {
    if (Pos + 4 > Bytes.size())
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Bytes[Pos++]) << (8 * I);
    return true;
  }
  bool readU64(uint64_t &V) {
    if (Pos + 8 > Bytes.size())
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Bytes[Pos++]) << (8 * I);
    return true;
  }
  bool readBytes(std::string &S, uint32_t N) {
    if (Pos + N > Bytes.size())
      return false;
    S.assign(reinterpret_cast<const char *>(Bytes.data() + Pos), N);
    Pos += N;
    return true;
  }
  bool atEnd() const { return Pos == Bytes.size(); }
  size_t pos() const { return Pos; }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
};

/// Parses a snapshot file into a key->value map. Every failure names
/// the structural check that fired so a truncated or bit-flipped file
/// is diagnosable rather than silently half-loaded.
Expected<std::map<std::string, double>>
parseCacheFile(const std::string &Path) {
  using Result = Expected<std::map<std::string, double>>;
  auto File = readFileBytes(Path);
  if (!File)
    return Result::error("cannot open perf cache '" + Path + "'");
  const std::vector<uint8_t> &Bytes = *File;

  CacheReader R(Bytes);
  uint32_t Magic = 0, Version = 0, Count = 0;
  if (!R.readU32(Magic) || Magic != CacheMagic)
    return Result::error("perf cache: bad magic (not a GPDB file)");
  if (!R.readU32(Version) || Version != CacheVersion)
    return Result::error(
        formatString("perf cache: unsupported version %u", Version));
  if (!R.readU32(Count))
    return Result::error("perf cache: truncated header");
  if (Count > MaxCacheEntries)
    return Result::error(
        formatString("perf cache: entry count %u exceeds cap", Count));

  std::map<std::string, double> Entries;
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t KeyLen = 0;
    std::string Key;
    uint64_t Bits = 0;
    if (!R.readU32(KeyLen))
      return Result::error("perf cache: truncated entry header");
    if (KeyLen == 0 || KeyLen > MaxKeyBytes)
      return Result::error(
          formatString("perf cache: key length %u exceeds cap", KeyLen));
    if (!R.readBytes(Key, KeyLen) || !R.readU64(Bits))
      return Result::error("perf cache: truncated entry");
    double Value;
    std::memcpy(&Value, &Bits, 8);
    Entries[Key] = Value;
  }
  if (!R.atEnd())
    return Result::error("perf cache: trailing bytes after last entry");
  return Entries;
}

/// Lenient journal replay result: everything that could be recovered
/// plus where the valid prefix ends. Replay never fails wholesale --
/// a corrupt header just means "no valid bytes".
struct JournalReplay {
  std::map<std::string, double> Entries;
  size_t ValidBytes = 0; ///< Length of the intact prefix (0 when the
                         ///< header itself is unusable).
  size_t FileBytes = 0;  ///< Actual file size (0 when missing).
};

/// Decodes one frame's payload. Returns false on any structural
/// violation (the frame is then treated as corrupt).
bool decodeJournalPayload(const std::vector<uint8_t> &Payload,
                          std::string &Key, double &Value) {
  CacheReader R(Payload);
  uint32_t KeyLen = 0;
  uint64_t Bits = 0;
  if (!R.readU32(KeyLen) || KeyLen == 0 || KeyLen > MaxKeyBytes)
    return false;
  if (!R.readBytes(Key, KeyLen) || !R.readU64(Bits) || !R.atEnd())
    return false;
  std::memcpy(&Value, &Bits, 8);
  return true;
}

/// Replays the journal at \p Path, stopping at the first corrupt or
/// torn frame.
JournalReplay replayJournalFile(const std::string &Path) {
  JournalReplay Out;
  auto File = readFileBytes(Path);
  if (!File)
    return Out; // Missing journal: normal cold state.
  const std::vector<uint8_t> &Bytes = *File;
  Out.FileBytes = Bytes.size();

  CacheReader R(Bytes);
  uint32_t Magic = 0, Version = 0;
  if (!R.readU32(Magic) || Magic != JournalMagic || !R.readU32(Version) ||
      Version != JournalVersion)
    return Out; // Unusable header: recover nothing, truncate to zero.
  Out.ValidBytes = JournalHeaderBytes;

  for (;;) {
    uint32_t Len = 0, Crc = 0;
    if (!R.readU32(Len) || Len == 0 || Len > MaxJournalPayload)
      return Out;
    if (!R.readU32(Crc))
      return Out;
    std::string PayloadStr;
    if (!R.readBytes(PayloadStr, Len))
      return Out;
    if (crc32(PayloadStr.data(), PayloadStr.size()) != Crc)
      return Out;
    std::vector<uint8_t> Payload(PayloadStr.begin(), PayloadStr.end());
    std::string Key;
    double Value = 0;
    if (!decodeJournalPayload(Payload, Key, Value))
      return Out;
    Out.Entries[Key] = Value;
    Out.ValidBytes = R.pos();
  }
}

Status writeCacheFile(const std::string &Path,
                      const std::map<std::string, double> &Entries) {
  assert(Entries.size() <= MaxCacheEntries && "cache grew past its cap");
  std::vector<uint8_t> Out;
  appendU32(Out, CacheMagic);
  appendU32(Out, CacheVersion);
  appendU32(Out, static_cast<uint32_t>(Entries.size()));
  for (const auto &[Key, Value] : Entries) {
    appendU32(Out, static_cast<uint32_t>(Key.size()));
    Out.insert(Out.end(), Key.begin(), Key.end());
    uint64_t Bits;
    std::memcpy(&Bits, &Value, 8);
    appendU64(Out, Bits);
  }

  // Durable atomic replace (temp + fsync + rename + directory sync): a
  // crash, full disk or short write mid-save leaves the previous cache
  // file untouched instead of replacing it with a truncated one, and a
  // power loss after the rename cannot publish an empty file.
  if (Status S = writeFileDurable(Path, Out.data(), Out.size()); S.failed())
    return Status::error(S.message() + " while saving perf cache '" + Path +
                         "' (previous cache left intact)");
  return Status::success();
}

} // namespace

void gpuperf::setPerfCacheSaveByteLimitForTesting(size_t Limit) {
  setDurableWriteByteLimitForTesting(Limit);
}

void gpuperf::setPerfJournalCompactionThresholdForTesting(size_t Bytes) {
  CompactionThresholdOverride = Bytes;
}

PerfDatabase::PerfDatabase(const MachineDesc &M, std::string CachePath)
    : M(M), CachePath(std::move(CachePath)) {
  // A missing file is the normal cold-cache case; a corrupt snapshot is
  // treated the same (it will be rewritten wholesale on save), and the
  // journal replay inside load() recovers every acknowledged record a
  // crashed predecessor got to fsync. Callers that need to distinguish
  // use load() directly.
  if (!this->CachePath.empty())
    (void)load(this->CachePath);
}

PerfDatabase::~PerfDatabase() {
  bool NeedSave;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    NeedSave = Dirty && !CachePath.empty();
  }
  // The journal already holds every measurement durably; the exit save
  // is compaction housekeeping (fold the journal into the snapshot so
  // the next load replays nothing).
  if (NeedSave)
    if (Status S = save(CachePath); S.failed())
      std::fprintf(stderr, "warning: %s\n", S.message().c_str());
  if (JournalFd >= 0)
    ::close(JournalFd);
}

uint64_t PerfDatabase::kernelHash(const Kernel &K, GpuGeneration Arch) {
  Module Mod;
  Mod.Arch = Arch;
  Mod.Kernels.push_back(K);
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (uint8_t B : Mod.serialize()) {
    Hash ^= B;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

std::string PerfDatabase::defaultCachePath() {
  if (const char *Env = std::getenv("GPUPERF_PERF_CACHE"))
    return Env;
  return "gpuperf_perf_cache.gpdb";
}

std::string PerfDatabase::keyFor(const Kernel &K,
                                 const MeasureConfig &Cfg) const {
  // The code hash covers the instruction stream, register count, and
  // shared size, so generator or encoder changes invalidate exactly the
  // entries they affect; the name keeps keys human-readable in dumps.
  return formatString("%s|%s|tb%d|bpsm%d|%016llx", M.Name.c_str(),
                      K.Name.c_str(), Cfg.ThreadsPerBlock, Cfg.BlocksPerSM,
                      static_cast<unsigned long long>(
                          kernelHash(K, M.Generation)));
}

double PerfDatabase::measureKernel(const Kernel &K,
                                   const MeasureConfig &Cfg) {
  std::string Key = keyFor(K, Cfg);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (auto It = Store.find(Key); It != Store.end()) {
      ++Hits;
      return It->second;
    }
    ++Misses;
  }
  // Measure outside the lock so concurrent sweep threads overlap their
  // simulations. Two threads racing on one key both measure it; the
  // simulator is deterministic, so the duplicated work is harmless (the
  // journal replay is idempotent for the duplicated frame too).
  double T = measureThroughput(M, K, Cfg);
  std::lock_guard<std::mutex> Lock(Mutex);
  Store[Key] = T;
  Dirty = true;
  // Acknowledge durably before returning: once a caller has seen this
  // value, no crash may lose it. Append failures degrade to in-memory
  // (the value is still correct; only durability is reduced).
  if (Status S = appendJournalLocked(Key, T); S.failed())
    std::fprintf(stderr, "warning: perf journal: %s\n",
                 S.message().c_str());
  return T;
}

Status PerfDatabase::appendJournalLocked(const std::string &Key,
                                         double Value) {
  if (CachePath.empty())
    return Status::success();
  std::string JPath = journalPath(CachePath);
  if (JournalFd < 0) {
    JournalFd = ::open(JPath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (JournalFd < 0)
      return Status::error("cannot open '" + JPath + "' for append");
    // Make the journal's directory entry itself durable: without this,
    // a power loss could lose the whole file even though every frame
    // inside it was fsync'd.
    syncDirectoryOf(JPath);
  }

  // Re-check the size every append: recovery (or a concurrent save to
  // the same path) may have truncated the file under our O_APPEND fd,
  // in which case the header must be written again.
  struct stat St;
  size_t FileBytes = 0;
  if (::fstat(JournalFd, &St) == 0)
    FileBytes = static_cast<size_t>(St.st_size);

  std::vector<uint8_t> Payload;
  appendU32(Payload, static_cast<uint32_t>(Key.size()));
  Payload.insert(Payload.end(), Key.begin(), Key.end());
  uint64_t Bits;
  std::memcpy(&Bits, &Value, 8);
  appendU64(Payload, Bits);

  std::vector<uint8_t> Frame;
  if (FileBytes == 0) {
    appendU32(Frame, JournalMagic);
    appendU32(Frame, JournalVersion);
  }
  appendU32(Frame, static_cast<uint32_t>(Payload.size()));
  appendU32(Frame, crc32(Payload.data(), Payload.size()));
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());

  size_t Done = 0;
  while (Done < Frame.size()) {
    ssize_t N = ::write(JournalFd, Frame.data() + Done, Frame.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Done += static_cast<size_t>(N);
  }
  if (Done != Frame.size()) {
    // Tear off our partial frame so the on-disk tail stays clean; if
    // even that fails, recovery's CRC scan handles the torn tail.
    (void)::ftruncate(JournalFd, static_cast<off_t>(FileBytes));
    return Status::error("short append to '" + JPath + "'");
  }
  // The acknowledgment barrier: the record is only considered durable
  // (and the measurement only returned to the caller) once it is on
  // the platter, not in the page cache.
  if (::fsync(JournalFd) != 0)
    return Status::error("cannot fsync '" + JPath + "'");
  JournalBytes = FileBytes + Frame.size();

  if (JournalBytes > compactionThreshold())
    compactLocked();
  return Status::success();
}

void PerfDatabase::compactLocked() {
  // Fold snapshot + journal + in-memory store into a fresh snapshot,
  // then drop the journal. Order is the invariant: the journal is only
  // truncated *after* the snapshot write is durable, so a crash at any
  // point leaves every record in the snapshot, the journal, or both
  // (replay is idempotent) -- never in neither.
  std::map<std::string, double> Merged;
  if (auto OnDisk = parseCacheFile(CachePath))
    Merged = std::move(*OnDisk);
  for (const auto &[Key, Value] :
       replayJournalFile(journalPath(CachePath)).Entries)
    Merged[Key] = Value;
  for (const auto &[Key, Value] : Store)
    Merged[Key] = Value;

  if (Status S = writeCacheFile(CachePath, Merged); S.failed()) {
    // Compaction is an optimization; the journal still holds the
    // records, so a failed (or crash-injected) snapshot write must not
    // touch it.
    std::fprintf(stderr, "warning: perf cache compaction: %s\n",
                 S.message().c_str());
    return;
  }
  if (JournalFd >= 0 && ::ftruncate(JournalFd, 0) == 0)
    JournalBytes = 0;
  Dirty = false;
}

double PerfDatabase::mixThroughput(int FfmaPerLds, MemWidth Width,
                                   bool Dependent, int ActiveThreads,
                                   int DepChains, bool Pipelined) {
  assert(ActiveThreads >= WarpSize && "need at least one warp");

  MixBenchParams P;
  P.FfmaPerLds = FfmaPerLds;
  P.Width = Width;
  P.Dependent = Dependent;
  P.DepChains = DepChains;
  P.PipelinedConsume = Pipelined;
  Kernel K = generateMixBench(M, P);

  MeasureConfig Cfg;
  if (ActiveThreads <= M.MaxThreadsPerBlock) {
    Cfg.ThreadsPerBlock = ActiveThreads;
    Cfg.BlocksPerSM = 1;
  } else {
    Cfg.BlocksPerSM =
        (ActiveThreads + M.MaxThreadsPerBlock - 1) / M.MaxThreadsPerBlock;
    Cfg.ThreadsPerBlock = ActiveThreads / Cfg.BlocksPerSM;
  }
  return measureKernel(K, Cfg);
}

double PerfDatabase::mixThroughputSaturated(int FfmaPerLds, MemWidth Width,
                                            bool Dependent) {
  // The benchmark kernels use 32 registers/thread, so the register file
  // bounds the reachable occupancy: 1024 threads on Fermi (32K regs),
  // 2048 on Kepler (64K regs).
  int Threads = std::min(M.MaxThreadsPerSM, M.RegistersPerSM / 32);
  return mixThroughput(FfmaPerLds, Width, Dependent, Threads);
}

double PerfDatabase::ffmaPeak() {
  return mixThroughputSaturated(-1, MemWidth::B64, false);
}

size_t PerfDatabase::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

size_t PerfDatabase::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

size_t PerfDatabase::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Store.size();
}

Status PerfDatabase::load(const std::string &Path) {
  auto Entries = parseCacheFile(Path);

  // The journal is replayed regardless of the snapshot's fate: records
  // appended after the last compaction exist nowhere else, and a
  // missing snapshot next to a journal is the normal state of a
  // database that crashed before its first compaction.
  JournalReplay Replay = replayJournalFile(journalPath(Path));
  if (Replay.ValidBytes < Replay.FileBytes) {
    // Torn or corrupt tail: physically truncate at the first bad frame
    // so subsequent appends extend a clean prefix instead of burying
    // valid frames behind garbage.
    (void)::truncate(journalPath(Path).c_str(),
                     static_cast<off_t>(Replay.ValidBytes));
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Entries)
    for (auto &[Key, Value] : *Entries)
      Store.insert({Key, Value}); // Freshly-measured values win.
  for (auto &[Key, Value] : Replay.Entries)
    Store.insert({Key, Value});
  if (!Replay.Entries.empty() && Path == CachePath)
    Dirty = true; // Compact the replayed journal into the snapshot on exit.
  if (!Entries)
    return Entries.takeStatus();
  return Status::success();
}

Status PerfDatabase::save(const std::string &Path) {
  std::map<std::string, double> Merged;
  // Keep entries another process appended since our load -- unless we
  // re-measured the same key, in which case ours is at least as fresh.
  // Both the foreign snapshot and its journal count.
  if (auto OnDisk = parseCacheFile(Path))
    Merged = std::move(*OnDisk);
  for (const auto &[Key, Value] : replayJournalFile(journalPath(Path)).Entries)
    Merged[Key] = Value;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Key, Value] : Store)
      Merged[Key] = Value;
  }
  if (Status S = writeCacheFile(Path, Merged); S.failed())
    return S;

  // Snapshot is durable; the journal's records are now redundant.
  // Truncating (rather than unlinking) keeps any O_APPEND fd in this
  // or another database object usable -- appends re-write the header.
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Path == CachePath && JournalFd >= 0) {
    if (::ftruncate(JournalFd, 0) == 0)
      JournalBytes = 0;
  } else {
    (void)::truncate(journalPath(Path).c_str(), 0);
  }
  if (Path == CachePath)
    Dirty = false;
  return Status::success();
}
