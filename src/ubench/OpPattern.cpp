//===- ubench/OpPattern.cpp - Table 2 operand-pattern benchmarks ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "ubench/OpPattern.h"

#include "support/Format.h"

#include <cassert>

using namespace gpuperf;

Kernel gpuperf::generateOpPatternBench(const MachineDesc &M,
                                       const Instruction &Pattern,
                                       int BodyInsts, int Copies,
                                       NotationQuality Q) {
  assert(Copies >= 1 && Copies <= 6 && "unreasonable copy count");
  Kernel K;
  K.Name = "oppattern";
  K.SharedBytes = 0;

  // Initialize every register the renamed patterns touch so float inputs
  // are benign (1.0f) rather than denormal garbage.
  RegList Touched;
  for (uint8_t Reg : Pattern.sourceRegs())
    Touched.push(Reg);
  for (uint8_t Reg : Pattern.destRegs())
    Touched.push(Reg);
  for (int Copy = 0; Copy < Copies; ++Copy)
    for (uint8_t Reg : Touched) {
      uint8_t Renamed = static_cast<uint8_t>(Reg + 8 * Copy);
      assert(Renamed <= MaxGPRIndex && "renamed register out of range");
      K.Code.push_back(makeMOV32I(Renamed, 0x3f800000u));
    }

  // Unrolled body: round-robin over the independent renamed copies.
  auto Renamed = [&](int Copy) {
    Instruction I = Pattern;
    int Delta = 8 * Copy;
    if (I.Dst != RegRZ)
      I.Dst = static_cast<uint8_t>(I.Dst + Delta);
    for (int S = 0; S < 3; ++S)
      if (I.Src[S] != RegRZ)
        I.Src[S] = static_cast<uint8_t>(I.Src[S] + Delta);
    return I;
  };
  for (int Emitted = 0; Emitted < BodyInsts; ++Emitted)
    K.Code.push_back(Renamed(Emitted % Copies));

  K.Code.push_back(makeEXIT());
  K.recomputeRegUsage();
  tuneNotations(M, K, Q);
  return K;
}

std::vector<Table2Row> gpuperf::table2Patterns() {
  std::vector<Table2Row> Rows;
  auto Add = [&Rows](const char *Syntax, double Paper, Instruction I) {
    Table2Row Row;
    Row.Syntax = Syntax;
    Row.PaperThroughput = Paper;
    Row.Pattern = I;
    Rows.push_back(Row);
  };
  // Column 1 of the paper's Table 2.
  Add("FADD R0, R1, R0", 128.7, makeFADD(0, 1, 0));
  Add("FMUL R0, R1, R0", 129.0, makeFMUL(0, 1, 0));
  Add("FFMA R0, R1, R4, R0", 129.0, makeFFMA(0, 1, 4, 0));
  Add("IADD R0, R1, R0", 128.7, makeIADD(0, 1, 0));
  Add("IMUL R0, R1, R0", 33.2, makeIMUL(0, 1, 0));
  Add("IMAD R0, R1, R4, R0", 33.2, makeIMAD(0, 1, 4, 0));
  // Column 2.
  Add("FADD R0, R1, R2", 132.0, makeFADD(0, 1, 2));
  Add("FADD R0, R1, R3", 66.2, makeFADD(0, 1, 3));
  Add("FMUL R0, R1, R2", 132.0, makeFMUL(0, 1, 2));
  Add("FMUL R0, R1, R3", 66.2, makeFMUL(0, 1, 3));
  Add("FFMA R0, R1, R4, R5", 132.0, makeFFMA(0, 1, 4, 5));
  Add("FFMA R0, R1, R3, R5", 66.2, makeFFMA(0, 1, 3, 5));
  Add("FFMA R0, R1, R3, R9", 44.2, makeFFMA(0, 1, 3, 9));
  Add("IADD R0, R1, R2", 132.4, makeIADD(0, 1, 2));
  Add("IMUL R0, R1, R2", 33.2, makeIMUL(0, 1, 2));
  Add("IMUL R0, R1, R3", 33.2, makeIMUL(0, 1, 3));
  Add("IMAD R0, R1, R4, R5", 33.1, makeIMAD(0, 1, 4, 5));
  Add("IMAD R0, R1, R3, R5", 33.2, makeIMAD(0, 1, 3, 5));
  Add("IMAD R0, R1, R3, R9", 26.5, makeIMAD(0, 1, 3, 9));
  return Rows;
}
