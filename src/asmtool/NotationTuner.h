//===- asmtool/NotationTuner.h - Kepler control-notation generation -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the Kepler scheduling control words for a kernel. The paper
/// (Section 3.2) could not fully decrypt nvcc's encoding and used "the same
/// control notation for the same kind of instructions"; this tuner models
/// the three levels of knowledge:
///
///  * None      -- no control words at all: the simulated scheduler falls
///                 back to a conservative slow path ("the performance is
///                 very poor").
///  * Heuristic -- per-opcode defaults, the paper's compromise: math
///                 instructions are marked dual-issueable with no stall;
///                 memory instructions get the yield flag. Dependences the
///                 notation does not cover cost scheduler replays.
///  * Tuned     -- dependence-aware (what nvcc emits): stalls cover short
///                 math latencies, yields cover long memory waits.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ASMTOOL_NOTATIONTUNER_H
#define GPUPERF_ASMTOOL_NOTATIONTUNER_H

#include "arch/MachineDesc.h"
#include "isa/Module.h"

namespace gpuperf {

/// How much scheduling knowledge goes into the control words.
enum class NotationQuality { None, Heuristic, Tuned };

/// Parses "none"/"heuristic"/"tuned"; returns Heuristic on junk.
NotationQuality parseNotationQuality(const std::string &Name);
const char *notationQualityName(NotationQuality Q);

/// Rewrites \p K's control notations at the given quality for machine
/// \p M. A no-op on non-Kepler machines.
void tuneNotations(const MachineDesc &M, Kernel &K, NotationQuality Q);

} // namespace gpuperf

#endif // GPUPERF_ASMTOOL_NOTATIONTUNER_H
