//===- asmtool/Assembler.cpp - SASS-like assembly language front end ------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "asmtool/Assembler.h"

#include "isa/Encoding.h"
#include "support/Format.h"

#include <cctype>
#include <map>
#include <optional>

using namespace gpuperf;

namespace {

// --- Tokenizer --------------------------------------------------------------

enum class TokKind {
  Ident,    // mnemonics, labels, SR names, annotation letters
  Reg,      // R0..R62, RZ
  Pred,     // P0..P3, PT
  Int,      // unsigned magnitude; sign handled by the parser
  Comma,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Colon,
  At,
  Bang,
  Plus,
  Minus,
  Directive, // .arch, .kernel, ...
  End,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  int64_t IntValue = 0;
  int Col = 0;
};

/// Tokenizes one source line (comments already stripped).
class LineLexer {
public:
  LineLexer(std::string_view Line) : Line(Line) {}

  /// Lexes all tokens; returns false with Error set on bad characters.
  bool run(std::vector<Token> &Out, std::string &Error) {
    while (true) {
      skipSpace();
      if (Pos >= Line.size())
        break;
      Token T;
      T.Col = static_cast<int>(Pos) + 1;
      char C = Line[Pos];
      if (C == ',') {
        T.Kind = TokKind::Comma;
        ++Pos;
      } else if (C == '[') {
        T.Kind = TokKind::LBracket;
        ++Pos;
      } else if (C == ']') {
        T.Kind = TokKind::RBracket;
        ++Pos;
      } else if (C == '{') {
        T.Kind = TokKind::LBrace;
        ++Pos;
      } else if (C == '}') {
        T.Kind = TokKind::RBrace;
        ++Pos;
      } else if (C == ':') {
        T.Kind = TokKind::Colon;
        ++Pos;
      } else if (C == '@') {
        T.Kind = TokKind::At;
        ++Pos;
      } else if (C == '!') {
        T.Kind = TokKind::Bang;
        ++Pos;
      } else if (C == '+') {
        T.Kind = TokKind::Plus;
        ++Pos;
      } else if (C == '-') {
        T.Kind = TokKind::Minus;
        ++Pos;
      } else if (C == '.') {
        T.Kind = TokKind::Directive;
        ++Pos;
        T.Text = lexWord();
        if (T.Text.empty()) {
          Error = formatString("column %d: expected directive name", T.Col);
          return false;
        }
      } else if (std::isdigit(static_cast<unsigned char>(C))) {
        T.Kind = TokKind::Int;
        if (!lexInt(T.IntValue, Error, T.Col))
          return false;
      } else if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        T.Text = lexWord();
        classifyWord(T);
      } else {
        Error = formatString("column %d: unexpected character '%c'",
                             T.Col, C);
        return false;
      }
      Out.push_back(std::move(T));
    }
    Token E;
    E.Kind = TokKind::End;
    E.Col = static_cast<int>(Line.size()) + 1;
    Out.push_back(E);
    return true;
  }

private:
  void skipSpace() {
    while (Pos < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
  }

  std::string lexWord() {
    size_t Start = Pos;
    while (Pos < Line.size()) {
      char C = Line[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.')
        ++Pos;
      else
        break;
    }
    return std::string(Line.substr(Start, Pos - Start));
  }

  bool lexInt(int64_t &Value, std::string &Error, int Col) {
    int Base = 10;
    if (Pos + 1 < Line.size() && Line[Pos] == '0' &&
        (Line[Pos + 1] == 'x' || Line[Pos + 1] == 'X')) {
      Base = 16;
      Pos += 2;
    }
    uint64_t Magnitude = 0;
    size_t Digits = 0;
    while (Pos < Line.size()) {
      char C = Line[Pos];
      int Digit;
      if (std::isdigit(static_cast<unsigned char>(C)))
        Digit = C - '0';
      else if (Base == 16 && std::isxdigit(static_cast<unsigned char>(C)))
        Digit = std::tolower(C) - 'a' + 10;
      else
        break;
      Magnitude = Magnitude * Base + static_cast<uint64_t>(Digit);
      if (Magnitude > 0xffffffffull) {
        Error = formatString("column %d: integer literal too large", Col);
        return false;
      }
      ++Pos;
      ++Digits;
    }
    if (Digits == 0) {
      Error = formatString("column %d: malformed integer literal", Col);
      return false;
    }
    Value = static_cast<int64_t>(Magnitude);
    return true;
  }

  void classifyWord(Token &T) {
    const std::string &W = T.Text;
    if (W == "RZ") {
      T.Kind = TokKind::Reg;
      T.IntValue = RegRZ;
      return;
    }
    if (W == "PT") {
      T.Kind = TokKind::Pred;
      T.IntValue = PredPT;
      return;
    }
    auto AllDigits = [](std::string_view S) {
      if (S.empty())
        return false;
      for (char C : S)
        if (!std::isdigit(static_cast<unsigned char>(C)))
          return false;
      return true;
    };
    if (W.size() >= 2 && W[0] == 'R' && AllDigits(W.substr(1))) {
      long Index = std::stol(W.substr(1));
      if (Index <= MaxGPRIndex) {
        T.Kind = TokKind::Reg;
        T.IntValue = Index;
        return;
      }
    }
    if (W.size() == 2 && W[0] == 'P' &&
        std::isdigit(static_cast<unsigned char>(W[1]))) {
      int Index = W[1] - '0';
      if (Index < NumPredRegs) {
        T.Kind = TokKind::Pred;
        T.IntValue = Index;
        return;
      }
    }
    T.Kind = TokKind::Ident;
  }

  std::string_view Line;
  size_t Pos = 0;
};

// --- Parser -----------------------------------------------------------------

/// A parsed instruction plus the info needed for later fixups.
struct PendingInst {
  Instruction Inst;
  int Line = 0;
  std::string BranchTarget; ///< Label name when Op == BRA; may be empty.
  ControlField Annotation;
  bool HasAnnotation = false;
};

struct PendingKernel {
  std::string Name;
  int Line = 0;
  int DeclaredRegs = -1;
  int SharedBytes = 0;
  bool WantNotations = false; ///< .notation default (Kepler only).
  std::vector<PendingInst> Insts;
  std::map<std::string, int> Labels; ///< label -> instruction index
};

class Parser {
public:
  Expected<Module> run(std::string_view Source) {
    std::vector<std::string_view> Lines = splitLines(Source);
    for (size_t I = 0; I < Lines.size(); ++I) {
      LineNo = static_cast<int>(I) + 1;
      if (Status S = parseLine(stripComment(Lines[I])); S.failed())
        return Expected<Module>(S);
    }
    if (InKernel)
      if (Status S = finishKernel(); S.failed())
        return Expected<Module>(S);
    if (!SeenArch)
      return fail("missing .arch directive");
    return std::move(M);
  }

private:
  static std::vector<std::string_view> splitLines(std::string_view Source) {
    std::vector<std::string_view> Lines;
    size_t Start = 0;
    while (Start <= Source.size()) {
      size_t End = Source.find('\n', Start);
      if (End == std::string_view::npos) {
        Lines.push_back(Source.substr(Start));
        break;
      }
      Lines.push_back(Source.substr(Start, End - Start));
      Start = End + 1;
    }
    return Lines;
  }

  static std::string_view stripComment(std::string_view Line) {
    size_t Slash = Line.find("//");
    size_t Hash = Line.find('#');
    size_t Cut = std::min(Slash, Hash);
    return Cut == std::string_view::npos ? Line : Line.substr(0, Cut);
  }

  Status fail(const std::string &Message) const {
    return Status::error(formatString("line %d: %s", LineNo,
                                      Message.c_str()));
  }

  Status parseLine(std::string_view Line) {
    Toks.clear();
    Cursor = 0;
    std::string LexError;
    LineLexer Lexer(Line);
    if (!Lexer.run(Toks, LexError))
      return fail(LexError);
    if (peek().Kind == TokKind::End)
      return Status::success();

    if (peek().Kind == TokKind::Directive)
      return parseDirective();

    if (!InKernel)
      return fail("instruction or label outside of a .kernel");

    // Label definition: Ident ':'.
    if (peek().Kind == TokKind::Ident && peekAt(1).Kind == TokKind::Colon) {
      std::string Name = peek().Text;
      advance();
      advance();
      if (K.Labels.count(Name))
        return fail(formatString("redefinition of label '%s'",
                                 Name.c_str()));
      K.Labels[Name] = static_cast<int>(K.Insts.size());
      if (peek().Kind == TokKind::End)
        return Status::success();
      // Fall through: an instruction may follow the label.
    }
    return parseInstruction();
  }

  // --- Directives -----------------------------------------------------------

  Status parseDirective() {
    std::string Name = peek().Text;
    advance();
    if (Name == "arch") {
      if (peek().Kind != TokKind::Ident)
        return fail("expected architecture name after .arch");
      const MachineDesc *Machine = findMachine(peek().Text);
      if (!Machine)
        return fail(formatString("unknown architecture '%s'",
                                 peek().Text.c_str()));
      advance();
      M.Arch = Machine->Generation;
      SeenArch = true;
      return expectEnd();
    }
    if (Name == "kernel") {
      if (InKernel)
        if (Status S = finishKernel(); S.failed())
          return S;
      if (peek().Kind != TokKind::Ident)
        return fail("expected kernel name after .kernel");
      K = PendingKernel();
      K.Name = peek().Text;
      K.Line = LineNo;
      advance();
      InKernel = true;
      return expectEnd();
    }
    if (!InKernel)
      return fail(formatString(".%s outside of a .kernel", Name.c_str()));
    if (Name == "regs") {
      int64_t Value = 0;
      if (Status S = parseIntValue(Value); S.failed())
        return S;
      if (Value < 1 || Value > MaxGPRIndex + 1)
        return fail("register count out of range [1, 63]");
      K.DeclaredRegs = static_cast<int>(Value);
      return expectEnd();
    }
    if (Name == "shared") {
      int64_t Value = 0;
      if (Status S = parseIntValue(Value); S.failed())
        return S;
      if (Value < 0 || Value > 48 * 1024)
        return fail("shared memory size out of range [0, 49152]");
      K.SharedBytes = static_cast<int>(Value);
      return expectEnd();
    }
    if (Name == "notation") {
      if (peek().Kind != TokKind::Ident)
        return fail("expected 'none' or 'default' after .notation");
      std::string Mode = peek().Text;
      advance();
      if (Mode == "none")
        K.WantNotations = false;
      else if (Mode == "default")
        K.WantNotations = true;
      else
        return fail(formatString("unknown notation mode '%s'",
                                 Mode.c_str()));
      if (K.WantNotations && M.Arch != GpuGeneration::Kepler)
        return fail("control notations are only valid on Kepler");
      return expectEnd();
    }
    if (Name == "end") {
      if (Status S = finishKernel(); S.failed())
        return S;
      return expectEnd();
    }
    return fail(formatString("unknown directive '.%s'", Name.c_str()));
  }

  Status parseIntValue(int64_t &Value) {
    bool Neg = false;
    if (peek().Kind == TokKind::Minus) {
      Neg = true;
      advance();
    }
    if (peek().Kind != TokKind::Int)
      return fail("expected integer");
    Value = Neg ? -peek().IntValue : peek().IntValue;
    advance();
    return Status::success();
  }

  // --- Instructions ----------------------------------------------------------

  Status parseInstruction() {
    PendingInst P;
    P.Line = LineNo;
    Instruction &I = P.Inst;

    // Optional guard: @P0 or @!P0.
    if (peek().Kind == TokKind::At) {
      advance();
      if (peek().Kind == TokKind::Bang) {
        I.GuardNeg = true;
        advance();
      }
      if (peek().Kind != TokKind::Pred)
        return fail("expected predicate register after '@'");
      I.GuardPred = static_cast<uint8_t>(peek().IntValue);
      advance();
    }

    if (peek().Kind != TokKind::Ident)
      return fail("expected instruction mnemonic");
    std::string Mnemonic = peek().Text;
    advance();

    if (Status S = resolveMnemonic(Mnemonic, I); S.failed())
      return S;
    if (Status S = parseOperands(P); S.failed())
      return S;

    // Optional Kepler control annotation: {s:N,y,d}.
    if (peek().Kind == TokKind::LBrace) {
      if (M.Arch != GpuGeneration::Kepler)
        return fail("control annotations are only valid on Kepler");
      if (Status S = parseAnnotation(P); S.failed())
        return S;
      K.WantNotations = true;
    }
    if (Status S = expectEnd(); S.failed())
      return S;
    if (Status S = validate(I); S.failed())
      return S;
    K.Insts.push_back(std::move(P));
    return Status::success();
  }

  /// Splits "LDS.64" / "ISETP.GE" / "BAR.SYNC" into opcode + suffix.
  Status resolveMnemonic(const std::string &Mnemonic, Instruction &I) {
    // Exact match first (covers LOP.AND etc.).
    Opcode Op = parseOpcodeMnemonic(Mnemonic);
    if (Op != Opcode::NumOpcodes) {
      I.Op = Op;
      return Status::success();
    }
    size_t Dot = Mnemonic.rfind('.');
    if (Dot == std::string::npos)
      return fail(formatString("unknown mnemonic '%s'", Mnemonic.c_str()));
    std::string Base = Mnemonic.substr(0, Dot);
    std::string Suffix = Mnemonic.substr(Dot + 1);
    Op = parseOpcodeMnemonic(Base);
    if (Op == Opcode::NumOpcodes)
      return fail(formatString("unknown mnemonic '%s'", Mnemonic.c_str()));
    I.Op = Op;
    const OpcodeInfo &Info = opcodeInfo(Op);
    if (Suffix == "64" || Suffix == "128") {
      if (!Info.AllowsWidth)
        return fail(formatString("'%s' does not accept a width suffix",
                                 Base.c_str()));
      I.Width = Suffix == "64" ? MemWidth::B64 : MemWidth::B128;
      return Status::success();
    }
    if (Op == Opcode::BAR && Suffix == "SYNC")
      return Status::success();
    if (Op == Opcode::ISETP) {
      static const char *Names[] = {"LT", "LE", "GT", "GE", "EQ", "NE"};
      for (int C = 0; C < 6; ++C)
        if (Suffix == Names[C]) {
          I.setCmpOp(static_cast<CmpOp>(C));
          return Status::success();
        }
      return fail(formatString("unknown compare suffix '.%s'",
                               Suffix.c_str()));
    }
    return fail(formatString("unknown suffix '.%s' on '%s'",
                             Suffix.c_str(), Base.c_str()));
  }

  Status parseOperands(PendingInst &P) {
    Instruction &I = P.Inst;
    switch (I.Op) {
    case Opcode::NOP:
    case Opcode::BAR:
    case Opcode::EXIT:
      return Status::success();
    case Opcode::BRA:
      return parseBranch(P);
    case Opcode::S2R:
      return parseS2R(I);
    case Opcode::MOV32I:
      return parseMov32i(I);
    case Opcode::LDC:
      return parseLdc(I);
    case Opcode::ISETP:
      return parseIsetp(I);
    case Opcode::LDS:
    case Opcode::LD:
      return parseLoad(I);
    case Opcode::STS:
    case Opcode::ST:
      return parseStore(I);
    case Opcode::ISCADD:
      return parseIscadd(I);
    default:
      return parseGenericMath(I);
    }
  }

  Status expectComma() {
    if (peek().Kind != TokKind::Comma)
      return fail("expected ','");
    advance();
    return Status::success();
  }

  Status expectReg(uint8_t &Out) {
    if (peek().Kind != TokKind::Reg)
      return fail("expected register operand");
    Out = static_cast<uint8_t>(peek().IntValue);
    advance();
    return Status::success();
  }

  Status expectImm(int32_t &Out, bool Wide = false) {
    bool Neg = false;
    if (peek().Kind == TokKind::Minus) {
      Neg = true;
      advance();
    }
    if (peek().Kind != TokKind::Int)
      return fail("expected immediate operand");
    int64_t Value = Neg ? -peek().IntValue : peek().IntValue;
    advance();
    if (Wide) {
      if (Value < INT32_MIN || Value > static_cast<int64_t>(UINT32_MAX))
        return fail("immediate out of 32-bit range");
      Out = static_cast<int32_t>(static_cast<uint32_t>(Value));
      return Status::success();
    }
    if (Value < Imm24Min || Value > Imm24Max)
      return fail("immediate out of signed 24-bit range");
    Out = static_cast<int32_t>(Value);
    return Status::success();
  }

  Status parseGenericMath(Instruction &I) {
    const OpcodeInfo &Info = opcodeInfo(I.Op);
    if (Info.HasDstReg) {
      if (Status S = expectReg(I.Dst); S.failed())
        return S;
    }
    for (int SrcIdx = 0; SrcIdx < Info.NumSrcRegs; ++SrcIdx) {
      if (Status S = expectComma(); S.failed())
        return S;
      bool ImmHere = (peek().Kind == TokKind::Int ||
                      peek().Kind == TokKind::Minus);
      if (ImmHere) {
        if (SrcIdx != 1 || !Info.AllowsImmediate)
          return fail("immediate not allowed in this operand position");
        I.HasImm = true;
        if (Status S = expectImm(I.Imm); S.failed())
          return S;
        continue;
      }
      if (Status S = expectReg(I.Src[SrcIdx]); S.failed())
        return S;
    }
    // MOV has one source; other slots stay RZ.
    return Status::success();
  }

  Status parseBranch(PendingInst &P) {
    Instruction &I = P.Inst;
    I.HasImm = true;
    if (peek().Kind == TokKind::Ident) {
      P.BranchTarget = peek().Text;
      advance();
      return Status::success();
    }
    return expectImm(I.Imm);
  }

  Status parseS2R(Instruction &I) {
    if (Status S = expectReg(I.Dst); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    if (peek().Kind != TokKind::Ident)
      return fail("expected special register name");
    static const SpecialReg All[] = {
        SpecialReg::TID_X,    SpecialReg::TID_Y,    SpecialReg::CTAID_X,
        SpecialReg::CTAID_Y,  SpecialReg::NTID_X,   SpecialReg::NTID_Y,
        SpecialReg::NCTAID_X, SpecialReg::NCTAID_Y,
    };
    for (SpecialReg SR : All)
      if (peek().Text == specialRegName(SR)) {
        I.setSpecialReg(SR);
        advance();
        return Status::success();
      }
    return fail(formatString("unknown special register '%s'",
                             peek().Text.c_str()));
  }

  Status parseMov32i(Instruction &I) {
    if (Status S = expectReg(I.Dst); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    I.HasImm = true;
    return expectImm(I.Imm, /*Wide=*/true);
  }

  Status parseLdc(Instruction &I) {
    if (Status S = expectReg(I.Dst); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    // c[0x10]
    if (peek().Kind != TokKind::Ident || peek().Text != "c")
      return fail("expected constant bank reference c[offset]");
    advance();
    if (peek().Kind != TokKind::LBracket)
      return fail("expected '[' after 'c'");
    advance();
    I.HasImm = true;
    if (Status S = expectImm(I.Imm, /*Wide=*/true); S.failed())
      return S;
    if (peek().Kind != TokKind::RBracket)
      return fail("expected ']'");
    advance();
    return Status::success();
  }

  Status parseIsetp(Instruction &I) {
    if (peek().Kind != TokKind::Pred)
      return fail("expected destination predicate");
    if (peek().IntValue >= NumPredRegs)
      return fail("PT is not a valid ISETP destination");
    I.Dst = static_cast<uint8_t>(peek().IntValue);
    advance();
    if (Status S = expectComma(); S.failed())
      return S;
    if (Status S = expectReg(I.Src[0]); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    if (peek().Kind == TokKind::Int || peek().Kind == TokKind::Minus) {
      I.HasImm = true;
      return expectImm(I.Imm);
    }
    return expectReg(I.Src[1]);
  }

  Status parseAddress(Instruction &I) {
    if (peek().Kind != TokKind::LBracket)
      return fail("expected '[' address operand");
    advance();
    if (Status S = expectReg(I.Src[0]); S.failed())
      return S;
    I.HasImm = true;
    I.Imm = 0;
    if (peek().Kind == TokKind::Plus || peek().Kind == TokKind::Minus) {
      bool Neg = peek().Kind == TokKind::Minus;
      advance();
      int32_t Offset = 0;
      if (Status S = expectImm(Offset); S.failed())
        return S;
      I.Imm = Neg ? -Offset : Offset;
    }
    if (peek().Kind != TokKind::RBracket)
      return fail("expected ']'");
    advance();
    return Status::success();
  }

  Status parseLoad(Instruction &I) {
    if (Status S = expectReg(I.Dst); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    return parseAddress(I);
  }

  Status parseStore(Instruction &I) {
    if (Status S = parseAddress(I); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    return expectReg(I.Src[1]);
  }

  Status parseIscadd(Instruction &I) {
    if (Status S = expectReg(I.Dst); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    if (Status S = expectReg(I.Src[0]); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    if (Status S = expectReg(I.Src[1]); S.failed())
      return S;
    if (Status S = expectComma(); S.failed())
      return S;
    int32_t Shift = 0;
    if (Status S = expectImm(Shift); S.failed())
      return S;
    if (Shift < 0 || Shift > 7)
      return fail("ISCADD shift out of range [0, 7]");
    I.setIscaddShift(Shift);
    return Status::success();
  }

  Status parseAnnotation(PendingInst &P) {
    advance(); // '{'
    P.HasAnnotation = true;
    while (peek().Kind != TokKind::RBrace) {
      if (peek().Kind != TokKind::Ident)
        return fail("expected annotation key (s, y or d)");
      std::string Key = peek().Text;
      advance();
      if (Key == "s") {
        if (peek().Kind != TokKind::Colon)
          return fail("expected ':' after 's'");
        advance();
        if (peek().Kind != TokKind::Int || peek().IntValue > 15)
          return fail("stall count out of range [0, 15]");
        P.Annotation.StallCycles = static_cast<uint8_t>(peek().IntValue);
        advance();
      } else if (Key == "y") {
        P.Annotation.Yield = true;
      } else if (Key == "d") {
        P.Annotation.DualIssue = true;
      } else {
        return fail(formatString("unknown annotation key '%s'",
                                 Key.c_str()));
      }
      if (peek().Kind == TokKind::Comma)
        advance();
    }
    advance(); // '}'
    return Status::success();
  }

  Status expectEnd() {
    if (peek().Kind != TokKind::End)
      return fail(formatString("trailing tokens starting at column %d",
                               peek().Col));
    return Status::success();
  }

  /// Static validity checks beyond what the grammar enforces.
  Status validate(const Instruction &I) {
    // Wide accesses: register and offset alignment (Section 5.1's
    // "alignment restriction of the LDS instruction").
    if (opcodeInfo(I.Op).AllowsWidth && I.Width != MemWidth::B32) {
      int Words = memWidthRegs(I.Width);
      uint8_t DataReg = (I.Op == Opcode::LDS || I.Op == Opcode::LD)
                            ? I.Dst
                            : I.Src[1];
      if (DataReg != RegRZ) {
        if (DataReg % Words != 0)
          return fail(formatString(
              "%s data register R%u must be %d-register aligned",
              std::string(opcodeMnemonic(I.Op)).c_str(), DataReg, Words));
        if (DataReg + Words - 1 > MaxGPRIndex)
          return fail("wide access exceeds the register file");
      }
      if (I.Imm % memWidthBytes(I.Width) != 0)
        return fail(formatString("offset %d not aligned to %d bytes",
                                 I.Imm, memWidthBytes(I.Width)));
    }
    return Status::success();
  }

  // --- Kernel finalization ----------------------------------------------------

  Status finishKernel() {
    assert(InKernel && "no kernel in progress");
    InKernel = false;
    Kernel Out;
    Out.Name = K.Name;
    Out.SharedBytes = K.SharedBytes;

    // Resolve branch targets.
    for (size_t Idx = 0; Idx < K.Insts.size(); ++Idx) {
      PendingInst &P = K.Insts[Idx];
      if (P.Inst.Op == Opcode::BRA && !P.BranchTarget.empty()) {
        auto It = K.Labels.find(P.BranchTarget);
        if (It == K.Labels.end())
          return Status::error(formatString(
              "line %d: undefined label '%s'", P.Line,
              P.BranchTarget.c_str()));
        // Offset is relative to the next instruction.
        P.Inst.Imm = It->second - static_cast<int>(Idx) - 1;
      }
      Out.Code.push_back(P.Inst);
    }

    // Build control notations from annotations if requested.
    if (K.WantNotations) {
      Out.addDefaultNotations();
      for (size_t Idx = 0; Idx < K.Insts.size(); ++Idx)
        if (K.Insts[Idx].HasAnnotation)
          Out.Notations[Idx / NotationGroupSize]
              .Fields[Idx % NotationGroupSize] = K.Insts[Idx].Annotation;
    }

    Out.recomputeRegUsage();
    if (K.DeclaredRegs >= 0) {
      if (Out.RegsPerThread > K.DeclaredRegs)
        return Status::error(formatString(
            "line %d: kernel '%s' uses %d registers but declares %d",
            K.Line, K.Name.c_str(), Out.RegsPerThread, K.DeclaredRegs));
      Out.RegsPerThread = K.DeclaredRegs;
    }
    if (M.findKernel(Out.Name))
      return Status::error(formatString(
          "line %d: duplicate kernel name '%s'", K.Line, K.Name.c_str()));
    M.Kernels.push_back(std::move(Out));
    return Status::success();
  }

  const Token &peek() const { return Toks[Cursor]; }
  const Token &peekAt(size_t N) const {
    return Toks[std::min(Cursor + N, Toks.size() - 1)];
  }
  void advance() {
    if (Cursor + 1 < Toks.size())
      ++Cursor;
  }

  Module M;
  PendingKernel K;
  bool InKernel = false;
  bool SeenArch = false;
  int LineNo = 0;
  std::vector<Token> Toks;
  size_t Cursor = 0;
};

} // namespace

Expected<Module> gpuperf::assembleText(std::string_view Source) {
  Parser P;
  return P.run(Source);
}

Expected<Module> gpuperf::assembleKernelBody(GpuGeneration Arch,
                                             std::string_view Body,
                                             int SharedBytes) {
  const char *ArchName = Arch == GpuGeneration::Kepler  ? "GTX680"
                         : Arch == GpuGeneration::Fermi ? "GTX580"
                                                        : "GTX280";
  std::string Source = formatString(".arch %s\n.kernel k\n.shared %d\n",
                                    ArchName, SharedBytes);
  Source += Body;
  Source += "\n.end\n";
  return assembleText(Source);
}
