//===- asmtool/NotationTuner.cpp - Kepler control-notation generation -----===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "asmtool/NotationTuner.h"

#include <algorithm>
#include <array>

using namespace gpuperf;

NotationQuality gpuperf::parseNotationQuality(const std::string &Name) {
  if (Name == "none")
    return NotationQuality::None;
  if (Name == "tuned")
    return NotationQuality::Tuned;
  return NotationQuality::Heuristic;
}

const char *gpuperf::notationQualityName(NotationQuality Q) {
  switch (Q) {
  case NotationQuality::None:
    return "none";
  case NotationQuality::Heuristic:
    return "heuristic";
  case NotationQuality::Tuned:
    return "tuned";
  }
  return "?";
}

namespace {

/// True when \p B reads or overwrites a register/predicate written by
/// \p A (i.e. B must not pair with A in the same cycle).
bool dependsOn(const Instruction &A, const Instruction &B) {
  RegList AWrites = A.destRegs();
  for (uint8_t Reg : B.sourceRegs())
    if (AWrites.contains(Reg))
      return true;
  for (uint8_t Reg : B.destRegs())
    if (AWrites.contains(Reg))
      return true;
  if (A.writesPredicate()) {
    if (B.GuardPred == A.Dst)
      return true;
    if (B.writesPredicate() && B.Dst == A.Dst)
      return true;
  }
  return false;
}

bool isLongLatency(const Instruction &I) {
  OpClass Class = opcodeInfo(I.Op).Class;
  return Class == OpClass::SharedMem || Class == OpClass::GlobalMem;
}

void setField(Kernel &K, size_t Idx, ControlField F) {
  K.Notations[Idx / NotationGroupSize].Fields[Idx % NotationGroupSize] = F;
}

/// Per-opcode defaults: the paper's "same notation for the same kind of
/// instruction" compromise.
void applyHeuristic(Kernel &K) {
  for (size_t Idx = 0; Idx < K.Code.size(); ++Idx) {
    const Instruction &I = K.Code[Idx];
    ControlField F;
    switch (opcodeInfo(I.Op).Class) {
    case OpClass::FloatMath:
    case OpClass::IntMath:
    case OpClass::IntMulMath:
    case OpClass::Move:
      F.DualIssue = true;
      break;
    case OpClass::SharedMem:
    case OpClass::GlobalMem:
      // The yield encoding is part of what the paper could not decrypt;
      // memory waits under heuristic notations eat scheduler replays.
      break;
    case OpClass::Control:
      F.StallCycles = 1;
      break;
    }
    setField(K, Idx, F);
  }
}

/// Dependence-aware notation: model in-order issue at one instruction per
/// cycle, insert stalls so short (math) latencies are covered and yields
/// where long (memory) results are consumed.
void applyTuned(const MachineDesc &M, Kernel &K) {
  const size_t N = K.Code.size();
  // WriterIdx[r]: last instruction index writing register r (-1 none).
  std::array<int, 64> WriterIdx;
  WriterIdx.fill(-1);
  std::array<int, NumPredRegs> PredWriter;
  PredWriter.fill(-1);

  // Virtual issue time of each instruction under 1-per-cycle issue plus
  // the stalls chosen so far.
  std::vector<uint64_t> Time(N, 0);
  std::vector<ControlField> Fields(N);
  uint64_t Now = 0;

  for (size_t Idx = 0; Idx < N; ++Idx) {
    const Instruction &I = K.Code[Idx];
    // Earliest time operands of a *math* producer are ready.
    uint64_t NeedTime = Now;
    bool WaitsOnMemory = false;
    auto ConsiderProducer = [&](int Producer) {
      if (Producer < 0)
        return;
      const Instruction &P = K.Code[Producer];
      if (isLongLatency(P)) {
        WaitsOnMemory = true;
        return;
      }
      NeedTime = std::max(
          NeedTime, Time[Producer] +
                        static_cast<uint64_t>(M.MathLatency));
    };
    for (uint8_t Reg : I.sourceRegs())
      ConsiderProducer(WriterIdx[Reg]);
    for (uint8_t Reg : I.destRegs())
      ConsiderProducer(WriterIdx[Reg]);
    if (I.GuardPred != PredPT)
      ConsiderProducer(PredWriter[I.GuardPred]);

    if (WaitsOnMemory && Idx > 0)
      Fields[Idx - 1].Yield = true; // Penalty-free scoreboard wait.
    if (NeedTime > Now && Idx > 0) {
      uint64_t Deficit = NeedTime - Now;
      uint8_t Stall = static_cast<uint8_t>(std::min<uint64_t>(Deficit, 15));
      Fields[Idx - 1].StallCycles =
          std::max(Fields[Idx - 1].StallCycles, Stall);
      Fields[Idx - 1].DualIssue = false;
      Now += Stall;
    }

    Time[Idx] = Now;
    Now += 1;

    // Dual-issue hint: next instruction independent and this one stall-free.
    if (Idx + 1 < N && Fields[Idx].StallCycles == 0 &&
        !dependsOn(I, K.Code[Idx + 1]) &&
        opcodeInfo(I.Op).Class != OpClass::Control)
      Fields[Idx].DualIssue = true;

    for (uint8_t Reg : I.destRegs())
      WriterIdx[Reg] = static_cast<int>(Idx);
    if (I.writesPredicate())
      PredWriter[I.Dst] = static_cast<int>(Idx);
    // Control flow: be conservative across join points.
    if (I.Op == Opcode::BRA || I.Op == Opcode::BAR) {
      WriterIdx.fill(-1);
      PredWriter.fill(-1);
    }
  }

  for (size_t Idx = 0; Idx < N; ++Idx)
    setField(K, Idx, Fields[Idx]);
}

} // namespace

void gpuperf::tuneNotations(const MachineDesc &M, Kernel &K,
                            NotationQuality Q) {
  if (M.Generation != GpuGeneration::Kepler)
    return;
  if (Q == NotationQuality::None) {
    K.Notations.clear();
    return;
  }
  K.addDefaultNotations();
  if (Q == NotationQuality::Heuristic)
    applyHeuristic(K);
  else
    applyTuned(M, K);
}
