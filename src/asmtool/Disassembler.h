//===- asmtool/Disassembler.h - binary to assembly text ---------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders kernels and modules back to assembler syntax. The output
/// re-assembles to an identical module (round-trip property, covered by
/// tests), which is what makes binary-level studies like the paper's
/// Figure 8 census of MAGMA binaries practical.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ASMTOOL_DISASSEMBLER_H
#define GPUPERF_ASMTOOL_DISASSEMBLER_H

#include "isa/Module.h"

#include <string>

namespace gpuperf {

/// Disassembles one kernel (without the .arch header).
std::string disassembleKernel(const Kernel &K);

/// Disassembles a whole module including the .arch directive.
std::string disassembleModule(const Module &M);

} // namespace gpuperf

#endif // GPUPERF_ASMTOOL_DISASSEMBLER_H
