//===- asmtool/Disassembler.h - binary to assembly text ---------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders kernels and modules back to assembler syntax. The output
/// re-assembles to an identical module (round-trip property, covered by
/// tests), which is what makes binary-level studies like the paper's
/// Figure 8 census of MAGMA binaries practical.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ASMTOOL_DISASSEMBLER_H
#define GPUPERF_ASMTOOL_DISASSEMBLER_H

#include "isa/Module.h"

#include <string>
#include <vector>

namespace gpuperf {

/// A kernel's listing split per static instruction, for tools that join
/// other per-PC data against the text (the profiler's annotated report).
/// Indices mirror Kernel::Code; Labels has one extra slot for a label
/// anchored one past the last instruction.
struct KernelListing {
  /// Instruction text per PC: mnemonic and operands with branch targets
  /// shown as labels, control notations appended as {s:N,y,d}.
  std::vector<std::string> Lines;
  /// Label anchored at each PC ("" = none); size Code.size() + 1.
  std::vector<std::string> Labels;
};

/// Produces the per-PC listing of \p K (the same text disassembleKernel
/// renders, without the directive header).
KernelListing listKernel(const Kernel &K);

/// Disassembles one kernel (without the .arch header).
std::string disassembleKernel(const Kernel &K);

/// Disassembles a whole module including the .arch directive.
std::string disassembleModule(const Module &M);

} // namespace gpuperf

#endif // GPUPERF_ASMTOOL_DISASSEMBLER_H
