//===- asmtool/Disassembler.cpp - binary to assembly text -----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "asmtool/Disassembler.h"

#include "support/Format.h"

#include <map>

using namespace gpuperf;

KernelListing gpuperf::listKernel(const Kernel &K) {
  // Collect branch targets and assign labels in code order.
  std::map<int, std::string> Labels;
  for (size_t Idx = 0; Idx < K.Code.size(); ++Idx) {
    const Instruction &I = K.Code[Idx];
    if (I.Op != Opcode::BRA)
      continue;
    int Target = static_cast<int>(Idx) + 1 + I.Imm;
    if (Target >= 0 && Target <= static_cast<int>(K.Code.size()) &&
        !Labels.count(Target))
      Labels[Target] = "";
  }
  int NextLabel = 0;
  for (auto &Entry : Labels)
    Entry.second = formatString("L%d", NextLabel++);

  KernelListing L;
  L.Lines.reserve(K.Code.size());
  L.Labels.assign(K.Code.size() + 1, "");
  for (auto &Entry : Labels)
    L.Labels[Entry.first] = Entry.second;
  for (size_t Idx = 0; Idx < K.Code.size(); ++Idx) {
    const Instruction &I = K.Code[Idx];
    std::string Text = I.toString();
    if (I.Op == Opcode::BRA) {
      int Target = static_cast<int>(Idx) + 1 + I.Imm;
      auto It = Labels.find(Target);
      if (It != Labels.end()) {
        // Replace the numeric offset with the label.
        size_t Space = Text.rfind(' ');
        Text = Text.substr(0, Space + 1) + It->second;
      }
    }
    if (K.hasNotations()) {
      const ControlField &F = K.Notations[Idx / NotationGroupSize]
                                  .Fields[Idx % NotationGroupSize];
      if (F.StallCycles || F.Yield || F.DualIssue) {
        std::string Ann;
        if (F.StallCycles)
          Ann += formatString("s:%u", F.StallCycles);
        if (F.Yield)
          Ann += std::string(Ann.empty() ? "" : ",") + "y";
        if (F.DualIssue)
          Ann += std::string(Ann.empty() ? "" : ",") + "d";
        Text += " {" + Ann + "}";
      }
    }
    L.Lines.push_back(std::move(Text));
  }
  return L;
}

std::string gpuperf::disassembleKernel(const Kernel &K) {
  KernelListing L = listKernel(K);

  std::string Out;
  Out += formatString(".kernel %s\n", K.Name.c_str());
  Out += formatString(".regs %d\n", K.RegsPerThread);
  Out += formatString(".shared %d\n", K.SharedBytes);
  if (K.hasNotations())
    Out += ".notation default\n";

  for (size_t Idx = 0; Idx < K.Code.size(); ++Idx) {
    if (!L.Labels[Idx].empty())
      Out += L.Labels[Idx] + ":\n";
    Out += "  " + L.Lines[Idx] + '\n';
  }
  // A label may point one past the last instruction; anchor it with a NOP.
  if (!L.Labels[K.Code.size()].empty())
    Out += L.Labels[K.Code.size()] + ":\n  NOP\n";
  Out += ".end\n";
  return Out;
}

std::string gpuperf::disassembleModule(const Module &M) {
  const char *ArchName = M.Arch == GpuGeneration::Kepler  ? "GTX680"
                         : M.Arch == GpuGeneration::Fermi ? "GTX580"
                                                          : "GTX280";
  std::string Out = formatString(".arch %s\n", ArchName);
  for (const Kernel &K : M.Kernels)
    Out += disassembleKernel(K);
  return Out;
}
