//===- asmtool/Assembler.h - SASS-like assembly language front end -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textual assembler: the reproduction's analogue of Asfermi (Section 3
/// of the paper), which lets kernels be written directly in the native
/// instruction set, with full control of register allocation, instruction
/// order, LDS widths, and (on Kepler) the scheduling control notation.
///
/// Syntax example:
/// \code
///   .arch GTX580
///   .kernel saxpy
///   .shared 0
///     S2R R0, SR_TID.X
///     MOV32I R1, 0x400
///   loop:
///     FFMA R4, R5, R6, R4
///     IADD R1, R1, -1
///     ISETP.NE P0, R1, RZ
///     @P0 BRA loop
///     EXIT
///   .end
/// \endcode
///
/// On Kepler, each instruction may carry a control annotation in braces,
/// e.g. "FFMA R4, R5, R6, R4 {s:2,y,d}" (stall 2 cycles, yield, allow dual
/// issue); the assembler packs the annotations into the per-7-instruction
/// control words of the binary format.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ASMTOOL_ASSEMBLER_H
#define GPUPERF_ASMTOOL_ASSEMBLER_H

#include "isa/Module.h"
#include "support/Error.h"

#include <string_view>

namespace gpuperf {

/// Assembles a complete module source. Error messages carry
/// "line N: ..." positions.
Expected<Module> assembleText(std::string_view Source);

/// Convenience: assembles \p Body as the single kernel "k" for \p Arch
/// with \p SharedBytes of shared memory. Used widely in tests.
Expected<Module> assembleKernelBody(GpuGeneration Arch,
                                    std::string_view Body,
                                    int SharedBytes = 0);

} // namespace gpuperf

#endif // GPUPERF_ASMTOOL_ASSEMBLER_H
