//===- isa/Encoding.h - 64-bit binary instruction encoding -----*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encoding of instructions into 64-bit words. The layout keeps the
/// architectural property the paper's Equation (4) rests on: register
/// operand fields are 6 bits wide, so at most 63 general-purpose registers
/// (plus RZ) are addressable per thread.
///
///   [63:58] opcode     [57:56] width       [55:53] guard pred  [52] neg
///   [51:46] dst        [45:40] src0        [39:34] src1        [33:28] src2
///   [27]    imm flag   [26:24] aux         [23:0]  imm24 (signed)
///
/// MOV32I and LDC repurpose bits [39:8] as a full 32-bit immediate.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ISA_ENCODING_H
#define GPUPERF_ISA_ENCODING_H

#include "isa/Instruction.h"
#include "support/Error.h"

#include <cstdint>

namespace gpuperf {

/// Encodes \p Inst into its 64-bit binary word. Asserts on malformed
/// instructions (programmatic error).
uint64_t encodeInstruction(const Instruction &Inst);

/// Decodes a 64-bit word; fails on invalid opcodes or field values.
Expected<Instruction> decodeInstruction(uint64_t Word);

/// Range of the signed 24-bit immediate field.
inline constexpr int32_t Imm24Min = -(1 << 23);
inline constexpr int32_t Imm24Max = (1 << 23) - 1;

/// True when \p Value fits the signed 24-bit immediate field.
inline bool fitsImm24(int32_t Value) {
  return Value >= Imm24Min && Value <= Imm24Max;
}

} // namespace gpuperf

#endif // GPUPERF_ISA_ENCODING_H
