//===- isa/Encoding.cpp - 64-bit binary instruction encoding --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "isa/Encoding.h"

#include "support/Format.h"

using namespace gpuperf;

namespace {

constexpr int OpcodeShift = 58;
constexpr int WidthShift = 56;
constexpr int GuardPredShift = 53;
constexpr int GuardNegShift = 52;
constexpr int DstShift = 46;
constexpr int Src0Shift = 40;
constexpr int Src1Shift = 34;
constexpr int Src2Shift = 28;
constexpr int ImmFlagShift = 27;
constexpr int AuxShift = 24;
constexpr int Imm32Shift = 8;

constexpr uint64_t Mask6 = 0x3f;
constexpr uint64_t Mask3 = 0x7;
constexpr uint64_t Mask2 = 0x3;
constexpr uint64_t Mask24 = 0xffffff;
constexpr uint64_t Mask32 = 0xffffffff;

bool usesImm32(Opcode Op) {
  return Op == Opcode::MOV32I || Op == Opcode::LDC;
}

} // namespace

uint64_t gpuperf::encodeInstruction(const Instruction &Inst) {
  assert(Inst.Op < Opcode::NumOpcodes && "invalid opcode");
  assert(Inst.Dst <= RegRZ && "destination register out of range");
  assert(Inst.GuardPred <= PredPT && "guard predicate out of range");

  uint64_t Word = 0;
  Word |= static_cast<uint64_t>(Inst.Op) << OpcodeShift;
  Word |= (static_cast<uint64_t>(Inst.Width) & Mask2) << WidthShift;
  Word |= (static_cast<uint64_t>(Inst.GuardPred) & Mask3) << GuardPredShift;
  Word |= static_cast<uint64_t>(Inst.GuardNeg ? 1 : 0) << GuardNegShift;
  Word |= (static_cast<uint64_t>(Inst.Dst) & Mask6) << DstShift;

  if (usesImm32(Inst.Op)) {
    Word |= (static_cast<uint64_t>(static_cast<uint32_t>(Inst.Imm)) &
             Mask32)
            << Imm32Shift;
    return Word;
  }

  assert(Inst.Src[0] <= RegRZ && Inst.Src[1] <= RegRZ &&
         Inst.Src[2] <= RegRZ && "source register out of range");
  assert((!Inst.HasImm || fitsImm24(Inst.Imm)) &&
         "immediate exceeds 24-bit field");

  Word |= (static_cast<uint64_t>(Inst.Src[0]) & Mask6) << Src0Shift;
  Word |= (static_cast<uint64_t>(Inst.Src[1]) & Mask6) << Src1Shift;
  Word |= (static_cast<uint64_t>(Inst.Src[2]) & Mask6) << Src2Shift;
  Word |= static_cast<uint64_t>(Inst.HasImm ? 1 : 0) << ImmFlagShift;
  Word |= (static_cast<uint64_t>(Inst.Aux) & Mask3) << AuxShift;
  Word |= static_cast<uint64_t>(static_cast<uint32_t>(Inst.Imm)) & Mask24;
  return Word;
}

Expected<Instruction> gpuperf::decodeInstruction(uint64_t Word) {
  uint64_t OpField = (Word >> OpcodeShift) & Mask6;
  if (OpField >= static_cast<uint64_t>(Opcode::NumOpcodes))
    return Expected<Instruction>::error(
        formatString("invalid opcode field 0x%llx",
                     static_cast<unsigned long long>(OpField)));

  Instruction Inst;
  Inst.Op = static_cast<Opcode>(OpField);
  uint64_t WidthField = (Word >> WidthShift) & Mask2;
  if (WidthField > static_cast<uint64_t>(MemWidth::B128))
    return Expected<Instruction>::error("invalid width field 0x3");
  Inst.Width = static_cast<MemWidth>(WidthField);
  Inst.GuardPred = static_cast<uint8_t>((Word >> GuardPredShift) & Mask3);
  Inst.GuardNeg = ((Word >> GuardNegShift) & 1) != 0;
  Inst.Dst = static_cast<uint8_t>((Word >> DstShift) & Mask6);

  if (usesImm32(Inst.Op)) {
    Inst.HasImm = true;
    Inst.Imm = static_cast<int32_t>(
        static_cast<uint32_t>((Word >> Imm32Shift) & Mask32));
    return Inst;
  }

  Inst.Src[0] = static_cast<uint8_t>((Word >> Src0Shift) & Mask6);
  Inst.Src[1] = static_cast<uint8_t>((Word >> Src1Shift) & Mask6);
  Inst.Src[2] = static_cast<uint8_t>((Word >> Src2Shift) & Mask6);
  Inst.HasImm = ((Word >> ImmFlagShift) & 1) != 0;
  Inst.Aux = static_cast<uint8_t>((Word >> AuxShift) & Mask3);
  // Sign-extend the 24-bit immediate.
  uint32_t Imm = static_cast<uint32_t>(Word & Mask24);
  if (Imm & 0x800000)
    Imm |= 0xff000000;
  Inst.Imm = static_cast<int32_t>(Imm);

  if (Inst.Op == Opcode::ISETP &&
      Inst.Aux > static_cast<uint8_t>(CmpOp::NE))
    return Expected<Instruction>::error(
        formatString("invalid compare op %u in ISETP", Inst.Aux));
  if (Inst.writesPredicate() && Inst.Dst >= NumPredRegs)
    return Expected<Instruction>::error(
        formatString("ISETP destination P%u out of range", Inst.Dst));
  return Inst;
}
