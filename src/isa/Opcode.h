//===- isa/Opcode.h - SASS-like opcode definitions --------------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction opcodes of the SASS-like ISA used throughout the
/// reproduction. The set covers everything the paper's SGEMM kernels and
/// microbenchmarks execute: FFMA/FADD/FMUL float math, the quarter-rate
/// integer multiply family, address arithmetic, shared and global memory
/// accesses with 32/64/128-bit widths, predicates, barriers and branches.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ISA_OPCODE_H
#define GPUPERF_ISA_OPCODE_H

#include <cstdint>
#include <string_view>

namespace gpuperf {

/// Instruction opcodes. Values are the 6-bit encoding field.
enum class Opcode : uint8_t {
  NOP = 0,
  // Single-precision float math (full rate).
  FFMA,  ///< Rd = Ra * Rb + Rc
  FADD,  ///< Rd = Ra + Rb
  FMUL,  ///< Rd = Ra * Rb
  // Integer math.
  IADD,   ///< Rd = Ra + Rb/imm (full rate)
  IMUL,   ///< Rd = Ra * Rb/imm (quarter rate)
  IMAD,   ///< Rd = Ra * Rb/imm + Rc (quarter rate)
  ISCADD, ///< Rd = (Ra << shift) + Rb (full rate)
  SHL,    ///< Rd = Ra << Rb/imm
  SHR,    ///< Rd = Ra >> Rb/imm (logical)
  LOP_AND,
  LOP_OR,
  LOP_XOR,
  // Data movement.
  MOV,    ///< Rd = Ra
  MOV32I, ///< Rd = imm32
  S2R,    ///< Rd = special register (tid/ctaid/...)
  LDC,    ///< Rd = constant/parameter bank word at byte offset imm
  // Predicate compare.
  ISETP, ///< Pd = Ra <cmp> Rb/imm (signed)
  // Shared memory.
  LDS, ///< Rd[.64/.128] = shared[Ra + imm]
  STS, ///< shared[Ra + imm] = Rb[.64/.128]
  // Global memory.
  LD, ///< Rd[.64/.128] = global[Ra + imm]
  ST, ///< global[Ra + imm] = Rb[.64/.128]
  // Control.
  BRA,  ///< branch by signed instruction offset (guard-predicated)
  BAR,  ///< block-wide barrier (BAR.SYNC)
  EXIT, ///< thread exit
  NumOpcodes
};

/// Broad functional class, used by the timing model to pick an execution
/// pipe, and by the analysis to classify "math" vs "auxiliary" instructions.
enum class OpClass : uint8_t {
  FloatMath,  ///< SP pipeline, full rate.
  IntMath,    ///< SP pipeline, full rate.
  IntMulMath, ///< SP pipeline, quarter rate (IMUL/IMAD).
  Move,       ///< SP pipeline.
  SharedMem,  ///< LD/ST pipeline, shared memory.
  GlobalMem,  ///< LD/ST pipeline, global memory.
  Control,    ///< Scheduler-internal (BRA/BAR/EXIT/NOP).
};

/// Static per-opcode properties.
struct OpcodeInfo {
  std::string_view Mnemonic;
  OpClass Class;
  uint8_t NumSrcRegs;   ///< Register source operand slots (before widths).
  bool HasDstReg;       ///< Writes a general-purpose register.
  bool AllowsImmediate; ///< May replace its last scalar source with imm24.
  bool AllowsWidth;     ///< Accepts .64/.128 suffix (memory ops).
};

/// Returns the static property record for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Mnemonic string ("FFMA", "LOP.AND", ...).
std::string_view opcodeMnemonic(Opcode Op);

/// Parses a mnemonic (without width/compare suffix); returns NumOpcodes on
/// failure.
Opcode parseOpcodeMnemonic(std::string_view Text);

/// True for instructions executed by the SP math pipelines.
bool isMathOpcode(Opcode Op);

/// True for shared-memory loads (the paper's LDS.X family).
inline bool isSharedLoad(Opcode Op) { return Op == Opcode::LDS; }

} // namespace gpuperf

#endif // GPUPERF_ISA_OPCODE_H
