//===- isa/ControlNotation.h - Kepler scheduling control words --*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Kepler GK104 "control notation" the paper reverse-engineered in
/// Section 3.2: a 64-bit scheduling-information word placed before each
/// group of 7 instructions in the binary, with the format
/// 0xXXXXXXX7 0x2XXXXXXX (identifier nibbles 0x7 and 0x2) and seven 8-bit
/// fields, one per following instruction. Similar to the Tera MTA's
/// explicit-dependence lookahead.
///
/// NVIDIA never disclosed the encoding; this reproduction models each field
/// as {stall cycles, yield flag, dual-issue flag}, which is sufficient to
/// express the phenomena the paper reports: un-notated code runs very
/// slowly (the scheduler falls back to conservative stalls), per-opcode
/// "same notation for the same kind of instruction" is a workable
/// compromise, and fully dependence-aware notations recover performance.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ISA_CONTROLNOTATION_H
#define GPUPERF_ISA_CONTROLNOTATION_H

#include "support/Error.h"

#include <cstdint>

namespace gpuperf {

/// Number of instructions covered by one control word.
inline constexpr int NotationGroupSize = 7;

/// Scheduling hint for one instruction.
struct ControlField {
  uint8_t StallCycles = 0; ///< Cycles to wait before issuing the next
                           ///< instruction from this warp (0..15).
  bool Yield = false;      ///< Prefer switching to another warp.
  bool DualIssue = false;  ///< May pair with the following instruction.

  bool operator==(const ControlField &O) const {
    return StallCycles == O.StallCycles && Yield == O.Yield &&
           DualIssue == O.DualIssue;
  }
};

/// One 64-bit control word covering up to 7 instructions.
struct ControlNotation {
  ControlField Fields[NotationGroupSize];

  /// Packs into the binary word format (identifier nibbles included).
  uint64_t pack() const;

  /// Unpacks a control word; fails when identifier nibbles are absent.
  static Expected<ControlNotation> unpack(uint64_t Word);

  /// True when \p Word carries the 0x7 / 0x2 identifier nibbles.
  static bool isControlWord(uint64_t Word);

  bool operator==(const ControlNotation &O) const {
    for (int I = 0; I < NotationGroupSize; ++I)
      if (!(Fields[I] == O.Fields[I]))
        return false;
    return true;
  }
};

} // namespace gpuperf

#endif // GPUPERF_ISA_CONTROLNOTATION_H
