//===- isa/Opcode.cpp - SASS-like opcode definitions ----------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "isa/Opcode.h"

#include <array>
#include <cassert>

using namespace gpuperf;

static constexpr size_t NumOps = static_cast<size_t>(Opcode::NumOpcodes);

// Mnemonic, class, #src regs, has dst, allows imm, allows width.
static const std::array<OpcodeInfo, NumOps> InfoTable = {{
    {"NOP", OpClass::Control, 0, false, false, false},
    {"FFMA", OpClass::FloatMath, 3, true, false, false},
    {"FADD", OpClass::FloatMath, 2, true, false, false},
    {"FMUL", OpClass::FloatMath, 2, true, false, false},
    {"IADD", OpClass::IntMath, 2, true, true, false},
    {"IMUL", OpClass::IntMulMath, 2, true, true, false},
    {"IMAD", OpClass::IntMulMath, 3, true, true, false},
    {"ISCADD", OpClass::IntMath, 2, true, false, false},
    {"SHL", OpClass::IntMath, 2, true, true, false},
    {"SHR", OpClass::IntMath, 2, true, true, false},
    {"LOP.AND", OpClass::IntMath, 2, true, true, false},
    {"LOP.OR", OpClass::IntMath, 2, true, true, false},
    {"LOP.XOR", OpClass::IntMath, 2, true, true, false},
    {"MOV", OpClass::Move, 1, true, false, false},
    {"MOV32I", OpClass::Move, 0, true, true, false},
    {"S2R", OpClass::Move, 0, true, false, false},
    {"LDC", OpClass::Move, 0, true, true, false},
    {"ISETP", OpClass::IntMath, 2, false, true, false},
    {"LDS", OpClass::SharedMem, 1, true, true, true},
    {"STS", OpClass::SharedMem, 2, false, true, true},
    {"LD", OpClass::GlobalMem, 1, true, true, true},
    {"ST", OpClass::GlobalMem, 2, false, true, true},
    {"BRA", OpClass::Control, 0, false, true, false},
    {"BAR", OpClass::Control, 0, false, false, false},
    {"EXIT", OpClass::Control, 0, false, false, false},
}};

const OpcodeInfo &gpuperf::opcodeInfo(Opcode Op) {
  assert(Op < Opcode::NumOpcodes && "invalid opcode");
  return InfoTable[static_cast<size_t>(Op)];
}

std::string_view gpuperf::opcodeMnemonic(Opcode Op) {
  return opcodeInfo(Op).Mnemonic;
}

Opcode gpuperf::parseOpcodeMnemonic(std::string_view Text) {
  for (size_t I = 0; I < NumOps; ++I)
    if (InfoTable[I].Mnemonic == Text)
      return static_cast<Opcode>(I);
  return Opcode::NumOpcodes;
}

bool gpuperf::isMathOpcode(Opcode Op) {
  switch (opcodeInfo(Op).Class) {
  case OpClass::FloatMath:
  case OpClass::IntMath:
  case OpClass::IntMulMath:
    return true;
  default:
    return false;
  }
}
