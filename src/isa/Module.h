//===- isa/Module.h - kernels and the binary module format ------*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module is the reproduction's analogue of a cubin: a container of
/// kernels for one architecture, serializable to a binary format. On
/// Kepler modules, control-notation words are interleaved into the code
/// stream, one before each group of 7 instructions (Section 3.2 of the
/// paper); the deserializer strips them back out positionally, exactly as
/// the paper's patched Asfermi had to.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ISA_MODULE_H
#define GPUPERF_ISA_MODULE_H

#include "arch/MachineDesc.h"
#include "isa/ControlNotation.h"
#include "isa/Instruction.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace gpuperf {

/// One kernel: code plus its static resource declaration.
struct Kernel {
  std::string Name;
  int RegsPerThread = 0;   ///< Declared register usage (<= 63).
  int SharedBytes = 0;     ///< Static shared-memory allocation per block.
  std::vector<Instruction> Code;
  /// Kepler scheduling hints, one per group of 7 instructions; empty on
  /// Fermi or for "no notation" Kepler binaries.
  std::vector<ControlNotation> Notations;

  bool hasNotations() const { return !Notations.empty(); }

  /// Number of control words required to cover the code.
  size_t requiredNotationCount() const {
    return (Code.size() + NotationGroupSize - 1) / NotationGroupSize;
  }

  /// Fills Notations with default (zero) control words.
  void addDefaultNotations();

  /// Recomputes RegsPerThread as 1 + the highest register index
  /// referenced (RZ excluded).
  void recomputeRegUsage();
};

/// A container of kernels for one architecture.
struct Module {
  GpuGeneration Arch = GpuGeneration::Fermi;
  std::vector<Kernel> Kernels;

  /// Finds a kernel by name; nullptr when absent.
  const Kernel *findKernel(const std::string &Name) const;
  Kernel *findKernel(const std::string &Name);

  /// Serializes to the binary module format (magic "GPUB").
  std::vector<uint8_t> serialize() const;

  /// Parses a binary module; fails on truncation, bad magic, bad encodings
  /// or misplaced control words.
  static Expected<Module> deserialize(const std::vector<uint8_t> &Bytes);

  /// Writes the serialized module to \p Path.
  Status writeToFile(const std::string &Path) const;

  /// Reads and parses a module file.
  static Expected<Module> readFromFile(const std::string &Path);
};

} // namespace gpuperf

#endif // GPUPERF_ISA_MODULE_H
