//===- isa/Instruction.cpp - SASS-like instruction representation ---------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "isa/Instruction.h"

#include "support/Format.h"

using namespace gpuperf;

const char *gpuperf::memWidthSuffix(MemWidth W) {
  switch (W) {
  case MemWidth::B32:
    return "";
  case MemWidth::B64:
    return ".64";
  case MemWidth::B128:
    return ".128";
  }
  return "";
}

const char *gpuperf::specialRegName(SpecialReg SR) {
  switch (SR) {
  case SpecialReg::TID_X:
    return "SR_TID.X";
  case SpecialReg::TID_Y:
    return "SR_TID.Y";
  case SpecialReg::CTAID_X:
    return "SR_CTAID.X";
  case SpecialReg::CTAID_Y:
    return "SR_CTAID.Y";
  case SpecialReg::NTID_X:
    return "SR_NTID.X";
  case SpecialReg::NTID_Y:
    return "SR_NTID.Y";
  case SpecialReg::NCTAID_X:
    return "SR_NCTAID.X";
  case SpecialReg::NCTAID_Y:
    return "SR_NCTAID.Y";
  }
  return "SR_?";
}

const char *gpuperf::cmpOpName(CmpOp C) {
  switch (C) {
  case CmpOp::LT:
    return "LT";
  case CmpOp::LE:
    return "LE";
  case CmpOp::GT:
    return "GT";
  case CmpOp::GE:
    return "GE";
  case CmpOp::EQ:
    return "EQ";
  case CmpOp::NE:
    return "NE";
  }
  return "??";
}

bool Instruction::immReplacesSrc1() const {
  if (!HasImm)
    return false;
  switch (Op) {
  case Opcode::IADD:
  case Opcode::IMUL:
  case Opcode::IMAD:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::LOP_AND:
  case Opcode::LOP_OR:
  case Opcode::LOP_XOR:
  case Opcode::ISETP:
    return true;
  default:
    return false;
  }
}

RegList Instruction::sourceRegs() const {
  RegList L;
  const OpcodeInfo &Info = opcodeInfo(Op);
  int Slots = Info.NumSrcRegs;
  bool ImmSlot1 = immReplacesSrc1();
  for (int I = 0; I < Slots; ++I) {
    if (ImmSlot1 && I == 1)
      continue;
    uint8_t Reg = Src[I];
    if (Reg == RegRZ)
      continue;
    // Stores widen their data operand (the second slot).
    bool DataSlot = (Op == Opcode::STS || Op == Opcode::ST) && I == 1;
    int Words = DataSlot ? memWidthRegs(Width) : 1;
    for (int W = 0; W < Words; ++W)
      L.push(static_cast<uint8_t>(Reg + W));
  }
  return L;
}

RegList Instruction::destRegs() const {
  RegList L;
  if (!opcodeInfo(Op).HasDstReg || Dst == RegRZ)
    return L;
  int Words =
      (Op == Opcode::LDS || Op == Opcode::LD) ? memWidthRegs(Width) : 1;
  for (int W = 0; W < Words; ++W)
    L.push(static_cast<uint8_t>(Dst + W));
  return L;
}

int Instruction::numSourceSlots() const {
  int Slots = opcodeInfo(Op).NumSrcRegs;
  if (immReplacesSrc1())
    --Slots;
  // Count only slots holding a real register.
  int N = 0;
  bool ImmSlot1 = immReplacesSrc1();
  for (int I = 0; I < opcodeInfo(Op).NumSrcRegs; ++I) {
    if (ImmSlot1 && I == 1)
      continue;
    if (Src[I] != RegRZ)
      ++N;
  }
  (void)Slots;
  return N;
}

int Instruction::numDistinctSourceRegs() const {
  RegList Seen;
  bool ImmSlot1 = immReplacesSrc1();
  for (int I = 0; I < opcodeInfo(Op).NumSrcRegs; ++I) {
    if (ImmSlot1 && I == 1)
      continue;
    uint8_t Reg = Src[I];
    if (Reg == RegRZ || Seen.contains(Reg))
      continue;
    Seen.push(Reg);
  }
  return Seen.Count;
}

bool Instruction::dstIsAlsoSource() const {
  if (!opcodeInfo(Op).HasDstReg || Dst == RegRZ)
    return false;
  bool ImmSlot1 = immReplacesSrc1();
  for (int I = 0; I < opcodeInfo(Op).NumSrcRegs; ++I) {
    if (ImmSlot1 && I == 1)
      continue;
    if (Src[I] == Dst)
      return true;
  }
  return false;
}

/// Renders a register name ("R5" or "RZ").
static std::string regName(uint8_t Reg) {
  if (Reg == RegRZ)
    return "RZ";
  return formatString("R%u", Reg);
}

std::string Instruction::toString() const {
  std::string S;
  if (GuardPred != PredPT || GuardNeg)
    S += formatString("@%sP%u ", GuardNeg ? "!" : "", GuardPred);

  const OpcodeInfo &Info = opcodeInfo(Op);
  switch (Op) {
  case Opcode::NOP:
  case Opcode::BAR:
  case Opcode::EXIT:
    S += std::string(Info.Mnemonic);
    if (Op == Opcode::BAR)
      S += ".SYNC";
    return S;
  case Opcode::BRA:
    S += formatString("BRA %d", Imm);
    return S;
  case Opcode::ISETP:
    S += formatString("ISETP.%s P%u, %s, ", cmpOpName(cmpOp()), Dst,
                      regName(Src[0]).c_str());
    S += immReplacesSrc1() ? formatString("%d", Imm)
                           : regName(Src[1]);
    return S;
  case Opcode::S2R:
    S += formatString("S2R %s, %s", regName(Dst).c_str(),
                      specialRegName(specialReg()));
    return S;
  case Opcode::MOV32I:
    S += formatString("MOV32I %s, 0x%x", regName(Dst).c_str(),
                      static_cast<uint32_t>(Imm));
    return S;
  case Opcode::LDC:
    S += formatString("LDC %s, c[0x%x]", regName(Dst).c_str(),
                      static_cast<uint32_t>(Imm));
    return S;
  case Opcode::LDS:
  case Opcode::LD:
    S += formatString("%.*s%s %s, [%s%+d]",
                      static_cast<int>(Info.Mnemonic.size()),
                      Info.Mnemonic.data(), memWidthSuffix(Width),
                      regName(Dst).c_str(), regName(Src[0]).c_str(), Imm);
    return S;
  case Opcode::STS:
  case Opcode::ST:
    S += formatString("%.*s%s [%s%+d], %s",
                      static_cast<int>(Info.Mnemonic.size()),
                      Info.Mnemonic.data(), memWidthSuffix(Width),
                      regName(Src[0]).c_str(), Imm, regName(Src[1]).c_str());
    return S;
  case Opcode::ISCADD:
    S += formatString("ISCADD %s, %s, %s, 0x%x", regName(Dst).c_str(),
                      regName(Src[0]).c_str(), regName(Src[1]).c_str(),
                      iscaddShift());
    return S;
  default:
    break;
  }

  // Generic math/move form: DST, SRC0[, SRC1[, SRC2]].
  S += std::string(Info.Mnemonic);
  S += " " + regName(Dst);
  bool ImmSlot1 = immReplacesSrc1();
  for (int I = 0; I < Info.NumSrcRegs; ++I) {
    S += ", ";
    if (ImmSlot1 && I == 1)
      S += formatString("%d", Imm);
    else
      S += regName(Src[I]);
  }
  return S;
}

// --- Convenience constructors ---------------------------------------------

namespace {
Instruction base(Opcode Op) {
  Instruction I;
  I.Op = Op;
  return I;
}
} // namespace

Instruction gpuperf::makeFFMA(uint8_t Rd, uint8_t Ra, uint8_t Rb,
                              uint8_t Rc) {
  Instruction I = base(Opcode::FFMA);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.Src[1] = Rb;
  I.Src[2] = Rc;
  return I;
}

Instruction gpuperf::makeFADD(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  Instruction I = base(Opcode::FADD);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.Src[1] = Rb;
  return I;
}

Instruction gpuperf::makeFMUL(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  Instruction I = base(Opcode::FMUL);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.Src[1] = Rb;
  return I;
}

Instruction gpuperf::makeIADDImm(uint8_t Rd, uint8_t Ra, int32_t Imm) {
  Instruction I = base(Opcode::IADD);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.HasImm = true;
  I.Imm = Imm;
  return I;
}

Instruction gpuperf::makeIADD(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  Instruction I = base(Opcode::IADD);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.Src[1] = Rb;
  return I;
}

Instruction gpuperf::makeMOV32I(uint8_t Rd, uint32_t Imm) {
  Instruction I = base(Opcode::MOV32I);
  I.Dst = Rd;
  I.HasImm = true;
  I.Imm = static_cast<int32_t>(Imm);
  return I;
}

Instruction gpuperf::makeMOV(uint8_t Rd, uint8_t Ra) {
  Instruction I = base(Opcode::MOV);
  I.Dst = Rd;
  I.Src[0] = Ra;
  return I;
}

Instruction gpuperf::makeS2R(uint8_t Rd, SpecialReg SR) {
  Instruction I = base(Opcode::S2R);
  I.Dst = Rd;
  I.setSpecialReg(SR);
  return I;
}

Instruction gpuperf::makeLDC(uint8_t Rd, int32_t ByteOffset) {
  Instruction I = base(Opcode::LDC);
  I.Dst = Rd;
  I.HasImm = true;
  I.Imm = ByteOffset;
  return I;
}

Instruction gpuperf::makeLDS(MemWidth W, uint8_t Rd, uint8_t Ra,
                             int32_t Offset) {
  Instruction I = base(Opcode::LDS);
  I.Width = W;
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.HasImm = true;
  I.Imm = Offset;
  return I;
}

Instruction gpuperf::makeSTS(MemWidth W, uint8_t Ra, int32_t Offset,
                             uint8_t Rv) {
  Instruction I = base(Opcode::STS);
  I.Width = W;
  I.Src[0] = Ra;
  I.Src[1] = Rv;
  I.HasImm = true;
  I.Imm = Offset;
  return I;
}

Instruction gpuperf::makeLD(MemWidth W, uint8_t Rd, uint8_t Ra,
                            int32_t Offset) {
  Instruction I = base(Opcode::LD);
  I.Width = W;
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.HasImm = true;
  I.Imm = Offset;
  return I;
}

Instruction gpuperf::makeST(MemWidth W, uint8_t Ra, int32_t Offset,
                            uint8_t Rv) {
  Instruction I = base(Opcode::ST);
  I.Width = W;
  I.Src[0] = Ra;
  I.Src[1] = Rv;
  I.HasImm = true;
  I.Imm = Offset;
  return I;
}

Instruction gpuperf::makeISETP(CmpOp C, uint8_t Pd, uint8_t Ra, uint8_t Rb) {
  Instruction I = base(Opcode::ISETP);
  I.Dst = Pd;
  I.Src[0] = Ra;
  I.Src[1] = Rb;
  I.setCmpOp(C);
  return I;
}

Instruction gpuperf::makeBRA(int32_t Offset, uint8_t Pred, bool Neg) {
  Instruction I = base(Opcode::BRA);
  I.HasImm = true;
  I.Imm = Offset;
  I.GuardPred = Pred;
  I.GuardNeg = Neg;
  return I;
}

Instruction gpuperf::makeBAR() { return base(Opcode::BAR); }

Instruction gpuperf::makeEXIT() { return base(Opcode::EXIT); }

Instruction gpuperf::makeIMUL(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  Instruction I = base(Opcode::IMUL);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.Src[1] = Rb;
  return I;
}

Instruction gpuperf::makeIMAD(uint8_t Rd, uint8_t Ra, uint8_t Rb,
                              uint8_t Rc) {
  Instruction I = base(Opcode::IMAD);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.Src[1] = Rb;
  I.Src[2] = Rc;
  return I;
}

Instruction gpuperf::makeIMADImm(uint8_t Rd, uint8_t Ra, int32_t Imm,
                                 uint8_t Rc) {
  Instruction I = base(Opcode::IMAD);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.Src[2] = Rc;
  I.HasImm = true;
  I.Imm = Imm;
  return I;
}

Instruction gpuperf::makeSHLImm(uint8_t Rd, uint8_t Ra, int32_t Imm) {
  Instruction I = base(Opcode::SHL);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.HasImm = true;
  I.Imm = Imm;
  return I;
}

Instruction gpuperf::makeISCADD(uint8_t Rd, uint8_t Ra, uint8_t Rb,
                                int Shift) {
  Instruction I = base(Opcode::ISCADD);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.Src[1] = Rb;
  I.setIscaddShift(Shift);
  return I;
}

Instruction gpuperf::makeXORImm(uint8_t Rd, uint8_t Ra, int32_t Imm) {
  Instruction I = base(Opcode::LOP_XOR);
  I.Dst = Rd;
  I.Src[0] = Ra;
  I.HasImm = true;
  I.Imm = Imm;
  return I;
}
