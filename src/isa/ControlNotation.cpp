//===- isa/ControlNotation.cpp - Kepler scheduling control words ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "isa/ControlNotation.h"

using namespace gpuperf;

// Word layout: [3:0] = 0x7, [59:4] = seven 8-bit fields, [63:60] = 0x2.
// Field layout: [3:0] stall, [4] yield, [5] dual issue, [7:6] reserved.

bool ControlNotation::isControlWord(uint64_t Word) {
  return (Word & 0xf) == 0x7 && (Word >> 60) == 0x2;
}

uint64_t ControlNotation::pack() const {
  uint64_t Word = 0x7;
  Word |= static_cast<uint64_t>(0x2) << 60;
  for (int I = 0; I < NotationGroupSize; ++I) {
    const ControlField &F = Fields[I];
    uint64_t Byte = (F.StallCycles & 0xf) |
                    (static_cast<uint64_t>(F.Yield ? 1 : 0) << 4) |
                    (static_cast<uint64_t>(F.DualIssue ? 1 : 0) << 5);
    Word |= Byte << (4 + 8 * I);
  }
  return Word;
}

Expected<ControlNotation> ControlNotation::unpack(uint64_t Word) {
  if (!isControlWord(Word))
    return Expected<ControlNotation>::error(
        "word lacks control-notation identifier nibbles (0x..7 / 0x2..)");
  ControlNotation N;
  for (int I = 0; I < NotationGroupSize; ++I) {
    uint64_t Byte = (Word >> (4 + 8 * I)) & 0xff;
    N.Fields[I].StallCycles = static_cast<uint8_t>(Byte & 0xf);
    N.Fields[I].Yield = (Byte >> 4) & 1;
    N.Fields[I].DualIssue = (Byte >> 5) & 1;
  }
  return N;
}
