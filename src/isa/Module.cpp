//===- isa/Module.cpp - kernels and the binary module format --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "isa/Module.h"

#include "isa/Encoding.h"
#include "support/Format.h"

#include <cstring>
#include <fstream>

using namespace gpuperf;

static constexpr uint32_t ModuleMagic = 0x42555047; // "GPUB" little-endian.
static constexpr uint32_t ModuleVersion = 1;

// Absolute sanity caps for deserialization, far above anything the
// toolchain produces. File-size-proportional checks below already bound
// allocations; these additionally reject absurd headers in huge files.
static constexpr uint32_t MaxModuleKernels = 1u << 16;
static constexpr uint32_t MaxKernelNameBytes = 1u << 12;
static constexpr uint32_t MaxKernelInsts = 1u << 22;

void Kernel::addDefaultNotations() {
  Notations.assign(requiredNotationCount(), ControlNotation());
}

void Kernel::recomputeRegUsage() {
  int MaxReg = -1;
  for (const Instruction &I : Code) {
    for (uint8_t R : I.sourceRegs())
      MaxReg = std::max(MaxReg, static_cast<int>(R));
    for (uint8_t R : I.destRegs())
      MaxReg = std::max(MaxReg, static_cast<int>(R));
  }
  RegsPerThread = MaxReg + 1;
}

const Kernel *Module::findKernel(const std::string &Name) const {
  for (const Kernel &K : Kernels)
    if (K.Name == Name)
      return &K;
  return nullptr;
}

Kernel *Module::findKernel(const std::string &Name) {
  for (Kernel &K : Kernels)
    if (K.Name == Name)
      return &K;
  return nullptr;
}

namespace {

/// Little-endian byte writer.
class ByteWriter {
public:
  explicit ByteWriter(std::vector<uint8_t> &Out) : Out(Out) {}

  void writeU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void writeU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void writeString(const std::string &S) {
    writeU32(static_cast<uint32_t>(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }

private:
  std::vector<uint8_t> &Out;
};

/// Little-endian byte reader with bounds checking.
class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &In) : In(In) {}

  bool readU32(uint32_t &V) {
    if (Pos + 4 > In.size())
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(In[Pos + I]) << (8 * I);
    Pos += 4;
    return true;
  }
  bool readU64(uint64_t &V) {
    if (Pos + 8 > In.size())
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(In[Pos + I]) << (8 * I);
    Pos += 8;
    return true;
  }
  bool readString(std::string &S) {
    uint32_t Len = 0;
    if (!readU32(Len) || Pos + Len > In.size())
      return false;
    S.assign(In.begin() + Pos, In.begin() + Pos + Len);
    Pos += Len;
    return true;
  }
  bool atEnd() const { return Pos == In.size(); }
  size_t remaining() const { return In.size() - Pos; }

private:
  const std::vector<uint8_t> &In;
  size_t Pos = 0;
};

} // namespace

std::vector<uint8_t> Module::serialize() const {
  std::vector<uint8_t> Out;
  ByteWriter W(Out);
  W.writeU32(ModuleMagic);
  W.writeU32(ModuleVersion);
  W.writeU32(static_cast<uint32_t>(Arch));
  W.writeU32(static_cast<uint32_t>(Kernels.size()));
  for (const Kernel &K : Kernels) {
    W.writeString(K.Name);
    W.writeU32(static_cast<uint32_t>(K.RegsPerThread));
    W.writeU32(static_cast<uint32_t>(K.SharedBytes));
    W.writeU32(static_cast<uint32_t>(K.Code.size()));
    W.writeU32(K.hasNotations() ? 1 : 0);
    if (K.hasNotations()) {
      assert(K.Notations.size() == K.requiredNotationCount() &&
             "notation count does not cover the code");
      // Interleave: one control word before each group of 7 instructions,
      // as in real Kepler binaries (Section 3.2).
      for (size_t I = 0; I < K.Code.size(); ++I) {
        if (I % NotationGroupSize == 0)
          W.writeU64(K.Notations[I / NotationGroupSize].pack());
        W.writeU64(encodeInstruction(K.Code[I]));
      }
    } else {
      for (const Instruction &Inst : K.Code)
        W.writeU64(encodeInstruction(Inst));
    }
  }
  return Out;
}

Status Module::writeToFile(const std::string &Path) const {
  std::vector<uint8_t> Bytes = serialize();
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return Status::error(formatString("cannot open %s for writing",
                                      Path.c_str()));
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  if (!Out)
    return Status::error(formatString("write to %s failed", Path.c_str()));
  return Status::success();
}

Expected<Module> Module::readFromFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<Module>::error(
        formatString("cannot open %s", Path.c_str()));
  std::vector<uint8_t> Bytes(std::istreambuf_iterator<char>(In),
                             std::istreambuf_iterator<char>{});
  return deserialize(Bytes);
}

Expected<Module> Module::deserialize(const std::vector<uint8_t> &Bytes) {
  using EM = Expected<Module>;
  ByteReader R(Bytes);
  uint32_t Magic = 0, Version = 0, Arch = 0, NumKernels = 0;
  if (!R.readU32(Magic) || Magic != ModuleMagic)
    return EM::error("bad module magic. Expected \"GPUB\"");
  if (!R.readU32(Version) || Version != ModuleVersion)
    return EM::error(formatString("unsupported module version %u", Version));
  if (!R.readU32(Arch) ||
      Arch > static_cast<uint32_t>(GpuGeneration::Kepler))
    return EM::error("invalid architecture id");
  if (!R.readU32(NumKernels))
    return EM::error("truncated module header");
  // Each kernel needs at least its 20-byte header; a corrupt count must
  // not drive huge allocations.
  if (NumKernels > MaxModuleKernels || NumKernels > R.remaining() / 20)
    return EM::error("kernel count exceeds the file size");

  Module M;
  M.Arch = static_cast<GpuGeneration>(Arch);
  for (uint32_t KI = 0; KI < NumKernels; ++KI) {
    Kernel K;
    uint32_t Regs = 0, Shared = 0, NumInsts = 0, HasNotations = 0;
    if (!R.readString(K.Name) || !R.readU32(Regs) || !R.readU32(Shared) ||
        !R.readU32(NumInsts) || !R.readU32(HasNotations))
      return EM::error(formatString("truncated kernel header %u", KI));
    if (K.Name.size() > MaxKernelNameBytes)
      return EM::error(formatString("implausible kernel name length %zu",
                                    K.Name.size()));
    if (Regs > 255 || Shared > 1u << 20)
      return EM::error(formatString(
          "implausible kernel header (%u registers, %u shared bytes)",
          Regs, Shared));
    // Every instruction occupies at least 8 bytes in the stream.
    if (NumInsts > MaxKernelInsts || NumInsts > R.remaining() / 8)
      return EM::error("instruction count exceeds the file size");
    K.RegsPerThread = static_cast<int>(Regs);
    K.SharedBytes = static_cast<int>(Shared);
    K.Code.reserve(NumInsts);
    for (uint32_t I = 0; I < NumInsts; ++I) {
      if (HasNotations && I % NotationGroupSize == 0) {
        uint64_t CtrlWord = 0;
        if (!R.readU64(CtrlWord))
          return EM::error("truncated code stream (control word)");
        auto N = ControlNotation::unpack(CtrlWord);
        if (!N)
          return EM::error(formatString(
              "kernel %s, instruction group %u: %s", K.Name.c_str(),
              I / NotationGroupSize, N.message().c_str()));
        K.Notations.push_back(*N);
      }
      uint64_t Word = 0;
      if (!R.readU64(Word))
        return EM::error("truncated code stream (instruction word)");
      auto Inst = decodeInstruction(Word);
      if (!Inst)
        return EM::error(formatString("kernel %s, instruction %u: %s",
                                      K.Name.c_str(), I,
                                      Inst.message().c_str()));
      K.Code.push_back(*Inst);
    }
    M.Kernels.push_back(std::move(K));
  }
  if (!R.atEnd())
    return EM::error("trailing bytes after last kernel");
  return M;
}
