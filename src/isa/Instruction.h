//===- isa/Instruction.h - SASS-like instruction representation -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory instruction form shared by the assembler, disassembler,
/// simulator, kernel generators and static analyses. Registers are 6-bit
/// indices (the Fermi/GK104 encoding property that caps threads at 63
/// registers, Section 2); R63 is the zero register RZ and P7 the constant
/// true predicate PT, as on real SASS.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_ISA_INSTRUCTION_H
#define GPUPERF_ISA_INSTRUCTION_H

#include "isa/Opcode.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace gpuperf {

/// Memory access width for LDS/STS/LD/ST (the paper's LDS vs LDS.64 vs
/// LDS.128 distinction, Section 4.1).
enum class MemWidth : uint8_t { B32 = 0, B64 = 1, B128 = 2 };

/// Access size in bytes.
inline int memWidthBytes(MemWidth W) { return 4 << static_cast<int>(W); }
/// Number of consecutive 32-bit registers transferred.
inline int memWidthRegs(MemWidth W) { return 1 << static_cast<int>(W); }
/// Suffix string ("", ".64", ".128").
const char *memWidthSuffix(MemWidth W);

/// Special registers readable via S2R.
enum class SpecialReg : uint8_t {
  TID_X = 0,
  TID_Y,
  CTAID_X,
  CTAID_Y,
  NTID_X,
  NTID_Y,
  NCTAID_X,
  NCTAID_Y,
};
const char *specialRegName(SpecialReg SR);

/// Signed integer comparisons for ISETP.
enum class CmpOp : uint8_t { LT = 0, LE, GT, GE, EQ, NE };
const char *cmpOpName(CmpOp C);

/// The zero register: reads as 0, writes are discarded.
inline constexpr uint8_t RegRZ = 63;
/// The constant-true predicate.
inline constexpr uint8_t PredPT = 7;
/// Number of writable predicate registers (P0..P3).
inline constexpr int NumPredRegs = 4;
/// Largest architectural register index (R62; R63 is RZ).
inline constexpr int MaxGPRIndex = 62;

/// A small fixed-capacity register list (an STS.128 reads at most five
/// registers: the address plus four data words).
struct RegList {
  uint8_t Regs[8] = {};
  int Count = 0;

  void push(uint8_t Reg) {
    assert(Count < 8 && "register list overflow");
    Regs[Count++] = Reg;
  }
  const uint8_t *begin() const { return Regs; }
  const uint8_t *end() const { return Regs + Count; }
  bool contains(uint8_t Reg) const {
    for (int I = 0; I < Count; ++I)
      if (Regs[I] == Reg)
        return true;
    return false;
  }
};

/// One decoded instruction.
///
/// Field use by opcode family:
///  * math ops: Dst, Src[0..2]; HasImm replaces the second scalar source
///    with the sign-extended 24-bit immediate; ISCADD keeps its shift
///    amount in Aux.
///  * ISETP: Dst is the destination *predicate* index, Aux the CmpOp.
///  * S2R: Aux is the SpecialReg.
///  * MOV32I / LDC: Imm is a full 32-bit immediate / byte offset.
///  * LDS/STS/LD/ST: Src[0] is the address base register, Imm the byte
///    offset; stores read data from Src[1] (widened per Width).
///  * BRA: Imm is a signed instruction offset relative to the *next*
///    instruction; the guard predicate steers it.
struct Instruction {
  Opcode Op = Opcode::NOP;
  MemWidth Width = MemWidth::B32;
  uint8_t GuardPred = PredPT;
  bool GuardNeg = false;
  uint8_t Dst = RegRZ;
  uint8_t Src[3] = {RegRZ, RegRZ, RegRZ};
  bool HasImm = false;
  int32_t Imm = 0;
  uint8_t Aux = 0;

  // --- Typed accessors for the Aux field ---------------------------------
  CmpOp cmpOp() const { return static_cast<CmpOp>(Aux); }
  void setCmpOp(CmpOp C) { Aux = static_cast<uint8_t>(C); }
  SpecialReg specialReg() const { return static_cast<SpecialReg>(Aux); }
  void setSpecialReg(SpecialReg SR) { Aux = static_cast<uint8_t>(SR); }
  int iscaddShift() const { return Aux; }
  void setIscaddShift(int Shift) {
    assert(Shift >= 0 && Shift <= 7 && "ISCADD shift out of range");
    Aux = static_cast<uint8_t>(Shift);
  }

  // --- Semantic queries ---------------------------------------------------
  /// True when HasImm substitutes the second scalar source operand (as
  /// opposed to being a memory/branch offset or a full MOV32I immediate).
  bool immReplacesSrc1() const;

  /// Registers actually read (RZ excluded; stores include all data words).
  RegList sourceRegs() const;
  /// Registers written (RZ excluded; wide loads include all data words).
  RegList destRegs() const;

  /// Number of *source operand slots* that carry a register (used by the
  /// Kepler repeated-operand fast-path check: slots > distinct registers
  /// means a read port is shared).
  int numSourceSlots() const;
  /// Number of distinct non-RZ registers among the source slots.
  int numDistinctSourceRegs() const;

  /// True when this instruction writes a predicate (ISETP).
  bool writesPredicate() const { return Op == Opcode::ISETP; }

  /// True when the destination register is also one of the sources (the
  /// accumulation pattern "FFMA RA, RB, RC, RA").
  bool dstIsAlsoSource() const;

  /// Renders assembler syntax, e.g. "@!P0 LDS.64 R8, [R20+0x40]".
  std::string toString() const;
};

// --- Convenience constructors used by kernel generators and tests ---------

/// FFMA Rd = Ra * Rb + Rc.
Instruction makeFFMA(uint8_t Rd, uint8_t Ra, uint8_t Rb, uint8_t Rc);
/// FADD Rd = Ra + Rb.
Instruction makeFADD(uint8_t Rd, uint8_t Ra, uint8_t Rb);
/// FMUL Rd = Ra * Rb.
Instruction makeFMUL(uint8_t Rd, uint8_t Ra, uint8_t Rb);
/// IADD Rd = Ra + imm.
Instruction makeIADDImm(uint8_t Rd, uint8_t Ra, int32_t Imm);
/// IADD Rd = Ra + Rb.
Instruction makeIADD(uint8_t Rd, uint8_t Ra, uint8_t Rb);
/// MOV32I Rd = imm32.
Instruction makeMOV32I(uint8_t Rd, uint32_t Imm);
/// MOV Rd = Ra.
Instruction makeMOV(uint8_t Rd, uint8_t Ra);
/// S2R Rd = special register.
Instruction makeS2R(uint8_t Rd, SpecialReg SR);
/// LDC Rd = param word at byte offset.
Instruction makeLDC(uint8_t Rd, int32_t ByteOffset);
/// LDS[.w] Rd = shared[Ra + offset].
Instruction makeLDS(MemWidth W, uint8_t Rd, uint8_t Ra, int32_t Offset);
/// STS[.w] shared[Ra + offset] = Rv.
Instruction makeSTS(MemWidth W, uint8_t Ra, int32_t Offset, uint8_t Rv);
/// LD[.w] Rd = global[Ra + offset].
Instruction makeLD(MemWidth W, uint8_t Rd, uint8_t Ra, int32_t Offset);
/// ST[.w] global[Ra + offset] = Rv.
Instruction makeST(MemWidth W, uint8_t Ra, int32_t Offset, uint8_t Rv);
/// ISETP.cmp Pd = Ra cmp Rb.
Instruction makeISETP(CmpOp C, uint8_t Pd, uint8_t Ra, uint8_t Rb);
/// BRA by signed instruction offset, guarded by (neg ? !P : P).
Instruction makeBRA(int32_t Offset, uint8_t Pred = PredPT, bool Neg = false);
/// BAR.SYNC.
Instruction makeBAR();
/// EXIT.
Instruction makeEXIT();
/// IMUL Rd = Ra * Rb.
Instruction makeIMUL(uint8_t Rd, uint8_t Ra, uint8_t Rb);
/// IMAD Rd = Ra * Rb + Rc.
Instruction makeIMAD(uint8_t Rd, uint8_t Ra, uint8_t Rb, uint8_t Rc);
/// IMAD Rd = Ra * imm + Rc.
Instruction makeIMADImm(uint8_t Rd, uint8_t Ra, int32_t Imm, uint8_t Rc);
/// SHL Rd = Ra << imm.
Instruction makeSHLImm(uint8_t Rd, uint8_t Ra, int32_t Imm);
/// ISCADD Rd = (Ra << shift) + Rb.
Instruction makeISCADD(uint8_t Rd, uint8_t Ra, uint8_t Rb, int Shift);
/// LOP.XOR Rd = Ra ^ imm.
Instruction makeXORImm(uint8_t Rd, uint8_t Ra, int32_t Imm);

} // namespace gpuperf

#endif // GPUPERF_ISA_INSTRUCTION_H
