//===- tests/FaultInjectionTest.cpp - mutated-kernel execution fuzz -------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives mutants of a real SGEMM kernel through the full timing
/// simulator and enforces the guarded-execution contract: every mutant
/// either completes, is rejected by the loader/launcher, or raises a
/// structured trap -- the process never crashes and identical mutants
/// behave identically (same outcome, same trap at the same PC and
/// cycle, same memory image).
///
//===----------------------------------------------------------------------===//

#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"
#include "sim/FaultInjector.h"

#include <gtest/gtest.h>

#include <optional>

using namespace gpuperf;

namespace {

constexpr FaultKind AllKinds[] = {
    FaultKind::CodeBitFlip, FaultKind::HeaderBitFlip,
    FaultKind::BranchRetarget, FaultKind::SharedShrink,
    FaultKind::AddressScramble};

/// Fixture building the mutation target: the paper's hand-tuned NN
/// kernel for a 192x192x64 problem on GTX580, with the launch shape and
/// parameter addresses laid out exactly as SgemmRunner would.
class FaultInjection : public ::testing::Test {
protected:
  void SetUp() override {
    const MachineDesc &M = gtx580();
    SgemmKernelConfig Cfg = baselineConfig(SgemmImpl::AsmTuned, M,
                                           GemmVariant::NN, 192, 192, 64);
    auto K = generateSgemmKernel(M, Cfg);
    ASSERT_TRUE(K.hasValue()) << K.message();

    Module Mod;
    Mod.Arch = GpuGeneration::Fermi;
    Mod.Kernels.push_back(K.take());

    // Mirror the runner's upload order so parameter addresses match the
    // bump allocator (base 256, 256-byte alignment).
    GlobalMemory Layout(0);
    auto AAddr = Layout.tryAllocate(size_t(192) * 64 * 4);
    auto BAddr = Layout.tryAllocate(size_t(64) * 192 * 4);
    auto CAddr = Layout.tryAllocate(size_t(192) * 192 * 4);
    ASSERT_TRUE(AAddr.hasValue() && BAddr.hasValue() && CAddr.hasValue());

    SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
    LaunchConfig Launch;
    Launch.Dims.GridX = Shape.GridX;
    Launch.Dims.GridY = Shape.GridY;
    Launch.Dims.BlockX = Shape.BlockX;
    Launch.Params = {*AAddr, *BAddr, *CAddr, 0x3f800000u /*alpha=1*/,
                     0u /*beta=0*/};
    Launch.Mode = SimMode::Full;

    FI.emplace(M, std::move(Mod), Launch, Layout.size());
  }

  /// Contract checks every trapped run must satisfy.
  static void checkTrap(const InjectionRun &Run, const char *Context) {
    ASSERT_TRUE(Run.Trap.has_value()) << Context;
    const TrapInfo &T = *Run.Trap;
    EXPECT_TRUE(T.valid()) << Context;
    EXPECT_FALSE(T.KernelName.empty()) << Context;
    EXPECT_GE(T.WarpId, 0) << Context;
    // An InvalidPC trap reports the out-of-range target itself, which
    // may be negative; every other trap points at a real instruction.
    if (T.Kind != TrapKind::InvalidPC) {
      EXPECT_GE(T.PC, 0) << Context;
    }
    if (trapIsInstructionScoped(T.Kind)) {
      EXPECT_FALSE(T.InstText.empty()) << Context;
    }
  }

  std::optional<FaultInjector> FI;
};

} // namespace

TEST_F(FaultInjection, BaselineCompletesDeterministically) {
  InjectionRun A = FI->runBaseline();
  ASSERT_EQ(A.Result, InjectionRun::Outcome::Completed)
      << A.signature();
  EXPECT_GT(A.Cycles, 0u);
  InjectionRun B = FI->runBaseline();
  EXPECT_EQ(A.signature(), B.signature());
}

TEST_F(FaultInjection, FiveHundredMutantsNeverCrash) {
  std::vector<FaultPlan> Plans;
  for (FaultKind Kind : AllKinds)
    for (uint64_t Seed = 0; Seed < 110; ++Seed) {
      FaultPlan Plan;
      Plan.Kind = Kind;
      Plan.Seed = Seed;
      Plan.NumMutations = 1 + static_cast<int>(Seed % 3);
      Plans.push_back(Plan);
    }

  BatchSummary Summary;
  std::vector<InjectionRun> Runs = FI->runBatch(Plans, 1, &Summary);
  ASSERT_EQ(Runs.size(), Plans.size());

  size_t Completed = 0, Rejected = 0, Trapped = 0;
  std::map<TrapKind, size_t> TrapCounts;
  int FirstFailure = -1;
  for (size_t I = 0; I < Runs.size(); ++I) {
    const InjectionRun &Run = Runs[I];
    std::string Context = std::string(faultKindName(Plans[I].Kind)) +
                          " seed " + std::to_string(Plans[I].Seed) +
                          ": " + Run.signature();
    switch (Run.Result) {
    case InjectionRun::Outcome::Completed:
      ++Completed;
      break;
    case InjectionRun::Outcome::Rejected:
      ++Rejected;
      EXPECT_FALSE(Run.RejectReason.empty()) << Context;
      break;
    case InjectionRun::Outcome::Trapped:
      ++Trapped;
      ++TrapCounts[Run.Trap->Kind];
      checkTrap(Run, Context.c_str());
      break;
    }
    if (FirstFailure < 0 && Run.Result != InjectionRun::Outcome::Completed)
      FirstFailure = static_cast<int>(I);
  }
  EXPECT_EQ(Runs.size(), 550u);
  EXPECT_EQ(Completed + Rejected + Trapped, Runs.size());
  // The mutation families are hostile enough that all three outcomes
  // must show up in a batch this size (seeded, so this is stable).
  EXPECT_GT(Trapped, 0u);
  EXPECT_GT(Rejected, 0u);
  EXPECT_GT(Completed, 0u);

  // The structured partial-failure summary must agree exactly with the
  // tallies derived from the run vector itself.
  EXPECT_EQ(Summary.Total, Runs.size());
  EXPECT_EQ(Summary.Completed, Completed);
  EXPECT_EQ(Summary.Rejected, Rejected);
  EXPECT_EQ(Summary.Trapped, Trapped);
  EXPECT_EQ(Summary.TrapCounts, TrapCounts);
  size_t TrapSum = 0;
  for (const auto &[Kind, Count] : Summary.TrapCounts)
    TrapSum += Count;
  EXPECT_EQ(TrapSum, Summary.Trapped)
      << "per-kind counts must sum to the trapped total";
  ASSERT_GE(Summary.FirstFailureIndex, 0);
  EXPECT_EQ(Summary.FirstFailureIndex, FirstFailure);
  EXPECT_EQ(Summary.FirstFailureSignature,
            Runs[static_cast<size_t>(FirstFailure)].signature());

  // toString renders every count (spot-check the shape, not the exact
  // seeded numbers).
  std::string S = Summary.toString();
  EXPECT_NE(S.find("550 runs"), std::string::npos) << S;
  EXPECT_NE(S.find("first failure #"), std::string::npos) << S;

  // Identical plans through summarize() directly: same summary.
  BatchSummary Direct = summarizeBatch(Runs);
  EXPECT_EQ(Direct.Total, Summary.Total);
  EXPECT_EQ(Direct.TrapCounts, Summary.TrapCounts);
  EXPECT_EQ(Direct.FirstFailureIndex, Summary.FirstFailureIndex);
}

TEST_F(FaultInjection, MutantRunsAreDeterministic) {
  for (FaultKind Kind : AllKinds) {
    for (uint64_t Seed = 0; Seed < 10; ++Seed) {
      FaultPlan Plan;
      Plan.Kind = Kind;
      Plan.Seed = Seed;
      InjectionRun A = FI->runOne(Plan);
      InjectionRun B = FI->runOne(Plan);
      EXPECT_EQ(A.signature(), B.signature())
          << faultKindName(Kind) << " seed " << Seed;
      if (A.Result == InjectionRun::Outcome::Trapped &&
          B.Result == InjectionRun::Outcome::Trapped) {
        // Same mutant => same trap kind at the same PC and cycle.
        EXPECT_EQ(A.Trap->Kind, B.Trap->Kind);
        EXPECT_EQ(A.Trap->PC, B.Trap->PC);
        EXPECT_EQ(A.Trap->Cycle, B.Trap->Cycle);
        EXPECT_EQ(A.Trap->WarpId, B.Trap->WarpId);
      }
    }
  }
}

TEST_F(FaultInjection, BranchRetargetsTrapWithStructuredDiagnostics) {
  int Trapped = 0;
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    FaultPlan Plan;
    Plan.Kind = FaultKind::BranchRetarget;
    Plan.Seed = Seed;
    InjectionRun Run = FI->runOne(Plan);
    if (Run.Result != InjectionRun::Outcome::Trapped)
      continue;
    ++Trapped;
    checkTrap(Run, ("retarget seed " + std::to_string(Seed)).c_str());
  }
  // Rewriting branch targets of a loopy kernel must catch *something*:
  // invalid PCs, runaway loops, or skipped-initialization faults.
  EXPECT_GT(Trapped, 0);
}

TEST_F(FaultInjection, SharedShrinkRaisesSharedOOBTraps) {
  int SharedOOB = 0;
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    FaultPlan Plan;
    Plan.Kind = FaultKind::SharedShrink;
    Plan.Seed = Seed;
    InjectionRun Run = FI->runOne(Plan);
    // A shrunk-but-well-formed module always deserializes; it either
    // completes (tiny shrink) or traps -- never a loader rejection.
    EXPECT_NE(Run.Result, InjectionRun::Outcome::Rejected)
        << Run.signature();
    if (Run.Result == InjectionRun::Outcome::Trapped &&
        (Run.Trap->Kind == TrapKind::SharedLoadOOB ||
         Run.Trap->Kind == TrapKind::SharedStoreOOB)) {
      ++SharedOOB;
      EXPECT_FALSE(Run.Trap->Detail.empty());
    }
  }
  EXPECT_GT(SharedOOB, 0);
}

TEST(Watchdog, InfiniteLoopTrapsInsteadOfHanging) {
  Kernel K;
  K.Name = "spin_forever";
  K.Code = {makeMOV32I(0, 0), makeBRA(-2), makeEXIT()};
  K.recomputeRegUsage();

  LaunchConfig Config;
  Config.Dims.GridX = 1;
  Config.Dims.BlockX = 64;
  Config.WatchdogCycles = 5000;

  GlobalMemory GM;
  TrapInfo Trap;
  auto R = launchKernel(gtx580(), K, Config, GM, &Trap);
  ASSERT_FALSE(R.hasValue());
  ASSERT_TRUE(Trap.valid());
  EXPECT_EQ(Trap.Kind, TrapKind::WatchdogTimeout);
  EXPECT_EQ(Trap.KernelName, "spin_forever");
  EXPECT_GE(Trap.Cycle, 5000u);
  EXPECT_GE(Trap.WarpId, 0);
  EXPECT_GE(Trap.PC, 0);
  // The diagnostic includes the per-warp progress report.
  EXPECT_NE(Trap.Detail.find("warp"), std::string::npos);
}

TEST(Watchdog, DerivedBudgetIsClampedToBackstop) {
  EXPECT_LT(deriveWatchdogBudget(10, 4), MaxWaveCycles);
  EXPECT_EQ(deriveWatchdogBudget(size_t(1) << 30, 1 << 20),
            MaxWaveCycles);
  // Never zero, even for degenerate inputs.
  EXPECT_GT(deriveWatchdogBudget(0, 0), 0u);
}
