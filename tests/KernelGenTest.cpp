//===- tests/KernelGenTest.cpp - SGEMM generator/allocator tests ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "analysis/BinaryAnalysis.h"
#include "arch/RegisterBank.h"
#include "asmtool/Assembler.h"
#include "asmtool/Disassembler.h"
#include "isa/Encoding.h"
#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"

#include <gtest/gtest.h>

#include <set>

using namespace gpuperf;

namespace {

SgemmKernelConfig squareConfig(int Size, GemmVariant V = GemmVariant::NN) {
  SgemmKernelConfig Cfg;
  Cfg.Variant = V;
  Cfg.M = Cfg.N = Cfg.K = Size;
  Cfg.Lda = Cfg.Ldb = Cfg.Ldc = Size;
  return Cfg;
}

} // namespace

// --- Register allocation (Section 5.4 / Figure 9) ---------------------------

TEST(RegAllocator, BankAwareIsConflictFree) {
  for (int BR : {2, 4, 6}) {
    SgemmKernelConfig Cfg = squareConfig(960);
    Cfg.BR = BR;
    auto Map = allocateSgemmRegisters(Cfg);
    ASSERT_TRUE(Map.hasValue()) << Map.message();
    EXPECT_EQ(countTileConflicts(*Map, 2), 0) << "BR=" << BR;
  }
}

TEST(RegAllocator, BankAwareBR6UsesExactly63Registers) {
  // The Section 5.2 budget: the full blocking configuration consumes the
  // whole 63-register file with zero spills.
  SgemmKernelConfig Cfg = squareConfig(960);
  auto Map = allocateSgemmRegisters(Cfg);
  ASSERT_TRUE(Map.hasValue());
  EXPECT_EQ(Map->regsUsed(), 63);
}

TEST(RegAllocator, Figure9NinePerBank) {
  // Figure 9: "36 registers of C sub-matrix have 9 registers on each
  // bank".
  SgemmKernelConfig Cfg = squareConfig(960);
  auto Map = allocateSgemmRegisters(Cfg);
  ASSERT_TRUE(Map.hasValue());
  int PerBank[4] = {0, 0, 0, 0};
  for (uint8_t Reg : Map->Acc)
    ++PerBank[registerBankIndex(Reg)];
  for (int Bank = 0; Bank < 4; ++Bank)
    EXPECT_EQ(PerBank[Bank], 9) << "bank " << Bank;
}

TEST(RegAllocator, Figure9OperandBankDomains) {
  // "We select registers from E0 and O0 for column A. Row B uses
  // registers from E1 and O1."
  SgemmKernelConfig Cfg = squareConfig(960);
  auto Map = allocateSgemmRegisters(Cfg);
  ASSERT_TRUE(Map.hasValue());
  for (uint8_t Reg : Map->A) {
    RegBank Bank = registerBank(Reg);
    EXPECT_TRUE(Bank == RegBank::Even0 || Bank == RegBank::Odd0)
        << "A reg R" << static_cast<int>(Reg);
  }
  for (uint8_t Reg : {Map->B[0], Map->B[1]}) {
    RegBank Bank = registerBank(Reg);
    EXPECT_TRUE(Bank == RegBank::Even1 || Bank == RegBank::Odd1)
        << "B reg R" << static_cast<int>(Reg);
  }
}

TEST(RegAllocator, AllRegistersDistinct) {
  for (auto Kind : {RegAllocKind::BankAware, RegAllocKind::Compiler,
                    RegAllocKind::Naive}) {
    SgemmKernelConfig Cfg = squareConfig(960);
    Cfg.RegAlloc = Kind;
    auto Map = allocateSgemmRegisters(Cfg);
    ASSERT_TRUE(Map.hasValue());
    std::set<uint8_t> Seen;
    auto Check = [&Seen](uint8_t Reg) {
      EXPECT_TRUE(Seen.insert(Reg).second)
          << "register R" << static_cast<int>(Reg) << " assigned twice";
    };
    for (uint8_t Reg : Map->Acc)
      Check(Reg);
    for (uint8_t Reg : Map->A)
      Check(Reg);
    Check(Map->B[0]);
    Check(Map->B[1]);
    for (uint8_t Reg : Map->Prefetch)
      Check(Reg);
    for (uint8_t Reg : {Map->RLoop, Map->RGA, Map->RGB, Map->RSA,
                        Map->RSB, Map->RRA, Map->RRB})
      Check(Reg);
  }
}

TEST(RegAllocator, WidePairsAreAligned) {
  // LDS.64 targets must be even-aligned register pairs.
  for (auto Kind : {RegAllocKind::BankAware, RegAllocKind::Compiler,
                    RegAllocKind::Naive}) {
    SgemmKernelConfig Cfg = squareConfig(960);
    Cfg.RegAlloc = Kind;
    auto Map = allocateSgemmRegisters(Cfg);
    ASSERT_TRUE(Map.hasValue());
    for (size_t P = 0; P < Map->A.size(); P += 2) {
      EXPECT_EQ(Map->A[P] % 2, 0);
      EXPECT_EQ(Map->A[P + 1], Map->A[P] + 1);
    }
    EXPECT_EQ(Map->B[0] % 2, 0);
    EXPECT_EQ(Map->B[1], Map->B[0] + 1);
  }
}

TEST(RegAllocator, ConflictRatesOrderAsFigure8) {
  // Figure 8's qualitative ordering: bank-aware ~0 conflicts, the
  // compiler-style layout a moderate share, the naive first-version
  // layout a heavy share plus 3-way conflicts.
  SgemmKernelConfig Cfg = squareConfig(960);
  auto Aware = allocateSgemmRegisters(Cfg);
  Cfg.RegAlloc = RegAllocKind::Compiler;
  auto Compiler = allocateSgemmRegisters(Cfg);
  Cfg.RegAlloc = RegAllocKind::Naive;
  auto Naive = allocateSgemmRegisters(Cfg);
  ASSERT_TRUE(Aware.hasValue() && Compiler.hasValue() &&
              Naive.hasValue());
  int AwareConf = countTileConflicts(*Aware, 2);
  int CompilerConf = countTileConflicts(*Compiler, 2);
  int NaiveConf = countTileConflicts(*Naive, 2);
  EXPECT_EQ(AwareConf, 0);
  EXPECT_GT(CompilerConf, 0);
  EXPECT_GT(NaiveConf, CompilerConf);
  EXPECT_GT(countTileConflicts(*Naive, 3), 0);
  EXPECT_EQ(countTileConflicts(*Compiler, 3), 0);
}

// --- Kernel generation -----------------------------------------------------

TEST(SgemmGenerator, GeneratesWithin63Registers) {
  for (GemmVariant V : {GemmVariant::NN, GemmVariant::NT, GemmVariant::TN,
                        GemmVariant::TT}) {
    auto K = generateSgemmKernel(gtx580(), squareConfig(960, V));
    ASSERT_TRUE(K.hasValue()) << K.message();
    EXPECT_LE(K->RegsPerThread, 63);
    EXPECT_EQ(K->RegsPerThread, 63); // BR=6 uses the whole file.
  }
}

TEST(SgemmGenerator, StaticInstructionMixMatchesModel) {
  // Main loop: per k-step 36 FFMA and 6 LDS.64 (85.7% FFMA in the loop,
  // Figure 3). The static census includes prologue/epilogue.
  auto K = generateSgemmKernel(gtx580(), squareConfig(960));
  ASSERT_TRUE(K.hasValue());
  InstructionMix Mix = analyzeInstructionMix(*K);
  // Two emitted iterations (loop body + tail): 2*16*36 FFMAs + epilogue.
  EXPECT_EQ(Mix.count(Opcode::FFMA), 2 * 16 * 36 + 36);
  EXPECT_EQ(Mix.count(Opcode::LDS), 2 * 16 * 6);
  EXPECT_GT(Mix.ffmaPercent(), 70.0);
}

TEST(SgemmGenerator, SharedMemoryWithinBudget) {
  auto K = generateSgemmKernel(gtx580(), squareConfig(960));
  ASSERT_TRUE(K.hasValue());
  // Two padded panels of 16 slices: 2 * 16 * (96+2)*4 = 12544 bytes.
  EXPECT_EQ(K->SharedBytes, 12544);
  EXPECT_LE(K->SharedBytes, 48 * 1024);
}

TEST(SgemmGenerator, KeplerKernelsCarryNotations) {
  SgemmKernelConfig Cfg = squareConfig(960);
  Cfg.Notation = NotationQuality::Heuristic;
  auto K = generateSgemmKernel(gtx680(), Cfg);
  ASSERT_TRUE(K.hasValue());
  EXPECT_TRUE(K->hasNotations());
  EXPECT_EQ(K->Notations.size(), K->requiredNotationCount());
}

TEST(SgemmGenerator, FermiKernelsCarryNoNotations) {
  auto K = generateSgemmKernel(gtx580(), squareConfig(960));
  ASSERT_TRUE(K.hasValue());
  EXPECT_FALSE(K->hasNotations());
}

TEST(SgemmGenerator, RoundTripsThroughAssemblyText) {
  // The generated kernel disassembles and re-assembles identically --
  // the generator only emits encodable instructions.
  auto K = generateSgemmKernel(gtx580(), squareConfig(192));
  ASSERT_TRUE(K.hasValue());
  Module M;
  M.Arch = GpuGeneration::Fermi;
  M.Kernels.push_back(*K);
  auto Back = assembleText(disassembleModule(M));
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  ASSERT_EQ(Back->Kernels.size(), 1u);
  const Kernel &BK = Back->Kernels[0];
  ASSERT_EQ(BK.Code.size(), K->Code.size());
  for (size_t I = 0; I < BK.Code.size(); ++I)
    EXPECT_EQ(encodeInstruction(BK.Code[I]), encodeInstruction(K->Code[I]))
        << "instruction " << I;
}

TEST(SgemmGenerator, SerializesToModuleBinary) {
  auto K = generateSgemmKernel(gtx680(), squareConfig(192));
  ASSERT_TRUE(K.hasValue());
  Module M;
  M.Arch = GpuGeneration::Kepler;
  M.Kernels.push_back(*K);
  auto Back = Module::deserialize(M.serialize());
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_EQ(Back->Kernels[0].Code.size(), K->Code.size());
  EXPECT_EQ(Back->Kernels[0].Notations.size(), K->Notations.size());
}

TEST(SgemmGeneratorErrors, RejectsBadShapes) {
  SgemmKernelConfig Cfg = squareConfig(100);
  auto K = generateSgemmKernel(gtx580(), Cfg);
  ASSERT_FALSE(K.hasValue());
  EXPECT_NE(K.message().find("multiples"), std::string::npos);

  Cfg = squareConfig(960);
  Cfg.K = 40; // Not a multiple of L = 16.
  EXPECT_FALSE(generateSgemmKernel(gtx580(), Cfg).hasValue());

  Cfg = squareConfig(960);
  Cfg.BR = 5;
  EXPECT_FALSE(generateSgemmKernel(gtx580(), Cfg).hasValue());

  Cfg = squareConfig(960);
  Cfg.LdsWidth = MemWidth::B128;
  EXPECT_FALSE(generateSgemmKernel(gtx580(), Cfg).hasValue());

  Cfg = squareConfig(960);
  Cfg.BR = 2;
  Cfg.EmulateSpills = true;
  EXPECT_FALSE(generateSgemmKernel(gtx580(), Cfg).hasValue());

  Cfg = squareConfig(960);
  Cfg.Lda = 100; // Smaller than M.
  EXPECT_FALSE(generateSgemmKernel(gtx580(), Cfg).hasValue());
}

TEST(SgemmGenerator, LaunchShapeCoversMatrix) {
  SgemmKernelConfig Cfg = squareConfig(1920);
  SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
  EXPECT_EQ(Shape.GridX, 20);
  EXPECT_EQ(Shape.GridY, 20);
  EXPECT_EQ(Shape.BlockX, 256);
}

TEST(Baselines, NamedConfigsGenerate) {
  for (auto Impl : {SgemmImpl::AsmTuned, SgemmImpl::AsmNaive,
                    SgemmImpl::CublasLike, SgemmImpl::MagmaLike}) {
    for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
      SgemmKernelConfig Cfg =
          baselineConfig(Impl, *M, GemmVariant::NN, 960, 960, 960);
      auto K = generateSgemmKernel(*M, Cfg);
      EXPECT_TRUE(K.hasValue())
          << sgemmImplName(Impl) << " on " << M->Name << ": "
          << (K.hasValue() ? "" : K.message());
    }
  }
}

TEST(Baselines, SpillEmulationOnlyOnKeplerMagma) {
  EXPECT_FALSE(baselineConfig(SgemmImpl::MagmaLike, gtx580(),
                              GemmVariant::NN, 960, 960, 960)
                   .EmulateSpills);
  EXPECT_TRUE(baselineConfig(SgemmImpl::MagmaLike, gtx680(),
                             GemmVariant::NN, 960, 960, 960)
                  .EmulateSpills);
}
