//===- tests/SimTimingTest.cpp - timing-model calibration tests -----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies that the simulator reproduces the paper's measured throughput
/// numbers: the Fermi 32-inst/cycle issue ceiling, the Section 4.1 LDS.X
/// throughputs, the Kepler ~132 ceiling with the Table 2 register-bank
/// effects, the ~178 repeated-operand fast path, and the qualitative
/// effects (dependence sensitivity, control-notation quality, shared
/// memory bank conflicts, global coalescing).
///
//===----------------------------------------------------------------------===//

#include "asmtool/Assembler.h"
#include "sim/Timing.h"
#include "support/Format.h"
#include "sim/Launcher.h"
#include "ubench/MixBench.h"
#include "ubench/OpPattern.h"
#include "ubench/PerfDatabase.h"

#include <gtest/gtest.h>

using namespace gpuperf;

namespace {

double measureMix(const MachineDesc &M, int Ratio, MemWidth W,
                  bool Dependent) {
  MixBenchParams P;
  P.FfmaPerLds = Ratio;
  P.Width = W;
  P.Dependent = Dependent;
  Kernel K = generateMixBench(M, P);
  return measureThroughput(M, K);
}

double measurePattern(const MachineDesc &M, const Instruction &Pattern) {
  Kernel K = generateOpPatternBench(M, Pattern);
  MeasureConfig Cfg;
  Cfg.ThreadsPerBlock = 1024;
  Cfg.BlocksPerSM = 1;
  return measureThroughput(M, K, Cfg);
}

} // namespace

// --- Fermi ceilings (Table 1, Section 4.1) -----------------------------------

TEST(FermiTiming, PureFfmaReaches32PerCycle) {
  double T = measureMix(gtx580(), -1, MemWidth::B64, false);
  EXPECT_NEAR(T, 32.0, 1.5);
}

TEST(FermiTiming, PureLdsThroughputs) {
  // Section 4.1: LDS peaks at 16 thread insts/cycle; LDS.64 at 8 (the
  // data rate does not improve); LDS.128 at only 2.
  EXPECT_NEAR(measureMix(gtx580(), 0, MemWidth::B32, false), 16.0, 1.0);
  EXPECT_NEAR(measureMix(gtx580(), 0, MemWidth::B64, false), 8.0, 0.6);
  EXPECT_NEAR(measureMix(gtx580(), 0, MemWidth::B128, false), 2.0, 0.3);
}

TEST(FermiTiming, MixedRatiosApproachIssueCeiling) {
  // Figure 2 top: LDS saturates by ratio 3, LDS.64 by ratio 6; LDS.128
  // at ratio 12 is still LDST-pipe bound near 2*(12+1) = 26.
  double Lds3 = measureMix(gtx580(), 3, MemWidth::B32, false);
  double Lds64R6 = measureMix(gtx580(), 6, MemWidth::B64, false);
  double Lds128R12 = measureMix(gtx580(), 12, MemWidth::B128, false);
  EXPECT_NEAR(Lds3, 31.3, 1.5);
  EXPECT_NEAR(Lds64R6, 30.4, 2.0);
  EXPECT_NEAR(Lds128R12, 24.5, 2.5);
}

TEST(FermiTiming, DependentMixSaturatesByMidOccupancy) {
  // Figure 4 top: the dependent 6:1 mix is near-peak from 512 threads.
  PerfDatabase DB(gtx580());
  double At128 = DB.mixThroughput(6, MemWidth::B64, true, 128);
  double At512 = DB.mixThroughput(6, MemWidth::B64, true, 512);
  double At1024 = DB.mixThroughput(6, MemWidth::B64, true, 1024);
  EXPECT_LT(At128, 0.8 * At512);
  EXPECT_GT(At512, 28.0);
  EXPECT_GE(At1024, At512 - 1.0);
}

// --- Kepler ceilings (Section 3.3, Table 2) -----------------------------------

TEST(KeplerTiming, FfmaCeilingIs132NotSPCount) {
  double T = measureMix(gtx680(), -1, MemWidth::B64, false);
  EXPECT_NEAR(T, 132.0, 5.0);
  // Far below the 192-SP processing throughput: the paper's core finding.
  EXPECT_LT(T, 140.0);
}

TEST(KeplerTiming, PureLds64Throughput) {
  EXPECT_NEAR(measureMix(gtx680(), 0, MemWidth::B64, false), 33.1, 1.5);
}

TEST(KeplerTiming, RepeatedOperandFastPath) {
  // "FFMA RA, RB, RB, RA ... can approach around 178" (Section 3.3).
  // R3 (odd0) and R4 (even1) are on different banks.
  double T = measurePattern(gtx680(), makeFFMA(4, 3, 3, 4));
  EXPECT_NEAR(T, 178.0, 8.0);
}

TEST(KeplerTiming, DependenceNeedsMoreThreadsThanFermi) {
  // Figure 4 bottom: with fewer than 1024 active threads Kepler is very
  // sensitive to the LDS->FFMA dependence.
  PerfDatabase DB(gtx680());
  double At512 = DB.mixThroughput(6, MemWidth::B64, true, 512);
  double At2048 = DB.mixThroughput(6, MemWidth::B64, true, 2048);
  EXPECT_LT(At512, 0.75 * At2048);
  EXPECT_GT(At2048, 110.0);
}

TEST(KeplerTiming, NoNotationIsVeryPoor) {
  // Section 3.2: without the control words the binary runs, but slowly.
  MixBenchParams P;
  P.FfmaPerLds = -1;
  P.Notation = NotationQuality::None;
  double None = measureThroughput(gtx680(), generateMixBench(gtx680(), P));
  P.Notation = NotationQuality::Tuned;
  double Tuned =
      measureThroughput(gtx680(), generateMixBench(gtx680(), P));
  EXPECT_LT(None, 0.4 * Tuned);
}

TEST(KeplerTiming, HeuristicNotationBetweenNoneAndTuned) {
  MixBenchParams P;
  P.FfmaPerLds = 6;
  P.Dependent = true;
  P.Notation = NotationQuality::None;
  double None = measureThroughput(gtx680(), generateMixBench(gtx680(), P));
  P.Notation = NotationQuality::Heuristic;
  double Heur = measureThroughput(gtx680(), generateMixBench(gtx680(), P));
  P.Notation = NotationQuality::Tuned;
  double Tuned =
      measureThroughput(gtx680(), generateMixBench(gtx680(), P));
  EXPECT_LT(None, Heur);
  EXPECT_LE(Heur, Tuned * 1.02);
}

// --- Table 2 (parameterized over all patterns) ----------------------------------

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Test, MatchesPaperThroughput) {
  const Table2Row &Row = GetParam();
  double T = measurePattern(gtx680(), Row.Pattern);
  // Within 6% of the paper's measured value.
  EXPECT_NEAR(T, Row.PaperThroughput, 0.06 * Row.PaperThroughput)
      << Row.Syntax;
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, Table2Test, ::testing::ValuesIn(table2Patterns()),
    [](const ::testing::TestParamInfo<Table2Row> &Info) {
      std::string Name = Info.param.Syntax;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

// --- Shared-memory bank conflicts ---------------------------------------------

namespace {

uint64_t cyclesFor(const MachineDesc &M, const std::string &Body,
                   int Threads, int SharedBytes) {
  auto Mod = assembleKernelBody(M.Generation, Body, SharedBytes);
  EXPECT_TRUE(Mod.hasValue()) << (Mod.hasValue() ? "" : Mod.message());
  Kernel *K = Mod->findKernel("k");
  if (M.Generation == GpuGeneration::Kepler)
    tuneNotations(M, *K, NotationQuality::Tuned);
  GlobalMemory GM(1 << 20);
  LaunchConfig Config;
  Config.Dims.BlockX = Threads;
  Config.Dims.GridX = 1;
  auto R = launchKernel(M, *K, Config, GM);
  EXPECT_TRUE(R.hasValue()) << (R.hasValue() ? "" : R.message());
  return R->Stats.Cycles;
}

std::string ldsStrideBody(int StrideBytes, int Repeats) {
  // addr = (tid * Stride) % 4096; repeated loads, destinations rotated so
  // write-after-write dependences do not serialize the pipe measurement.
  std::string Body = formatString("  S2R R0, SR_TID.X\n"
                                  "  IMUL R1, R0, %d\n"
                                  "  LOP.AND R1, R1, 4095\n",
                                  StrideBytes);
  for (int I = 0; I < Repeats; ++I)
    Body += formatString("  LDS R%d, [R1]\n", 4 + 2 * (I % 8));
  Body += "  EXIT\n";
  return Body;
}

} // namespace

TEST(SharedBankConflicts, StridedAccessSerializesOnFermi) {
  // Stride 4 bytes: conflict-free. Stride 128: all 32 lanes hit the same
  // bank -> 32-way serialization.
  uint64_t Sequential =
      cyclesFor(gtx580(), ldsStrideBody(4, 64), 256, 4096);
  uint64_t Conflicted =
      cyclesFor(gtx580(), ldsStrideBody(128, 64), 256, 4096);
  EXPECT_GT(Conflicted, 10 * Sequential);
}

TEST(SharedBankConflicts, CountedInStats) {
  auto Mod = assembleKernelBody(GpuGeneration::Fermi,
                                ldsStrideBody(128, 8), 4096);
  ASSERT_TRUE(Mod.hasValue());
  GlobalMemory GM(1 << 20);
  LaunchConfig Config;
  Config.Dims.BlockX = 32;
  auto R = launchKernel(gtx580(), *Mod->findKernel("k"), Config, GM);
  ASSERT_TRUE(R.hasValue());
  EXPECT_GE(R->Stats.SharedConflictEvents, 8u);
}

TEST(SharedBankConflicts, KeplerWideBanksForgiveLds64) {
  // On Kepler's 8-byte banks a sequential LDS.64 pattern is conflict-free.
  std::string Body = "  S2R R0, SR_TID.X\n"
                     "  SHL R1, R0, 3\n";
  for (int I = 0; I < 32; ++I)
    Body += "  LDS.64 R4, [R1]\n";
  Body += "  EXIT\n";
  auto Mod = assembleKernelBody(GpuGeneration::Kepler, Body, 4096);
  ASSERT_TRUE(Mod.hasValue());
  Kernel *K = Mod->findKernel("k");
  tuneNotations(gtx680(), *K, NotationQuality::Tuned);
  GlobalMemory GM(1 << 20);
  LaunchConfig Config;
  Config.Dims.BlockX = 32;
  auto R = launchKernel(gtx680(), *K, Config, GM);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Stats.SharedConflictEvents, 0u);
}

// --- Global-memory coalescing -----------------------------------------------------

TEST(GlobalCoalescing, SequentialWarpLoadIsOneTransaction) {
  GlobalMemory GM(1 << 20);
  std::string Body = "  S2R R0, SR_TID.X\n"
                     "  SHL R1, R0, 2\n"
                     "  IADD R1, R1, 512\n"
                     "  LD R4, [R1]\n"
                     "  EXIT\n";
  auto Mod = assembleKernelBody(GpuGeneration::Fermi, Body, 0);
  ASSERT_TRUE(Mod.hasValue());
  LaunchConfig Config;
  Config.Dims.BlockX = 32;
  auto R = launchKernel(gtx580(), *Mod->findKernel("k"), Config, GM);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Stats.GlobalTransactions, 1u);
  EXPECT_EQ(R->Stats.GlobalBytes, 128u);
}

TEST(GlobalCoalescing, StridedWarpLoadIs32Transactions) {
  GlobalMemory GM(1 << 20);
  std::string Body = "  S2R R0, SR_TID.X\n"
                     "  SHL R1, R0, 7\n" // 128-byte stride
                     "  IADD R1, R1, 512\n"
                     "  LD R4, [R1]\n"
                     "  EXIT\n";
  auto Mod = assembleKernelBody(GpuGeneration::Fermi, Body, 0);
  ASSERT_TRUE(Mod.hasValue());
  LaunchConfig Config;
  Config.Dims.BlockX = 32;
  auto R = launchKernel(gtx580(), *Mod->findKernel("k"), Config, GM);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Stats.GlobalTransactions, 32u);
}

TEST(GlobalCoalescing, BandwidthBoundsStreamingKernel) {
  // A kernel that streams many loads cannot exceed the per-SM share of
  // the chip bandwidth.
  const MachineDesc &M = gtx580();
  std::string Body = "  S2R R0, SR_TID.X\n"
                     "  SHL R1, R0, 2\n";
  for (int I = 0; I < 64; ++I)
    Body += formatString("  LD R%d, [R1+%d]\n", 4 + (I % 8) * 2,
                         I * 4096);
  // Consume the loads so the kernel does not exit before the data (and
  // therefore the bandwidth cost) has fully arrived.
  for (int R = 0; R < 8; ++R)
    Body += formatString("  FADD R40, R40, R%d\n", 4 + R * 2);
  Body += "  EXIT\n";
  auto Mod = assembleKernelBody(GpuGeneration::Fermi, Body, 0);
  ASSERT_TRUE(Mod.hasValue()) << Mod.message();
  GlobalMemory GM(1 << 22);
  LaunchConfig Config;
  Config.Dims.BlockX = 512;
  auto R = launchKernel(M, *Mod->findKernel("k"), Config, GM);
  ASSERT_TRUE(R.hasValue()) << R.message();
  double Bytes = static_cast<double>(R->Stats.GlobalBytes);
  double BytesPerCycle = Bytes / R->Stats.Cycles;
  EXPECT_LE(BytesPerCycle, memBytesPerCyclePerSM(M) * 1.05);
}

// --- Latency-driven occupancy curves -----------------------------------------------

TEST(OccupancyCurves, ThroughputGrowsWithActiveThreads) {
  PerfDatabase DB(gtx680());
  double Prev = 0;
  for (int Threads : {64, 256, 1024, 2048}) {
    double T = DB.mixThroughput(6, MemWidth::B64, true, Threads);
    EXPECT_GE(T, Prev * 0.98) << Threads;
    Prev = T;
  }
}
