//===- tests/ProbeTest.cpp - probe engine correctness and determinism -----===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probe layer's acceptance properties end to end: the spec parser
/// accepts the documented grammar and rejects malformed input with a
/// line:column diagnostic; the engine folds and merges every aggregation
/// correctly; shadow probes attached to a real launch reproduce the
/// simulator's own aggregate counters exactly (SimStats, StallBreakdown,
/// KernelProfile); results are bit-identical for every --jobs value on
/// both machines; and the gpurun/perfdiff CLI surface behaves (exit 2 on
/// malformed specs, --probe-out gated on --probe, --require gating).
///
//===----------------------------------------------------------------------===//

#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"
#include "probe/ProbeEngine.h"
#include "probe/ProbeSpec.h"
#include "sim/Launcher.h"
#include "sim/Profile.h"
#include "support/Format.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/wait.h>

using namespace gpuperf;

namespace {

//===----------------------------------------------------------------------===//
// Spec parser
//===----------------------------------------------------------------------===//

std::vector<ProbeSpec> mustParse(const std::string &Text) {
  auto S = parseProbeSpecs(Text, "<test>");
  EXPECT_TRUE(S.hasValue()) << S.message();
  return S.hasValue() ? S.take() : std::vector<ProbeSpec>{};
}

std::string parseError(const std::string &Text) {
  auto S = parseProbeSpecs(Text, "spec");
  EXPECT_FALSE(S.hasValue()) << "expected a parse error";
  return S.hasValue() ? std::string() : S.message();
}

TEST(ProbeSpecParser, AcceptsDocumentedGrammar) {
  std::vector<ProbeSpec> Specs = mustParse(
      "# comment\n"
      "probe a { event inst_issued; aggregation count }\n"
      "probe b {\n"
      "  event = mem_access\n"
      "  aggregation = sum\n"
      "  value bytes\n"
      "  key width\n"
      "  filter space == global\n"
      "  filter bytes >= 128\n"
      "}\n");
  ASSERT_EQ(Specs.size(), 2u);
  EXPECT_EQ(Specs[0].Name, "a");
  EXPECT_EQ(Specs[0].Event, ProbeEvent::InstIssued);
  EXPECT_EQ(Specs[0].Agg, ProbeAgg::Count);
  EXPECT_FALSE(Specs[0].HasValue);
  EXPECT_FALSE(Specs[0].HasKey);
  EXPECT_EQ(Specs[1].Name, "b");
  EXPECT_EQ(Specs[1].Event, ProbeEvent::MemAccess);
  EXPECT_EQ(Specs[1].Agg, ProbeAgg::Sum);
  EXPECT_TRUE(Specs[1].HasValue);
  EXPECT_EQ(Specs[1].Value, ProbeField::Bytes);
  EXPECT_TRUE(Specs[1].HasKey);
  EXPECT_EQ(Specs[1].Key, ProbeField::Width);
  ASSERT_EQ(Specs[1].Filters.size(), 2u);
  EXPECT_EQ(Specs[1].Filters[0].Field, ProbeField::Space);
  EXPECT_EQ(Specs[1].Filters[0].Cmp, ProbeCmp::Eq);
  EXPECT_EQ(Specs[1].Filters[0].Value, 1); // global
  EXPECT_EQ(Specs[1].Filters[1].Field, ProbeField::Bytes);
  EXPECT_EQ(Specs[1].Filters[1].Cmp, ProbeCmp::Ge);
  EXPECT_EQ(Specs[1].Filters[1].Value, 128);
}

TEST(ProbeSpecParser, ResolvesSymbolicFilterValues) {
  std::vector<ProbeSpec> Specs = mustParse(
      "probe f { event inst_issued; aggregation count; "
      "filter opcode == FFMA; filter class == shared_mem }\n"
      "probe w { event mem_access; aggregation count; "
      "filter width == b128 }\n"
      "probe c { event slot_lost; aggregation sum; value slots; "
      "filter cause == dispatch_limit }\n");
  ASSERT_EQ(Specs.size(), 3u);
  EXPECT_EQ(Specs[0].Filters[0].Value,
            static_cast<int64_t>(Opcode::FFMA));
  EXPECT_EQ(Specs[0].Filters[1].Value,
            static_cast<int64_t>(OpClass::SharedMem));
  EXPECT_EQ(Specs[1].Filters[0].Value, 128);
  EXPECT_EQ(Specs[2].Filters[0].Value,
            static_cast<int64_t>(SlotUse::DispatchLimit));
}

TEST(ProbeSpecParser, RejectsMalformedInputWithLineColumn) {
  // Every diagnostic carries file:line:column pointing at the offending
  // token -- the CLI contract (exit 2 + this message on stderr).
  EXPECT_NE(parseError("probe x { event inst_issued\n"
                       "aggregation bogus }")
                .find("spec:2:13"),
            std::string::npos);
  EXPECT_NE(parseError("probe x { bad_directive foo }").find("1:11"),
            std::string::npos);
  EXPECT_NE(parseError("probe x { event no_such_event; "
                       "aggregation count }")
                .find("unknown event"),
            std::string::npos);
  // Field not carried by the event, diagnosed at the field token.
  EXPECT_NE(parseError("probe x { event replay; aggregation sum; "
                       "value bytes }")
                .find("'bytes'"),
            std::string::npos);
  // sum/min/max need a value; count must not have one.
  EXPECT_NE(parseError("probe x { event replay; aggregation sum }")
                .find("value"),
            std::string::npos);
  EXPECT_NE(parseError("probe x { event replay; aggregation count; "
                       "value cycle }")
                .find("value"),
            std::string::npos);
  // Duplicates and the reserved JSON key.
  EXPECT_NE(parseError("probe x { event replay; aggregation count }\n"
                       "probe x { event replay; aggregation count }")
                .find("duplicate"),
            std::string::npos);
  EXPECT_NE(parseError("probe version { event replay; "
                       "aggregation count }")
                .find("version"),
            std::string::npos);
  EXPECT_NE(parseError("").find("no probes"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Engine folding and merging
//===----------------------------------------------------------------------===//

ProbeEventRecord memRecord(int64_t Bytes, int64_t Space, int64_t Cycle) {
  ProbeEventRecord R;
  R.Bytes = Bytes;
  R.Space = Space;
  R.Cycle = Cycle;
  return R;
}

TEST(ProbeEngineFold, AggregationsAndFilters) {
  ProbeEngine E(mustParse(
      "probe n { event mem_access; aggregation count; "
      "filter space == global }\n"
      "probe s { event mem_access; aggregation sum; value bytes }\n"
      "probe lo { event mem_access; aggregation min; value bytes }\n"
      "probe hi { event mem_access; aggregation max; value bytes }\n"
      "probe w { event mem_access; aggregation watch; "
      "filter bytes > 200 }\n"));
  E.fire(ProbeEvent::MemAccess, memRecord(128, 1, 10));
  E.fire(ProbeEvent::MemAccess, memRecord(256, 0, 20));
  E.fire(ProbeEvent::MemAccess, memRecord(512, 1, 30));
  EXPECT_EQ(E.stateByName("n")->Total.Count, 2u); // global only
  EXPECT_EQ(E.stateByName("s")->Total.Value, 128 + 256 + 512);
  EXPECT_EQ(E.stateByName("lo")->Total.Value, 128);
  EXPECT_EQ(E.stateByName("hi")->Total.Value, 512);
  // watch = cycle of the first matching event.
  EXPECT_TRUE(E.stateByName("w")->Total.Seen);
  EXPECT_EQ(E.stateByName("w")->Total.Value, 20);
  // Unfired events leave min/max unseen rather than at a fake 0.
  ProbeEngine E2 = E.emptyClone();
  EXPECT_FALSE(E2.stateByName("lo")->Total.Seen);
}

TEST(ProbeEngineFold, KeysAndMergeOrderIndependence) {
  ProbeEngine Proto(mustParse(
      "probe by_space { event mem_access; aggregation sum; "
      "value bytes; key space }\n"
      "probe first { event mem_access; aggregation watch }\n"));
  // Two per-SM clones fed disjoint events, merged in both orders: every
  // aggregation is commutative and associative, so the results agree --
  // the property behind --jobs invariance.
  ProbeEngine A = Proto.emptyClone(), B = Proto.emptyClone();
  A.fire(ProbeEvent::MemAccess, memRecord(100, 0, 50));
  A.fire(ProbeEvent::MemAccess, memRecord(1, 1, 60));
  B.fire(ProbeEvent::MemAccess, memRecord(200, 0, 5));
  ProbeEngine AB = Proto.emptyClone(), BA = Proto.emptyClone();
  AB.merge(A);
  AB.merge(B);
  BA.merge(B);
  BA.merge(A);
  EXPECT_EQ(AB.report(), BA.report());
  const ProbeState *S = AB.stateByName("by_space");
  ASSERT_EQ(S->Keys.size(), 2u);
  EXPECT_EQ(S->Keys.at(0).Value, 300);
  EXPECT_EQ(S->Keys.at(1).Value, 1);
  EXPECT_EQ(AB.stateByName("first")->Total.Value, 5);
}

TEST(ProbeEngineFold, WaveOffsetShiftsCycles) {
  ProbeEngine E(mustParse(
      "probe w { event mem_access; aggregation watch }\n"));
  E.beginWave(1000);
  E.fire(ProbeEvent::MemAccess, memRecord(4, 0, 7));
  EXPECT_EQ(E.stateByName("w")->Total.Value, 1007);
}

//===----------------------------------------------------------------------===//
// Shadow probes against a real launch
//===----------------------------------------------------------------------===//

constexpr int ProblemM = 192, ProblemN = 192, ProblemK = 64;

struct NNProblem {
  Kernel K;
  LaunchConfig Launch;
  size_t MemBytes = 0;
};

/// The BR=6 tuned NN kernel on \p M, zero matrices (probe counters are
/// data-independent for this kernel, like trace determinism).
NNProblem makeTunedNN(const MachineDesc &M) {
  NNProblem P;
  SgemmKernelConfig Cfg =
      baselineConfig(SgemmImpl::AsmTuned, M, GemmVariant::NN, ProblemM,
                     ProblemN, ProblemK);
  auto K = generateSgemmKernel(M, Cfg);
  EXPECT_TRUE(K.hasValue()) << K.message();
  P.K = K.take();
  auto Round256 = [](size_t N) { return (N + 255) & ~size_t(255); };
  size_t ABytes = size_t(ProblemM) * ProblemK * 4;
  size_t BBytes = size_t(ProblemK) * ProblemN * 4;
  size_t CBytes = size_t(ProblemM) * ProblemN * 4;
  uint32_t AAddr = 256;
  uint32_t BAddr = AAddr + static_cast<uint32_t>(Round256(ABytes));
  uint32_t CAddr = BAddr + static_cast<uint32_t>(Round256(BBytes));
  P.MemBytes = Round256(ABytes) + Round256(BBytes) + CBytes;
  SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
  P.Launch.Dims.GridX = Shape.GridX;
  P.Launch.Dims.GridY = Shape.GridY;
  P.Launch.Dims.BlockX = Shape.BlockX;
  P.Launch.Params = {AAddr, BAddr, CAddr, 0x3f800000u, 0u};
  P.Launch.Mode = SimMode::Full;
  return P;
}

/// The shadow spec: one probe per simulator aggregate the engine must
/// reproduce exactly, covering seven distinct event kinds.
const char *ShadowSpecText =
    "probe warp_insts { event inst_issued; aggregation count }\n"
    "probe thread_insts { event inst_issued; aggregation sum; "
    "value lanes }\n"
    "probe duals { event inst_issued; aggregation count; "
    "filter dual == 1 }\n"
    "probe gbytes { event mem_access; aggregation sum; value bytes; "
    "filter space == global }\n"
    "probe gtrans { event mem_access; aggregation sum; "
    "value transactions; filter space == global }\n"
    "probe replays { event replay; aggregation count }\n"
    "probe conflicts { event bank_conflict; aggregation count }\n"
    "probe lost { event slot_lost; aggregation sum; value slots; "
    "key cause }\n"
    "probe pc_issues { event inst_issued; aggregation count; key pc }\n"
    "probe blocks { event block_scheduled; aggregation count }\n"
    "probe drains { event block_drained; aggregation count }\n"
    "probe warps { event warp_exit; aggregation count }\n"
    "probe warp_work { event warp_exit; aggregation sum; value insts }\n"
    "probe first_pc0 { event pc_reached; aggregation watch; "
    "filter pc == 0 }\n";

void checkShadow(const MachineDesc &M) {
  NNProblem P = makeTunedNN(M);
  ProbeEngine Probes(mustParse(ShadowSpecText));
  KernelProfile Prof;
  P.Launch.Probes = &Probes;
  P.Launch.Profile = &Prof;
  GlobalMemory GM(P.MemBytes + 512);
  auto R = launchKernel(M, P.K, P.Launch, GM);
  ASSERT_TRUE(R.hasValue()) << R.message();
  const SimStats &S = R->Stats;

  auto total = [&](const char *Name) -> const ProbeAccum & {
    const ProbeState *St = Probes.stateByName(Name);
    EXPECT_NE(St, nullptr) << Name;
    return St->Total;
  };

  // The self-check of DESIGN.md section 14: every probe must equal the
  // bespoke counter it shadows, exactly -- not approximately.
  EXPECT_EQ(total("warp_insts").Count, S.WarpInstsIssued);
  EXPECT_EQ(static_cast<uint64_t>(total("thread_insts").Value),
            S.ThreadInstsIssued);
  EXPECT_EQ(total("duals").Count, S.DualIssues);
  EXPECT_EQ(static_cast<uint64_t>(total("gbytes").Value),
            S.GlobalBytes);
  EXPECT_EQ(static_cast<uint64_t>(total("gtrans").Value),
            S.GlobalTransactions);
  EXPECT_EQ(total("replays").Count, S.ReplayPenalties);
  EXPECT_EQ(total("conflicts").Count, S.SharedConflictEvents);

  // Lost issue slots keyed by cause reproduce the per-cause breakdown;
  // the issued cause never appears as a loss.
  const ProbeState *Lost = Probes.stateByName("lost");
  ASSERT_NE(Lost, nullptr);
  EXPECT_EQ(Lost->Keys.count(static_cast<int64_t>(SlotUse::Issued)),
            0u);
  for (size_t I = 1; I < NumSlotUses; ++I) {
    auto It = Lost->Keys.find(static_cast<int64_t>(I));
    uint64_t Probed =
        It == Lost->Keys.end()
            ? 0
            : static_cast<uint64_t>(It->second.Value);
    EXPECT_EQ(Probed, S.Breakdown.Slots[I])
        << slotUseName(static_cast<SlotUse>(I));
  }

  // Per-PC issue counts reproduce the profiler, instruction by
  // instruction.
  const ProbeState *PCI = Probes.stateByName("pc_issues");
  ASSERT_NE(PCI, nullptr);
  uint64_t ProfiledIssues = 0;
  for (size_t PC = 0; PC < P.K.Code.size(); ++PC) {
    auto It = PCI->Keys.find(static_cast<int64_t>(PC));
    uint64_t Probed = It == PCI->Keys.end() ? 0 : It->second.Count;
    EXPECT_EQ(Probed, Prof.at(PC).Issues) << "PC " << PC;
    ProfiledIssues += Prof.at(PC).Issues;
  }
  EXPECT_EQ(ProfiledIssues, S.WarpInstsIssued);

  // Block and warp lifecycle events fire once per block/warp.
  uint64_t Blocks =
      uint64_t(P.Launch.Dims.GridX) * P.Launch.Dims.GridY;
  uint64_t Warps = Blocks * (P.Launch.Dims.BlockX / 32);
  EXPECT_EQ(total("blocks").Count, Blocks);
  EXPECT_EQ(total("drains").Count, Blocks);
  EXPECT_EQ(total("warps").Count, Warps);
  EXPECT_EQ(static_cast<uint64_t>(total("warp_work").Value),
            S.WarpInstsIssued);

  // The pc_reached watchpoint saw PC 0 early in the run.
  EXPECT_TRUE(total("first_pc0").Seen);
  EXPECT_GE(total("first_pc0").Value, 0);
}

TEST(ProbeShadow, MatchesSimStatsExactlyGTX580) {
  checkShadow(gtx580());
}
TEST(ProbeShadow, MatchesSimStatsExactlyGTX680) {
  checkShadow(gtx680());
}

TEST(ProbeShadow, ReportBitIdenticalAcrossJobs) {
  for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
    std::vector<std::string> Reports;
    for (int Jobs : {1, 2, 0}) {
      NNProblem P = makeTunedNN(*M);
      ProbeEngine Probes(mustParse(ShadowSpecText));
      P.Launch.Probes = &Probes;
      P.Launch.Jobs = Jobs;
      GlobalMemory GM(P.MemBytes + 512);
      auto R = launchKernel(*M, P.K, P.Launch, GM);
      ASSERT_TRUE(R.hasValue()) << R.message();
      Reports.push_back(Probes.report());
    }
    EXPECT_EQ(Reports[0], Reports[1]) << M->Name;
    EXPECT_EQ(Reports[0], Reports[2]) << M->Name;
  }
}

TEST(ProbeShadow, JsonObjectIsValidAndVersioned) {
  NNProblem P = makeTunedNN(gtx680());
  ProbeEngine Probes(mustParse(ShadowSpecText));
  P.Launch.Probes = &Probes;
  GlobalMemory GM(P.MemBytes + 512);
  auto R = launchKernel(gtx680(), P.K, P.Launch, GM);
  ASSERT_TRUE(R.hasValue()) << R.message();
  std::string Json = probeRecordJson(Probes, 1, "GTX680", "sgemm");
  std::string Err;
  ASSERT_TRUE(jsonValidate(Json, &Err)) << Err;
  auto V = jsonParse(Json);
  ASSERT_TRUE(V.hasValue()) << V.message();
  const JsonValue *Pr = V->find("probes");
  ASSERT_NE(Pr, nullptr);
  const JsonValue *Ver = Pr->find("version");
  ASSERT_NE(Ver, nullptr);
  EXPECT_EQ(Ver->Number, ProbesObjectVersion);
  ASSERT_NE(Pr->find("gbytes"), nullptr);
  EXPECT_EQ(Pr->find("gbytes")->find("value")->Number,
            static_cast<double>(R->Stats.GlobalBytes));
}

//===----------------------------------------------------------------------===//
// CLI surface: gpurun --probe / perfdiff --require
//===----------------------------------------------------------------------===//

#if defined(GPUPERF_GPURUN_PATH) && defined(GPUPERF_PERFDIFF_PATH)

/// Runs \p Cmd with stderr folded into stdout; returns the exit status.
int runCommand(const std::string &Cmd, std::string *Out) {
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  Out->clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out->append(Buf, N);
  int Raw = pclose(P);
  return Raw < 0 ? -1 : WEXITSTATUS(Raw);
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary);
  Out << Text;
  ASSERT_TRUE(Out.good()) << Path;
}

class ProbeCli : public ::testing::Test {
protected:
  void SetUp() override {
    const MachineDesc &M = gtx680();
    NNProblem P = makeTunedNN(M);
    Module Mod;
    Mod.Arch = M.Generation;
    Mod.Kernels.push_back(P.K);
    ModPath = ::testing::TempDir() + "gpuperf_probe_test_sgemm.gpub";
    Status WriteStatus = Mod.writeToFile(ModPath);
    ASSERT_FALSE(WriteStatus.failed()) << WriteStatus.message();
    BaseCmd = formatString(
        "%s %s --machine GTX680 --grid %d,%d --block %d --mem %zu "
        "--param %u --param %u --param 0x3f800000 --param 0",
        GPUPERF_GPURUN_PATH, ModPath.c_str(), P.Launch.Dims.GridX,
        P.Launch.Dims.GridY, P.Launch.Dims.BlockX, P.MemBytes + 512,
        P.Launch.Params[1], P.Launch.Params[2]);
    SpecPath = ::testing::TempDir() + "gpuperf_probe_test.probe";
    writeFile(SpecPath,
              "probe gb { event mem_access; aggregation sum; "
              "value bytes; filter space == global }\n");
  }

  void TearDown() override {
    std::remove(ModPath.c_str());
    std::remove(SpecPath.c_str());
  }

  std::string ModPath, BaseCmd, SpecPath;
};

TEST_F(ProbeCli, ProbeOutputByteIdenticalAcrossJobs) {
  std::string Out1, Out4;
  ASSERT_EQ(runCommand(BaseCmd + " --probe " + SpecPath + " --jobs 1",
                       &Out1),
            0)
      << Out1;
  ASSERT_EQ(runCommand(BaseCmd + " --probe " + SpecPath + " --jobs 4",
                       &Out4),
            0)
      << Out4;
  EXPECT_NE(Out1.find("probe gb:"), std::string::npos);
  EXPECT_EQ(Out1, Out4);
}

TEST_F(ProbeCli, MalformedSpecRejectedWithDiagnostic) {
  std::string BadPath = ::testing::TempDir() + "gpuperf_bad.probe";
  writeFile(BadPath, "probe x {\n  event inst_issued\n"
                     "  aggregation bogus\n}\n");
  std::string Out;
  EXPECT_EQ(runCommand(BaseCmd + " --probe " + BadPath, &Out), 2);
  // The diagnostic names the file and points at line 3, column 15.
  EXPECT_NE(Out.find("gpuperf_bad.probe:3:15"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("unknown aggregation"), std::string::npos) << Out;
  std::remove(BadPath.c_str());
}

TEST_F(ProbeCli, DuplicateProbeNamesRejected) {
  std::string DupPath = ::testing::TempDir() + "gpuperf_dup.probe";
  writeFile(DupPath,
            "probe x { event replay; aggregation count }\n"
            "probe x { event replay; aggregation count }\n");
  std::string Out;
  EXPECT_EQ(runCommand(BaseCmd + " --probe " + DupPath, &Out), 2);
  EXPECT_NE(Out.find("duplicate"), std::string::npos) << Out;
  std::remove(DupPath.c_str());
}

TEST_F(ProbeCli, ProbeOutRequiresProbe) {
  std::string Out;
  EXPECT_EQ(runCommand(BaseCmd + " --probe-out /tmp/x.json", &Out), 2);
  EXPECT_NE(Out.find("--probe-out requires --probe"),
            std::string::npos)
      << Out;
}

TEST_F(ProbeCli, PerfdiffRequireGatesProbesObject) {
  std::string Dir = ::testing::TempDir();
  std::string Base = Dir + "gpuperf_req_base.json";
  std::string Cur = Dir + "gpuperf_req_cur.json";
  const char *Record =
      "{\"schema_version\":1,\"record\":\"bench\","
      "\"machine\":\"GTX680\",\"probes\":{\"version\":1,"
      "\"gb\":{\"count\":3,\"value\":42}}}";
  writeFile(Base, Record);
  writeFile(Cur, Record);
  std::string Out;
  std::string Diff = std::string(GPUPERF_PERFDIFF_PATH) + " " + Base +
                     " " + Cur;
  EXPECT_EQ(runCommand(Diff + " --require probes.gb", &Out), 0) << Out;
  EXPECT_EQ(runCommand(Diff + " --require probes.gone", &Out), 1)
      << Out;
  EXPECT_NE(Out.find("probes.gone"), std::string::npos) << Out;
  std::remove(Base.c_str());
  std::remove(Cur.c_str());
}

#endif // GPUPERF_GPURUN_PATH && GPUPERF_PERFDIFF_PATH

} // namespace
