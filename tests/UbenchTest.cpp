//===- tests/UbenchTest.cpp - microbenchmark generator tests --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "arch/RegisterBank.h"
#include "ubench/MixBench.h"
#include "ubench/OpPattern.h"
#include "ubench/PerfDatabase.h"

#include <gtest/gtest.h>

using namespace gpuperf;

// --- Mix benchmark structure ------------------------------------------------

TEST(MixBench, RatioIsRespected) {
  for (int Ratio : {1, 3, 6, 12}) {
    MixBenchParams P;
    P.FfmaPerLds = Ratio;
    Kernel K = generateMixBench(gtx580(), P);
    int Ffma = 0, Lds = 0;
    for (const Instruction &I : K.Code) {
      Ffma += I.Op == Opcode::FFMA;
      Lds += I.Op == Opcode::LDS;
    }
    ASSERT_GT(Lds, 0);
    EXPECT_NEAR(static_cast<double>(Ffma) / Lds, Ratio, 0.1) << Ratio;
  }
}

TEST(MixBench, PureModes) {
  MixBenchParams P;
  P.FfmaPerLds = -1;
  Kernel OnlyFfma = generateMixBench(gtx580(), P);
  P.FfmaPerLds = 0;
  Kernel OnlyLds = generateMixBench(gtx580(), P);
  auto Count = [](const Kernel &K, Opcode Op) {
    int N = 0;
    for (const Instruction &I : K.Code)
      N += I.Op == Op;
    return N;
  };
  EXPECT_EQ(Count(OnlyFfma, Opcode::LDS), 0);
  EXPECT_GE(Count(OnlyFfma, Opcode::FFMA), 2000);
  EXPECT_EQ(Count(OnlyLds, Opcode::FFMA), 0);
  EXPECT_GE(Count(OnlyLds, Opcode::LDS), 2000);
}

TEST(MixBench, FfmaOperandsAreConflictFree) {
  // The benchmark must measure the scheduler/pipes, not bank conflicts.
  for (bool Dependent : {false, true}) {
    MixBenchParams P;
    P.Dependent = Dependent;
    Kernel K = generateMixBench(gtx680(), P);
    for (const Instruction &I : K.Code) {
      if (I.Op != Opcode::FFMA)
        continue;
      RegList Distinct;
      for (int S = 0; S < 3; ++S)
        if (I.Src[S] != RegRZ && !Distinct.contains(I.Src[S]))
          Distinct.push(I.Src[S]);
      EXPECT_EQ(bankConflictDegree(Distinct), 1) << I.toString();
    }
  }
}

TEST(MixBench, StaysWithin32Registers) {
  // Occupancy sweeps need 2048 threads on Kepler: 64K regs / 2048 = 32.
  for (bool Dependent : {false, true})
    for (MemWidth W : {MemWidth::B32, MemWidth::B64, MemWidth::B128}) {
      MixBenchParams P;
      P.Dependent = Dependent;
      P.Width = W;
      Kernel K = generateMixBench(gtx680(), P);
      EXPECT_LE(K.RegsPerThread, 32);
    }
}

TEST(MixBench, DependentConsumesLoadedRegisters) {
  MixBenchParams P;
  P.Dependent = true;
  Kernel K = generateMixBench(gtx580(), P);
  // Find a load and check the next FFMA reads its destination.
  bool Checked = false;
  for (size_t I = 0; I + 1 < K.Code.size(); ++I) {
    if (K.Code[I].Op != Opcode::LDS)
      continue;
    const Instruction &Next = K.Code[I + 1];
    if (Next.Op != Opcode::FFMA)
      continue;
    EXPECT_EQ(Next.Src[1], K.Code[I].Dst);
    Checked = true;
    break;
  }
  EXPECT_TRUE(Checked);
}

TEST(MixBench, KeplerKernelsGetNotations) {
  MixBenchParams P;
  Kernel K = generateMixBench(gtx680(), P);
  EXPECT_TRUE(K.hasNotations());
  P.Notation = NotationQuality::None;
  Kernel K2 = generateMixBench(gtx680(), P);
  EXPECT_FALSE(K2.hasNotations());
  // Fermi never carries notations.
  Kernel K3 = generateMixBench(gtx580(), P);
  EXPECT_FALSE(K3.hasNotations());
}

// --- Operand-pattern benchmarks (Table 2 methodology) -------------------------

TEST(OpPattern, RenamingPreservesBanks) {
  // Renaming by multiples of 8 preserves the bank mapping, so all copies
  // exhibit the pattern's conflict behaviour.
  Kernel K = generateOpPatternBench(gtx680(), makeFFMA(0, 1, 3, 9), 64);
  for (const Instruction &I : K.Code) {
    if (I.Op != Opcode::FFMA)
      continue;
    EXPECT_EQ(registerBank(I.Src[0]), registerBank(1));
    EXPECT_EQ(registerBank(I.Src[1]), registerBank(3));
    EXPECT_EQ(registerBank(I.Src[2]), registerBank(9));
  }
}

TEST(OpPattern, CopiesAreIndependentChains) {
  Kernel K = generateOpPatternBench(gtx680(), makeFADD(0, 1, 0), 64, 4);
  // Body instructions rotate through dsts R0, R8, R16, R24.
  std::vector<uint8_t> Dsts;
  for (const Instruction &I : K.Code)
    if (I.Op == Opcode::FADD)
      Dsts.push_back(I.Dst);
  ASSERT_GE(Dsts.size(), 8u);
  EXPECT_EQ(Dsts[0], 0);
  EXPECT_EQ(Dsts[1], 8);
  EXPECT_EQ(Dsts[2], 16);
  EXPECT_EQ(Dsts[3], 24);
  EXPECT_EQ(Dsts[4], 0);
}

TEST(OpPattern, InitializesTouchedRegisters) {
  Kernel K = generateOpPatternBench(gtx680(), makeFMUL(0, 1, 2), 16, 2);
  // MOV32I of 1.0f for each renamed register before the body.
  int Movs = 0;
  for (const Instruction &I : K.Code)
    if (I.Op == Opcode::MOV32I) {
      EXPECT_EQ(static_cast<uint32_t>(I.Imm), 0x3f800000u);
      ++Movs;
    }
  EXPECT_EQ(Movs, 2 * 3); // 3 registers x 2 copies.
}

TEST(OpPattern, Table2HasAllRows) {
  // 6 accumulator rows + 13 distinct-operand rows.
  EXPECT_EQ(table2Patterns().size(), 19u);
}

// --- PerfDatabase ----------------------------------------------------------------

TEST(PerfDatabase, MemoizesMeasurements) {
  PerfDatabase DB(gtx580());
  double First = DB.mixThroughput(6, MemWidth::B64, true, 256);
  double Second = DB.mixThroughput(6, MemWidth::B64, true, 256);
  EXPECT_EQ(First, Second); // And the second call is a cache hit.
  EXPECT_GT(First, 0);
}

TEST(PerfDatabase, SaturatedOccupancyPerMachine) {
  PerfDatabase Fermi(gtx580());
  PerfDatabase Kepler(gtx680());
  // Fermi's 32K registers cap the 32-reg benchmark at 1024 threads;
  // Kepler reaches 2048, so its saturated throughput is far higher.
  EXPECT_GT(Kepler.ffmaPeak(), 3 * Fermi.ffmaPeak());
}
