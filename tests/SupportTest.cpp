//===- tests/SupportTest.cpp - support library unit tests -----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "support/Args.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/MathUtils.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace gpuperf;

TEST(Format, Basic) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "abc"), "x=42 y=abc");
  EXPECT_EQ(formatString("%%"), "%");
  const char *Empty = "";
  EXPECT_EQ(formatString(Empty), "");
}

TEST(Format, LongStrings) {
  std::string Long(1000, 'a');
  EXPECT_EQ(formatString("%s!", Long.c_str()), Long + "!");
}

TEST(Format, Double) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(82.5, 1), "82.5");
}

TEST(Error, StatusSuccessAndFailure) {
  Status Ok = Status::success();
  EXPECT_FALSE(Ok.failed());
  EXPECT_TRUE(static_cast<bool>(Ok));

  Status Bad = Status::error("boom");
  EXPECT_TRUE(Bad.failed());
  EXPECT_EQ(Bad.message(), "boom");
}

TEST(Error, ExpectedValue) {
  Expected<int> E(7);
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ(*E, 7);
  EXPECT_EQ(E.take(), 7);
}

TEST(Error, ExpectedError) {
  auto E = Expected<int>::error("no luck");
  EXPECT_FALSE(E.hasValue());
  EXPECT_EQ(E.message(), "no luck");
  EXPECT_TRUE(E.takeStatus().failed());
}

TEST(Error, ExpectedMoveOnlyType) {
  auto E = Expected<std::unique_ptr<int>>(std::make_unique<int>(5));
  ASSERT_TRUE(E.hasValue());
  auto P = E.take();
  EXPECT_EQ(*P, 5);
}

TEST(Error, ExpectedTakeErrorMovesMessage) {
  auto E = Expected<int>::error("lengthy diagnostic text");
  std::string Msg = E.takeError();
  EXPECT_EQ(Msg, "lengthy diagnostic text");
}

TEST(Error, ExpectedMapTransformsValue) {
  auto Doubled = Expected<int>(21).map([](int V) { return V * 2; });
  ASSERT_TRUE(Doubled.hasValue());
  EXPECT_EQ(*Doubled, 42);

  // The callback can change the payload type.
  auto Text =
      Expected<int>(7).map([](int V) { return std::to_string(V); });
  ASSERT_TRUE(Text.hasValue());
  EXPECT_EQ(*Text, "7");
}

TEST(Error, ExpectedMapPropagatesError) {
  auto E = Expected<int>::error("upstream parse failure")
               .map([](int V) { return V + 1; });
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.message(), "upstream parse failure");
}

TEST(Error, ExpectedMapMoveOnlyPayload) {
  // map() must move the payload through the callback, not copy it.
  auto E = Expected<std::unique_ptr<int>>(std::make_unique<int>(9))
               .map([](std::unique_ptr<int> P) { return *P + 1; });
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ(*E, 10);

  // ...and may also *produce* a move-only payload.
  auto P = Expected<int>(3)
               .map([](int V) { return std::make_unique<int>(V); })
               .take();
  EXPECT_EQ(*P, 3);
}

TEST(MathUtils, DivideCeil) {
  EXPECT_EQ(divideCeil(0, 4), 0u);
  EXPECT_EQ(divideCeil(1, 4), 1u);
  EXPECT_EQ(divideCeil(4, 4), 1u);
  EXPECT_EQ(divideCeil(5, 4), 2u);
}

TEST(MathUtils, AlignTo) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 8), 16u);
}

TEST(MathUtils, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(64));
  EXPECT_FALSE(isPowerOf2(96));
}

TEST(MathUtils, IntSqrt) {
  EXPECT_EQ(intSqrt(0), 0u);
  EXPECT_EQ(intSqrt(1), 1u);
  EXPECT_EQ(intSqrt(96 * 96), 96u);
  EXPECT_EQ(intSqrt(97 * 97 - 1), 96u);
}

TEST(Rng, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, RangesRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInRange(-3, 9);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 9);
    float F = R.nextUnitFloat();
    EXPECT_GE(F, -1.0f);
    EXPECT_LE(F, 1.0f);
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Table, RendersAlignedColumns) {
  Table T;
  T.setHeader({"name", "value"});
  T.addRow({"alpha", "1.5"});
  T.addRow({"b", "23.25"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Numeric cells right-aligned: "23.25" wider than "1.5".
  EXPECT_NE(Out.find("  1.5"), std::string::npos);
}

TEST(Table, EmptyTable) {
  Table T;
  EXPECT_EQ(T.render(), "");
}

//===----------------------------------------------------------------------===//
// ThreadPool / parallelFor
//===----------------------------------------------------------------------===//

TEST(ParallelFor, CoversEveryIndexOnce) {
  for (int Jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> Counts(257);
    parallelFor(Jobs, Counts.size(),
                [&](size_t I) { Counts[I].fetch_add(1); });
    for (size_t I = 0; I < Counts.size(); ++I)
      EXPECT_EQ(Counts[I].load(), 1) << "index " << I << " jobs " << Jobs;
  }
}

TEST(ParallelFor, EmptyAndSingleIteration) {
  int Calls = 0;
  parallelFor(8, 0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  parallelFor(8, 1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
}

TEST(ParallelFor, MoreJobsThanWork) {
  std::atomic<int> Sum{0};
  parallelFor(64, 3, [&](size_t I) { Sum.fetch_add(int(I) + 1); });
  EXPECT_EQ(Sum.load(), 6);
}

TEST(ParallelFor, NestedDoesNotDeadlock) {
  // An inner parallelFor on the same (shared) pool must complete even
  // when every worker is already busy with the outer loop: completion is
  // tracked per-iteration and the caller always participates.
  std::atomic<int> Total{0};
  parallelFor(4, 4, [&](size_t) {
    parallelFor(4, 8, [&](size_t) { Total.fetch_add(1); });
  });
  EXPECT_EQ(Total.load(), 32);
}

TEST(ParallelFor, SerialJobsRunOnCallingThread) {
  const auto Caller = std::this_thread::get_id();
  parallelFor(1, 16, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_GE(resolveJobs(0), 1);
  EXPECT_GE(resolveJobs(-3), 1);
  EXPECT_EQ(resolveJobs(1), 1);
  EXPECT_EQ(resolveJobs(7), 7);
}

//===----------------------------------------------------------------------===//
// Args: validating integer flag parsing (the atoi-replacement satellite)
//===----------------------------------------------------------------------===//

TEST(Args, ParseIntegerAcceptsWellFormedValues) {
  EXPECT_EQ(*parseInteger("42", 0, 100), 42);
  EXPECT_EQ(*parseInteger("-7", -10, 10), -7);
  EXPECT_EQ(*parseInteger("0x10", 0, 100), 16); // Base-0: hex works.
  EXPECT_EQ(*parseInteger("0", 0, 0), 0);
  EXPECT_EQ(*parseInteger("  8", 0, 10), 8); // strtol skips blanks.
}

TEST(Args, ParseIntegerRejectsMalformedValues) {
  // Everything atoi silently turned into 0 (or truncated) must fail
  // with a diagnostic instead.
  EXPECT_FALSE(parseInteger("", 0, 100).hasValue());
  EXPECT_FALSE(parseInteger("banana", 0, 100).hasValue());
  EXPECT_FALSE(parseInteger("12abc", 0, 100).hasValue());
  EXPECT_FALSE(parseInteger("4.5", 0, 100).hasValue());
  EXPECT_FALSE(parseInteger("1e3", 0, 10000).hasValue());
  EXPECT_FALSE(parseInteger(" ", 0, 100).hasValue());
}

TEST(Args, ParseIntegerEnforcesRange) {
  EXPECT_FALSE(parseInteger("101", 0, 100).hasValue());
  EXPECT_FALSE(parseInteger("-1", 0, 100).hasValue());
  EXPECT_FALSE(
      parseInteger("99999999999999999999999", 0, 1 << 30).hasValue());
  EXPECT_EQ(*parseInteger("100", 0, 100), 100);
}

TEST(Args, ParseUnsignedRejectsNegativesAndGarbage) {
  EXPECT_EQ(*parseUnsigned("0xffffffff", 0xffffffffull), 0xffffffffull);
  // strtoull happily wraps "-1" to 2^64-1; parseUnsigned must not.
  EXPECT_FALSE(parseUnsigned("-1", 100).hasValue());
  EXPECT_FALSE(parseUnsigned("-0", 100).hasValue());
  EXPECT_FALSE(parseUnsigned("junk", 100).hasValue());
  EXPECT_FALSE(parseUnsigned("4294967296", 0xffffffffull).hasValue());
}

//===----------------------------------------------------------------------===//
// Json: writer round-trips through the strict validator
//===----------------------------------------------------------------------===//

TEST(Json, WriterProducesValidatedOutput) {
  JsonWriter W;
  W.beginObject();
  W.kv("name", "bench \"quoted\"\n\t\x01");
  W.kv("count", uint64_t(18446744073709551615ull));
  W.kv("signed", int64_t(-42));
  W.key("ratio");
  W.value(0.5, 3);
  W.kv("flag", true);
  W.key("list");
  W.beginArray();
  W.value(1);
  W.value("two");
  W.beginObject();
  W.kv("nested", false);
  W.endObject();
  W.endArray();
  W.endObject();
  std::string Err;
  EXPECT_TRUE(jsonValidate(W.str(), &Err)) << Err << "\n" << W.str();
  EXPECT_NE(W.str().find("18446744073709551615"), std::string::npos);
  EXPECT_NE(W.str().find("\\u0001"), std::string::npos);
  EXPECT_NE(W.str().find("0.500"), std::string::npos);
}

TEST(Json, WriterEmitsNullForNonFiniteDoubles) {
  JsonWriter W;
  W.beginObject();
  W.kv("inf", 1.0 / 0.0);
  W.kv("nan", 0.0 / 0.0);
  W.endObject();
  EXPECT_EQ(W.str(), "{\"inf\":null,\"nan\":null}");
  EXPECT_TRUE(jsonValidate(W.str()));
}

TEST(Json, ValidatorAcceptsWellFormedDocuments) {
  for (const char *Good :
       {"{}", "[]", "null", "true", "-0.5e10", "\"\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u00e9\\\\\"}",
        "  [ 1 , 2 ]  ", "\"\\n\\t\\\"\""})
    EXPECT_TRUE(jsonValidate(Good)) << Good;
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  std::string Err;
  for (const char *Bad :
       {"", "{", "}", "{]", "[1,]", "{\"a\":}", "{\"a\" 1}", "01",
        "1.2.3", "+1", "nul", "truex", "\"unterminated", "\"bad\\q\"",
        "\"\\u12g4\"", "{} trailing", "[1] 2", "{\"a\":1,}",
        "{'a':1}", "\"tab\tliteral\""}) {
    EXPECT_FALSE(jsonValidate(Bad, &Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

TEST(Json, ValidatorRejectsRunawayNesting) {
  std::string Deep(1000, '[');
  Deep += std::string(1000, ']');
  EXPECT_FALSE(jsonValidate(Deep)) << "depth cap must fire";
  std::string Shallow = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(jsonValidate(Shallow));
}

TEST(Json, WriterEscapesEveryControlCharacter) {
  // All 32 control bytes must leave the writer escaped, and the result
  // must survive the strict validator: a raw 0x00..0x1f in a string is
  // exactly the corruption the metrics pipeline must never emit.
  for (int C = 0; C < 0x20; ++C) {
    JsonWriter W;
    std::string S = "a";
    S.push_back(static_cast<char>(C));
    S += "b";
    W.beginObject();
    W.kv("k", S);
    W.endObject();
    std::string Err;
    EXPECT_TRUE(jsonValidate(W.str(), &Err))
        << "control 0x" << std::hex << C << ": " << Err;
    EXPECT_EQ(W.str().find(static_cast<char>(C)), std::string::npos)
        << "raw control byte 0x" << std::hex << C << " leaked";
  }
}

TEST(Json, WriterEscapesQuoteAndBackslash) {
  JsonWriter W;
  W.beginObject();
  W.kv("path", "C:\\dir\\\"name\"");
  W.endObject();
  EXPECT_EQ(W.str(), "{\"path\":\"C:\\\\dir\\\\\\\"name\\\"\"}");
  EXPECT_TRUE(jsonValidate(W.str()));
}

TEST(Json, WriterPassesNonAsciiThrough) {
  // UTF-8 above 0x7f needs no escaping; the bytes must arrive intact.
  JsonWriter W;
  W.beginObject();
  W.kv("name", "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97");
  W.endObject();
  std::string Err;
  EXPECT_TRUE(jsonValidate(W.str(), &Err)) << Err;
  EXPECT_NE(W.str().find("caf\xc3\xa9"), std::string::npos);
  EXPECT_NE(W.str().find("\xe6\xbc\xa2\xe5\xad\x97"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Json: the parsing side (jsonParse) round-trips what the writer emits
//===----------------------------------------------------------------------===//

TEST(Json, ParseDecodesWriterEscapes) {
  // Writer -> parser round-trip of a hostile string: every byte must
  // come back exactly, including embedded controls and non-ASCII.
  std::string Hostile = "quote\" back\\slash\nnul";
  Hostile.push_back('\0');
  Hostile += "\x01\x1f caf\xc3\xa9";
  JsonWriter W;
  W.beginObject();
  W.kv("s", Hostile);
  W.endObject();
  auto V = jsonParse(W.str());
  ASSERT_TRUE(V.hasValue()) << V.message();
  const JsonValue *S = V->find("s");
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->isString());
  EXPECT_EQ(S->Str, Hostile);
}

TEST(Json, ParseBuildsStructuredTree) {
  auto V = jsonParse(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"e\": \"x\"}");
  ASSERT_TRUE(V.hasValue()) << V.message();
  ASSERT_TRUE(V->isObject());
  const JsonValue *A = V->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->Items.size(), 3u);
  EXPECT_EQ(A->Items[0].Number, 1.0);
  EXPECT_EQ(A->Items[1].Number, 2.5);
  EXPECT_EQ(A->Items[2].Number, -300.0);
  const JsonValue *B = V->find("b");
  ASSERT_NE(B, nullptr);
  ASSERT_NE(B->find("c"), nullptr);
  EXPECT_TRUE(B->find("c")->Bool);
  ASSERT_NE(B->find("d"), nullptr);
  EXPECT_TRUE(B->find("d")->isNull());
  EXPECT_EQ(V->find("missing"), nullptr);
}

TEST(Json, ParseDecodesUnicodeEscapes) {
  // BMP escape, and a surrogate pair for U+1F600 -> 4-byte UTF-8.
  auto V = jsonParse("\"\\u00e9\\u6f22\\ud83d\\ude00\"");
  ASSERT_TRUE(V.hasValue()) << V.message();
  EXPECT_EQ(V->Str, "\xc3\xa9\xe6\xbc\xa2\xf0\x9f\x98\x80");
  // A lone high surrogate is not a valid escape.
  EXPECT_FALSE(jsonParse("\"\\ud83d\"").hasValue());
  EXPECT_FALSE(jsonParse("\"\\ud83dx\"").hasValue());
}

TEST(Json, ParseRejectsWhatValidatorRejects) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "01", "+1", "nul",
        "\"unterminated", "\"bad\\q\"", "{} trailing"}) {
    auto V = jsonParse(Bad);
    EXPECT_FALSE(V.hasValue()) << Bad;
    EXPECT_FALSE(V.message().empty()) << Bad;
  }
}

TEST(Json, ParseRoundTripsIntegerCounters) {
  // 2^53 is the largest counter the double representation holds
  // exactly -- the bench records stay far below it.
  auto V = jsonParse("{\"n\": 9007199254740992}");
  ASSERT_TRUE(V.hasValue()) << V.message();
  EXPECT_EQ(static_cast<uint64_t>(V->find("n")->Number),
            9007199254740992ull);
}
