//===- tests/SimPropertyTest.cpp - randomized differential testing --------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the functional executor: random straight-line math
/// programs are executed on the simulator and on an independent host
/// interpreter; all 32 lanes must agree bit-for-bit. Plus a multi-round
/// barrier stress test.
///
//===----------------------------------------------------------------------===//

#include "sim/Launcher.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace gpuperf;

namespace {

/// Registers available to the random program (R4..R19); R0-R3 hold the
/// lane id and addressing.
constexpr uint8_t FirstReg = 4;
constexpr uint8_t NumRegs = 16;

/// Host-side interpretation of one math instruction for one lane.
void interpret(const Instruction &I, uint32_t *Regs) {
  auto R = [&](uint8_t Reg) -> uint32_t {
    return Reg == RegRZ ? 0 : Regs[Reg];
  };
  auto F = [&](uint8_t Reg) {
    float V;
    uint32_t U = R(Reg);
    std::memcpy(&V, &U, 4);
    return V;
  };
  auto WriteF = [&](float V) {
    uint32_t U;
    std::memcpy(&U, &V, 4);
    // Canonical NaN, matching the executor; payload propagation is
    // operand-order-dependent on the host CPU and so not reproducible.
    if (std::isnan(V))
      U = 0x7fffffffu;
    Regs[I.Dst] = U;
  };
  uint32_t B = I.immReplacesSrc1() ? static_cast<uint32_t>(I.Imm)
                                   : R(I.Src[1]);
  switch (I.Op) {
  case Opcode::FFMA:
    WriteF(std::fma(F(I.Src[0]), F(I.Src[1]), F(I.Src[2])));
    break;
  case Opcode::FADD:
    WriteF(F(I.Src[0]) + F(I.Src[1]));
    break;
  case Opcode::FMUL:
    WriteF(F(I.Src[0]) * F(I.Src[1]));
    break;
  case Opcode::IADD:
    Regs[I.Dst] = R(I.Src[0]) + B;
    break;
  case Opcode::IMUL:
    Regs[I.Dst] = R(I.Src[0]) * B;
    break;
  case Opcode::IMAD:
    Regs[I.Dst] = R(I.Src[0]) * B + R(I.Src[2]);
    break;
  case Opcode::ISCADD:
    Regs[I.Dst] = (R(I.Src[0]) << I.iscaddShift()) + R(I.Src[1]);
    break;
  case Opcode::SHL:
    Regs[I.Dst] = R(I.Src[0]) << (B & 31);
    break;
  case Opcode::SHR:
    Regs[I.Dst] = R(I.Src[0]) >> (B & 31);
    break;
  case Opcode::LOP_AND:
    Regs[I.Dst] = R(I.Src[0]) & B;
    break;
  case Opcode::LOP_OR:
    Regs[I.Dst] = R(I.Src[0]) | B;
    break;
  case Opcode::LOP_XOR:
    Regs[I.Dst] = R(I.Src[0]) ^ B;
    break;
  case Opcode::MOV:
    Regs[I.Dst] = R(I.Src[0]);
    break;
  default:
    FAIL() << "unexpected opcode in random program";
  }
}

/// Generates one random math instruction over the sandbox registers.
Instruction randomMathInst(Rng &R) {
  auto Reg = [&R]() {
    return static_cast<uint8_t>(FirstReg + R.nextBelow(NumRegs));
  };
  switch (R.nextBelow(13)) {
  case 0:
    return makeFFMA(Reg(), Reg(), Reg(), Reg());
  case 1:
    return makeFADD(Reg(), Reg(), Reg());
  case 2:
    return makeFMUL(Reg(), Reg(), Reg());
  case 3:
    return makeIADD(Reg(), Reg(), Reg());
  case 4:
    return makeIADDImm(Reg(), Reg(),
                       static_cast<int32_t>(R.nextInRange(-4096, 4095)));
  case 5:
    return makeIMUL(Reg(), Reg(), Reg());
  case 6:
    return makeIMAD(Reg(), Reg(), Reg(), Reg());
  case 7:
    return makeISCADD(Reg(), Reg(), Reg(),
                      static_cast<int>(R.nextBelow(8)));
  case 8:
    return makeSHLImm(Reg(), Reg(),
                      static_cast<int32_t>(R.nextBelow(31)));
  case 9: {
    Instruction I = makeSHLImm(Reg(), Reg(),
                               static_cast<int32_t>(R.nextBelow(31)));
    I.Op = Opcode::SHR;
    return I;
  }
  case 10:
    return makeXORImm(Reg(), Reg(),
                      static_cast<int32_t>(R.nextBelow(1 << 20)));
  case 11: {
    Instruction I = makeXORImm(Reg(), Reg(),
                               static_cast<int32_t>(R.nextBelow(255)));
    I.Op = R.nextBelow(2) ? Opcode::LOP_AND : Opcode::LOP_OR;
    return I;
  }
  default:
    return makeMOV(Reg(), Reg());
  }
}

/// Bit equality, except that any-NaN == any-NaN: IEEE leaves NaN payload
/// propagation unspecified and the compiler may commute float operands
/// differently in the two translation units.
bool sameValue(uint32_t A, uint32_t B) {
  if (A == B)
    return true;
  auto IsNaN = [](uint32_t V) {
    return (V & 0x7f800000u) == 0x7f800000u && (V & 0x007fffffu) != 0;
  };
  return IsNaN(A) && IsNaN(B);
}

} // namespace

TEST(SimProperty, RandomProgramsMatchHostInterpreter) {
  Rng R(20260704);
  for (int Trial = 0; Trial < 25; ++Trial) {
    // Random per-lane initial values (mix of small ints and float bits).
    uint32_t Init[32][NumRegs];
    for (int Lane = 0; Lane < 32; ++Lane)
      for (int Reg = 0; Reg < NumRegs; ++Reg) {
        if (R.nextBelow(2)) {
          Init[Lane][Reg] = static_cast<uint32_t>(R.nextBelow(1 << 16));
        } else {
          float F = R.nextUnitFloat() * 4.0f;
          std::memcpy(&Init[Lane][Reg], &F, 4);
        }
      }

    GlobalMemory GM;
    uint32_t In = GM.allocate(32 * NumRegs * 4);
    uint32_t Out = GM.allocate(32 * NumRegs * 4);
    // Lane-major layout: [lane][reg].
    for (int Lane = 0; Lane < 32; ++Lane)
      for (int Reg = 0; Reg < NumRegs; ++Reg)
        GM.store32(In + 4 * (Lane * NumRegs + Reg), Init[Lane][Reg]);

    Kernel K;
    K.Name = "random";
    // R0 = tid, R1 = in base + tid*NumRegs*4, R2 = out base likewise.
    K.Code.push_back(makeS2R(0, SpecialReg::TID_X));
    K.Code.push_back(makeIMADImm(1, 0, NumRegs * 4, RegRZ));
    K.Code.push_back(makeIADDImm(2, 1, static_cast<int32_t>(Out)));
    K.Code.push_back(makeIADDImm(1, 1, static_cast<int32_t>(In)));
    for (int Reg = 0; Reg < NumRegs; ++Reg)
      K.Code.push_back(makeLD(MemWidth::B32,
                              static_cast<uint8_t>(FirstReg + Reg), 1,
                              4 * Reg));

    std::vector<Instruction> Body;
    for (int I = 0; I < 100; ++I)
      Body.push_back(randomMathInst(R));
    for (const Instruction &I : Body)
      K.Code.push_back(I);

    for (int Reg = 0; Reg < NumRegs; ++Reg)
      K.Code.push_back(makeST(MemWidth::B32, 2, 4 * Reg,
                              static_cast<uint8_t>(FirstReg + Reg)));
    K.Code.push_back(makeEXIT());
    K.recomputeRegUsage();

    LaunchConfig Config;
    Config.Dims.BlockX = 32;
    auto Result = launchKernel(gtx580(), K, Config, GM);
    ASSERT_TRUE(Result.hasValue()) << Result.message();

    // Host interpretation per lane.
    for (int Lane = 0; Lane < 32; ++Lane) {
      uint32_t Regs[64] = {};
      for (int Reg = 0; Reg < NumRegs; ++Reg)
        Regs[FirstReg + Reg] = Init[Lane][Reg];
      for (const Instruction &I : Body)
        interpret(I, Regs);
      for (int Reg = 0; Reg < NumRegs; ++Reg)
        ASSERT_TRUE(sameValue(GM.load32(Out + 4 * (Lane * NumRegs + Reg)),
                              Regs[FirstReg + Reg]))
            << "trial " << Trial << " lane " << Lane << " R"
            << FirstReg + Reg;
    }
  }
}

TEST(SimProperty, MultiRoundBarrierRotation) {
  // 8 warps rotate a token through shared memory over 16 barrier rounds;
  // the final value proves every round's release/reacquire worked.
  constexpr int Threads = 256;
  constexpr int Rounds = 16;
  GlobalMemory GM;
  uint32_t Out = GM.allocate(Threads * 4);

  Kernel K;
  K.Name = "rotate";
  // R0 = tid; R1 = tid*4 (my slot); R2 = ((tid+1)%256)*4 (next slot);
  // R3 = value.
  K.Code.push_back(makeS2R(0, SpecialReg::TID_X));
  K.Code.push_back(makeSHLImm(1, 0, 2));
  K.Code.push_back(makeIADDImm(2, 0, 1));
  K.Code.push_back(makeXORImm(3, 2, 0)); // R3 = tid+1 (copy).
  {
    Instruction And;
    And.Op = Opcode::LOP_AND;
    And.Dst = 2;
    And.Src[0] = 3;
    And.HasImm = true;
    And.Imm = Threads - 1;
    K.Code.push_back(And);
  }
  K.Code.push_back(makeSHLImm(2, 2, 2));
  K.Code.push_back(makeMOV(3, 0)); // Value starts as tid.
  for (int Round = 0; Round < Rounds; ++Round) {
    K.Code.push_back(makeSTS(MemWidth::B32, 1, 0, 3));
    K.Code.push_back(makeBAR());
    K.Code.push_back(makeLDS(MemWidth::B32, 3, 2, 0));
    K.Code.push_back(makeBAR());
  }
  K.Code.push_back(makeIADDImm(2, 1, static_cast<int32_t>(Out)));
  K.Code.push_back(makeST(MemWidth::B32, 2, 0, 3));
  K.Code.push_back(makeEXIT());
  K.recomputeRegUsage();
  K.SharedBytes = Threads * 4;

  LaunchConfig Config;
  Config.Dims.BlockX = Threads;
  auto Result = launchKernel(gtx580(), K, Config, GM);
  ASSERT_TRUE(Result.hasValue()) << Result.message();
  EXPECT_EQ(Result->Stats.BarrierWaits,
            static_cast<uint64_t>(2 * Rounds * Threads / 32));
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(GM.load32(Out + 4 * T),
              static_cast<uint32_t>((T + Rounds) % Threads))
        << "thread " << T;
}
