//===- tests/ModelTest.cpp - analytical upper-bound model tests -----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "model/UpperBound.h"

#include <gtest/gtest.h>

using namespace gpuperf;

TEST(Model, InstructionFactor) {
  // Section 4.5: FI is 1 / 0.5 / 0.25 for LDS / LDS.64 / LDS.128.
  EXPECT_DOUBLE_EQ(UpperBoundModel::instructionFactor(MemWidth::B32), 1.0);
  EXPECT_DOUBLE_EQ(UpperBoundModel::instructionFactor(MemWidth::B64), 0.5);
  EXPECT_DOUBLE_EQ(UpperBoundModel::instructionFactor(MemWidth::B128),
                   0.25);
}

TEST(Model, FfmaFractionFigure3) {
  // Figure 3's annotated points at BR = 6: 75%, 85.7%, 92.3%.
  EXPECT_NEAR(UpperBoundModel::ffmaFraction(6, MemWidth::B32), 0.75, 1e-9);
  EXPECT_NEAR(UpperBoundModel::ffmaFraction(6, MemWidth::B64), 0.857,
              0.001);
  EXPECT_NEAR(UpperBoundModel::ffmaFraction(6, MemWidth::B128), 0.923,
              0.001);
}

TEST(Model, FfmaFractionMonotonicInBR) {
  for (int BR = 1; BR < 14; ++BR)
    EXPECT_LT(UpperBoundModel::ffmaFraction(BR, MemWidth::B64),
              UpperBoundModel::ffmaFraction(BR + 1, MemWidth::B64));
}

TEST(Model, WorstCaseNoBlocking) {
  // Section 4.2: without register reuse, only 1/3 of instructions are
  // floating point (2 LDS per FFMA).
  EXPECT_NEAR(UpperBoundModel::ffmaFraction(1, MemWidth::B32), 1.0 / 3.0,
              1e-9);
}

TEST(Model, LooseBlockingLimitEquation2) {
  // "With maximum 63 registers per thread, BR <= 7."
  EXPECT_EQ(UpperBoundModel::maxBlockingFactorLoose(63), 7);
  EXPECT_EQ(UpperBoundModel::maxBlockingFactorLoose(127), 10);
}

TEST(Model, StrideValidityEquation3) {
  // The paper chooses L = 16 for TB = 256, BR = 6; L in {8, 16, 24} all
  // satisfy (sqrt(TB)*BR*L) % TB == 0.
  EXPECT_TRUE(UpperBoundModel::strideValid(256, 6, 16));
  EXPECT_TRUE(UpperBoundModel::strideValid(256, 6, 8));
  EXPECT_TRUE(UpperBoundModel::strideValid(256, 6, 24));
  EXPECT_FALSE(UpperBoundModel::strideValid(256, 6, 10));
  // Non-square thread blocks cannot satisfy the equation's premise.
  EXPECT_FALSE(UpperBoundModel::strideValid(192, 6, 16));
}

TEST(Model, RegisterBudgetSection52) {
  // The Fermi implementation's budget: 36 + 12 + 6 + 2 + 7 = 63.
  SgemmModelParams P;
  RegisterBudget B = UpperBoundModel::registerBudget(P);
  EXPECT_EQ(B.CTile, 36);
  EXPECT_EQ(B.Prefetch, 12);
  EXPECT_EQ(B.ALoad, 6);
  EXPECT_EQ(B.BLoad, 2);
  EXPECT_EQ(B.Addressing, 7);
  EXPECT_EQ(B.total(), 63);
}

TEST(Model, StrictBlockingLimitIs6) {
  // Equation 4 with prefetching: BR = 7 does not fit 63 registers, so
  // the maximum practical blocking factor is 6 (Section 4.5).
  PerfDatabase DB(gtx580());
  UpperBoundModel Model(DB);
  SgemmModelParams Base;
  EXPECT_EQ(Model.maxBlockingFactorStrict(Base), 6);
}

TEST(Model, FermiUpperBoundSection45) {
  // Paper: ~82.5% of the theoretical peak with LDS.64 on GTX580.
  PerfDatabase DB(gtx580());
  UpperBoundModel Model(DB);
  SgemmModelParams P; // Defaults are the paper's choice.
  UpperBoundReport R = Model.analyze(P);
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.BSh, 96);
  EXPECT_EQ(R.Occ.ActiveThreads, 512); // Section 4.5.
  // SM-bound, not memory-bound (Equation 9).
  EXPECT_LT(R.PSMBoundGflops, R.PMemBoundGflops);
  EXPECT_NEAR(R.FractionOfPeak, 0.825, 0.045);
}

TEST(Model, KeplerUpperBoundSection45) {
  // Paper: ~54.6% of the peak with LDS.64 on GTX680.
  PerfDatabase DB(gtx680());
  UpperBoundModel Model(DB);
  SgemmModelParams P;
  UpperBoundReport R = Model.analyze(P);
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.Occ.ActiveThreads, 1024); // 64K registers / 63.
  EXPECT_LT(R.PSMBoundGflops, R.PMemBoundGflops);
  EXPECT_NEAR(R.FractionOfPeak, 0.546, 0.06);
}

TEST(Model, MemoryBoundRoofline) {
  // Equation 6: the memory bound is bandwidth * BSh / 4; for BSh = 96 on
  // GTX580 that is ~4.6 TFLOPS, far above the SM bound.
  PerfDatabase DB(gtx580());
  UpperBoundModel Model(DB);
  UpperBoundReport R = Model.analyze(SgemmModelParams());
  EXPECT_NEAR(R.PMemBoundGflops, 192.4 * 96 / 4, 1.0);
}

TEST(Model, TinyBlockingBecomesMemoryBound) {
  // With BR = 1 (BSh = 16) the roofline flips: flops/byte = 4, so the
  // bound is 192.4 * 4 = 770 GFLOPS < any SM bound... on Fermi the SM
  // bound at BR=1 is 1/3 * peak ~ 527, still SM-bound; on Kepler the
  // memory bound bites earlier relative to its higher peak.
  PerfDatabase DB(gtx580());
  UpperBoundModel Model(DB);
  SgemmModelParams P;
  P.BR = 1;
  P.L = 16;
  UpperBoundReport R = Model.analyze(P);
  EXPECT_NEAR(R.PMemBoundGflops, 192.4 * 16 / 4, 1.0);
}

TEST(Model, InfeasibleBudgetReported) {
  PerfDatabase DB(gtx580());
  UpperBoundModel Model(DB);
  SgemmModelParams P;
  P.BR = 8; // 64 + 16 + 8 + 2 + 7 = 97 > 63.
  UpperBoundReport R = Model.analyze(P);
  EXPECT_FALSE(R.Feasible);
}

TEST(Model, BestForWidthPicksBR6) {
  PerfDatabase DB(gtx580());
  UpperBoundModel Model(DB);
  UpperBoundReport R = Model.bestForWidth(MemWidth::B64);
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.Params.BR, 6);
}

TEST(Model, WiderLoadsRaiseTheBoundOnKepler) {
  // Section 4.5: on Kepler the LDS.128 bound (57.6%) exceeds the LDS.64
  // bound (54.6%) because the FFMA percentage rises.
  PerfDatabase DB(gtx680());
  UpperBoundModel Model(DB);
  SgemmModelParams P64, P128;
  P128.LdsWidth = MemWidth::B128;
  UpperBoundReport R64 = Model.analyze(P64);
  UpperBoundReport R128 = Model.analyze(P128);
  EXPECT_GT(R128.FfmaFraction, R64.FfmaFraction);
}
