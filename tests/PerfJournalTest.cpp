//===- tests/PerfJournalTest.cpp - write-ahead journal crash safety -------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PerfDatabase write-ahead journal's durability contract, driven
/// through fault injection on the I/O layer (the file-system analog of
/// sim/FaultInjector): a measurement acknowledged to a caller survives a
/// crash at *any* byte boundary of any later journal append -- torn
/// writes, bit flips, and kills during compaction included. Recovery
/// truncates at the first corrupt frame instead of rejecting the whole
/// cache, and compaction preserves the snapshot-or-journal invariant:
/// after a simulated crash on either side of the snapshot rename, every
/// acknowledged record is still recoverable from the snapshot, the
/// journal, or both.
///
/// Crash states are reproduced by capturing the on-disk bytes at the
/// moment of interest (what SIGKILL would leave) and restoring them for
/// a fresh database -- the live object's clean-shutdown compaction never
/// runs "in" the simulated crashed process.
///
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "ubench/PerfDatabase.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

using namespace gpuperf;

namespace {

Kernel smallKernel(const MachineDesc &M, int Ratio) {
  MixBenchParams P;
  P.FfmaPerLds = Ratio;
  P.BodyInsts = 128;
  return generateMixBench(M, P);
}

MeasureConfig smallConfig() {
  MeasureConfig Cfg;
  Cfg.ThreadsPerBlock = 64;
  Cfg.BlocksPerSM = 1;
  return Cfg;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &B) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(B.data()),
            static_cast<std::streamsize>(B.size()));
}

size_t fileSize(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? static_cast<size_t>(St.st_size)
                                        : 0;
}

uint32_t readU32At(const std::vector<uint8_t> &B, size_t Pos) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(B[Pos + I]) << (8 * I);
  return V;
}

/// End offsets of every complete frame in a journal image: the header
/// (8 bytes) plus, per frame, 8 bytes of (length, crc) and the payload.
std::vector<size_t> frameEnds(const std::vector<uint8_t> &Journal) {
  std::vector<size_t> Ends;
  size_t Pos = 8;
  while (Pos + 8 <= Journal.size()) {
    size_t End = Pos + 8 + readU32At(Journal, Pos);
    if (End > Journal.size())
      break;
    Ends.push_back(End);
    Pos = End;
  }
  return Ends;
}

class PerfJournal : public ::testing::Test {
protected:
  void SetUp() override {
    Path = testing::TempDir() + "gpuperf_journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".gpdb";
    JPath = PerfDatabase::journalPath(Path);
    std::remove(Path.c_str());
    std::remove(JPath.c_str());
  }
  void TearDown() override {
    setPerfCacheSaveByteLimitForTesting(0);
    setDurableWriteCrashPointForTesting(0);
    setPerfJournalCompactionThresholdForTesting(0);
    std::remove(Path.c_str());
    std::remove(JPath.c_str());
  }

  /// Measures the ratio-{2,4,8} kernels through a fresh database and
  /// returns the journal image as captured while the database was live
  /// (i.e. before any clean-shutdown compaction) plus the three values.
  std::vector<uint8_t> buildJournal(std::vector<double> *Values = nullptr) {
    const MachineDesc &M = gtx580();
    PerfDatabase DB(M, Path);
    for (int Ratio : {2, 4, 8}) {
      double V = DB.measureKernel(smallKernel(M, Ratio), smallConfig());
      if (Values)
        Values->push_back(V);
    }
    return readFile(JPath);
  }

  std::string Path, JPath;
};

TEST_F(PerfJournal, AcknowledgedMeasurementIsDurableWithoutSave) {
  // The whole point of the journal: the instant measureKernel returns,
  // the record is on disk. A second database opening the same path --
  // the moral equivalent of a new process after SIGKILL, since the
  // first one never saved -- must serve it from the journal alone.
  const MachineDesc &M = gtx580();
  Kernel K = smallKernel(M, 4);
  PerfDatabase Live(M, Path);
  double V = Live.measureKernel(K, smallConfig());
  EXPECT_EQ(fileSize(Path), 0u) << "no snapshot may exist yet";
  EXPECT_GT(fileSize(JPath), 8u) << "the journal must hold the record";

  PerfDatabase Crashed(M, Path);
  EXPECT_EQ(Crashed.entryCount(), 1u);
  EXPECT_EQ(Crashed.measureKernel(K, smallConfig()), V);
  EXPECT_EQ(Crashed.misses(), 0u)
      << "an acknowledged measurement must never be re-run after a crash";
}

TEST_F(PerfJournal, TornWriteAtEveryByteBoundary) {
  // Crash-point harness over the append path: cut the journal at every
  // possible byte length, as a kill mid-write would, and check recovery
  // keeps exactly the fully-written frames -- never fewer (lost acks)
  // and never garbage (half a frame "recovered").
  const MachineDesc &M = gtx580();
  std::vector<double> Values;
  const std::vector<uint8_t> Full = buildJournal(&Values);
  const std::vector<size_t> Ends = frameEnds(Full);
  ASSERT_EQ(Ends.size(), 3u) << "expected one frame per measurement";

  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    std::remove(Path.c_str()); // Journal-only crash state.
    writeFile(JPath,
              std::vector<uint8_t>(Full.begin(), Full.begin() + Cut));
    size_t WantFrames = 0, WantBytes = Cut < 8 ? 0 : 8;
    for (size_t End : Ends)
      if (End <= Cut) {
        ++WantFrames;
        WantBytes = End;
      }

    PerfDatabase DB(M, Path);
    EXPECT_EQ(DB.entryCount(), WantFrames) << "cut at byte " << Cut;
    // Recovery must also physically truncate the torn tail so later
    // appends extend a clean prefix instead of burying valid frames
    // behind garbage.
    EXPECT_EQ(fileSize(JPath), WantBytes) << "cut at byte " << Cut;
  }

  // Full image: every acknowledged value is served without re-measuring.
  std::remove(Path.c_str());
  writeFile(JPath, Full);
  PerfDatabase DB(M, Path);
  EXPECT_EQ(DB.entryCount(), 3u);
  int I = 0;
  for (int Ratio : {2, 4, 8})
    EXPECT_EQ(DB.measureKernel(smallKernel(M, Ratio), smallConfig()),
              Values[I++]);
  EXPECT_EQ(DB.misses(), 0u);
}

TEST_F(PerfJournal, BitFlipAtEveryByteOffset) {
  // A flipped bit anywhere in a frame (length, CRC, or payload) must
  // invalidate that frame and everything after it -- the CRC scan stops
  // at the first corruption -- while every frame before it survives.
  const MachineDesc &M = gtx580();
  const std::vector<uint8_t> Full = buildJournal();
  const std::vector<size_t> Ends = frameEnds(Full);
  ASSERT_EQ(Ends.size(), 3u);

  for (size_t Offset = 0; Offset < Full.size(); ++Offset) {
    std::vector<uint8_t> Flipped = Full;
    Flipped[Offset] ^= 0x10;
    std::remove(Path.c_str());
    writeFile(JPath, Flipped);
    // Frames wholly before the flipped byte survive; the frame holding
    // it (or the header, for offsets 0..7) and all later frames do not.
    size_t WantFrames = 0;
    for (size_t End : Ends)
      WantFrames += Offset >= End ? 1 : 0;

    PerfDatabase DB(M, Path);
    EXPECT_EQ(DB.entryCount(), WantFrames) << "flip at byte " << Offset;
  }
}

TEST_F(PerfJournal, CorruptHeaderRecoversToEmptyAndRestarts) {
  writeFile(JPath, {'J', 'U', 'N', 'K', 1, 2, 3, 4, 5, 6});
  const MachineDesc &M = gtx580();
  Kernel K = smallKernel(M, 4);
  double V;
  std::vector<uint8_t> JournalImage;
  {
    PerfDatabase DB(M, Path);
    EXPECT_EQ(DB.entryCount(), 0u) << "garbage journal recovers nothing";
    EXPECT_EQ(fileSize(JPath), 0u)
        << "an unusable journal is truncated, not left to block appends";
    V = DB.measureKernel(K, smallConfig());
    JournalImage = readFile(JPath);
  }
  // The append after recovery rebuilt a valid journal from scratch.
  std::remove(Path.c_str());
  writeFile(JPath, JournalImage);
  PerfDatabase DB(M, Path);
  EXPECT_EQ(DB.entryCount(), 1u);
  EXPECT_EQ(DB.measureKernel(K, smallConfig()), V);
  EXPECT_EQ(DB.misses(), 0u);
}

TEST_F(PerfJournal, CompactionFoldsJournalIntoSnapshot) {
  // With a 1-byte threshold every append compacts: the snapshot absorbs
  // each record immediately and the journal never accumulates.
  setPerfJournalCompactionThresholdForTesting(1);
  const MachineDesc &M = gtx580();
  {
    PerfDatabase DB(M, Path);
    for (int Ratio : {2, 4, 8})
      DB.measureKernel(smallKernel(M, Ratio), smallConfig());
    EXPECT_EQ(fileSize(JPath), 0u)
        << "past-threshold appends must compact and empty the journal";
    EXPECT_GT(fileSize(Path), 12u) << "the snapshot holds the records";
  }
  setPerfJournalCompactionThresholdForTesting(0);
  PerfDatabase DB(M, Path);
  EXPECT_EQ(DB.entryCount(), 3u);
}

TEST_F(PerfJournal, KillDuringCompactionLosesNothing) {
  // The snapshot-or-journal invariant, probed at both crash points of
  // the durable snapshot write: (1) after the temp file is written but
  // before the rename -- the old snapshot still stands; (2) after the
  // rename but before the directory sync -- the new snapshot stands but
  // the writer believes the save failed. In both cases the journal must
  // be left untruncated, so every acknowledged record remains
  // recoverable (replaying the journal over either snapshot version is
  // idempotent).
  const MachineDesc &M = gtx580();
  std::vector<double> Values;
  {
    // Seed a real snapshot with one entry so crash point 1 has an "old"
    // snapshot to preserve.
    PerfDatabase DB(M, Path);
    Values.push_back(DB.measureKernel(smallKernel(M, 2), smallConfig()));
  }

  for (int CrashPoint : {1, 2}) {
    SCOPED_TRACE("crash point " + std::to_string(CrashPoint));
    std::vector<uint8_t> SnapImage, JournalImage;
    {
      PerfDatabase DB(M, Path);
      // The next append exceeds the 1-byte threshold and triggers
      // compaction, whose snapshot write dies at the injected point.
      setPerfJournalCompactionThresholdForTesting(1);
      setDurableWriteCrashPointForTesting(CrashPoint);
      Values.push_back(
          DB.measureKernel(smallKernel(M, 10 + CrashPoint), smallConfig()));
      setDurableWriteCrashPointForTesting(0);
      setPerfJournalCompactionThresholdForTesting(0);
      EXPECT_GT(fileSize(JPath), 8u)
          << "a failed compaction must not truncate the journal";
      // Capture the crash-moment disk state before the live object's
      // clean shutdown tidies it up.
      SnapImage = readFile(Path);
      JournalImage = readFile(JPath);
    }
    writeFile(Path, SnapImage);
    writeFile(JPath, JournalImage);

    // Recovery: every value acknowledged so far is present, none is
    // re-measured.
    PerfDatabase DB(M, Path);
    EXPECT_EQ(DB.entryCount(), Values.size());
    EXPECT_EQ(DB.measureKernel(smallKernel(M, 2), smallConfig()),
              Values[0]);
    EXPECT_EQ(
        DB.measureKernel(smallKernel(M, 10 + CrashPoint), smallConfig()),
        Values.back());
    EXPECT_EQ(DB.misses(), 0u);
  }
}

TEST_F(PerfJournal, FailedSnapshotWriteLeavesSnapshotBitIdentical) {
  // Disk-full (byte-limited) snapshot writes leave the previous
  // snapshot bytes untouched and remove their temporary, at every
  // possible torn-write length.
  const MachineDesc &M = gtx580();
  {
    PerfDatabase DB(M, Path);
    DB.measureKernel(smallKernel(M, 2), smallConfig());
  } // Clean shutdown: snapshot written, journal empty.
  const std::vector<uint8_t> Before = readFile(Path);
  ASSERT_GE(Before.size(), 12u);

  for (size_t Limit = 1; Limit < Before.size(); ++Limit) {
    setPerfCacheSaveByteLimitForTesting(Limit);
    PerfDatabase DB(M, Path);
    EXPECT_TRUE(DB.save(Path).failed()) << "limit " << Limit;
    EXPECT_EQ(readFile(Path), Before)
        << "limit " << Limit << ": failed save must not touch the snapshot";
    setPerfCacheSaveByteLimitForTesting(0);
  }
  std::ifstream Tmp(Path + ".tmp." + std::to_string(getpid()));
  EXPECT_FALSE(Tmp.good()) << "failed saves must remove their temporaries";
}

} // namespace
