//===- tests/ProfileTest.cpp - per-instruction profiler acceptance --------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Acceptance tests for the per-instruction profiler and the perfdiff
/// regression gate: the per-PC profile is bit-identical across --jobs
/// on both machines; per-cause stall slots summed over PCs reproduce
/// the launch's StallBreakdown exactly; the annotated report shows the
/// list scheduler shrinking the main loop's bank_conflict +
/// dispatch_limit share; and perfdiff exits non-zero exactly when a
/// record regressed beyond tolerance.
///
//===----------------------------------------------------------------------===//

#include "analysis/HotspotReport.h"
#include "kernelgen/Baselines.h"
#include "kernelgen/Scheduler.h"
#include "kernelgen/SgemmGenerator.h"
#include "sim/Launcher.h"
#include "support/Format.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include <sys/wait.h>

using namespace gpuperf;

namespace {

/// Shape and buffers of the small tuned-NN problem used throughout
/// (the paper's BR=6 register-blocked SGEMM).
struct NNProblem {
  Kernel K;
  LaunchConfig Launch;
  size_t MemBytes = 0;
};

constexpr int ProblemM = 192, ProblemN = 192, ProblemK = 64;

/// Builds the BR=6 tuned NN kernel and its launch shape on \p M.
NNProblem makeTunedNN(const MachineDesc &M) {
  NNProblem P;
  SgemmKernelConfig Cfg =
      baselineConfig(SgemmImpl::AsmTuned, M, GemmVariant::NN, ProblemM,
                     ProblemN, ProblemK);
  auto K = generateSgemmKernel(M, Cfg);
  EXPECT_TRUE(K.hasValue()) << K.message();
  P.K = K.take();

  auto Round256 = [](size_t N) { return (N + 255) & ~size_t(255); };
  size_t ABytes = size_t(ProblemM) * ProblemK * 4;
  size_t BBytes = size_t(ProblemK) * ProblemN * 4;
  size_t CBytes = size_t(ProblemM) * ProblemN * 4;
  uint32_t AAddr = 256;
  uint32_t BAddr = AAddr + static_cast<uint32_t>(Round256(ABytes));
  uint32_t CAddr = BAddr + static_cast<uint32_t>(Round256(BBytes));
  P.MemBytes = Round256(ABytes) + Round256(BBytes) + CBytes + 512;

  SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
  P.Launch.Dims.GridX = Shape.GridX;
  P.Launch.Dims.GridY = Shape.GridY;
  P.Launch.Dims.BlockX = Shape.BlockX;
  P.Launch.Params = {AAddr, BAddr, CAddr, 0x3f800000u /*alpha=1*/,
                     0u /*beta=0*/};
  P.Launch.Mode = SimMode::Full;
  return P;
}

/// Launches the problem with profiling on at \p Jobs; returns the
/// profile (and the run result through \p ResultOut when non-null).
KernelProfile runProfiled(const MachineDesc &M, const Kernel &K,
                          LaunchConfig Launch, size_t MemBytes,
                          int Jobs, LaunchResult *ResultOut = nullptr) {
  KernelProfile Profile;
  Launch.Jobs = Jobs;
  Launch.Profile = &Profile;
  GlobalMemory GM(MemBytes);
  auto R = launchKernel(M, K, Launch, GM);
  EXPECT_TRUE(R.hasValue()) << R.message();
  if (ResultOut && R.hasValue())
    *ResultOut = *R;
  return Profile;
}

KernelProfile runProfiledNN(const MachineDesc &M, int Jobs,
                            LaunchResult *ResultOut = nullptr) {
  NNProblem P = makeTunedNN(M);
  return runProfiled(M, P.K, P.Launch, P.MemBytes, Jobs, ResultOut);
}

//===----------------------------------------------------------------------===//
// (a) The per-PC profile is bit-identical for every Jobs value.
//===----------------------------------------------------------------------===//

TEST(Profile, BitIdenticalAcrossJobsKepler) {
  const MachineDesc &M = gtx680();
  KernelProfile J1 = runProfiledNN(M, 1);
  KernelProfile J4 = runProfiledNN(M, 4);
  ASSERT_EQ(J1.codeSize(), J4.codeSize());
  for (size_t PC = 0; PC < J1.codeSize(); ++PC)
    ASSERT_TRUE(J1.at(PC) == J4.at(PC)) << "PC " << PC;
  EXPECT_TRUE(J1 == J4);
}

TEST(Profile, BitIdenticalAcrossJobsFermi) {
  const MachineDesc &M = gtx580();
  KernelProfile J1 = runProfiledNN(M, 1);
  KernelProfile J4 = runProfiledNN(M, 4);
  EXPECT_TRUE(J1 == J4);
}

//===----------------------------------------------------------------------===//
// (b) Summing per-cause stall slots over every PC (plus the NoPC
// bucket) reproduces the launch's StallBreakdown exactly -- no slot is
// lost or double-counted by the attribution.
//===----------------------------------------------------------------------===//

TEST(Profile, PerPCStallsSumToBreakdown) {
  const MachineDesc &M = gtx680();
  LaunchResult R;
  KernelProfile P = runProfiledNN(M, 0, &R);

  StallBreakdown FromPCs = P.breakdown();
  const StallBreakdown &FromSim = R.Stats.Breakdown;
  for (size_t U = 0; U < NumSlotUses; ++U)
    EXPECT_EQ(FromPCs.Slots[U], FromSim.Slots[U])
        << slotUseName(static_cast<SlotUse>(U));
  EXPECT_EQ(FromPCs.total(), FromSim.total());

  // Kepler dual-issue pairs share one slot: issued slots must equal
  // warp instructions minus pair seconds, and the kernel must actually
  // dual-issue for the identity to bite.
  EXPECT_GT(P.totalDualIssues(), 0u);
  EXPECT_EQ(FromPCs[SlotUse::Issued],
            P.totalIssues() - P.totalDualIssues());
}

TEST(Profile, BreakdownIdentityHoldsOnFermi) {
  const MachineDesc &M = gtx580();
  LaunchResult R;
  KernelProfile P = runProfiledNN(M, 0, &R);
  StallBreakdown FromPCs = P.breakdown();
  for (size_t U = 0; U < NumSlotUses; ++U)
    EXPECT_EQ(FromPCs.Slots[U], R.Stats.Breakdown.Slots[U])
        << slotUseName(static_cast<SlotUse>(U));
  // Fermi never dual-issues: every warp instruction owns a slot.
  EXPECT_EQ(P.totalDualIssues(), 0u);
  EXPECT_EQ(FromPCs[SlotUse::Issued], P.totalIssues());
}

//===----------------------------------------------------------------------===//
// Hot-region detection and the annotated report.
//===----------------------------------------------------------------------===//

/// The region carrying the most issue slots (the main loop).
const HotRegion *mainRegion(const std::vector<HotRegion> &Regions) {
  const HotRegion *Best = nullptr;
  for (const HotRegion &R : Regions)
    if (!Best || R.totalSlots() > Best->totalSlots())
      Best = &R;
  return Best;
}

TEST(Profile, FindsMainLoopRegion) {
  const MachineDesc &M = gtx680();
  NNProblem P = makeTunedNN(M);
  KernelProfile Prof =
      runProfiled(M, P.K, P.Launch, P.MemBytes, 0);
  std::vector<HotRegion> Regions = findHotRegions(P.K, Prof);
  ASSERT_FALSE(Regions.empty());
  const HotRegion *Main = mainRegion(Regions);
  ASSERT_NE(Main, nullptr);
  // The K-loop is the single hottest region of this kernel (at this
  // small problem size the prologue/epilogue still carry real weight),
  // and it is FFMA-dense.
  StallBreakdown B = Prof.breakdown();
  EXPECT_GT(Main->totalSlots(), B.total() / 5);
  for (const HotRegion &R : Regions)
    EXPECT_LE(R.totalSlots(), Main->totalSlots());
  uint64_t Ffma = 0;
  for (int PC = Main->Begin; PC <= Main->End; ++PC)
    if (P.K.Code[PC].Op == Opcode::FFMA)
      ++Ffma;
  EXPECT_GT(Ffma, 0u);
}

TEST(Profile, AnnotatedReportRendersEveryPC) {
  const MachineDesc &M = gtx680();
  NNProblem P = makeTunedNN(M);
  KernelProfile Prof =
      runProfiled(M, P.K, P.Launch, P.MemBytes, 0);
  std::string Report = renderAnnotatedReport(M, P.K, Prof);
  EXPECT_NE(Report.find("issue slots:"), std::string::npos);
  EXPECT_NE(Report.find("loop "), std::string::npos);
  EXPECT_NE(Report.find("achieved/bound FFMA density:"),
            std::string::npos);
  // One row per static instruction.
  size_t Rows = 0;
  for (size_t PC = 0; PC < P.K.Code.size(); ++PC)
    if (Report.find(formatString("  %5zu ", PC)) != std::string::npos)
      ++Rows;
  EXPECT_EQ(Rows, P.K.Code.size());
}

//===----------------------------------------------------------------------===//
// (d) The list scheduler shrinks the main loop's bank_conflict +
// dispatch_limit share relative to the drip schedule.
//===----------------------------------------------------------------------===//

TEST(Profile, ListScheduleShrinksMainLoopConflictShare) {
  const MachineDesc &M = gtx680();
  NNProblem Drip = makeTunedNN(M);

  NNProblem List = makeTunedNN(M);
  rotateRegisterBanks(M, List.K);
  scheduleKernel(M, List.K);

  KernelProfile DripProf =
      runProfiled(M, Drip.K, Drip.Launch, Drip.MemBytes, 0);
  KernelProfile ListProf =
      runProfiled(M, List.K, List.Launch, List.MemBytes, 0);

  auto MainConflictShare = [](const Kernel &K, const KernelProfile &P) {
    std::vector<HotRegion> Regions = findHotRegions(K, P);
    const HotRegion *Main = mainRegion(Regions);
    EXPECT_NE(Main, nullptr);
    return Main->slotShare(SlotUse::RegBankConflict) +
           Main->slotShare(SlotUse::DispatchLimit);
  };
  double DripShare = MainConflictShare(Drip.K, DripProf);
  double ListShare = MainConflictShare(List.K, ListProf);
  EXPECT_LT(ListShare, DripShare);
}

//===----------------------------------------------------------------------===//
// The JSON record: structurally valid, versioned, and carrying the
// same totals as the in-memory profile.
//===----------------------------------------------------------------------===//

TEST(Profile, RecordJsonIsValidAndVersioned) {
  const MachineDesc &M = gtx680();
  NNProblem P = makeTunedNN(M);
  LaunchResult R;
  KernelProfile Prof =
      runProfiled(M, P.K, P.Launch, P.MemBytes, 0, &R);
  ProfileRecordInfo Info;
  Info.Schedule = "drip";
  Info.GridX = P.Launch.Dims.GridX;
  Info.GridY = P.Launch.Dims.GridY;
  Info.BlockX = P.Launch.Dims.BlockX;
  Info.BlockY = P.Launch.Dims.BlockY;
  Info.TotalCycles = R.TotalCycles;
  std::string Json = profileRecordJson(M, P.K, Prof, Info);

  auto V = jsonParse(Json);
  ASSERT_TRUE(V.hasValue()) << V.message();
  const JsonValue *Schema = V->find("schema_version");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->Number, MetricsSchemaVersion);
  const JsonValue *Record = V->find("record");
  ASSERT_NE(Record, nullptr);
  EXPECT_EQ(Record->Str, "profile");
  const JsonValue *Machine = V->find("machine");
  ASSERT_NE(Machine, nullptr);
  EXPECT_EQ(Machine->Str, M.Name);
  const JsonValue *Pcs = V->find("pcs");
  ASSERT_NE(Pcs, nullptr);
  ASSERT_TRUE(Pcs->isArray());
  EXPECT_EQ(Pcs->Items.size(), P.K.Code.size());
  const JsonValue *Totals = V->find("totals");
  ASSERT_NE(Totals, nullptr);
  const JsonValue *WarpInsts = Totals->find("warp_insts");
  ASSERT_NE(WarpInsts, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(WarpInsts->Number),
            Prof.totalIssues());
  const JsonValue *Regions = V->find("regions");
  ASSERT_NE(Regions, nullptr);
  EXPECT_FALSE(Regions->Items.empty());
}

//===----------------------------------------------------------------------===//
// (c) perfdiff: exit 0 on identical records, non-zero on an injected
// over-tolerance cycle regression, 2 on schema/machine refusals.
//===----------------------------------------------------------------------===//

#ifdef GPUPERF_PERFDIFF_PATH

int runCommand(const std::string &Cmd, std::string *Out) {
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  Out->clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out->append(Buf, N);
  int Raw = pclose(P);
  return Raw < 0 ? -1 : WEXITSTATUS(Raw);
}

class PerfDiff : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir();
    Baseline = Dir + "gpuperf_perfdiff_base.json";
    writeRecord(Baseline, 1, "GTX680", 1000.0);
  }

  void TearDown() override {
    std::remove(Baseline.c_str());
    for (const std::string &P : Extra)
      std::remove(P.c_str());
  }

  /// Writes a minimal versioned record with the given cycle count.
  void writeRecord(const std::string &Path, int Schema,
                   const std::string &Machine, double Cycles) {
    JsonWriter W;
    W.beginObject();
    W.kv("schema_version", Schema);
    W.kv("record", "profile");
    W.kv("machine", Machine);
    W.key("cycles");
    W.value(Cycles, 1);
    W.kv("jobs", 4); // Ignored key: may differ freely.
    W.endObject();
    std::ofstream(Path) << W.str();
  }

  std::string path(const std::string &Name) {
    std::string P = Dir + Name;
    Extra.push_back(P);
    return P;
  }

  std::string diff(const std::string &Current,
                   const std::string &Flags, int *RC) {
    std::string Out;
    *RC = runCommand(formatString("%s %s %s %s", GPUPERF_PERFDIFF_PATH,
                                  Flags.c_str(), Baseline.c_str(),
                                  Current.c_str()),
                     &Out);
    return Out;
  }

  std::string Dir, Baseline;
  std::vector<std::string> Extra;
};

TEST_F(PerfDiff, IdenticalRecordsExitZero) {
  std::string Same = path("gpuperf_perfdiff_same.json");
  writeRecord(Same, 1, "GTX680", 1000.0);
  int RC = -1;
  std::string Out = diff(Same, "", &RC);
  EXPECT_EQ(RC, 0) << Out;
}

TEST_F(PerfDiff, IgnoredKeysMayDiffer) {
  // Same cycles, different jobs value: still identical.
  std::string Same = path("gpuperf_perfdiff_jobs.json");
  JsonWriter W;
  W.beginObject();
  W.kv("schema_version", 1);
  W.kv("record", "profile");
  W.kv("machine", "GTX680");
  W.key("cycles");
  W.value(1000.0, 1);
  W.kv("jobs", 1);
  W.endObject();
  std::ofstream(Same) << W.str();
  int RC = -1;
  std::string Out = diff(Same, "", &RC);
  EXPECT_EQ(RC, 0) << Out;
}

TEST_F(PerfDiff, CycleRegressionBeyondToleranceExitsOne) {
  std::string Worse = path("gpuperf_perfdiff_worse.json");
  writeRecord(Worse, 1, "GTX680", 1100.0); // +10%
  int RC = -1;
  std::string Out = diff(Worse, "--tolerance cycles=0.05", &RC);
  EXPECT_EQ(RC, 1) << Out;
  EXPECT_NE(Out.find("cycles"), std::string::npos);
}

TEST_F(PerfDiff, RegressionWithinToleranceExitsZero) {
  std::string Worse = path("gpuperf_perfdiff_near.json");
  writeRecord(Worse, 1, "GTX680", 1030.0); // +3%
  int RC = -1;
  std::string Out = diff(Worse, "--tolerance cycles=0.05", &RC);
  EXPECT_EQ(RC, 0) << Out;
}

TEST_F(PerfDiff, SchemaMismatchIsRefusedExitTwo) {
  std::string Other = path("gpuperf_perfdiff_schema.json");
  writeRecord(Other, 2, "GTX680", 1000.0);
  int RC = -1;
  std::string Out = diff(Other, "", &RC);
  EXPECT_EQ(RC, 2) << Out;
  EXPECT_NE(Out.find("schema_version"), std::string::npos);
}

TEST_F(PerfDiff, MachineMismatchIsRefusedExitTwo) {
  std::string Other = path("gpuperf_perfdiff_machine.json");
  writeRecord(Other, 1, "GTX580", 1000.0);
  int RC = -1;
  std::string Out = diff(Other, "", &RC);
  EXPECT_EQ(RC, 2) << Out;
  EXPECT_NE(Out.find("machine"), std::string::npos);
}

TEST_F(PerfDiff, MalformedToleranceExitsTwo) {
  int RC = -1;
  std::string Out = diff(Baseline, "--tolerance cycles", &RC);
  EXPECT_EQ(RC, 2) << Out;
}

#endif // GPUPERF_PERFDIFF_PATH

} // namespace
