//===- tests/AsmToolTest.cpp - assembler/disassembler unit tests ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "asmtool/Assembler.h"
#include "asmtool/Disassembler.h"
#include "isa/Encoding.h"

#include <gtest/gtest.h>

using namespace gpuperf;

namespace {

Module mustAssemble(const std::string &Source) {
  auto M = assembleText(Source);
  if (!M.hasValue()) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return M.take();
}

std::string assembleError(const std::string &Source) {
  auto M = assembleText(Source);
  EXPECT_FALSE(M.hasValue()) << "expected assembly to fail";
  return M.hasValue() ? "" : M.message();
}

} // namespace

TEST(Assembler, MinimalKernel) {
  Module M = mustAssemble(".arch GTX580\n"
                          ".kernel k\n"
                          "  EXIT\n"
                          ".end\n");
  EXPECT_EQ(M.Arch, GpuGeneration::Fermi);
  ASSERT_EQ(M.Kernels.size(), 1u);
  ASSERT_EQ(M.Kernels[0].Code.size(), 1u);
  EXPECT_EQ(M.Kernels[0].Code[0].Op, Opcode::EXIT);
}

TEST(Assembler, CommentsAndBlankLines) {
  Module M = mustAssemble("// leading comment\n"
                          ".arch GTX580\n\n"
                          ".kernel k  // inline comment\n"
                          "  NOP # hash comment\n"
                          "  EXIT\n"
                          ".end\n");
  EXPECT_EQ(M.Kernels[0].Code.size(), 2u);
}

TEST(Assembler, AllOperandForms) {
  Module M = mustAssemble(
      ".arch GTX580\n"
      ".kernel k\n"
      ".shared 1024\n"
      "  S2R R0, SR_TID.X\n"
      "  S2R R1, SR_CTAID.Y\n"
      "  MOV32I R2, 0xdeadbeef\n"
      "  LDC R3, c[0x10]\n"
      "  MOV R4, R2\n"
      "  FFMA R5, R4, R3, R5\n"
      "  FADD R6, R5, RZ\n"
      "  IADD R7, R7, -16\n"
      "  IMAD R8, R0, 48, R7\n"
      "  ISCADD R9, R0, R8, 2\n"
      "  SHL R10, R0, 4\n"
      "  LOP.XOR R11, R11, 0x1000\n"
      "  LDS.64 R12, [R9+8]\n"
      "  STS [R9], R12\n"
      "  LD.128 R16, [R2+16]\n"
      "  ST [R2], R16\n"
      "  ISETP.LT P0, R7, RZ\n"
      "  @!P0 BRA done\n"
      "  BAR.SYNC\n"
      "done:\n"
      "  EXIT\n"
      ".end\n");
  const Kernel &K = M.Kernels[0];
  ASSERT_EQ(K.Code.size(), 20u);
  EXPECT_EQ(K.SharedBytes, 1024);
  // @!P0 BRA done: offset from instruction 17 to 19 is +1.
  const Instruction &Bra = K.Code[17];
  EXPECT_EQ(Bra.Op, Opcode::BRA);
  EXPECT_EQ(Bra.Imm, 1);
  EXPECT_TRUE(Bra.GuardNeg);
  EXPECT_EQ(Bra.GuardPred, 0);
}

TEST(Assembler, BackwardBranch) {
  Module M = mustAssemble(".arch GTX580\n"
                          ".kernel k\n"
                          "loop:\n"
                          "  IADD R0, R0, -1\n"
                          "  ISETP.NE P0, R0, RZ\n"
                          "  @P0 BRA loop\n"
                          "  EXIT\n"
                          ".end\n");
  // From instruction 2 back to instruction 0: offset -3.
  EXPECT_EQ(M.Kernels[0].Code[2].Imm, -3);
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  Module M = mustAssemble(".arch GTX580\n"
                          ".kernel k\n"
                          "top: IADD R0, R0, 1\n"
                          "  BRA top\n"
                          ".end\n");
  EXPECT_EQ(M.Kernels[0].Code[1].Imm, -2);
}

TEST(Assembler, RegUsageRecomputed) {
  Module M = mustAssemble(".arch GTX580\n"
                          ".kernel k\n"
                          "  FFMA R40, R1, R2, R40\n"
                          "  EXIT\n"
                          ".end\n");
  EXPECT_EQ(M.Kernels[0].RegsPerThread, 41);
}

TEST(Assembler, DeclaredRegsOverride) {
  Module M = mustAssemble(".arch GTX580\n"
                          ".kernel k\n"
                          ".regs 63\n"
                          "  MOV R0, R1\n"
                          "  EXIT\n"
                          ".end\n");
  EXPECT_EQ(M.Kernels[0].RegsPerThread, 63);
}

TEST(Assembler, MultipleKernels) {
  Module M = mustAssemble(".arch GTX680\n"
                          ".kernel a\n  EXIT\n.end\n"
                          ".kernel b\n  NOP\n  EXIT\n.end\n");
  EXPECT_EQ(M.Kernels.size(), 2u);
  EXPECT_NE(M.findKernel("a"), nullptr);
  EXPECT_NE(M.findKernel("b"), nullptr);
}

TEST(Assembler, KeplerAnnotations) {
  Module M = mustAssemble(".arch GTX680\n"
                          ".kernel k\n"
                          ".notation default\n"
                          "  FFMA R0, R1, R4, R5 {s:2,y,d}\n"
                          "  EXIT\n"
                          ".end\n");
  const Kernel &K = M.Kernels[0];
  ASSERT_TRUE(K.hasNotations());
  EXPECT_EQ(K.Notations[0].Fields[0].StallCycles, 2);
  EXPECT_TRUE(K.Notations[0].Fields[0].Yield);
  EXPECT_TRUE(K.Notations[0].Fields[0].DualIssue);
  EXPECT_EQ(K.Notations[0].Fields[1].StallCycles, 0);
}

TEST(Assembler, AnnotationImpliesNotations) {
  Module M = mustAssemble(".arch GTX680\n"
                          ".kernel k\n"
                          "  FFMA R0, R1, R4, R5 {s:1}\n"
                          "  EXIT\n"
                          ".end\n");
  EXPECT_TRUE(M.Kernels[0].hasNotations());
}

// --- Error diagnostics -----------------------------------------------------

TEST(AssemblerErrors, MissingArch) {
  std::string E = assembleError(".kernel k\n  EXIT\n.end\n");
  EXPECT_NE(E.find("missing .arch"), std::string::npos);
}

TEST(AssemblerErrors, UnknownMnemonic) {
  std::string E = assembleError(".arch GTX580\n.kernel k\n  FROB R0\n");
  EXPECT_NE(E.find("line 3"), std::string::npos);
  EXPECT_NE(E.find("FROB"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedLabel) {
  std::string E =
      assembleError(".arch GTX580\n.kernel k\n  BRA nowhere\n.end\n");
  EXPECT_NE(E.find("undefined label 'nowhere'"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  std::string E = assembleError(
      ".arch GTX580\n.kernel k\nx:\n  NOP\nx:\n  EXIT\n.end\n");
  EXPECT_NE(E.find("redefinition"), std::string::npos);
}

TEST(AssemblerErrors, RegisterOutOfRange) {
  // R63 does not exist as a GPR name (RZ is the only alias).
  std::string E =
      assembleError(".arch GTX580\n.kernel k\n  MOV R63, R0\n.end\n");
  EXPECT_NE(E.find("line 3"), std::string::npos);
}

TEST(AssemblerErrors, MisalignedWideRegister) {
  std::string E = assembleError(
      ".arch GTX580\n.kernel k\n.shared 64\n  LDS.64 R3, [R0]\n.end\n");
  EXPECT_NE(E.find("aligned"), std::string::npos);
}

TEST(AssemblerErrors, MisalignedWideOffset) {
  std::string E = assembleError(
      ".arch GTX580\n.kernel k\n.shared 64\n  LDS.128 R4, [R0+8]\n.end\n");
  EXPECT_NE(E.find("aligned"), std::string::npos);
}

TEST(AssemblerErrors, AnnotationOnFermi) {
  std::string E = assembleError(
      ".arch GTX580\n.kernel k\n  FFMA R0, R1, R2, R3 {s:1}\n.end\n");
  EXPECT_NE(E.find("Kepler"), std::string::npos);
}

TEST(AssemblerErrors, ImmediateTooLarge) {
  std::string E = assembleError(
      ".arch GTX580\n.kernel k\n  IADD R0, R0, 0x1000000\n.end\n");
  EXPECT_NE(E.find("24-bit"), std::string::npos);
}

TEST(AssemblerErrors, ImmediateInWrongSlot) {
  std::string E = assembleError(
      ".arch GTX580\n.kernel k\n  FFMA R0, R1, 3, R2\n.end\n");
  EXPECT_NE(E.find("immediate not allowed"), std::string::npos);
}

TEST(AssemblerErrors, DeclaredRegsTooSmall) {
  std::string E = assembleError(".arch GTX580\n.kernel k\n.regs 4\n"
                                "  MOV R10, R1\n  EXIT\n.end\n");
  EXPECT_NE(E.find("declares"), std::string::npos);
}

TEST(AssemblerErrors, PTNotWritable) {
  std::string E = assembleError(
      ".arch GTX580\n.kernel k\n  ISETP.EQ PT, R0, R1\n.end\n");
  EXPECT_NE(E.find("not a valid ISETP destination"), std::string::npos);
}

// --- Disassembler round trips -------------------------------------------------

namespace {

bool modulesEqual(const Module &A, const Module &B) {
  if (A.Arch != B.Arch || A.Kernels.size() != B.Kernels.size())
    return false;
  for (size_t KI = 0; KI < A.Kernels.size(); ++KI) {
    const Kernel &KA = A.Kernels[KI];
    const Kernel &KB = B.Kernels[KI];
    if (KA.Name != KB.Name || KA.Code.size() != KB.Code.size() ||
        KA.SharedBytes != KB.SharedBytes ||
        KA.RegsPerThread != KB.RegsPerThread)
      return false;
    for (size_t I = 0; I < KA.Code.size(); ++I)
      if (encodeInstruction(KA.Code[I]) != encodeInstruction(KB.Code[I]))
        return false;
    if (KA.Notations.size() != KB.Notations.size())
      return false;
    for (size_t I = 0; I < KA.Notations.size(); ++I)
      if (!(KA.Notations[I] == KB.Notations[I]))
        return false;
  }
  return true;
}

} // namespace

TEST(Disassembler, RoundTripFermi) {
  Module M = mustAssemble(".arch GTX580\n"
                          ".kernel k\n"
                          ".shared 512\n"
                          "  S2R R0, SR_TID.X\n"
                          "  MOV32I R1, 0x40\n"
                          "loop:\n"
                          "  LDS.64 R2, [R0+8]\n"
                          "  FFMA R4, R2, R3, R4\n"
                          "  IADD R1, R1, -1\n"
                          "  ISETP.NE P0, R1, RZ\n"
                          "  @P0 BRA loop\n"
                          "  ST [R5], R4\n"
                          "  EXIT\n"
                          ".end\n");
  std::string Text = disassembleModule(M);
  auto Back = assembleText(Text);
  ASSERT_TRUE(Back.hasValue()) << Back.message() << "\n" << Text;
  EXPECT_TRUE(modulesEqual(M, *Back)) << Text;
}

TEST(Disassembler, RoundTripKeplerWithNotations) {
  Module M = mustAssemble(".arch GTX680\n"
                          ".kernel k\n"
                          ".notation default\n"
                          "  FFMA R0, R1, R4, R5 {s:3,d}\n"
                          "  FADD R2, R1, R4 {y}\n"
                          "  EXIT\n"
                          ".end\n");
  std::string Text = disassembleModule(M);
  auto Back = assembleText(Text);
  ASSERT_TRUE(Back.hasValue()) << Back.message() << "\n" << Text;
  EXPECT_TRUE(modulesEqual(M, *Back)) << Text;
}

TEST(Disassembler, BranchTargetsBecomeLabels) {
  Module M = mustAssemble(".arch GTX580\n.kernel k\n"
                          "top:\n  IADD R0, R0, 1\n  BRA top\n.end\n");
  std::string Text = disassembleKernel(M.Kernels[0]);
  EXPECT_NE(Text.find("L0:"), std::string::npos);
  EXPECT_NE(Text.find("BRA L0"), std::string::npos);
}

TEST(Disassembler, SerializedRoundTrip) {
  // Full pipeline: text -> module -> binary -> module -> text -> module.
  Module M = mustAssemble(".arch GTX680\n"
                          ".kernel k\n"
                          ".notation default\n"
                          "  MOV32I R0, 0x3f800000\n"
                          "  FFMA R1, R0, R0, R1 {s:1}\n"
                          "  EXIT\n"
                          ".end\n");
  auto FromBinary = Module::deserialize(M.serialize());
  ASSERT_TRUE(FromBinary.hasValue()) << FromBinary.message();
  auto Back = assembleText(disassembleModule(*FromBinary));
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_TRUE(modulesEqual(M, *Back));
}
