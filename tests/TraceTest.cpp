//===- tests/TraceTest.cpp - trace emission smoke and determinism ---------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Smoke tests for the tracing layer end to end: a traced launch yields
/// events that render to structurally valid Chrome trace_event JSON; the
/// trace is bit-identical for every LaunchConfig::Jobs value; ring
/// eviction degrades gracefully; and the gpurun CLI's --metrics/--trace
/// surface behaves byte-identically across --jobs on the paper's BR=6
/// Kepler SGEMM (the acceptance property of the observability layer).
///
//===----------------------------------------------------------------------===//

#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"
#include "sim/Launcher.h"
#include "support/Format.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/wait.h>

using namespace gpuperf;

namespace {

/// Shape and buffers of the small tuned-NN problem used throughout.
struct NNProblem {
  Kernel K;
  LaunchConfig Launch;
  size_t MemBytes = 0;
  uint32_t BAddr = 0, CAddr = 0; // AAddr is the 256-aligned base.
};

constexpr int ProblemM = 192, ProblemN = 192, ProblemK = 64;

/// Builds the BR=6 tuned NN kernel and its launch shape on \p M. Matrix
/// contents are left zero: trace determinism and slot accounting are
/// data-independent for this kernel.
NNProblem makeTunedNN(const MachineDesc &M) {
  NNProblem P;
  SgemmKernelConfig Cfg =
      baselineConfig(SgemmImpl::AsmTuned, M, GemmVariant::NN, ProblemM,
                     ProblemN, ProblemK);
  auto K = generateSgemmKernel(M, Cfg);
  EXPECT_TRUE(K.hasValue()) << K.message();
  P.K = K.take();

  auto Round256 = [](size_t N) { return (N + 255) & ~size_t(255); };
  size_t ABytes = size_t(ProblemM) * ProblemK * 4;
  size_t BBytes = size_t(ProblemK) * ProblemN * 4;
  size_t CBytes = size_t(ProblemM) * ProblemN * 4;
  uint32_t AAddr = 256; // First 256-aligned bump-allocator address.
  P.BAddr = AAddr + static_cast<uint32_t>(Round256(ABytes));
  P.CAddr = P.BAddr + static_cast<uint32_t>(Round256(BBytes));
  P.MemBytes = Round256(ABytes) + Round256(BBytes) + CBytes;

  SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
  P.Launch.Dims.GridX = Shape.GridX;
  P.Launch.Dims.GridY = Shape.GridY;
  P.Launch.Dims.BlockX = Shape.BlockX;
  P.Launch.Params = {AAddr, P.BAddr, P.CAddr, 0x3f800000u /*alpha=1*/,
                     0u /*beta=0*/};
  P.Launch.Mode = SimMode::Full;
  return P;
}

/// Runs the problem with tracing at \p Jobs and returns the trace.
SimTrace runTraced(const MachineDesc &M, int Jobs, size_t Ring = 1 << 16) {
  NNProblem P = makeTunedNN(M);
  SimTrace Trace;
  Trace.RingCapacity = Ring;
  P.Launch.Jobs = Jobs;
  P.Launch.Trace = &Trace;
  GlobalMemory GM(P.MemBytes + 512);
  auto R = launchKernel(M, P.K, P.Launch, GM);
  EXPECT_TRUE(R.hasValue()) << R.message();
  return Trace;
}

TEST(TraceSmoke, EmitsValidChromeTraceJson) {
  const MachineDesc &M = gtx680();
  SimTrace Trace = runTraced(M, 1);
  ASSERT_FALSE(Trace.Events.empty());
  EXPECT_EQ(Trace.DroppedEvents, 0u);

  // Both issue and stall events must be present, with sane fields.
  bool SawIssue = false, SawStall = false;
  int16_t MaxSM = 0;
  for (const TraceEvent &E : Trace.Events) {
    (E.IsStall ? SawStall : SawIssue) = true;
    if (E.IsStall) {
      EXPECT_GE(E.Track, SchedTrackBase);
      EXPECT_LT(E.Code, NumSlotUses);
      EXPECT_GE(E.Dur, 1u);
    } else {
      EXPECT_LT(E.Track, SchedTrackBase);
      EXPECT_GE(E.PC, 0);
    }
    MaxSM = std::max(MaxSM, E.SM);
  }
  EXPECT_TRUE(SawIssue);
  EXPECT_TRUE(SawStall);
  EXPECT_GT(MaxSM, 0) << "want a multi-SM trace";

  std::string Json = chromeTraceJson(Trace, M);
  std::string Err;
  EXPECT_TRUE(jsonValidate(Json, &Err)) << Err;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"stall\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"issue\""), std::string::npos);

  // And the file-writing path produces the same bytes.
  std::string Path =
      ::testing::TempDir() + "gpuperf_trace_smoke.json";
  Status WriteStatus = writeChromeTrace(Trace, M, Path);
  ASSERT_FALSE(WriteStatus.failed()) << WriteStatus.message();
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Json);
  std::remove(Path.c_str());
}

TEST(TraceSmoke, TraceBitIdenticalAcrossJobs) {
  const MachineDesc &M = gtx680();
  SimTrace J1 = runTraced(M, 1);
  SimTrace J4 = runTraced(M, 4);
  EXPECT_EQ(J1.DroppedEvents, J4.DroppedEvents);
  ASSERT_EQ(J1.Events.size(), J4.Events.size());
  for (size_t I = 0; I < J1.Events.size(); ++I)
    ASSERT_TRUE(J1.Events[I] == J4.Events[I]) << "event " << I;
}

TEST(TraceSmoke, TinyRingEvictsOldestButStaysValid) {
  const MachineDesc &M = gtx680();
  SimTrace Small = runTraced(M, 1, /*Ring=*/16);
  SimTrace Big = runTraced(M, 1);
  EXPECT_GT(Small.DroppedEvents, 0u);
  EXPECT_LT(Small.Events.size(), Big.Events.size());
  std::string Err;
  EXPECT_TRUE(jsonValidate(chromeTraceJson(Small, M), &Err)) << Err;
}

//===----------------------------------------------------------------------===//
// gpurun CLI: --metrics determinism and flag validation
//===----------------------------------------------------------------------===//

#ifdef GPUPERF_GPURUN_PATH

/// Runs \p Cmd, captures its stdout, returns the exit status.
int runCommand(const std::string &Cmd, std::string *Out) {
  FILE *P = popen((Cmd + " 2>/dev/null").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  Out->clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out->append(Buf, N);
  int Raw = pclose(P);
  return Raw < 0 ? -1 : WEXITSTATUS(Raw);
}

class GpurunMetrics : public ::testing::Test {
protected:
  void SetUp() override {
    const MachineDesc &M = gtx680();
    NNProblem P = makeTunedNN(M);
    Module Mod;
    Mod.Arch = M.Generation;
    Mod.Kernels.push_back(P.K);
    ModPath = ::testing::TempDir() + "gpuperf_trace_test_sgemm.gpub";
    Status WriteStatus = Mod.writeToFile(ModPath);
    ASSERT_FALSE(WriteStatus.failed()) << WriteStatus.message();
    // gpurun --mem allocates first, so its base address is 256 -- the
    // same AAddr makeTunedNN assumed; B/C/alpha/beta follow as --param.
    BaseCmd = formatString(
        "%s %s --machine GTX680 --grid %d,%d --block %d --mem %zu "
        "--param %u --param %u --param 0x3f800000 --param 0",
        GPUPERF_GPURUN_PATH, ModPath.c_str(), P.Launch.Dims.GridX,
        P.Launch.Dims.GridY, P.Launch.Dims.BlockX, P.MemBytes + 512,
        P.BAddr, P.CAddr);
  }

  void TearDown() override { std::remove(ModPath.c_str()); }

  std::string ModPath, BaseCmd;
};

TEST_F(GpurunMetrics, MetricsByteIdenticalAcrossJobs) {
  // The acceptance criterion verbatim: gpurun --metrics on the BR=6
  // Kepler SGEMM prints a stall breakdown whose per-cause totals sum to
  // cycles x schedulers (gpurun itself exits 1 on a violated identity),
  // byte-identical between --jobs 1 and --jobs 4.
  std::string Out1, Out4;
  ASSERT_EQ(runCommand(BaseCmd + " --metrics --jobs 1", &Out1), 0)
      << Out1;
  ASSERT_EQ(runCommand(BaseCmd + " --metrics --jobs 4", &Out4), 0)
      << Out4;
  EXPECT_NE(Out1.find("issue-slot breakdown"), std::string::npos);
  EXPECT_NE(Out1.find("== aggregate cycles x schedulers"),
            std::string::npos);
  EXPECT_EQ(Out1, Out4);
}

TEST_F(GpurunMetrics, TraceFlagWritesValidJson) {
  std::string TracePath = ::testing::TempDir() + "gpurun_trace.json";
  std::string Out;
  ASSERT_EQ(runCommand(BaseCmd + " --trace=" + TracePath, &Out), 0)
      << Out;
  std::ifstream In(TracePath, std::ios::binary);
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Err;
  EXPECT_TRUE(jsonValidate(SS.str(), &Err)) << Err;
  EXPECT_NE(SS.str().find("\"traceEvents\""), std::string::npos);
  std::remove(TracePath.c_str());
}

TEST_F(GpurunMetrics, MalformedFlagsAreRejectedWithUsageExit) {
  // The CLI-validation satellite: garbage, trailing junk, out-of-range
  // and negative-for-unsigned values all exit 2 with a diagnostic, they
  // do not silently parse as 0 the way atoi did.
  std::string Out;
  for (const char *Bad :
       {" --jobs banana", " --jobs 4x", " --jobs -2", " --grid 0",
        " --grid 12,", " --block 99999999999999999999",
        " --param -1", " --watchdog 1e9"})
    EXPECT_EQ(runCommand(BaseCmd + Bad, &Out), 2) << Bad;
}

#endif // GPUPERF_GPURUN_PATH

} // namespace
