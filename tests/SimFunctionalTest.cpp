//===- tests/SimFunctionalTest.cpp - functional simulator tests -----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end functional tests: assembly text -> assembler -> launcher ->
/// simulated memory state. Every opcode's semantics is covered.
///
//===----------------------------------------------------------------------===//

#include "asmtool/Assembler.h"
#include "sim/Launcher.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace gpuperf;

namespace {

/// Assembles a kernel body and launches it; fails the test on error.
Expected<LaunchResult> runBody(GpuGeneration Arch, const std::string &Body,
                               LaunchDims Dims,
                               std::vector<uint32_t> Params,
                               GlobalMemory &GM, int SharedBytes = 0) {
  auto M = assembleKernelBody(Arch, Body, SharedBytes);
  if (!M.hasValue())
    return Expected<LaunchResult>::error("assembly failed: " + M.message());
  const MachineDesc &Machine =
      Arch == GpuGeneration::Kepler ? gtx680() : gtx580();
  LaunchConfig Config;
  Config.Dims = Dims;
  Config.Params = std::move(Params);
  return launchKernel(Machine, *M->findKernel("k"), Config, GM);
}

LaunchResult mustRun(GpuGeneration Arch, const std::string &Body,
                     LaunchDims Dims, std::vector<uint32_t> Params,
                     GlobalMemory &GM, int SharedBytes = 0) {
  auto R = runBody(Arch, Body, Dims, std::move(Params), GM, SharedBytes);
  if (!R.hasValue()) {
    ADD_FAILURE() << R.message();
    return LaunchResult();
  }
  return R.take();
}

} // namespace

TEST(SimFunctional, StoreConstantPerThread) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(32 * 4);
  std::string Body = formatString("  S2R R0, SR_TID.X\n"
                                  "  SHL R1, R0, 2\n"
                                  "  MOV32I R2, %u\n"
                                  "  IADD R1, R1, %u\n"
                                  "  ST [R1], R2\n"
                                  "  EXIT\n",
                                  1234u, Out);
  LaunchDims Dims;
  Dims.BlockX = 32;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  for (int T = 0; T < 32; ++T)
    EXPECT_EQ(GM.load32(Out + 4 * T), 1234u) << "thread " << T;
}

TEST(SimFunctional, ThreadAndBlockIds) {
  GlobalMemory GM;
  constexpr int Blocks = 3, Threads = 64;
  uint32_t Out = GM.allocate(Blocks * Threads * 4);
  // out[ctaid*ntid + tid] = ctaid * 1000 + tid
  std::string Body = formatString("  S2R R0, SR_TID.X\n"
                                  "  S2R R1, SR_CTAID.X\n"
                                  "  S2R R2, SR_NTID.X\n"
                                  "  IMAD R3, R1, R2, R0\n"
                                  "  SHL R3, R3, 2\n"
                                  "  IADD R3, R3, %u\n"
                                  "  IMAD R4, R1, 1000, R0\n"
                                  "  ST [R3], R4\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = Threads;
  Dims.GridX = Blocks;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  for (int B = 0; B < Blocks; ++B)
    for (int T = 0; T < Threads; ++T)
      EXPECT_EQ(GM.load32(Out + 4 * (B * Threads + T)),
                static_cast<uint32_t>(B * 1000 + T));
}

TEST(SimFunctional, IntegerAluOps) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(8 * 4);
  // Compute a handful of ALU results in lane 0 and store them.
  std::string Body = formatString(
      "  MOV32I R0, 21\n"
      "  MOV32I R1, 3\n"
      "  IADD R2, R0, R1\n"       // 24
      "  IMUL R3, R0, R1\n"       // 63
      "  IMAD R4, R0, R1, R2\n"   // 87
      "  ISCADD R5, R1, R0, 3\n"  // (3<<3)+21 = 45
      "  SHL R6, R1, 4\n"         // 48
      "  SHR R7, R0, 2\n"         // 5
      "  LOP.AND R8, R0, 7\n"     // 5
      "  LOP.OR R9, R0, 8\n"      // 29
      "  MOV32I R11, %u\n"
      "  ST [R11+0], R2\n"
      "  ST [R11+4], R3\n"
      "  ST [R11+8], R4\n"
      "  ST [R11+12], R5\n"
      "  ST [R11+16], R6\n"
      "  ST [R11+20], R7\n"
      "  ST [R11+24], R8\n"
      "  ST [R11+28], R9\n"
      "  EXIT\n",
      Out);
  LaunchDims Dims;
  Dims.BlockX = 1;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  uint32_t Expect[8] = {24, 63, 87, 45, 48, 5, 5, 29};
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(GM.load32(Out + 4 * I), Expect[I]) << "slot " << I;
}

TEST(SimFunctional, XorImmediateToggles) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(4);
  std::string Body = formatString("  MOV32I R0, 0x1200\n"
                                  "  LOP.XOR R0, R0, 0x1000\n"
                                  "  MOV32I R1, %u\n"
                                  "  ST [R1], R0\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = 1;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  EXPECT_EQ(GM.load32(Out), 0x200u);
}

TEST(SimFunctional, FloatMathMatchesHost) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(3 * 4);
  float A = 1.5f, B = -2.25f, C = 10.0f;
  auto Bits = [](float F) {
    uint32_t U;
    std::memcpy(&U, &F, 4);
    return U;
  };
  std::string Body = formatString("  MOV32I R0, %u\n"
                                  "  MOV32I R1, %u\n"
                                  "  MOV32I R2, %u\n"
                                  "  FFMA R3, R0, R1, R2\n"
                                  "  FADD R4, R0, R1\n"
                                  "  FMUL R5, R0, R2\n"
                                  "  MOV32I R10, %u\n"
                                  "  ST [R10+0], R3\n"
                                  "  ST [R10+4], R4\n"
                                  "  ST [R10+8], R5\n"
                                  "  EXIT\n",
                                  Bits(A), Bits(B), Bits(C), Out);
  LaunchDims Dims;
  Dims.BlockX = 1;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  EXPECT_EQ(GM.loadFloat(Out + 0), std::fma(A, B, C));
  EXPECT_EQ(GM.loadFloat(Out + 4), A + B);
  EXPECT_EQ(GM.loadFloat(Out + 8), A * C);
}

TEST(SimFunctional, LdcReadsParams) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(8);
  std::string Body = formatString("  LDC R0, c[0x0]\n"
                                  "  LDC R1, c[0x4]\n"
                                  "  MOV32I R2, %u\n"
                                  "  ST [R2], R0\n"
                                  "  ST [R2+4], R1\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = 1;
  mustRun(GpuGeneration::Fermi, Body, Dims, {111, 222}, GM);
  EXPECT_EQ(GM.load32(Out), 111u);
  EXPECT_EQ(GM.load32(Out + 4), 222u);
}

TEST(SimFunctional, SharedMemoryBarrierExchange) {
  GlobalMemory GM;
  constexpr int Threads = 64;
  uint32_t Out = GM.allocate(Threads * 4);
  // s[tid] = tid*7; barrier; out[tid] = s[(tid+32)%64]
  std::string Body = formatString("  S2R R0, SR_TID.X\n"
                                  "  SHL R1, R0, 2\n"
                                  "  IMUL R2, R0, 7\n"
                                  "  STS [R1], R2\n"
                                  "  BAR.SYNC\n"
                                  "  IADD R3, R0, 32\n"
                                  "  LOP.AND R3, R3, 63\n"
                                  "  SHL R3, R3, 2\n"
                                  "  LDS R4, [R3]\n"
                                  "  MOV32I R5, %u\n"
                                  "  IADD R5, R5, R1\n"
                                  "  ST [R5], R4\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = Threads;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM, Threads * 4);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(GM.load32(Out + 4 * T),
              static_cast<uint32_t>(((T + 32) % 64) * 7));
}

TEST(SimFunctional, WideSharedAccesses) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(4 * 4);
  // Store 4 words via STS.128, read back two LDS.64 pairs.
  std::string Body = formatString("  MOV32I R4, 10\n"
                                  "  MOV32I R5, 20\n"
                                  "  MOV32I R6, 30\n"
                                  "  MOV32I R7, 40\n"
                                  "  MOV32I R0, 0\n"
                                  "  STS.128 [R0], R4\n"
                                  "  BAR.SYNC\n"
                                  "  LDS.64 R8, [R0]\n"
                                  "  LDS.64 R10, [R0+8]\n"
                                  "  MOV32I R1, %u\n"
                                  "  ST [R1+0], R8\n"
                                  "  ST [R1+4], R9\n"
                                  "  ST [R1+8], R10\n"
                                  "  ST [R1+12], R11\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = 1;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM, 64);
  EXPECT_EQ(GM.load32(Out + 0), 10u);
  EXPECT_EQ(GM.load32(Out + 4), 20u);
  EXPECT_EQ(GM.load32(Out + 8), 30u);
  EXPECT_EQ(GM.load32(Out + 12), 40u);
}

TEST(SimFunctional, WideGlobalAccesses) {
  GlobalMemory GM;
  uint32_t In = GM.allocate(16);
  uint32_t Out = GM.allocate(16);
  for (int I = 0; I < 4; ++I)
    GM.store32(In + 4 * I, 100 + I);
  std::string Body = formatString("  MOV32I R0, %u\n"
                                  "  MOV32I R1, %u\n"
                                  "  LD.128 R4, [R0]\n"
                                  "  ST.128 [R1], R4\n"
                                  "  EXIT\n",
                                  In, Out);
  LaunchDims Dims;
  Dims.BlockX = 1;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(GM.load32(Out + 4 * I), static_cast<uint32_t>(100 + I));
}

TEST(SimFunctional, PredicatedStores) {
  GlobalMemory GM;
  constexpr int Threads = 32;
  uint32_t Out = GM.allocate(Threads * 4);
  for (int T = 0; T < Threads; ++T)
    GM.store32(Out + 4 * T, 0xffffffffu);
  // Only threads with tid < 10 store.
  std::string Body = formatString("  S2R R0, SR_TID.X\n"
                                  "  ISETP.LT P0, R0, 10\n"
                                  "  SHL R1, R0, 2\n"
                                  "  IADD R1, R1, %u\n"
                                  "  @P0 ST [R1], R0\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = Threads;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  for (int T = 0; T < Threads; ++T) {
    uint32_t Expect = T < 10 ? static_cast<uint32_t>(T) : 0xffffffffu;
    EXPECT_EQ(GM.load32(Out + 4 * T), Expect) << "thread " << T;
  }
}

TEST(SimFunctional, LoopAccumulates) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(4);
  // sum = 0; for (i = 50; i != 0; --i) sum += i;  => 1275
  std::string Body = formatString("  MOV32I R0, 0\n"
                                  "  MOV32I R1, 50\n"
                                  "loop:\n"
                                  "  IADD R0, R0, R1\n"
                                  "  IADD R1, R1, -1\n"
                                  "  ISETP.NE P0, R1, RZ\n"
                                  "  @P0 BRA loop\n"
                                  "  MOV32I R2, %u\n"
                                  "  ST [R2], R0\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = 1;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  EXPECT_EQ(GM.load32(Out), 1275u);
}

TEST(SimFunctional, PartialWarpActiveMask) {
  GlobalMemory GM;
  constexpr int Threads = 40; // A full warp plus 8 lanes.
  uint32_t Out = GM.allocate(64 * 4);
  std::string Body = formatString("  S2R R0, SR_TID.X\n"
                                  "  SHL R1, R0, 2\n"
                                  "  IADD R1, R1, %u\n"
                                  "  MOV32I R2, 1\n"
                                  "  ST [R1], R2\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = Threads;
  mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  for (int T = 0; T < 64; ++T)
    EXPECT_EQ(GM.load32(Out + 4 * T), T < Threads ? 1u : 0u);
}

TEST(SimFunctional, RunsOnKeplerWithNotations) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(4);
  std::string Body = formatString("  MOV32I R0, 5 {s:1}\n"
                                  "  IADD R0, R0, 6\n"
                                  "  MOV32I R1, %u\n"
                                  "  ST [R1], R0\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = 32;
  mustRun(GpuGeneration::Kepler, Body, Dims, {}, GM);
  EXPECT_EQ(GM.load32(Out), 11u);
}

// --- Fault detection -----------------------------------------------------------

TEST(SimFaults, SharedOutOfBounds) {
  GlobalMemory GM;
  auto R = runBody(GpuGeneration::Fermi,
                   "  MOV32I R0, 4096\n  LDS R1, [R0]\n  EXIT\n",
                   LaunchDims{1, 1, 32, 1}, {}, GM, 64);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("SHARED_LOAD_OOB"), std::string::npos);
}

TEST(SimFaults, MisalignedWideAccess) {
  GlobalMemory GM;
  auto R = runBody(GpuGeneration::Fermi,
                   "  MOV32I R0, 4\n  LDS.64 R2, [R0]\n  EXIT\n",
                   LaunchDims{1, 1, 32, 1}, {}, GM, 64);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("MISALIGNED_ACCESS"), std::string::npos);
}

TEST(SimFaults, LdcBeyondParams) {
  GlobalMemory GM;
  auto R = runBody(GpuGeneration::Fermi, "  LDC R0, c[0x40]\n  EXIT\n",
                   LaunchDims{1, 1, 32, 1}, {1, 2}, GM);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("parameter"), std::string::npos);
}

TEST(SimFaults, DivergentBranchReported) {
  GlobalMemory GM;
  auto R = runBody(GpuGeneration::Fermi,
                   "  S2R R0, SR_TID.X\n"
                   "  ISETP.LT P0, R0, 16\n"
                   "  @P0 BRA skip\n"
                   "  NOP\n"
                   "skip:\n"
                   "  EXIT\n",
                   LaunchDims{1, 1, 32, 1}, {}, GM);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("divergent"), std::string::npos);
}

TEST(SimFaults, UnlaunchableOccupancy) {
  GlobalMemory GM;
  // 1025 threads exceeds the block limit.
  auto R = runBody(GpuGeneration::Fermi, "  EXIT\n",
                   LaunchDims{1, 1, 1025, 1}, {}, GM);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("not launchable"), std::string::npos);
}

// --- Launch accounting ------------------------------------------------------------

TEST(SimAccounting, InstructionCountsByOpcode) {
  GlobalMemory GM;
  std::string Body = "  FADD R0, R1, R2\n"
                     "  FADD R0, R1, R2\n"
                     "  FMUL R3, R1, R2\n"
                     "  EXIT\n";
  LaunchResult R = mustRun(GpuGeneration::Fermi, Body,
                           LaunchDims{1, 1, 64, 1}, {}, GM);
  EXPECT_EQ(R.Stats.threadInsts(Opcode::FADD), 128u);
  EXPECT_EQ(R.Stats.threadInsts(Opcode::FMUL), 64u);
  EXPECT_EQ(R.Stats.threadInsts(Opcode::EXIT), 64u);
  EXPECT_EQ(R.Stats.ThreadInstsIssued, 64u * 4);
  EXPECT_EQ(R.Stats.WarpInstsIssued, 8u);
  EXPECT_GT(R.Stats.Cycles, 0u);
}

TEST(SimAccounting, WavesCoverWholeGrid) {
  GlobalMemory GM;
  uint32_t Out = GM.allocate(1024 * 4);
  // 64 blocks of 32 threads on Fermi: 8 blocks/SM limit, 16 SMs -> 1 wave;
  // with 256 blocks -> 2 waves.
  std::string Body = formatString("  S2R R0, SR_CTAID.X\n"
                                  "  S2R R1, SR_TID.X\n"
                                  "  SHL R2, R0, 2\n"
                                  "  IADD R2, R2, %u\n"
                                  "  ISETP.EQ P0, R1, RZ\n"
                                  "  @P0 ST [R2], R0\n"
                                  "  EXIT\n",
                                  Out);
  LaunchDims Dims;
  Dims.BlockX = 32;
  Dims.GridX = 256;
  LaunchResult R = mustRun(GpuGeneration::Fermi, Body, Dims, {}, GM);
  EXPECT_EQ(R.WavesTotal, 2);
  for (int B = 0; B < 256; ++B)
    EXPECT_EQ(GM.load32(Out + 4 * B), static_cast<uint32_t>(B));
}

TEST(SimAccounting, ProjectionModeScalesCycles) {
  GlobalMemory GM;
  std::string Body = "  FADD R0, R1, R2\n  EXIT\n";
  LaunchDims Dims;
  Dims.BlockX = 256;
  // 256-thread blocks of this tiny kernel are thread-limited: 6 blocks
  // per SM (1536/256), so 4 full chip waves on 16 SMs.
  Dims.GridX = 16 * 6 * 4;

  auto M = assembleKernelBody(GpuGeneration::Fermi, Body, 0);
  ASSERT_TRUE(M.hasValue());
  LaunchConfig Full;
  Full.Dims = Dims;
  Full.Mode = SimMode::Full;
  auto RFull = launchKernel(gtx580(), *M->findKernel("k"), Full, GM);
  ASSERT_TRUE(RFull.hasValue()) << RFull.message();

  LaunchConfig Proj = Full;
  Proj.Mode = SimMode::ProjectOneWave;
  auto RProj = launchKernel(gtx580(), *M->findKernel("k"), Proj, GM);
  ASSERT_TRUE(RProj.hasValue()) << RProj.message();

  // Projection should agree with full simulation within a few percent for
  // a data-independent kernel.
  EXPECT_NEAR(RProj->TotalCycles, RFull->TotalCycles,
              0.1 * RFull->TotalCycles);
  EXPECT_EQ(RProj->WavesSimulated, 1);
  EXPECT_EQ(RProj->WavesTotal, 4);
}
