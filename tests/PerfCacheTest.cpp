//===- tests/PerfCacheTest.cpp - persistent PerfDatabase cache ------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent measurement cache's contract: a warm cache returns the
/// serial measurements without re-simulating anything; a changed kernel
/// (different generated code, hence different hash) misses rather than
/// returning a stale value; and a corrupt cache file is rejected whole
/// (Module::deserialize's sanity-cap stance) instead of being half
/// loaded.
///
//===----------------------------------------------------------------------===//

#include "ubench/PerfDatabase.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include <unistd.h>

using namespace gpuperf;

namespace {

/// Small, fast kernel + shape so a measurement is milliseconds.
Kernel smallKernel(const MachineDesc &M, int Ratio) {
  MixBenchParams P;
  P.FfmaPerLds = Ratio;
  P.BodyInsts = 128;
  return generateMixBench(M, P);
}

MeasureConfig smallConfig() {
  MeasureConfig Cfg;
  Cfg.ThreadsPerBlock = 64;
  Cfg.BlocksPerSM = 1;
  return Cfg;
}

/// Unique-ish temp path per test; removed on fixture teardown.
class PerfCache : public ::testing::Test {
protected:
  void SetUp() override {
    Path = testing::TempDir() + "gpuperf_cache_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".gpdb";
    std::remove(Path.c_str());
  }
  void TearDown() override {
    std::remove(Path.c_str());
    std::remove(PerfDatabase::journalPath(Path).c_str());
  }

  std::string Path;
};

TEST_F(PerfCache, RoundTripSkipsRemeasurement) {
  const MachineDesc &M = gtx580();
  Kernel K = smallKernel(M, 4);
  double First;
  {
    PerfDatabase Cold(M, Path);
    First = Cold.measureKernel(K, smallConfig());
    EXPECT_EQ(Cold.hits(), 0u);
    EXPECT_EQ(Cold.misses(), 1u);
    // Memoized within the object too.
    EXPECT_EQ(Cold.measureKernel(K, smallConfig()), First);
    EXPECT_EQ(Cold.hits(), 1u);
  } // Dtor saves.

  PerfDatabase Warm(M, Path);
  EXPECT_EQ(Warm.entryCount(), 1u);
  EXPECT_EQ(Warm.measureKernel(K, smallConfig()), First);
  EXPECT_EQ(Warm.hits(), 1u);
  EXPECT_EQ(Warm.misses(), 0u) << "warm cache must not re-measure";
}

TEST_F(PerfCache, MixThroughputGoesThroughTheCache) {
  const MachineDesc &M = gtx580();
  double First;
  {
    PerfDatabase Cold(M, Path);
    First = Cold.mixThroughput(6, MemWidth::B64, false, 64);
    EXPECT_EQ(Cold.misses(), 1u);
  }
  PerfDatabase Warm(M, Path);
  EXPECT_EQ(Warm.mixThroughput(6, MemWidth::B64, false, 64), First);
  EXPECT_EQ(Warm.misses(), 0u);
}

TEST_F(PerfCache, StaleHashInvalidates) {
  const MachineDesc &M = gtx580();
  {
    PerfDatabase DB(M, Path);
    DB.measureKernel(smallKernel(M, 4), smallConfig());
  }
  // Same kernel *name* and shape, different generated code: the key's
  // code hash differs, so this must miss instead of serving the ratio-4
  // measurement.
  Kernel Changed = smallKernel(M, 8);
  Changed.Name = smallKernel(M, 4).Name;
  PerfDatabase DB(M, Path);
  DB.measureKernel(Changed, smallConfig());
  EXPECT_EQ(DB.hits(), 0u);
  EXPECT_EQ(DB.misses(), 1u);
}

TEST_F(PerfCache, DistinguishesMachinesAndShapes) {
  Kernel KF = smallKernel(gtx580(), 4);
  {
    PerfDatabase DB(gtx580(), Path);
    DB.measureKernel(KF, smallConfig());
  }
  // Different machine: same file, no hit (keys carry the machine name,
  // and the Kepler encoding differs anyway).
  {
    PerfDatabase DB(gtx680(), Path);
    DB.measureKernel(smallKernel(gtx680(), 4), smallConfig());
    EXPECT_EQ(DB.hits(), 0u);
  }
  // Different measurement shape: no hit either.
  PerfDatabase DB(gtx580(), Path);
  MeasureConfig Wider = smallConfig();
  Wider.ThreadsPerBlock = 128;
  DB.measureKernel(KF, Wider);
  EXPECT_EQ(DB.hits(), 0u);
  EXPECT_EQ(DB.entryCount(), 3u);
}

TEST_F(PerfCache, SaveMergesConcurrentWriters) {
  const MachineDesc &M = gtx580();
  Kernel A = smallKernel(M, 2), B = smallKernel(M, 4);
  {
    PerfDatabase First(M, Path);
    First.measureKernel(A, smallConfig());
  }
  {
    // A database that never read the file (another process's view):
    // saving to the same path must keep A alongside its own B.
    PerfDatabase Second(M);
    Second.measureKernel(B, smallConfig());
    ASSERT_FALSE(Second.save(Path).failed());
  }
  PerfDatabase Check(M, Path);
  EXPECT_EQ(Check.entryCount(), 2u);
}

TEST_F(PerfCache, FailedSaveLeavesPreviousCacheIntact) {
  // The atomic-save regression: save() writes a temporary and renames it
  // into place, so a save that dies mid-write (full disk, crash) must
  // leave the previous cache bytes untouched -- not a truncated file the
  // next load would reject wholesale. With the write-ahead journal the
  // guarantee is stronger still: the measurement acknowledged before the
  // failed save stays durable in the journal, so nothing is lost at all.
  const MachineDesc &M = gtx580();
  Kernel A = smallKernel(M, 2), B = smallKernel(M, 4);
  double First, Second;
  {
    PerfDatabase DB(M, Path);
    First = DB.measureKernel(A, smallConfig());
    ASSERT_FALSE(DB.save(Path).failed());
  }

  // Simulate disk-full: the snapshot save may write at most 5 bytes.
  // (The journal append is a plain append, not a durable whole-file
  // write, so it is unaffected -- exactly the point of journaling.)
  setPerfCacheSaveByteLimitForTesting(5);
  {
    PerfDatabase DB(M, Path);
    Second = DB.measureKernel(B, smallConfig());
    Status S = DB.save(Path);
    EXPECT_TRUE(S.failed());
    EXPECT_NE(S.message().find("previous cache left intact"),
              std::string::npos)
        << S.message();
  }
  setPerfCacheSaveByteLimitForTesting(0);

  // The original snapshot is still fully loadable, B survived in the
  // journal, and no stray temporary remains to confuse a later save.
  PerfDatabase Check(M, Path);
  EXPECT_EQ(Check.entryCount(), 2u);
  EXPECT_EQ(Check.measureKernel(A, smallConfig()), First);
  EXPECT_EQ(Check.measureKernel(B, smallConfig()), Second);
  EXPECT_EQ(Check.misses(), 0u)
      << "acknowledged measurements must survive a failed snapshot save";
  std::ifstream Tmp(Path + ".tmp." + std::to_string(getpid()));
  EXPECT_FALSE(Tmp.good()) << "failed save must remove its temporary";
}

//===----------------------------------------------------------------------===//
// Corrupt-file rejection (the Module::deserialize sanity-cap stance)
//===----------------------------------------------------------------------===//

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &B) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(B.data()),
            static_cast<std::streamsize>(B.size()));
}

class PerfCacheCorruption : public PerfCache {
protected:
  void SetUp() override {
    PerfCache::SetUp();
    PerfDatabase DB(gtx580(), Path);
    DB.measureKernel(smallKernel(gtx580(), 4), smallConfig());
    DB.measureKernel(smallKernel(gtx580(), 8), smallConfig());
    // Force the save now so the bytes exist to corrupt.
    ASSERT_FALSE(DB.save(Path).failed());
    Valid = readFile(Path);
    ASSERT_GE(Valid.size(), 12u);
  }

  void expectRejected(const std::vector<uint8_t> &Bytes,
                      const char *What) {
    writeFile(Path, Bytes);
    PerfDatabase DB(gtx580(), Path);
    Status S = DB.load(Path);
    EXPECT_TRUE(S.failed()) << What;
    EXPECT_EQ(DB.entryCount(), 0u)
        << What << ": corrupt file must not half-load";
  }

  std::vector<uint8_t> Valid;
};

TEST_F(PerfCacheCorruption, BadMagic) {
  auto Bytes = Valid;
  Bytes[0] ^= 0xff;
  expectRejected(Bytes, "bad magic");
}

TEST_F(PerfCacheCorruption, BadVersion) {
  auto Bytes = Valid;
  Bytes[4] = 0x7f;
  expectRejected(Bytes, "bad version");
}

TEST_F(PerfCacheCorruption, InsaneEntryCount) {
  auto Bytes = Valid;
  // Count field: bytes 8..11. 0xffffffff >> the 1M cap.
  Bytes[8] = Bytes[9] = Bytes[10] = Bytes[11] = 0xff;
  expectRejected(Bytes, "entry count over cap");
}

TEST_F(PerfCacheCorruption, InsaneKeyLength) {
  auto Bytes = Valid;
  // First entry's key length sits right after the 12-byte header.
  Bytes[12] = Bytes[13] = Bytes[14] = Bytes[15] = 0xff;
  expectRejected(Bytes, "key length over cap");
}

TEST_F(PerfCacheCorruption, Truncated) {
  auto Bytes = Valid;
  Bytes.resize(Bytes.size() - 5);
  expectRejected(Bytes, "truncated file");
}

TEST_F(PerfCacheCorruption, TrailingGarbage) {
  auto Bytes = Valid;
  Bytes.push_back(0xab);
  expectRejected(Bytes, "trailing bytes");
}

TEST_F(PerfCacheCorruption, CorruptFileIsIgnoredByCtorAndOverwritten) {
  auto Bytes = Valid;
  Bytes.resize(7); // Unusable.
  writeFile(Path, Bytes);
  double V;
  {
    PerfDatabase DB(gtx580(), Path); // Must not die or half-load.
    EXPECT_EQ(DB.entryCount(), 0u);
    V = DB.measureKernel(smallKernel(gtx580(), 4), smallConfig());
  }
  PerfDatabase Fresh(gtx580(), Path); // Rewritten with good bytes.
  EXPECT_EQ(Fresh.entryCount(), 1u);
  EXPECT_EQ(Fresh.measureKernel(smallKernel(gtx580(), 4), smallConfig()),
            V);
  EXPECT_EQ(Fresh.misses(), 0u);
}

} // namespace
