//===- tests/SgemmTest.cpp - end-to-end SGEMM integration tests -----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests: generated SGEMM kernels run on the simulated GPUs
/// and must match the host reference bit-for-bit, across variants,
/// implementations, widths, blocking factors, alpha/beta values and
/// padded (non-tile-multiple) shapes.
///
//===----------------------------------------------------------------------===//

#include "sgemm/Reference.h"
#include "sgemm/SgemmRunner.h"
#include "support/MathUtils.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace gpuperf;

namespace {

SgemmRunResult mustRun(const MachineDesc &M, SgemmImpl Impl,
                       SgemmProblem P) {
  SgemmRunOptions O;
  O.Mode = SimMode::Full;
  O.Verify = true;
  auto R = runSgemm(M, Impl, P, O);
  if (!R.hasValue()) {
    ADD_FAILURE() << R.message();
    return SgemmRunResult();
  }
  return R.take();
}

SgemmRunResult mustRunConfig(const MachineDesc &M, SgemmKernelConfig Cfg,
                             SgemmProblem P) {
  SgemmRunOptions O;
  O.Mode = SimMode::Full;
  O.Verify = true;
  auto R = runSgemmConfig(M, Cfg, P, O);
  if (!R.hasValue()) {
    ADD_FAILURE() << R.message();
    return SgemmRunResult();
  }
  return R.take();
}

SgemmProblem problem(GemmVariant V, int M, int N, int K,
                     float Alpha = 1.0f, float Beta = 0.0f) {
  SgemmProblem P;
  P.Variant = V;
  P.M = M;
  P.N = N;
  P.K = K;
  P.Alpha = Alpha;
  P.Beta = Beta;
  return P;
}

} // namespace

// --- Variants x machines (parameterized) --------------------------------------

struct VariantCase {
  GemmVariant Variant;
  const MachineDesc *Machine;
};

class SgemmVariantTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(SgemmVariantTest, VerifiesBitExact) {
  const VariantCase &C = GetParam();
  SgemmRunResult R = mustRun(*C.Machine, SgemmImpl::AsmTuned,
                             problem(C.Variant, 192, 192, 64, 1.25f,
                                     -0.5f));
  EXPECT_TRUE(R.Verified);
  EXPECT_EQ(R.MaxAbsError, 0.0);
  EXPECT_EQ(R.RegsPerThread, 63);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SgemmVariantTest,
    ::testing::Values(VariantCase{GemmVariant::NN, &gtx580()},
                      VariantCase{GemmVariant::NT, &gtx580()},
                      VariantCase{GemmVariant::TN, &gtx580()},
                      VariantCase{GemmVariant::TT, &gtx580()},
                      VariantCase{GemmVariant::NN, &gtx680()},
                      VariantCase{GemmVariant::NT, &gtx680()},
                      VariantCase{GemmVariant::TN, &gtx680()},
                      VariantCase{GemmVariant::TT, &gtx680()}),
    [](const ::testing::TestParamInfo<VariantCase> &Info) {
      return std::string(gemmVariantName(Info.param.Variant)) + "_" +
             Info.param.Machine->Name;
    });

// --- Implementations (parameterized) --------------------------------------------

class SgemmImplTest : public ::testing::TestWithParam<SgemmImpl> {};

TEST_P(SgemmImplTest, AllImplementationsVerifyOnBothMachines) {
  for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
    SgemmRunResult R =
        mustRun(*M, GetParam(), problem(GemmVariant::NN, 192, 96, 48));
    EXPECT_TRUE(R.Verified) << M->Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, SgemmImplTest,
    ::testing::Values(SgemmImpl::AsmTuned, SgemmImpl::AsmNaive,
                      SgemmImpl::CublasLike, SgemmImpl::MagmaLike),
    [](const ::testing::TestParamInfo<SgemmImpl> &Info) {
      std::string Name = sgemmImplName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

// --- Shapes and scalars ----------------------------------------------------------

TEST(Sgemm, PadsNonTileMultipleShapes) {
  // 100x50x33 requires padding in every dimension.
  SgemmRunResult R = mustRun(gtx580(), SgemmImpl::AsmTuned,
                             problem(GemmVariant::NN, 100, 50, 33, 2.0f,
                                     0.25f));
  EXPECT_TRUE(R.Verified);
}

TEST(Sgemm, RectangularShapes) {
  SgemmRunResult R = mustRun(gtx580(), SgemmImpl::AsmTuned,
                             problem(GemmVariant::NT, 288, 96, 128));
  EXPECT_TRUE(R.Verified);
}

TEST(Sgemm, SingleKPanel) {
  // K == L: the kernel runs without its main loop (tail only).
  SgemmRunResult R = mustRun(gtx580(), SgemmImpl::AsmTuned,
                             problem(GemmVariant::NN, 96, 96, 16));
  EXPECT_TRUE(R.Verified);
}

namespace {

uint32_t floatBits(float F) {
  uint32_t U;
  std::memcpy(&U, &F, 4);
  return U;
}

} // namespace

TEST(Sgemm, PaddedBetaTermNeverReadsPaddingGarbage) {
  // The runner's own Verify compares the padded kernel result against a
  // reference run on the *same* padded buffers, so padding values
  // leaking into the true region of C through the beta term would
  // cancel out and pass unnoticed. This test drives the kernel
  // directly: every padded element of the C image holds a huge
  // sentinel, and the true region is checked bit-for-bit against a
  // reference computed on compact, never-padded copies. A and B keep
  // zero padding -- the kernel's K loop runs over the padded K, and
  // those terms must contribute exact-zero FMA no-ops.
  const float Alpha = 1.5f, Beta = -0.75f;
  const int TM = 100, TN = 50, TK = 33; // Padding in every dimension.
  for (const MachineDesc *MachP : {&gtx580(), &gtx680()}) {
    const MachineDesc &Mach = *MachP;
    for (GemmVariant V : {GemmVariant::NN, GemmVariant::NT,
                          GemmVariant::TN, GemmVariant::TT}) {
      SgemmKernelConfig Cfg =
          baselineConfig(SgemmImpl::AsmTuned, Mach, V, TM, TN, TK);
      const int BSh = Cfg.blockTile();
      const int MPad = static_cast<int>(alignTo(TM, BSh));
      const int NPad = static_cast<int>(alignTo(TN, BSh));
      const int KPad = static_cast<int>(alignTo(TK, Cfg.L));
      Cfg.Variant = V;
      Cfg.M = MPad;
      Cfg.N = NPad;
      Cfg.K = KPad;
      Cfg.Lda = transA(V) ? KPad : MPad;
      Cfg.Ldb = transB(V) ? NPad : KPad;
      Cfg.Ldc = MPad;
      auto K = generateSgemmKernel(Mach, Cfg);
      ASSERT_TRUE(K.hasValue()) << K.message();

      // Padded device images (column-major, Ld == padded rows).
      const int ARows = Cfg.Lda, ATrueR = transA(V) ? TK : TM,
                ATrueC = transA(V) ? TM : TK;
      const int BRows = Cfg.Ldb, BTrueR = transB(V) ? TN : TK,
                BTrueC = transB(V) ? TK : TN;
      std::vector<float> A(size_t(ARows) * (transA(V) ? MPad : KPad), 0.0f);
      std::vector<float> B(size_t(BRows) * (transB(V) ? KPad : NPad), 0.0f);
      std::vector<float> C(size_t(MPad) * NPad, 1e30f);
      Rng R(7);
      for (int Col = 0; Col < ATrueC; ++Col)
        for (int Row = 0; Row < ATrueR; ++Row)
          A[size_t(Col) * ARows + Row] = R.nextUnitFloat();
      for (int Col = 0; Col < BTrueC; ++Col)
        for (int Row = 0; Row < BTrueR; ++Row)
          B[size_t(Col) * BRows + Row] = R.nextUnitFloat();
      for (int Col = 0; Col < TN; ++Col)
        for (int Row = 0; Row < TM; ++Row)
          C[size_t(Col) * MPad + Row] = R.nextUnitFloat();

      // Compact copies that have never seen a padded element.
      std::vector<float> ARef(size_t(ATrueR) * ATrueC);
      std::vector<float> BRef(size_t(BTrueR) * BTrueC);
      std::vector<float> CRef(size_t(TM) * TN);
      for (int Col = 0; Col < ATrueC; ++Col)
        for (int Row = 0; Row < ATrueR; ++Row)
          ARef[size_t(Col) * ATrueR + Row] = A[size_t(Col) * ARows + Row];
      for (int Col = 0; Col < BTrueC; ++Col)
        for (int Row = 0; Row < BTrueR; ++Row)
          BRef[size_t(Col) * BTrueR + Row] = B[size_t(Col) * BRows + Row];
      for (int Col = 0; Col < TN; ++Col)
        for (int Row = 0; Row < TM; ++Row)
          CRef[size_t(Col) * TM + Row] = C[size_t(Col) * MPad + Row];
      referenceSgemm(V, TM, TN, TK, Alpha, ARef.data(), ATrueR,
                     BRef.data(), BTrueR, Beta, CRef.data(), TM);

      GlobalMemory GM((A.size() + B.size() + C.size()) * 4 + (1 << 16));
      auto Upload = [&GM](const std::vector<float> &Mx) {
        uint32_t Addr = GM.allocate(Mx.size() * 4);
        for (size_t I = 0; I < Mx.size(); ++I)
          GM.storeFloat(static_cast<uint32_t>(Addr + 4 * I), Mx[I]);
        return Addr;
      };
      uint32_t AAddr = Upload(A), BAddr = Upload(B), CAddr = Upload(C);

      SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
      LaunchConfig Launch;
      Launch.Dims.GridX = Shape.GridX;
      Launch.Dims.GridY = Shape.GridY;
      Launch.Dims.BlockX = Shape.BlockX;
      Launch.Params = {AAddr, BAddr, CAddr, floatBits(Alpha),
                       floatBits(Beta)};
      Launch.Mode = SimMode::Full;
      auto LR = launchKernel(Mach, *K, Launch, GM);
      ASSERT_TRUE(LR.hasValue()) << Mach.Name << " "
                                 << gemmVariantName(V) << ": "
                                 << LR.message();

      // Bit-exact comparison catches NaN/Inf contamination that a
      // tolerance check would mishandle.
      int Mismatches = 0;
      for (int Col = 0; Col < TN; ++Col)
        for (int Row = 0; Row < TM; ++Row) {
          float Got = GM.loadFloat(static_cast<uint32_t>(
              CAddr + 4 * (size_t(Col) * MPad + Row)));
          float Want = CRef[size_t(Col) * TM + Row];
          if (floatBits(Got) != floatBits(Want) && ++Mismatches <= 3) {
            ADD_FAILURE()
                << Mach.Name << " " << gemmVariantName(V) << " C(" << Row
                << "," << Col << "): got " << Got << " want " << Want;
          }
        }
      EXPECT_EQ(Mismatches, 0)
          << Mach.Name << " " << gemmVariantName(V);
    }
  }
}

TEST(Sgemm, BetaZeroIgnoresC) {
  SgemmRunResult R = mustRun(gtx580(), SgemmImpl::AsmTuned,
                             problem(GemmVariant::NN, 96, 96, 32, 1.0f,
                                     0.0f));
  EXPECT_TRUE(R.Verified);
}

TEST(Sgemm, AlphaZeroScalesOnly) {
  SgemmRunResult R = mustRun(gtx580(), SgemmImpl::AsmTuned,
                             problem(GemmVariant::NN, 96, 96, 32, 0.0f,
                                     3.0f));
  EXPECT_TRUE(R.Verified);
}

// --- Configuration space ------------------------------------------------------------

TEST(SgemmConfigs, SmallerBlockingFactorsVerify) {
  for (int BR : {2, 4}) {
    SgemmKernelConfig Cfg;
    Cfg.BR = BR;
    SgemmRunResult R = mustRunConfig(
        gtx580(), Cfg, problem(GemmVariant::NN, 16 * BR * 2, 16 * BR, 32));
    EXPECT_TRUE(R.Verified) << "BR=" << BR;
  }
}

TEST(SgemmConfigs, Lds32Verifies) {
  SgemmKernelConfig Cfg;
  Cfg.LdsWidth = MemWidth::B32;
  SgemmRunResult R =
      mustRunConfig(gtx580(), Cfg, problem(GemmVariant::NN, 96, 96, 48));
  EXPECT_TRUE(R.Verified);
}

TEST(SgemmConfigs, ReorderOffVerifies) {
  SgemmKernelConfig Cfg;
  Cfg.Reorder = false;
  SgemmRunResult R =
      mustRunConfig(gtx580(), Cfg, problem(GemmVariant::NN, 96, 96, 48));
  EXPECT_TRUE(R.Verified);
}

TEST(SgemmConfigs, SpillEmulationVerifies) {
  SgemmKernelConfig Cfg;
  Cfg.EmulateSpills = true;
  for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
    SgemmRunResult R =
        mustRunConfig(*M, Cfg, problem(GemmVariant::NN, 96, 96, 48));
    EXPECT_TRUE(R.Verified) << M->Name;
  }
}

TEST(SgemmConfigs, KeplerNotationQualitiesAllCorrect) {
  // Scheduling hints change performance, never results.
  double Gflops[3] = {0, 0, 0};
  int Idx = 0;
  for (NotationQuality Q : {NotationQuality::None,
                            NotationQuality::Heuristic,
                            NotationQuality::Tuned}) {
    SgemmKernelConfig Cfg;
    Cfg.Notation = Q;
    SgemmRunResult R =
        mustRunConfig(gtx680(), Cfg, problem(GemmVariant::NN, 96, 96, 64));
    EXPECT_TRUE(R.Verified) << notationQualityName(Q);
    Gflops[Idx++] = R.Gflops;
  }
  // And the performance ordering holds: none << heuristic/tuned.
  EXPECT_LT(Gflops[0], Gflops[1]);
}

// --- Statistics ------------------------------------------------------------------

TEST(SgemmStats, FfmaShareMatchesSection4) {
  // "In our SGEMM implementation with 1024x1024 matrix size, 80.5% of
  // instructions executed are FFMA instructions" -- we measure at
  // 960x960x960, which has the same loop structure.
  SgemmRunOptions O;
  O.Mode = SimMode::ProjectOneWave;
  auto R = runSgemm(gtx580(), SgemmImpl::AsmTuned,
                    problem(GemmVariant::NN, 960, 960, 960), O);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_NEAR(R->FfmaPercent, 80.5, 3.0);
}

TEST(SgemmStats, ProjectionAgreesWithFullSimulation) {
  SgemmProblem P = problem(GemmVariant::NN, 960, 960, 96);
  SgemmRunOptions Full;
  Full.Mode = SimMode::Full;
  auto RFull = runSgemm(gtx580(), SgemmImpl::AsmTuned, P, Full);
  ASSERT_TRUE(RFull.hasValue()) << RFull.message();
  SgemmRunOptions Proj;
  Proj.Mode = SimMode::ProjectOneWave;
  auto RProj = runSgemm(gtx580(), SgemmImpl::AsmTuned, P, Proj);
  ASSERT_TRUE(RProj.hasValue()) << RProj.message();
  EXPECT_NEAR(RProj->Launch.TotalCycles, RFull->Launch.TotalCycles,
              0.15 * RFull->Launch.TotalCycles);
}

TEST(SgemmStats, PerformanceScalesWithMatrixSize) {
  // Bigger matrices amortize the prologue: GFLOPS must rise.
  SgemmRunOptions O;
  O.Mode = SimMode::ProjectOneWave;
  double Prev = 0;
  for (int Size : {192, 480, 960}) {
    auto R = runSgemm(gtx580(), SgemmImpl::AsmTuned,
                      problem(GemmVariant::NN, Size, Size, Size), O);
    ASSERT_TRUE(R.hasValue()) << R.message();
    EXPECT_GT(R->Gflops, Prev);
    Prev = R->Gflops;
  }
}

TEST(SgemmStats, FermiAsmBeatsCublasLike) {
  // The headline result: ~5% over CUBLAS on Fermi for large matrices.
  SgemmRunOptions O;
  O.Mode = SimMode::ProjectOneWave;
  SgemmProblem P = problem(GemmVariant::NN, 1920, 1920, 1920);
  auto Asm = runSgemm(gtx580(), SgemmImpl::AsmTuned, P, O);
  auto Cublas = runSgemm(gtx580(), SgemmImpl::CublasLike, P, O);
  ASSERT_TRUE(Asm.hasValue() && Cublas.hasValue());
  EXPECT_GT(Asm->Gflops, Cublas->Gflops);
  // And lands near the paper's 74.2% of the theoretical peak.
  EXPECT_NEAR(Asm->FractionOfPeak, 0.742, 0.04);
}

TEST(SgemmStats, KeplerBankAwareBeatsNaive) {
  // Section 5.4: fixing the register bank conflicts lifted the Kepler
  // kernel from ~1100 to ~1300 GFLOPS.
  SgemmRunOptions O;
  O.Mode = SimMode::ProjectOneWave;
  SgemmProblem P = problem(GemmVariant::NN, 1920, 1920, 1920);
  auto Tuned = runSgemm(gtx680(), SgemmImpl::AsmTuned, P, O);
  auto Naive = runSgemm(gtx680(), SgemmImpl::AsmNaive, P, O);
  ASSERT_TRUE(Tuned.hasValue() && Naive.hasValue());
  EXPECT_GT(Tuned->Gflops, 1.2 * Naive->Gflops);
}

TEST(SgemmErrors, VerifyRequiresFullSimulation) {
  SgemmRunOptions O;
  O.Mode = SimMode::ProjectOneWave;
  O.Verify = true;
  auto R = runSgemm(gtx580(), SgemmImpl::AsmTuned,
                    problem(GemmVariant::NN, 96, 96, 16), O);
  EXPECT_FALSE(R.hasValue());
}

TEST(SgemmErrors, RejectsEmptyProblem) {
  auto R = runSgemm(gtx580(), SgemmImpl::AsmTuned,
                    problem(GemmVariant::NN, 0, 96, 16));
  EXPECT_FALSE(R.hasValue());
}
