//===- tests/ParallelSimTest.cpp - parallel == serial, bit for bit --------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel execution layer's contract: LaunchConfig::Jobs changes
/// wall-clock time only. For every job count, a full simulation must
/// produce the same cycles, the same statistics, the same global-memory
/// image, and -- when a mutant traps -- the same trap with the same
/// partial side effects the serial path leaves behind. These tests pin
/// that equivalence on both architectures and on the fault-injection
/// batch API.
///
//===----------------------------------------------------------------------===//

#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"
#include "sim/FaultInjector.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace gpuperf;

namespace {

uint64_t hashMemory(const GlobalMemory &GM) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (size_t Addr = 0; Addr + 4 <= GM.size(); Addr += 4) {
    uint32_t W = GM.load32(static_cast<uint32_t>(Addr));
    for (int I = 0; I < 4; ++I) {
      Hash ^= (W >> (8 * I)) & 0xff;
      Hash *= 0x100000001b3ull;
    }
  }
  return Hash;
}

/// Everything observable about one full-simulation launch.
struct FullRun {
  bool Ok = false;
  std::string Error;
  TrapInfo Trap;
  LaunchResult R;
  uint64_t MemHash = 0;
};

/// Runs the tuned NN kernel on a 192x192x64 problem (a multi-SM,
/// multi-wave launch on both machines) with RNG-filled matrices,
/// entirely full-sim, at \p Jobs.
FullRun runTunedNN(const MachineDesc &M, int Jobs,
                   uint64_t WatchdogCycles = 0) {
  FullRun Out;
  SgemmKernelConfig Cfg = baselineConfig(SgemmImpl::AsmTuned, M,
                                         GemmVariant::NN, 192, 192, 64);
  auto K = generateSgemmKernel(M, Cfg);
  if (!K.hasValue()) {
    Out.Error = K.message();
    return Out;
  }

  GlobalMemory GM(0);
  auto AAddr = GM.tryAllocate(size_t(192) * 64 * 4);
  auto BAddr = GM.tryAllocate(size_t(64) * 192 * 4);
  auto CAddr = GM.tryAllocate(size_t(192) * 192 * 4);
  EXPECT_TRUE(AAddr.hasValue() && BAddr.hasValue() && CAddr.hasValue());
  Rng R(42);
  for (uint32_t W = 0; W < 192 * 64; ++W)
    GM.storeFloat(*AAddr + 4 * W, R.nextUnitFloat());
  for (uint32_t W = 0; W < 64 * 192; ++W)
    GM.storeFloat(*BAddr + 4 * W, R.nextUnitFloat());

  SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
  LaunchConfig Launch;
  Launch.Dims.GridX = Shape.GridX;
  Launch.Dims.GridY = Shape.GridY;
  Launch.Dims.BlockX = Shape.BlockX;
  Launch.Params = {*AAddr, *BAddr, *CAddr, 0x3f800000u /*alpha=1*/,
                   0u /*beta=0*/};
  Launch.Mode = SimMode::Full;
  Launch.WatchdogCycles = WatchdogCycles;
  Launch.Jobs = Jobs;

  auto LR = launchKernel(M, K.take(), Launch, GM, &Out.Trap);
  if (LR.hasValue()) {
    Out.Ok = true;
    Out.R = *LR;
  } else {
    Out.Error = LR.message();
  }
  Out.MemHash = hashMemory(GM);
  return Out;
}

void expectIdentical(const FullRun &A, const FullRun &B, int Jobs) {
  SCOPED_TRACE("jobs=" + std::to_string(Jobs));
  ASSERT_EQ(A.Ok, B.Ok) << A.Error << " vs " << B.Error;
  EXPECT_EQ(A.Error, B.Error);
  EXPECT_EQ(A.Trap.valid(), B.Trap.valid());
  if (A.Trap.valid()) {
    EXPECT_EQ(A.Trap.toString(), B.Trap.toString());
  }
  EXPECT_EQ(A.MemHash, B.MemHash);
  if (!A.Ok)
    return;
  EXPECT_EQ(A.R.TotalCycles, B.R.TotalCycles);
  EXPECT_EQ(A.R.WavesSimulated, B.R.WavesSimulated);
  EXPECT_EQ(A.R.WavesTotal, B.R.WavesTotal);
  EXPECT_EQ(A.R.Occ.ActiveBlocks, B.R.Occ.ActiveBlocks);
  EXPECT_EQ(A.R.Stats.Cycles, B.R.Stats.Cycles);
  EXPECT_EQ(A.R.Stats.WarpInstsIssued, B.R.Stats.WarpInstsIssued);
  EXPECT_EQ(A.R.Stats.ThreadInstsIssued, B.R.Stats.ThreadInstsIssued);
  EXPECT_EQ(A.R.Stats.ffmaThreadInsts(), B.R.Stats.ffmaThreadInsts());
  EXPECT_EQ(A.R.Stats.GlobalBytes, B.R.Stats.GlobalBytes);
  EXPECT_EQ(A.R.Stats.GlobalTransactions, B.R.Stats.GlobalTransactions);
  EXPECT_EQ(A.R.Stats.ReplayPenalties, B.R.Stats.ReplayPenalties);
  EXPECT_EQ(A.R.Stats.SharedConflictEvents,
            B.R.Stats.SharedConflictEvents);
  EXPECT_EQ(A.R.Stats.BarrierWaits, B.R.Stats.BarrierWaits);
  EXPECT_EQ(A.R.Stats.IdleCycles, B.R.Stats.IdleCycles);
  EXPECT_EQ(A.R.Stats.DualIssues, B.R.Stats.DualIssues);
  EXPECT_EQ(A.R.Stats.AggregateCycles, B.R.Stats.AggregateCycles);
  for (size_t U = 0; U < NumSlotUses; ++U)
    EXPECT_EQ(A.R.Stats.Breakdown.Slots[U], B.R.Stats.Breakdown.Slots[U])
        << "slot cause " << slotUseName(static_cast<SlotUse>(U));
}

/// The issue-slot accounting identity: every cycle, every scheduler,
/// exactly one cause. Checked against AggregateCycles (which sums under
/// the concurrent merge) rather than Cycles (which max-merges).
void expectIssueSlotInvariant(const MachineDesc &M, const SimStats &S) {
  uint64_t Scheds =
      static_cast<uint64_t>(M.WarpSchedulersPerSM > 1
                                ? M.WarpSchedulersPerSM
                                : 1);
  EXPECT_EQ(S.Breakdown.total(), S.AggregateCycles * Scheds);
  EXPECT_GT(S.Breakdown.slots(SlotUse::Issued), 0u);
}

TEST(ParallelSim, FermiFullSimBitIdenticalAcrossJobs) {
  FullRun Serial = runTunedNN(gtx580(), 1);
  ASSERT_TRUE(Serial.Ok) << Serial.Error;
  EXPECT_GT(Serial.R.WavesSimulated, 1) << "want a multi-wave launch";
  for (int Jobs : {2, 8, 0})
    expectIdentical(Serial, runTunedNN(gtx580(), Jobs), Jobs);
}

TEST(ParallelSim, KeplerFullSimBitIdenticalAcrossJobs) {
  FullRun Serial = runTunedNN(gtx680(), 1);
  ASSERT_TRUE(Serial.Ok) << Serial.Error;
  for (int Jobs : {8})
    expectIdentical(Serial, runTunedNN(gtx680(), Jobs), Jobs);
}

TEST(ParallelSim, IssueSlotBreakdownInvariantAndJobsIdentical) {
  // The acceptance property of the stall-attribution layer on the
  // paper's headline workload (BR=6 Kepler SGEMM): per-cause slots sum
  // to aggregate SM-cycles x schedulers, and the whole breakdown is
  // bit-identical for --jobs 1 and --jobs 4. Fermi checked too, where
  // schedulers=2 exercises the multi-scheduler accounting differently.
  for (const MachineDesc *M : {&gtx680(), &gtx580()}) {
    FullRun J1 = runTunedNN(*M, 1);
    FullRun J4 = runTunedNN(*M, 4);
    ASSERT_TRUE(J1.Ok) << J1.Error;
    ASSERT_TRUE(J4.Ok) << J4.Error;
    SCOPED_TRACE(M->Name);
    expectIssueSlotInvariant(*M, J1.R.Stats);
    expectIdentical(J1, J4, 4);
  }
}

TEST(ParallelSim, WatchdogTrapIdenticalAcrossJobs) {
  // A tiny watchdog makes the launch fail mid-grid. The parallel path
  // must report the same trap as the serial path AND leave the same
  // partial writes in memory (the work of SMs before the failing one,
  // plus the failing SM's completed portion).
  FullRun Serial = runTunedNN(gtx580(), 1, /*WatchdogCycles=*/2000);
  ASSERT_FALSE(Serial.Ok);
  ASSERT_TRUE(Serial.Trap.valid()) << Serial.Error;
  EXPECT_EQ(Serial.Trap.Kind, TrapKind::WatchdogTimeout);
  for (int Jobs : {2, 8})
    expectIdentical(Serial, runTunedNN(gtx580(), Jobs, 2000), Jobs);
}

//===----------------------------------------------------------------------===//
// FaultInjector batch parallelism
//===----------------------------------------------------------------------===//

/// The FaultInjectionTest fixture's target, reduced: mutants of the
/// tuned Fermi kernel, parallelized per-mutant by runBatch.
class ParallelFaultBatch : public ::testing::Test {
protected:
  void SetUp() override {
    const MachineDesc &M = gtx580();
    SgemmKernelConfig Cfg = baselineConfig(SgemmImpl::AsmTuned, M,
                                           GemmVariant::NN, 192, 192, 64);
    auto K = generateSgemmKernel(M, Cfg);
    ASSERT_TRUE(K.hasValue()) << K.message();

    Module Mod;
    Mod.Arch = GpuGeneration::Fermi;
    Mod.Kernels.push_back(K.take());

    GlobalMemory Layout(0);
    auto AAddr = Layout.tryAllocate(size_t(192) * 64 * 4);
    auto BAddr = Layout.tryAllocate(size_t(64) * 192 * 4);
    auto CAddr = Layout.tryAllocate(size_t(192) * 192 * 4);
    ASSERT_TRUE(AAddr.hasValue() && BAddr.hasValue() &&
                CAddr.hasValue());

    SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
    LaunchConfig Launch;
    Launch.Dims.GridX = Shape.GridX;
    Launch.Dims.GridY = Shape.GridY;
    Launch.Dims.BlockX = Shape.BlockX;
    Launch.Params = {*AAddr, *BAddr, *CAddr, 0x3f800000u, 0u};
    Launch.Mode = SimMode::Full;

    FI.emplace(M, std::move(Mod), Launch, Layout.size());
  }

  std::optional<FaultInjector> FI;
};

TEST_F(ParallelFaultBatch, BatchSignaturesMatchSequentialAtEveryJobs) {
  std::vector<FaultPlan> Plans;
  for (FaultKind Kind :
       {FaultKind::CodeBitFlip, FaultKind::BranchRetarget,
        FaultKind::SharedShrink, FaultKind::AddressScramble})
    for (uint64_t Seed = 0; Seed < 3; ++Seed)
      Plans.push_back({Kind, Seed, 1});

  std::vector<std::string> Expected;
  for (const FaultPlan &P : Plans)
    Expected.push_back(FI->runOne(P).signature());

  for (int Jobs : {1, 8}) {
    auto Runs = FI->runBatch(Plans, Jobs);
    ASSERT_EQ(Runs.size(), Plans.size());
    for (size_t I = 0; I < Runs.size(); ++I)
      EXPECT_EQ(Runs[I].signature(), Expected[I])
          << "plan " << I << " (" << faultKindName(Plans[I].Kind)
          << " seed " << Plans[I].Seed << ") jobs " << Jobs;
  }
}

} // namespace
