//===- tests/RobustnessTest.cpp - fuzz and determinism tests --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hostile-input and determinism properties: the decoder and module
/// parser must reject garbage gracefully (no crashes, no silent
/// acceptance of invalid state), the assembler must diagnose mutated
/// sources, and the simulator must be bit-and-cycle deterministic.
///
//===----------------------------------------------------------------------===//

#include "asmtool/Assembler.h"
#include "isa/Encoding.h"
#include "isa/Module.h"
#include "sgemm/SgemmRunner.h"
#include "ubench/PerfDatabase.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace gpuperf;

TEST(Fuzz, DecoderHandlesRandomWords) {
  Rng R(2026);
  int Accepted = 0;
  for (int Trial = 0; Trial < 50000; ++Trial) {
    uint64_t Word = R.next();
    auto I = decodeInstruction(Word);
    if (!I.hasValue())
      continue;
    ++Accepted;
    // Anything accepted must re-encode into a decodable word whose
    // decode agrees (idempotence of the canonical form).
    uint64_t Reencoded = encodeInstruction(*I);
    auto Again = decodeInstruction(Reencoded);
    ASSERT_TRUE(Again.hasValue());
    EXPECT_EQ(encodeInstruction(*Again), Reencoded);
  }
  // Plenty of random words are valid (the opcode space is dense), but
  // not all (invalid opcodes/width/compare fields are rejected).
  EXPECT_GT(Accepted, 1000);
  EXPECT_LT(Accepted, 50000);
}

TEST(Fuzz, ModuleParserHandlesRandomBytes) {
  Rng R(7);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    std::vector<uint8_t> Bytes(R.nextBelow(200));
    for (uint8_t &B : Bytes)
      B = static_cast<uint8_t>(R.next());
    auto M = Module::deserialize(Bytes); // Must not crash.
    (void)M;
  }
}

TEST(Fuzz, ModuleParserHandlesTruncationsOfValidModule) {
  Module M;
  M.Arch = GpuGeneration::Kepler;
  Kernel K;
  K.Name = "k";
  for (int I = 0; I < 20; ++I)
    K.Code.push_back(makeFADD(1, 0, 0));
  K.Code.push_back(makeEXIT());
  K.recomputeRegUsage();
  K.addDefaultNotations();
  M.Kernels.push_back(K);
  std::vector<uint8_t> Bytes = M.serialize();
  for (size_t Cut = 0; Cut < Bytes.size(); Cut += 3) {
    std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(Module::deserialize(Truncated).hasValue());
  }
}

TEST(Fuzz, ModuleParserHandlesBitFlips) {
  Module M;
  M.Arch = GpuGeneration::Fermi;
  Kernel K;
  K.Name = "k";
  K.Code = {makeMOV32I(0, 1), makeEXIT()};
  K.recomputeRegUsage();
  M.Kernels.push_back(K);
  std::vector<uint8_t> Bytes = M.serialize();
  for (size_t Byte = 0; Byte < Bytes.size(); ++Byte)
    for (int Bit = 0; Bit < 8; Bit += 3) {
      std::vector<uint8_t> Mutated = Bytes;
      Mutated[Byte] ^= static_cast<uint8_t>(1 << Bit);
      auto Back = Module::deserialize(Mutated); // No crash; any result.
      (void)Back;
    }
}

TEST(Fuzz, AssemblerHandlesMutatedSource) {
  std::string Source = ".arch GTX580\n"
                       ".kernel k\n"
                       "  S2R R0, SR_TID.X\n"
                       "  FFMA R4, R2, R3, R4\n"
                       "  ISETP.NE P0, R0, RZ\n"
                       "  @P0 BRA done\n"
                       "done:\n"
                       "  EXIT\n"
                       ".end\n";
  Rng R(99);
  for (int Trial = 0; Trial < 500; ++Trial) {
    std::string Mutated = Source;
    // Swap, delete or garble a few characters.
    for (int Edit = 0; Edit < 3; ++Edit) {
      size_t Pos = R.nextBelow(Mutated.size());
      switch (R.nextBelow(3)) {
      case 0:
        Mutated[Pos] = static_cast<char>(33 + R.nextBelow(90));
        break;
      case 1:
        Mutated.erase(Pos, 1);
        break;
      default:
        Mutated.insert(Pos, 1, static_cast<char>(33 + R.nextBelow(90)));
        break;
      }
    }
    auto M = assembleText(Mutated); // Must not crash.
    if (!M.hasValue()) {
      EXPECT_FALSE(M.message().empty());
    }
  }
}

namespace {

/// A small kernel exercising every trap-relevant path: tid math, global
/// loads/stores, shared stores/loads, a barrier and a counted loop.
Kernel makeLoopyMemoryKernel() {
  Kernel K;
  K.Name = "loopy";
  K.SharedBytes = 1024;
  K.Code = {
      makeS2R(0, SpecialReg::TID_X),       // R0 = tid
      makeSHLImm(1, 0, 2),                 // R1 = tid * 4
      makeMOV32I(2, 256),                  // R2 = global base
      makeIADD(2, 2, 1),                   // R2 = base + tid*4
      makeMOV32I(5, 0),                    // R5 = loop counter
      makeMOV32I(6, 4),                    // R6 = trip count
      // loop:
      makeLD(MemWidth::B32, 3, 2, 0),      // R3 = global[R2]
      makeSTS(MemWidth::B32, 1, 0, 3),     // shared[R1] = R3
      makeBAR(),
      makeLDS(MemWidth::B32, 4, 1, 0),     // R4 = shared[R1]
      makeST(MemWidth::B32, 2, 0x100, 4),  // global[R2+0x100] = R4
      makeIADDImm(5, 5, 1),                // ++R5
      makeISETP(CmpOp::LT, 0, 5, 6),       // P0 = R5 < R6
      makeBRA(-8, 0, false),               // @P0 back to loop
      makeEXIT(),
  };
  K.recomputeRegUsage();
  return K;
}

} // namespace

TEST(Fuzz, BitFlippedKernelsExecuteWithoutCrashing) {
  Module M;
  M.Arch = GpuGeneration::Fermi;
  M.Kernels.push_back(makeLoopyMemoryKernel());
  std::vector<uint8_t> Bytes = M.serialize();

  LaunchConfig Config;
  Config.Dims.GridX = 2;
  Config.Dims.BlockX = 64;
  Config.WatchdogCycles = 1 << 16;

  enum { LoaderReject, LaunchReject, Completed, Trapped };
  auto RunMutant = [&](const std::vector<uint8_t> &Mutated,
                       TrapInfo &Trap) {
    auto Mod = Module::deserialize(Mutated);
    if (!Mod.hasValue() || Mod->Kernels.empty())
      return +LoaderReject; // Nothing to execute.
    GlobalMemory GM(1 << 16);
    auto R = launchKernel(gtx580(), Mod->Kernels[0], Config, GM, &Trap);
    if (R.hasValue())
      return +Completed;
    // A failed launch is either a structured runtime trap or an
    // unlaunchable-configuration rejection with a diagnostic.
    if (!Trap.valid()) {
      EXPECT_FALSE(R.message().empty());
      return +LaunchReject;
    }
    return +Trapped;
  };

  Rng R(2013);
  int Executed = 0, TrappedRuns = 0;
  for (int Trial = 0; Trial < 600; ++Trial) {
    std::vector<uint8_t> Mutated = Bytes;
    for (int Flip = 0, N = 1 + static_cast<int>(R.nextBelow(2)); Flip < N;
         ++Flip) {
      size_t Byte = R.nextBelow(Mutated.size());
      Mutated[Byte] ^= static_cast<uint8_t>(1u << R.nextBelow(8));
    }
    TrapInfo Trap;
    int Outcome = RunMutant(Mutated, Trap);
    if (Outcome == LoaderReject)
      continue;
    ++Executed;
    if (Outcome != Trapped)
      continue;
    ++TrappedRuns;
    // Every trap must be fully populated...
    EXPECT_FALSE(Trap.KernelName.empty());
    EXPECT_GE(Trap.WarpId, 0);
    // ...and the same mutant must trap identically on a re-run.
    TrapInfo Again;
    ASSERT_EQ(RunMutant(Mutated, Again), Trapped);
    EXPECT_EQ(Again.Kind, Trap.Kind);
    EXPECT_EQ(Again.PC, Trap.PC);
    EXPECT_EQ(Again.Cycle, Trap.Cycle);
    EXPECT_EQ(Again.WarpId, Trap.WarpId);
  }
  // The seeded batch must actually exercise execution and trapping.
  EXPECT_GT(Executed, 100);
  EXPECT_GT(TrappedRuns, 10);
}

TEST(Determinism, RepeatedLaunchesAgreeExactly) {
  SgemmProblem P;
  P.M = P.N = 192;
  P.K = 64;
  SgemmRunOptions O;
  O.Mode = SimMode::Full;
  auto A = runSgemm(gtx680(), SgemmImpl::AsmTuned, P, O);
  auto B = runSgemm(gtx680(), SgemmImpl::AsmTuned, P, O);
  ASSERT_TRUE(A.hasValue() && B.hasValue());
  EXPECT_EQ(A->Launch.TotalCycles, B->Launch.TotalCycles);
  EXPECT_EQ(A->Launch.Stats.ThreadInstsIssued,
            B->Launch.Stats.ThreadInstsIssued);
  EXPECT_EQ(A->Launch.Stats.ReplayPenalties,
            B->Launch.Stats.ReplayPenalties);
}

TEST(Determinism, SeedChangesDataNotTiming) {
  // SGEMM control flow is data-independent: different matrix contents
  // must not change the cycle count.
  SgemmProblem P;
  P.M = P.N = 192;
  P.K = 64;
  SgemmRunOptions O;
  O.Mode = SimMode::Full;
  O.Seed = 1;
  auto A = runSgemm(gtx580(), SgemmImpl::AsmTuned, P, O);
  O.Seed = 999;
  auto B = runSgemm(gtx580(), SgemmImpl::AsmTuned, P, O);
  ASSERT_TRUE(A.hasValue() && B.hasValue());
  EXPECT_EQ(A->Launch.TotalCycles, B->Launch.TotalCycles);
}

TEST(Robustness, K20XMachineIsConsistent) {
  const MachineDesc &M = teslaK20X();
  EXPECT_EQ(M.MaxRegsPerThread, 255);
  EXPECT_NEAR(M.theoreticalPeakGflops(), 3935, 20);
  EXPECT_EQ(findMachine("K20X"), &M);
  EXPECT_EQ(findMachine("gk110"), &M);
}

TEST(Robustness, MixBenchRunsOnK20X) {
  // The projection machine must be simulatable for the model's
  // microbenchmarks (its ISA limit only affects occupancy math).
  PerfDatabase DB(teslaK20X());
  EXPECT_GT(DB.mixThroughput(6, MemWidth::B64, true, 1024, 6), 50.0);
}
