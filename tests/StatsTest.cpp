//===- tests/StatsTest.cpp - SimStats merge and rate invariants -----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the SimStats merge semantics that the stall-attribution layer
/// depends on: addSequential sums Cycles, addConcurrent max-merges Cycles
/// (chip makespan), and BOTH sum AggregateCycles and the issue-slot
/// breakdown -- so per-SM-cycle rates and the issue-slot identity stay
/// well-defined whichever way waves and SMs were combined. This is the
/// regression test for the historical addConcurrent bug where summed
/// counters were divided by a max-merged cycle count.
///
//===----------------------------------------------------------------------===//

#include "sim/Stats.h"

#include <gtest/gtest.h>

using namespace gpuperf;

namespace {

/// A hand-built single-wave stats record satisfying the issue-slot
/// identity for \p Scheds schedulers.
SimStats makeWave(uint64_t Cycles, uint64_t Issued, uint64_t Insts,
                  int Scheds) {
  SimStats S;
  S.Cycles = Cycles;
  S.AggregateCycles = Cycles;
  S.ThreadInstsIssued = Insts;
  S.WarpInstsIssued = Issued;
  S.IdleCycles = Cycles / 4;
  S.Breakdown[SlotUse::Issued] = Issued;
  S.Breakdown[SlotUse::Scoreboard] =
      Cycles * static_cast<uint64_t>(Scheds) - Issued;
  return S;
}

TEST(StallBreakdown, TotalLostAndEquality) {
  StallBreakdown B;
  B[SlotUse::Issued] = 10;
  B[SlotUse::Scoreboard] = 5;
  B[SlotUse::Barrier] = 1;
  EXPECT_EQ(B.total(), 16u);
  EXPECT_EQ(B.lost(), 6u);
  StallBreakdown C = B;
  EXPECT_TRUE(B == C);
  C[SlotUse::LdsThroughput] += 1;
  EXPECT_FALSE(B == C);
  C.add(B);
  EXPECT_EQ(C.total(), 33u);
}

TEST(SimStats, SequentialMergeSumsCycles) {
  SimStats A = makeWave(100, 120, 3840, 2);
  SimStats B = makeWave(50, 60, 1920, 2);
  SimStats Sum;
  Sum.addSequential(A);
  Sum.addSequential(B);
  EXPECT_EQ(Sum.Cycles, 150u);
  EXPECT_EQ(Sum.AggregateCycles, 150u);
  EXPECT_EQ(Sum.perSMCycles(), 150u);
  EXPECT_EQ(Sum.ThreadInstsIssued, 5760u);
  EXPECT_EQ(Sum.Breakdown.total(), 300u);
  EXPECT_DOUBLE_EQ(Sum.threadInstsPerCycle(), 5760.0 / 150.0);
}

TEST(SimStats, ConcurrentMergeMaxesCyclesButSumsAggregate) {
  SimStats A = makeWave(100, 120, 3840, 2);
  SimStats B = makeWave(50, 60, 1920, 2);
  SimStats Chip;
  Chip.addConcurrent(A);
  Chip.addConcurrent(B);
  // Makespan semantics for Cycles...
  EXPECT_EQ(Chip.Cycles, 100u);
  // ...but the denominators of per-SM-cycle rates keep summing, so the
  // merged rate is the true average over all simulated SM-cycles rather
  // than an overestimate divided by the slowest SM alone.
  EXPECT_EQ(Chip.AggregateCycles, 150u);
  EXPECT_EQ(Chip.perSMCycles(), 150u);
  EXPECT_DOUBLE_EQ(Chip.threadInstsPerCycle(), 5760.0 / 150.0);
  EXPECT_DOUBLE_EQ(Chip.idleFraction(), (25.0 + 12.0) / 150.0);
  // The issue-slot identity survives the concurrent merge (it would not
  // against max-merged Cycles).
  EXPECT_EQ(Chip.Breakdown.total(), Chip.AggregateCycles * 2);
}

TEST(SimStats, MergeOrderIndependence) {
  // Chip-level stats must not depend on the order SMs are merged in --
  // the parallel launch path relies on this only for the counters
  // (traces and memory are merged in SM index order separately).
  SimStats A = makeWave(100, 120, 3840, 2);
  SimStats B = makeWave(50, 60, 1920, 2);
  SimStats C = makeWave(75, 100, 3000, 2);
  SimStats AB, BA;
  AB.addConcurrent(A);
  AB.addConcurrent(B);
  AB.addConcurrent(C);
  BA.addConcurrent(C);
  BA.addConcurrent(B);
  BA.addConcurrent(A);
  EXPECT_EQ(AB.Cycles, BA.Cycles);
  EXPECT_EQ(AB.AggregateCycles, BA.AggregateCycles);
  EXPECT_EQ(AB.ThreadInstsIssued, BA.ThreadInstsIssued);
  EXPECT_TRUE(AB.Breakdown == BA.Breakdown);
}

TEST(SimStats, MixedMergeKeepsIdentityWellDefined) {
  // Waves merge sequentially inside an SM, then SMs merge concurrently
  // into the chip: the identity must hold end to end.
  SimStats SM0, SM1;
  SM0.addSequential(makeWave(100, 120, 3840, 2));
  SM0.addSequential(makeWave(80, 100, 3200, 2));
  SM1.addSequential(makeWave(90, 110, 3520, 2));
  SimStats Chip;
  Chip.addConcurrent(SM0);
  Chip.addConcurrent(SM1);
  EXPECT_EQ(Chip.Cycles, 180u);          // Slowest SM.
  EXPECT_EQ(Chip.AggregateCycles, 270u); // All simulated SM-cycles.
  EXPECT_EQ(Chip.Breakdown.total(), 270u * 2);
}

TEST(SimStats, RatesDefinedOnEmptyAndHandBuiltStats) {
  SimStats Empty;
  EXPECT_DOUBLE_EQ(Empty.threadInstsPerCycle(), 0.0);
  EXPECT_DOUBLE_EQ(Empty.idleFraction(), 0.0);
  // Hand-built stats (tests, external tools) that only set Cycles still
  // get sane rates through the perSMCycles() fallback.
  SimStats Hand;
  Hand.Cycles = 100;
  Hand.ThreadInstsIssued = 500;
  EXPECT_DOUBLE_EQ(Hand.threadInstsPerCycle(), 5.0);
}

} // namespace
