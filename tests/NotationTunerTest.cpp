//===- tests/NotationTunerTest.cpp - control-notation tuner tests ---------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "asmtool/NotationTuner.h"

#include <gtest/gtest.h>

using namespace gpuperf;

namespace {

Kernel chainKernel() {
  // R4 = R1 * R2 + R4; consumer immediately follows producer.
  Kernel K;
  K.Name = "chain";
  K.Code = {
      makeFFMA(4, 1, 2, 4),
      makeFFMA(6, 4, 2, 6), // Reads R4 right away.
      makeEXIT(),
  };
  K.recomputeRegUsage();
  return K;
}

ControlField fieldOf(const Kernel &K, size_t Idx) {
  return K.Notations[Idx / NotationGroupSize]
      .Fields[Idx % NotationGroupSize];
}

} // namespace

TEST(NotationTuner, QualityNames) {
  EXPECT_STREQ(notationQualityName(NotationQuality::None), "none");
  EXPECT_STREQ(notationQualityName(NotationQuality::Heuristic),
               "heuristic");
  EXPECT_STREQ(notationQualityName(NotationQuality::Tuned), "tuned");
  EXPECT_EQ(parseNotationQuality("tuned"), NotationQuality::Tuned);
  EXPECT_EQ(parseNotationQuality("none"), NotationQuality::None);
  EXPECT_EQ(parseNotationQuality("whatever"),
            NotationQuality::Heuristic);
}

TEST(NotationTuner, NoOpOnFermi) {
  Kernel K = chainKernel();
  tuneNotations(gtx580(), K, NotationQuality::Tuned);
  EXPECT_FALSE(K.hasNotations());
}

TEST(NotationTuner, NoneClearsNotations) {
  Kernel K = chainKernel();
  K.addDefaultNotations();
  tuneNotations(gtx680(), K, NotationQuality::None);
  EXPECT_FALSE(K.hasNotations());
}

TEST(NotationTuner, TunedStallsCoverMathLatency) {
  Kernel K = chainKernel();
  tuneNotations(gtx680(), K, NotationQuality::Tuned);
  ASSERT_TRUE(K.hasNotations());
  // The producer's field must stall long enough that the dependent FFMA
  // issues MathLatency cycles later (clamped to the 4-bit field).
  ControlField F = fieldOf(K, 0);
  EXPECT_GE(F.StallCycles,
            std::min(gtx680().MathLatency - 1, 15));
  EXPECT_FALSE(F.DualIssue); // A stalled pair cannot dual-issue.
}

TEST(NotationTuner, TunedMarksIndependentPairsDualIssue) {
  Kernel K;
  K.Code = {
      makeFFMA(4, 1, 2, 4),
      makeFFMA(6, 1, 2, 6), // Independent of the first.
      makeEXIT(),
  };
  K.recomputeRegUsage();
  tuneNotations(gtx680(), K, NotationQuality::Tuned);
  EXPECT_TRUE(fieldOf(K, 0).DualIssue);
  EXPECT_EQ(fieldOf(K, 0).StallCycles, 0);
}

TEST(NotationTuner, TunedYieldsBeforeMemoryConsumers) {
  Kernel K;
  K.SharedBytes = 64;
  K.Code = {
      makeLDS(MemWidth::B64, 4, 0, 0),
      makeMOV(10, 11),
      makeFFMA(6, 4, 2, 6), // Consumes the loaded R4.
      makeEXIT(),
  };
  K.recomputeRegUsage();
  tuneNotations(gtx680(), K, NotationQuality::Tuned);
  // The instruction just before the consumer carries the yield flag so
  // the scoreboard wait is penalty-free.
  EXPECT_TRUE(fieldOf(K, 1).Yield);
}

TEST(NotationTuner, TunedDistanceReducesStall) {
  // With independent instructions between producer and consumer, the
  // needed stall shrinks.
  Kernel K;
  K.Code = {makeFFMA(4, 1, 2, 4)};
  for (int Pad = 0; Pad < 6; ++Pad)
    K.Code.push_back(
        makeFFMA(static_cast<uint8_t>(10 + 2 * Pad), 1, 2,
                 static_cast<uint8_t>(10 + 2 * Pad)));
  K.Code.push_back(makeFFMA(6, 4, 2, 6)); // Consumer, 6 insts later.
  K.Code.push_back(makeEXIT());
  K.recomputeRegUsage();
  tuneNotations(gtx680(), K, NotationQuality::Tuned);
  // Producer itself needs no long stall; the residual deficit lands on
  // the instruction right before the consumer.
  EXPECT_EQ(fieldOf(K, 0).StallCycles, 0);
  EXPECT_LE(fieldOf(K, 6).StallCycles, gtx680().MathLatency - 6);
}

TEST(NotationTuner, HeuristicIsPerOpcodeClass) {
  Kernel K;
  K.SharedBytes = 64;
  K.Code = {
      makeFFMA(4, 1, 2, 4),
      makeLDS(MemWidth::B64, 6, 0, 0),
      makeBRA(0),
      makeEXIT(),
  };
  K.recomputeRegUsage();
  tuneNotations(gtx680(), K, NotationQuality::Heuristic);
  EXPECT_TRUE(fieldOf(K, 0).DualIssue);  // Math: dual, no stall.
  EXPECT_EQ(fieldOf(K, 0).StallCycles, 0);
  EXPECT_FALSE(fieldOf(K, 1).DualIssue); // Memory: plain.
  EXPECT_EQ(fieldOf(K, 2).StallCycles, 1); // Control: short stall.
}

TEST(NotationTuner, CoversWholeKernel) {
  Kernel K;
  for (int I = 0; I < 23; ++I) // More than three notation groups.
    K.Code.push_back(makeFADD(1, 0, 0));
  K.Code.push_back(makeEXIT());
  K.recomputeRegUsage();
  tuneNotations(gtx680(), K, NotationQuality::Tuned);
  EXPECT_EQ(K.Notations.size(), K.requiredNotationCount());
}
