//===- tests/SweepSupervisorTest.cpp - supervised, resumable sweeps -------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep engine's supervision and resume contract: transient
/// failures retry with exponential backoff, timeouts retry with a
/// doubled deadline, deterministic failures quarantine immediately, a
/// hostile point degrades the sweep to an explicit incomplete list
/// instead of aborting it, and --resume serves checkpointed points
/// without ever re-running them -- with the combined output (rows and
/// digest) bit-identical to an uninterrupted run.
///
//===----------------------------------------------------------------------===//

#include "ubench/SweepRunner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>

using namespace gpuperf;

namespace {

/// Rows a healthy point I produces (deterministic, index-dependent).
std::vector<std::string> rowsFor(size_t I) {
  return {"point " + std::to_string(I), std::to_string(I * I)};
}

class SweepSupervisor : public ::testing::Test {
protected:
  void SetUp() override {
    CkptPath =
        testing::TempDir() + "gpuperf_sweep_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".ckpt";
    std::remove(CkptPath.c_str());
    // Retries must not actually sleep in unit tests. The hook can fire
    // from sweep worker threads, so the log is mutex-guarded.
    Supervisor::setSleepFnForTesting([this](int Ms) {
      std::lock_guard<std::mutex> Lock(SleepMutex);
      Sleeps.push_back(Ms);
    });
  }
  void TearDown() override {
    Supervisor::setSleepFnForTesting(nullptr);
    std::remove(CkptPath.c_str());
  }

  SweepOptions serialOptions(int MaxAttempts = 1) {
    SweepOptions O;
    O.Jobs = 1;
    O.Policy.MaxAttempts = MaxAttempts;
    return O;
  }

  std::string CkptPath;
  std::mutex SleepMutex;
  std::vector<int> Sleeps;
};

TEST_F(SweepSupervisor, HealthySweepMatchesUnsupervisedOutput) {
  // The identity requirement: with every point healthy, the supervised
  // engine's rows are exactly what a plain runSweep produces, for any
  // job count.
  for (int Jobs : {1, 4}) {
    SweepOptions O = serialOptions(3);
    O.Jobs = Jobs;
    SweepResult R = runSupervisedSweep(
        O, "healthy", 8,
        [](size_t I, const Supervisor::Attempt &) {
          return SweepPointAttempt::ok(rowsFor(I));
        });
    ASSERT_TRUE(R.Report.complete());
    EXPECT_EQ(R.Report.Completed, 8u);
    EXPECT_EQ(R.Report.Resumed, 0u);
    for (size_t I = 0; I < 8; ++I) {
      ASSERT_TRUE(R.Rows[I].has_value());
      EXPECT_EQ(*R.Rows[I], rowsFor(I)) << "point " << I;
    }
  }
}

TEST_F(SweepSupervisor, TransientFailuresRetryUntilSuccess) {
  std::atomic<int> Attempts{0};
  SweepResult R = runSupervisedSweep(
      serialOptions(3), "transient", 1,
      [&](size_t I, const Supervisor::Attempt &A) {
        ++Attempts;
        if (A.Index < 2)
          return SweepPointAttempt::transient("simulated contention");
        return SweepPointAttempt::ok(rowsFor(I));
      });
  EXPECT_TRUE(R.Report.complete());
  EXPECT_EQ(Attempts.load(), 3);
  ASSERT_TRUE(R.Rows[0].has_value());
  EXPECT_EQ(*R.Rows[0], rowsFor(0));
  EXPECT_EQ(Sleeps.size(), 2u) << "each retry backs off once";
}

TEST_F(SweepSupervisor, ExhaustedRetriesReportFailedPoint) {
  SweepResult R = runSupervisedSweep(
      serialOptions(3), "exhausted", 3,
      [&](size_t I, const Supervisor::Attempt &) {
        if (I == 1)
          return SweepPointAttempt::transient("always failing");
        return SweepPointAttempt::ok(rowsFor(I));
      });
  // The sweep completes minus an explicit incomplete list -- it never
  // aborts, and healthy points are unaffected.
  EXPECT_FALSE(R.Report.complete());
  EXPECT_EQ(R.Report.Completed, 2u);
  ASSERT_EQ(R.Report.Incomplete.size(), 1u);
  EXPECT_EQ(R.Report.Incomplete[0].Point, 1u);
  EXPECT_EQ(R.Report.Incomplete[0].Result, TaskOutcome::State::Failed);
  EXPECT_EQ(R.Report.Incomplete[0].Attempts, 3);
  EXPECT_EQ(R.Report.Incomplete[0].Reason, "always failing");
  EXPECT_FALSE(R.Rows[1].has_value());
  EXPECT_TRUE(R.Rows[0].has_value());
  EXPECT_TRUE(R.Rows[2].has_value());
}

TEST_F(SweepSupervisor, FatalFailuresQuarantineWithoutRetry) {
  std::atomic<int> Attempts{0};
  SweepResult R = runSupervisedSweep(
      serialOptions(5), "fatal", 1,
      [&](size_t, const Supervisor::Attempt &) {
        ++Attempts;
        return SweepPointAttempt::fatal("deterministic trap");
      });
  ASSERT_EQ(R.Report.Incomplete.size(), 1u);
  EXPECT_EQ(R.Report.Incomplete[0].Result, TaskOutcome::State::Quarantined);
  EXPECT_EQ(Attempts.load(), 1)
      << "a deterministic failure must never be retried";
  EXPECT_TRUE(Sleeps.empty());
}

TEST_F(SweepSupervisor, TimeoutsEscalateTheDeadline) {
  std::vector<uint64_t> Deadlines;
  SweepOptions O = serialOptions(3);
  O.Policy.DeadlineCycles = 100;
  SweepResult R = runSupervisedSweep(
      O, "deadline", 1,
      [&](size_t I, const Supervisor::Attempt &A) {
        Deadlines.push_back(A.DeadlineCycles);
        if (A.Index < 2)
          return SweepPointAttempt::timeout("watchdog fired");
        return SweepPointAttempt::ok(rowsFor(I));
      });
  EXPECT_TRUE(R.Report.complete());
  // The per-launch watchdog escalation: each retry of a timed-out point
  // doubles the cycle budget.
  EXPECT_EQ(Deadlines, (std::vector<uint64_t>{100, 200, 400}));
}

TEST_F(SweepSupervisor, BackoffScheduleIsExponentialAndCapped) {
  EXPECT_EQ(Supervisor::backoffMs({4, 3, 1000, 0}, 1), 3);
  EXPECT_EQ(Supervisor::backoffMs({4, 3, 1000, 0}, 2), 6);
  EXPECT_EQ(Supervisor::backoffMs({4, 3, 1000, 0}, 3), 12);
  EXPECT_EQ(Supervisor::backoffMs({8, 3, 20, 0}, 5), 20) << "capped";
  EXPECT_EQ(Supervisor::backoffMs({4, 0, 1000, 0}, 3), 0)
      << "base 0 disables sleeping";

  std::atomic<int> Attempts{0};
  SweepOptions O = serialOptions(4);
  O.Policy.BackoffBaseMs = 7;
  O.Policy.BackoffCapMs = 1000;
  runSupervisedSweep(O, "backoff", 1,
                     [&](size_t, const Supervisor::Attempt &) {
                       ++Attempts;
                       return SweepPointAttempt::transient("again");
                     });
  EXPECT_EQ(Attempts.load(), 4);
  EXPECT_EQ(Sleeps, (std::vector<int>{7, 14, 28}));
}

TEST_F(SweepSupervisor, CheckpointPreventsDoubleRuns) {
  std::atomic<int> Runs{0};
  auto Point = [&](size_t I, const Supervisor::Attempt &) {
    ++Runs;
    return SweepPointAttempt::ok(rowsFor(I));
  };
  uint64_t FirstHash;
  {
    SweepCheckpoint Ckpt(CkptPath, /*Resume=*/false);
    SweepOptions O = serialOptions();
    O.Checkpoint = &Ckpt;
    SweepResult R = runSupervisedSweep(O, "sweep", 5, Point);
    EXPECT_EQ(R.Report.Completed, 5u);
    EXPECT_EQ(Runs.load(), 5);
    FirstHash = R.Report.RowsHash;
  }
  // Resume with every point recorded: zero invocations, same rows, and
  // the digest matches the uninterrupted run exactly.
  SweepCheckpoint Ckpt(CkptPath, /*Resume=*/true);
  EXPECT_EQ(Ckpt.recordCount(), 5u);
  SweepOptions O = serialOptions();
  O.Checkpoint = &Ckpt;
  SweepResult R = runSupervisedSweep(O, "sweep", 5, Point);
  EXPECT_EQ(Runs.load(), 5) << "no completed point may ever re-run";
  EXPECT_EQ(R.Report.Completed, 5u);
  EXPECT_EQ(R.Report.Resumed, 5u);
  EXPECT_EQ(R.Report.RowsHash, FirstHash);
  for (size_t I = 0; I < 5; ++I) {
    ASSERT_TRUE(R.Rows[I].has_value());
    EXPECT_EQ(*R.Rows[I], rowsFor(I));
  }
}

TEST_F(SweepSupervisor, ResumeRunsOnlyTheMissingPoints) {
  // First run: point 2 is hostile (quarantined), the rest complete and
  // are checkpointed.
  {
    SweepCheckpoint Ckpt(CkptPath, false);
    SweepOptions O = serialOptions();
    O.Checkpoint = &Ckpt;
    SweepResult R = runSupervisedSweep(
        O, "sweep", 5,
        [](size_t I, const Supervisor::Attempt &) {
          if (I == 2)
            return SweepPointAttempt::fatal("hostile point");
          return SweepPointAttempt::ok(rowsFor(I));
        });
    EXPECT_EQ(R.Report.Completed, 4u);
    ASSERT_EQ(R.Report.Incomplete.size(), 1u);
  }
  // Resumed run with the point healthy again: exactly one invocation,
  // and the combined result equals a full uninterrupted run's.
  std::atomic<int> Runs{0};
  SweepCheckpoint Ckpt(CkptPath, true);
  EXPECT_EQ(Ckpt.recordCount(), 4u);
  SweepOptions O = serialOptions();
  O.Checkpoint = &Ckpt;
  SweepResult R = runSupervisedSweep(
      O, "sweep", 5,
      [&](size_t I, const Supervisor::Attempt &) {
        ++Runs;
        return SweepPointAttempt::ok(rowsFor(I));
      });
  EXPECT_EQ(Runs.load(), 1) << "only the missing point may run";
  EXPECT_EQ(R.Report.Completed, 5u);
  EXPECT_EQ(R.Report.Resumed, 4u);

  SweepResult Uninterrupted = runSupervisedSweep(
      serialOptions(), "sweep", 5,
      [](size_t I, const Supervisor::Attempt &) {
        return SweepPointAttempt::ok(rowsFor(I));
      });
  EXPECT_EQ(R.Report.RowsHash, Uninterrupted.Report.RowsHash)
      << "kill+resume must digest identically to an uninterrupted run";
  for (size_t I = 0; I < 5; ++I)
    EXPECT_EQ(*R.Rows[I], *Uninterrupted.Rows[I]);
}

TEST_F(SweepSupervisor, FreshRunTruncatesAnOldCheckpoint) {
  {
    SweepCheckpoint Ckpt(CkptPath, false);
    ASSERT_FALSE(Ckpt.markDone("sweep", 0, rowsFor(0)).failed());
  }
  // Without --resume the file is emptied: a fresh run re-runs all.
  SweepCheckpoint Fresh(CkptPath, false);
  EXPECT_EQ(Fresh.recordCount(), 0u);
  EXPECT_EQ(Fresh.lookup("sweep", 0), nullptr);
}

TEST_F(SweepSupervisor, CheckpointRecoversFromTornTail) {
  {
    SweepCheckpoint Ckpt(CkptPath, false);
    ASSERT_FALSE(Ckpt.markDone("sweep", 0, rowsFor(0)).failed());
    ASSERT_FALSE(Ckpt.markDone("sweep", 3, rowsFor(3)).failed());
  }
  // A kill mid-append leaves half a frame; resume must keep both intact
  // records and drop the tail.
  {
    std::ofstream Out(CkptPath, std::ios::binary | std::ios::app);
    const char Torn[] = {0x40, 0, 0, 0, 0x12, 0x34};
    Out.write(Torn, sizeof(Torn));
  }
  SweepCheckpoint Ckpt(CkptPath, true);
  EXPECT_EQ(Ckpt.recordCount(), 2u);
  ASSERT_NE(Ckpt.lookup("sweep", 0), nullptr);
  EXPECT_EQ(*Ckpt.lookup("sweep", 0), rowsFor(0));
  ASSERT_NE(Ckpt.lookup("sweep", 3), nullptr);
  EXPECT_EQ(*Ckpt.lookup("sweep", 3), rowsFor(3));
  EXPECT_EQ(Ckpt.lookup("sweep", 1), nullptr);
  // And appends after recovery extend the cleaned file.
  ASSERT_FALSE(Ckpt.markDone("sweep", 1, rowsFor(1)).failed());
  SweepCheckpoint Again(CkptPath, true);
  EXPECT_EQ(Again.recordCount(), 3u);
}

TEST_F(SweepSupervisor, CheckpointKeysBySweepName) {
  SweepCheckpoint Ckpt(CkptPath, false);
  ASSERT_FALSE(Ckpt.markDone("alpha", 0, rowsFor(0)).failed());
  EXPECT_NE(Ckpt.lookup("alpha", 0), nullptr);
  EXPECT_EQ(Ckpt.lookup("beta", 0), nullptr)
      << "two sweeps sharing a checkpoint must not cross-serve points";
}

TEST_F(SweepSupervisor, RowsHashIgnoresExecutionOrder) {
  // The digest is computed in index order from per-index slots, so jobs
  // and scheduling cannot perturb it.
  auto Point = [](size_t I, const Supervisor::Attempt &) {
    return SweepPointAttempt::ok(rowsFor(I));
  };
  SweepOptions Serial = serialOptions();
  SweepOptions Wide = serialOptions();
  Wide.Jobs = 8;
  EXPECT_EQ(runSupervisedSweep(Serial, "s", 16, Point).Report.RowsHash,
            runSupervisedSweep(Wide, "s", 16, Point).Report.RowsHash);
}

} // namespace
