//===- tests/SchedulerTest.cpp - list-scheduler tests ---------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
//
// The contract of kernelgen's list scheduler (Section 5.3 done from the
// dependence DAG instead of the fixed drip interleave):
//
//  * determinism: the same configuration yields a byte-identical module;
//  * dependence safety: a scheduled kernel computes exactly what the
//    unscheduled kernel computes -- both must match the host reference
//    bit for bit, over all four transpose variants and padded shapes;
//  * structure: instruction counts, control-instruction placement and
//    the register budget survive scheduling;
//  * the point of the exercise: on the BR=6 LDS.64 Kepler kernel the
//    schedule+notation handoff beats the drip baseline in simulated
//    GFLOPS and the dispatch_limit + bank_conflict share of issue slots
//    strictly drops.
//
//===----------------------------------------------------------------------===//

#include "kernelgen/Scheduler.h"

#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"
#include "sgemm/SgemmRunner.h"
#include "sim/Timing.h"

#include <gtest/gtest.h>

using namespace gpuperf;

namespace {

SgemmKernelConfig tunedConfig(const MachineDesc &M, GemmVariant V, int MS,
                              int NS, int KS, SgemmSchedule S) {
  SgemmKernelConfig Cfg = baselineConfig(SgemmImpl::AsmTuned, M, V, MS, NS, KS);
  Cfg.Schedule = S;
  return Cfg;
}

SgemmRunResult mustRun(const MachineDesc &M, const SgemmKernelConfig &Cfg,
                       const SgemmProblem &P, const SgemmRunOptions &Opts) {
  Expected<SgemmRunResult> R = runSgemmConfig(M, Cfg, P, Opts);
  EXPECT_TRUE(R.hasValue()) << R.message();
  return R.hasValue() ? *R : SgemmRunResult();
}

double dispatchAndBankShare(const SimStats &S) {
  const StallBreakdown &B = S.Breakdown;
  EXPECT_GT(B.total(), 0u);
  return static_cast<double>(B.slots(SlotUse::DispatchLimit) +
                             B.slots(SlotUse::RegBankConflict)) /
         static_cast<double>(B.total());
}

/// Total static bank-conflict issue surcharge of a kernel's math code.
double staticConflictSurcharge(const MachineDesc &M, const Kernel &K) {
  double Total = 0;
  for (const Instruction &I : K.Code)
    Total += bankConflictExtraCycles(M, I);
  return Total;
}

TEST(Scheduler, SameConfigYieldsByteIdenticalModule) {
  for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
    SgemmKernelConfig Cfg = tunedConfig(*M, GemmVariant::NN, 192, 192, 64,
                                        SgemmSchedule::List);
    Expected<Kernel> K1 = generateSgemmKernel(*M, Cfg);
    Expected<Kernel> K2 = generateSgemmKernel(*M, Cfg);
    ASSERT_TRUE(K1.hasValue()) << K1.message();
    ASSERT_TRUE(K2.hasValue()) << K2.message();

    Module Mod1, Mod2;
    Mod1.Arch = Mod2.Arch = M->Generation;
    Mod1.Kernels.push_back(*K1);
    Mod2.Kernels.push_back(*K2);
    EXPECT_EQ(Mod1.serialize(), Mod2.serialize()) << M->Name;
  }
}

TEST(Scheduler, PreservesStructureAndBudget) {
  for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
    SgemmKernelConfig Drip = tunedConfig(*M, GemmVariant::NN, 192, 192, 64,
                                         SgemmSchedule::Drip);
    SgemmKernelConfig List = Drip;
    List.Schedule = SgemmSchedule::List;
    // The emission the scheduler starts from is the plain (non-drip)
    // layout; control placement must be compared against that, since the
    // drip interleave itself already shuffles the data instructions.
    SgemmKernelConfig Plain = Drip;
    Plain.Reorder = false;
    Expected<Kernel> KD = generateSgemmKernel(*M, Drip);
    Expected<Kernel> KL = generateSgemmKernel(*M, List);
    Expected<Kernel> KP = generateSgemmKernel(*M, Plain);
    ASSERT_TRUE(KD.hasValue()) << KD.message();
    ASSERT_TRUE(KL.hasValue()) << KL.message();
    ASSERT_TRUE(KP.hasValue()) << KP.message();

    // Scheduling moves instructions; it must not add, drop or grow.
    EXPECT_EQ(KD->Code.size(), KL->Code.size());
    ASSERT_EQ(KP->Code.size(), KL->Code.size());
    EXPECT_LE(KL->RegsPerThread, M->MaxRegsPerThread);
    EXPECT_EQ(KD->RegsPerThread, KL->RegsPerThread);
    EXPECT_EQ(KL->Name, std::string(KD->Name) + "_sched");

    // Control instructions anchor branch offsets: same opcode at the
    // same PC as in the unscheduled layout.
    for (size_t PC = 0; PC < KP->Code.size(); ++PC) {
      bool PCtl = opcodeInfo(KP->Code[PC].Op).Class == OpClass::Control;
      bool LCtl = opcodeInfo(KL->Code[PC].Op).Class == OpClass::Control;
      ASSERT_EQ(PCtl, LCtl) << "control placement diverged at PC " << PC;
      if (PCtl) {
        ASSERT_EQ(KP->Code[PC].Op, KL->Code[PC].Op) << "PC " << PC;
      }
    }

    // Notations must cover the scheduled code exactly (Kepler).
    if (M->Generation == GpuGeneration::Kepler) {
      ASSERT_TRUE(KL->hasNotations());
      EXPECT_EQ(KL->Notations.size(), KL->requiredNotationCount());
    }
  }
}

TEST(Scheduler, ScheduledKernelsVerifyAllVariants) {
  // Both orders must reproduce the host reference *exactly*; since the
  // drip kernels already pin MaxAbsError == 0 (SgemmTest), equality to
  // the same reference makes C bit-identical between the two.
  SgemmRunOptions Opts;
  Opts.Mode = SimMode::Full;
  Opts.Verify = true;
  for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
    for (GemmVariant V : {GemmVariant::NN, GemmVariant::NT, GemmVariant::TN,
                          GemmVariant::TT}) {
      SgemmProblem P;
      P.Variant = V;
      P.M = 192;
      P.N = 192;
      P.K = 64;
      P.Alpha = 1.25f;
      P.Beta = -0.5f;
      SgemmKernelConfig Cfg =
          tunedConfig(*M, V, P.M, P.N, P.K, SgemmSchedule::List);
      SgemmRunResult R = mustRun(*M, Cfg, P, Opts);
      EXPECT_TRUE(R.Verified) << M->Name << " " << gemmVariantName(V);
      EXPECT_EQ(R.MaxAbsError, 0.0) << M->Name << " " << gemmVariantName(V);
    }
  }
}

TEST(Scheduler, ScheduledKernelVerifiesPaddedShapeParallel) {
  // Non-tile-multiple shape through the padded runner path, with the
  // parallel launch engine on, so the TSan stage exercises the scheduler
  // output too.
  SgemmRunOptions Opts;
  Opts.Mode = SimMode::Full;
  Opts.Verify = true;
  Opts.Jobs = 2;
  SgemmProblem P;
  P.M = 100;
  P.N = 50;
  P.K = 33;
  P.Alpha = 1.5f;
  P.Beta = 0.25f;
  SgemmKernelConfig Cfg =
      tunedConfig(gtx680(), GemmVariant::NN, P.M, P.N, P.K,
                  SgemmSchedule::List);
  SgemmRunResult R = mustRun(gtx680(), Cfg, P, Opts);
  EXPECT_TRUE(R.Verified);
  EXPECT_EQ(R.MaxAbsError, 0.0);
}

TEST(Scheduler, BankRotationReducesStaticSurcharge) {
  // On a naive allocation the Kepler FFMA operands conflict heavily
  // (Figure 8); the rotation pass must strictly reduce the static
  // surcharge without touching the register budget.
  SgemmKernelConfig Cfg = tunedConfig(gtx680(), GemmVariant::NN, 192, 192,
                                      64, SgemmSchedule::Drip);
  Cfg.RegAlloc = RegAllocKind::Naive;
  Expected<Kernel> K = generateSgemmKernel(gtx680(), Cfg);
  ASSERT_TRUE(K.hasValue()) << K.message();

  double Before = staticConflictSurcharge(gtx680(), *K);
  ASSERT_GT(Before, 0.0);
  int Regs = K->RegsPerThread;
  int Swaps = rotateRegisterBanks(gtx680(), *K);
  EXPECT_GT(Swaps, 0);
  EXPECT_LT(staticConflictSurcharge(gtx680(), *K), Before);
  EXPECT_LE(K->RegsPerThread, Regs);

  // The bank-aware allocation's FFMA tile is already conflict-free; only
  // minor address-math/epilogue conflicts remain, so its surcharge is far
  // below the naive one and rotation must never increase it.
  SgemmKernelConfig Tuned = Cfg;
  Tuned.RegAlloc = RegAllocKind::BankAware;
  Expected<Kernel> KT = generateSgemmKernel(gtx680(), Tuned);
  ASSERT_TRUE(KT.hasValue()) << KT.message();
  double TunedBefore = staticConflictSurcharge(gtx680(), *KT);
  EXPECT_LT(TunedBefore, Before / 4);
  rotateRegisterBanks(gtx680(), *KT);
  EXPECT_LE(staticConflictSurcharge(gtx680(), *KT), TunedBefore);

  // Fermi has no banked register file: the pass declines.
  Expected<Kernel> KF = generateSgemmKernel(
      gtx580(), tunedConfig(gtx580(), GemmVariant::NN, 192, 192, 64,
                            SgemmSchedule::Drip));
  ASSERT_TRUE(KF.hasValue()) << KF.message();
  EXPECT_EQ(rotateRegisterBanks(gtx580(), *KF), 0);
}

TEST(Scheduler, KeplerScheduleBeatsDripAndCutsIssueStalls) {
  // The acceptance criterion: on the BR=6 LDS.64 Kepler SGEMM the list
  // schedule (with its schedule-matched control words) must improve
  // simulated GFLOPS over the drip baseline, and the share of issue
  // slots lost to dispatch_limit + bank_conflict must strictly drop.
  SgemmRunOptions Opts;
  Opts.Mode = SimMode::ProjectOneWave;
  SgemmProblem P;
  P.M = P.N = P.K = 1536;

  SgemmKernelConfig Drip = tunedConfig(gtx680(), GemmVariant::NN, P.M, P.N,
                                       P.K, SgemmSchedule::Drip);
  ASSERT_EQ(Drip.BR, 6);
  ASSERT_EQ(Drip.LdsWidth, MemWidth::B64);
  SgemmKernelConfig List = Drip;
  List.Schedule = SgemmSchedule::List;

  SgemmRunResult RD = mustRun(gtx680(), Drip, P, Opts);
  SgemmRunResult RL = mustRun(gtx680(), List, P, Opts);

  EXPECT_GT(RL.Gflops, RD.Gflops);
  EXPECT_LT(dispatchAndBankShare(RL.Launch.Stats),
            dispatchAndBankShare(RD.Launch.Stats));
}

} // namespace
