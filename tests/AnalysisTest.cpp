//===- tests/AnalysisTest.cpp - static binary analysis tests --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "analysis/BinaryAnalysis.h"

#include <gtest/gtest.h>

using namespace gpuperf;

namespace {

Kernel kernelWith(std::vector<Instruction> Code) {
  Kernel K;
  K.Name = "t";
  K.Code = std::move(Code);
  K.recomputeRegUsage();
  return K;
}

} // namespace

TEST(InstructionMixAnalysis, CountsByClass) {
  Kernel K = kernelWith({
      makeFFMA(8, 0, 4, 8),
      makeFFMA(9, 1, 5, 9),
      makeFADD(10, 0, 4),
      makeIADDImm(2, 2, 1),
      makeLDS(MemWidth::B64, 12, 3, 0),
      makeLD(MemWidth::B32, 14, 3, 0),
      makeMOV(1, 2),
      makeBAR(),
      makeEXIT(),
  });
  InstructionMix Mix = analyzeInstructionMix(K);
  EXPECT_EQ(Mix.Total, 9);
  EXPECT_EQ(Mix.count(Opcode::FFMA), 2);
  EXPECT_EQ(Mix.FloatMath, 3);
  EXPECT_EQ(Mix.IntMath, 1);
  EXPECT_EQ(Mix.SharedMem, 1);
  EXPECT_EQ(Mix.GlobalMem, 1);
  EXPECT_EQ(Mix.Move, 1);
  EXPECT_EQ(Mix.Control, 2);
  EXPECT_NEAR(Mix.ffmaPercent(), 100.0 * 2 / 9, 1e-9);
}

TEST(InstructionMixAnalysis, EmptyKernel) {
  Kernel K = kernelWith({});
  InstructionMix Mix = analyzeInstructionMix(K);
  EXPECT_EQ(Mix.Total, 0);
  EXPECT_EQ(Mix.ffmaPercent(), 0.0);
}

TEST(ConflictCensus, ClassifiesDegrees) {
  Kernel K = kernelWith({
      makeFFMA(8, 1, 4, 5),  // banks O0, E1, O1: conflict-free.
      makeFFMA(8, 1, 3, 5),  // R1 and R3 both odd0: 2-way.
      makeFFMA(8, 1, 3, 9),  // R1, R3, R9 all odd0: 3-way.
      makeFADD(8, 1, 3),     // Not an FFMA: ignored.
  });
  FfmaConflictCensus C = analyzeFfmaConflicts(K);
  EXPECT_EQ(C.Ffma, 3);
  EXPECT_EQ(C.NoConflict, 1);
  EXPECT_EQ(C.TwoWay, 1);
  EXPECT_EQ(C.ThreeWay, 1);
  EXPECT_NEAR(C.twoWayPercent(), 100.0 / 3, 1e-9);
}

TEST(ConflictCensus, RepeatedSourceIsNotAConflict) {
  // FFMA RA, RB, RB, RA: repeated registers share a read port, so only
  // distinct registers count (Section 3.3).
  Kernel K = kernelWith({makeFFMA(4, 3, 3, 4)});
  FfmaConflictCensus C = analyzeFfmaConflicts(K);
  EXPECT_EQ(C.NoConflict, 1);
}

TEST(ConflictCensus, RZDoesNotCount) {
  Kernel K = kernelWith({makeFFMA(8, 1, RegRZ, 5)});
  FfmaConflictCensus C = analyzeFfmaConflicts(K);
  EXPECT_EQ(C.NoConflict, 1);
}

TEST(KernelReport, MentionsKeyFacts) {
  Kernel K = kernelWith({
      makeFFMA(8, 1, 4, 5),
      makeLDS(MemWidth::B64, 12, 3, 0),
      makeEXIT(),
  });
  K.SharedBytes = 1024;
  std::string Report = renderKernelReport(K);
  EXPECT_NE(Report.find("3 instructions"), std::string::npos);
  EXPECT_NE(Report.find("1024 bytes shared"), std::string::npos);
  EXPECT_NE(Report.find("FFMA bank conflicts"), std::string::npos);
}
