//===- tests/IsaTest.cpp - ISA, encoding, module format unit tests --------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "isa/ControlNotation.h"
#include "isa/Encoding.h"
#include "isa/Instruction.h"
#include "isa/Module.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace gpuperf;

// --- Opcode traits ------------------------------------------------------------

TEST(Opcode, MnemonicRoundTrip) {
  for (int Op = 0; Op < static_cast<int>(Opcode::NumOpcodes); ++Op) {
    Opcode O = static_cast<Opcode>(Op);
    EXPECT_EQ(parseOpcodeMnemonic(opcodeMnemonic(O)), O);
  }
  EXPECT_EQ(parseOpcodeMnemonic("BOGUS"), Opcode::NumOpcodes);
}

TEST(Opcode, Classification) {
  EXPECT_TRUE(isMathOpcode(Opcode::FFMA));
  EXPECT_TRUE(isMathOpcode(Opcode::IMAD));
  EXPECT_FALSE(isMathOpcode(Opcode::LDS));
  EXPECT_FALSE(isMathOpcode(Opcode::BRA));
  EXPECT_EQ(opcodeInfo(Opcode::IMUL).Class, OpClass::IntMulMath);
  EXPECT_EQ(opcodeInfo(Opcode::LDS).Class, OpClass::SharedMem);
  EXPECT_EQ(opcodeInfo(Opcode::LD).Class, OpClass::GlobalMem);
}

// --- Instruction semantics ------------------------------------------------------

TEST(Instruction, SourceAndDestRegs) {
  Instruction I = makeFFMA(10, 11, 12, 13);
  RegList Srcs = I.sourceRegs();
  EXPECT_EQ(Srcs.Count, 3);
  EXPECT_TRUE(Srcs.contains(11));
  EXPECT_TRUE(Srcs.contains(12));
  EXPECT_TRUE(Srcs.contains(13));
  RegList Dsts = I.destRegs();
  EXPECT_EQ(Dsts.Count, 1);
  EXPECT_TRUE(Dsts.contains(10));
}

TEST(Instruction, WideLoadsWidenDest) {
  Instruction I = makeLDS(MemWidth::B128, 8, 20, 0);
  RegList Dsts = I.destRegs();
  EXPECT_EQ(Dsts.Count, 4);
  for (uint8_t R = 8; R < 12; ++R)
    EXPECT_TRUE(Dsts.contains(R));
}

TEST(Instruction, WideStoresWidenSource) {
  Instruction I = makeSTS(MemWidth::B64, 20, 16, 30);
  RegList Srcs = I.sourceRegs();
  EXPECT_EQ(Srcs.Count, 3); // Address + two data words.
  EXPECT_TRUE(Srcs.contains(20));
  EXPECT_TRUE(Srcs.contains(30));
  EXPECT_TRUE(Srcs.contains(31));
}

TEST(Instruction, RZIsExcluded) {
  Instruction I = makeFADD(RegRZ, RegRZ, 5);
  EXPECT_EQ(I.sourceRegs().Count, 1);
  EXPECT_EQ(I.destRegs().Count, 0);
}

TEST(Instruction, RepeatedOperandDetection) {
  // FFMA RA, RB, RB, RA: 3 source slots, 2 distinct.
  Instruction I = makeFFMA(4, 6, 6, 4);
  EXPECT_EQ(I.numSourceSlots(), 3);
  EXPECT_EQ(I.numDistinctSourceRegs(), 2);
  EXPECT_TRUE(I.dstIsAlsoSource());

  Instruction J = makeFFMA(0, 1, 4, 5);
  EXPECT_EQ(J.numSourceSlots(), 3);
  EXPECT_EQ(J.numDistinctSourceRegs(), 3);
  EXPECT_FALSE(J.dstIsAlsoSource());
}

TEST(Instruction, ImmediateReplacesSecondSlot) {
  Instruction I = makeIADDImm(3, 4, -100);
  EXPECT_TRUE(I.immReplacesSrc1());
  EXPECT_EQ(I.sourceRegs().Count, 1);
  EXPECT_EQ(I.numSourceSlots(), 1);

  Instruction Mem = makeLDS(MemWidth::B32, 0, 1, 16);
  EXPECT_FALSE(Mem.immReplacesSrc1()); // Offset, not an operand.
}

TEST(Instruction, ToStringForms) {
  EXPECT_EQ(makeFFMA(0, 1, 2, 3).toString(), "FFMA R0, R1, R2, R3");
  EXPECT_EQ(makeLDS(MemWidth::B64, 8, 20, 64).toString(),
            "LDS.64 R8, [R20+64]");
  EXPECT_EQ(makeSTS(MemWidth::B32, 5, -8, 7).toString(),
            "STS [R5-8], R7");
  EXPECT_EQ(makeISETP(CmpOp::GE, 0, 5, 6).toString(),
            "ISETP.GE P0, R5, R6");
  EXPECT_EQ(makeBRA(-7, 0, true).toString(), "@!P0 BRA -7");
  EXPECT_EQ(makeMOV32I(2, 0xdeadbeef).toString(), "MOV32I R2, 0xdeadbeef");
  EXPECT_EQ(makeS2R(0, SpecialReg::TID_X).toString(), "S2R R0, SR_TID.X");
  EXPECT_EQ(makeBAR().toString(), "BAR.SYNC");
  EXPECT_EQ(makeIADDImm(1, 1, -4).toString(), "IADD R1, R1, -4");
}

// --- Binary encoding ------------------------------------------------------------

namespace {

bool sameInstruction(const Instruction &A, const Instruction &B) {
  return A.Op == B.Op && A.Width == B.Width && A.GuardPred == B.GuardPred &&
         A.GuardNeg == B.GuardNeg && A.Dst == B.Dst &&
         A.Src[0] == B.Src[0] && A.Src[1] == B.Src[1] &&
         A.Src[2] == B.Src[2] && A.HasImm == B.HasImm && A.Imm == B.Imm &&
         A.Aux == B.Aux;
}

std::vector<Instruction> representativeInstructions() {
  return {
      makeFFMA(0, 1, 2, 3),
      makeFFMA(62, 61, 60, 59),
      makeFADD(5, 5, 5),
      makeFMUL(7, 8, RegRZ),
      makeIADDImm(3, 3, -1),
      makeIADD(10, 11, 12),
      makeIMAD(20, 21, 22, 23),
      makeIMADImm(20, 21, 4800, 23),
      makeISCADD(15, 16, 17, 4),
      makeSHLImm(9, 10, 7),
      makeXORImm(30, 30, 4096),
      makeMOV(1, 2),
      makeMOV32I(2, 0xffffffffu),
      makeMOV32I(2, 0),
      makeS2R(0, SpecialReg::NCTAID_Y),
      makeLDC(4, 0x20),
      makeISETP(CmpOp::NE, 3, 5, RegRZ),
      makeLDS(MemWidth::B32, 6, 40, 4),
      makeLDS(MemWidth::B64, 6, 40, 8),
      makeLDS(MemWidth::B128, 8, 40, 16),
      makeSTS(MemWidth::B64, 40, 24, 10),
      makeLD(MemWidth::B128, 12, 41, 128),
      makeST(MemWidth::B32, 41, -4, 13),
      makeBRA(-100),
      makeBRA(0, 2, true),
      makeBAR(),
      makeEXIT(),
  };
}

} // namespace

TEST(Encoding, RoundTripRepresentative) {
  for (const Instruction &I : representativeInstructions()) {
    uint64_t Word = encodeInstruction(I);
    auto Back = decodeInstruction(Word);
    ASSERT_TRUE(Back.hasValue()) << I.toString() << ": " << Back.message();
    EXPECT_TRUE(sameInstruction(I, *Back))
        << I.toString() << " vs " << Back->toString();
  }
}

TEST(Encoding, GuardPredicateSurvives) {
  Instruction I = makeFFMA(0, 1, 2, 3);
  I.GuardPred = 2;
  I.GuardNeg = true;
  auto Back = decodeInstruction(encodeInstruction(I));
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back->GuardPred, 2);
  EXPECT_TRUE(Back->GuardNeg);
}

TEST(Encoding, RejectsInvalidOpcodeField) {
  uint64_t Word = static_cast<uint64_t>(60) << 58; // Beyond NumOpcodes.
  EXPECT_FALSE(decodeInstruction(Word).hasValue());
}

TEST(Encoding, Imm24Bounds) {
  EXPECT_TRUE(fitsImm24(0));
  EXPECT_TRUE(fitsImm24(Imm24Max));
  EXPECT_TRUE(fitsImm24(Imm24Min));
  EXPECT_FALSE(fitsImm24(Imm24Max + 1));
  EXPECT_FALSE(fitsImm24(Imm24Min - 1));
}

TEST(Encoding, NegativeImmediateSignExtends) {
  Instruction I = makeIADDImm(1, 2, -4096);
  auto Back = decodeInstruction(encodeInstruction(I));
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back->Imm, -4096);
}

// Property sweep: random-but-valid instructions round-trip.
TEST(Encoding, RoundTripRandomizedProperty) {
  Rng R(42);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    Instruction I = makeFFMA(
        static_cast<uint8_t>(R.nextBelow(63)),
        static_cast<uint8_t>(R.nextBelow(64)),
        static_cast<uint8_t>(R.nextBelow(64)),
        static_cast<uint8_t>(R.nextBelow(64)));
    I.GuardPred = static_cast<uint8_t>(
        R.nextBelow(2) ? PredPT : R.nextBelow(NumPredRegs));
    I.GuardNeg = R.nextBelow(2);
    auto Back = decodeInstruction(encodeInstruction(I));
    ASSERT_TRUE(Back.hasValue());
    EXPECT_TRUE(sameInstruction(I, *Back));
  }
}

// --- Control notation -----------------------------------------------------------

TEST(ControlNotation, IdentifierNibbles) {
  ControlNotation N;
  uint64_t Word = N.pack();
  EXPECT_EQ(Word & 0xf, 0x7u) << "low nibble must be 0x7";
  EXPECT_EQ(Word >> 60, 0x2u) << "high nibble must be 0x2";
  EXPECT_TRUE(ControlNotation::isControlWord(Word));
  EXPECT_FALSE(ControlNotation::isControlWord(0));
}

TEST(ControlNotation, PackUnpackRoundTrip) {
  ControlNotation N;
  for (int I = 0; I < NotationGroupSize; ++I) {
    N.Fields[I].StallCycles = static_cast<uint8_t>((I * 3) % 16);
    N.Fields[I].Yield = I % 2;
    N.Fields[I].DualIssue = I % 3 == 0;
  }
  auto Back = ControlNotation::unpack(N.pack());
  ASSERT_TRUE(Back.hasValue());
  EXPECT_TRUE(N == *Back);
}

TEST(ControlNotation, UnpackRejectsPlainWords) {
  EXPECT_FALSE(ControlNotation::unpack(0x12345678).hasValue());
}

// --- Module serialization --------------------------------------------------------

namespace {

Kernel tinyKernel(const std::string &Name) {
  Kernel K;
  K.Name = Name;
  K.Code = {makeMOV32I(0, 7), makeFADD(1, 0, 0), makeEXIT()};
  K.recomputeRegUsage();
  K.SharedBytes = 128;
  return K;
}

} // namespace

TEST(Module, RecomputeRegUsage) {
  Kernel K = tinyKernel("k");
  EXPECT_EQ(K.RegsPerThread, 2); // R0 and R1.
}

TEST(Module, SerializeDeserializeFermi) {
  Module M;
  M.Arch = GpuGeneration::Fermi;
  M.Kernels.push_back(tinyKernel("a"));
  M.Kernels.push_back(tinyKernel("b"));
  auto Back = Module::deserialize(M.serialize());
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_EQ(Back->Arch, GpuGeneration::Fermi);
  ASSERT_EQ(Back->Kernels.size(), 2u);
  EXPECT_EQ(Back->Kernels[0].Name, "a");
  EXPECT_EQ(Back->Kernels[1].Name, "b");
  EXPECT_EQ(Back->Kernels[0].Code.size(), 3u);
  EXPECT_EQ(Back->Kernels[0].SharedBytes, 128);
  EXPECT_FALSE(Back->Kernels[0].hasNotations());
}

TEST(Module, SerializeInterleavesKeplerControlWords) {
  Module M;
  M.Arch = GpuGeneration::Kepler;
  Kernel K;
  K.Name = "k";
  for (int I = 0; I < 10; ++I) // Two notation groups (7 + 3).
    K.Code.push_back(makeFADD(1, 0, 0));
  K.Code.push_back(makeEXIT());
  K.recomputeRegUsage();
  K.addDefaultNotations();
  ASSERT_EQ(K.Notations.size(), 2u);
  K.Notations[1].Fields[2].StallCycles = 5;
  M.Kernels.push_back(K);

  std::vector<uint8_t> Bytes = M.serialize();
  auto Back = Module::deserialize(Bytes);
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  ASSERT_EQ(Back->Kernels.size(), 1u);
  const Kernel &BK = Back->Kernels[0];
  ASSERT_TRUE(BK.hasNotations());
  ASSERT_EQ(BK.Notations.size(), 2u);
  EXPECT_EQ(BK.Notations[1].Fields[2].StallCycles, 5);
  EXPECT_EQ(BK.Code.size(), 11u);
}

TEST(Module, DeserializeRejectsBadMagic) {
  std::vector<uint8_t> Bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  auto Back = Module::deserialize(Bytes);
  EXPECT_FALSE(Back.hasValue());
  EXPECT_NE(Back.message().find("magic"), std::string::npos);
}

TEST(Module, DeserializeRejectsTruncation) {
  Module M;
  M.Arch = GpuGeneration::Fermi;
  M.Kernels.push_back(tinyKernel("a"));
  std::vector<uint8_t> Bytes = M.serialize();
  Bytes.resize(Bytes.size() - 5);
  EXPECT_FALSE(Module::deserialize(Bytes).hasValue());
}

TEST(Module, DeserializeRejectsTrailingGarbage) {
  Module M;
  M.Arch = GpuGeneration::Fermi;
  M.Kernels.push_back(tinyKernel("a"));
  std::vector<uint8_t> Bytes = M.serialize();
  Bytes.push_back(0);
  EXPECT_FALSE(Module::deserialize(Bytes).hasValue());
}

TEST(Module, FindKernel) {
  Module M;
  M.Kernels.push_back(tinyKernel("x"));
  EXPECT_NE(M.findKernel("x"), nullptr);
  EXPECT_EQ(M.findKernel("y"), nullptr);
}
