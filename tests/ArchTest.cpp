//===- tests/ArchTest.cpp - machine description unit tests ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineDesc.h"
#include "arch/Occupancy.h"
#include "arch/RegisterBank.h"

#include <gtest/gtest.h>

#include <vector>

using namespace gpuperf;

// --- Table 1 data ----------------------------------------------------------

TEST(MachineDesc, Table1Fermi) {
  const MachineDesc &M = gtx580();
  EXPECT_EQ(M.ChipName, "GF110");
  EXPECT_DOUBLE_EQ(M.CoreClockMHz, 772);
  EXPECT_DOUBLE_EQ(M.ShaderClockMHz, 1544);
  EXPECT_EQ(M.WarpSchedulersPerSM, 2);
  EXPECT_EQ(M.DispatchUnitsPerSM, 2);
  EXPECT_EQ(M.SPsPerSM, 32);
  EXPECT_EQ(M.LdStUnitsPerSM, 16);
  EXPECT_EQ(M.SharedMemBytesPerSM, 48 * 1024);
  EXPECT_EQ(M.RegistersPerSM, 32 * 1024);
  EXPECT_EQ(M.MaxRegsPerThread, 63);
  // 512 SPs * 2 flops * 1.544 GHz = 1581 GFLOPS.
  EXPECT_NEAR(M.theoreticalPeakGflops(), 1581, 1.0);
}

TEST(MachineDesc, Table1Kepler) {
  const MachineDesc &M = gtx680();
  EXPECT_EQ(M.ChipName, "GK104");
  EXPECT_DOUBLE_EQ(M.ShaderClockMHz, 1006); // Single clock domain.
  EXPECT_EQ(M.WarpSchedulersPerSM, 4);
  EXPECT_EQ(M.DispatchUnitsPerSM, 8);
  EXPECT_EQ(M.SPsPerSM, 192);
  EXPECT_EQ(M.RegistersPerSM, 64 * 1024);
  EXPECT_EQ(M.MaxRegsPerThread, 63); // Still the 6-bit encoding limit.
  EXPECT_NEAR(M.theoreticalPeakGflops(), 3090, 2.0);
  // Section 3.3 issue ceiling and register banking.
  EXPECT_NEAR(M.MathIssueSlotsPerCycle, 132, 0.5);
  EXPECT_EQ(M.RegisterFileBanks, 4);
}

TEST(MachineDesc, Table1GT200) {
  const MachineDesc &M = gt200();
  EXPECT_EQ(M.SPsPerSM, 8);
  EXPECT_EQ(M.WarpSchedulersPerSM, 1);
  EXPECT_EQ(M.MaxRegsPerThread, 127);
  EXPECT_NEAR(M.theoreticalPeakGflops(), 933, 12.0);
}

TEST(MachineDesc, FindMachine) {
  EXPECT_EQ(findMachine("GTX580"), &gtx580());
  EXPECT_EQ(findMachine("gtx680"), &gtx680());
  EXPECT_EQ(findMachine("Fermi"), &gtx580());
  EXPECT_EQ(findMachine("Kepler"), &gtx680());
  EXPECT_EQ(findMachine("GTX280"), &gt200());
  EXPECT_EQ(findMachine("RTX4090"), nullptr);
}

// --- Register banks (Section 3.3) -------------------------------------------

TEST(RegisterBank, PaperFormula) {
  // even0: idx%8<4 && even; even1: idx%8>=4 && even; analogously odd.
  EXPECT_EQ(registerBank(0), RegBank::Even0);
  EXPECT_EQ(registerBank(1), RegBank::Odd0);
  EXPECT_EQ(registerBank(2), RegBank::Even0);
  EXPECT_EQ(registerBank(3), RegBank::Odd0);
  EXPECT_EQ(registerBank(4), RegBank::Even1);
  EXPECT_EQ(registerBank(5), RegBank::Odd1);
  EXPECT_EQ(registerBank(6), RegBank::Even1);
  EXPECT_EQ(registerBank(7), RegBank::Odd1);
  EXPECT_EQ(registerBank(8), RegBank::Even0);
  EXPECT_EQ(registerBank(9), RegBank::Odd0);
}

TEST(RegisterBank, PeriodicWithPeriod8) {
  for (unsigned Reg = 0; Reg < 55; ++Reg)
    EXPECT_EQ(registerBank(Reg), registerBank(Reg + 8));
}

TEST(RegisterBank, BalancedDistribution) {
  int Count[4] = {0, 0, 0, 0};
  for (unsigned Reg = 0; Reg < 64; ++Reg)
    ++Count[registerBankIndex(Reg)];
  for (int Bank = 0; Bank < 4; ++Bank)
    EXPECT_EQ(Count[Bank], 16);
}

TEST(RegisterBank, ConflictDegree) {
  // Table 2 operand patterns: {R1,R4,R5} spans three banks.
  std::vector<unsigned> NoConflict = {1, 4, 5};
  EXPECT_EQ(bankConflictDegree(NoConflict), 1);
  // {R1,R3} both odd0: 2-way.
  std::vector<unsigned> TwoWay = {1, 3, 5};
  EXPECT_EQ(bankConflictDegree(TwoWay), 2);
  // {R1,R3,R9} all odd0: 3-way.
  std::vector<unsigned> ThreeWay = {1, 3, 9};
  EXPECT_EQ(bankConflictDegree(ThreeWay), 3);
  std::vector<unsigned> Empty;
  EXPECT_EQ(bankConflictDegree(Empty), 1);
}

TEST(RegisterBank, Names) {
  EXPECT_STREQ(registerBankName(RegBank::Even0), "E0");
  EXPECT_STREQ(registerBankName(RegBank::Odd1), "O1");
}

// --- Occupancy (Equation 1) ---------------------------------------------------

TEST(Occupancy, SgemmFermiConfiguration) {
  // The paper's Fermi SGEMM: 63 regs/thread, 256 threads/block. Equation 1
  // gives 32K / (63*256) = 2 blocks -> 512 active threads (Section 4.5).
  KernelResources Res;
  Res.RegsPerThread = 63;
  Res.ThreadsPerBlock = 256;
  Res.SharedBytesPerBlock = 2 * 96 * 16 * 4; // two strided panels
  Occupancy O = computeOccupancy(gtx580(), Res);
  EXPECT_EQ(O.ActiveBlocks, 2);
  EXPECT_EQ(O.ActiveThreads, 512);
  EXPECT_EQ(O.Limit, OccupancyLimit::Registers);
}

TEST(Occupancy, SgemmKeplerConfiguration) {
  // On Kepler 64K registers support 1024 active threads at 63 regs
  // (Section 4.5).
  KernelResources Res;
  Res.RegsPerThread = 63;
  Res.ThreadsPerBlock = 256;
  Res.SharedBytesPerBlock = 2 * 96 * 16 * 4;
  Occupancy O = computeOccupancy(gtx680(), Res);
  EXPECT_EQ(O.ActiveBlocks, 4);
  EXPECT_EQ(O.ActiveThreads, 1024);
  EXPECT_EQ(O.Limit, OccupancyLimit::Registers);
}

TEST(Occupancy, SharedMemoryBound) {
  KernelResources Res;
  Res.RegsPerThread = 16;
  Res.ThreadsPerBlock = 128;
  Res.SharedBytesPerBlock = 20 * 1024; // Two blocks exhaust 40 of 48 KB.
  Occupancy O = computeOccupancy(gtx580(), Res);
  EXPECT_EQ(O.ActiveBlocks, 2);
  EXPECT_EQ(O.Limit, OccupancyLimit::SharedMemory);
}

TEST(Occupancy, ThreadLimitBound) {
  KernelResources Res;
  Res.RegsPerThread = 10;
  Res.ThreadsPerBlock = 1024;
  Occupancy O = computeOccupancy(gtx580(), Res);
  EXPECT_EQ(O.ActiveBlocks, 1); // 1536 / 1024.
  EXPECT_EQ(O.Limit, OccupancyLimit::ThreadsPerSM);
}

TEST(Occupancy, BlockLimitBound) {
  KernelResources Res;
  Res.RegsPerThread = 4;
  Res.ThreadsPerBlock = 32;
  Occupancy O = computeOccupancy(gtx580(), Res);
  EXPECT_EQ(O.ActiveBlocks, 8);
  EXPECT_EQ(O.Limit, OccupancyLimit::BlocksPerSM);
}

TEST(Occupancy, Unlaunchable) {
  KernelResources Res;
  Res.RegsPerThread = 64; // Over the 63-register ISA limit.
  Res.ThreadsPerBlock = 256;
  Occupancy O = computeOccupancy(gtx580(), Res);
  EXPECT_FALSE(O.launchable());
  EXPECT_EQ(O.Limit, OccupancyLimit::BlockTooLarge);
}

TEST(Occupancy, LimitNamesAreStable) {
  EXPECT_STREQ(occupancyLimitName(OccupancyLimit::Registers), "registers");
  EXPECT_STREQ(occupancyLimitName(OccupancyLimit::SharedMemory),
               "shared memory");
}

TEST(Occupancy, SingleLimitBindsAlone) {
  // The Fermi SGEMM configuration is register-bound and nothing else:
  // BindingLimits must contain exactly that one bit.
  KernelResources Res;
  Res.RegsPerThread = 63;
  Res.ThreadsPerBlock = 256;
  Res.SharedBytesPerBlock = 2 * 96 * 16 * 4;
  Occupancy O = computeOccupancy(gtx580(), Res);
  EXPECT_EQ(O.BindingLimits, occupancyLimitBit(OccupancyLimit::Registers));
  EXPECT_TRUE(O.limitBinds(OccupancyLimit::Registers));
  EXPECT_FALSE(O.limitBinds(OccupancyLimit::ThreadsPerSM));
  EXPECT_EQ(occupancyBindingLimitNames(O), "registers");
}

TEST(Occupancy, RegisterThreadTieIsDeterministic) {
  // 21 regs x 512 threads: Equation 1 gives 32K/10752 = 3 blocks, and the
  // 1536-thread cap gives 1536/512 = 3 as well. Both bind; the attributed
  // Limit is the documented priority winner (registers).
  KernelResources Res;
  Res.RegsPerThread = 21;
  Res.ThreadsPerBlock = 512;
  Occupancy O = computeOccupancy(gtx580(), Res);
  EXPECT_EQ(O.ActiveBlocks, 3);
  EXPECT_EQ(O.Limit, OccupancyLimit::Registers);
  EXPECT_TRUE(O.limitBinds(OccupancyLimit::Registers));
  EXPECT_TRUE(O.limitBinds(OccupancyLimit::ThreadsPerSM));
  EXPECT_FALSE(O.limitBinds(OccupancyLimit::SharedMemory));
  EXPECT_FALSE(O.limitBinds(OccupancyLimit::BlocksPerSM));
  EXPECT_EQ(occupancyBindingLimitNames(O),
            "registers + max threads per SM");
}

TEST(Occupancy, SharedBlockTieIsDeterministic) {
  // 6 KB of shared per block: 48K/6K = 8 blocks, exactly the hardware
  // block cap. Shared memory outranks the block cap in the priority.
  KernelResources Res;
  Res.RegsPerThread = 10;
  Res.ThreadsPerBlock = 96;
  Res.SharedBytesPerBlock = 6 * 1024;
  Occupancy O = computeOccupancy(gtx580(), Res);
  EXPECT_EQ(O.ActiveBlocks, 8);
  EXPECT_EQ(O.Limit, OccupancyLimit::SharedMemory);
  EXPECT_TRUE(O.limitBinds(OccupancyLimit::SharedMemory));
  EXPECT_TRUE(O.limitBinds(OccupancyLimit::BlocksPerSM));
  EXPECT_FALSE(O.limitBinds(OccupancyLimit::Registers));
  EXPECT_EQ(occupancyBindingLimitNames(O),
            "shared memory + max blocks per SM");
}
