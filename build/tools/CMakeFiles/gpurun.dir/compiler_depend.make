# Empty compiler generated dependencies file for gpurun.
# This may be replaced when dependencies are built.
