file(REMOVE_RECURSE
  "CMakeFiles/gpurun.dir/gpurun.cpp.o"
  "CMakeFiles/gpurun.dir/gpurun.cpp.o.d"
  "gpurun"
  "gpurun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpurun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
