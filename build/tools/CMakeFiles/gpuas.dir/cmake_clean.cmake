file(REMOVE_RECURSE
  "CMakeFiles/gpuas.dir/gpuas.cpp.o"
  "CMakeFiles/gpuas.dir/gpuas.cpp.o.d"
  "gpuas"
  "gpuas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
