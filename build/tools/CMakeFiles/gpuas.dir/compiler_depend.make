# Empty compiler generated dependencies file for gpuas.
# This may be replaced when dependencies are built.
