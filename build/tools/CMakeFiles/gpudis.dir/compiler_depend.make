# Empty compiler generated dependencies file for gpudis.
# This may be replaced when dependencies are built.
