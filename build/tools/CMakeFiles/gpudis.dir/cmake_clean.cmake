file(REMOVE_RECURSE
  "CMakeFiles/gpudis.dir/gpudis.cpp.o"
  "CMakeFiles/gpudis.dir/gpudis.cpp.o.d"
  "gpudis"
  "gpudis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpudis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
