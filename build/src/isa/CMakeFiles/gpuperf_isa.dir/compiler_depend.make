# Empty compiler generated dependencies file for gpuperf_isa.
# This may be replaced when dependencies are built.
