
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/ControlNotation.cpp" "src/isa/CMakeFiles/gpuperf_isa.dir/ControlNotation.cpp.o" "gcc" "src/isa/CMakeFiles/gpuperf_isa.dir/ControlNotation.cpp.o.d"
  "/root/repo/src/isa/Encoding.cpp" "src/isa/CMakeFiles/gpuperf_isa.dir/Encoding.cpp.o" "gcc" "src/isa/CMakeFiles/gpuperf_isa.dir/Encoding.cpp.o.d"
  "/root/repo/src/isa/Instruction.cpp" "src/isa/CMakeFiles/gpuperf_isa.dir/Instruction.cpp.o" "gcc" "src/isa/CMakeFiles/gpuperf_isa.dir/Instruction.cpp.o.d"
  "/root/repo/src/isa/Module.cpp" "src/isa/CMakeFiles/gpuperf_isa.dir/Module.cpp.o" "gcc" "src/isa/CMakeFiles/gpuperf_isa.dir/Module.cpp.o.d"
  "/root/repo/src/isa/Opcode.cpp" "src/isa/CMakeFiles/gpuperf_isa.dir/Opcode.cpp.o" "gcc" "src/isa/CMakeFiles/gpuperf_isa.dir/Opcode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gpuperf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpuperf_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
