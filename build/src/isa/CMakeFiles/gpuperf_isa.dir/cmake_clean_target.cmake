file(REMOVE_RECURSE
  "libgpuperf_isa.a"
)
