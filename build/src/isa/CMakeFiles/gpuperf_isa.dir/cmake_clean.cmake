file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_isa.dir/ControlNotation.cpp.o"
  "CMakeFiles/gpuperf_isa.dir/ControlNotation.cpp.o.d"
  "CMakeFiles/gpuperf_isa.dir/Encoding.cpp.o"
  "CMakeFiles/gpuperf_isa.dir/Encoding.cpp.o.d"
  "CMakeFiles/gpuperf_isa.dir/Instruction.cpp.o"
  "CMakeFiles/gpuperf_isa.dir/Instruction.cpp.o.d"
  "CMakeFiles/gpuperf_isa.dir/Module.cpp.o"
  "CMakeFiles/gpuperf_isa.dir/Module.cpp.o.d"
  "CMakeFiles/gpuperf_isa.dir/Opcode.cpp.o"
  "CMakeFiles/gpuperf_isa.dir/Opcode.cpp.o.d"
  "libgpuperf_isa.a"
  "libgpuperf_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
