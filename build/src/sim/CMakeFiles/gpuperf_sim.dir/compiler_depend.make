# Empty compiler generated dependencies file for gpuperf_sim.
# This may be replaced when dependencies are built.
