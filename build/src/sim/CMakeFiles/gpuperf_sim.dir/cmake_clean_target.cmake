file(REMOVE_RECURSE
  "libgpuperf_sim.a"
)
