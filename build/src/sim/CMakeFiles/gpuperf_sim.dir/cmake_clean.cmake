file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_sim.dir/Executor.cpp.o"
  "CMakeFiles/gpuperf_sim.dir/Executor.cpp.o.d"
  "CMakeFiles/gpuperf_sim.dir/Launcher.cpp.o"
  "CMakeFiles/gpuperf_sim.dir/Launcher.cpp.o.d"
  "CMakeFiles/gpuperf_sim.dir/SMSimulator.cpp.o"
  "CMakeFiles/gpuperf_sim.dir/SMSimulator.cpp.o.d"
  "libgpuperf_sim.a"
  "libgpuperf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
