# Empty compiler generated dependencies file for gpuperf_analysis.
# This may be replaced when dependencies are built.
