
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/BinaryAnalysis.cpp" "src/analysis/CMakeFiles/gpuperf_analysis.dir/BinaryAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/gpuperf_analysis.dir/BinaryAnalysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gpuperf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpuperf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gpuperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
