file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_analysis.dir/BinaryAnalysis.cpp.o"
  "CMakeFiles/gpuperf_analysis.dir/BinaryAnalysis.cpp.o.d"
  "libgpuperf_analysis.a"
  "libgpuperf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
