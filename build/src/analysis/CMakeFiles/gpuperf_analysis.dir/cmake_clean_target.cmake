file(REMOVE_RECURSE
  "libgpuperf_analysis.a"
)
