file(REMOVE_RECURSE
  "libgpuperf_sgemm.a"
)
