file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_sgemm.dir/Reference.cpp.o"
  "CMakeFiles/gpuperf_sgemm.dir/Reference.cpp.o.d"
  "CMakeFiles/gpuperf_sgemm.dir/SgemmRunner.cpp.o"
  "CMakeFiles/gpuperf_sgemm.dir/SgemmRunner.cpp.o.d"
  "libgpuperf_sgemm.a"
  "libgpuperf_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
