# Empty compiler generated dependencies file for gpuperf_sgemm.
# This may be replaced when dependencies are built.
