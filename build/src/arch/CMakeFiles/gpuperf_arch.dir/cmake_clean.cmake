file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_arch.dir/MachineDesc.cpp.o"
  "CMakeFiles/gpuperf_arch.dir/MachineDesc.cpp.o.d"
  "CMakeFiles/gpuperf_arch.dir/Occupancy.cpp.o"
  "CMakeFiles/gpuperf_arch.dir/Occupancy.cpp.o.d"
  "libgpuperf_arch.a"
  "libgpuperf_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
