# Empty compiler generated dependencies file for gpuperf_arch.
# This may be replaced when dependencies are built.
