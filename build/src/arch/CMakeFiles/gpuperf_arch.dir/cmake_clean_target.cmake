file(REMOVE_RECURSE
  "libgpuperf_arch.a"
)
