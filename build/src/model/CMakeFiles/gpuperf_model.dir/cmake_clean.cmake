file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_model.dir/UpperBound.cpp.o"
  "CMakeFiles/gpuperf_model.dir/UpperBound.cpp.o.d"
  "libgpuperf_model.a"
  "libgpuperf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
