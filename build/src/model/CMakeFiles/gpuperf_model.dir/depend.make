# Empty dependencies file for gpuperf_model.
# This may be replaced when dependencies are built.
