file(REMOVE_RECURSE
  "libgpuperf_model.a"
)
