file(REMOVE_RECURSE
  "libgpuperf_asmtool.a"
)
