file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_asmtool.dir/Assembler.cpp.o"
  "CMakeFiles/gpuperf_asmtool.dir/Assembler.cpp.o.d"
  "CMakeFiles/gpuperf_asmtool.dir/Disassembler.cpp.o"
  "CMakeFiles/gpuperf_asmtool.dir/Disassembler.cpp.o.d"
  "CMakeFiles/gpuperf_asmtool.dir/NotationTuner.cpp.o"
  "CMakeFiles/gpuperf_asmtool.dir/NotationTuner.cpp.o.d"
  "libgpuperf_asmtool.a"
  "libgpuperf_asmtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_asmtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
