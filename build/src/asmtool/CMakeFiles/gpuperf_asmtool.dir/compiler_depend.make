# Empty compiler generated dependencies file for gpuperf_asmtool.
# This may be replaced when dependencies are built.
