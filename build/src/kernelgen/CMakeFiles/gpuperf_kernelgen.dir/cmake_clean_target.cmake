file(REMOVE_RECURSE
  "libgpuperf_kernelgen.a"
)
