# Empty dependencies file for gpuperf_kernelgen.
# This may be replaced when dependencies are built.
