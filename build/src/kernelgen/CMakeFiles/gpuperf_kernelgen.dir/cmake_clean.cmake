file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_kernelgen.dir/Baselines.cpp.o"
  "CMakeFiles/gpuperf_kernelgen.dir/Baselines.cpp.o.d"
  "CMakeFiles/gpuperf_kernelgen.dir/RegAllocator.cpp.o"
  "CMakeFiles/gpuperf_kernelgen.dir/RegAllocator.cpp.o.d"
  "CMakeFiles/gpuperf_kernelgen.dir/SgemmGenerator.cpp.o"
  "CMakeFiles/gpuperf_kernelgen.dir/SgemmGenerator.cpp.o.d"
  "libgpuperf_kernelgen.a"
  "libgpuperf_kernelgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_kernelgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
