# Empty compiler generated dependencies file for gpuperf_support.
# This may be replaced when dependencies are built.
