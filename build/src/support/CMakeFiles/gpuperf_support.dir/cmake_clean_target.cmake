file(REMOVE_RECURSE
  "libgpuperf_support.a"
)
