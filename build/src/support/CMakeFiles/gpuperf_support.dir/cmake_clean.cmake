file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_support.dir/Format.cpp.o"
  "CMakeFiles/gpuperf_support.dir/Format.cpp.o.d"
  "CMakeFiles/gpuperf_support.dir/Table.cpp.o"
  "CMakeFiles/gpuperf_support.dir/Table.cpp.o.d"
  "libgpuperf_support.a"
  "libgpuperf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
