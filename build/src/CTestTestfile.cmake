# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("arch")
subdirs("isa")
subdirs("asmtool")
subdirs("sim")
subdirs("ubench")
subdirs("model")
subdirs("kernelgen")
subdirs("sgemm")
subdirs("analysis")
