file(REMOVE_RECURSE
  "libgpuperf_ubench.a"
)
