file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_ubench.dir/MixBench.cpp.o"
  "CMakeFiles/gpuperf_ubench.dir/MixBench.cpp.o.d"
  "CMakeFiles/gpuperf_ubench.dir/OpPattern.cpp.o"
  "CMakeFiles/gpuperf_ubench.dir/OpPattern.cpp.o.d"
  "CMakeFiles/gpuperf_ubench.dir/PerfDatabase.cpp.o"
  "CMakeFiles/gpuperf_ubench.dir/PerfDatabase.cpp.o.d"
  "libgpuperf_ubench.a"
  "libgpuperf_ubench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_ubench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
