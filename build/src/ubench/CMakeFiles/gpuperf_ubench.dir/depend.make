# Empty dependencies file for gpuperf_ubench.
# This may be replaced when dependencies are built.
