# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;16;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(arch_test "/root/repo/build/tests/arch_test")
set_tests_properties(arch_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;17;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isa_test "/root/repo/build/tests/isa_test")
set_tests_properties(isa_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;18;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(asmtool_test "/root/repo/build/tests/asmtool_test")
set_tests_properties(asmtool_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;19;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_functional_test "/root/repo/build/tests/sim_functional_test")
set_tests_properties(sim_functional_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;20;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_timing_test "/root/repo/build/tests/sim_timing_test")
set_tests_properties(sim_timing_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;21;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_test "/root/repo/build/tests/model_test")
set_tests_properties(model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;23;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kernelgen_test "/root/repo/build/tests/kernelgen_test")
set_tests_properties(kernelgen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;24;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sgemm_test "/root/repo/build/tests/sgemm_test")
set_tests_properties(sgemm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;25;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;26;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ubench_test "/root/repo/build/tests/ubench_test")
set_tests_properties(ubench_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;28;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;29;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_property_test "/root/repo/build/tests/sim_property_test")
set_tests_properties(sim_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;30;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(notation_tuner_test "/root/repo/build/tests/notation_tuner_test")
set_tests_properties(notation_tuner_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;31;gpuperf_add_test;/root/repo/tests/CMakeLists.txt;0;")
