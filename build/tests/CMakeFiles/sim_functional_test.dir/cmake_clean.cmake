file(REMOVE_RECURSE
  "CMakeFiles/sim_functional_test.dir/SimFunctionalTest.cpp.o"
  "CMakeFiles/sim_functional_test.dir/SimFunctionalTest.cpp.o.d"
  "sim_functional_test"
  "sim_functional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_functional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
