file(REMOVE_RECURSE
  "CMakeFiles/asmtool_test.dir/AsmToolTest.cpp.o"
  "CMakeFiles/asmtool_test.dir/AsmToolTest.cpp.o.d"
  "asmtool_test"
  "asmtool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmtool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
