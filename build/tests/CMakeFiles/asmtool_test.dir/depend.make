# Empty dependencies file for asmtool_test.
# This may be replaced when dependencies are built.
