file(REMOVE_RECURSE
  "CMakeFiles/ubench_test.dir/UbenchTest.cpp.o"
  "CMakeFiles/ubench_test.dir/UbenchTest.cpp.o.d"
  "ubench_test"
  "ubench_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
