# Empty compiler generated dependencies file for notation_tuner_test.
# This may be replaced when dependencies are built.
