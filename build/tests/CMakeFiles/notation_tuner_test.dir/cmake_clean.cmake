file(REMOVE_RECURSE
  "CMakeFiles/notation_tuner_test.dir/NotationTunerTest.cpp.o"
  "CMakeFiles/notation_tuner_test.dir/NotationTunerTest.cpp.o.d"
  "notation_tuner_test"
  "notation_tuner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notation_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
