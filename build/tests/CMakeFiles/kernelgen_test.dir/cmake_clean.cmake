file(REMOVE_RECURSE
  "CMakeFiles/kernelgen_test.dir/KernelGenTest.cpp.o"
  "CMakeFiles/kernelgen_test.dir/KernelGenTest.cpp.o.d"
  "kernelgen_test"
  "kernelgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
