# Empty compiler generated dependencies file for fig5_sgemm_variants.
# This may be replaced when dependencies are built.
