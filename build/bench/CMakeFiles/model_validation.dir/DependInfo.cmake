
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/model_validation.cpp" "bench/CMakeFiles/model_validation.dir/model_validation.cpp.o" "gcc" "bench/CMakeFiles/model_validation.dir/model_validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/gpuperf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sgemm/CMakeFiles/gpuperf_sgemm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelgen/CMakeFiles/gpuperf_kernelgen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/gpuperf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ubench/CMakeFiles/gpuperf_ubench.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpuperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asmtool/CMakeFiles/gpuperf_asmtool.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gpuperf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpuperf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gpuperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
