file(REMOVE_RECURSE
  "CMakeFiles/fig3_register_blocking.dir/fig3_register_blocking.cpp.o"
  "CMakeFiles/fig3_register_blocking.dir/fig3_register_blocking.cpp.o.d"
  "fig3_register_blocking"
  "fig3_register_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_register_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
