# Empty compiler generated dependencies file for table2_math_throughput.
# This may be replaced when dependencies are built.
