file(REMOVE_RECURSE
  "CMakeFiles/table2_math_throughput.dir/table2_math_throughput.cpp.o"
  "CMakeFiles/table2_math_throughput.dir/table2_math_throughput.cpp.o.d"
  "table2_math_throughput"
  "table2_math_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_math_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
