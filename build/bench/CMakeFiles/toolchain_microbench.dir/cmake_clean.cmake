file(REMOVE_RECURSE
  "CMakeFiles/toolchain_microbench.dir/toolchain_microbench.cpp.o"
  "CMakeFiles/toolchain_microbench.dir/toolchain_microbench.cpp.o.d"
  "toolchain_microbench"
  "toolchain_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
