# Empty dependencies file for toolchain_microbench.
# This may be replaced when dependencies are built.
