# Empty dependencies file for fig6_sgemm_nn_fermi.
# This may be replaced when dependencies are built.
