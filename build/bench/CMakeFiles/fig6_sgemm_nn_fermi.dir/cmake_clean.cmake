file(REMOVE_RECURSE
  "CMakeFiles/fig6_sgemm_nn_fermi.dir/fig6_sgemm_nn_fermi.cpp.o"
  "CMakeFiles/fig6_sgemm_nn_fermi.dir/fig6_sgemm_nn_fermi.cpp.o.d"
  "fig6_sgemm_nn_fermi"
  "fig6_sgemm_nn_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sgemm_nn_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
