# Empty dependencies file for fig8_register_conflicts.
# This may be replaced when dependencies are built.
