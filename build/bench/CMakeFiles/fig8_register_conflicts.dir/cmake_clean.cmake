file(REMOVE_RECURSE
  "CMakeFiles/fig8_register_conflicts.dir/fig8_register_conflicts.cpp.o"
  "CMakeFiles/fig8_register_conflicts.dir/fig8_register_conflicts.cpp.o.d"
  "fig8_register_conflicts"
  "fig8_register_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_register_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
