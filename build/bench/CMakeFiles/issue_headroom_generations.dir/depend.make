# Empty dependencies file for issue_headroom_generations.
# This may be replaced when dependencies are built.
