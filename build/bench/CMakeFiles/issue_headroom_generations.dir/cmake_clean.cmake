file(REMOVE_RECURSE
  "CMakeFiles/issue_headroom_generations.dir/issue_headroom_generations.cpp.o"
  "CMakeFiles/issue_headroom_generations.dir/issue_headroom_generations.cpp.o.d"
  "issue_headroom_generations"
  "issue_headroom_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/issue_headroom_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
