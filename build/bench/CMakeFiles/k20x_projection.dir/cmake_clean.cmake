file(REMOVE_RECURSE
  "CMakeFiles/k20x_projection.dir/k20x_projection.cpp.o"
  "CMakeFiles/k20x_projection.dir/k20x_projection.cpp.o.d"
  "k20x_projection"
  "k20x_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k20x_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
