# Empty compiler generated dependencies file for k20x_projection.
# This may be replaced when dependencies are built.
