# Empty dependencies file for fig7_sgemm_nn_kepler.
# This may be replaced when dependencies are built.
