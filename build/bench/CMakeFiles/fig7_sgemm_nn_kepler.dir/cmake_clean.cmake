file(REMOVE_RECURSE
  "CMakeFiles/fig7_sgemm_nn_kepler.dir/fig7_sgemm_nn_kepler.cpp.o"
  "CMakeFiles/fig7_sgemm_nn_kepler.dir/fig7_sgemm_nn_kepler.cpp.o.d"
  "fig7_sgemm_nn_kepler"
  "fig7_sgemm_nn_kepler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sgemm_nn_kepler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
