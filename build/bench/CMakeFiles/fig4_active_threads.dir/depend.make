# Empty dependencies file for fig4_active_threads.
# This may be replaced when dependencies are built.
