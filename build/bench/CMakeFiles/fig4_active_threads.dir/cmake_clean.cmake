file(REMOVE_RECURSE
  "CMakeFiles/fig4_active_threads.dir/fig4_active_threads.cpp.o"
  "CMakeFiles/fig4_active_threads.dir/fig4_active_threads.cpp.o.d"
  "fig4_active_threads"
  "fig4_active_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_active_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
