# Empty dependencies file for fig2_ffma_lds_mix.
# This may be replaced when dependencies are built.
