file(REMOVE_RECURSE
  "CMakeFiles/fig2_ffma_lds_mix.dir/fig2_ffma_lds_mix.cpp.o"
  "CMakeFiles/fig2_ffma_lds_mix.dir/fig2_ffma_lds_mix.cpp.o.d"
  "fig2_ffma_lds_mix"
  "fig2_ffma_lds_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ffma_lds_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
