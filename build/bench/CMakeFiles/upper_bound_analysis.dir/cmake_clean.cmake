file(REMOVE_RECURSE
  "CMakeFiles/upper_bound_analysis.dir/upper_bound_analysis.cpp.o"
  "CMakeFiles/upper_bound_analysis.dir/upper_bound_analysis.cpp.o.d"
  "upper_bound_analysis"
  "upper_bound_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upper_bound_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
