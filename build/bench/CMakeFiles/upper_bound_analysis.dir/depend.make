# Empty dependencies file for upper_bound_analysis.
# This may be replaced when dependencies are built.
