# Empty dependencies file for table1_architecture.
# This may be replaced when dependencies are built.
