file(REMOVE_RECURSE
  "CMakeFiles/table1_architecture.dir/table1_architecture.cpp.o"
  "CMakeFiles/table1_architecture.dir/table1_architecture.cpp.o.d"
  "table1_architecture"
  "table1_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
