file(REMOVE_RECURSE
  "CMakeFiles/fig9_register_allocation.dir/fig9_register_allocation.cpp.o"
  "CMakeFiles/fig9_register_allocation.dir/fig9_register_allocation.cpp.o.d"
  "fig9_register_allocation"
  "fig9_register_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_register_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
