# Empty compiler generated dependencies file for fig9_register_allocation.
# This may be replaced when dependencies are built.
