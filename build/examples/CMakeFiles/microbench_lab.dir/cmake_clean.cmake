file(REMOVE_RECURSE
  "CMakeFiles/microbench_lab.dir/microbench_lab.cpp.o"
  "CMakeFiles/microbench_lab.dir/microbench_lab.cpp.o.d"
  "microbench_lab"
  "microbench_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
