# Empty dependencies file for sassdis.
# This may be replaced when dependencies are built.
