file(REMOVE_RECURSE
  "CMakeFiles/sassdis.dir/sassdis.cpp.o"
  "CMakeFiles/sassdis.dir/sassdis.cpp.o.d"
  "sassdis"
  "sassdis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sassdis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
