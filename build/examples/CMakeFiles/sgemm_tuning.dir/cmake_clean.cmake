file(REMOVE_RECURSE
  "CMakeFiles/sgemm_tuning.dir/sgemm_tuning.cpp.o"
  "CMakeFiles/sgemm_tuning.dir/sgemm_tuning.cpp.o.d"
  "sgemm_tuning"
  "sgemm_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgemm_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
