# Empty compiler generated dependencies file for sgemm_tuning.
# This may be replaced when dependencies are built.
