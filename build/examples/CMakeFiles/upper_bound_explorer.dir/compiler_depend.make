# Empty compiler generated dependencies file for upper_bound_explorer.
# This may be replaced when dependencies are built.
