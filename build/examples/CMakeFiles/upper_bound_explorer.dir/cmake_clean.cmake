file(REMOVE_RECURSE
  "CMakeFiles/upper_bound_explorer.dir/upper_bound_explorer.cpp.o"
  "CMakeFiles/upper_bound_explorer.dir/upper_bound_explorer.cpp.o.d"
  "upper_bound_explorer"
  "upper_bound_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upper_bound_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
