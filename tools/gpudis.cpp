//===- tools/gpudis.cpp - disassembler driver ------------------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Disassembles a binary module back to assembly text, optionally with the
// static analyses the paper ran on foreign binaries (instruction mix and
// the Figure 8 FFMA bank-conflict census).
//
//   gpudis module.gpub [--report]
//
//===----------------------------------------------------------------------===//

#include "analysis/BinaryAnalysis.h"
#include "asmtool/Disassembler.h"

#include <cstdio>
#include <cstring>

using namespace gpuperf;

static int usage() {
  std::fprintf(stderr,
               "usage: gpudis module.gpub [--report]\n"
               "\n"
               "  --report  print the static analysis report (instruction\n"
               "            mix, FFMA operand bank census) per kernel\n"
               "\n"
               "exit codes: 0 ok, 1 read error, 2 usage\n");
  return 2;
}

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  bool Report = false;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--report") == 0) {
      Report = true;
    } else if (Arg[0] == '-') {
      // A misspelled flag must not be silently opened as an input file.
      std::fprintf(stderr, "gpudis: unknown option '%s'\n", Arg);
      return usage();
    } else if (!Input) {
      Input = Arg;
    } else {
      std::fprintf(stderr, "gpudis: unexpected extra operand '%s'\n", Arg);
      return usage();
    }
  }
  if (!Input)
    return usage();
  auto M = Module::readFromFile(Input);
  if (!M) {
    std::fprintf(stderr, "gpudis: %s\n", M.message().c_str());
    return 1;
  }
  if (Report) {
    for (const Kernel &K : M->Kernels)
      std::printf("%s\n", renderKernelReport(K).c_str());
    return 0;
  }
  std::printf("%s", disassembleModule(*M).c_str());
  return 0;
}
