//===- tools/gpudis.cpp - disassembler driver ------------------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Disassembles a binary module back to assembly text, optionally with the
// static analyses the paper ran on foreign binaries (instruction mix and
// the Figure 8 FFMA bank-conflict census).
//
//   gpudis module.gpub [--report]
//
//===----------------------------------------------------------------------===//

#include "analysis/BinaryAnalysis.h"
#include "asmtool/Disassembler.h"

#include <cstdio>
#include <cstring>

using namespace gpuperf;

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  bool Report = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--report") == 0)
      Report = true;
    else if (!Input)
      Input = Argv[I];
    else
      Input = nullptr;
  }
  if (!Input) {
    std::fprintf(stderr, "usage: gpudis module.gpub [--report]\n");
    return 2;
  }
  auto M = Module::readFromFile(Input);
  if (!M) {
    std::fprintf(stderr, "gpudis: %s\n", M.message().c_str());
    return 1;
  }
  if (Report) {
    for (const Kernel &K : M->Kernels)
      std::printf("%s\n", renderKernelReport(K).c_str());
    return 0;
  }
  std::printf("%s", disassembleModule(*M).c_str());
  return 0;
}
