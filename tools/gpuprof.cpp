//===- tools/gpuprof.cpp - per-instruction profiler -------------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Runs one kernel on the simulated GPU with per-static-instruction
// profiling always on, and prints the annotated disassembly report:
// issues, dual-issue pairs, replay penalties, and lost issue slots by
// cause for every PC, plus per-loop-region achieved-vs-bound FFMA
// density. The same data can be written as a versioned JSON record for
// perfdiff and offline analysis.
//
//   gpuprof module.gpub [kernel] [--machine GTX580|GTX680]
//           [--grid X[,Y]] [--block N] [--param word]... [--mem bytes]
//           [--watchdog cycles] [--jobs N] [--schedule drip|list]
//           [--json FILE]
//
// Exit codes: 0 success, 1 load/launch error, 2 usage, 3 runtime trap.
//
//===----------------------------------------------------------------------===//

#include "analysis/HotspotReport.h"
#include "kernelgen/Scheduler.h"
#include "probe/ProbeEngine.h"
#include "sim/Launcher.h"
#include "support/Args.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace gpuperf;

static int usage() {
  std::fprintf(
      stderr,
      "usage: gpuprof module.gpub [kernel] [--machine GTX580|GTX680]\n"
      "               [--grid X[,Y]] [--block N] [--param word]...\n"
      "               [--mem bytes] [--watchdog cycles] [--jobs N]\n"
      "               [--schedule drip|list] [--json FILE]\n"
      "               [--probe FILE] [--probe-out FILE]\n"
      "\n"
      "  --schedule list     re-schedule the kernel (bank rotation +\n"
      "                      list scheduling) before profiling; 'drip'\n"
      "                      (default) profiles the module as loaded\n"
      "  --jobs N            threads simulating SMs concurrently; the\n"
      "                      profile is bit-identical for every N\n"
      "  --json FILE         also write the versioned profile record\n"
      "                      (schema_version %d) for perfdiff\n"
      "  --probe FILE        evaluate the declarative probe specs in FILE\n"
      "                      alongside the profile and print the results\n"
      "  --probe-out FILE    write the probe results as a versioned JSON\n"
      "                      record (requires --probe)\n"
      "\n"
      "exit codes: 0 ok, 1 load/launch error, 2 usage, 3 runtime trap\n",
      MetricsSchemaVersion);
  return 2;
}

/// Parses the integer value of flag \p Flag (clamped to [Min, Max]); on
/// any parse error prints a diagnostic naming the flag and exits 2.
static long long flagInt(const char *Flag, const char *Text, long long Min,
                         long long Max) {
  auto V = parseInteger(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "gpuprof: %s: %s\n", Flag, V.message().c_str());
    std::exit(2);
  }
  return *V;
}

/// Same for unsigned flags (rejects negative values outright).
static unsigned long long flagUnsigned(const char *Flag, const char *Text,
                                       unsigned long long Max) {
  auto V = parseUnsigned(Text, Max);
  if (!V) {
    std::fprintf(stderr, "gpuprof: %s: %s\n", Flag, V.message().c_str());
    std::exit(2);
  }
  return *V;
}

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  std::string KernelName;
  const MachineDesc *M = nullptr;
  LaunchConfig Config;
  Config.Dims.BlockX = 256;
  Config.Dims.GridX = 1;
  Config.Jobs = 0; // The CLI defaults to one job per hardware thread.
  size_t MemBytes = 0;
  bool Reschedule = false;
  std::string JsonPath;
  std::string ProbePath;
  std::string ProbeOutPath;
  ProbeEngine Probes;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--machine") == 0 && I + 1 < Argc) {
      M = findMachine(Argv[++I]);
      if (!M) {
        std::fprintf(stderr, "gpuprof: unknown machine\n");
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--grid") == 0 && I + 1 < Argc) {
      std::string Spec = Argv[++I];
      size_t Comma = Spec.find(',');
      if (Comma != std::string::npos) {
        Config.Dims.GridY = static_cast<int>(flagInt(
            "--grid", Spec.substr(Comma + 1).c_str(), 1, 1 << 30));
        Spec.resize(Comma);
      }
      Config.Dims.GridX =
          static_cast<int>(flagInt("--grid", Spec.c_str(), 1, 1 << 30));
    } else if (std::strcmp(Argv[I], "--block") == 0 && I + 1 < Argc) {
      Config.Dims.BlockX =
          static_cast<int>(flagInt("--block", Argv[++I], 1, 1 << 20));
    } else if (std::strcmp(Argv[I], "--param") == 0 && I + 1 < Argc) {
      Config.Params.push_back(static_cast<uint32_t>(
          flagUnsigned("--param", Argv[++I], 0xffffffffull)));
    } else if (std::strcmp(Argv[I], "--mem") == 0 && I + 1 < Argc) {
      MemBytes = static_cast<size_t>(
          flagUnsigned("--mem", Argv[++I], ~0ull >> 1));
    } else if (std::strcmp(Argv[I], "--watchdog") == 0 && I + 1 < Argc) {
      Config.WatchdogCycles = flagUnsigned("--watchdog", Argv[++I], ~0ull);
    } else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      Config.Jobs =
          static_cast<int>(flagInt("--jobs", Argv[++I], 0, 65536));
    } else if (std::strcmp(Argv[I], "--schedule") == 0 && I + 1 < Argc) {
      auto Choice = parseChoice(Argv[++I], {"drip", "list"});
      if (!Choice) {
        std::fprintf(stderr, "gpuprof: --schedule: %s\n",
                     Choice.message().c_str());
        return 2;
      }
      Reschedule = *Choice == 1;
    } else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      JsonPath = Argv[I] + 7;
    } else if (std::strcmp(Argv[I], "--probe") == 0 && I + 1 < Argc) {
      ProbePath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--probe=", 8) == 0) {
      ProbePath = Argv[I] + 8;
    } else if (std::strcmp(Argv[I], "--probe-out") == 0 && I + 1 < Argc) {
      ProbeOutPath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--probe-out=", 12) == 0) {
      ProbeOutPath = Argv[I] + 12;
    } else if (Argv[I][0] == '-') {
      return usage();
    } else if (!Input) {
      Input = Argv[I];
    } else if (KernelName.empty()) {
      KernelName = Argv[I];
    } else {
      return usage();
    }
  }
  if (!Input)
    return usage();
  if (!ProbeOutPath.empty() && ProbePath.empty()) {
    std::fprintf(stderr, "gpuprof: --probe-out requires --probe\n");
    return 2;
  }
  if (!ProbePath.empty()) {
    auto Specs = loadProbeSpecFile(ProbePath);
    if (!Specs) {
      std::fprintf(stderr, "gpuprof: --probe: %s\n",
                   Specs.message().c_str());
      return 2;
    }
    Probes = ProbeEngine(Specs.take());
  }

  auto Mod = Module::readFromFile(Input);
  if (!Mod) {
    std::fprintf(stderr, "gpuprof: %s\n", Mod.message().c_str());
    return 1;
  }
  if (!M)
    M = Mod->Arch == GpuGeneration::Kepler ? &gtx680() : &gtx580();
  const Kernel *K = KernelName.empty()
                        ? (Mod->Kernels.empty() ? nullptr
                                                : &Mod->Kernels[0])
                        : Mod->findKernel(KernelName);
  if (!K) {
    std::fprintf(stderr, "gpuprof: kernel not found\n");
    return 1;
  }
  Kernel Scheduled;
  if (Reschedule) {
    Scheduled = *K;
    rotateRegisterBanks(*M, Scheduled);
    scheduleKernel(*M, Scheduled);
    K = &Scheduled;
  }

  GlobalMemory GM;
  if (MemBytes) {
    auto Base = GM.tryAllocate(MemBytes);
    if (!Base) {
      std::fprintf(stderr, "gpuprof: --mem %zu: %s\n", MemBytes,
                   Base.message().c_str());
      return 1;
    }
    Config.Params.insert(Config.Params.begin(), *Base);
  }
  KernelProfile Profile;
  Config.Profile = &Profile;
  if (Probes.enabled())
    Config.Probes = &Probes;
  TrapInfo Trap;
  auto R = launchKernel(*M, *K, Config, GM, &Trap);
  if (!R) {
    if (Trap.valid()) {
      std::fprintf(stderr, "gpuprof: %s\n", Trap.toString().c_str());
      return 3;
    }
    std::fprintf(stderr, "gpuprof: %s\n", R.message().c_str());
    return 1;
  }

  std::printf("%s", renderAnnotatedReport(*M, *K, Profile).c_str());
  std::printf("\ncycles %.0f (%.3f us)\n", R->TotalCycles,
              R->seconds(*M) * 1e6);

  if (Probes.enabled()) {
    std::printf("\nprobe results (%s)\n%s", ProbePath.c_str(),
                Probes.report().c_str());
    if (!ProbeOutPath.empty()) {
      std::string Json =
          probeRecordJson(Probes, MetricsSchemaVersion, M->Name, K->Name);
      FILE *F = std::fopen(ProbeOutPath.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "gpuprof: --probe-out: cannot write '%s'\n",
                     ProbeOutPath.c_str());
        return 1;
      }
      size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
      bool CloseOk = std::fclose(F) == 0;
      if (Written != Json.size() || !CloseOk) {
        std::fprintf(stderr, "gpuprof: --probe-out: short write to '%s'\n",
                     ProbeOutPath.c_str());
        return 1;
      }
      std::printf("probe record %zu bytes -> %s\n", Json.size(),
                  ProbeOutPath.c_str());
    }
  }

  if (!JsonPath.empty()) {
    ProfileRecordInfo Info;
    Info.Schedule = Reschedule ? "list" : "drip";
    Info.GridX = Config.Dims.GridX;
    Info.GridY = Config.Dims.GridY;
    Info.BlockX = Config.Dims.BlockX;
    Info.BlockY = Config.Dims.BlockY;
    Info.TotalCycles = R->TotalCycles;
    std::string Json = profileRecordJson(*M, *K, Profile, Info);
    FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "gpuprof: --json: cannot write '%s'\n",
                   JsonPath.c_str());
      return 1;
    }
    size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
    bool CloseOk = std::fclose(F) == 0;
    if (Written != Json.size() || !CloseOk) {
      std::fprintf(stderr, "gpuprof: --json: short write to '%s'\n",
                   JsonPath.c_str());
      return 1;
    }
    std::printf("profile record %zu bytes -> %s\n", Json.size(),
                JsonPath.c_str());
  }
  return 0;
}
