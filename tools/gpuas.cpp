//===- tools/gpuas.cpp - assembler driver ----------------------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Assembles a text file in the native assembly language into a binary
// module (the role asfermi played for the paper).
//
//   gpuas input.asm [-o out.gpub] [--notation none|heuristic|tuned]
//
// The --notation option rewrites the Kepler scheduling control words with
// the chosen quality before writing the module.
//
//===----------------------------------------------------------------------===//

#include "asmtool/Assembler.h"
#include "asmtool/NotationTuner.h"
#include "support/Args.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace gpuperf;

static int usage() {
  std::fprintf(stderr,
               "usage: gpuas input.asm [-o out.gpub] "
               "[--notation none|heuristic|tuned]\n"
               "\n"
               "  --notation  rewrite the Kepler scheduling control words\n"
               "              with the chosen quality before writing\n"
               "\n"
               "exit codes: 0 ok, 1 assembly/write error, 2 usage\n");
  return 2;
}

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  std::string Output;
  bool HaveNotation = false;
  NotationQuality Notation = NotationQuality::Heuristic;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "-o") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "gpuas: -o: expected an output path\n");
        return usage();
      }
      Output = Argv[++I];
    } else if (std::strcmp(Arg, "--notation") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "gpuas: --notation: expected a quality\n");
        return usage();
      }
      Expected<int> Choice =
          parseChoice(Argv[++I], {"none", "heuristic", "tuned"});
      if (!Choice.hasValue()) {
        std::fprintf(stderr, "gpuas: --notation: %s\n",
                     Choice.message().c_str());
        return usage();
      }
      Notation = *Choice == 0   ? NotationQuality::None
                 : *Choice == 1 ? NotationQuality::Heuristic
                                : NotationQuality::Tuned;
      HaveNotation = true;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "gpuas: unknown option '%s'\n", Arg);
      return usage();
    } else if (!Input) {
      Input = Arg;
    } else {
      std::fprintf(stderr, "gpuas: unexpected extra operand '%s'\n", Arg);
      return usage();
    }
  }
  if (!Input)
    return usage();
  if (Output.empty()) {
    Output = Input;
    size_t Dot = Output.rfind('.');
    if (Dot != std::string::npos)
      Output.resize(Dot);
    Output += ".gpub";
  }

  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "gpuas: cannot open %s\n", Input);
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  auto M = assembleText(Buffer.str());
  if (!M) {
    std::fprintf(stderr, "gpuas: %s: %s\n", Input, M.message().c_str());
    return 1;
  }
  if (HaveNotation) {
    if (M->Arch == GpuGeneration::Kepler) {
      for (Kernel &K : M->Kernels)
        tuneNotations(gtx680(), K, Notation);
    } else {
      std::fprintf(stderr,
                   "gpuas: warning: --notation ignored for non-Kepler "
                   "module\n");
    }
  }
  if (Status S = M->writeToFile(Output); S.failed()) {
    std::fprintf(stderr, "gpuas: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("gpuas: wrote %s (%zu kernels)\n", Output.c_str(),
              M->Kernels.size());
  return 0;
}
