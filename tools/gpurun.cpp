//===- tools/gpurun.cpp - kernel launch driver ------------------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Loads a binary module and runs one kernel on the simulated GPU,
// printing the timing statistics -- the quick path for assembly-level
// microbenchmarking, which is the paper's core methodology.
//
//   gpurun module.gpub [kernel] [--machine GTX580|GTX680]
//          [--grid X[,Y]] [--block N] [--param word]... [--mem bytes]
//          [--watchdog cycles] [--jobs N] [--metrics] [--trace FILE]
//          [--profile FILE]
//
// Parameters are 32-bit words loaded into the constant bank (LDC);
// --mem reserves a global allocation whose base address is appended as
// the *first* parameter when present.
//
// Exit codes: 0 success, 1 load/launch error, 2 usage, 3 runtime trap
// (the structured diagnostic goes to stderr).
//
//===----------------------------------------------------------------------===//

#include "analysis/HotspotReport.h"
#include "kernelgen/Scheduler.h"
#include "probe/ProbeEngine.h"
#include "sim/Launcher.h"
#include "support/Args.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace gpuperf;

static int usage() {
  std::fprintf(
      stderr,
      "usage: gpurun module.gpub [kernel] [--machine GTX580|GTX680]\n"
      "              [--grid X[,Y]] [--block N] [--param word]...\n"
      "              [--mem bytes] [--watchdog cycles] [--jobs N]\n"
      "              [--metrics] [--trace FILE] [--trace-ring N]\n"
      "              [--profile FILE] [--probe FILE] [--probe-out FILE]\n"
      "              [--schedule drip|list]\n"
      "\n"
      "  --schedule list     re-schedule the kernel before launching:\n"
      "                      bank-rotate math operands, list-schedule\n"
      "                      every straight-line region against the\n"
      "                      machine's latency/issue model, and (Kepler)\n"
      "                      regenerate the control notations to match;\n"
      "                      'drip' (default) runs the module as loaded\n"
      "  --watchdog cycles   per-wave cycle budget before the launch\n"
      "                      fails with a WATCHDOG_TIMEOUT trap\n"
      "                      (default: derived from code size and warps)\n"
      "  --jobs N            threads simulating SMs concurrently; the\n"
      "                      result is bit-identical for every N\n"
      "                      (default: one per hardware thread; 1 =\n"
      "                      serial)\n"
      "  --metrics           print the per-cause issue-slot breakdown:\n"
      "                      where every scheduler slot of every cycle\n"
      "                      went (issued, scoreboard, bank_conflict,\n"
      "                      dispatch_limit, lds_throughput, barrier,\n"
      "                      no_eligible_warp)\n"
      "  --trace FILE        write a Chrome trace_event JSON timeline of\n"
      "                      per-warp issues and per-scheduler stalls\n"
      "                      (open in chrome://tracing or Perfetto)\n"
      "  --trace-ring N      retained trace events per track before the\n"
      "                      oldest are evicted (default 4096); evictions\n"
      "                      are reported in the JSON and on stderr\n"
      "  --probe FILE        evaluate the declarative probe specs in FILE\n"
      "                      over the launch's simulation events and print\n"
      "                      the results (see probes/ for stock specs);\n"
      "                      bit-identical for every --jobs value\n"
      "  --probe-out FILE    additionally write the probe results as a\n"
      "                      versioned JSON record (requires --probe)\n"
      "  --profile FILE      profile every static instruction (issues,\n"
      "                      dual issues, replays, lost slots by cause),\n"
      "                      print the annotated disassembly report, and\n"
      "                      write the versioned JSON record to FILE\n"
      "\n"
      "exit codes: 0 ok, 1 load/launch error, 2 usage, 3 runtime trap\n");
  return 2;
}

/// Parses the integer value of flag \p Flag (clamped to [Min, Max]); on
/// any parse error prints a diagnostic naming the flag and exits 2.
static long long flagInt(const char *Flag, const char *Text, long long Min,
                         long long Max) {
  auto V = parseInteger(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "gpurun: %s: %s\n", Flag, V.message().c_str());
    std::exit(2);
  }
  return *V;
}

/// Same for unsigned flags (rejects negative values outright).
static unsigned long long flagUnsigned(const char *Flag, const char *Text,
                                       unsigned long long Max) {
  auto V = parseUnsigned(Text, Max);
  if (!V) {
    std::fprintf(stderr, "gpurun: %s: %s\n", Flag, V.message().c_str());
    std::exit(2);
  }
  return *V;
}

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  std::string KernelName;
  const MachineDesc *M = nullptr;
  LaunchConfig Config;
  Config.Dims.BlockX = 256;
  Config.Dims.GridX = 1;
  Config.Jobs = 0; // The CLI defaults to one job per hardware thread.
  size_t MemBytes = 0;
  bool Metrics = false;
  bool Reschedule = false;
  std::string TracePath;
  SimTrace Trace;
  std::string ProfilePath;
  KernelProfile Profile;
  std::string ProbePath;
  std::string ProbeOutPath;
  ProbeEngine Probes;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--machine") == 0 && I + 1 < Argc) {
      M = findMachine(Argv[++I]);
      if (!M) {
        std::fprintf(stderr, "gpurun: unknown machine\n");
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--grid") == 0 && I + 1 < Argc) {
      std::string Spec = Argv[++I];
      size_t Comma = Spec.find(',');
      if (Comma != std::string::npos) {
        Config.Dims.GridY = static_cast<int>(flagInt(
            "--grid", Spec.substr(Comma + 1).c_str(), 1, 1 << 30));
        Spec.resize(Comma);
      }
      Config.Dims.GridX =
          static_cast<int>(flagInt("--grid", Spec.c_str(), 1, 1 << 30));
    } else if (std::strcmp(Argv[I], "--block") == 0 && I + 1 < Argc) {
      Config.Dims.BlockX =
          static_cast<int>(flagInt("--block", Argv[++I], 1, 1 << 20));
    } else if (std::strcmp(Argv[I], "--param") == 0 && I + 1 < Argc) {
      Config.Params.push_back(static_cast<uint32_t>(
          flagUnsigned("--param", Argv[++I], 0xffffffffull)));
    } else if (std::strcmp(Argv[I], "--mem") == 0 && I + 1 < Argc) {
      MemBytes = static_cast<size_t>(
          flagUnsigned("--mem", Argv[++I], ~0ull >> 1));
    } else if (std::strcmp(Argv[I], "--watchdog") == 0 && I + 1 < Argc) {
      Config.WatchdogCycles = flagUnsigned("--watchdog", Argv[++I], ~0ull);
    } else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      Config.Jobs =
          static_cast<int>(flagInt("--jobs", Argv[++I], 0, 65536));
    } else if (std::strcmp(Argv[I], "--schedule") == 0 && I + 1 < Argc) {
      auto Choice = parseChoice(Argv[++I], {"drip", "list"});
      if (!Choice) {
        std::fprintf(stderr, "gpurun: --schedule: %s\n",
                     Choice.message().c_str());
        return 2;
      }
      Reschedule = *Choice == 1;
    } else if (std::strcmp(Argv[I], "--metrics") == 0) {
      Metrics = true;
    } else if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc) {
      TracePath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--trace=", 8) == 0) {
      TracePath = Argv[I] + 8;
    } else if (std::strcmp(Argv[I], "--trace-ring") == 0 && I + 1 < Argc) {
      Trace.RingCapacity = static_cast<size_t>(
          flagInt("--trace-ring", Argv[++I], 1, 1 << 30));
    } else if (std::strcmp(Argv[I], "--profile") == 0 && I + 1 < Argc) {
      ProfilePath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--profile=", 10) == 0) {
      ProfilePath = Argv[I] + 10;
    } else if (std::strcmp(Argv[I], "--probe") == 0 && I + 1 < Argc) {
      ProbePath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--probe=", 8) == 0) {
      ProbePath = Argv[I] + 8;
    } else if (std::strcmp(Argv[I], "--probe-out") == 0 && I + 1 < Argc) {
      ProbeOutPath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--probe-out=", 12) == 0) {
      ProbeOutPath = Argv[I] + 12;
    } else if (Argv[I][0] == '-') {
      return usage();
    } else if (!Input) {
      Input = Argv[I];
    } else if (KernelName.empty()) {
      KernelName = Argv[I];
    } else {
      return usage();
    }
  }
  if (!Input)
    return usage();
  if (!ProbeOutPath.empty() && ProbePath.empty()) {
    std::fprintf(stderr, "gpurun: --probe-out requires --probe\n");
    return 2;
  }
  if (!ProbePath.empty()) {
    auto Specs = loadProbeSpecFile(ProbePath);
    if (!Specs) {
      std::fprintf(stderr, "gpurun: --probe: %s\n",
                   Specs.message().c_str());
      return 2;
    }
    Probes = ProbeEngine(Specs.take());
  }

  auto Mod = Module::readFromFile(Input);
  if (!Mod) {
    std::fprintf(stderr, "gpurun: %s\n", Mod.message().c_str());
    return 1;
  }
  if (!M)
    M = Mod->Arch == GpuGeneration::Kepler ? &gtx680() : &gtx580();
  const Kernel *K = KernelName.empty()
                        ? (Mod->Kernels.empty() ? nullptr
                                                : &Mod->Kernels[0])
                        : Mod->findKernel(KernelName);
  if (!K) {
    std::fprintf(stderr, "gpurun: kernel not found\n");
    return 1;
  }
  Kernel Scheduled;
  if (Reschedule) {
    Scheduled = *K;
    int Swaps = rotateRegisterBanks(*M, Scheduled);
    SchedulerStats SS = scheduleKernel(*M, Scheduled);
    std::printf("schedule           %d region%s, %d instruction%s moved, "
                "%d bank swap%s\n",
                SS.Regions, SS.Regions == 1 ? "" : "s", SS.Moved,
                SS.Moved == 1 ? "" : "s", Swaps, Swaps == 1 ? "" : "s");
    K = &Scheduled;
  }

  GlobalMemory GM;
  if (MemBytes) {
    auto Base = GM.tryAllocate(MemBytes);
    if (!Base) {
      std::fprintf(stderr, "gpurun: --mem %zu: %s\n", MemBytes,
                   Base.message().c_str());
      return 1;
    }
    Config.Params.insert(Config.Params.begin(), *Base);
  }
  if (!TracePath.empty())
    Config.Trace = &Trace;
  if (!ProfilePath.empty())
    Config.Profile = &Profile;
  if (Probes.enabled())
    Config.Probes = &Probes;
  TrapInfo Trap;
  auto R = launchKernel(*M, *K, Config, GM, &Trap);
  if (!R) {
    if (Trap.valid()) {
      std::fprintf(stderr, "gpurun: %s\n", Trap.toString().c_str());
      return 3;
    }
    std::fprintf(stderr, "gpurun: %s\n", R.message().c_str());
    return 1;
  }
  const SimStats &S = R->Stats;
  std::printf("kernel %s on %s: grid %dx%d, block %d "
              "(%d blocks/SM resident, limited by %s)\n",
              K->Name.c_str(), M->Name.c_str(), Config.Dims.GridX,
              Config.Dims.GridY, Config.Dims.BlockX, R->Occ.ActiveBlocks,
              occupancyBindingLimitNames(R->Occ).c_str());
  std::printf("cycles             %12.0f\n", R->TotalCycles);
  std::printf("time               %12.3f us\n", R->seconds(*M) * 1e6);
  std::printf("thread insts       %12llu (%.2f per cycle per SM)\n",
              static_cast<unsigned long long>(S.ThreadInstsIssued),
              R->TotalCycles > 0
                  ? S.ThreadInstsIssued / R->TotalCycles / M->NumSMs
                  : 0.0);
  std::printf("FFMA insts         %12llu\n",
              static_cast<unsigned long long>(S.ffmaThreadInsts()));
  std::printf("global bytes       %12llu\n",
              static_cast<unsigned long long>(S.GlobalBytes));
  std::printf("shared conflicts   %12llu\n",
              static_cast<unsigned long long>(S.SharedConflictEvents));
  std::printf("scheduler replays  %12llu\n",
              static_cast<unsigned long long>(S.ReplayPenalties));

  if (Metrics) {
    // Issue-slot breakdown: each simulated cycle, each warp scheduler
    // owned exactly one slot, accounted to exactly one cause. The totals
    // therefore sum to aggregate SM-cycles x schedulers -- printed last
    // so the identity is checkable by eye (and by the test suite).
    int Scheds = M->WarpSchedulersPerSM > 1 ? M->WarpSchedulersPerSM : 1;
    uint64_t Total = S.Breakdown.total();
    std::printf("\nissue-slot breakdown (%d scheduler%s x %llu "
                "aggregate SM-cycles)\n",
                Scheds, Scheds == 1 ? "" : "s",
                static_cast<unsigned long long>(S.perSMCycles()));
    for (size_t U = 0; U < NumSlotUses; ++U) {
      uint64_t Slots = S.Breakdown.Slots[U];
      std::printf("  %-18s %14llu (%5.1f%%)\n",
                  slotUseName(static_cast<SlotUse>(U)),
                  static_cast<unsigned long long>(Slots),
                  Total ? 100.0 * Slots / Total : 0.0);
    }
    bool Holds =
        Total == S.perSMCycles() * static_cast<uint64_t>(Scheds);
    std::printf("  %-18s %14llu (%s aggregate cycles x schedulers)\n",
                "total", static_cast<unsigned long long>(Total),
                Holds ? "==" : "!=");
    if (!Holds) {
      std::fprintf(stderr,
                   "gpurun: issue-slot invariant violated (total %llu != "
                   "%llu x %d)\n",
                   static_cast<unsigned long long>(Total),
                   static_cast<unsigned long long>(S.perSMCycles()),
                   Scheds);
      return 1;
    }
  }

  if (!TracePath.empty()) {
    if (Status St = writeChromeTrace(Trace, *M, TracePath); !St) {
      std::fprintf(stderr, "gpurun: --trace: %s\n", St.message().c_str());
      return 1;
    }
    std::printf("trace              %zu events -> %s%s\n",
                Trace.Events.size(), TracePath.c_str(),
                Trace.DroppedEvents
                    ? formatString(" (%llu oldest events dropped by the "
                                   "per-track ring)",
                                   static_cast<unsigned long long>(
                                       Trace.DroppedEvents))
                          .c_str()
                    : "");
    if (Trace.DroppedEvents)
      std::fprintf(stderr,
                   "gpurun: warning: the trace is truncated: %llu oldest "
                   "events were evicted by the per-track ring "
                   "(capacity %zu); raise --trace-ring to keep them\n",
                   static_cast<unsigned long long>(Trace.DroppedEvents),
                   Trace.RingCapacity);
  }

  if (Probes.enabled()) {
    std::printf("\nprobe results (%s)\n%s", ProbePath.c_str(),
                Probes.report().c_str());
    if (!ProbeOutPath.empty()) {
      std::string Json =
          probeRecordJson(Probes, MetricsSchemaVersion, M->Name, K->Name);
      FILE *F = std::fopen(ProbeOutPath.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "gpurun: --probe-out: cannot write '%s'\n",
                     ProbeOutPath.c_str());
        return 1;
      }
      size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
      bool CloseOk = std::fclose(F) == 0;
      if (Written != Json.size() || !CloseOk) {
        std::fprintf(stderr, "gpurun: --probe-out: short write to '%s'\n",
                     ProbeOutPath.c_str());
        return 1;
      }
      std::printf("probe record       %zu bytes -> %s\n", Json.size(),
                  ProbeOutPath.c_str());
    }
  }

  if (!ProfilePath.empty()) {
    std::printf("\n%s",
                renderAnnotatedReport(*M, *K, Profile).c_str());
    ProfileRecordInfo Info;
    Info.Schedule = Reschedule ? "list" : "drip";
    Info.GridX = Config.Dims.GridX;
    Info.GridY = Config.Dims.GridY;
    Info.BlockX = Config.Dims.BlockX;
    Info.BlockY = Config.Dims.BlockY;
    Info.TotalCycles = R->TotalCycles;
    std::string Json = profileRecordJson(*M, *K, Profile, Info);
    FILE *F = std::fopen(ProfilePath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "gpurun: --profile: cannot write '%s'\n",
                   ProfilePath.c_str());
      return 1;
    }
    size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
    bool CloseOk = std::fclose(F) == 0;
    if (Written != Json.size() || !CloseOk) {
      std::fprintf(stderr, "gpurun: --profile: short write to '%s'\n",
                   ProfilePath.c_str());
      return 1;
    }
    std::printf("profile            %zu bytes -> %s\n", Json.size(),
                ProfilePath.c_str());
  }
  return 0;
}
