//===- tools/gpurun.cpp - kernel launch driver ------------------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Loads a binary module and runs one kernel on the simulated GPU,
// printing the timing statistics -- the quick path for assembly-level
// microbenchmarking, which is the paper's core methodology.
//
//   gpurun module.gpub [kernel] [--machine GTX580|GTX680]
//          [--grid X[,Y]] [--block N] [--param word]... [--mem bytes]
//          [--watchdog cycles] [--jobs N]
//
// Parameters are 32-bit words loaded into the constant bank (LDC);
// --mem reserves a global allocation whose base address is appended as
// the *first* parameter when present.
//
// Exit codes: 0 success, 1 load/launch error, 2 usage, 3 runtime trap
// (the structured diagnostic goes to stderr).
//
//===----------------------------------------------------------------------===//

#include "sim/Launcher.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace gpuperf;

static int usage() {
  std::fprintf(
      stderr,
      "usage: gpurun module.gpub [kernel] [--machine GTX580|GTX680]\n"
      "              [--grid X[,Y]] [--block N] [--param word]...\n"
      "              [--mem bytes] [--watchdog cycles] [--jobs N]\n"
      "\n"
      "  --watchdog cycles   per-wave cycle budget before the launch\n"
      "                      fails with a WATCHDOG_TIMEOUT trap\n"
      "                      (default: derived from code size and warps)\n"
      "  --jobs N            threads simulating SMs concurrently; the\n"
      "                      result is bit-identical for every N\n"
      "                      (default: one per hardware thread; 1 =\n"
      "                      serial)\n"
      "\n"
      "exit codes: 0 ok, 1 load/launch error, 2 usage, 3 runtime trap\n");
  return 2;
}

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  std::string KernelName;
  const MachineDesc *M = nullptr;
  LaunchConfig Config;
  Config.Dims.BlockX = 256;
  Config.Dims.GridX = 1;
  Config.Jobs = 0; // The CLI defaults to one job per hardware thread.
  size_t MemBytes = 0;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--machine") == 0 && I + 1 < Argc) {
      M = findMachine(Argv[++I]);
      if (!M) {
        std::fprintf(stderr, "gpurun: unknown machine\n");
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--grid") == 0 && I + 1 < Argc) {
      const char *Spec = Argv[++I];
      Config.Dims.GridX = std::atoi(Spec);
      if (const char *Comma = std::strchr(Spec, ','))
        Config.Dims.GridY = std::atoi(Comma + 1);
    } else if (std::strcmp(Argv[I], "--block") == 0 && I + 1 < Argc) {
      Config.Dims.BlockX = std::atoi(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--param") == 0 && I + 1 < Argc) {
      Config.Params.push_back(
          static_cast<uint32_t>(std::strtoul(Argv[++I], nullptr, 0)));
    } else if (std::strcmp(Argv[I], "--mem") == 0 && I + 1 < Argc) {
      MemBytes = static_cast<size_t>(std::strtoull(Argv[++I], nullptr, 0));
    } else if (std::strcmp(Argv[I], "--watchdog") == 0 && I + 1 < Argc) {
      char *End = nullptr;
      Config.WatchdogCycles = std::strtoull(Argv[++I], &End, 0);
      if (End == Argv[I] || *End != '\0') {
        std::fprintf(stderr, "gpurun: --watchdog expects a cycle count\n");
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc) {
      Config.Jobs = std::atoi(Argv[++I]);
    } else if (Argv[I][0] == '-') {
      return usage();
    } else if (!Input) {
      Input = Argv[I];
    } else if (KernelName.empty()) {
      KernelName = Argv[I];
    } else {
      return usage();
    }
  }
  if (!Input)
    return usage();

  auto Mod = Module::readFromFile(Input);
  if (!Mod) {
    std::fprintf(stderr, "gpurun: %s\n", Mod.message().c_str());
    return 1;
  }
  if (!M)
    M = Mod->Arch == GpuGeneration::Kepler ? &gtx680() : &gtx580();
  const Kernel *K = KernelName.empty()
                        ? (Mod->Kernels.empty() ? nullptr
                                                : &Mod->Kernels[0])
                        : Mod->findKernel(KernelName);
  if (!K) {
    std::fprintf(stderr, "gpurun: kernel not found\n");
    return 1;
  }

  GlobalMemory GM;
  if (MemBytes) {
    auto Base = GM.tryAllocate(MemBytes);
    if (!Base) {
      std::fprintf(stderr, "gpurun: --mem %zu: %s\n", MemBytes,
                   Base.message().c_str());
      return 1;
    }
    Config.Params.insert(Config.Params.begin(), *Base);
  }
  TrapInfo Trap;
  auto R = launchKernel(*M, *K, Config, GM, &Trap);
  if (!R) {
    if (Trap.valid()) {
      std::fprintf(stderr, "gpurun: %s\n", Trap.toString().c_str());
      return 3;
    }
    std::fprintf(stderr, "gpurun: %s\n", R.message().c_str());
    return 1;
  }
  const SimStats &S = R->Stats;
  std::printf("kernel %s on %s: grid %dx%d, block %d "
              "(%d blocks/SM resident, limited by %s)\n",
              K->Name.c_str(), M->Name.c_str(), Config.Dims.GridX,
              Config.Dims.GridY, Config.Dims.BlockX, R->Occ.ActiveBlocks,
              occupancyLimitName(R->Occ.Limit));
  std::printf("cycles             %12.0f\n", R->TotalCycles);
  std::printf("time               %12.3f us\n", R->seconds(*M) * 1e6);
  std::printf("thread insts       %12llu (%.2f per cycle per SM)\n",
              static_cast<unsigned long long>(S.ThreadInstsIssued),
              R->TotalCycles > 0
                  ? S.ThreadInstsIssued / R->TotalCycles / M->NumSMs
                  : 0.0);
  std::printf("FFMA insts         %12llu\n",
              static_cast<unsigned long long>(S.ffmaThreadInsts()));
  std::printf("global bytes       %12llu\n",
              static_cast<unsigned long long>(S.GlobalBytes));
  std::printf("shared conflicts   %12llu\n",
              static_cast<unsigned long long>(S.SharedConflictEvents));
  std::printf("scheduler replays  %12llu\n",
              static_cast<unsigned long long>(S.ReplayPenalties));
  return 0;
}
