//===- tools/perfdiff.cpp - perf-record comparison gate ---------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Compares two metrics records (bench --json or profile records), or a
// directory of current records against a directory of committed
// baselines, and exits non-zero when any numeric leaf moved by more
// than its tolerance. This is the regression gate behind
// run_benches.sh --check and the CI bench smoke.
//
//   perfdiff baseline.json current.json [--tolerance metric=frac]...
//   perfdiff --baselines DIR --current DIR [--tolerance metric=frac]...
//
// Records are refused (exit 2) rather than diffed when they are not
// comparable: unreadable/invalid JSON, differing schema_version, or
// differing simulated machine sets -- a number that moved because the
// schema or the machine changed is not a regression signal.
//
// Volatile host-dependent keys (wall_seconds, sim_cycles_per_sec,
// jobs) are never compared. Everything else must match: numbers to
// within the per-metric relative tolerance (default 0 -- the simulator
// is deterministic), strings and booleans exactly, containers in shape.
//
// Exit codes: 0 records match, 1 regression/difference, 2 usage or
// refusal or I/O error.
//
//===----------------------------------------------------------------------===//

#include "support/Args.h"
#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace gpuperf;

static int usage() {
  std::fprintf(
      stderr,
      "usage: perfdiff baseline.json current.json [options]\n"
      "       perfdiff --baselines DIR --current DIR [options]\n"
      "\n"
      "  --tolerance metric=frac   allow the numeric leaf named 'metric'\n"
      "                            to deviate by the relative fraction\n"
      "                            (e.g. cycles=0.02 allows 2%%); the\n"
      "                            name may also be a dotted path\n"
      "                            ('probes.gmem_bytes.value=0.05') or a\n"
      "                            dotted prefix covering a subtree\n"
      "                            ('probes=0.05'); the name '*' sets\n"
      "                            the default for every metric\n"
      "                            (otherwise 0: exact match)\n"
      "  --require NAME            fail (exit 1) unless the current\n"
      "                            record has the field NAME, given as a\n"
      "                            dotted path ('probes.gmem_bytes');\n"
      "                            repeatable -- guards against a gated\n"
      "                            object silently vanishing from new\n"
      "                            records\n"
      "  --ignore NAME             skip the object key NAME entirely\n"
      "                            (repeatable); for fields that\n"
      "                            legitimately differ between the runs\n"
      "                            under comparison, e.g. sim_cycles\n"
      "                            when diffing a resumed sweep against\n"
      "                            an uninterrupted one\n"
      "\n"
      "Records with different schema_version or machine fields are\n"
      "refused, not diffed. The keys wall_seconds, sim_cycles_per_sec\n"
      "and jobs are never compared.\n"
      "\n"
      "exit codes: 0 match, 1 regression, 2 usage/refusal/IO\n");
  return 2;
}

namespace {

struct DiffOptions {
  std::map<std::string, double> Tolerance;
  std::set<std::string> Ignored;      ///< Extra keys from --ignore.
  std::vector<std::string> Require;   ///< Dotted paths from --require.

  /// Most-specific tolerance wins: the full dotted path, then its
  /// longest dot-boundary prefix (so 'probes=0.05' covers the whole
  /// subtree), then the bare leaf name, then '*'.
  double toleranceFor(const std::string &Path,
                      const std::string &Leaf) const {
    if (auto It = Tolerance.find(Path); It != Tolerance.end())
      return It->second;
    std::string Prefix = Path;
    for (size_t Dot = Prefix.rfind('.'); Dot != std::string::npos;
         Dot = Prefix.rfind('.')) {
      Prefix.resize(Dot);
      if (auto It = Tolerance.find(Prefix); It != Tolerance.end())
        return It->second;
    }
    if (auto It = Tolerance.find(Leaf); It != Tolerance.end())
      return It->second;
    if (auto It = Tolerance.find("*"); It != Tolerance.end())
      return It->second;
    return 0.0;
  }

  /// Host-dependent keys that legitimately differ between runs, plus
  /// whatever the caller asked to skip.
  bool ignoredKey(const std::string &Key) const {
    return Key == "wall_seconds" || Key == "sim_cycles_per_sec" ||
           Key == "jobs" || Ignored.count(Key) != 0;
  }
};

const char *kindName(JsonValue::Kind K) {
  switch (K) {
  case JsonValue::Kind::Null:
    return "null";
  case JsonValue::Kind::Bool:
    return "bool";
  case JsonValue::Kind::Number:
    return "number";
  case JsonValue::Kind::String:
    return "string";
  case JsonValue::Kind::Array:
    return "array";
  case JsonValue::Kind::Object:
    return "object";
  }
  return "?";
}

/// Recursively compares \p B (baseline) against \p C (current),
/// appending one line per difference. \p Leaf is the nearest enclosing
/// object key -- the name tolerances are looked up under, so array
/// elements inherit their field's tolerance.
void diffValue(const JsonValue &B, const JsonValue &C,
               const std::string &Path, const std::string &Leaf,
               const DiffOptions &O, std::vector<std::string> &Out) {
  if (B.K != C.K) {
    Out.push_back(formatString("%s: kind changed (%s -> %s)",
                               Path.c_str(), kindName(B.K),
                               kindName(C.K)));
    return;
  }
  switch (B.K) {
  case JsonValue::Kind::Null:
    return;
  case JsonValue::Kind::Bool:
    if (B.Bool != C.Bool)
      Out.push_back(formatString("%s: %s -> %s", Path.c_str(),
                                 B.Bool ? "true" : "false",
                                 C.Bool ? "true" : "false"));
    return;
  case JsonValue::Kind::Number: {
    double Tol = O.toleranceFor(Path, Leaf);
    double Scale = std::max(std::fabs(B.Number), std::fabs(C.Number));
    double Delta = std::fabs(C.Number - B.Number);
    // Exact tolerance means exact match; otherwise relative to the
    // larger magnitude so the check is symmetric in its arguments.
    bool Ok = Tol <= 0 ? Delta == 0 : Delta <= Tol * Scale;
    if (!Ok)
      Out.push_back(formatString(
          "%s: %.6g -> %.6g (%+.2f%%, tolerance %.2f%%)", Path.c_str(),
          B.Number, C.Number,
          Scale > 0 ? 100.0 * (C.Number - B.Number) / Scale : 0.0,
          100.0 * Tol));
    return;
  }
  case JsonValue::Kind::String:
    if (B.Str != C.Str)
      Out.push_back(formatString("%s: \"%s\" -> \"%s\"", Path.c_str(),
                                 B.Str.c_str(), C.Str.c_str()));
    return;
  case JsonValue::Kind::Array: {
    if (B.Items.size() != C.Items.size()) {
      Out.push_back(formatString("%s: length changed (%zu -> %zu)",
                                 Path.c_str(), B.Items.size(),
                                 C.Items.size()));
      return;
    }
    for (size_t I = 0; I < B.Items.size(); ++I)
      diffValue(B.Items[I], C.Items[I],
                formatString("%s[%zu]", Path.c_str(), I), Leaf, O, Out);
    return;
  }
  case JsonValue::Kind::Object: {
    for (const auto &[Key, BV] : B.Members) {
      if (O.ignoredKey(Key))
        continue;
      std::string Sub = Path.empty() ? Key : Path + "." + Key;
      const JsonValue *CV = C.find(Key);
      if (!CV) {
        Out.push_back(formatString("%s: missing from current record",
                                   Sub.c_str()));
        continue;
      }
      diffValue(BV, *CV, Sub, Key, O, Out);
    }
    for (const auto &[Key, CV] : C.Members) {
      (void)CV;
      if (!O.ignoredKey(Key) && !B.find(Key))
        Out.push_back(formatString(
            "%s%s%s: not present in baseline", Path.c_str(),
            Path.empty() ? "" : ".", Key.c_str()));
    }
    return;
  }
  }
}

Expected<JsonValue> loadRecord(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::error("cannot read '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  auto V = jsonParse(SS.str());
  if (!V)
    return Status::error("'" + Path + "': " + V.message());
  return V;
}

/// The record's simulated machine identity: the "machine" string or
/// the sorted "machines" list, rendered one-per-token for comparison.
std::string machineKey(const JsonValue &V) {
  if (const JsonValue *M = V.find("machine"); M && M->isString())
    return M->Str;
  if (const JsonValue *Ms = V.find("machines"); Ms && Ms->isArray()) {
    std::vector<std::string> Names;
    for (const JsonValue &E : Ms->Items)
      if (E.isString())
        Names.push_back(E.Str);
    std::sort(Names.begin(), Names.end());
    std::string Out;
    for (const std::string &N : Names)
      Out += N + ";";
    return Out;
  }
  return "";
}

/// Refusal checks: both records must carry the same schema_version and
/// the same machine identity. Returns a message when not comparable.
std::string refusalReason(const JsonValue &B, const JsonValue &C) {
  const JsonValue *BS = B.find("schema_version");
  const JsonValue *CS = C.find("schema_version");
  if (!BS || !BS->isNumber())
    return "baseline has no schema_version";
  if (!CS || !CS->isNumber())
    return "current record has no schema_version";
  if (BS->Number != CS->Number)
    return formatString("schema_version mismatch (%.0f vs %.0f)",
                        BS->Number, CS->Number);
  std::string BM = machineKey(B), CM = machineKey(C);
  if (BM != CM)
    return formatString("machine mismatch ('%s' vs '%s')", BM.c_str(),
                        CM.c_str());
  return "";
}

/// Diffs one baseline/current file pair. Returns 0/1/2 like main.
int diffFiles(const std::string &Baseline, const std::string &Current,
              const DiffOptions &O) {
  auto B = loadRecord(Baseline);
  if (!B) {
    std::fprintf(stderr, "perfdiff: %s\n", B.message().c_str());
    return 2;
  }
  auto C = loadRecord(Current);
  if (!C) {
    std::fprintf(stderr, "perfdiff: %s\n", C.message().c_str());
    return 2;
  }
  if (std::string Why = refusalReason(*B, *C); !Why.empty()) {
    std::fprintf(stderr, "perfdiff: refusing to compare %s vs %s: %s\n",
                 Baseline.c_str(), Current.c_str(), Why.c_str());
    return 2;
  }
  std::vector<std::string> Diffs;
  // --require guards fields the baseline may predate: a missing
  // baseline key is only reported as informational drift, so without
  // this an object could vanish from new records and the gate would
  // still pass once the baseline was regenerated without it.
  for (const std::string &Name : O.Require) {
    const JsonValue *V = &*C;
    size_t Pos = 0;
    while (V) {
      size_t Dot = Name.find('.', Pos);
      std::string Part = Name.substr(
          Pos, Dot == std::string::npos ? std::string::npos : Dot - Pos);
      V = V->isObject() ? V->find(Part) : nullptr;
      if (Dot == std::string::npos)
        break;
      Pos = Dot + 1;
    }
    if (!V)
      Diffs.push_back(formatString(
          "%s: required (--require) but missing from current record",
          Name.c_str()));
  }
  diffValue(*B, *C, "", "", O, Diffs);
  if (Diffs.empty()) {
    std::printf("perfdiff: %s vs %s: ok\n", Baseline.c_str(),
                Current.c_str());
    return 0;
  }
  std::printf("perfdiff: %s vs %s: %zu regression%s\n", Baseline.c_str(),
              Current.c_str(), Diffs.size(),
              Diffs.size() == 1 ? "" : "s");
  for (const std::string &D : Diffs)
    std::printf("  %s\n", D.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Files;
  std::string BaselineDir, CurrentDir;
  DiffOptions Opts;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--tolerance") == 0 && I + 1 < Argc) {
      std::string Spec = Argv[++I];
      size_t Eq = Spec.find('=');
      if (Eq == std::string::npos || Eq == 0) {
        std::fprintf(stderr,
                     "perfdiff: --tolerance: expected metric=frac, got "
                     "'%s'\n",
                     Spec.c_str());
        return 2;
      }
      auto Frac = parseDouble(Spec.c_str() + Eq + 1, 0.0, 1e9);
      if (!Frac) {
        std::fprintf(stderr, "perfdiff: --tolerance %s: %s\n",
                     Spec.c_str(), Frac.message().c_str());
        return 2;
      }
      Opts.Tolerance[Spec.substr(0, Eq)] = *Frac;
    } else if (std::strcmp(Argv[I], "--require") == 0 && I + 1 < Argc) {
      std::string Name = Argv[++I];
      if (Name.empty()) {
        std::fprintf(stderr, "perfdiff: --require: empty field name\n");
        return 2;
      }
      Opts.Require.push_back(Name);
    } else if (std::strcmp(Argv[I], "--ignore") == 0 && I + 1 < Argc) {
      std::string Name = Argv[++I];
      if (Name.empty()) {
        std::fprintf(stderr, "perfdiff: --ignore: empty key name\n");
        return 2;
      }
      Opts.Ignored.insert(Name);
    } else if (std::strcmp(Argv[I], "--baselines") == 0 && I + 1 < Argc) {
      BaselineDir = Argv[++I];
    } else if (std::strcmp(Argv[I], "--current") == 0 && I + 1 < Argc) {
      CurrentDir = Argv[++I];
    } else if (Argv[I][0] == '-') {
      return usage();
    } else {
      Files.push_back(Argv[I]);
    }
  }

  // Two-file mode.
  if (BaselineDir.empty() && CurrentDir.empty()) {
    if (Files.size() != 2)
      return usage();
    return diffFiles(Files[0], Files[1], Opts);
  }

  // Directory mode: every baseline record must have a current
  // counterpart with the same file name.
  if (BaselineDir.empty() || CurrentDir.empty() || !Files.empty())
    return usage();
  std::error_code EC;
  std::vector<std::string> Names;
  for (const auto &Entry :
       std::filesystem::directory_iterator(BaselineDir, EC)) {
    if (Entry.path().extension() == ".json")
      Names.push_back(Entry.path().filename().string());
  }
  if (EC) {
    std::fprintf(stderr, "perfdiff: cannot list '%s': %s\n",
                 BaselineDir.c_str(), EC.message().c_str());
    return 2;
  }
  if (Names.empty()) {
    std::fprintf(stderr, "perfdiff: no .json baselines in '%s'\n",
                 BaselineDir.c_str());
    return 2;
  }
  std::sort(Names.begin(), Names.end());
  int Exit = 0;
  for (const std::string &Name : Names) {
    std::string Current =
        (std::filesystem::path(CurrentDir) / Name).string();
    if (!std::filesystem::exists(Current)) {
      std::fprintf(stderr,
                   "perfdiff: baseline %s has no current record %s\n",
                   Name.c_str(), Current.c_str());
      Exit = std::max(Exit, 2);
      continue;
    }
    int RC = diffFiles(
        (std::filesystem::path(BaselineDir) / Name).string(), Current,
        Opts);
    Exit = std::max(Exit, RC);
  }
  return Exit;
}
