#!/usr/bin/env bash
# Configure, build and run the whole test suite under AddressSanitizer
# and UndefinedBehaviorSanitizer. The guarded-execution contract ("any
# input runs, is rejected, or traps -- never crashes") is only as strong
# as the memory-safety checking behind it, so the fuzz and
# fault-injection suites should be exercised under sanitizers whenever
# the executor, simulator or decoders change.
#
# Usage: tools/check_sanitizers.sh [build-dir] [ctest args...]
#   build-dir defaults to <repo>/build-sanitize.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-sanitize}"
shift $(( $# > 0 ? 1 : 0 ))

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUPERF_SANITIZE=ON
cmake --build "$BUILD" -j"$(nproc)"

# halt_on_error: treat any sanitizer report as a hard failure.
ASAN_OPTIONS=halt_on_error=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir "$BUILD" --output-on-failure "$@"
