#!/usr/bin/env bash
# Configure, build and run the test suite under sanitizers: first the
# whole suite under AddressSanitizer + UndefinedBehaviorSanitizer, then
# the threaded suites under ThreadSanitizer. The guarded-execution
# contract ("any input runs, is rejected, or traps -- never crashes") is
# only as strong as the memory-safety checking behind it, so the fuzz
# and fault-injection suites should be exercised under sanitizers
# whenever the executor, simulator or decoders change; the parallel
# launch path (LaunchConfig::Jobs) additionally needs TSan whenever the
# thread pool, overlay merge, or PerfDatabase locking changes.
#
# Usage: tools/check_sanitizers.sh [--asan-only] [build-dir] [ctest args...]
#   build-dir defaults to <repo>/build-sanitize; the TSan build goes to
#   <build-dir>-tsan. --asan-only skips the TSan stage (it needs a
#   second full build tree -- CI runs it on a separate schedule).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ASAN_ONLY=0
if [ "${1:-}" = "--asan-only" ]; then
  ASAN_ONLY=1
  shift
fi
BUILD="${1:-$ROOT/build-sanitize}"
shift $(( $# > 0 ? 1 : 0 ))

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUPERF_SANITIZE=ON
cmake --build "$BUILD" -j"$(nproc)"

# halt_on_error: treat any sanitizer report as a hard failure.
ASAN_OPTIONS=halt_on_error=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir "$BUILD" --output-on-failure "$@"

if [ "$ASAN_ONLY" = 1 ]; then
  exit 0
fi

# ThreadSanitizer pass: TSan is mutually exclusive with ASan, so it
# needs its own build tree. Only the suites that spawn threads are run
# -- the serial suites cannot race and TSan slows them ~10x. The
# scheduler suite is threaded through its Jobs=2 padded-verify case, so
# it rides along; the profile suite exercises the per-SM profile merge
# under the parallel launcher; the journal and sweep-supervisor suites
# cover the journaled PerfDatabase and the retrying sweep engine, whose
# checkpoint appends and sleep hooks run on pool worker threads; the
# probe suite merges per-SM probe clones under the parallel launcher
# and the process-wide engine behind its mutex.
TSAN_BUILD="$BUILD-tsan"
cmake -S "$ROOT" -B "$TSAN_BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPUPERF_TSAN=ON
cmake --build "$TSAN_BUILD" -j"$(nproc)"

TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$TSAN_BUILD" --output-on-failure \
    -R '(support|parallel_sim|perf_cache|perf_journal|sweep_supervisor|stats|scheduler|profile|probe)_test|trace_smoke' "$@"
