#!/usr/bin/env bash
# Runs every paper bench and collects per-bench metrics: text output plus
# a BENCH_sim.json record per bench (simulated cycles, wall seconds,
# sim-cycles/sec, job count) emitted by BenchRun's --json flag. All
# benches share one persistent PerfDatabase cache inside the output
# directory, so the second run of the suite (or a later bench reusing an
# earlier bench's microbenchmarks) skips re-simulation.
#
# Usage: tools/run_benches.sh [--check] [build-dir] [out-dir]
#   build-dir defaults to <repo>/build, out-dir to <build-dir>/bench_out.
#   --check  start from a fresh perf cache (the committed baselines were
#            collected that way, and a warm cache changes sim_cycles),
#            then gate every *_sim.json record against bench/baselines/
#            with tools/perfdiff -- non-zero exit on any regression.
# Environment:
#   JOBS   worker threads per bench (default 0 = hardware concurrency)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CHECK=0
ARGS=()
for A in "$@"; do
  case "$A" in
    --check) CHECK=1 ;;
    -*)
      echo "error: unknown option '$A'" >&2
      echo "usage: tools/run_benches.sh [--check] [build-dir] [out-dir]" >&2
      exit 2
      ;;
    *) ARGS+=("$A") ;;
  esac
done
BUILD="${ARGS[0]:-$ROOT/build}"
OUT="${ARGS[1]:-$BUILD/bench_out}"
JOBS="${JOBS:-0}"
# Validate up front: a typo'd JOBS would otherwise fail 15 benches in
# (strict flag parsing rejects it per bench, but late and noisily).
if ! [[ "$JOBS" =~ ^[0-9]+$ ]]; then
  echo "error: JOBS must be a non-negative integer, got '$JOBS'" >&2
  exit 2
fi

BENCHES=(
  table1_architecture
  table2_math_throughput
  fig2_ffma_lds_mix
  fig3_register_blocking
  fig4_active_threads
  fig5_sgemm_variants
  fig6_sgemm_nn_fermi
  fig7_sgemm_nn_kepler
  fig8_register_conflicts
  fig9_register_allocation
  upper_bound_analysis
  ablation_optimizations
  k20x_projection
  model_validation
  issue_headroom_generations
)

mkdir -p "$OUT"
CACHE="$OUT/perf_cache.gpdb"
if [ "$CHECK" = 1 ]; then
  rm -f "$CACHE"
fi

for BENCH in "${BENCHES[@]}"; do
  BIN="$BUILD/bench/$BENCH"
  if [ ! -x "$BIN" ]; then
    # A missing binary means the build is stale or broken -- fail loudly
    # instead of silently producing a partial suite.
    echo "error: bench '$BENCH' is missing or not executable at $BIN" >&2
    echo "       (build it with: cmake --build $BUILD)" >&2
    exit 1
  fi
  echo "== $BENCH" >&2
  if ! "$BIN" --jobs "$JOBS" --cache "$CACHE" \
      --json "$OUT/${BENCH}_sim.json" > "$OUT/$BENCH.txt"; then
    STATUS=$?
    echo "error: bench '$BENCH' failed with exit status $STATUS" \
         "(partial output in $OUT/$BENCH.txt)" >&2
    exit "$STATUS"
  fi
done

# Scheduled-kernel variants: the two benches whose kernels honour
# --schedule are re-run under the list scheduler so the drip-vs-list
# comparison is part of every suite collection.
for BENCH in upper_bound_analysis ablation_optimizations; do
  echo "== $BENCH --schedule list" >&2
  if ! "$BUILD/bench/$BENCH" --jobs "$JOBS" --cache "$CACHE" \
      --schedule list --json "$OUT/${BENCH}_sched_sim.json" \
      > "$OUT/${BENCH}_sched.txt"; then
    STATUS=$?
    echo "error: bench '$BENCH --schedule list' failed with exit status" \
         "$STATUS (partial output in $OUT/${BENCH}_sched.txt)" >&2
    exit "$STATUS"
  fi
done

echo >&2
echo "metrics ($OUT/*_sim.json):" >&2
cat "$OUT"/*_sim.json

if [ "$CHECK" = 1 ]; then
  echo >&2
  echo "== perfdiff against $ROOT/bench/baselines" >&2
  "$BUILD/tools/perfdiff" --baselines "$ROOT/bench/baselines" \
    --current "$OUT"
fi
