#!/usr/bin/env bash
# Runs every paper bench and collects per-bench metrics: text output plus
# a BENCH_sim.json record per bench (simulated cycles, wall seconds,
# sim-cycles/sec, job count) emitted by BenchRun's --json flag. All
# benches share one persistent PerfDatabase cache inside the output
# directory, so the second run of the suite (or a later bench reusing an
# earlier bench's microbenchmarks) skips re-simulation.
#
# Usage: tools/run_benches.sh [build-dir] [out-dir]
#   build-dir defaults to <repo>/build, out-dir to <build-dir>/bench_out.
# Environment:
#   JOBS   worker threads per bench (default 0 = hardware concurrency)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="${2:-$BUILD/bench_out}"
JOBS="${JOBS:-0}"

BENCHES=(
  table1_architecture
  table2_math_throughput
  fig2_ffma_lds_mix
  fig3_register_blocking
  fig4_active_threads
  fig5_sgemm_variants
  fig6_sgemm_nn_fermi
  fig7_sgemm_nn_kepler
  fig8_register_conflicts
  fig9_register_allocation
  upper_bound_analysis
  ablation_optimizations
  k20x_projection
  model_validation
  issue_headroom_generations
)

mkdir -p "$OUT"
CACHE="$OUT/perf_cache.gpdb"

for BENCH in "${BENCHES[@]}"; do
  BIN="$BUILD/bench/$BENCH"
  if [ ! -x "$BIN" ]; then
    # A missing binary means the build is stale or broken -- fail loudly
    # instead of silently producing a partial suite.
    echo "error: bench '$BENCH' is missing or not executable at $BIN" >&2
    echo "       (build it with: cmake --build $BUILD)" >&2
    exit 1
  fi
  echo "== $BENCH" >&2
  if ! "$BIN" --jobs "$JOBS" --cache "$CACHE" \
      --json "$OUT/${BENCH}_sim.json" > "$OUT/$BENCH.txt"; then
    STATUS=$?
    echo "error: bench '$BENCH' failed with exit status $STATUS" \
         "(partial output in $OUT/$BENCH.txt)" >&2
    exit "$STATUS"
  fi
done

# Scheduled-kernel variants: the two benches whose kernels honour
# --schedule are re-run under the list scheduler so the drip-vs-list
# comparison is part of every suite collection.
for BENCH in upper_bound_analysis ablation_optimizations; do
  echo "== $BENCH --schedule list" >&2
  if ! "$BUILD/bench/$BENCH" --jobs "$JOBS" --cache "$CACHE" \
      --schedule list --json "$OUT/${BENCH}_sched_sim.json" \
      > "$OUT/${BENCH}_sched.txt"; then
    STATUS=$?
    echo "error: bench '$BENCH --schedule list' failed with exit status" \
         "$STATUS (partial output in $OUT/${BENCH}_sched.txt)" >&2
    exit "$STATUS"
  fi
done

echo >&2
echo "metrics ($OUT/*_sim.json):" >&2
cat "$OUT"/*_sim.json
