#!/usr/bin/env bash
# Runs every paper bench and collects per-bench metrics: text output plus
# a BENCH_sim.json record per bench (simulated cycles, wall seconds,
# sim-cycles/sec, job count) emitted by BenchRun's --json flag. All
# benches share one persistent PerfDatabase cache inside the output
# directory, so the second run of the suite (or a later bench reusing an
# earlier bench's microbenchmarks) skips re-simulation.
#
# Usage: tools/run_benches.sh [--check] [--resume] [build-dir] [out-dir]
#   build-dir defaults to <repo>/build, out-dir to <build-dir>/bench_out.
#   --check   start from a fresh perf cache (the committed baselines were
#             collected that way, and a warm cache changes sim_cycles),
#             then gate every *_sim.json record against bench/baselines/
#             with tools/perfdiff -- non-zero exit on any regression.
#   --resume  continue an interrupted collection in the same out-dir:
#             benches recorded in <out-dir>/completed.list are skipped
#             entirely, and each remaining bench resumes from its sweep
#             checkpoint (<out-dir>/<bench>.ckpt), re-running only the
#             sweep points that never completed. Incompatible with
#             --check, which requires a cold, uninterrupted collection.
#
# An interrupted run (SIGINT/SIGTERM, or any bench failure) still leaves
# <out-dir>/manifest.json describing which benches completed, so callers
# can tell a partial suite from a finished one without parsing logs.
#
# Environment:
#   JOBS   worker threads per bench (default 0 = hardware concurrency)
set -Eeuo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CHECK=0
RESUME=0
ARGS=()
for A in "$@"; do
  case "$A" in
    --check) CHECK=1 ;;
    --resume) RESUME=1 ;;
    -*)
      echo "error: unknown option '$A'" >&2
      echo "usage: tools/run_benches.sh [--check] [--resume]" \
           "[build-dir] [out-dir]" >&2
      exit 2
      ;;
    *) ARGS+=("$A") ;;
  esac
done
if [ "$CHECK" = 1 ] && [ "$RESUME" = 1 ]; then
  # The baseline gate only means something for a cold end-to-end run; a
  # resumed one inherits warm-cache sim_cycles from the first attempt.
  echo "error: --resume cannot be combined with --check" >&2
  exit 2
fi
BUILD="${ARGS[0]:-$ROOT/build}"
OUT="${ARGS[1]:-$BUILD/bench_out}"
JOBS="${JOBS:-0}"
# Validate up front: a typo'd JOBS would otherwise fail 15 benches in
# (strict flag parsing rejects it per bench, but late and noisily).
if ! [[ "$JOBS" =~ ^[0-9]+$ ]]; then
  echo "error: JOBS must be a non-negative integer, got '$JOBS'" >&2
  exit 2
fi

BENCHES=(
  table1_architecture
  table2_math_throughput
  fig2_ffma_lds_mix
  fig3_register_blocking
  fig4_active_threads
  fig5_sgemm_variants
  fig6_sgemm_nn_fermi
  fig7_sgemm_nn_kepler
  fig8_register_conflicts
  fig9_register_allocation
  upper_bound_analysis
  ablation_optimizations
  k20x_projection
  model_validation
  issue_headroom_generations
)

mkdir -p "$OUT"
CACHE="$OUT/perf_cache.gpdb"
DONE_LIST="$OUT/completed.list"
if [ "$CHECK" = 1 ]; then
  rm -f "$CACHE"
fi
if [ "$RESUME" = 0 ]; then
  # A fresh (non-resume) collection owes nothing to a previous one in
  # the same directory: stale completion state must not skip benches.
  rm -f "$DONE_LIST" "$OUT"/*.ckpt "$OUT/manifest.json"
fi
touch "$DONE_LIST"

bench_done() {
  grep -Fxq "$1" "$DONE_LIST"
}

# Run a bench in the background and wait for it. Bash only delivers a
# trapped signal once the current foreground child exits, so invoking
# the bench directly would postpone the SIGINT/SIGTERM manifest flush
# until the bench finished (minutes, for the SGEMM sweeps). Waiting on
# a background child keeps the trap responsive; on_signal forwards the
# signal to the child explicitly.
CHILD=0
run_logged() {
  "$@" &
  CHILD=$!
  local ST=0
  wait "$CHILD" || ST=$?
  CHILD=0
  return "$ST"
}

# Flush a machine-readable record of how far the suite got. Called on
# normal exit and from the signal trap, so a killed collection still
# leaves an accurate manifest for the operator (and for --resume).
write_manifest() {
  local STATUS="$1"
  local TMP="$OUT/manifest.json.tmp"
  {
    echo "{"
    echo "  \"status\": \"$STATUS\","
    echo "  \"check\": $CHECK,"
    echo "  \"resume\": $RESUME,"
    echo "  \"completed\": ["
    local FIRST=1
    while IFS= read -r NAME; do
      [ -n "$NAME" ] || continue
      if [ "$FIRST" = 1 ]; then FIRST=0; else echo ","; fi
      printf '    "%s"' "$NAME"
    done < "$DONE_LIST"
    [ "$FIRST" = 1 ] || echo
    echo "  ]"
    echo "}"
  } > "$TMP"
  mv "$TMP" "$OUT/manifest.json"
}

on_signal() {
  local SIG="$1"
  trap - INT TERM
  if [ "$CHILD" -ne 0 ]; then
    kill -s "$SIG" "$CHILD" 2>/dev/null || true
    wait "$CHILD" 2>/dev/null || true
  fi
  echo >&2
  echo "interrupted (SIG$SIG): flushing partial manifest to" \
       "$OUT/manifest.json; rerun with --resume to continue" >&2
  write_manifest "interrupted"
  # Re-raise so the caller observes the conventional 128+N exit status.
  kill -s "$SIG" $$
}
trap 'on_signal INT' INT
trap 'on_signal TERM' TERM
trap 'write_manifest "failed"' ERR

for BENCH in "${BENCHES[@]}"; do
  BIN="$BUILD/bench/$BENCH"
  if [ ! -x "$BIN" ]; then
    # A missing binary means the build is stale or broken -- fail loudly
    # instead of silently producing a partial suite.
    echo "error: bench '$BENCH' is missing or not executable at $BIN" >&2
    echo "       (build it with: cmake --build $BUILD)" >&2
    write_manifest "failed"
    exit 1
  fi
  if bench_done "$BENCH"; then
    echo "== $BENCH (already completed, skipping)" >&2
    continue
  fi
  echo "== $BENCH" >&2
  # Sweep checkpoints make a killed bench resumable point-by-point. The
  # --check gate runs without them so its JSON records stay bit-for-bit
  # comparable with the committed baselines (which predate checkpoints).
  EXTRA=()
  if [ "$CHECK" = 0 ]; then
    EXTRA+=(--checkpoint "$OUT/${BENCH}.ckpt")
    if [ "$RESUME" = 1 ]; then
      EXTRA+=(--resume)
    fi
  fi
  STATUS=0
  run_logged "$BIN" --jobs "$JOBS" --cache "$CACHE" "${EXTRA[@]}" \
      --json "$OUT/${BENCH}_sim.json" > "$OUT/$BENCH.txt" || STATUS=$?
  if [ "$STATUS" -ne 0 ]; then
    echo "error: bench '$BENCH' failed with exit status $STATUS" \
         "(partial output in $OUT/$BENCH.txt)" >&2
    write_manifest "failed"
    exit "$STATUS"
  fi
  echo "$BENCH" >> "$DONE_LIST"
done

# Scheduled-kernel variants: the two benches whose kernels honour
# --schedule are re-run under the list scheduler so the drip-vs-list
# comparison is part of every suite collection.
for BENCH in upper_bound_analysis ablation_optimizations; do
  if bench_done "${BENCH}_sched"; then
    echo "== $BENCH --schedule list (already completed, skipping)" >&2
    continue
  fi
  echo "== $BENCH --schedule list" >&2
  EXTRA=()
  if [ "$CHECK" = 0 ]; then
    EXTRA+=(--checkpoint "$OUT/${BENCH}_sched.ckpt")
    if [ "$RESUME" = 1 ]; then
      EXTRA+=(--resume)
    fi
  fi
  STATUS=0
  run_logged "$BUILD/bench/$BENCH" --jobs "$JOBS" --cache "$CACHE" \
      "${EXTRA[@]}" --schedule list \
      --json "$OUT/${BENCH}_sched_sim.json" \
      > "$OUT/${BENCH}_sched.txt" || STATUS=$?
  if [ "$STATUS" -ne 0 ]; then
    echo "error: bench '$BENCH --schedule list' failed with exit status" \
         "$STATUS (partial output in $OUT/${BENCH}_sched.txt)" >&2
    write_manifest "failed"
    exit "$STATUS"
  fi
  echo "${BENCH}_sched" >> "$DONE_LIST"
done

echo >&2
echo "metrics ($OUT/*_sim.json):" >&2
cat "$OUT"/*_sim.json

if [ "$CHECK" = 1 ]; then
  # The committed smoke baseline is a *cold-cache* upper_bound_analysis
  # record (what CI's bench-smoke job replays); the suite's own record
  # ran against the shared warm cache, so collect the smoke variant
  # separately or the directory gate below fails on the missing file.
  echo "== upper_bound_analysis --no-cache (smoke record)" >&2
  STATUS=0
  run_logged "$BUILD/bench/upper_bound_analysis" --jobs "$JOBS" \
      --no-cache --json "$OUT/smoke_upper_bound_analysis.json" \
      > "$OUT/smoke_upper_bound_analysis.txt" || STATUS=$?
  if [ "$STATUS" -ne 0 ]; then
    echo "error: smoke record collection failed with exit status" \
         "$STATUS" >&2
    write_manifest "failed"
    exit "$STATUS"
  fi
  # One probe-enabled record so the committed baseline gates the
  # versioned "probes" object too (--probe implies a cold cache, so the
  # record is as deterministic as the smoke one). The explicit --require
  # makes the gate fail even if both records silently lost the object.
  echo "== upper_bound_analysis --probe (probe record)" >&2
  STATUS=0
  run_logged "$BUILD/bench/upper_bound_analysis" --jobs "$JOBS" \
      --no-cache --probe "$ROOT/probes/gmem_bytes.probe" \
      --json "$OUT/probe_upper_bound_analysis.json" \
      > "$OUT/probe_upper_bound_analysis.txt" || STATUS=$?
  if [ "$STATUS" -ne 0 ]; then
    echo "error: probe record collection failed with exit status" \
         "$STATUS" >&2
    write_manifest "failed"
    exit "$STATUS"
  fi
  echo >&2
  echo "== perfdiff against $ROOT/bench/baselines" >&2
  "$BUILD/tools/perfdiff" --baselines "$ROOT/bench/baselines" \
    --current "$OUT"
  "$BUILD/tools/perfdiff" \
    "$ROOT/bench/baselines/probe_upper_bound_analysis.json" \
    "$OUT/probe_upper_bound_analysis.json" --require probes
fi

write_manifest "completed"
