//===- tools/gpukgen.cpp - SGEMM kernel/module generator --------------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Generates one of the paper's named SGEMM implementations as a binary
// module, so scripts and CI can drive gpurun/gpuprof on the exact kernels
// the test suite and benches study without writing C++.
//
//   gpukgen out.gpub [--machine GTX580|GTX680] [--variant nn|nt]
//           [--impl tuned|naive|cublas|magma] [--mnk M,N,K] [--launch]
//
// --launch prints, on stdout, the gpurun/gpuprof argument string for the
// generated kernel (machine, grid, block, --mem sized for A/B/C with
// 256-aligned bump addresses, and the five kernel parameters with
// alpha=1, beta=0); everything else goes to stderr. Typical use:
//
//   gpukgen build/sgemm.gpub --machine GTX680 --mnk 192,192,64 --launch
//       (redirect stdout to args.txt)
//   gpurun build/sgemm.gpub $(cat args.txt) --probe probes/gmem_bytes.probe
//
// Exit codes: 0 success, 1 generation/write error, 2 usage.
//
//===----------------------------------------------------------------------===//

#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"
#include "support/Args.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace gpuperf;

static int usage() {
  std::fprintf(
      stderr,
      "usage: gpukgen out.gpub [--machine GTX580|GTX680]\n"
      "               [--variant nn|nt] [--impl tuned|naive|cublas|magma]\n"
      "               [--mnk M,N,K] [--launch]\n"
      "\n"
      "  --mnk M,N,K   problem size (default 192,192,64)\n"
      "  --launch      print the matching gpurun argument string on\n"
      "                stdout (--machine/--grid/--block/--mem/--param...)\n"
      "\n"
      "exit codes: 0 ok, 1 generation/write error, 2 usage\n");
  return 2;
}

/// Parses the integer value of flag \p Flag; on any parse error prints a
/// diagnostic naming the flag and exits 2.
static long long flagInt(const char *Flag, const char *Text, long long Min,
                         long long Max) {
  auto V = parseInteger(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "gpukgen: %s: %s\n", Flag, V.message().c_str());
    std::exit(2);
  }
  return *V;
}

int main(int Argc, char **Argv) {
  const char *Output = nullptr;
  const MachineDesc *M = &gtx680();
  GemmVariant Variant = GemmVariant::NN;
  SgemmImpl Impl = SgemmImpl::AsmTuned;
  int SizeM = 192, SizeN = 192, SizeK = 64;
  bool PrintLaunch = false;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--machine") == 0 && I + 1 < Argc) {
      M = findMachine(Argv[++I]);
      if (!M) {
        std::fprintf(stderr, "gpukgen: unknown machine\n");
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--variant") == 0 && I + 1 < Argc) {
      auto Choice = parseChoice(Argv[++I], {"nn", "nt"});
      if (!Choice) {
        std::fprintf(stderr, "gpukgen: --variant: %s\n",
                     Choice.message().c_str());
        return 2;
      }
      Variant = *Choice == 0 ? GemmVariant::NN : GemmVariant::NT;
    } else if (std::strcmp(Argv[I], "--impl") == 0 && I + 1 < Argc) {
      auto Choice =
          parseChoice(Argv[++I], {"tuned", "naive", "cublas", "magma"});
      if (!Choice) {
        std::fprintf(stderr, "gpukgen: --impl: %s\n",
                     Choice.message().c_str());
        return 2;
      }
      Impl = static_cast<SgemmImpl>(*Choice);
    } else if (std::strcmp(Argv[I], "--mnk") == 0 && I + 1 < Argc) {
      std::string Spec = Argv[++I];
      size_t C1 = Spec.find(',');
      size_t C2 = C1 == std::string::npos ? C1 : Spec.find(',', C1 + 1);
      if (C1 == std::string::npos || C2 == std::string::npos) {
        std::fprintf(stderr, "gpukgen: --mnk expects M,N,K\n");
        return 2;
      }
      SizeM = static_cast<int>(
          flagInt("--mnk", Spec.substr(0, C1).c_str(), 1, 1 << 20));
      SizeN = static_cast<int>(flagInt(
          "--mnk", Spec.substr(C1 + 1, C2 - C1 - 1).c_str(), 1, 1 << 20));
      SizeK = static_cast<int>(
          flagInt("--mnk", Spec.substr(C2 + 1).c_str(), 1, 1 << 20));
    } else if (std::strcmp(Argv[I], "--launch") == 0) {
      PrintLaunch = true;
    } else if (Argv[I][0] == '-') {
      return usage();
    } else if (!Output) {
      Output = Argv[I];
    } else {
      return usage();
    }
  }
  if (!Output)
    return usage();

  SgemmKernelConfig Cfg =
      baselineConfig(Impl, *M, Variant, SizeM, SizeN, SizeK);
  auto K = generateSgemmKernel(*M, Cfg);
  if (!K) {
    std::fprintf(stderr, "gpukgen: %s\n", K.message().c_str());
    return 1;
  }

  Module Mod;
  Mod.Arch = M->Generation;
  Mod.Kernels.push_back(K.take());
  if (Status St = Mod.writeToFile(Output); St.failed()) {
    std::fprintf(stderr, "gpukgen: %s\n", St.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "gpukgen: wrote %s (%s %s %dx%dx%d) -> %s\n",
               Mod.Kernels[0].Name.c_str(), sgemmImplName(Impl),
               Variant == GemmVariant::NN ? "NN" : "NT", SizeM, SizeN,
               SizeK, Output);

  if (PrintLaunch) {
    // Mirror the bump allocator behind gpurun --mem: the allocation base
    // is 256 and is prepended as the first parameter, so A's address is
    // the base itself and B/C follow at 256-aligned offsets.
    auto Round256 = [](size_t N) { return (N + 255) & ~size_t(255); };
    size_t ABytes = size_t(SizeM) * SizeK * 4;
    size_t BBytes = size_t(SizeK) * SizeN * 4;
    size_t CBytes = size_t(SizeM) * SizeN * 4;
    uint32_t BAddr = 256 + static_cast<uint32_t>(Round256(ABytes));
    uint32_t CAddr = BAddr + static_cast<uint32_t>(Round256(BBytes));
    size_t MemBytes = Round256(ABytes) + Round256(BBytes) + CBytes + 512;
    SgemmLaunchShape Shape = sgemmLaunchShape(Cfg);
    std::printf("--machine %s --grid %d,%d --block %d --mem %zu "
                "--param %u --param %u --param 0x3f800000 --param 0\n",
                M->Name.c_str(), Shape.GridX, Shape.GridY, Shape.BlockX,
                MemBytes, BAddr, CAddr);
  }
  return 0;
}
