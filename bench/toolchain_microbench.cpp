//===- bench/toolchain_microbench.cpp - toolchain performance -------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// google-benchmark microbenchmarks of the reproduction's own toolchain:
// instruction encode/decode, assembly, disassembly, kernel generation and
// simulation throughput. Not a paper experiment -- this keeps the
// substrate's performance visible so the big sweeps stay tractable.
//
//===----------------------------------------------------------------------===//

#include "asmtool/Assembler.h"
#include "asmtool/Disassembler.h"
#include "isa/Encoding.h"
#include "kernelgen/SgemmGenerator.h"
#include "sgemm/SgemmRunner.h"

#include <benchmark/benchmark.h>

using namespace gpuperf;

namespace {

SgemmKernelConfig benchConfig() {
  SgemmKernelConfig Cfg;
  Cfg.M = Cfg.N = Cfg.K = 960;
  Cfg.Lda = Cfg.Ldb = Cfg.Ldc = 960;
  return Cfg;
}

void BM_EncodeDecode(benchmark::State &State) {
  Instruction I = makeFFMA(10, 1, 4, 10);
  for (auto _ : State) {
    uint64_t Word = encodeInstruction(I);
    auto Back = decodeInstruction(Word);
    benchmark::DoNotOptimize(Back);
  }
}
BENCHMARK(BM_EncodeDecode);

void BM_GenerateSgemmKernel(benchmark::State &State) {
  for (auto _ : State) {
    auto K = generateSgemmKernel(gtx580(), benchConfig());
    benchmark::DoNotOptimize(K);
  }
}
BENCHMARK(BM_GenerateSgemmKernel);

void BM_DisassembleSgemm(benchmark::State &State) {
  auto K = generateSgemmKernel(gtx580(), benchConfig());
  for (auto _ : State) {
    std::string Text = disassembleKernel(*K);
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_DisassembleSgemm);

void BM_AssembleSgemm(benchmark::State &State) {
  auto K = generateSgemmKernel(gtx580(), benchConfig());
  Module M;
  M.Arch = GpuGeneration::Fermi;
  M.Kernels.push_back(*K);
  std::string Text = disassembleModule(M);
  for (auto _ : State) {
    auto Back = assembleText(Text);
    benchmark::DoNotOptimize(Back);
  }
}
BENCHMARK(BM_AssembleSgemm);

void BM_SerializeModule(benchmark::State &State) {
  auto K = generateSgemmKernel(gtx680(), benchConfig());
  Module M;
  M.Arch = GpuGeneration::Kepler;
  M.Kernels.push_back(*K);
  for (auto _ : State) {
    auto Bytes = M.serialize();
    benchmark::DoNotOptimize(Bytes);
  }
}
BENCHMARK(BM_SerializeModule);

void BM_SimulateSgemmWave(benchmark::State &State) {
  SgemmProblem P;
  P.M = P.N = P.K = 480;
  SgemmRunOptions O;
  O.Mode = SimMode::ProjectOneWave;
  for (auto _ : State) {
    auto R = runSgemm(gtx580(), SgemmImpl::AsmTuned, P, O);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SimulateSgemmWave)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
