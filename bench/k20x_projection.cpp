//===- bench/k20x_projection.cpp - Section 1's Tesla GK110 extension ------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// The paper (Section 1) notes that the Tesla K20X (GK110) uses a different
// instruction set allowing 255 registers per thread, documents ~73% SGEMM
// efficiency, and claims "it should not be difficult to extend the
// analysis ... using our approach". This bench does exactly that: it runs
// the upper-bound model on a GK110 projection, sweeping the register
// blocking factor that the relaxed encoding limit unlocks.
//
// Everything here is an EXTRAPOLATION: GK110's issue-path parameters in
// the machine description are assumptions (documented there), not
// paper-measured values.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "model/UpperBound.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("k20x_projection", Argc, Argv);
  benchHeader("Extension: projected SGEMM upper bound on Tesla K20X "
              "(GK110, 255 registers/thread)");
  const MachineDesc &M = teslaK20X();
  PerfDatabase DB = Run.makeDatabase(M);
  UpperBoundModel Model(DB);

  benchPrint(formatString(
      "Peak %.0f GFLOPS; Equation 2 loose BR limit with %d registers: "
      "%d (vs 7 on GK104)\n\n",
      M.theoreticalPeakGflops(), M.MaxRegsPerThread,
      UpperBoundModel::maxBlockingFactorLoose(M.MaxRegsPerThread)));

  Table T;
  T.setHeader({"BR", "regs/thread", "active threads", "FFMA frac",
               "measured mix", "potential", "% of peak"});
  UpperBoundReport Best;
  Best.Feasible = false;
  for (int BR : {4, 6, 8, 10, 12, 14}) {
    SgemmModelParams P;
    P.BR = BR;
    P.LdsWidth = MemWidth::B64;
    if (!UpperBoundModel::strideValid(P.TB, P.BR, P.L))
      continue;
    UpperBoundReport R = Model.analyze(P);
    if (!R.Feasible) {
      T.addRow({formatString("%d", BR),
                formatString("%d", R.Budget.total()), "-", "-", "-",
                "infeasible", "-"});
      continue;
    }
    if (!Best.Feasible || R.PotentialGflops > Best.PotentialGflops)
      Best = R;
    T.addRow({formatString("%d", BR),
              formatString("%d", R.Budget.total()),
              formatString("%d", R.Occ.ActiveThreads),
              formatDouble(100 * R.FfmaFraction, 1) + "%",
              formatDouble(R.MixedThroughput, 1),
              formatDouble(R.PotentialGflops, 0),
              formatDouble(100 * R.FractionOfPeak, 1) + "%"});
  }
  benchPrint(T.render());
  if (Best.Feasible) {
    benchPrint(formatString(
        "\nBest projected bound: BR=%d at %.1f%% of peak; NVIDIA "
        "documents ~73%% achieved SGEMM efficiency on this card.\n",
        Best.Params.BR, 100 * Best.FractionOfPeak));
    if (0.73 > Best.FractionOfPeak)
      benchPrint("The documented efficiency slightly exceeds this "
                 "projection, i.e. GK110's real sustained issue rate "
                 "tops the conservative 160 insts/cycle assumed here -- "
                 "but the structural conclusion stands: the 255-register "
                 "ISA removes the blocking-factor ceiling that capped "
                 "GK104 at ~55%.\n");
  }
  benchPrint("\nTakeaway (the paper's Section 4.4 tradeoff): a larger BR "
             "raises the FFMA share, but its register cost lowers the "
             "occupancy the throughput factor needs; the model finds the "
             "balance point that the 63-register ISA denied GK104.\n");
  return 0;
}
