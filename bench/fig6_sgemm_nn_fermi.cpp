//===- bench/fig6_sgemm_nn_fermi.cpp - regenerate Figure 6 ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 6: SGEMM NN GFLOPS vs matrix size on GTX580 for the
// hand-written assembly, the CUBLAS-4.1-like baseline and the MAGMA-like
// baseline.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("fig6_sgemm_nn_fermi", Argc, Argv);
  benchHeader("Figure 6: SGEMM NN performance on GTX580 (GFLOPS)");
  const MachineDesc &M = gtx580();
  const std::vector<int> Sizes = {480,  960,  1440, 1920, 2400,
                                  2880, 3360, 3840, 4320, 4800};
  auto Rows = runSweepSupervised(
      Run, "fig6", Sizes.size(),
      [&](size_t I, const Supervisor::Attempt &) {
        SgemmProblem P;
        P.M = P.N = P.K = Sizes[I];
        SgemmRunOptions O;
        O.Mode = SimMode::ProjectOneWave;
        std::vector<std::string> Row = {formatString("%d", Sizes[I])};
        for (SgemmImpl Impl : {SgemmImpl::AsmTuned,
                               SgemmImpl::CublasLike,
                               SgemmImpl::MagmaLike}) {
          auto R = runSgemm(M, Impl, P, O);
          // A failed run is deterministic (the simulator is), so let
          // the supervisor quarantine the point rather than retry it.
          if (!R)
            return SweepPointAttempt::fatal(R.message());
          Row.push_back(formatDouble(R->Gflops, 0));
        }
        return SweepPointAttempt::ok(std::move(Row));
      });
  Table T;
  T.setHeader({"size", "assembly", "cublas-like", "magma-like"});
  for (auto &Row : Rows)
    if (Row)
      T.addRow(*Row);
  benchPrint(T.render());
  benchPrint(formatString(
      "\nTheoretical peak %.0f GFLOPS; paper: assembly ~74%%, ~5%% above "
      "CUBLAS 4.1 for large sizes.\n",
      M.theoreticalPeakGflops()));
  return 0;
}
