//===- bench/fig6_sgemm_nn_fermi.cpp - regenerate Figure 6 ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 6: SGEMM NN GFLOPS vs matrix size on GTX580 for the
// hand-written assembly, the CUBLAS-4.1-like baseline and the MAGMA-like
// baseline.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

int main() {
  benchHeader("Figure 6: SGEMM NN performance on GTX580 (GFLOPS)");
  const MachineDesc &M = gtx580();
  Table T;
  T.setHeader({"size", "assembly", "cublas-like", "magma-like"});
  for (int Size : {480, 960, 1440, 1920, 2400, 2880, 3360, 3840, 4320,
                   4800}) {
    SgemmProblem P;
    P.M = P.N = P.K = Size;
    SgemmRunOptions O;
    O.Mode = SimMode::ProjectOneWave;
    std::vector<std::string> Row = {formatString("%d", Size)};
    for (SgemmImpl Impl : {SgemmImpl::AsmTuned, SgemmImpl::CublasLike,
                           SgemmImpl::MagmaLike}) {
      auto R = runSgemm(M, Impl, P, O);
      if (!R) {
        benchPrint("error: " + R.message() + "\n");
        return 1;
      }
      Row.push_back(formatDouble(R->Gflops, 0));
    }
    T.addRow(Row);
  }
  benchPrint(T.render());
  benchPrint(formatString(
      "\nTheoretical peak %.0f GFLOPS; paper: assembly ~74%%, ~5%% above "
      "CUBLAS 4.1 for large sizes.\n",
      M.theoreticalPeakGflops()));
  return 0;
}
