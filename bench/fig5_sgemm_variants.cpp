//===- bench/fig5_sgemm_variants.cpp - regenerate Figure 5 ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 5: GFLOPS of the four SGEMM transpose variants for
// the CUBLAS-like baseline and the hand-written assembly implementation,
// at 2400x2400 and 4800x4800, on both GPUs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("fig5_sgemm_variants", Argc, Argv);
  benchHeader("Figure 5: SGEMM performance of CUBLAS-like and ASM "
              "implementations (GFLOPS)");
  struct Point {
    const MachineDesc *M;
    int Size;
    GemmVariant V;
  };
  std::vector<Point> Points;
  for (const MachineDesc *M : {&gtx580(), &gtx680()})
    for (int Size : {2400, 4800})
      for (GemmVariant V : {GemmVariant::NN, GemmVariant::NT,
                            GemmVariant::TN, GemmVariant::TT})
        Points.push_back({M, Size, V});

  struct Outcome {
    std::vector<std::string> Row;
    std::string Error;
  };
  auto Outcomes = runSweep(Run.jobs(), Points.size(), [&](size_t I) {
    const Point &Pt = Points[I];
    SgemmProblem P;
    P.Variant = Pt.V;
    P.M = P.N = P.K = Pt.Size;
    SgemmRunOptions O;
    O.Mode = SimMode::ProjectOneWave;
    Outcome Out;
    auto Cublas = runSgemm(*Pt.M, SgemmImpl::CublasLike, P, O);
    auto Asm = runSgemm(*Pt.M, SgemmImpl::AsmTuned, P, O);
    if (!Cublas || !Asm) {
      Out.Error = Cublas ? Asm.message() : Cublas.message();
      return Out;
    }
    Out.Row = {Pt.M->Name, formatString("%d", Pt.Size),
               gemmVariantName(Pt.V), formatDouble(Cublas->Gflops, 0),
               formatDouble(Asm->Gflops, 0),
               formatDouble(Asm->Gflops / Cublas->Gflops, 3)};
    return Out;
  });

  Table T;
  T.setHeader({"machine", "size", "variant", "CUBLAS-like", "ASM",
               "speedup"});
  for (Outcome &Out : Outcomes) {
    if (!Out.Error.empty()) {
      benchPrint("error: " + Out.Error + "\n");
      return 1;
    }
    T.addRow(Out.Row);
  }
  benchPrint(T.render());
  benchPrint("\nPaper: ~5% average ASM advantage on GTX580; ASM and "
             "CUBLAS comparable on GTX680 (both ~1250-1400 GFLOPS).\n");
  return 0;
}
