//===- bench/fig5_sgemm_variants.cpp - regenerate Figure 5 ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 5: GFLOPS of the four SGEMM transpose variants for
// the CUBLAS-like baseline and the hand-written assembly implementation,
// at 2400x2400 and 4800x4800, on both GPUs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

int main() {
  benchHeader("Figure 5: SGEMM performance of CUBLAS-like and ASM "
              "implementations (GFLOPS)");
  Table T;
  T.setHeader({"machine", "size", "variant", "CUBLAS-like", "ASM",
               "speedup"});
  for (const MachineDesc *M : {&gtx580(), &gtx680()}) {
    for (int Size : {2400, 4800}) {
      for (GemmVariant V : {GemmVariant::NN, GemmVariant::NT,
                            GemmVariant::TN, GemmVariant::TT}) {
        SgemmProblem P;
        P.Variant = V;
        P.M = P.N = P.K = Size;
        SgemmRunOptions O;
        O.Mode = SimMode::ProjectOneWave;
        auto Cublas = runSgemm(*M, SgemmImpl::CublasLike, P, O);
        auto Asm = runSgemm(*M, SgemmImpl::AsmTuned, P, O);
        if (!Cublas || !Asm) {
          benchPrint("error: " +
                     (Cublas ? Asm.message() : Cublas.message()) + "\n");
          return 1;
        }
        T.addRow({M->Name, formatString("%d", Size), gemmVariantName(V),
                  formatDouble(Cublas->Gflops, 0),
                  formatDouble(Asm->Gflops, 0),
                  formatDouble(Asm->Gflops / Cublas->Gflops, 3)});
      }
    }
  }
  benchPrint(T.render());
  benchPrint("\nPaper: ~5% average ASM advantage on GTX580; ASM and "
             "CUBLAS comparable on GTX680 (both ~1250-1400 GFLOPS).\n");
  return 0;
}
