//===- bench/ablation_optimizations.cpp - Section 5 ablations -------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Ablates the paper's assembly-level optimizations one at a time on SGEMM
// NN 1536^3: register bank awareness (Section 5.4), instruction
// reordering (Section 5.3), the LDS width choice (Section 4.1), spill
// elimination (Section 5.2), and the Kepler control-notation quality
// (Section 3.2).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

namespace {

double measure(const MachineDesc &M, SgemmKernelConfig Cfg) {
  SgemmProblem P;
  P.M = P.N = P.K = 1536;
  SgemmRunOptions O;
  O.Mode = SimMode::ProjectOneWave;
  auto R = runSgemmConfig(M, Cfg, P, O);
  if (!R) {
    benchPrint("error: " + R.message() + "\n");
    return 0;
  }
  return R->Gflops;
}

SgemmKernelConfig tunedFor(const MachineDesc &M,
                           SgemmSchedule S = SgemmSchedule::Drip) {
  SgemmKernelConfig Cfg = baselineConfig(SgemmImpl::AsmTuned, M,
                                         GemmVariant::NN, 1536, 1536, 1536);
  Cfg.Schedule = S;
  return Cfg;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchRun Run("ablation_optimizations", Argc, Argv);
  benchHeader("Ablation of the Section 5 optimizations (SGEMM NN 1536^3, "
              "GFLOPS)");
  for (const MachineDesc *MP : {&gtx580(), &gtx680()}) {
    const MachineDesc &M = *MP;
    Table T;
    T.setHeader({"configuration", "GFLOPS", "% of tuned"});
    // The 100% baseline honours --schedule, so the whole table can be
    // re-based on the list-scheduled kernels.
    double Tuned = measure(M, tunedFor(M, Run.schedule()));
    auto Row = [&](const std::string &Name, SgemmKernelConfig Cfg) {
      double G = measure(M, Cfg);
      T.addRow({Name, formatDouble(G, 0),
                formatDouble(100 * G / Tuned, 1) + "%"});
    };
    T.addRow({formatString("tuned (bank-aware, LDS.64, %s-scheduled)",
                           sgemmScheduleName(Run.schedule())),
              formatDouble(Tuned, 0), "100.0%"});
    // The scheduled-vs-drip ablation: the same kernel under both
    // main-loop orderings, whatever the baseline was.
    Row("  drip interleave (Sec 5.3 baseline)",
        tunedFor(M, SgemmSchedule::Drip));
    Row("  DAG list scheduler (+ bank rotation, matched notations)",
        tunedFor(M, SgemmSchedule::List));
    {
      SgemmKernelConfig Cfg = tunedFor(M, Run.schedule());
      Cfg.RegAlloc = RegAllocKind::Naive;
      Row("- naive register allocation (Sec 5.4)", Cfg);
    }
    {
      SgemmKernelConfig Cfg = tunedFor(M, Run.schedule());
      Cfg.Reorder = false;
      Row("- no instruction reordering (Sec 5.3)", Cfg);
    }
    {
      SgemmKernelConfig Cfg = tunedFor(M, Run.schedule());
      Cfg.LdsWidth = MemWidth::B32;
      Row("- 32-bit LDS instead of LDS.64 (Sec 4.1)", Cfg);
    }
    {
      SgemmKernelConfig Cfg = tunedFor(M, Run.schedule());
      Cfg.EmulateSpills = true;
      Row("- with register spills (Sec 5.2/5.5)", Cfg);
    }
    if (M.Generation == GpuGeneration::Kepler) {
      SgemmKernelConfig Cfg = tunedFor(M, Run.schedule());
      Cfg.Notation = NotationQuality::Tuned;
      Row("+ fully-decrypted control notation (Sec 3.2)", Cfg);
      Cfg.Notation = NotationQuality::None;
      Row("- no control notation (Sec 3.2)", Cfg);
    }
    {
      SgemmKernelConfig Cfg = tunedFor(M, Run.schedule());
      Cfg.BR = 4;
      Row("- blocking factor 4 instead of 6 (Sec 4.4)", Cfg);
    }
    benchPrint(formatString("\n%s:\n", M.Name.c_str()));
    benchPrint(T.render());
  }
  return 0;
}
