//===- bench/fig7_sgemm_nn_kepler.cpp - regenerate Figure 7 ---------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 7: SGEMM NN GFLOPS vs matrix size on GTX680 for the
// hand-written assembly, the CUBLAS-4.2-like baseline and the MAGMA-like
// baseline (the Fermi MAGMA kernel run on Kepler, where it spills).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("fig7_sgemm_nn_kepler", Argc, Argv);
  benchHeader("Figure 7: SGEMM NN performance on GTX680 (GFLOPS)");
  const MachineDesc &M = gtx680();
  const std::vector<int> Sizes = {480,  960,  1440, 1920, 2400,
                                  2880, 3360, 3840, 4320, 4800};
  auto Rows = runSweep(Run.jobs(), Sizes.size(), [&](size_t I) {
    SgemmProblem P;
    P.M = P.N = P.K = Sizes[I];
    SgemmRunOptions O;
    O.Mode = SimMode::ProjectOneWave;
    std::vector<std::string> Row = {formatString("%d", Sizes[I])};
    for (SgemmImpl Impl : {SgemmImpl::AsmTuned, SgemmImpl::CublasLike,
                           SgemmImpl::MagmaLike}) {
      auto R = runSgemm(M, Impl, P, O);
      Row.push_back(R ? formatDouble(R->Gflops, 0)
                      : "error: " + R.message());
    }
    return Row;
  });
  Table T;
  T.setHeader({"size", "assembly", "cublas-like", "magma-like"});
  for (auto &Row : Rows)
    T.addRow(Row);
  benchPrint(T.render());
  benchPrint(formatString(
      "\nTheoretical peak %.0f GFLOPS; paper: best assembly ~1300 GFLOPS "
      "(42%%), CUBLAS 4.2 similar, MAGMA below both.\n",
      M.theoreticalPeakGflops()));
  return 0;
}
