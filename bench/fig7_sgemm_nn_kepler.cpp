//===- bench/fig7_sgemm_nn_kepler.cpp - regenerate Figure 7 ---------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 7: SGEMM NN GFLOPS vs matrix size on GTX680 for the
// hand-written assembly, the CUBLAS-4.2-like baseline and the MAGMA-like
// baseline (the Fermi MAGMA kernel run on Kepler, where it spills).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("fig7_sgemm_nn_kepler", Argc, Argv);
  benchHeader("Figure 7: SGEMM NN performance on GTX680 (GFLOPS)");
  const MachineDesc &M = gtx680();
  const std::vector<int> Sizes = {480,  960,  1440, 1920, 2400,
                                  2880, 3360, 3840, 4320, 4800};
  auto Rows = runSweepSupervised(
      Run, "fig7", Sizes.size(),
      [&](size_t I, const Supervisor::Attempt &) {
        SgemmProblem P;
        P.M = P.N = P.K = Sizes[I];
        SgemmRunOptions O;
        O.Mode = SimMode::ProjectOneWave;
        std::vector<std::string> Row = {formatString("%d", Sizes[I])};
        for (SgemmImpl Impl : {SgemmImpl::AsmTuned,
                               SgemmImpl::CublasLike,
                               SgemmImpl::MagmaLike}) {
          auto R = runSgemm(M, Impl, P, O);
          // A failed run is deterministic (the simulator is), so let
          // the supervisor quarantine the point rather than retry it.
          if (!R)
            return SweepPointAttempt::fatal(R.message());
          Row.push_back(formatDouble(R->Gflops, 0));
        }
        return SweepPointAttempt::ok(std::move(Row));
      });
  Table T;
  T.setHeader({"size", "assembly", "cublas-like", "magma-like"});
  for (auto &Row : Rows)
    if (Row)
      T.addRow(*Row);
  benchPrint(T.render());
  benchPrint(formatString(
      "\nTheoretical peak %.0f GFLOPS; paper: best assembly ~1300 GFLOPS "
      "(42%%), CUBLAS 4.2 similar, MAGMA below both.\n",
      M.theoreticalPeakGflops()));
  return 0;
}
