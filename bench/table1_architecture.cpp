//===- bench/table1_architecture.cpp - regenerate Table 1 -----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates the paper's Table 1: "Architecture Evolution" across GT200,
// Fermi GF110 and Kepler GK104, from the machine descriptions.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineDesc.h"
#include "bench/BenchUtil.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("table1_architecture", Argc, Argv);
  benchHeader("Table 1: Architecture Evolution");
  const MachineDesc *Machines[] = {&gt200(), &gtx580(), &gtx680()};

  Table T;
  T.setHeader({"", "GT200 (GTX280)", "Fermi (GTX580)", "Kepler (GTX680)"});
  auto Row = [&T, &Machines](const std::string &Name, auto Get) {
    std::vector<std::string> Cells = {Name};
    for (const MachineDesc *M : Machines)
      Cells.push_back(Get(*M));
    T.addRow(Cells);
  };

  Row("Core Clock (MHz)", [](const MachineDesc &M) {
    return formatDouble(M.CoreClockMHz, 0);
  });
  Row("Shader Clock (MHz)", [](const MachineDesc &M) {
    return formatDouble(M.ShaderClockMHz, 0);
  });
  Row("Global Memory Bandwidth (GB/s)", [](const MachineDesc &M) {
    return formatDouble(M.GlobalMemBandwidthGBs, 2);
  });
  Row("Warp Scheduler per SM", [](const MachineDesc &M) {
    return formatString("%d", M.WarpSchedulersPerSM);
  });
  Row("Dispatch Unit per SM", [](const MachineDesc &M) {
    return formatString("%d", M.DispatchUnitsPerSM);
  });
  Row("Thread instr issue throughput /cycle/SM", [](const MachineDesc &M) {
    // GK104's nominal dispatch capability; the *sustained* value the
    // paper measured (~132) is in MathIssueSlotsPerCycle.
    if (M.Generation == GpuGeneration::Kepler)
      return formatString("%d (sustained ~%.0f)",
                          M.DispatchUnitsPerSM * M.WarpSize,
                          M.MathIssueSlotsPerCycle);
    return formatString("%.0f", M.MathIssueSlotsPerCycle);
  });
  Row("SP per SM", [](const MachineDesc &M) {
    return formatString("%d", M.SPsPerSM);
  });
  Row("SP FMAD/FFMA throughput /cycle/SM", [](const MachineDesc &M) {
    return formatString("%d", M.SPsPerSM);
  });
  Row("LD/ST Unit per SM", [](const MachineDesc &M) {
    return M.LdStUnitsPerSM ? formatString("%d", M.LdStUnitsPerSM)
                            : std::string("unknown");
  });
  Row("Shared Memory per SM (KB)", [](const MachineDesc &M) {
    return formatString("%d", M.SharedMemBytesPerSM / 1024);
  });
  Row("32bit Registers per SM", [](const MachineDesc &M) {
    return formatString("%dK", M.RegistersPerSM / 1024);
  });
  Row("Max Registers per Thread", [](const MachineDesc &M) {
    return formatString("%d", M.MaxRegsPerThread);
  });
  Row("Theoretical Peak (GFLOPS)", [](const MachineDesc &M) {
    return formatDouble(M.theoreticalPeakGflops(), 0);
  });

  benchPrint(T.render());
  return 0;
}
