//===- bench/fig9_register_allocation.cpp - regenerate Figure 9 -----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 9: the bank-aware register allocation of the C
// sub-matrix, the A column and the B row, and verifies that every one of
// the 36 FFMAs is conflict-free.
//
//===----------------------------------------------------------------------===//

#include "arch/RegisterBank.h"
#include "bench/BenchUtil.h"
#include "kernelgen/RegAllocator.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("fig9_register_allocation", Argc, Argv);
  benchHeader("Figure 9: bank-aware register allocation (BR = 6)");
  SgemmKernelConfig Cfg;
  Cfg.M = Cfg.N = Cfg.K = 960;
  Cfg.Lda = Cfg.Ldb = Cfg.Ldc = 960;
  auto Map = allocateSgemmRegisters(Cfg);
  if (!Map) {
    benchPrint("error: " + Map.message() + "\n");
    return 1;
  }

  benchPrint("A column (banks even0/odd0): ");
  for (uint8_t Reg : Map->A)
    benchPrint(formatString("R%d(%s) ", Reg,
                            registerBankName(registerBank(Reg))));
  benchPrint("\nB row (banks even1/odd1):    ");
  for (uint8_t Reg : {Map->B[0], Map->B[1]})
    benchPrint(formatString("R%d(%s) ", Reg,
                            registerBankName(registerBank(Reg))));
  benchPrint("\n\nC sub-matrix register mapping (rows = A index, columns "
             "= B index):\n");

  Table T;
  std::vector<std::string> Header = {""};
  for (int J = 0; J < 6; ++J)
    Header.push_back(formatString("B%d(R%d)", J, Map->B[J % 2]));
  T.setHeader(Header);
  for (int I = 0; I < 6; ++I) {
    std::vector<std::string> Row = {
        formatString("A%d(R%d)", I, Map->A[I])};
    for (int J = 0; J < 6; ++J) {
      uint8_t Reg = Map->acc(I, J);
      Row.push_back(formatString("R%d(%s)", Reg,
                                 registerBankName(registerBank(Reg))));
    }
    T.addRow(Row);
  }
  benchPrint(T.render());

  int PerBank[4] = {0, 0, 0, 0};
  for (uint8_t Reg : Map->Acc)
    ++PerBank[registerBankIndex(Reg)];
  benchPrint(formatString(
      "\nC registers per bank: E0=%d E1=%d O0=%d O1=%d (paper: 9 each)\n",
      PerBank[0], PerBank[1], PerBank[2], PerBank[3]));
  benchPrint(formatString(
      "FFMAs with >=2-way bank conflict: %d of 36 (paper: 0)\n",
      countTileConflicts(*Map, 2)));
  benchPrint(formatString("registers used: %d of 63\n", Map->regsUsed()));
  return 0;
}
