//===- bench/model_validation.cpp - bound-vs-achieved validation ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// The defining property of the paper's model is that it is an *upper
// bound*: no implementation, on any configuration, may exceed it. This
// bench sweeps implementations and configurations on both machines and
// checks achieved <= bound everywhere, reporting tightness.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "model/UpperBound.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

int main() {
  benchHeader("Model validation: every measured configuration must stay "
              "under its upper bound (SGEMM NN 1920^3)");
  bool AllUnderBound = true;
  for (const MachineDesc *MP : {&gtx580(), &gtx680()}) {
    const MachineDesc &M = *MP;
    PerfDatabase DB(M);
    UpperBoundModel Model(DB);
    Table T;
    T.setHeader({"configuration", "bound", "achieved", "% of bound"});
    struct Case {
      const char *Name;
      SgemmKernelConfig Cfg;
      SgemmModelParams Params;
    };
    std::vector<Case> Cases;
    for (int BR : {4, 6}) {
      for (MemWidth W : {MemWidth::B32, MemWidth::B64}) {
        Case C;
        C.Cfg.BR = BR;
        C.Cfg.LdsWidth = W;
        C.Params.BR = BR;
        C.Params.LdsWidth = W;
        Cases.push_back(C);
      }
    }
    for (Case &C : Cases) {
      UpperBoundReport Bound = Model.analyze(C.Params);
      SgemmProblem P;
      P.M = P.N = P.K = 1920;
      SgemmRunOptions O;
      O.Mode = SimMode::ProjectOneWave;
      auto R = runSgemmConfig(M, C.Cfg, P, O);
      if (!R) {
        benchPrint("error: " + R.message() + "\n");
        return 1;
      }
      double Pct = 100 * R->Gflops / Bound.PotentialGflops;
      if (R->Gflops > Bound.PotentialGflops)
        AllUnderBound = false;
      T.addRow({formatString("BR=%d %s", C.Params.BR,
                             C.Params.LdsWidth == MemWidth::B64
                                 ? "LDS.64"
                                 : "LDS"),
                formatDouble(Bound.PotentialGflops, 0),
                formatDouble(R->Gflops, 0),
                formatDouble(Pct, 1) + "%"});
    }
    benchPrint(formatString("\n%s:\n", M.Name.c_str()));
    benchPrint(T.render());
  }
  benchPrint(AllUnderBound
                 ? "\nPASS: no configuration exceeded its bound.\n"
                 : "\nFAIL: a configuration exceeded its bound!\n");
  return AllUnderBound ? 0 : 1;
}
