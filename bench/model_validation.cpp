//===- bench/model_validation.cpp - bound-vs-achieved validation ----------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// The defining property of the paper's model is that it is an *upper
// bound*: no implementation, on any configuration, may exceed it. This
// bench sweeps implementations and configurations on both machines and
// checks achieved <= bound everywhere, reporting tightness.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "model/UpperBound.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("model_validation", Argc, Argv);
  benchHeader("Model validation: every measured configuration must stay "
              "under its upper bound (SGEMM NN 1920^3)");
  bool AllUnderBound = true;
  for (const MachineDesc *MP : {&gtx580(), &gtx680()}) {
    const MachineDesc &M = *MP;
    PerfDatabase DB = Run.makeDatabase(M);
    UpperBoundModel Model(DB);
    struct Case {
      SgemmKernelConfig Cfg;
      SgemmModelParams Params;
    };
    std::vector<Case> Cases;
    for (int BR : {4, 6}) {
      for (MemWidth W : {MemWidth::B32, MemWidth::B64}) {
        Case C;
        C.Cfg.BR = BR;
        C.Cfg.LdsWidth = W;
        C.Params.BR = BR;
        C.Params.LdsWidth = W;
        Cases.push_back(C);
      }
    }
    // Each case is an independent model analysis + simulator run, so the
    // sweep fans across --jobs threads; outcomes land in case order.
    struct Outcome {
      std::vector<std::string> Row;
      std::string Error;
      bool Exceeded = false;
    };
    auto Outcomes = runSweep(Run.jobs(), Cases.size(), [&](size_t I) {
      const Case &C = Cases[I];
      Outcome Out;
      UpperBoundReport Bound = Model.analyze(C.Params);
      SgemmProblem P;
      P.M = P.N = P.K = 1920;
      SgemmRunOptions O;
      O.Mode = SimMode::ProjectOneWave;
      auto R = runSgemmConfig(M, C.Cfg, P, O);
      if (!R) {
        Out.Error = R.message();
        return Out;
      }
      double Pct = 100 * R->Gflops / Bound.PotentialGflops;
      Out.Exceeded = R->Gflops > Bound.PotentialGflops;
      Out.Row = {formatString("BR=%d %s", C.Params.BR,
                              C.Params.LdsWidth == MemWidth::B64
                                  ? "LDS.64"
                                  : "LDS"),
                 formatDouble(Bound.PotentialGflops, 0),
                 formatDouble(R->Gflops, 0),
                 formatDouble(Pct, 1) + "%"};
      return Out;
    });
    Table T;
    T.setHeader({"configuration", "bound", "achieved", "% of bound"});
    for (Outcome &Out : Outcomes) {
      if (!Out.Error.empty()) {
        benchPrint("error: " + Out.Error + "\n");
        return 1;
      }
      if (Out.Exceeded)
        AllUnderBound = false;
      T.addRow(Out.Row);
    }
    benchPrint(formatString("\n%s:\n", M.Name.c_str()));
    benchPrint(T.render());
  }
  benchPrint(AllUnderBound
                 ? "\nPASS: no configuration exceeded its bound.\n"
                 : "\nFAIL: a configuration exceeded its bound!\n");
  return AllUnderBound ? 0 : 1;
}
