//===- bench/BenchUtil.h - shared helpers for the paper benches -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared bench plumbing: section headers, the common command line
/// (--jobs/--json/--cache/--no-cache), machine-readable run metrics, and
/// a parallel sweep helper. Every figure/table bench constructs one
/// BenchRun so the whole suite speaks the same flags and
/// tools/run_benches.sh can collect uniform JSON.
///
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_BENCH_BENCHUTIL_H
#define GPUPERF_BENCH_BENCHUTIL_H

#include "analysis/HotspotReport.h"
#include "kernelgen/Scheduler.h"
#include "probe/ProbeEngine.h"
#include "probe/ProbeSpec.h"
#include "sim/SMSimulator.h"
#include "support/Args.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "ubench/PerfDatabase.h"
#include "ubench/SweepRunner.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace gpuperf {

/// Prints a bench section header.
inline void benchHeader(const std::string &Title) {
  std::string Bar(Title.size(), '=');
  std::printf("%s\n%s\n", Title.c_str(), Bar.c_str());
}

inline void benchPrint(const std::string &Text) {
  std::fputs(Text.c_str(), stdout);
}

/// Per-bench run context: parses the shared flags, times the run, and on
/// destruction emits a one-line JSON metrics record when --json was
/// given. Construct exactly one at the top of main().
///
/// Flags:
///   --jobs N     worker threads for sweeps/launches (0 = one per
///                hardware thread, the default; 1 = fully serial)
///   --json PATH  write {"schema_version","record":"bench","bench",
///                "machines","schedule","jobs","sim_cycles",
///                "wall_seconds","sim_cycles_per_sec","issue_slots":
///                {per-cause slot counts over the whole run}} to PATH
///                on exit -- the shape tools/perfdiff gates on
///   --cache PATH persistent PerfDatabase file (default:
///                PerfDatabase::defaultCachePath())
///   --no-cache   in-memory PerfDatabase only; force remeasurement
///   --schedule drip|list
///                main-loop ordering for the generated kernels the bench
///                measures: the fixed drip interleave (default) or the
///                kernelgen list scheduler
///   --retries N  re-run a sweep point up to N extra times after a
///                transient failure or timeout (default 0; deterministic
///                failures are quarantined immediately, never retried)
///   --point-timeout CYCLES
///                per-sweep-point simulated-cycle deadline; a point that
///                exceeds it is retried with the deadline doubled
///                (0 = no deadline, the default)
///   --checkpoint PATH
///                journal completed sweep points to PATH as they finish;
///                adds a "sweeps" object to the --json record
///   --resume     with --checkpoint: serve points already in PATH from
///                the journal instead of re-running them (without
///                --resume the checkpoint is restarted from scratch)
///   --probe FILE attach the probe specs in FILE to every kernel launch
///                the bench simulates and add a versioned "probes"
///                object to the --json record; implies --no-cache,
///                because a warm cache hit skips simulation and would
///                silently undercount every probe
class BenchRun {
public:
  BenchRun(std::string BenchName, int Argc, char **Argv)
      : Name(std::move(BenchName)),
        CachePath(PerfDatabase::defaultCachePath()),
        Start(std::chrono::steady_clock::now()),
        StartCycles(totalSimulatedCycles()),
        StartBreakdown(totalIssueSlotBreakdown()) {
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      auto needValue = [&]() -> const char * {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "%s: %s requires a value\n", Name.c_str(),
                       Arg.c_str());
          std::exit(2);
        }
        return Argv[++I];
      };
      if (Arg == "--jobs") {
        auto N = parseInteger(needValue(), 0, 65536);
        if (!N) {
          std::fprintf(stderr, "%s: --jobs: %s\n", Name.c_str(),
                       N.message().c_str());
          std::exit(2);
        }
        Jobs = static_cast<int>(*N);
      } else if (Arg == "--json")
        JsonPath = needValue();
      else if (Arg == "--cache")
        CachePath = needValue();
      else if (Arg == "--no-cache")
        CachePath.clear();
      else if (Arg == "--schedule") {
        auto Choice = parseChoice(needValue(), {"drip", "list"});
        if (!Choice) {
          std::fprintf(stderr, "%s: --schedule: %s\n", Name.c_str(),
                       Choice.message().c_str());
          std::exit(2);
        }
        Schedule =
            *Choice == 0 ? SgemmSchedule::Drip : SgemmSchedule::List;
      } else if (Arg == "--retries") {
        auto N = parseInteger(needValue(), 0, 100);
        if (!N) {
          std::fprintf(stderr, "%s: --retries: %s\n", Name.c_str(),
                       N.message().c_str());
          std::exit(2);
        }
        Retries = static_cast<int>(*N);
      } else if (Arg == "--point-timeout") {
        auto N = parseInteger(needValue(), 0, INT64_MAX);
        if (!N) {
          std::fprintf(stderr, "%s: --point-timeout: %s\n", Name.c_str(),
                       N.message().c_str());
          std::exit(2);
        }
        PointTimeout = static_cast<uint64_t>(*N);
      } else if (Arg == "--checkpoint")
        CheckpointPath = needValue();
      else if (Arg == "--resume")
        Resume = true;
      else if (Arg == "--probe")
        ProbePath = needValue();
      else {
        std::fprintf(stderr,
                     "%s: unknown option '%s'\n"
                     "usage: %s [--jobs N] [--json PATH] [--cache PATH] "
                     "[--no-cache] [--schedule drip|list] [--retries N] "
                     "[--point-timeout CYCLES] [--checkpoint PATH] "
                     "[--resume] [--probe FILE]\n",
                     Name.c_str(), Arg.c_str(), Name.c_str());
        std::exit(2);
      }
    }
    if (Resume && CheckpointPath.empty()) {
      std::fprintf(stderr, "%s: --resume requires --checkpoint PATH\n",
                   Name.c_str());
      std::exit(2);
    }
    if (!ProbePath.empty()) {
      auto Specs = loadProbeSpecFile(ProbePath);
      if (!Specs) {
        std::fprintf(stderr, "%s: --probe: %s\n", Name.c_str(),
                     Specs.message().c_str());
        std::exit(2);
      }
      Probes = ProbeEngine(Specs.take());
      // A warm cache hit returns a stored result without simulating, so
      // probes attached to this process would silently miss that
      // launch. Force remeasurement for the whole run instead.
      if (!CachePath.empty()) {
        std::fprintf(stderr,
                     "%s: --probe disables the perf cache (cached hits "
                     "skip simulation and would undercount probes)\n",
                     Name.c_str());
        CachePath.clear();
      }
      // Installed process-wide: every launchKernel in this process that
      // was not handed an explicit sink clones this engine, simulates,
      // and merges back under a lock (SM-index order within a launch
      // keeps per-launch results deterministic; cross-launch merge
      // order does not matter because every aggregation is commutative
      // and associative).
      setProcessProbeEngine(&Probes);
    }
    if (!CheckpointPath.empty())
      Checkpoint =
          std::make_unique<SweepCheckpoint>(CheckpointPath, Resume);
  }

  ~BenchRun() {
    // Uninstall before anything else so no launch can race the engine
    // while (or after) we read it out below.
    if (!ProbePath.empty()) {
      setProcessProbeEngine(nullptr);
      std::printf("\nprobe results (%s)\n%s", ProbePath.c_str(),
                  Probes.report().c_str());
    }
    if (JsonPath.empty())
      return;
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    uint64_t Cycles = totalSimulatedCycles() - StartCycles;
    StallBreakdown End = totalIssueSlotBreakdown();
    JsonWriter W;
    W.beginObject();
    // perfdiff refuses to compare records across schema versions or
    // across differing simulated-machine sets, so both are part of
    // every record.
    W.kv("schema_version", MetricsSchemaVersion);
    W.kv("record", "bench");
    W.kv("bench", Name);
    W.key("machines");
    W.beginArray();
    for (const std::string &MachineName : simulatedMachineNames())
      W.value(MachineName);
    W.endArray();
    W.kv("schedule",
         Schedule == SgemmSchedule::Drip ? "drip" : "list");
    W.kv("jobs", resolveJobs(Jobs));
    W.kv("sim_cycles", Cycles);
    W.key("wall_seconds");
    W.value(Wall, 3);
    W.key("sim_cycles_per_sec");
    W.value(Wall > 0 ? Cycles / Wall : 0.0, 0);
    // Per-cause issue-slot totals over everything this process simulated
    // during the run -- the same counters gpurun --metrics reports for a
    // single launch.
    W.key("issue_slots");
    W.beginObject();
    for (size_t I = 0; I < NumSlotUses; ++I)
      W.kv(slotUseName(static_cast<SlotUse>(I)),
           End.Slots[I] - StartBreakdown.Slots[I]);
    W.endObject();
    // Probe totals over the same scope as issue_slots: everything this
    // process simulated while the engine was installed. Only present
    // when --probe was given, so plain records keep the exact shape the
    // committed perfdiff baselines pin.
    if (!ProbePath.empty()) {
      W.key("probes");
      Probes.writeProbesValue(W);
    }
    // Sweep summaries ride along only when checkpointing was requested,
    // and failed points only when there were any, so records from plain
    // runs keep the exact shape the committed perfdiff baselines pin.
    // rows_fnv1a digests (index, rows) of every completed point, which
    // is resume-independent: a kill+resume run must digest identically
    // to an uninterrupted one (the CI crash-recovery stage gates this).
    if (Checkpoint) {
      W.key("sweeps");
      W.beginObject();
      for (const SweepReport &R : Sweeps) {
        W.key(R.Name);
        W.beginObject();
        W.kv("points", static_cast<uint64_t>(R.Points));
        W.kv("completed", static_cast<uint64_t>(R.Completed));
        W.kv("rows_fnv1a",
             formatString("%016llx",
                          static_cast<unsigned long long>(R.RowsHash)));
        W.endObject();
      }
      W.endObject();
    }
    bool AnyIncomplete = false;
    for (const SweepReport &R : Sweeps)
      AnyIncomplete |= !R.complete();
    if (AnyIncomplete) {
      W.key("incomplete");
      W.beginArray();
      for (const SweepReport &R : Sweeps)
        for (const SweepPointFailure &F : R.Incomplete) {
          W.beginObject();
          W.kv("sweep", R.Name);
          W.kv("point", static_cast<uint64_t>(F.Point));
          W.kv("result", taskOutcomeName(F.Result));
          W.kv("attempts", F.Attempts);
          W.kv("reason", F.Reason);
          W.endObject();
        }
      W.endArray();
    }
    W.endObject();
    FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", Name.c_str(),
                   JsonPath.c_str());
      return;
    }
    std::fprintf(F, "%s\n", W.str().c_str());
    std::fclose(F);
  }

  BenchRun(const BenchRun &) = delete;
  BenchRun &operator=(const BenchRun &) = delete;

  /// Raw --jobs value for LaunchConfig::Jobs / runSweep (0 = hardware).
  int jobs() const { return Jobs; }

  /// Main-loop ordering requested with --schedule (default: drip).
  SgemmSchedule schedule() const { return Schedule; }

  /// PerfDatabase cache path; empty means --no-cache (in-memory only).
  const std::string &cachePath() const { return CachePath; }

  /// The database benches should measure through: persistent unless the
  /// user said --no-cache.
  PerfDatabase makeDatabase(const MachineDesc &M) const {
    return PerfDatabase(M, CachePath);
  }

  /// Bench name (for diagnostics).
  const std::string &name() const { return Name; }

  /// Execution knobs for runSupervisedSweep, assembled from --jobs,
  /// --retries, --point-timeout, and --checkpoint/--resume.
  SweepOptions sweepOptions() {
    SweepOptions O;
    O.Jobs = Jobs;
    O.Policy.MaxAttempts = Retries + 1;
    O.Policy.DeadlineCycles = PointTimeout;
    O.Checkpoint = Checkpoint.get();
    return O;
  }

  /// Records \p R for the --json record ("sweeps"/"incomplete") and
  /// reports anything noteworthy -- resumed points, failed points,
  /// checkpoint append errors -- on stderr. Called by runSweepSupervised;
  /// benches only call it directly when driving runSupervisedSweep
  /// themselves.
  void recordSweep(const SweepReport &R) {
    // Resume/failure counts go to stderr, never into the JSON record:
    // the record must be bit-identical between an uninterrupted run and
    // a kill+resume run, and Resumed differs between the two.
    if (R.Resumed > 0)
      std::fprintf(stderr, "%s: sweep %s: resumed %zu/%zu points from "
                           "checkpoint\n",
                   Name.c_str(), R.Name.c_str(), R.Resumed, R.Points);
    for (const SweepPointFailure &F : R.Incomplete)
      std::fprintf(stderr,
                   "%s: sweep %s: point %zu %s after %d attempt%s: %s\n",
                   Name.c_str(), R.Name.c_str(), F.Point,
                   taskOutcomeName(F.Result), F.Attempts,
                   F.Attempts == 1 ? "" : "s", F.Reason.c_str());
    if (R.CheckpointErrors > 0)
      std::fprintf(stderr,
                   "%s: sweep %s: %zu checkpoint append failure%s "
                   "(first: %s); resume may re-run those points\n",
                   Name.c_str(), R.Name.c_str(), R.CheckpointErrors,
                   R.CheckpointErrors == 1 ? "" : "s",
                   R.FirstCheckpointError.c_str());
    Sweeps.push_back(R);
  }

private:
  std::string Name;
  std::string JsonPath;
  std::string CachePath;
  std::string CheckpointPath;
  std::string ProbePath;
  ProbeEngine Probes;
  int Jobs = 0; ///< 0 = one worker per hardware thread.
  int Retries = 0;
  uint64_t PointTimeout = 0;
  bool Resume = false;
  SgemmSchedule Schedule = SgemmSchedule::Drip;
  std::unique_ptr<SweepCheckpoint> Checkpoint;
  std::vector<SweepReport> Sweeps;
  std::chrono::steady_clock::time_point Start;
  uint64_t StartCycles;
  StallBreakdown StartBreakdown;
};

/// Prints the per-cause issue-slot breakdown of \p S as a table plus the
/// accounting identity it satisfies: every simulated cycle each of the
/// machine's warp schedulers owned exactly one slot, so the per-cause
/// counts sum to aggregate SM-cycles x schedulers. This is the bench-side
/// rendering of the same counters gpurun --metrics prints.
inline void benchIssueSlotReport(const MachineDesc &M, const SimStats &S) {
  std::printf("issue_slot_report\n");
  uint64_t Total = S.Breakdown.total();
  Table T;
  T.setHeader({"cause", "slots", "share"});
  for (size_t I = 0; I < NumSlotUses; ++I) {
    uint64_t N = S.Breakdown.Slots[I];
    T.addRow({slotUseName(static_cast<SlotUse>(I)),
              formatString("%llu", static_cast<unsigned long long>(N)),
              formatString("%5.1f%%",
                           Total ? 100.0 * N / Total : 0.0)});
  }
  benchPrint(T.render());
  int Scheds = M.WarpSchedulersPerSM > 1 ? M.WarpSchedulersPerSM : 1;
  std::printf("total %llu slots = %llu aggregate SM-cycles x %d "
              "scheduler%s%s\n",
              static_cast<unsigned long long>(Total),
              static_cast<unsigned long long>(S.perSMCycles()), Scheds,
              Scheds == 1 ? "" : "s",
              Total == S.perSMCycles() * static_cast<uint64_t>(Scheds)
                  ? ""
                  : "  ** INVARIANT VIOLATION **");
}

/// Evaluates \p Point(0..N-1) across up to \p Jobs threads and returns
/// the results indexed by point -- output is identical for every Jobs
/// value, so sweeps stay deterministic. \p Point must be safe to call
/// concurrently (the simulator and PerfDatabase are; stdout printing is
/// not, so format rows here and print after).
template <typename Fn>
auto runSweep(int Jobs, size_t N, Fn &&Point)
    -> std::vector<decltype(Point(size_t(0)))> {
  std::vector<decltype(Point(size_t(0)))> Results(N);
  parallelFor(Jobs, N, [&](size_t I) { Results[I] = Point(I); });
  return Results;
}

/// The supervised counterpart: evaluates \p Point under \p Run's
/// --retries/--point-timeout policy with --checkpoint/--resume support,
/// and records the sweep report for the --json record. Returns per-point
/// rows; nullopt marks a point the supervisor could not complete (listed
/// in "incomplete" and on stderr -- render only the completed rows, so
/// stdout is unchanged whenever nothing fails). \p Name must be unique
/// within the bench (one entry per machine, e.g. "fig4_gtx580"): it keys
/// both the checkpoint records and the JSON summary. With every point
/// healthy and no checkpoint, output is bit-identical to runSweep.
inline std::vector<std::optional<std::vector<std::string>>>
runSweepSupervised(BenchRun &Run, const std::string &Name, size_t N,
                   const SweepPointFn &Point) {
  SweepResult R = runSupervisedSweep(Run.sweepOptions(), Name, N, Point);
  Run.recordSweep(R.Report);
  return std::move(R.Rows);
}

} // namespace gpuperf

#endif // GPUPERF_BENCH_BENCHUTIL_H
