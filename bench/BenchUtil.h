//===- bench/BenchUtil.h - shared helpers for the paper benches -*- C++ -*-===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
//===----------------------------------------------------------------------===//

#ifndef GPUPERF_BENCH_BENCHUTIL_H
#define GPUPERF_BENCH_BENCHUTIL_H

#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>
#include <string>

namespace gpuperf {

/// Prints a bench section header.
inline void benchHeader(const std::string &Title) {
  std::string Bar(Title.size(), '=');
  std::printf("%s\n%s\n", Title.c_str(), Bar.c_str());
}

inline void benchPrint(const std::string &Text) {
  std::fputs(Text.c_str(), stdout);
}

} // namespace gpuperf

#endif // GPUPERF_BENCH_BENCHUTIL_H
