//===- bench/upper_bound_analysis.cpp - Section 4.5 headline numbers ------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates the paper's headline analysis (Section 4.5): the estimated
// SGEMM performance upper bounds on Fermi and Kepler, the Section 5.2
// register budget, and the achieved-vs-bound comparison of Section 5.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "model/UpperBound.h"
#include "sgemm/SgemmRunner.h"

using namespace gpuperf;

static void analyzeMachine(const BenchRun &Run, const MachineDesc &M,
                           std::vector<MemWidth> Widths,
                           double PaperBoundPercent,
                           double PaperAchievedPercent) {
  benchHeader(formatString("Performance upper bound of SGEMM on %s",
                           M.Name.c_str()));
  PerfDatabase DB = Run.makeDatabase(M);
  UpperBoundModel Model(DB);

  Table T;
  T.setHeader({"LDS width", "BR", "FFMA frac", "measured mix", "FT",
               "SM bound", "mem bound", "potential", "% of peak"});
  UpperBoundReport Chosen;
  for (MemWidth W : Widths) {
    SgemmModelParams P;
    P.LdsWidth = W;
    UpperBoundReport R = Model.analyze(P);
    if (W == MemWidth::B64)
      Chosen = R;
    // Note: the strict Equation-4 budget makes LDS.128 *infeasible* at
    // BR=6 (the B row needs 4 registers -> 65 > 63); the paper's 57.6%
    // Kepler estimate silently assumes the LDS.64 budget. We print the
    // analytic bound anyway, flagged.
    std::string WidthName = memWidthSuffix(W)[0]
                                ? std::string("LDS") + memWidthSuffix(W)
                                : "LDS";
    if (!R.Feasible)
      WidthName += " (!)";
    T.addRow({WidthName,
              formatString("%d", R.Params.BR),
              formatDouble(100 * R.FfmaFraction, 1) + "%",
              formatDouble(R.MixedThroughput, 1),
              formatDouble(R.FT, 3),
              formatDouble(R.PSMBoundGflops, 0),
              formatDouble(R.PMemBoundGflops, 0),
              formatDouble(R.PotentialGflops, 0),
              formatDouble(100 * R.FractionOfPeak, 1) + "%"});
  }
  benchPrint(T.render());
  benchPrint(formatString(
      "Paper's estimate: ~%.1f%% of the %.0f GFLOPS theoretical peak.\n",
      PaperBoundPercent, M.theoreticalPeakGflops()));
  benchPrint("(!) = register budget exceeds the 63-register limit "
             "(Equation 4); bound is the paper-style optimistic "
             "estimate.\n");

  // Section 5.2 register budget.
  RegisterBudget B = UpperBoundModel::registerBudget(SgemmModelParams());
  benchPrint(formatString(
      "\nSection 5.2 register budget (BR=6, TB=256, L=16, LDS.64): "
      "C tile %d + prefetch %d + A %d + B %d + addressing %d = %d of 63 "
      "(zero spills)\n",
      B.CTile, B.Prefetch, B.ALoad, B.BLoad, B.Addressing, B.total()));
  benchPrint(formatString(
      "Equation 2 loose BR limit: %d; Equation 4 strict BR limit: %d\n",
      UpperBoundModel::maxBlockingFactorLoose(M.MaxRegsPerThread),
      Model.maxBlockingFactorStrict(SgemmModelParams())));

  // Achieved vs bound, under both main-loop orderings: the drip
  // interleave (the paper's hand layout) and the kernelgen list
  // scheduler. The headline line honours --schedule.
  SgemmProblem P;
  P.M = P.N = P.K = 2400;
  SgemmRunOptions O;
  O.Mode = SimMode::ProjectOneWave;
  double Bound = Chosen.PotentialGflops;
  // Traffic for the roofline table below, measured by an embedded probe
  // spec on the --schedule-selected run instead of bespoke counters --
  // the stock probes/ directory phrases the same measurements for
  // gpurun --probe.
  static const char UboundProbeText[] =
      "probe ub_gmem_bytes { event mem_access; aggregation sum; "
      "value bytes; filter space == global }\n"
      "probe ub_smem_bytes { event mem_access; aggregation sum; "
      "value bytes; filter space == shared }\n"
      "probe ub_ffma { event inst_issued; aggregation sum; "
      "value lanes; filter opcode == FFMA }\n";
  ProbeEngine Probes;
  if (auto UboundSpecs = parseProbeSpecs(UboundProbeText, "<ubound>"))
    Probes = ProbeEngine(UboundSpecs.take());
  auto achieved = [&](SgemmSchedule S) {
    SgemmKernelConfig Cfg = baselineConfig(SgemmImpl::AsmTuned, M,
                                           GemmVariant::NN, P.M, P.N, P.K);
    Cfg.Schedule = S;
    SgemmRunOptions OS = O;
    if (S == Run.schedule())
      OS.Probes = &Probes; // the headline run feeds the roofline table
    return runSgemmConfig(M, Cfg, P, OS);
  };
  auto RD = achieved(SgemmSchedule::Drip);
  auto RL = achieved(SgemmSchedule::List);
  const auto &R = Run.schedule() == SgemmSchedule::List ? RL : RD;
  if (R.hasValue()) {
    benchPrint(formatString(
        "\nAchieved (assembly, %s-scheduled, 2400^3): %.0f GFLOPS = "
        "%.1f%% of peak = %.1f%% of the LDS.64 bound\n",
        sgemmScheduleName(Run.schedule()), R->Gflops,
        100 * R->FractionOfPeak,
        Bound > 0 ? 100 * R->Gflops / Bound : 0.0));
    benchPrint(formatString(
        "Paper: achieved ~%.1f%% of peak (~%s of its bound).\n",
        PaperAchievedPercent,
        M.Generation == GpuGeneration::Fermi ? "90%" : "77.3%"));

    // The gap between achieved and bound, itemized: the per-cause
    // issue-slot breakdown of the measured SGEMM wave. The paper argues
    // the bound from issue bandwidth; this shows which causes consumed
    // the slots the bound says are available.
    benchPrint("\n");
    benchIssueSlotReport(M, R->Launch.Stats);

    // Roofline view of the same run: bytes moved per FFMA (over the one
    // simulated wave -- ratios are wave-invariant) against what DRAM
    // can feed at peak FFMA rate. Measured below the machine line means
    // the kernel sits on the compute roof, the paper's premise that
    // tuned SGEMM is issue-limited rather than bandwidth-limited.
    const ProbeState *GB = Probes.stateByName("ub_gmem_bytes");
    const ProbeState *SB = Probes.stateByName("ub_smem_bytes");
    const ProbeState *FF = Probes.stateByName("ub_ffma");
    if (GB && SB && FF && FF->Total.Seen && FF->Total.Value > 0) {
      double Ffmas = static_cast<double>(FF->Total.Value);
      benchPrint(formatString(
          "\nroofline (probe-measured, %s-scheduled wave)\n",
          sgemmScheduleName(Run.schedule())));
      Table RT;
      RT.setHeader({"traffic", "bytes", "bytes/FFMA"});
      RT.addRow({"global",
                 formatString("%lld", static_cast<long long>(
                                          GB->Total.Value)),
                 formatDouble(GB->Total.Value / Ffmas, 3)});
      RT.addRow({"shared",
                 formatString("%lld", static_cast<long long>(
                                          SB->Total.Value)),
                 formatDouble(SB->Total.Value / Ffmas, 3)});
      RT.addRow({"FFMA thread ops",
                 formatString("%lld", static_cast<long long>(
                                          FF->Total.Value)),
                 "-"});
      benchPrint(RT.render());
      double MachineBpF =
          M.theoreticalPeakGflops() > 0
              ? 2.0 * M.GlobalMemBandwidthGBs / M.theoreticalPeakGflops()
              : 0.0;
      double GmemBpF = GB->Total.Value / Ffmas;
      benchPrint(formatString(
          "DRAM sustains %.3f bytes/FFMA at peak (%.0f GB/s / %.0f "
          "GFLOPS x 2 flops); measured %.3f -> %s-bound\n",
          MachineBpF, M.GlobalMemBandwidthGBs,
          M.theoreticalPeakGflops(), GmemBpF,
          GmemBpF <= MachineBpF ? "compute" : "memory"));
    }
  }
  if (RD.hasValue() && RL.hasValue()) {
    // The scheduled-vs-drip gap against the same bound, with the stall
    // attribution of both orderings side by side: the list scheduler's
    // win must show up as fewer dispatch_limit/bank_conflict slots, not
    // just as a bigger GFLOPS number.
    benchPrint(formatString(
        "\nScheduled vs drip (Sec 5.3): drip %.0f GFLOPS (%.1f%% of "
        "bound) -> list %.0f GFLOPS (%.1f%% of bound), %+.1f%%\n",
        RD->Gflops, Bound > 0 ? 100 * RD->Gflops / Bound : 0.0,
        RL->Gflops, Bound > 0 ? 100 * RL->Gflops / Bound : 0.0,
        RD->Gflops > 0 ? 100 * (RL->Gflops / RD->Gflops - 1) : 0.0));
    const auto &Other =
        Run.schedule() == SgemmSchedule::List ? RD : RL;
    benchPrint(formatString(
        "issue_slot_report of the %s-scheduled kernel:\n",
        sgemmScheduleName(Run.schedule() == SgemmSchedule::List
                              ? SgemmSchedule::Drip
                              : SgemmSchedule::List)));
    benchIssueSlotReport(M, Other->Launch.Stats);
  }
  benchPrint("\n");
}

int main(int Argc, char **Argv) {
  BenchRun Run("upper_bound_analysis", Argc, Argv);
  analyzeMachine(Run, gtx580(),
                 {MemWidth::B32, MemWidth::B64, MemWidth::B128},
                 /*PaperBoundPercent=*/82.5,
                 /*PaperAchievedPercent=*/74.2);
  analyzeMachine(Run, gtx680(),
                 {MemWidth::B32, MemWidth::B64, MemWidth::B128},
                 /*PaperBoundPercent=*/54.6,
                 /*PaperAchievedPercent=*/42.0);
  return 0;
}
