//===- bench/issue_headroom_generations.cpp - Section 4.2 across GPUs -----===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Section 4.2's architectural story, demonstrated on the simulator across
// all three generations of Table 1:
//
//  * GT200: the scheduler issues 16 thread insts/cycle but the 8 SPs only
//    process 8 -- LDS instructions ride along "for free", so blocking
//    barely matters;
//  * Fermi: issue (32) exactly matches SP throughput (32) -- every LDS
//    displaces an FFMA, which is why register blocking and wide loads
//    decide performance;
//  * Kepler GK104: the SPs could process 192 but the schedulers sustain
//    only ~132 -- no mix can reach the marketing peak.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ubench/MixBench.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("issue_headroom_generations", Argc, Argv);
  benchHeader("Section 4.2: issue headroom vs SP processing throughput "
              "across generations");
  Table T;
  T.setHeader({"machine", "SPs/SM", "pure FFMA", "3:1 +LDS", "FFMA in mix",
               "LDS cost"});
  for (const MachineDesc *MP : {&gt200(), &gtx580(), &gtx680()}) {
    const MachineDesc &M = *MP;
    PerfDatabase DB = Run.makeDatabase(M);
    MixBenchParams P;
    P.FfmaPerLds = -1;
    double Pure = DB.measureKernel(generateMixBench(M, P), {512, 1});
    P.FfmaPerLds = 3;
    P.Width = MemWidth::B32;
    double Mixed = DB.measureKernel(generateMixBench(M, P), {512, 1});
    double FfmaInMix = Mixed * 3.0 / 4.0;
    // How much FFMA throughput one LDS.32 per 3 FFMAs costs (0 = free).
    double LdsCost = (Pure - FfmaInMix) / Pure;
    T.addRow({M.Name, formatString("%d", M.SPsPerSM),
              formatDouble(Pure, 1), formatDouble(Mixed, 1),
              formatDouble(FfmaInMix, 1),
              formatDouble(100 * LdsCost, 1) + "%"});
  }
  benchPrint(T.render());
  benchPrint(
      "\nReading: on GT200 the LDS instructions are (nearly) free -- the "
      "issue rate exceeds the SP rate. On Fermi they displace FFMAs "
      "one-for-one (which is why Section 4 centers on minimizing "
      "auxiliary instructions), and on Kepler even pure FFMA cannot "
      "saturate the 192 SPs.\n");
  return 0;
}
