//===- bench/fig8_register_conflicts.cpp - regenerate Figure 8 ------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 8: the FFMA register-bank-conflict census over the
// compared SGEMM binaries on Kepler -- the four MAGMA-like variants, the
// first (naively-allocated) assembly version, and the bank-aware modified
// version.
//
//===----------------------------------------------------------------------===//

#include "analysis/BinaryAnalysis.h"
#include "bench/BenchUtil.h"
#include "kernelgen/Baselines.h"
#include "kernelgen/SgemmGenerator.h"

using namespace gpuperf;

namespace {

void addRow(Table &T, const std::string &Name, const Kernel &K) {
  FfmaConflictCensus C = analyzeFfmaConflicts(K);
  T.addRow({Name, formatDouble(C.noConflictPercent(), 1) + "%",
            formatDouble(C.twoWayPercent(), 1) + "%",
            formatDouble(C.threeWayPercent(), 1) + "%"});
}

} // namespace

int main(int Argc, char **Argv) {
  BenchRun Run("fig8_register_conflicts", Argc, Argv);
  benchHeader("Figure 8: FFMA register bank conflicts in Kepler SGEMM "
              "binaries");
  const MachineDesc &M = gtx680();
  const int Size = 960;

  Table T;
  T.setHeader({"binary", "no conflict", "2-way", "3-way"});
  for (GemmVariant V : {GemmVariant::NN, GemmVariant::NT, GemmVariant::TN,
                        GemmVariant::TT}) {
    auto Cfg = baselineConfig(SgemmImpl::MagmaLike, M, V, Size, Size,
                              Size);
    auto K = generateSgemmKernel(M, Cfg);
    if (!K) {
      benchPrint("error: " + K.message() + "\n");
      return 1;
    }
    addRow(T, formatString("magma_%s", gemmVariantName(V)), *K);
  }
  {
    auto Cfg = baselineConfig(SgemmImpl::AsmNaive, M, GemmVariant::NN,
                              Size, Size, Size);
    auto K = generateSgemmKernel(M, Cfg);
    addRow(T, "asm_NN (first version)", *K);
  }
  {
    auto Cfg = baselineConfig(SgemmImpl::AsmTuned, M, GemmVariant::NN,
                              Size, Size, Size);
    auto K = generateSgemmKernel(M, Cfg);
    addRow(T, "mod_asm_NN (bank-aware)", *K);
  }
  benchPrint(T.render());
  benchPrint("\nPaper: MAGMA ~30% 2-way + ~1% 3-way; first assembly "
             "version 68.8% 2-way + 10.6% 3-way; modified version 1.2% "
             "2-way, no 3-way.\n");
  return 0;
}
