//===- bench/table2_math_throughput.cpp - regenerate Table 2 --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates the paper's Table 2: math instruction throughput on Kepler
// GK104 for operand patterns with different register-bank layouts, using
// the same methodology (register-renamed independent copies of the
// pattern unrolled; throughput in thread instructions per shader cycle
// per SMX).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ubench/MixBench.h"
#include "ubench/OpPattern.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("table2_math_throughput", Argc, Argv);
  benchHeader("Table 2: Kepler math instruction throughput vs operand "
              "register indices");
  const MachineDesc &M = gtx680();
  PerfDatabase DB = Run.makeDatabase(M);
  MeasureConfig Cfg;
  Cfg.ThreadsPerBlock = 1024;
  Cfg.BlocksPerSM = 1;

  const std::vector<Table2Row> Patterns = table2Patterns();
  auto Rows = runSweepSupervised(
      Run, "table2", Patterns.size(),
      [&](size_t I, const Supervisor::Attempt &) {
        const Table2Row &Row = Patterns[I];
        Kernel K = generateOpPatternBench(M, Row.Pattern);
        double Measured = DB.measureKernel(K, Cfg);
        return SweepPointAttempt::ok(
            {Row.Syntax, formatDouble(Row.PaperThroughput, 1),
             formatDouble(Measured, 1),
             formatDouble(Measured / Row.PaperThroughput, 3)});
      });
  Table T;
  T.setHeader({"pattern", "paper", "measured", "ratio"});
  for (auto &Row : Rows)
    if (Row)
      T.addRow(*Row);
  benchPrint(T.render());

  // The Section 3.3 repeated-source structure.
  Kernel Rep = generateOpPatternBench(M, makeFFMA(4, 3, 3, 4));
  benchPrint(formatString(
      "\nFFMA RA, RB, RB, RA (repeated source, Section 3.3): paper ~178, "
      "measured %.1f\n",
      DB.measureKernel(Rep, Cfg)));

  // Where the slots went for the worst pattern of the table (FFMA with a
  // 3-way bank conflict): the lost issue bandwidth shows up as
  // bank_conflict slots, which is the paper's Table 2 explanation made
  // directly observable.
  benchPrint("\n");
  Kernel Conflicted = generateOpPatternBench(M, makeFFMA(0, 1, 3, 9));
  SimStats S;
  measureThroughput(M, Conflicted, Cfg, &S);
  benchIssueSlotReport(M, S);
  return 0;
}
