//===- bench/table2_math_throughput.cpp - regenerate Table 2 --------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates the paper's Table 2: math instruction throughput on Kepler
// GK104 for operand patterns with different register-bank layouts, using
// the same methodology (register-renamed independent copies of the
// pattern unrolled; throughput in thread instructions per shader cycle
// per SMX).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ubench/MixBench.h"
#include "ubench/OpPattern.h"

using namespace gpuperf;

int main() {
  benchHeader("Table 2: Kepler math instruction throughput vs operand "
              "register indices");
  const MachineDesc &M = gtx680();

  Table T;
  T.setHeader({"pattern", "paper", "measured", "ratio"});
  for (const Table2Row &Row : table2Patterns()) {
    Kernel K = generateOpPatternBench(M, Row.Pattern);
    MeasureConfig Cfg;
    Cfg.ThreadsPerBlock = 1024;
    Cfg.BlocksPerSM = 1;
    double Measured = measureThroughput(M, K, Cfg);
    T.addRow({Row.Syntax, formatDouble(Row.PaperThroughput, 1),
              formatDouble(Measured, 1),
              formatDouble(Measured / Row.PaperThroughput, 3)});
  }
  benchPrint(T.render());

  // The Section 3.3 repeated-source structure.
  Kernel Rep = generateOpPatternBench(M, makeFFMA(4, 3, 3, 4));
  MeasureConfig Cfg;
  Cfg.ThreadsPerBlock = 1024;
  Cfg.BlocksPerSM = 1;
  benchPrint(formatString(
      "\nFFMA RA, RB, RB, RA (repeated source, Section 3.3): paper ~178, "
      "measured %.1f\n",
      measureThroughput(M, Rep, Cfg)));
  return 0;
}
