//===- bench/fig4_active_threads.cpp - regenerate Figure 4 ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 4: throughput of the 6:1 FFMA/LDS.64 mix as the
// number of active threads per SM grows, for independent instructions and
// for the SGEMM-like pattern where the FFMAs depend on the load.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ubench/PerfDatabase.h"

using namespace gpuperf;

static void sweep(const MachineDesc &M, const std::vector<int> &Threads) {
  benchHeader(formatString(
      "Figure 4 (%s): FFMA/LDS.64 6:1 mix vs active threads per SM",
      M.Name.c_str()));
  PerfDatabase DB(M);
  Table T;
  T.setHeader({"active threads", "dependent", "independent"});
  for (int N : Threads)
    T.addRow({formatString("%d", N),
              formatDouble(
                  DB.mixThroughput(6, MemWidth::B64, true, N), 1),
              formatDouble(
                  DB.mixThroughput(6, MemWidth::B64, false, N), 1)});
  benchPrint(T.render());
  benchPrint("\n");
}

int main() {
  sweep(gtx580(), {32, 64, 128, 192, 256, 384, 512, 768, 1024});
  sweep(gtx680(), {32, 64, 128, 256, 512, 768, 1024, 1536, 2048});
  return 0;
}
