//===- bench/fig4_active_threads.cpp - regenerate Figure 4 ----------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 4: throughput of the 6:1 FFMA/LDS.64 mix as the
// number of active threads per SM grows, for independent instructions and
// for the SGEMM-like pattern where the FFMAs depend on the load.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace gpuperf;

static void sweep(BenchRun &Run, const MachineDesc &M,
                  const std::vector<int> &Threads) {
  benchHeader(formatString(
      "Figure 4 (%s): FFMA/LDS.64 6:1 mix vs active threads per SM",
      M.Name.c_str()));
  PerfDatabase DB = Run.makeDatabase(M);
  auto Rows = runSweepSupervised(
      Run, formatString("fig4_%s", M.Name.c_str()), Threads.size(),
      [&](size_t I, const Supervisor::Attempt &) {
        int N = Threads[I];
        return SweepPointAttempt::ok(
            {formatString("%d", N),
             formatDouble(DB.mixThroughput(6, MemWidth::B64, true, N),
                          1),
             formatDouble(DB.mixThroughput(6, MemWidth::B64, false, N),
                          1)});
      });
  Table T;
  T.setHeader({"active threads", "dependent", "independent"});
  for (auto &Row : Rows)
    if (Row)
      T.addRow(*Row);
  benchPrint(T.render());
  benchPrint("\n");
}

int main(int Argc, char **Argv) {
  BenchRun Run("fig4_active_threads", Argc, Argv);
  sweep(Run, gtx580(), {32, 64, 128, 192, 256, 384, 512, 768, 1024});
  sweep(Run, gtx680(), {32, 64, 128, 256, 512, 768, 1024, 1536, 2048});
  return 0;
}
