//===- bench/fig3_register_blocking.cpp - regenerate Figure 3 -------------===//
//
// Part of the gpuperf project: reproduction of Lai & Seznec, CGO 2013.
//
// Regenerates Figure 3: the FFMA instruction percentage of the SGEMM main
// loop as a function of the register blocking factor, for each LDS width.
// Purely analytic (Section 4.2's combinatorics).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "model/UpperBound.h"

using namespace gpuperf;

int main(int Argc, char **Argv) {
  BenchRun Run("fig3_register_blocking", Argc, Argv);
  benchHeader("Figure 3: FFMA percentage in the SGEMM main loop vs "
              "register blocking factor");
  Table T;
  T.setHeader({"blocking factor", "LDS", "LDS.64", "LDS.128"});
  for (int BR = 1; BR <= 14; ++BR) {
    T.addRow({formatString("%d", BR),
              formatDouble(
                  100 * UpperBoundModel::ffmaFraction(BR, MemWidth::B32),
                  1) + "%",
              formatDouble(
                  100 * UpperBoundModel::ffmaFraction(BR, MemWidth::B64),
                  1) + "%",
              formatDouble(
                  100 * UpperBoundModel::ffmaFraction(BR, MemWidth::B128),
                  1) + "%"});
  }
  benchPrint(T.render());
  benchPrint(
      "\nPaper's annotated points at BR=6: 75%, 85.7%, 92.3%.\n"
      "Equation (2) loose bound on BR with 63 registers/thread: " +
      formatString("%d\n", UpperBoundModel::maxBlockingFactorLoose(63)));
  return 0;
}
